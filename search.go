package exsample

import (
	"fmt"

	"github.com/exsample/exsample/internal/baseline"
	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/engine"
	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
	"github.com/exsample/exsample/internal/xrand"
)

// Search runs a distinct-object query against the dataset and returns a
// report. It implements the full Algorithm 1 pipeline: pick a frame (by the
// configured strategy), read+decode it (charged via the decode cost model),
// run the object detector (charged per frame), pass detections through the
// SORT-style discriminator, and — for ExSample — feed the (d0, d1) split
// back into the per-chunk statistics.
func (d *Dataset) Search(q Query, opts Options) (*Report, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	total, err := d.GroundTruthCount(q.Class)
	if err != nil {
		return nil, err
	}

	var detector detect.Detector
	sim, err := detect.NewSim(d.inner.Index, d.seed^0xdecade,
		detect.WithClass(q.Class),
		detect.WithNoise(d.noise),
		detect.WithCost(1/d.cost.DetectFPS),
	)
	if err != nil {
		return nil, err
	}
	detector = sim
	if d.failAfter > 0 {
		detector = &detect.FailAfter{Inner: sim, Limit: d.failAfter}
	}
	coverage := opts.TrackerCoverage
	if coverage == 0 {
		coverage = 1
	}
	extender, err := discrim.NewTruthExtender(d.inner.Index, coverage)
	if err != nil {
		return nil, err
	}
	dis, err := discrim.New(extender, opts.IoUThreshold)
	if err != nil {
		return nil, err
	}
	curve, err := metrics.NewRecallCurve(total)
	if err != nil {
		return nil, err
	}

	rep := &Report{Strategy: opts.Strategy}
	numFrames := d.NumFrames()
	maxFrames := opts.MaxFrames
	if maxFrames == 0 || maxFrames > numFrames {
		maxFrames = numFrames
	}

	// applyDets charges costs and runs the discriminator on pre-computed
	// detections, returning the created objects (the d0 set) and the
	// objects second-sighted (the d1 set). It also grows the report's
	// result list and recall curve. It must run in pick order, single
	// goroutine — only detector inference may be parallelized.
	applyDets := func(frame int64, dets []track.Detection) (newObjs, secondObjs []*discrim.Object) {
		rep.DecodeSeconds += d.dec.Cost(frame)
		rep.DetectSeconds += detector.CostSeconds()
		rep.FramesProcessed++
		newObjs, secondObjs = dis.ObserveObjects(frame, dets)
		var truthIDs []int
		for _, obj := range newObjs {
			det := obj.FirstDetection
			rep.Results = append(rep.Results, Result{
				ObjectID: len(rep.Results),
				Frame:    det.Frame,
				Class:    det.Class,
				Box:      Box{det.Box.X1, det.Box.Y1, det.Box.X2, det.Box.Y2},
				Score:    det.Score,
			})
			truthIDs = append(truthIDs, det.TruthID)
		}
		curve.Observe(rep.FramesProcessed, rep.TotalSeconds(), truthIDs)
		if len(truthIDs) > 0 {
			rep.CurveSamples = append(rep.CurveSamples, rep.FramesProcessed)
			rep.CurveSeconds = append(rep.CurveSeconds, rep.TotalSeconds())
			rep.CurveFound = append(rep.CurveFound, curve.DistinctFound())
		}
		return newObjs, secondObjs
	}

	// processFrame is the sequential detect-then-apply path.
	processFrame := func(frame int64) (newObjs, secondObjs []*discrim.Object) {
		return applyDets(frame, detector.Detect(frame))
	}

	done := func() bool {
		if q.Limit > 0 && len(rep.Results) >= q.Limit {
			return true
		}
		if q.RecallTarget > 0 && curve.Recall() >= q.RecallTarget {
			return true
		}
		if rep.FramesProcessed >= maxFrames {
			return true
		}
		if opts.MaxSeconds > 0 && rep.TotalSeconds() >= opts.MaxSeconds {
			return true
		}
		return false
	}

	// Order-driven strategies only need the set sizes.
	processCounts := func(frame int64) (d0, d1 int) {
		n, s := processFrame(frame)
		return len(n), len(s)
	}

	pipe := framePipeline{detect: detector.Detect, apply: applyDets, process: processFrame}
	// Only the batched ExSample loop fans inference out; don't spin up
	// workers on paths that never use them.
	if opts.Parallelism > 1 && opts.Strategy == StrategyExSample && !opts.AutoChunk {
		pool := engine.NewPool(opts.Parallelism)
		defer pool.Close()
		pipe.pool = pool
	}
	switch opts.Strategy {
	case StrategyExSample:
		err = d.runExSample(q, opts, rep, pipe, done)
	case StrategyRandom, StrategyRandomPlus, StrategySequential:
		err = d.runOrder(opts, processCounts, done)
	case StrategyProxy:
		err = d.runProxy(q, opts, rep, processCounts, done)
	}
	if err != nil {
		return nil, err
	}
	rep.Recall = curve.Recall()
	return rep, nil
}

// framePipeline splits frame processing into the parallelizable detector
// call and the order-sensitive discriminator/accounting step. pool, when
// set, fans batch inference out over a bounded worker pool.
type framePipeline struct {
	detect  func(int64) []track.Detection
	apply   func(int64, []track.Detection) ([]*discrim.Object, []*discrim.Object)
	process func(int64) ([]*discrim.Object, []*discrim.Object)
	pool    *engine.Pool
}

// newExSampler builds a core sampler over the given chunks with the
// configured policy, within-chunk order and optional §VII fusion (scoring
// charged per chunk on first visit into rep.ScanSeconds).
func (d *Dataset) newExSampler(q Query, opts Options, rep *Report, chunks []video.Chunk, seed uint64) (*core.Sampler, error) {
	cfg := core.Config{
		Alpha0: opts.Alpha0,
		Beta0:  opts.Beta0,
		Policy: opts.Policy.toCore(),
		Within: core.WithinRandomPlus,
		Seed:   seed,
	}
	if opts.UniformWithinChunk {
		cfg.Within = core.WithinUniform
	}
	if opts.FuseProxyWithinChunk {
		quality := opts.ProxyQuality
		if quality == 0 {
			quality = 1
		}
		scorer, err := baseline.NewProxyScorer(d.inner.Index, q.Class, quality, opts.Seed^0xbead)
		if err != nil {
			return nil, err
		}
		cfg.Within = core.WithinScored
		cfg.Scorer = scorer.Score
		// Per-chunk scoring is charged on first visit — the fusion's whole
		// point is avoiding the full-dataset scan.
		cfg.OnChunkOpen = func(j int) {
			rep.ScanSeconds += d.cost.ScanSeconds(chunks[j].Len())
		}
	}
	return core.New(chunks, cfg)
}

// runExSample is the Algorithm 1 loop, optionally batched (§III-F) with
// parallel inference, optionally with proxy-scored within-chunk order (§VII
// fusion), automated re-chunking (§VII) and the technical report's
// cross-chunk N1 accounting.
func (d *Dataset) runExSample(q Query, opts Options, rep *Report,
	pipe framePipeline, done func() bool) error {

	if opts.AutoChunk {
		return d.runAutoChunk(q, opts, rep, pipe, done)
	}
	chunks := d.inner.Chunks
	if opts.NumChunks > 0 {
		var err error
		chunks, err = video.SplitRange(0, d.NumFrames(), opts.NumChunks)
		if err != nil {
			return err
		}
	}
	sampler, err := d.newExSampler(q, opts, rep, chunks, opts.Seed)
	if err != nil {
		return err
	}

	// homeChunk maps discriminator object id -> discovering chunk, for the
	// cross-chunk accounting mode.
	var homeChunk map[int]int
	if opts.HomeChunkAccounting {
		homeChunk = make(map[int]int)
	}
	apply := func(chunk int, newObjs, secondObjs []*discrim.Object) error {
		if homeChunk == nil {
			return sampler.Update(chunk, len(newObjs), len(secondObjs))
		}
		for _, o := range newObjs {
			homeChunk[o.ID] = chunk
		}
		if err := sampler.Update(chunk, len(newObjs), 0); err != nil {
			return err
		}
		for _, o := range secondObjs {
			hc, ok := homeChunk[o.ID]
			if !ok {
				hc = chunk
			}
			if err := sampler.Adjust(hc, -1); err != nil {
				return err
			}
		}
		return nil
	}

	batch := opts.BatchSize
	if batch <= 1 {
		for !done() {
			p, ok := sampler.Next()
			if !ok {
				break
			}
			newObjs, secondObjs := pipe.process(p.Frame)
			if err := apply(p.Chunk, newObjs, secondObjs); err != nil {
				return err
			}
		}
		return nil
	}
	// Batched: draw a whole batch, run inference (optionally in parallel),
	// feed the discriminator in pick order, then apply the (additive,
	// commutative) sampler updates.
	type upd struct {
		chunk      int
		newObjs    []*discrim.Object
		secondObjs []*discrim.Object
	}
	for !done() {
		picks := sampler.NextBatch(batch)
		if len(picks) == 0 {
			break
		}
		var detsList [][]track.Detection
		if pipe.pool != nil {
			detsList = parallelDetect(pipe.pool, pipe.detect, picks)
		}
		updates := make([]upd, 0, len(picks))
		for i, p := range picks {
			var newObjs, secondObjs []*discrim.Object
			if detsList != nil {
				newObjs, secondObjs = pipe.apply(p.Frame, detsList[i])
			} else {
				newObjs, secondObjs = pipe.process(p.Frame)
			}
			updates = append(updates, upd{p.Chunk, newObjs, secondObjs})
			if done() {
				break
			}
		}
		for _, u := range updates {
			if err := apply(u.chunk, u.newObjs, u.secondObjs); err != nil {
				return err
			}
		}
	}
	return nil
}

// runAutoChunk implements §VII's "automating chunking": a coarse pilot
// phase discovers where results live, then the repository is re-chunked —
// proportionally finer where the pilot found more — and the search resumes
// on the adaptive layout. The discriminator persists across phases, so
// objects found during the pilot are never double-counted.
func (d *Dataset) runAutoChunk(q Query, opts Options, rep *Report,
	pipe framePipeline, done func() bool) error {

	numFrames := d.NumFrames()
	coarseM := 16
	if numFrames < int64(coarseM)*4 {
		coarseM = 1
	}
	coarse, err := video.SplitRange(0, numFrames, coarseM)
	if err != nil {
		return err
	}
	pilotSampler, err := d.newExSampler(q, opts, rep, coarse, opts.Seed)
	if err != nil {
		return err
	}
	// The pilot needs enough samples to rank coarse chunks but should stay
	// a small fraction of the work.
	pilot := int64(12 * coarseM)
	if pilot > numFrames/4 {
		pilot = numFrames / 4
	}
	if pilot < 1 {
		pilot = 1
	}
	start := rep.FramesProcessed
	for !done() && rep.FramesProcessed-start < pilot {
		p, ok := pilotSampler.Next()
		if !ok {
			break
		}
		newObjs, secondObjs := pipe.process(p.Frame)
		if err := pilotSampler.Update(p.Chunk, len(newObjs), len(secondObjs)); err != nil {
			return err
		}
	}
	if done() {
		return nil
	}

	fine := adaptiveChunks(pilotSampler, coarse, 128)
	sampler, err := d.newExSampler(q, opts, rep, fine, opts.Seed+0x5eed)
	if err != nil {
		return err
	}
	for !done() {
		p, ok := sampler.Next()
		if !ok {
			break
		}
		newObjs, secondObjs := pipe.process(p.Frame)
		if err := sampler.Update(p.Chunk, len(newObjs), len(secondObjs)); err != nil {
			return err
		}
	}
	return nil
}

// adaptiveChunks splits each coarse chunk into a number of sub-chunks
// proportional to its pilot point estimate, spending ~budget chunks total.
// Every coarse chunk keeps at least one sub-chunk so no region becomes
// unreachable.
func adaptiveChunks(pilot *core.Sampler, coarse []video.Chunk, budget int) []video.Chunk {
	weights := make([]float64, len(coarse))
	var total float64
	for j := range coarse {
		weights[j] = pilot.PointEstimate(j)
		total += weights[j]
	}
	var out []video.Chunk
	for j, c := range coarse {
		k := 1
		if total > 0 {
			k = int(float64(budget)*weights[j]/total + 0.5)
		}
		if k < 1 {
			k = 1
		}
		if int64(k) > c.Len() {
			k = int(c.Len())
		}
		subs, err := video.SplitRange(c.Start, c.End, k)
		if err != nil {
			// Cannot happen for k in [1, len]; keep the coarse chunk.
			subs = []video.Chunk{c}
		}
		out = append(out, subs...)
	}
	for i := range out {
		out[i].ID = i
	}
	return out
}

// parallelDetect runs detector inference for a batch of picks across a
// bounded worker pool. Results are indexed by pick so the discriminator can
// consume them in order; the detector contract requires concurrency safety.
// The same pool type backs the Engine's cross-query batching.
func parallelDetect(pool *engine.Pool, detect func(int64) []track.Detection, picks []core.Pick) [][]track.Detection {
	out := make([][]track.Detection, len(picks))
	tasks := make([]func(), len(picks))
	for i, p := range picks {
		i, frame := i, p.Frame
		tasks[i] = func() { out[i] = detect(frame) }
	}
	pool.Do(tasks)
	return out
}

// runOrder runs the order-driven baselines (random, random+, sequential).
func (d *Dataset) runOrder(opts Options, processFrame func(int64) (int, int), done func() bool) error {
	var (
		order video.FrameOrder
		err   error
	)
	rng := xrand.New(opts.Seed)
	switch opts.Strategy {
	case StrategyRandom:
		order, err = video.NewUniformOrder(0, d.NumFrames(), rng)
	case StrategyRandomPlus:
		// Stratify first at one-hour granularity, the paper's example.
		hour := int64(d.inner.Profile.FPS * 3600)
		order, err = video.NewRandomPlusOrder(0, d.NumFrames(), hour, rng)
	case StrategySequential:
		order, err = video.NewSequentialOrder(0, d.NumFrames(), 1)
	default:
		return fmt.Errorf("exsample: runOrder got strategy %v", opts.Strategy)
	}
	if err != nil {
		return err
	}
	for !done() {
		frame, ok := order.Next()
		if !ok {
			break
		}
		processFrame(frame)
	}
	return nil
}

// runProxy implements the BlazeIt-style baseline: optionally a training
// phase collecting positive labels by random sampling, then an upfront
// scoring scan of every frame (charged at scan throughput before any result
// can be produced), then detector processing in descending score order. If
// training cannot find enough positives, the method degrades to plain
// random sampling, as BlazeIt does for rare classes (§II-B).
func (d *Dataset) runProxy(q Query, opts Options, rep *Report, processFrame func(int64) (int, int), done func() bool) error {
	trained := true
	var trainOrder *video.UniformOrder
	if opts.ProxyTrainPositives > 0 {
		budget := opts.ProxyTrainBudget
		if budget == 0 {
			budget = d.NumFrames() / 50
			if budget < int64(opts.ProxyTrainPositives) {
				budget = int64(opts.ProxyTrainPositives)
			}
		}
		var err error
		trainOrder, err = video.NewUniformOrder(0, d.NumFrames(), xrand.New(opts.Seed^0x7ea1))
		if err != nil {
			return err
		}
		positives := 0
		var spent int64
		for positives < opts.ProxyTrainPositives && spent < budget && !done() {
			frame, ok := trainOrder.Next()
			if !ok {
				break
			}
			spent++
			// Training frames run the real detector; any results they
			// surface are real results (BlazeIt's labels come from exactly
			// such detector calls).
			d0, _ := processFrame(frame)
			if d0 > 0 {
				positives++
			}
		}
		trained = positives >= opts.ProxyTrainPositives
	}

	if !trained {
		// Too few labels to train a proxy: continue with random sampling
		// (reusing the training order so frames are not repeated).
		for !done() {
			frame, ok := trainOrder.Next()
			if !ok {
				break
			}
			processFrame(frame)
		}
		return nil
	}

	quality := opts.ProxyQuality
	if quality == 0 {
		quality = 1
	}
	scorer, err := baseline.NewProxyScorer(d.inner.Index, q.Class, quality, opts.Seed^0xbead)
	if err != nil {
		return err
	}
	order, err := baseline.NewProxyOrder(scorer, 0, d.NumFrames(), opts.ProxyDupRadius)
	if err != nil {
		return err
	}
	// The scan is paid in full before the first post-scan detector call
	// (§II-B).
	rep.ScanSeconds = d.cost.ScanSeconds(order.ScannedFrames)
	for !done() {
		frame, ok := order.Next()
		if !ok {
			break
		}
		processFrame(frame)
	}
	return nil
}

// compile-time check that the simulated detector satisfies the public
// Detector contract via the adapter below.
var _ Detector = (*simDetectorAdapter)(nil)

// simDetectorAdapter exposes an internal simulated detector through the
// public Detector interface (used by examples that want direct detector
// access).
type simDetectorAdapter struct {
	inner *detect.Sim
}

// NewDetector returns a standalone simulated detector for the dataset,
// restricted to one class. It is the same detector Search uses internally.
func (d *Dataset) NewDetector(class string) (Detector, error) {
	if _, err := d.GroundTruthCount(class); err != nil {
		return nil, err
	}
	inner, err := detect.NewSim(d.inner.Index, d.seed^0xdecade,
		detect.WithClass(class),
		detect.WithNoise(d.noise),
		detect.WithCost(1/d.cost.DetectFPS),
	)
	if err != nil {
		return nil, err
	}
	return &simDetectorAdapter{inner: inner}, nil
}

// Detect implements Detector.
func (a *simDetectorAdapter) Detect(frame int64) []Detection {
	dets := a.inner.Detect(frame)
	out := make([]Detection, len(dets))
	for i, det := range dets {
		out[i] = Detection{
			Frame: det.Frame,
			Class: det.Class,
			Box:   Box{det.Box.X1, det.Box.Y1, det.Box.X2, det.Box.Y2},
			Score: det.Score,
		}
	}
	return out
}

// CostSeconds implements Detector.
func (a *simDetectorAdapter) CostSeconds() float64 { return a.inner.CostSeconds() }
