package exsample

import (
	"context"
	"sync"

	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/engine"
)

// Search runs a distinct-object query against the dataset and returns a
// report. It implements the full Algorithm 1 pipeline: pick a frame (by the
// configured strategy), read+decode it (charged via the decode cost model),
// run the object detector (charged per frame), pass detections through the
// SORT-style discriminator, and — for ExSample — feed the (d0, d1) split
// back into the per-chunk statistics.
//
// Search delegates to the same queryRun step loop that drives Session and
// Engine, so all three produce byte-identical reports for the same seed.
func (d *Dataset) Search(q Query, opts Options) (*Report, error) {
	return SearchSource(d, q, opts)
}

// SearchSource is Search over any Source — a local Dataset or a
// ShardedSource. The pipeline is identical; only frame routing differs.
func SearchSource(src Source, q Query, opts Options) (*Report, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	run, err := newQueryRun(src, q, opts, cacheConfig{}, false)
	if err != nil {
		return nil, err
	}
	// Only the batched ExSample loop (§III-F) defers updates and fans
	// inference out; every other strategy steps one frame at a time.
	if opts.Strategy == StrategyExSample && !opts.AutoChunk && opts.BatchSize > 1 {
		err = runBatched(run, opts.BatchSize, opts.Parallelism)
	} else {
		err = runSequential(run)
	}
	if err != nil {
		return nil, err
	}
	if run.err != nil {
		return nil, run.err
	}
	run.rep.Recall = run.curve.Recall()
	return run.rep, nil
}

// runSequential drives the step loop one frame at a time until the query's
// stopping condition fires or the repository is exhausted.
func runSequential(run *queryRun) error {
	ctx := context.Background()
	for !run.done() {
		p, ok := run.next()
		if !ok {
			break
		}
		fr, err := run.detectOne(ctx, p.Frame)
		if err != nil {
			return err
		}
		if _, err := run.apply(p, fr); err != nil {
			return err
		}
	}
	return nil
}

// runBatched is the §III-F batched loop: draw a whole batch of picks before
// any of their updates apply, run inference as batched detector calls
// (optionally split across a bounded worker pool — the same pool type that
// backs the Engine's cross-query batching), then feed the discriminator in
// pick order.
func runBatched(run *queryRun, batch, parallelism int) error {
	ctx := context.Background()
	var pool *engine.Pool
	if parallelism > 1 {
		pool = engine.NewPool(parallelism)
		defer pool.Close()
	}
	for !run.done() {
		picks := make([]core.Pick, 0, batch)
		for len(picks) < batch {
			p, ok := run.next()
			if !ok {
				break
			}
			picks = append(picks, p)
		}
		if len(picks) == 0 {
			break
		}
		frames := make([]int64, len(picks))
		for i, p := range picks {
			frames[i] = p.Frame
		}
		results := make([]frameResult, len(picks))
		if pool != nil {
			// Split the batch into parallelism contiguous sub-batches, one
			// batched detector call each — same frames, same per-frame
			// outputs and costs, so results are byte-identical to a single
			// call.
			per := (len(picks) + parallelism - 1) / parallelism
			var tasks []func()
			var errMu sync.Mutex
			var firstErr error
			for start := 0; start < len(picks); start += per {
				start := start
				end := start + per
				if end > len(picks) {
					end = len(picks)
				}
				tasks = append(tasks, func() {
					sub, err := run.detectBatch(ctx, frames[start:end])
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					copy(results[start:end], sub)
				})
			}
			pool.Do(tasks)
			if firstErr != nil {
				return firstErr
			}
		} else {
			sub, err := run.detectBatch(ctx, frames)
			if err != nil {
				return err
			}
			copy(results, sub)
		}
		for i, p := range picks {
			if _, err := run.apply(p, results[i]); err != nil {
				return err
			}
			if run.done() {
				// Remaining picks of the round are discarded unapplied;
				// their cost is never charged.
				break
			}
		}
	}
	return nil
}
