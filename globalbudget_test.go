package exsample

import (
	"context"
	"reflect"
	"testing"
)

// TestEngineGlobalBudgetMatchesFairShareSingleQuery: with one query the
// marginal-value planner has nobody to steer frames between, so the budget
// engine must be byte-identical to the fair-share engine — and therefore to
// Dataset.Search with BatchSize = FramesPerRound. This is the degenerate
// end of the equivalence contract documented on EngineOptions.GlobalBudget.
func TestEngineGlobalBudgetMatchesFairShareSingleQuery(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 25}

	want, err := ds.Search(q, Options{BatchSize: 16, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 16, GlobalBudget: 16})
	h, err := e.Submit(context.Background(), ds, q, Options{Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("budget engine diverged from fair-share Search (frames %d vs %d, results %d vs %d)",
			got.FramesProcessed, want.FramesProcessed, len(got.Results), len(want.Results))
	}
	st := e.Stats()
	if st.BudgetGranted == 0 || st.BudgetGranted != st.BudgetRequested {
		t.Fatalf("budget counters = (%d, %d); an uncontended budget must grant every requested frame",
			st.BudgetGranted, st.BudgetRequested)
	}
}

// TestEngineGlobalBudgetMatchesFairShareIdenticalFleet: queries with
// identical beliefs have identical marginal values, so the water-filling
// plan degenerates to an even split — fair-share exactly. Every member of
// an identical fleet under a covering budget must therefore reproduce the
// single-query Search report byte for byte. (No shared memo cache here:
// cache hit counts depend on inter-query ordering and would break
// DeepEqual without changing any pick.)
func TestEngineGlobalBudgetMatchesFairShareIdenticalFleet(t *testing.T) {
	const fleet = 4
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 25}

	want, err := ds.Search(q, Options{BatchSize: 8, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 8, GlobalBudget: 8 * fleet})
	var handles []*QueryHandle
	for i := 0; i < fleet; i++ {
		h, err := e.Submit(context.Background(), ds, q, Options{Seed: 73})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		got, err := h.Wait()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("fleet member %d diverged from fair-share Search (frames %d vs %d, results %d vs %d)",
				i, got.FramesProcessed, want.FramesProcessed, len(got.Results), len(want.Results))
		}
	}
}

// TestEngineGlobalBudgetFloorPreventsStarvation: a query whose marginal
// value has decayed to nearly nothing — a random-order query for a class
// the dataset does not contain — still terminates under a contended
// budget, because the floor guarantees it frames every round while the
// planner steers the surplus to the hot query.
func TestEngineGlobalBudgetFloorPreventsStarvation(t *testing.T) {
	ds, err := OpenProfile("dashcam", 0.02, 7, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 8,
		GlobalBudget: 10, FloorQuota: 2})

	hot, err := e.Submit(context.Background(), ds, Query{Class: "person", Limit: 1 << 30},
		Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := e.Submit(context.Background(), ds, Query{Class: "bus", Limit: 1 << 30},
		Options{Strategy: StrategyRandom, Seed: 12, MaxFrames: 400})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := cold.Wait()
	if err != nil {
		t.Fatalf("starved query never terminated cleanly: %v", err)
	}
	if rep.FramesProcessed != 400 {
		t.Fatalf("cold query processed %d frames, want its full MaxFrames 400", rep.FramesProcessed)
	}
	cg, cr := cold.BudgetCounters()
	if cg < 400 {
		t.Fatalf("cold query granted %d frames, fewer than it consumed", cg)
	}
	if cg >= cr {
		t.Fatalf("cold counters = (%d, %d): the budget never constrained it, test is vacuous", cg, cr)
	}
	hot.Cancel()
	if _, err := hot.Wait(); err == nil {
		t.Fatal("cancelled hot query reported success")
	}
	hg, _ := hot.BudgetCounters()
	if hg <= cg {
		t.Fatalf("hot query granted %d frames vs cold's %d; the planner never steered the surplus", hg, cg)
	}
}
