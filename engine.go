package exsample

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/exsample/exsample/cachestore"
	"github.com/exsample/exsample/internal/cache"
	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/engine"
	"github.com/exsample/exsample/internal/sizer"
)

// EngineOptions configures a concurrent query engine.
type EngineOptions struct {
	// Workers bounds concurrent DetectBatch calls across every query the
	// engine is running. Any value <= 0 selects the default, NumCPU — the
	// defaulting rule for both sizing knobs is "non-positive means
	// default", so a config file's zero value and a sentinel -1 behave
	// identically. This is the knob that models
	// the shared GPU budget: however many queries are in flight, at most
	// Workers inference batches — one per (query, shard-affinity) group
	// per round, each up to FramesPerRound frames — are outstanding at
	// once. Frames within a batch are the backend's to parallelize, like a
	// GPU batch; concurrency across queries and shards comes from the
	// pool.
	Workers int
	// FramesPerRound is each query's detector quota per scheduling round.
	// Any value <= 0 selects the default, 1 (the same "non-positive means
	// default" rule as Workers). Every active query receives the same quota, which makes
	// scheduling fair-share. Values above 1 trade scheduling freshness for
	// bigger inference batches, with exactly the semantics of Search's
	// BatchSize (§III-F): a round's picks are drawn before any of its
	// updates are applied.
	FramesPerRound int
	// EventBuffer is the per-query capacity of the Events channel
	// (default 256). When a consumer falls behind, further events are
	// dropped (counted by QueryHandle.Dropped) rather than stalling the
	// engine; the final Report is always complete.
	EventBuffer int
	// CacheEntries, when positive, enables a bounded cross-query memo
	// cache of roughly this many detector outputs keyed by (source,
	// class, frame). Overlapping queries stop paying for duplicate
	// inference: a hit is charged decode-only cost. Results stay
	// byte-identical to an uncached run for the same seed — only charged
	// costs change (and, for MaxSeconds-budgeted queries, how many frames
	// the budget buys). Sources under failure injection bypass the cache.
	CacheEntries int
	// AdaptiveRounds opts every query into feedback-controlled round
	// sizing: an AIMD controller per (query, backend) grows the per-round
	// detector quota from FramesPerRound toward the backend's
	// Hints.MaxBatch while observed batch latency stays flat, and shrinks
	// it multiplicatively when latency inflates (queueing) or a routed
	// backend's circuit breaker opens (capacity loss). Larger rounds mean
	// fewer, bigger inference batches — exactly Search's BatchSize
	// trade-off (§III-F), picked live instead of up front.
	//
	// Default off: the static engine stays byte-identical to
	// Dataset.Search with BatchSize = FramesPerRound. With adaptive
	// sizing on, the quota schedule (and therefore the pick sequence)
	// depends on measured latency, so reports are reproducible only
	// against the same latency trace; the controller itself is a pure
	// state machine over its observations (see internal/sizer).
	AdaptiveRounds bool
	// RemoteCache, when non-nil, composes the memo cache with a shared
	// remote result tier (normally an httpcache.Client pointed at a fleet
	// cache server): lookups go local-first, remote hits write through
	// locally, detector fills write through remotely, and concurrent
	// identical misses are singleflighted to one detector call. Cache keys
	// switch from the per-process source id to the source's content
	// address, so entries survive restarts and are shared across every
	// process that opened the same data — the second user of a popular
	// video queries it at interactive speed. CacheEntries sizes the local
	// L1 (defaulting to 65536 entries when left zero with a remote tier
	// configured). Results for a fixed seed stay byte-identical to an
	// uncached run; only charged costs change. A failing remote degrades
	// to misses (see cachestore.TierStats) and never fails a query.
	RemoteCache cachestore.Store
	// CacheAware opts every query's sampler into cache-aware
	// tie-breaking: when Thompson beliefs tie within epsilon, prefer the
	// chunk with the higher cached fraction, converting incidental cache
	// hits into deliberate near-zero-cost rounds. Off by default — the
	// tie-break changes pick sequences, so seeded reports are
	// byte-identical to Search only with it off. Requires CacheEntries or
	// RemoteCache.
	CacheAware bool
	// GlobalBudget, when positive, replaces fair-share scheduling with one
	// engine-level frames-per-round budget divided across the active
	// queries by marginal value — each query's expected new results per
	// frame, read off its Thompson beliefs (the arg-max arm's
	// prior-smoothed point estimate, Eq. III.1). Hot queries get more
	// frames, nearly exhausted ones decay toward FloorQuota, and a
	// standing query that just woke re-enters at its prior belief.
	// FramesPerRound (or, under AdaptiveRounds, the AIMD controller's
	// live quota) becomes each query's per-round *cap*: the budget
	// decides who deserves frames, the cap bounds how many one query's
	// batch may carry. A single query — or any fleet of queries with
	// identical beliefs — receives exactly its fair share, so seeded
	// reports stay byte-identical to the fair-share scheduler whenever
	// the budget covers the fleet's caps.
	GlobalBudget int
	// FloorQuota is the per-round minimum every active query is granted
	// under GlobalBudget, whatever its marginal value (default 1; values
	// <= 0 select the default). The floor is what keeps a zero-value
	// query live: it still drains its repository and terminates instead
	// of starving. Ignored when GlobalBudget is 0.
	FloorQuota int
}

func (o EngineOptions) withDefaults() EngineOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.FramesPerRound <= 0 {
		o.FramesPerRound = 1
	}
	if o.EventBuffer == 0 {
		o.EventBuffer = 256
	}
	if o.RemoteCache != nil && o.CacheEntries <= 0 {
		o.CacheEntries = 1 << 16
	}
	if o.GlobalBudget < 0 {
		o.GlobalBudget = 0
	}
	if o.GlobalBudget > 0 && o.FloorQuota <= 0 {
		o.FloorQuota = 1
	}
	return o
}

// Validate reports an error for out-of-range engine options. The sizing
// knobs (Workers, FramesPerRound) are never out of range: any
// non-positive value selects the documented default.
func (o EngineOptions) Validate() error {
	if o.EventBuffer < 0 {
		return fmt.Errorf("exsample: negative EventBuffer %d", o.EventBuffer)
	}
	if o.CacheEntries < 0 {
		return fmt.Errorf("exsample: negative CacheEntries %d", o.CacheEntries)
	}
	if o.CacheAware && o.CacheEntries <= 0 && o.RemoteCache == nil {
		return fmt.Errorf("exsample: CacheAware needs a cache to be aware of; set CacheEntries or RemoteCache")
	}
	return nil
}

// Engine runs many distinct-object queries concurrently — across one or
// more open Datasets — multiplexing their detector invocations onto one
// bounded worker pool. Each query keeps its own Thompson-sampling state,
// discriminator and report; the engine owns only scheduling: in every round
// each active query proposes its quota of frames, the union runs on the
// pool as one inference batch, and results are applied per query in pick
// order on a single goroutine.
//
// Determinism is preserved: a query submitted with a fixed seed produces
// exactly the same Report as Dataset.Search with the same Query and
// Options (plus BatchSize equal to the engine's FramesPerRound), whatever
// Workers is and whatever else the engine is running — the worker pool
// parallelizes only the stateless detector, never the bookkeeping.
//
// Engine is safe for concurrent use.
type Engine struct {
	opts  EngineOptions
	inner *engine.Engine
	memo  *cache.Cache
	// tier is the shared result tier (non-nil only with RemoteCache set):
	// the memo cache doubles as its L1 via cachestore.WrapCache, so
	// CacheStats and the cache-aware presence index keep working.
	tier *cachestore.Tiered
	// quota aggregates adaptive round-sizing adjustments across every
	// AdaptiveRounds query (all zeros when the option is off).
	quota sizer.Counters
}

// NewEngine starts an engine. Callers must Close it to release the
// scheduler and worker goroutines.
func NewEngine(opts EngineOptions) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	e := &Engine{
		opts: opts,
		inner: engine.New(engine.Config{
			Workers:        opts.Workers,
			FramesPerRound: opts.FramesPerRound,
			GlobalBudget:   opts.GlobalBudget,
			FloorQuota:     opts.FloorQuota,
		}),
	}
	if opts.CacheEntries > 0 {
		e.memo = cache.New(opts.CacheEntries)
	}
	if opts.RemoteCache != nil {
		// The memo cache becomes the tier's L1 (withDefaults guarantees it
		// exists), so CacheStats and the presence index see tier traffic too.
		e.tier = cachestore.NewTiered(cachestore.WrapCache(e.memo), opts.RemoteCache)
	}
	return e, nil
}

// cacheCfg is the cache wiring handed to every run this engine creates:
// the shared tier when a remote cache is configured, the plain memo cache
// otherwise, plus the cache-aware sampling flag.
func (e *Engine) cacheCfg() cacheConfig {
	if e.tier != nil {
		return cacheConfig{tier: e.tier, aware: e.opts.CacheAware}
	}
	return cacheConfig{memo: e.memo, aware: e.opts.CacheAware}
}

// Workers returns the engine's detector concurrency bound.
func (e *Engine) Workers() int { return e.opts.Workers }

// CacheStats reports the shared memo cache's counters; the zero value is
// returned when the cache is disabled.
type CacheStats struct {
	// Hits and Misses count memoized-lookup outcomes across all queries.
	Hits, Misses int64
	// Evictions counts entries displaced by capacity pressure.
	Evictions int64
	// Entries is the current resident entry count.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats snapshots the engine's shared detector memo cache.
func (e *Engine) CacheStats() CacheStats {
	if e.memo == nil {
		return CacheStats{}
	}
	st := e.memo.Stats()
	return CacheStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries}
}

// EngineStats reports aggregate scheduler counters.
type EngineStats struct {
	// Rounds is the number of completed scheduling rounds.
	Rounds int64
	// DetectCalls is the number of detector frames dispatched to the pool
	// (memo-cache hits included — the scheduler dispatches them the same;
	// the hit is resolved inside the batch).
	DetectCalls int64
	// Batches is the number of DetectBatch group calls issued: one per
	// (query, shard-affinity) group per round, however many frames the
	// group carried. Batches ≤ DetectCalls; the ratio is the realized
	// inference batch size.
	Batches int64
	// QuotaGrows and QuotaShrinks count adaptive round-quota adjustments
	// across every AdaptiveRounds query: additive increases while batch
	// latency stays flat, multiplicative decreases on latency inflation or
	// capacity loss. Both are 0 when AdaptiveRounds is off.
	QuotaGrows, QuotaShrinks int64
	// CapacityLosses counts the shrinks (or shrink attempts at the floor)
	// forced by a backend circuit breaker opening mid-run.
	CapacityLosses int64
	// PeakQuota is the largest per-round quota any adaptive query reached
	// (0 when AdaptiveRounds is off; at least FramesPerRound otherwise).
	PeakQuota int64
	// Parks and Wakes count standing-query lifecycle transitions: a park
	// is a standing query going dormant after a round in which it had
	// nothing to propose, a wake is a dormant query re-entering the
	// schedule (on append or cancellation). Both are 0 when no standing
	// query was ever submitted.
	Parks, Wakes int64
	// BudgetGranted and BudgetRequested account for the global
	// marginal-value allocator (both 0 when GlobalBudget is off).
	// BudgetGranted sums the frames the planner actually granted across
	// all rounds and queries; BudgetRequested sums the per-round caps the
	// same queries would have received under fair-share. Their ratio is
	// the scheduling pressure: well below 1 means the budget is the
	// binding constraint and frames are being steered by marginal value.
	BudgetGranted, BudgetRequested int64
	// TierL1Hits through TierMerges mirror the shared result tier's
	// per-tier counters (all 0 when RemoteCache is unset; see TierStats
	// for the full breakdown including round-trip latency). TierMerges
	// counts frames resolved by joining another query's in-flight
	// detector call instead of issuing a duplicate.
	TierL1Hits, TierL1Misses     int64
	TierL2Hits, TierL2Misses     int64
	TierL2RoundTrips, TierMerges int64
}

// Stats snapshots the engine's scheduler counters.
func (e *Engine) Stats() EngineStats {
	rounds, detects, batches := e.inner.Counters()
	parks, wakes := e.inner.ParkCounters()
	granted, requested := e.inner.BudgetCounters()
	var ts cachestore.TierStats
	if e.tier != nil {
		ts = e.tier.Stats()
	}
	return EngineStats{
		Rounds:           rounds,
		DetectCalls:      detects,
		Batches:          batches,
		QuotaGrows:       e.quota.Grows.Load(),
		QuotaShrinks:     e.quota.Shrinks.Load(),
		CapacityLosses:   e.quota.CapacityLosses.Load(),
		PeakQuota:        e.quota.Peak.Load(),
		Parks:            parks,
		Wakes:            wakes,
		BudgetGranted:    granted,
		BudgetRequested:  requested,
		TierL1Hits:       ts.L1Hits,
		TierL1Misses:     ts.L1Misses,
		TierL2Hits:       ts.L2Hits,
		TierL2Misses:     ts.L2Misses,
		TierL2RoundTrips: ts.L2RoundTrips,
		TierMerges:       ts.Merges,
	}
}

// TierStats snapshots the shared result tier's full counter set — per-tier
// hits and misses, remote round-trips and their EWMA latency, singleflight
// merges, degradations. The zero value is returned when the engine runs
// without a RemoteCache.
func (e *Engine) TierStats() cachestore.TierStats {
	if e.tier == nil {
		return cachestore.TierStats{}
	}
	return e.tier.Stats()
}

// Warm prefetches a source's cached detector results for one class from
// the remote tier into the local L1, ahead of any query: a subsequent
// query over frames another process already paid for runs at cache speed
// from its first round. limit bounds how many frames (from frame 0) to
// probe; <= 0 means the whole source. Returns the number of entries
// copied into the local tier. Warm requires a RemoteCache and is
// independent of any running query — it issues only remote lookups, never
// detector calls.
func (e *Engine) Warm(ctx context.Context, src Source, class string, limit int64) (int, error) {
	if e.tier == nil {
		return 0, fmt.Errorf("exsample: Warm needs EngineOptions.RemoteCache")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	qs := src.querySource()
	n := qs.numFrames
	if limit > 0 && limit < n {
		n = limit
	}
	const batch = 512
	keys := make([]cachestore.Key, 0, batch)
	total := 0
	for frame := int64(0); frame < n; frame += batch {
		end := frame + batch
		if end > n {
			end = n
		}
		keys = keys[:0]
		for f := frame; f < end; f++ {
			keys = append(keys, cachestore.Key{Content: qs.contentID, Class: class, Frame: f})
		}
		got, err := e.tier.Warm(ctx, keys)
		total += got
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Submit registers a query against a source — a local Dataset or a
// ShardedSource — and returns its handle; the query starts running
// immediately and is scheduled fairly against every other in-flight query.
// Queries over a ShardedSource fan their detector calls out across every
// shard, and the scheduler groups each round's inference batch by shard
// (see internal/engine's affinity grouping). The context cancels the query
// (not the engine): when ctx is done the query is finalized at the next
// round boundary and Wait returns ctx's error alongside the partial report.
//
// Batching belongs to the engine, so opts.BatchSize and opts.Parallelism
// must be unset; AutoChunk and the proxy training phase are Search-only
// features.
func (e *Engine) Submit(ctx context.Context, src Source, q Query, opts Options) (*QueryHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.BatchSize > 1 || opts.Parallelism > 1 {
		return nil, fmt.Errorf("exsample: the engine schedules batching itself; set EngineOptions.FramesPerRound instead of BatchSize/Parallelism")
	}
	if opts.AutoChunk {
		return nil, fmt.Errorf("exsample: engine queries do not support AutoChunk")
	}
	if opts.ProxyTrainPositives > 0 {
		return nil, fmt.Errorf("exsample: engine queries do not support the proxy training phase")
	}
	run, err := newQueryRun(src, q, opts, e.cacheCfg(), false)
	if err != nil {
		return nil, err
	}
	return e.submitRun(ctx, src, run, false)
}

// SubmitStanding registers a standing query against a live source and
// returns its handle. A standing query never exhausts: when it has sampled
// every active frame it parks — leaving the scheduler's hot loop entirely —
// and wakes when the source appends a segment (sources that grow implement
// an internal append notification; StreamSource and ShardedSource both do).
// Events stream incrementally exactly as for Submit; the query ends only
// when cancelled, its context fires, or an explicit opts.MaxFrames /
// opts.MaxSeconds budget is spent.
//
// Relative to Submit, validation is relaxed and tightened in opposite
// directions: q.Limit and q.RecallTarget are optional (an alert query can
// run open-ended, and its class may have no instances — or no frames at
// all — yet), while opts.NumChunks and opts.AutoChunk are rejected because
// a standing query must follow the source's live chunk topology for
// appended segments to become sampler arms. Determinism matches Submit:
// with a fixed seed, a standing query that has consumed a given segment
// history reports byte-identically to an offline Search over the retained
// segments (see StreamSource).
func (e *Engine) SubmitStanding(ctx context.Context, src Source, q Query, opts Options) (*QueryHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.Class == "" {
		return nil, fmt.Errorf("exsample: query needs a class")
	}
	if q.Limit < 0 {
		return nil, fmt.Errorf("exsample: negative limit %d", q.Limit)
	}
	if q.RecallTarget < 0 || q.RecallTarget > 1 {
		return nil, fmt.Errorf("exsample: recall target %v outside [0,1]", q.RecallTarget)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.BatchSize > 1 || opts.Parallelism > 1 {
		return nil, fmt.Errorf("exsample: the engine schedules batching itself; set EngineOptions.FramesPerRound instead of BatchSize/Parallelism")
	}
	if opts.AutoChunk || opts.NumChunks > 0 {
		return nil, fmt.Errorf("exsample: standing queries follow the source's live chunk topology; NumChunks/AutoChunk cannot apply")
	}
	if opts.ProxyTrainPositives > 0 {
		return nil, fmt.Errorf("exsample: engine queries do not support the proxy training phase")
	}
	run, err := newQueryRun(src, q, opts, e.cacheCfg(), true)
	if err != nil {
		return nil, err
	}
	return e.submitRun(ctx, src, run, true)
}

// submitRun is the shared tail of Submit and SubmitStanding: it builds the
// handle and scheduler adapter, wraps for adaptive sizing and/or standing
// semantics, subscribes standing queries to the source's append
// notifications, and hands the query to the internal scheduler.
func (e *Engine) submitRun(ctx context.Context, src Source, run *queryRun, standing bool) (*QueryHandle, error) {
	h := &QueryHandle{
		run:      run,
		ctx:      ctx,
		events:   make(chan QueryEvent, e.opts.EventBuffer),
		static:   e.opts.FramesPerRound,
		standing: standing,
	}
	eq := &engineQuery{run: run, ctx: ctx, handle: h}
	var iq engine.Query = eq
	if e.opts.AdaptiveRounds {
		// One AIMD controller per (query, backend): the fleet keys its
		// controllers by the scheduler's shard-affinity key, grows from
		// FramesPerRound toward the source's tightest backend MaxBatch
		// hint, and the counters aggregate into EngineStats.
		fleet, err := sizer.NewFleet(sizer.Config{
			Min: e.opts.FramesPerRound,
			Max: run.src.backendMaxBatch(),
		}, &e.quota)
		if err != nil {
			return nil, err
		}
		eq.sizer = fleet
		h.sizer = fleet
		sq := &sizedQuery{engineQuery: eq}
		if run.src.breakerOpens != nil {
			sq.breakerOpens = run.src.breakerOpens
			sq.lastOpens = sq.breakerOpens()
		}
		sq.scope.seed(run.src, fleet)
		iq = sq
		if standing {
			iq = &sizedStandingQuery{sizedQuery: sq}
		}
	} else if standing {
		iq = &standingQuery{engineQuery: eq}
	}
	var wakeTarget atomic.Pointer[engine.Handle]
	if standing {
		// Subscribe to appends before the scheduler can run (and so before
		// Finalize — which runs the unsubscribe — can possibly fire). The
		// callback routes through an atomic pointer because the inner
		// handle does not exist until Submit returns; a notification in
		// that window is harmless, since a query cannot be parked before
		// its first round and its first round sees all current segments.
		if n, ok := src.(appendNotifier); ok {
			h.unsub = n.onAppend(func() {
				if ih := wakeTarget.Load(); ih != nil {
					ih.Wake()
				}
			})
		}
	}
	inner, err := e.inner.Submit(iq)
	if err != nil {
		if h.unsub != nil {
			h.unsub()
		}
		return nil, err
	}
	wakeTarget.Store(inner)
	h.inner = inner
	return h, nil
}

// appendNotifier is the structural seam a growing source implements so
// standing queries can be woken when new frames arrive. onAppend registers
// a callback invoked (on the appender's goroutine, after the new topology
// is published) for every segment that becomes samplable, and returns a
// cancel function. ShardedSource and StreamSource implement it.
type appendNotifier interface {
	onAppend(fn func()) (cancel func())
}

// Close cancels every in-flight query and shuts the engine down, blocking
// until all queries are finalized. Pending Wait calls return. Close is
// idempotent; Submit after Close fails.
func (e *Engine) Close() { e.inner.Close() }

// QueryEvent is one streamed increment of a running engine query — the
// Engine counterpart of Session's StepInfo, extended with running totals.
type QueryEvent struct {
	// Frame is the frame that was processed.
	Frame int64
	// Chunk is the chunk it came from (-1 for non-chunked strategies).
	Chunk int
	// New lists the distinct objects this frame discovered (often empty).
	New []Result
	// Tracks lists the matched track results this frame completed — set
	// only for track queries (SubmitTrack), whose events fire when a
	// densified interval finishes and its tracks pass the predicate. nil
	// for distinct-object queries.
	Tracks []TrackResult
	// SecondSightings counts objects re-confirmed by this frame.
	SecondSightings int
	// FramesProcessed and Found are the query's running totals after this
	// frame.
	FramesProcessed int64
	Found           int
	// Seconds is the charged query time so far, including any scan.
	Seconds float64
}

// QueryHandle tracks one submitted query.
type QueryHandle struct {
	run     *queryRun
	ctx     context.Context
	inner   *engine.Handle
	events  chan QueryEvent
	dropped atomic.Int64
	sizer   *sizer.Fleet // non-nil when AdaptiveRounds is on
	static  int          // the engine's FramesPerRound
	// standing marks a SubmitStanding query; unsub (non-nil only then, and
	// only for growing sources) cancels the append-wake subscription. It is
	// written before the scheduler can observe the query and read once by
	// Finalize on the scheduler goroutine.
	standing bool
	unsub    func()
}

// Standing reports whether this handle belongs to a standing
// (SubmitStanding) query.
func (h *QueryHandle) Standing() bool { return h.standing }

// Parked reports whether a standing query is currently dormant — it has
// sampled every active frame and left the scheduling loop until the source
// appends. Always false for bounded queries and for finished queries.
func (h *QueryHandle) Parked() bool { return h.inner.Parked() }

// RoundQuota reports the query's current per-round detector quota: the
// adaptive controller's live value under AdaptiveRounds, the engine's
// static FramesPerRound otherwise. It is safe to call while the query
// runs.
func (h *QueryHandle) RoundQuota() int {
	if h.sizer != nil {
		return h.sizer.Quota()
	}
	return h.static
}

// BudgetCounters reports the query's cumulative global-budget accounting:
// granted is the number of frames the marginal-value planner actually
// offered this query across all rounds, requested is what the same rounds
// would have offered under fair-share (the per-round cap). Both are 0 when
// the engine runs without a GlobalBudget.
func (h *QueryHandle) BudgetCounters() (granted, requested int64) {
	return h.inner.BudgetCounters()
}

// Events streams one QueryEvent per processed frame. The channel is closed
// when the query finishes (for any reason); consumers that fall behind the
// EventBuffer lose intermediate events (see Dropped) but never stall the
// engine.
func (h *QueryHandle) Events() <-chan QueryEvent { return h.events }

// Dropped returns how many events were discarded because the Events
// consumer fell behind.
func (h *QueryHandle) Dropped() int64 { return h.dropped.Load() }

// Cancel stops the query at the next round boundary. Wait returns
// context.Canceled with the partial report.
func (h *QueryHandle) Cancel() { h.inner.Cancel() }

// Wait blocks until the query finishes and returns its report. The report
// is complete on success and partial (but internally consistent) when the
// query was cancelled or failed; err is nil on success, the context's error
// for a cancellation, or the underlying pipeline error.
func (h *QueryHandle) Wait() (*Report, error) {
	if err := h.inner.Wait(); err != nil {
		return h.run.rep, err
	}
	switch h.inner.Reason() {
	case engine.ReasonCancelled:
		if err := h.ctx.Err(); err != nil {
			return h.run.rep, err
		}
		return h.run.rep, context.Canceled
	case engine.ReasonDone:
		// Done can mean the budget was reached or the context fired
		// between rounds; report the latter as a cancellation.
		if !h.run.done() {
			if err := h.ctx.Err(); err != nil {
				return h.run.rep, err
			}
		}
	}
	return h.run.rep, nil
}

// emit publishes one event without ever blocking the scheduler.
func (h *QueryHandle) emit(info StepInfo) {
	ev := QueryEvent{
		Frame:           info.Frame,
		Chunk:           info.Chunk,
		New:             info.New,
		SecondSightings: info.SecondSightings,
		FramesProcessed: h.run.rep.FramesProcessed,
		Found:           len(h.run.rep.Results),
		Seconds:         h.run.rep.TotalSeconds(),
	}
	select {
	case h.events <- ev:
	default:
		h.dropped.Add(1)
	}
}

// engineQuery adapts a queryRun to the internal scheduler's Query
// interface. Propose/Apply/Done/Finalize run on the scheduler goroutine;
// DetectBatch runs on pool workers — several at once when the round spans
// multiple affinity groups, which is why the detect scratches cycle
// through a mutex-guarded free list instead of living on the run.
type engineQuery struct {
	run     *queryRun
	ctx     context.Context
	handle  *QueryHandle
	pending []core.Pick // picks proposed this round, consumed by Apply in order
	frames  []int64     // reused Propose buffer (engine reads it only until the next Propose)

	// sizer, when non-nil, is the AdaptiveRounds feedback controller; the
	// sizedQuery wrapper exposes it to the scheduler, so the static path
	// never even type-asserts positive.
	sizer *sizer.Fleet

	// scr recycles detect scratches and group observations across rounds;
	// see scratchPool. Shared shape with trackEngineQuery.
	scr scratchPool
}

// groupObs is one group's backend-served frame count this round.
type groupObs struct {
	key    uint64
	misses int
}

// scratchPool is the per-query detect-scratch recycler every engine
// adapter (distinct-object engineQuery, track-query trackEngineQuery)
// embeds: DetectBatch pops a scratch (one per in-flight affinity group),
// results stay referenced until the round's applies finish, and the next
// Propose — which by the scheduling contract happens strictly after those
// applies — returns every used scratch to the free list.
//
// It also records, per affinity key, how many of the current round's group
// frames actually reached the backend (memo-cache hits resolve locally in
// microseconds and carry no backend-latency signal). Written by
// DetectBatch under mu, consumed by the Sized wrappers' ObserveBatch on
// the scheduler goroutine, cleared at the next Propose. Only populated
// when the query is adaptive.
type scratchPool struct {
	mu   sync.Mutex
	free []*detectScratch
	used []*detectScratch
	obs  []groupObs
}

// get pops a free detect scratch (or grows the pool) and records it as in
// use for the current round.
func (p *scratchPool) get() *detectScratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s *detectScratch
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		s = &detectScratch{}
	}
	p.used = append(p.used, s)
	return s
}

// reclaim returns every scratch used last round to the free list and drops
// any unconsumed backend-frame observations (error paths leave stragglers).
// Called from Propose on the scheduler goroutine, after the previous
// round's applies and before any new DetectBatch can be in flight.
func (p *scratchPool) reclaim() {
	p.mu.Lock()
	p.free = append(p.free, p.used...)
	p.used = p.used[:0]
	p.obs = p.obs[:0]
	p.mu.Unlock()
}

// note records a group's backend-served frame count for the sizer.
func (p *scratchPool) note(key uint64, misses int) {
	p.mu.Lock()
	p.obs = append(p.obs, groupObs{key: key, misses: misses})
	p.mu.Unlock()
}

// take consumes the recorded backend-served frame count for a group key
// (-1 when the group was never recorded, e.g. its call failed).
func (p *scratchPool) take(key uint64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.obs {
		if p.obs[i].key == key {
			m := p.obs[i].misses
			p.obs[i] = p.obs[len(p.obs)-1]
			p.obs = p.obs[:len(p.obs)-1]
			return m
		}
	}
	return -1
}

func (q *engineQuery) Done() bool {
	return q.ctx.Err() != nil || q.run.done()
}

// MarginalValue implements the scheduler's Valued contract: the query's
// expected new results per frame under its current Thompson beliefs (the
// best enabled arm's prior-smoothed point estimate). Called once per round
// on the scheduler goroutine, before Propose, only when the engine runs a
// GlobalBudget. Pointer embedding promotes it through every wrapper
// (sizedQuery, standingQuery, sizedStandingQuery), so woken standing
// queries re-enter the plan at their refreshed belief automatically.
func (q *engineQuery) MarginalValue() float64 {
	return q.run.marginalValue()
}

func (q *engineQuery) Propose(max int) []int64 {
	q.scr.reclaim()
	q.pending = q.pending[:0]
	q.frames = q.frames[:0]
	for len(q.frames) < max {
		p, ok := q.run.next()
		if !ok {
			break
		}
		q.pending = append(q.pending, p)
		q.frames = append(q.frames, p.Frame)
	}
	return q.frames
}

// DetectBatch runs one affinity group's frames through the query's batched
// detector — memo cache consulted first, the misses issued as a single
// backend call — under the query's own context, so a cancellation mid-batch
// aborts the call and surfaces through QueryHandle.Wait. Results are
// returned as pointers into a recycled scratch buffer (boxing a pointer
// into an interface allocates nothing); the scheduler copies the interface
// values out before the applies, and the scratch stays untouched until the
// next Propose reclaims it.
func (q *engineQuery) DetectBatch(frames []int64) ([]any, error) {
	s := q.scr.get()
	results, err := q.run.detectBatchInto(q.ctx, frames, s)
	if err != nil {
		return nil, err
	}
	if q.sizer != nil {
		// Record how many frames the backend actually served: memo-cache
		// hits resolve locally and must not feed their near-zero latency
		// into the AIMD controller as if the backend produced it.
		misses := len(frames)
		if q.run.memo != nil || q.run.tier != nil {
			misses = len(s.missIdx)
		}
		q.scr.note(q.AffinityKey(frames[0]), misses)
	}
	if cap(s.out) < len(results) {
		s.out = make([]any, 0, cap(results))
	}
	s.out = s.out[:0]
	for i := range results {
		s.out = append(s.out, &results[i])
	}
	return s.out, nil
}

// AffinityKey implements engine.Affine: frames of the same (source, shard)
// share a key, so the scheduler can group a round's detect batch by shard.
func (q *engineQuery) AffinityKey(frame int64) uint64 {
	src := q.run.src
	if src.shardOf == nil {
		return src.id << 16
	}
	return src.id<<16 | uint64(src.shardOf(frame))&0xffff
}

// shardAffinityKey maps a shard index to the affinity key AffinityKey
// would produce for that shard's frames — the key the sizer fleet files
// the shard's quota controllers under.
func shardAffinityKey(src *querySource, shard int) uint64 {
	if src.shardOf == nil {
		return src.id << 16
	}
	return src.id<<16 | uint64(shard)&0xffff
}

func (q *engineQuery) Apply(frame int64, dets any) (bool, error) {
	p := q.pending[0]
	q.pending = q.pending[1:]
	if p.Frame != frame {
		return false, fmt.Errorf("exsample: engine applied frame %d out of order (expected %d)", frame, p.Frame)
	}
	info, err := q.run.apply(p, *dets.(*frameResult))
	if err != nil {
		return false, err
	}
	q.handle.emit(info)
	return q.run.done(), nil
}

func (q *engineQuery) Finalize() {
	if q.handle.unsub != nil {
		q.handle.unsub()
	}
	close(q.handle.events)
}

// standingQuery opts an engineQuery into the scheduler's park/wake
// lifecycle (engine.Standing). Like sizedQuery, it is a separate wrapper
// type so a bounded query never implements the optional interface: the
// scheduler's type assertion fails and exhaustion stays terminal.
type standingQuery struct{ *engineQuery }

// StandingQuery implements engine.Standing.
func (q *standingQuery) StandingQuery() bool { return true }

// sizedStandingQuery combines adaptive round sizing with the standing
// lifecycle for SubmitStanding under EngineOptions.AdaptiveRounds.
type sizedStandingQuery struct{ *sizedQuery }

// StandingQuery implements engine.Standing.
func (q *sizedStandingQuery) StandingQuery() bool { return true }

// sizedQuery opts an engineQuery into the scheduler's adaptive round
// sizing (engine.Sized). It is a separate wrapper type so the default
// engine never implements Sized: with AdaptiveRounds off the scheduler's
// type assertion fails and the static path runs clock-free and
// byte-identical to before.
type sizedQuery struct {
	*engineQuery
	// breakerOpens polls the source's cumulative breaker-open count (nil
	// when no backend reports capacity); lastOpens is the edge detector.
	breakerOpens func() int64
	lastOpens    int64
	// scope attributes capacity-loss edges to (shard, replica).
	scope capacityScope
}

// RoundQuota implements engine.Sized: it folds any breaker-open events
// since the last round into the controller (capacity loss shrinks
// multiplicatively before the next propose) and returns the fleet's
// current quota. The cheap aggregate counter is the edge detector; only
// on an edge does the scope do per-replica attribution.
func (q *sizedQuery) RoundQuota(base int) int {
	if q.breakerOpens != nil {
		if n := q.breakerOpens(); n > q.lastOpens {
			q.lastOpens = n
			q.scope.loss(q.run.src, q.sizer)
		}
	}
	return q.sizer.Quota()
}

// capacityScope attributes a query's breaker-open edges to the specific
// (shard, replica) controller that should shrink, by diffing per-replica
// open counts between edges. Anything it cannot attribute — a shard
// whose backend exposes no per-replica detail, or an edge whose
// per-replica diff shows nothing new — falls back to shrinking every
// controller, the pre-scoping behavior.
type capacityScope struct {
	// last maps shard index → per-replica opens at the last edge (or at
	// seeding time). A shard first sighted mid-run is baselined, not
	// charged: its historical opens predate this query's view.
	last map[int][]int64
}

// seed snapshots the per-replica baselines and registers per-replica
// quota controllers for every scatter-enabled shard. Called once at
// submit, before the first round.
func (cs *capacityScope) seed(src *querySource, fleet *sizer.Fleet) {
	if src.replicaFleets == nil {
		return
	}
	fleets := src.replicaFleets()
	if len(fleets) == 0 {
		return
	}
	cs.last = make(map[int][]int64, len(fleets))
	for _, rf := range fleets {
		cs.last[rf.shard] = append([]int64(nil), rf.opens...)
		if rf.scatter && len(rf.weights) > 1 {
			fleet.SeedReplicas(shardAffinityKey(src, rf.shard), rf.weights)
		}
	}
}

// loss handles one aggregate breaker-open edge.
func (cs *capacityScope) loss(src *querySource, fleet *sizer.Fleet) {
	if src.replicaFleets == nil {
		fleet.CapacityLossAll()
		return
	}
	attributed := false
	for _, rf := range src.replicaFleets() {
		prev, seen := cs.last[rf.shard]
		if !seen {
			if cs.last == nil {
				cs.last = make(map[int][]int64)
			}
			cs.last[rf.shard] = append([]int64(nil), rf.opens...)
			continue
		}
		for ri, n := range rf.opens {
			var p int64
			if ri < len(prev) {
				p = prev[ri]
			}
			if n > p {
				fleet.CapacityLoss(shardAffinityKey(src, rf.shard), ri)
				attributed = true
			}
		}
		cs.last[rf.shard] = append(prev[:0], rf.opens...)
	}
	if !attributed {
		fleet.CapacityLossAll()
	}
}

// ObserveBatch implements engine.Sized: one successfully dispatched
// group's wall latency feeds the (query, backend-key) controller — but
// charged against the frames the backend actually served, not the group
// size. A group resolved partly (or wholly) from the memo cache would
// otherwise report near-zero per-frame latency, collapse the controller's
// baseline, and make the next genuine backend batch look like queueing.
// All-hit groups carry no backend signal and are skipped outright.
func (q *sizedQuery) ObserveBatch(key uint64, frames int, seconds float64) {
	if misses := q.scr.take(key); misses > 0 {
		q.sizer.Observe(key, misses, seconds)
	}
}
