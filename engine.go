package exsample

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/exsample/exsample/internal/cache"
	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/engine"
)

// EngineOptions configures a concurrent query engine.
type EngineOptions struct {
	// Workers bounds concurrent DetectBatch calls across every query the
	// engine is running. Any value <= 0 selects the default, NumCPU — the
	// defaulting rule for both sizing knobs is "non-positive means
	// default", so a config file's zero value and a sentinel -1 behave
	// identically. This is the knob that models
	// the shared GPU budget: however many queries are in flight, at most
	// Workers inference batches — one per (query, shard-affinity) group
	// per round, each up to FramesPerRound frames — are outstanding at
	// once. Frames within a batch are the backend's to parallelize, like a
	// GPU batch; concurrency across queries and shards comes from the
	// pool.
	Workers int
	// FramesPerRound is each query's detector quota per scheduling round.
	// Any value <= 0 selects the default, 1 (the same "non-positive means
	// default" rule as Workers). Every active query receives the same quota, which makes
	// scheduling fair-share. Values above 1 trade scheduling freshness for
	// bigger inference batches, with exactly the semantics of Search's
	// BatchSize (§III-F): a round's picks are drawn before any of its
	// updates are applied.
	FramesPerRound int
	// EventBuffer is the per-query capacity of the Events channel
	// (default 256). When a consumer falls behind, further events are
	// dropped (counted by QueryHandle.Dropped) rather than stalling the
	// engine; the final Report is always complete.
	EventBuffer int
	// CacheEntries, when positive, enables a bounded cross-query memo
	// cache of roughly this many detector outputs keyed by (source,
	// class, frame). Overlapping queries stop paying for duplicate
	// inference: a hit is charged decode-only cost. Results stay
	// byte-identical to an uncached run for the same seed — only charged
	// costs change (and, for MaxSeconds-budgeted queries, how many frames
	// the budget buys). Sources under failure injection bypass the cache.
	CacheEntries int
}

func (o EngineOptions) withDefaults() EngineOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.FramesPerRound <= 0 {
		o.FramesPerRound = 1
	}
	if o.EventBuffer == 0 {
		o.EventBuffer = 256
	}
	return o
}

// Validate reports an error for out-of-range engine options. The sizing
// knobs (Workers, FramesPerRound) are never out of range: any
// non-positive value selects the documented default.
func (o EngineOptions) Validate() error {
	if o.EventBuffer < 0 {
		return fmt.Errorf("exsample: negative EventBuffer %d", o.EventBuffer)
	}
	if o.CacheEntries < 0 {
		return fmt.Errorf("exsample: negative CacheEntries %d", o.CacheEntries)
	}
	return nil
}

// Engine runs many distinct-object queries concurrently — across one or
// more open Datasets — multiplexing their detector invocations onto one
// bounded worker pool. Each query keeps its own Thompson-sampling state,
// discriminator and report; the engine owns only scheduling: in every round
// each active query proposes its quota of frames, the union runs on the
// pool as one inference batch, and results are applied per query in pick
// order on a single goroutine.
//
// Determinism is preserved: a query submitted with a fixed seed produces
// exactly the same Report as Dataset.Search with the same Query and
// Options (plus BatchSize equal to the engine's FramesPerRound), whatever
// Workers is and whatever else the engine is running — the worker pool
// parallelizes only the stateless detector, never the bookkeeping.
//
// Engine is safe for concurrent use.
type Engine struct {
	opts  EngineOptions
	inner *engine.Engine
	memo  *cache.Cache
}

// NewEngine starts an engine. Callers must Close it to release the
// scheduler and worker goroutines.
func NewEngine(opts EngineOptions) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	e := &Engine{
		opts: opts,
		inner: engine.New(engine.Config{
			Workers:        opts.Workers,
			FramesPerRound: opts.FramesPerRound,
		}),
	}
	if opts.CacheEntries > 0 {
		e.memo = cache.New(opts.CacheEntries)
	}
	return e, nil
}

// Workers returns the engine's detector concurrency bound.
func (e *Engine) Workers() int { return e.opts.Workers }

// CacheStats reports the shared memo cache's counters; the zero value is
// returned when the cache is disabled.
type CacheStats struct {
	// Hits and Misses count memoized-lookup outcomes across all queries.
	Hits, Misses int64
	// Evictions counts entries displaced by capacity pressure.
	Evictions int64
	// Entries is the current resident entry count.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats snapshots the engine's shared detector memo cache.
func (e *Engine) CacheStats() CacheStats {
	if e.memo == nil {
		return CacheStats{}
	}
	st := e.memo.Stats()
	return CacheStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries}
}

// EngineStats reports aggregate scheduler counters.
type EngineStats struct {
	// Rounds is the number of completed scheduling rounds.
	Rounds int64
	// DetectCalls is the number of detector frames dispatched to the pool
	// (memo-cache hits included — the scheduler dispatches them the same;
	// the hit is resolved inside the batch).
	DetectCalls int64
	// Batches is the number of DetectBatch group calls issued: one per
	// (query, shard-affinity) group per round, however many frames the
	// group carried. Batches ≤ DetectCalls; the ratio is the realized
	// inference batch size.
	Batches int64
}

// Stats snapshots the engine's scheduler counters.
func (e *Engine) Stats() EngineStats {
	rounds, detects, batches := e.inner.Counters()
	return EngineStats{Rounds: rounds, DetectCalls: detects, Batches: batches}
}

// Submit registers a query against a source — a local Dataset or a
// ShardedSource — and returns its handle; the query starts running
// immediately and is scheduled fairly against every other in-flight query.
// Queries over a ShardedSource fan their detector calls out across every
// shard, and the scheduler groups each round's inference batch by shard
// (see internal/engine's affinity grouping). The context cancels the query
// (not the engine): when ctx is done the query is finalized at the next
// round boundary and Wait returns ctx's error alongside the partial report.
//
// Batching belongs to the engine, so opts.BatchSize and opts.Parallelism
// must be unset; AutoChunk and the proxy training phase are Search-only
// features.
func (e *Engine) Submit(ctx context.Context, src Source, q Query, opts Options) (*QueryHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.BatchSize > 1 || opts.Parallelism > 1 {
		return nil, fmt.Errorf("exsample: the engine schedules batching itself; set EngineOptions.FramesPerRound instead of BatchSize/Parallelism")
	}
	if opts.AutoChunk {
		return nil, fmt.Errorf("exsample: engine queries do not support AutoChunk")
	}
	if opts.ProxyTrainPositives > 0 {
		return nil, fmt.Errorf("exsample: engine queries do not support the proxy training phase")
	}
	run, err := newQueryRun(src, q, opts, e.memo)
	if err != nil {
		return nil, err
	}
	h := &QueryHandle{
		run:    run,
		ctx:    ctx,
		events: make(chan QueryEvent, e.opts.EventBuffer),
	}
	inner, err := e.inner.Submit(&engineQuery{run: run, ctx: ctx, handle: h})
	if err != nil {
		return nil, err
	}
	h.inner = inner
	return h, nil
}

// Close cancels every in-flight query and shuts the engine down, blocking
// until all queries are finalized. Pending Wait calls return. Close is
// idempotent; Submit after Close fails.
func (e *Engine) Close() { e.inner.Close() }

// QueryEvent is one streamed increment of a running engine query — the
// Engine counterpart of Session's StepInfo, extended with running totals.
type QueryEvent struct {
	// Frame is the frame that was processed.
	Frame int64
	// Chunk is the chunk it came from (-1 for non-chunked strategies).
	Chunk int
	// New lists the distinct objects this frame discovered (often empty).
	New []Result
	// SecondSightings counts objects re-confirmed by this frame.
	SecondSightings int
	// FramesProcessed and Found are the query's running totals after this
	// frame.
	FramesProcessed int64
	Found           int
	// Seconds is the charged query time so far, including any scan.
	Seconds float64
}

// QueryHandle tracks one submitted query.
type QueryHandle struct {
	run     *queryRun
	ctx     context.Context
	inner   *engine.Handle
	events  chan QueryEvent
	dropped atomic.Int64
}

// Events streams one QueryEvent per processed frame. The channel is closed
// when the query finishes (for any reason); consumers that fall behind the
// EventBuffer lose intermediate events (see Dropped) but never stall the
// engine.
func (h *QueryHandle) Events() <-chan QueryEvent { return h.events }

// Dropped returns how many events were discarded because the Events
// consumer fell behind.
func (h *QueryHandle) Dropped() int64 { return h.dropped.Load() }

// Cancel stops the query at the next round boundary. Wait returns
// context.Canceled with the partial report.
func (h *QueryHandle) Cancel() { h.inner.Cancel() }

// Wait blocks until the query finishes and returns its report. The report
// is complete on success and partial (but internally consistent) when the
// query was cancelled or failed; err is nil on success, the context's error
// for a cancellation, or the underlying pipeline error.
func (h *QueryHandle) Wait() (*Report, error) {
	if err := h.inner.Wait(); err != nil {
		return h.run.rep, err
	}
	switch h.inner.Reason() {
	case engine.ReasonCancelled:
		if err := h.ctx.Err(); err != nil {
			return h.run.rep, err
		}
		return h.run.rep, context.Canceled
	case engine.ReasonDone:
		// Done can mean the budget was reached or the context fired
		// between rounds; report the latter as a cancellation.
		if !h.run.done() {
			if err := h.ctx.Err(); err != nil {
				return h.run.rep, err
			}
		}
	}
	return h.run.rep, nil
}

// emit publishes one event without ever blocking the scheduler.
func (h *QueryHandle) emit(info StepInfo) {
	ev := QueryEvent{
		Frame:           info.Frame,
		Chunk:           info.Chunk,
		New:             info.New,
		SecondSightings: info.SecondSightings,
		FramesProcessed: h.run.rep.FramesProcessed,
		Found:           len(h.run.rep.Results),
		Seconds:         h.run.rep.TotalSeconds(),
	}
	select {
	case h.events <- ev:
	default:
		h.dropped.Add(1)
	}
}

// engineQuery adapts a queryRun to the internal scheduler's Query
// interface. Propose/Apply/Done/Finalize run on the scheduler goroutine;
// DetectBatch runs on pool workers.
type engineQuery struct {
	run     *queryRun
	ctx     context.Context
	handle  *QueryHandle
	pending []core.Pick // picks proposed this round, consumed by Apply in order
}

func (q *engineQuery) Done() bool {
	return q.ctx.Err() != nil || q.run.done()
}

func (q *engineQuery) Propose(max int) []int64 {
	q.pending = q.pending[:0]
	frames := make([]int64, 0, max)
	for len(frames) < max {
		p, ok := q.run.next()
		if !ok {
			break
		}
		q.pending = append(q.pending, p)
		frames = append(frames, p.Frame)
	}
	return frames
}

// DetectBatch runs one affinity group's frames through the query's batched
// detector — memo cache consulted first, the misses issued as a single
// backend call — under the query's own context, so a cancellation mid-batch
// aborts the call and surfaces through QueryHandle.Wait.
func (q *engineQuery) DetectBatch(frames []int64) ([]any, error) {
	results, err := q.run.detectBatch(q.ctx, frames)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(results))
	for i := range results {
		out[i] = results[i]
	}
	return out, nil
}

// AffinityKey implements engine.Affine: frames of the same (source, shard)
// share a key, so the scheduler can group a round's detect batch by shard.
func (q *engineQuery) AffinityKey(frame int64) uint64 {
	src := q.run.src
	if src.shardOf == nil {
		return src.id << 16
	}
	return src.id<<16 | uint64(src.shardOf(frame))&0xffff
}

func (q *engineQuery) Apply(frame int64, dets any) (bool, error) {
	p := q.pending[0]
	q.pending = q.pending[1:]
	if p.Frame != frame {
		return false, fmt.Errorf("exsample: engine applied frame %d out of order (expected %d)", frame, p.Frame)
	}
	info, err := q.run.apply(p, dets.(frameResult))
	if err != nil {
		return false, err
	}
	q.handle.emit(info)
	return q.run.done(), nil
}

func (q *engineQuery) Finalize() { close(q.handle.events) }
