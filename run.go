package exsample

import (
	"fmt"

	"github.com/exsample/exsample/internal/baseline"
	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
	"github.com/exsample/exsample/internal/xrand"
)

// queryRun is the incremental step state machine behind both Session and
// Engine: pick a frame (next), run the detector (detect — the only
// concurrency-safe method), and feed the detections through the
// discriminator, cost accounting and sampler bookkeeping (apply). Driving
// next/detect/apply in a loop reproduces Dataset.Search exactly for the
// same seed, which is what keeps Session ≡ Search and Engine ≡ Search.
//
// Only apply mutates state, and callers must invoke it in pick order from a
// single goroutine; detect may be fanned out across workers between a batch
// of next calls and their applies, exactly like batched Search (§III-F).
type queryRun struct {
	dataset  *Dataset
	query    Query
	opts     Options
	detector detect.Detector
	dis      *discrim.Discriminator
	curve    *metrics.RecallCurve

	sampler *core.Sampler    // StrategyExSample
	order   video.FrameOrder // other strategies
	home    map[int]int      // HomeChunkAccounting: object id -> discovering chunk

	rep       *Report
	maxFrames int64
	exhausted bool
}

// newQueryRun builds the full per-query pipeline: simulated detector,
// SORT-style discriminator, recall curve, report, and the strategy's
// sampling state. Callers are responsible for validating q and opts first
// (Session deliberately accepts queries without a stopping condition).
func (d *Dataset) newQueryRun(q Query, opts Options) (*queryRun, error) {
	total, err := d.GroundTruthCount(q.Class)
	if err != nil {
		return nil, err
	}
	sim, err := detect.NewSim(d.inner.Index, d.seed^0xdecade,
		detect.WithClass(q.Class),
		detect.WithNoise(d.noise),
		detect.WithCost(1/d.cost.DetectFPS),
	)
	if err != nil {
		return nil, err
	}
	var detector detect.Detector = sim
	if d.failAfter > 0 {
		detector = &detect.FailAfter{Inner: sim, Limit: d.failAfter}
	}
	coverage := opts.TrackerCoverage
	if coverage == 0 {
		coverage = 1
	}
	extender, err := discrim.NewTruthExtender(d.inner.Index, coverage)
	if err != nil {
		return nil, err
	}
	dis, err := discrim.New(extender, opts.IoUThreshold)
	if err != nil {
		return nil, err
	}
	curve, err := metrics.NewRecallCurve(total)
	if err != nil {
		return nil, err
	}
	maxFrames := opts.MaxFrames
	if maxFrames == 0 || maxFrames > d.NumFrames() {
		maxFrames = d.NumFrames()
	}
	r := &queryRun{
		dataset:   d,
		query:     q,
		opts:      opts,
		detector:  detector,
		dis:       dis,
		curve:     curve,
		rep:       &Report{Strategy: opts.Strategy},
		maxFrames: maxFrames,
	}
	if err := r.initStrategy(); err != nil {
		return nil, err
	}
	return r, nil
}

// initStrategy builds the frame-picking state for the configured strategy.
func (r *queryRun) initStrategy() error {
	d := r.dataset
	opts := r.opts
	switch opts.Strategy {
	case StrategyExSample:
		chunks := d.inner.Chunks
		if opts.NumChunks > 0 {
			var err error
			chunks, err = video.SplitRange(0, d.NumFrames(), opts.NumChunks)
			if err != nil {
				return err
			}
		}
		sampler, err := d.newExSampler(r.query, opts, r.rep, chunks, opts.Seed)
		if err != nil {
			return err
		}
		r.sampler = sampler
		if opts.HomeChunkAccounting {
			r.home = make(map[int]int)
		}
	case StrategyRandom:
		order, err := video.NewUniformOrder(0, d.NumFrames(), xrand.New(opts.Seed))
		if err != nil {
			return err
		}
		r.order = order
	case StrategyRandomPlus:
		hour := int64(d.inner.Profile.FPS * 3600)
		order, err := video.NewRandomPlusOrder(0, d.NumFrames(), hour, xrand.New(opts.Seed))
		if err != nil {
			return err
		}
		r.order = order
	case StrategySequential:
		order, err := video.NewSequentialOrder(0, d.NumFrames(), 1)
		if err != nil {
			return err
		}
		r.order = order
	case StrategyProxy:
		quality := opts.ProxyQuality
		if quality == 0 {
			quality = 1
		}
		scorer, err := baseline.NewProxyScorer(d.inner.Index, r.query.Class, quality, opts.Seed^0xbead)
		if err != nil {
			return err
		}
		order, err := baseline.NewProxyOrder(scorer, 0, d.NumFrames(), opts.ProxyDupRadius)
		if err != nil {
			return err
		}
		// The scoring scan is paid upfront (§II-B); the proxy training
		// phase is a Search-only feature.
		r.rep.ScanSeconds = d.cost.ScanSeconds(order.ScannedFrames)
		r.order = order
	default:
		return fmt.Errorf("exsample: step loop does not support strategy %v", opts.Strategy)
	}
	return nil
}

// next draws the next frame from the strategy's order. Chunk is -1 for
// non-chunked strategies. ok is false when the repository is exhausted;
// once false, it stays false.
func (r *queryRun) next() (pick core.Pick, ok bool) {
	if r.exhausted {
		return core.Pick{}, false
	}
	if r.sampler != nil {
		p, sok := r.sampler.Next()
		if !sok {
			r.exhausted = true
			return core.Pick{}, false
		}
		return p, true
	}
	frame, ook := r.order.Next()
	if !ook {
		r.exhausted = true
		return core.Pick{}, false
	}
	return core.Pick{Frame: frame, Chunk: -1}, true
}

// detect runs the detector on one frame. It is safe to call concurrently
// for different frames of the same run (the simulated detector is
// stateless and hash-deterministic per frame).
func (r *queryRun) detect(frame int64) []track.Detection {
	return r.detector.Detect(frame)
}

// apply charges the frame's decode and inference cost, feeds the detections
// through the discriminator, grows the report and recall curve, and updates
// the sampler's chunk statistics. It must be called in pick order from a
// single goroutine.
func (r *queryRun) apply(p core.Pick, dets []track.Detection) (StepInfo, error) {
	rep := r.rep
	rep.DecodeSeconds += r.dataset.dec.Cost(p.Frame)
	rep.DetectSeconds += r.detector.CostSeconds()
	rep.FramesProcessed++
	newObjs, secondObjs := r.dis.ObserveObjects(p.Frame, dets)

	info := StepInfo{Frame: p.Frame, Chunk: p.Chunk, SecondSightings: len(secondObjs)}
	var truthIDs []int
	for _, obj := range newObjs {
		det := obj.FirstDetection
		res := Result{
			ObjectID: len(rep.Results),
			Frame:    det.Frame,
			Class:    det.Class,
			Box:      Box{det.Box.X1, det.Box.Y1, det.Box.X2, det.Box.Y2},
			Score:    det.Score,
		}
		rep.Results = append(rep.Results, res)
		info.New = append(info.New, res)
		truthIDs = append(truthIDs, det.TruthID)
	}
	r.curve.Observe(rep.FramesProcessed, rep.TotalSeconds(), truthIDs)
	if len(truthIDs) > 0 {
		rep.CurveSamples = append(rep.CurveSamples, rep.FramesProcessed)
		rep.CurveSeconds = append(rep.CurveSeconds, rep.TotalSeconds())
		rep.CurveFound = append(rep.CurveFound, r.curve.DistinctFound())
	}
	rep.Recall = r.curve.Recall()

	if r.sampler != nil {
		if err := r.feedback(p.Chunk, newObjs, secondObjs); err != nil {
			return StepInfo{}, err
		}
	}
	return info, nil
}

// feedback applies the (d0, d1) split to the sampler, using the technical
// report's cross-chunk accounting when enabled: the -1 of a second sighting
// is charged to the chunk where the object was discovered.
func (r *queryRun) feedback(chunk int, newObjs, secondObjs []*discrim.Object) error {
	if r.home == nil {
		return r.sampler.Update(chunk, len(newObjs), len(secondObjs))
	}
	for _, o := range newObjs {
		r.home[o.ID] = chunk
	}
	if err := r.sampler.Update(chunk, len(newObjs), 0); err != nil {
		return err
	}
	for _, o := range secondObjs {
		hc, ok := r.home[o.ID]
		if !ok {
			hc = chunk
		}
		if err := r.sampler.Adjust(hc, -1); err != nil {
			return err
		}
	}
	return nil
}

// stopRequested reports whether the query's own stopping condition (Limit
// and/or RecallTarget) is satisfied — Session's advisory Done.
func (r *queryRun) stopRequested() bool {
	if r.query.Limit > 0 && len(r.rep.Results) >= r.query.Limit {
		return true
	}
	if r.query.RecallTarget > 0 && r.curve.Recall() >= r.query.RecallTarget {
		return true
	}
	return false
}

// done is the full Search stopping condition: query satisfaction plus the
// frame and charged-time budgets. The Engine finalizes a query when this
// reports true.
func (r *queryRun) done() bool {
	if r.stopRequested() {
		return true
	}
	if r.rep.FramesProcessed >= r.maxFrames {
		return true
	}
	if r.opts.MaxSeconds > 0 && r.rep.TotalSeconds() >= r.opts.MaxSeconds {
		return true
	}
	return false
}
