package exsample

import (
	"context"
	"fmt"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/cachestore"
	"github.com/exsample/exsample/internal/baseline"
	"github.com/exsample/exsample/internal/cache"
	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/shard"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
	"github.com/exsample/exsample/internal/xrand"
)

// queryRun is the incremental step state machine behind Search, Session and
// Engine: pick a frame (next), run the detector (detectBatch — the only
// concurrency-safe method), and feed the detections through the
// discriminator, cost accounting and sampler bookkeeping (apply). Driving
// next/detect/apply in a loop IS Algorithm 1 — there is exactly one
// implementation of the pipeline, and every entry point delegates to it,
// which is what keeps Search ≡ Session ≡ Engine for the same seed.
//
// queryRun works over any Source (a local Dataset or a ShardedSource); the
// step machine never learns whether its frames live on one shard or many.
// It also carries the §VII auto-chunking pilot and the BlazeIt-style proxy
// training phase as explicit states, so batching drivers need no special
// cases.
//
// Only apply mutates state, and callers must invoke it in pick order from a
// single goroutine; detectBatch may be fanned out across workers between a
// batch of next calls and their applies, exactly like batched Search
// (§III-F).
type queryRun struct {
	src      *querySource
	query    Query
	opts     Options
	detector detect.BatchDetector
	dis      *discrim.Discriminator
	curve    *metrics.RecallCurve
	// memo, when non-nil, memoizes detector output across queries; hits
	// are charged decode-only cost. Exactly one of memo and tier is
	// non-nil for a cached run: memo is the classic in-process path (keyed
	// by the per-process source id, byte-for-byte the pre-tier pipeline),
	// tier the shared result tier (keyed by the source's content address,
	// resolving through L1 → remote L2 → singleflighted detector fill).
	memo *cache.Cache
	tier *cachestore.Tiered
	// aware enables the cache-aware sampler tie-break: when Thompson
	// beliefs tie within epsilon, prefer the chunk with the higher cached
	// fraction (see core.Config.CachedFrac).
	aware bool

	sampler *core.Sampler    // StrategyExSample
	order   video.FrameOrder // other strategies
	home    map[int]int      // HomeChunkAccounting: object id -> discovering chunk

	// snap is the elastic-topology snapshot the run last synced to (nil
	// for sources with a fixed topology). next compares its generation
	// against the source's current snapshot on every pick — one atomic
	// load when nothing changed — and re-fences the sampler when the
	// topology moved, so belief state carries across shard churn instead
	// of restarting. elastic is true only when the sampler's arms are the
	// source's native global chunks (custom layouts — NumChunks, AutoChunk
	// — cannot map a shard drain onto their arms and freeze the topology
	// they started with).
	snap    *shard.Snapshot
	elastic bool
	// truthSeen and truthTotal implement reachable-population recall for
	// elastic sources: truthSeen[i] is set once shard i has been observed
	// active by this query, and truthTotal sums those shards' class
	// populations — the recall denominator. An attached shard grows the
	// denominator at the sync that makes it samplable; a shard attached
	// and drained without ever being seen active contributes nothing, and
	// a drain never shrinks it (recall stays monotonic). nil/0 for fixed
	// topologies, which use the source-wide population.
	truthSeen  []bool
	truthTotal int

	// AutoChunk (§VII) pilot state: coarse is non-nil while the pilot
	// phase is sampling the coarse layout; once pilotBudget frames have
	// been processed the sampler is rebuilt on the adaptive layout.
	coarse      []video.Chunk
	pilotBudget int64

	// Proxy training (§II-B) state: while training is true, frames come
	// from trainOrder and every frame discovering a new object counts as
	// a collected label. The phase resolves into the scored scan order
	// (enough labels) or the random fallback (budget exhausted).
	training    bool
	trainNeed   int
	trainBudget int64
	trainSpent  int64
	trainOrder  *video.UniformOrder

	// seq is the scratch behind detectOne — the sequential Search loop and
	// Session.Step run one batch at a time on one goroutine, so a single
	// per-run scratch makes the whole step loop allocation-free between
	// detector calls. The engine's concurrent groups never use it.
	seq detectScratch
	one [1]int64

	rep       *Report
	maxFrames int64
	exhausted bool
	// standing marks a live-source query with park-on-exhaustion
	// semantics: next reporting false is a pause (the engine parks the
	// query until the source appends), never a latch, and the repository
	// running dry is not a stopping condition. Standing runs always ride
	// the elastic sampler path.
	standing bool
	// err records a mid-run pipeline rebuild failure (re-chunk, scorer);
	// surfaced by the next apply and by Search's driver.
	err error
}

// frameResult carries one frame's detector output plus the inference cost
// actually incurred — zero on a cache hit (memo or tier), where the query
// pays decode-only cost. remote marks a hit served by the remote L2 rather
// than locally.
type frameResult struct {
	dets   []track.Detection
	cost   float64
	cached bool
	remote bool
}

// cacheConfig bundles the caching mode a run operates under — the engine's
// one decision point. The zero value is an uncached run; memo and tier are
// mutually exclusive (newQueryRun rejects both set).
type cacheConfig struct {
	memo *cache.Cache
	tier *cachestore.Tiered
	// aware opts the sampler into cache-aware tie-breaking; it requires
	// memo or tier.
	aware bool
}

// detectScratch is a reusable buffer set for one in-flight detectBatch
// call: the per-frame results and the memo-cache miss bookkeeping. One
// scratch serves one call at a time; concurrent batches (the engine runs a
// query's affinity groups in parallel) each need their own, which the
// engine recycles through a per-query free list. A nil scratch falls back
// to fresh allocations — the shape one-shot callers keep.
type detectScratch struct {
	res     []frameResult
	out     []any // engine-side boxed view; unused by run.go itself
	missIdx []int
	miss    []int64
	// keys and tierOuts are the shared-tier path's reusable buffers (key
	// batch and per-frame outcomes); untouched by the memo path.
	keys     []cachestore.Key
	tierOuts []cachestore.Outcome
}

// results returns the scratch's result buffer resized to n, growing only
// when capacity is short.
func (s *detectScratch) results(n int) []frameResult {
	if s == nil {
		return make([]frameResult, n)
	}
	if cap(s.res) < n {
		s.res = make([]frameResult, n)
	}
	s.res = s.res[:n]
	for i := range s.res {
		s.res[i] = frameResult{}
	}
	return s.res
}

// newQueryRun builds the full per-query pipeline over a Source: detector,
// SORT-style discriminator, recall curve, report, and the strategy's
// sampling state. cc selects the caching mode: a memo cache or a shared
// result tier, either memoizing detector output across queries (both are
// ignored for sources whose detector output is not a pure function of the
// frame, e.g. under failure injection). Callers are responsible for
// validating q and opts first (Session deliberately accepts queries
// without a stopping condition).
//
// standing selects park-on-exhaustion semantics for live sources: the run
// tolerates an empty active shard set and an empty class population at
// submission (both may arrive with a later append), and exhaustion never
// latches. Standing runs require an elastic topology.
func newQueryRun(s Source, q Query, opts Options, cc cacheConfig, standing bool) (*queryRun, error) {
	if s == nil {
		return nil, fmt.Errorf("exsample: nil Source (open a Dataset or compose a ShardedSource first)")
	}
	src := s.querySource()
	if src == nil {
		return nil, fmt.Errorf("exsample: uninitialized Source — construct it with OpenProfile, Synthesize or NewShardedSource, not as a zero value")
	}
	var snap *shard.Snapshot
	if src.topology != nil {
		snap = src.topology()
		if snap.NumActive() == 0 && !standing {
			return nil, fmt.Errorf("exsample: source %q: %w (every shard is draining or gated; attach one with AddShard first)", src.name, ErrNoActiveShards)
		}
	} else if standing {
		return nil, fmt.Errorf("exsample: standing queries need a live source (a ShardedSource or StreamSource); %q has a fixed topology", src.name)
	}
	total, err := src.groundTruth(q.Class)
	if err != nil {
		return nil, err
	}
	// Elastic sources measure recall against the population the query can
	// actually reach: the shards active right now (later syncs add shards
	// that become active while the query runs). Frozen-layout sampler runs
	// (NumChunks, AutoChunk) keep the classic source-wide denominator —
	// they never fence draining shards, so every shard stays reachable.
	var truthSeen []bool
	frozen := opts.Strategy == StrategyExSample && (opts.NumChunks > 0 || opts.AutoChunk)
	if snap != nil && src.shardTruth != nil && !frozen {
		truthSeen = make([]bool, snap.Map.NumShards())
		total = 0
		for i := range truthSeen {
			if snap.ShardActive(i) {
				truthSeen[i] = true
				total += src.shardTruth(q.Class, i)
			}
		}
		if total <= 0 && !standing {
			return nil, fmt.Errorf("exsample: class %q has no instances on any active shard of %q", q.Class, src.name)
		}
	}
	detector, err := src.newDetector(q.Class)
	if err != nil {
		return nil, err
	}
	coverage := opts.TrackerCoverage
	if coverage == 0 {
		coverage = 1
	}
	extender, err := src.newExtender(coverage)
	if err != nil {
		return nil, err
	}
	dis, err := discrim.New(extender, opts.IoUThreshold)
	if err != nil {
		return nil, err
	}
	curve, err := metrics.NewRecallCurve(total)
	if err != nil {
		return nil, err
	}
	numFrames := src.numFrames
	if snap != nil {
		numFrames = snap.Map.NumFrames()
	}
	maxFrames := opts.MaxFrames
	if maxFrames == 0 || maxFrames > numFrames {
		maxFrames = numFrames
	}
	if cc.memo != nil && cc.tier != nil {
		return nil, fmt.Errorf("exsample: a run caches through a memo cache or a shared tier, not both")
	}
	if !src.cacheable {
		cc = cacheConfig{}
	}
	if cc.memo == nil && cc.tier == nil {
		cc.aware = false
	}
	r := &queryRun{
		src:        src,
		query:      q,
		opts:       opts,
		detector:   detector,
		dis:        dis,
		curve:      curve,
		memo:       cc.memo,
		tier:       cc.tier,
		aware:      cc.aware,
		snap:       snap,
		truthSeen:  truthSeen,
		truthTotal: total,
		rep:        &Report{Strategy: opts.Strategy},
		maxFrames:  maxFrames,
		standing:   standing,
	}
	if err := r.initStrategy(); err != nil {
		return nil, err
	}
	return r, nil
}

// newSampler builds a core sampler over the given chunks with the
// configured policy, within-chunk order and optional §VII fusion (scoring
// charged per chunk on first visit into rep.ScanSeconds).
func (r *queryRun) newSampler(chunks []video.Chunk, seed uint64) (*core.Sampler, error) {
	cfg := core.Config{
		Alpha0: r.opts.Alpha0,
		Beta0:  r.opts.Beta0,
		Policy: r.opts.Policy.toCore(),
		Within: core.WithinRandomPlus,
		Seed:   seed,
	}
	if r.opts.UniformWithinChunk {
		cfg.Within = core.WithinUniform
	}
	if r.aware {
		// Cache-aware tie-breaking: the per-chunk cached fraction comes
		// from the tier's (or memo cache's) presence index — an O(chunk
		// frames / bucket width) read consulted only when Thompson draws
		// actually tie, so the signal is effectively free.
		count := func(start, end int64) int { return 0 }
		switch {
		case r.tier != nil:
			content := r.src.contentID
			count = func(start, end int64) int {
				return r.tier.CountRange(content, r.query.Class, start, end)
			}
		case r.memo != nil:
			id := r.src.id
			count = func(start, end int64) int {
				return r.memo.CountRange(id, r.query.Class, start, end)
			}
		}
		cfg.CachedFrac = func(j int) float64 {
			c := chunks[j]
			n := c.Len()
			if n <= 0 {
				return 0
			}
			frac := float64(count(c.Start, c.End)) / float64(n)
			if frac > 1 {
				frac = 1 // presence buckets are coarse; clamp the estimate
			}
			return frac
		}
	}
	if r.opts.FuseProxyWithinChunk {
		quality := r.opts.ProxyQuality
		if quality == 0 {
			quality = 1
		}
		score, err := r.src.newScorer(r.query.Class, quality, r.opts.Seed^0xbead)
		if err != nil {
			return nil, err
		}
		cfg.Within = core.WithinScored
		cfg.Scorer = score
		// Per-chunk scoring is charged on first visit — the fusion's whole
		// point is avoiding the full-dataset scan.
		cfg.OnChunkOpen = func(j int) {
			r.rep.ScanSeconds += r.src.scanSeconds(chunks[j].Start, chunks[j].End)
		}
	}
	return core.New(chunks, cfg)
}

// numFramesNow returns the repository size under the synced topology
// snapshot (the static source size when the topology is fixed).
func (r *queryRun) numFramesNow() int64 {
	if r.snap != nil {
		return r.snap.Map.NumFrames()
	}
	return r.src.numFrames
}

// initStrategy builds the frame-picking state for the configured strategy.
func (r *queryRun) initStrategy() error {
	src := r.src
	opts := r.opts
	switch opts.Strategy {
	case StrategyExSample:
		if opts.AutoChunk {
			return r.initAutoChunk()
		}
		chunks := src.chunks
		if r.snap != nil {
			chunks = r.snap.Map.Chunks()
		}
		if opts.NumChunks > 0 {
			var err error
			chunks, err = video.SplitRange(0, r.numFramesNow(), opts.NumChunks)
			if err != nil {
				return err
			}
		} else if r.snap != nil {
			// Native global chunks: arm j IS global chunk j, so topology
			// changes map directly onto sampler arms and the run follows
			// shard churn live.
			r.elastic = true
		}
		sampler, err := r.newSampler(chunks, opts.Seed)
		if err != nil {
			return err
		}
		if r.elastic {
			// A shard already draining when the query starts is fenced
			// from the first pick.
			for j := range chunks {
				if !r.snap.ChunkActive(j) {
					if err := sampler.SetEnabled(j, false); err != nil {
						return err
					}
				}
			}
		}
		r.sampler = sampler
		if opts.HomeChunkAccounting {
			r.home = make(map[int]int)
		}
	case StrategyRandom:
		order, err := video.NewUniformOrder(0, r.numFramesNow(), xrand.New(opts.Seed))
		if err != nil {
			return err
		}
		r.order = order
	case StrategyRandomPlus:
		hour := int64(src.fps * 3600)
		order, err := video.NewRandomPlusOrder(0, r.numFramesNow(), hour, xrand.New(opts.Seed))
		if err != nil {
			return err
		}
		r.order = order
	case StrategySequential:
		order, err := video.NewSequentialOrder(0, r.numFramesNow(), 1)
		if err != nil {
			return err
		}
		r.order = order
	case StrategyProxy:
		if opts.ProxyTrainPositives > 0 {
			return r.initProxyTraining()
		}
		return r.enterProxyScan()
	default:
		return fmt.Errorf("exsample: step loop does not support strategy %v", opts.Strategy)
	}
	return nil
}

// initAutoChunk starts the §VII "automating chunking" pilot: a coarse
// layout whose statistics decide the adaptive re-chunking.
func (r *queryRun) initAutoChunk() error {
	numFrames := r.numFramesNow()
	coarseM := 16
	if numFrames < int64(coarseM)*4 {
		coarseM = 1
	}
	coarse, err := video.SplitRange(0, numFrames, coarseM)
	if err != nil {
		return err
	}
	sampler, err := r.newSampler(coarse, r.opts.Seed)
	if err != nil {
		return err
	}
	// The pilot needs enough samples to rank coarse chunks but should stay
	// a small fraction of the work.
	pilot := int64(12 * coarseM)
	if pilot > numFrames/4 {
		pilot = numFrames / 4
	}
	if pilot < 1 {
		pilot = 1
	}
	r.sampler = sampler
	r.coarse = coarse
	r.pilotBudget = pilot
	return nil
}

// rechunk ends the pilot: each coarse chunk is re-split proportionally to
// its pilot point estimate and the search resumes on the adaptive layout
// with a fresh sampler. The discriminator and report persist across the
// transition, so objects found during the pilot are never double-counted.
func (r *queryRun) rechunk() error {
	fine := adaptiveChunks(r.sampler, r.coarse, 128)
	sampler, err := r.newSampler(fine, r.opts.Seed+0x5eed)
	if err != nil {
		return err
	}
	r.sampler = sampler
	r.coarse = nil
	return nil
}

// adaptiveChunks splits each coarse chunk into a number of sub-chunks
// proportional to its pilot point estimate, spending ~budget chunks total.
// Every coarse chunk keeps at least one sub-chunk so no region becomes
// unreachable.
func adaptiveChunks(pilot *core.Sampler, coarse []video.Chunk, budget int) []video.Chunk {
	weights := make([]float64, len(coarse))
	var total float64
	for j := range coarse {
		weights[j] = pilot.PointEstimate(j)
		total += weights[j]
	}
	var out []video.Chunk
	for j, c := range coarse {
		k := 1
		if total > 0 {
			k = int(float64(budget)*weights[j]/total + 0.5)
		}
		if k < 1 {
			k = 1
		}
		if int64(k) > c.Len() {
			k = int(c.Len())
		}
		subs, err := video.SplitRange(c.Start, c.End, k)
		if err != nil {
			// Cannot happen for k in [1, len]; keep the coarse chunk.
			subs = []video.Chunk{c}
		}
		out = append(out, subs...)
	}
	for i := range out {
		out[i].ID = i
	}
	return out
}

// initProxyTraining starts the BlazeIt-style label-collection phase
// (§II-B): random frames run the real detector until enough positives are
// found or the budget runs out.
func (r *queryRun) initProxyTraining() error {
	budget := r.opts.ProxyTrainBudget
	if budget == 0 {
		budget = r.numFramesNow() / 50
		if budget < int64(r.opts.ProxyTrainPositives) {
			budget = int64(r.opts.ProxyTrainPositives)
		}
	}
	order, err := video.NewUniformOrder(0, r.numFramesNow(), xrand.New(r.opts.Seed^0x7ea1))
	if err != nil {
		return err
	}
	r.training = true
	r.trainNeed = r.opts.ProxyTrainPositives
	r.trainBudget = budget
	r.trainOrder = order
	return nil
}

// enterProxyScan resolves the proxy strategy into its scored scan order,
// charging the full upfront scoring pass (§II-B).
func (r *queryRun) enterProxyScan() error {
	quality := r.opts.ProxyQuality
	if quality == 0 {
		quality = 1
	}
	score, err := r.src.newScorer(r.query.Class, quality, r.opts.Seed^0xbead)
	if err != nil {
		return err
	}
	order, err := baseline.NewProxyOrderFunc(score, 0, r.numFramesNow(), r.opts.ProxyDupRadius)
	if err != nil {
		return err
	}
	// The scan is paid in full before the first post-scan detector call.
	r.rep.ScanSeconds = r.src.scanSeconds(0, r.numFramesNow())
	r.order = order
	r.training = false
	return nil
}

// syncTopology refreshes the run's view of an elastic source. It is one
// generation compare per pick when nothing changed. When the topology
// moved, the sampler (native-chunk runs only) gains fresh prior arms for
// chunks that appeared and fences arms whose shard is draining; every
// other piece of query state — per-chunk statistics, discriminator,
// report, memo-cache keys — is untouched, because the global address
// space is append-only. Unbounded runs also widen their frame budget so
// an attached shard's frames stay reachable.
func (r *queryRun) syncTopology() {
	if r.src.topology == nil {
		return
	}
	snap := r.src.topology()
	if snap.Gen == r.snap.Gen {
		return
	}
	r.snap = snap
	// Re-derive the frame budget against the enlarged repository: an
	// unbounded run tracks the source size, and a bounded run whose
	// MaxFrames exceeded the old size regains headroom up to its bound.
	if grown := snap.Map.NumFrames(); grown > r.maxFrames {
		switch {
		case r.opts.MaxFrames == 0:
			r.maxFrames = grown
		case r.opts.MaxFrames > r.maxFrames:
			r.maxFrames = min(r.opts.MaxFrames, grown)
		}
	}
	// Fold newly reachable shards into the recall denominator: a shard
	// observed active for the first time adds its population (so recall
	// and RecallTarget track the enlarged repository); drains subtract
	// nothing, keeping recall monotonic. Only elastic sampler runs grow —
	// order strategies filter draining frames but their orders were built
	// over the original range and can never emit an attached shard's
	// frames, so their denominator stays the population active at start.
	if r.elastic && r.truthSeen != nil && r.src.shardTruth != nil {
		n := snap.Map.NumShards()
		for len(r.truthSeen) < n {
			r.truthSeen = append(r.truthSeen, false)
		}
		for i := 0; i < n; i++ {
			if !r.truthSeen[i] && snap.ShardActive(i) {
				r.truthSeen[i] = true
				r.truthTotal += r.src.shardTruth(r.query.Class, i)
			}
		}
		r.curve.SetTotal(r.truthTotal)
	}
	if !r.elastic || r.sampler == nil {
		return
	}
	chunks := snap.Map.Chunks()
	if n := r.sampler.NumChunks(); len(chunks) > n {
		if err := r.sampler.Append(chunks[n:]); err != nil {
			r.err = err
			return
		}
	}
	for j := range chunks {
		if err := r.sampler.SetEnabled(j, snap.ChunkActive(j)); err != nil {
			r.err = err
			return
		}
	}
}

// activeFrame reports whether a frame is pickable under the synced
// topology (frames of draining shards are not; fixed topologies accept
// everything).
func (r *queryRun) activeFrame(frame int64) bool {
	return r.snap == nil || r.snap.FrameActive(frame)
}

// next draws the next frame from the strategy's order. Chunk is -1 for
// non-chunked strategies. ok is false when the repository is exhausted;
// for bounded runs, once false it stays false (an elastic attach does not
// resurrect an exhausted query — the engine has already finalized it).
// Standing runs never latch: the engine parks them on false and a later
// append makes next productive again, because the sampler's arm set grows
// at the syncTopology that follows the wake.
func (r *queryRun) next() (pick core.Pick, ok bool) {
	if r.exhausted || r.err != nil {
		return core.Pick{}, false
	}
	r.syncTopology()
	if r.err != nil {
		return core.Pick{}, false
	}
	if r.training {
		for r.trainNeed > 0 && r.trainSpent < r.trainBudget {
			frame, ook := r.trainOrder.Next()
			if !ook {
				// The whole repository was consumed as training frames.
				r.exhausted = true
				return core.Pick{}, false
			}
			if !r.activeFrame(frame) {
				// Draining shard: the frame is fenced, not charged.
				continue
			}
			r.trainSpent++
			return core.Pick{Frame: frame, Chunk: -1}, true
		}
		if r.training {
			// Budget exhausted without enough labels: degrade to plain
			// random sampling, continuing the training order so frames do
			// not repeat (BlazeIt's rare-class fallback, §II-B). No scan
			// is charged.
			r.training = false
			r.order = r.trainOrder
		}
	}
	if r.sampler != nil {
		if r.coarse != nil && r.rep.FramesProcessed >= r.pilotBudget {
			if err := r.rechunk(); err != nil {
				r.err = err
				return core.Pick{}, false
			}
		}
		p, sok := r.sampler.Next()
		if !sok {
			// A pilot sampler can exhaust before its budget on tiny
			// repositories; resume on the adaptive layout.
			if r.coarse != nil {
				if err := r.rechunk(); err != nil {
					r.err = err
					return core.Pick{}, false
				}
				if p, sok = r.sampler.Next(); sok {
					return p, true
				}
			}
			if !r.standing {
				r.exhausted = true
			}
			return core.Pick{}, false
		}
		return p, true
	}
	for {
		frame, ook := r.order.Next()
		if !ook {
			if !r.standing {
				r.exhausted = true
			}
			return core.Pick{}, false
		}
		if !r.activeFrame(frame) {
			// Draining shard: skip the frame without charging anything.
			continue
		}
		return core.Pick{Frame: frame, Chunk: -1}, true
	}
}

// marginalValue estimates the query's expected new results per frame for
// the engine's global budget planner: the best enabled arm's prior-smoothed
// point estimate under ExSample, or a whole-run aggregate belief for
// non-chunked strategies (results over frames, smoothed by the same paper
// prior, so an untouched query starts at the prior exactly like a fresh
// sampler). Topology is synced first so a standing query woken by an
// append values its fresh prior arms before the plan is drawn, and a
// finished or failed query values 0 — it has nothing left to claim.
func (r *queryRun) marginalValue() float64 {
	if r.exhausted || r.err != nil {
		return 0
	}
	r.syncTopology()
	if r.err != nil {
		return 0
	}
	if r.sampler != nil {
		return r.sampler.MaxPointEstimate()
	}
	return (float64(len(r.rep.Results)) + core.DefaultAlpha0) /
		(float64(r.rep.FramesProcessed) + core.DefaultBeta0)
}

// detectBatch runs the detector on a batch of frames, consulting the
// cross-query memo cache first when enabled: cache hits are resolved
// locally and only the misses — as one subsequence, in order — reach the
// backend in a single DetectBatch call. It is safe to call concurrently
// for disjoint batches of the same run (the detector contract requires
// concurrency safety; the cache is lock-striped). ctx cancels the
// underlying detector call; the error surfaces to the caller with no
// results applied.
func (r *queryRun) detectBatch(ctx context.Context, frames []int64) ([]frameResult, error) {
	return r.detectBatchInto(ctx, frames, nil)
}

// detectBatchInto is detectBatch writing through the caller's reusable
// scratch (nil allocates fresh buffers). The returned slice aliases the
// scratch and is valid until the scratch's next use.
func (r *queryRun) detectBatchInto(ctx context.Context, frames []int64, scr *detectScratch) ([]frameResult, error) {
	if r.tier != nil {
		return detectFramesTiered(ctx, r.detector, r.tier, r.src.contentID, r.query.Class, frames, scr)
	}
	return detectFrames(ctx, r.detector, r.memo, r.src.id, r.query.Class, frames, scr)
}

// detectFrames is the memo-aware batched detect shared by every run type
// (distinct-object queryRun and trackRun): cache hits resolve locally and
// only the misses — as one subsequence, in order — reach the backend in a
// single DetectBatch call. Safe for concurrent calls with disjoint scratches.
func detectFrames(ctx context.Context, detector detect.BatchDetector, memo *cache.Cache, srcID uint64, class string, frames []int64, scr *detectScratch) ([]frameResult, error) {
	out := scr.results(len(frames))
	if memo == nil {
		// Fast path for uncached runs: the whole batch is one detector
		// call, no index indirection.
		outs, err := detector.DetectBatch(ctx, frames)
		if err != nil {
			return nil, err
		}
		if len(outs) != len(frames) {
			return nil, fmt.Errorf("exsample: detector returned %d results for a %d-frame batch", len(outs), len(frames))
		}
		for i, fo := range outs {
			out[i] = frameResult{dets: fo.Dets, cost: fo.Cost}
		}
		return out, nil
	}
	missIdx := []int(nil)
	if scr != nil {
		missIdx = scr.missIdx[:0]
	}
	for i, frame := range frames {
		key := cache.Key{Source: srcID, Class: class, Frame: frame}
		if dets, ok := memo.Get(key); ok {
			out[i] = frameResult{dets: dets, cached: true}
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if scr != nil {
		scr.missIdx = missIdx
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	miss := []int64(nil)
	if scr != nil {
		miss = scr.miss[:0]
	} else {
		miss = make([]int64, 0, len(missIdx))
	}
	for _, i := range missIdx {
		miss = append(miss, frames[i])
	}
	if scr != nil {
		scr.miss = miss
	}
	outs, err := detector.DetectBatch(ctx, miss)
	if err != nil {
		return nil, err
	}
	if len(outs) != len(miss) {
		return nil, fmt.Errorf("exsample: detector returned %d results for a %d-frame batch", len(outs), len(miss))
	}
	for k, i := range missIdx {
		out[i] = frameResult{dets: outs[k].Dets, cost: outs[k].Cost}
		memo.Put(cache.Key{Source: srcID, Class: class, Frame: frames[i]}, outs[k].Dets)
	}
	return out, nil
}

// detectFramesTiered is the shared-tier counterpart of detectFrames: the
// batch resolves through the tiered store (L1 → remote L2 → singleflighted
// fill), and only the frames no tier held — the TierDetector outcomes —
// reach the backend, through the tier's fill seam so concurrent identical
// misses across queries collapse to one detector call. scr.missIdx comes
// back holding exactly those detector-charged positions, preserving the
// sizer's miss accounting. Safe for concurrent calls with disjoint
// scratches.
func detectFramesTiered(ctx context.Context, detector detect.BatchDetector, tier *cachestore.Tiered, content uint64, class string, frames []int64, scr *detectScratch) ([]frameResult, error) {
	out := scr.results(len(frames))
	var keys []cachestore.Key
	var outs []cachestore.Outcome
	if scr != nil {
		if cap(scr.keys) < len(frames) {
			scr.keys = make([]cachestore.Key, len(frames))
		}
		scr.keys = scr.keys[:len(frames)]
		keys = scr.keys
		outs = scr.tierOuts
	} else {
		keys = make([]cachestore.Key, len(frames))
	}
	for i, f := range frames {
		keys[i] = cachestore.Key{Content: content, Class: class, Frame: f}
	}
	res, err := tier.FetchBatch(ctx, keys, outs, func(fctx context.Context, miss []int) ([][]backend.Detection, []float64, error) {
		mf := make([]int64, len(miss))
		for k, i := range miss {
			mf[k] = frames[i]
		}
		fouts, ferr := detector.DetectBatch(fctx, mf)
		if ferr != nil {
			return nil, nil, ferr
		}
		if len(fouts) != len(mf) {
			return nil, nil, fmt.Errorf("exsample: detector returned %d results for a %d-frame batch", len(fouts), len(mf))
		}
		dets := make([][]backend.Detection, len(miss))
		costs := make([]float64, len(miss))
		for k, fo := range fouts {
			dets[k] = trackToBackend(fo.Dets)
			costs[k] = fo.Cost
		}
		return dets, costs, nil
	})
	if err != nil {
		return nil, err
	}
	missIdx := []int(nil)
	if scr != nil {
		scr.tierOuts = res
		missIdx = scr.missIdx[:0]
	}
	for i, o := range res {
		dets := backendToTrack(frames[i], o.Dets)
		switch o.Where {
		case cachestore.TierDetector:
			out[i] = frameResult{dets: dets, cost: o.Cost}
			missIdx = append(missIdx, i)
		case cachestore.TierL2:
			out[i] = frameResult{dets: dets, cached: true, remote: true}
		default: // TierL1, TierMerged: locally resolved, zero inference cost
			out[i] = frameResult{dets: dets, cached: true}
		}
	}
	if scr != nil {
		scr.missIdx = missIdx
	}
	return out, nil
}

// detectOne is detectBatch for a single frame — the shape the sequential
// Search loop and Session's Step use. It runs through the per-run
// sequential scratch, so the steady-state step loop allocates nothing
// between detector calls.
func (r *queryRun) detectOne(ctx context.Context, frame int64) (frameResult, error) {
	r.one[0] = frame
	res, err := r.detectBatchInto(ctx, r.one[:], &r.seq)
	if err != nil {
		return frameResult{}, err
	}
	return res[0], nil
}

// apply charges the frame's decode and inference cost, feeds the detections
// through the discriminator, grows the report and recall curve, and updates
// the sampler's chunk statistics. It must be called in pick order from a
// single goroutine.
func (r *queryRun) apply(p core.Pick, fr frameResult) (StepInfo, error) {
	if r.err != nil {
		return StepInfo{}, r.err
	}
	rep := r.rep
	rep.DecodeSeconds += r.src.decodeCost(p.Frame)
	rep.DetectSeconds += fr.cost
	if r.memo != nil || r.tier != nil {
		if fr.cached {
			rep.CacheHits++
			if fr.remote {
				rep.RemoteCacheHits++
			}
		} else {
			rep.CacheMisses++
		}
	}
	rep.FramesProcessed++
	newObjs, secondObjs := r.dis.ObserveObjects(p.Frame, fr.dets)

	info := StepInfo{Frame: p.Frame, Chunk: p.Chunk, SecondSightings: len(secondObjs)}
	var truthIDs []int
	for _, obj := range newObjs {
		det := obj.FirstDetection
		res := Result{
			ObjectID: len(rep.Results),
			Frame:    det.Frame,
			Class:    det.Class,
			Box:      Box{X1: det.Box.X1, Y1: det.Box.Y1, X2: det.Box.X2, Y2: det.Box.Y2},
			Score:    det.Score,
		}
		rep.Results = append(rep.Results, res)
		info.New = append(info.New, res)
		truthIDs = append(truthIDs, det.TruthID)
	}
	r.curve.Observe(rep.FramesProcessed, rep.TotalSeconds(), truthIDs)
	if len(truthIDs) > 0 {
		rep.CurveSamples = append(rep.CurveSamples, rep.FramesProcessed)
		rep.CurveSeconds = append(rep.CurveSeconds, rep.TotalSeconds())
		rep.CurveFound = append(rep.CurveFound, r.curve.DistinctFound())
	}
	rep.Recall = r.curve.Recall()

	if r.training && len(newObjs) > 0 {
		// A frame containing the class is one collected label; enough
		// labels resolve the phase into the scored scan immediately (the
		// scan is charged even if the query is already satisfied, exactly
		// like the monolithic pipeline did).
		r.trainNeed--
		if r.trainNeed <= 0 {
			if err := r.enterProxyScan(); err != nil {
				return StepInfo{}, err
			}
		}
	}

	if r.sampler != nil {
		if err := r.feedback(p.Chunk, newObjs, secondObjs); err != nil {
			return StepInfo{}, err
		}
	}
	return info, nil
}

// feedback applies the (d0, d1) split to the sampler, using the technical
// report's cross-chunk accounting when enabled: the -1 of a second sighting
// is charged to the chunk where the object was discovered.
func (r *queryRun) feedback(chunk int, newObjs, secondObjs []*discrim.Object) error {
	if r.home == nil {
		return r.sampler.Update(chunk, len(newObjs), len(secondObjs))
	}
	for _, o := range newObjs {
		r.home[o.ID] = chunk
	}
	if err := r.sampler.Update(chunk, len(newObjs), 0); err != nil {
		return err
	}
	for _, o := range secondObjs {
		hc, ok := r.home[o.ID]
		if !ok {
			hc = chunk
		}
		if err := r.sampler.Adjust(hc, -1); err != nil {
			return err
		}
	}
	return nil
}

// stopRequested reports whether the query's own stopping condition (Limit
// and/or RecallTarget) is satisfied — Session's advisory Done.
func (r *queryRun) stopRequested() bool {
	if r.query.Limit > 0 && len(r.rep.Results) >= r.query.Limit {
		return true
	}
	if r.query.RecallTarget > 0 && r.curve.Recall() >= r.query.RecallTarget {
		return true
	}
	return false
}

// done is the full Search stopping condition: query satisfaction plus the
// frame and charged-time budgets. The Engine finalizes a query when this
// reports true. Standing runs answer with standingDone — the
// repository-size-derived frame budget does not apply to a repository that
// grows while the query is registered.
func (r *queryRun) done() bool {
	if r.standing {
		return r.standingDone()
	}
	if r.stopRequested() {
		return true
	}
	if r.rep.FramesProcessed >= r.maxFrames {
		return true
	}
	if r.opts.MaxSeconds > 0 && r.rep.TotalSeconds() >= r.opts.MaxSeconds {
		return true
	}
	return false
}

// standingDone is the standing query's stopping condition: only explicit,
// user-set bounds count. The repository running dry is a pause (the engine
// parks the query), and the repository-size-derived frame budget that
// terminates a bounded run is meaningless when the repository grows while
// the query is registered.
func (r *queryRun) standingDone() bool {
	if r.stopRequested() {
		return true
	}
	if r.opts.MaxFrames > 0 && r.rep.FramesProcessed >= r.opts.MaxFrames {
		return true
	}
	if r.opts.MaxSeconds > 0 && r.rep.TotalSeconds() >= r.opts.MaxSeconds {
		return true
	}
	return false
}
