// Comparison: the paper's central experiment in miniature. Run the same
// distinct-object limit query under ExSample, uniform random sampling, and
// the BlazeIt-style proxy baseline, and compare the charged query times.
//
// The proxy must score every frame of the repository before returning its
// first result (§II-B); ExSample and random can start immediately. The
// output mirrors the Table I argument: the scan alone usually costs more
// than ExSample's entire query.
package main

import (
	"fmt"
	"log"

	exsample "github.com/exsample/exsample"
)

func main() {
	// A static-camera profile with a rare class: dogs in 20 hours of night
	// street video (at 10% scale). The perfect detector keeps the
	// comparison about sampling strategy rather than detector noise.
	ds, err := exsample.OpenProfile("night-street", 0.1, 7, exsample.WithPerfectDetector())
	if err != nil {
		log.Fatal(err)
	}
	total, err := ds.GroundTruthCount("dog")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("night-street @ 0.1 scale: %d frames, %d distinct dogs\n", ds.NumFrames(), total)
	fmt.Printf("a full proxy scoring scan would take %.0fs at 100 fps\n\n", ds.ScanSeconds())

	query := exsample.Query{Class: "dog", Limit: 10}
	strategies := []exsample.Strategy{
		exsample.StrategyExSample,
		exsample.StrategyRandom,
		exsample.StrategyProxy,
	}

	fmt.Printf("%-10s %10s %10s %10s %10s %8s\n",
		"strategy", "frames", "detect(s)", "scan(s)", "total(s)", "recall")
	var exsampleTotal float64
	for _, s := range strategies {
		rep, err := ds.Search(query, exsample.Options{Strategy: s, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10d %10.1f %10.1f %10.1f %7.1f%%\n",
			s, rep.FramesProcessed, rep.DetectSeconds, rep.ScanSeconds,
			rep.TotalSeconds(), rep.Recall*100)
		if s == exsample.StrategyExSample {
			exsampleTotal = rep.TotalSeconds()
		}
	}

	fmt.Printf("\nExSample answers the limit query in %.1fs — the proxy spends %.0fs scanning before its first result.\n",
		exsampleTotal, ds.ScanSeconds())
}
