// Backend: plug a remote detector into the query pipeline through the
// public backend API — the walkthrough for README's "Pluggable detector
// backends" section.
//
// The setup mirrors a real deployment split: one process owns the video
// and the GPU (here: a dataset whose simulated detector stands in for the
// DNN), serving detections over the backend/httpbatch wire protocol; the
// query side knows only the endpoint URL. The walkthrough
//
//  1. serves a dataset's default Backend on a loopback HTTP server,
//  2. opens a query-side dataset attached to an httpbatch.Client,
//  3. runs an Engine query whose every detector call crosses the wire —
//     one batch per scheduling round, cost charged from the
//     server-reported latency,
//  4. runs the same seeded query all-locally and shows the reports agree
//     byte for byte (the backend seam adds plumbing, never behavior).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"

	exsample "github.com/exsample/exsample"
	"github.com/exsample/exsample/backend/httpbatch"
)

// open builds one copy of the demo dataset. Both sides construct it from
// the same spec and seed, the way a serving fleet and a query planner
// share one archive.
func open(opts ...exsample.DatasetOption) (*exsample.Dataset, error) {
	return exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    150_000,
		NumInstances: 250,
		Class:        "cyclist",
		MeanDuration: 140,
		SkewFraction: 1.0 / 12,
		ChunkFrames:  3000,
		Seed:         77,
	}, opts...)
}

func main() {
	// 1. The "GPU fleet": a dataset's default Backend (the simulated
	// detector behind the public adapter) served over HTTP.
	fleet, err := open()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpbatch.Handler(fleet.Backend())}
	go srv.Serve(ln)
	defer srv.Close()
	endpoint := "http://" + ln.Addr().String()
	fmt.Printf("serving detections at %s\n", endpoint)

	// 2. The query side: same archive, detector = remote endpoint. The
	// client caps in-flight requests, retries transient failures and
	// splits batches above MaxBatch.
	client, err := httpbatch.New(httpbatch.Config{Endpoint: endpoint, MaxBatch: 32})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := open(exsample.WithBackend(client))
	if err != nil {
		log.Fatal(err)
	}

	// 3. One Engine query; every scheduling round issues exactly one wire
	// batch (single source → one affinity group per round).
	eng, err := exsample.NewEngine(exsample.EngineOptions{Workers: 4, FramesPerRound: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	q := exsample.Query{Class: "cyclist", Limit: 20}
	opts := exsample.Options{Seed: 123}
	h, err := eng.Submit(context.Background(), remote, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := h.Wait()
	if err != nil {
		log.Fatal(err)
	}
	st := client.Stats()
	es := eng.Stats()
	fmt.Printf("found %d cyclists in %d frames, %.1f charged seconds\n",
		len(rep.Results), rep.FramesProcessed, rep.TotalSeconds())
	fmt.Printf("wire: %d batches, %d frames (%.1f frames/batch), %d retries, %.2f server seconds\n",
		st.Batches, st.Frames, float64(st.Frames)/float64(st.Batches), st.Retries, st.ServerSeconds)
	fmt.Printf("engine: %d rounds, %d detect batches\n", es.Rounds, es.Batches)

	// 4. Determinism across the seam: the same seeded query on a local
	// sim-backed copy produces a byte-identical report.
	local, err := open()
	if err != nil {
		log.Fatal(err)
	}
	eng2, err := exsample.NewEngine(exsample.EngineOptions{Workers: 4, FramesPerRound: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	h2, err := eng2.Submit(context.Background(), local, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	localRep, err := h2.Wait()
	if err != nil {
		log.Fatal(err)
	}
	if reflect.DeepEqual(rep, localRep) {
		fmt.Println("remote and local reports are byte-identical")
	} else {
		fmt.Println("WARNING: remote report diverged from local run")
	}
}
