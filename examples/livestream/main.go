// Livestream: query video that is still being recorded. A synthetic camera
// appends fixed-duration segments into a bounded StreamSource ring — the
// motion gate fences dead segments at append time, retention evicts the
// oldest — while a standing query registered with Engine.SubmitStanding
// rides along: it alerts on each segment's objects as they arrive, parks
// when the ring is drained, and wakes on the next live append. At the end,
// the segment table shows the gate's deal: dead segments cost a strided
// probe pass and exactly zero detector calls.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	exsample "github.com/exsample/exsample"
)

const (
	segmentFrames = 2_000
	appends       = 10
	retention     = 6
	gate          = 0.12
)

// segment synthesizes one camera segment. A live segment has dense traffic;
// a dead one holds a single object visible for about a frame — overnight
// footage of an empty street, as far as the motion gate is concerned.
func segment(seed uint64, dead bool) *exsample.Dataset {
	spec := exsample.SynthSpec{
		NumFrames:    segmentFrames,
		NumInstances: 40,
		Class:        "car",
		MeanDuration: 100,
		SkewFraction: 1.0 / 8,
		ChunkFrames:  segmentFrames / 8,
		Seed:         seed,
	}
	if dead {
		spec.NumInstances = 1
		spec.MeanDuration = 1
	}
	ds, err := exsample.Synthesize(spec)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

func main() {
	stream, err := exsample.NewStreamSource(exsample.StreamConfig{
		Name:            "camera",
		Retention:       retention,
		MotionThreshold: gate,
	}, segment(1, false))
	if err != nil {
		log.Fatal(err)
	}

	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        4,
		FramesPerRound: 4,
		EventBuffer:    1 << 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// A standing query has no Limit and no RecallTarget: it runs until
	// cancelled, emitting alerts as segments arrive.
	h, err := eng.SubmitStanding(context.Background(), stream,
		exsample.Query{Class: "car"}, exsample.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	alerts := make(chan int, 1)
	go func() {
		n := 0
		for ev := range h.Events() {
			n += len(ev.New)
		}
		alerts <- n
	}()

	parked := func() {
		for !h.Parked() {
			time.Sleep(200 * time.Microsecond)
		}
	}
	parked()
	fmt.Printf("standing query registered; initial segment drained, query parked\n\n")

	for n := 1; n <= appends; n++ {
		info, err := stream.Append(segment(uint64(n)*31, n%2 == 0))
		if err != nil {
			log.Fatal(err)
		}
		st := stream.StreamStats()
		verdict := "live — standing query woken"
		if info.Gated {
			verdict = "dead — fenced, detector never charged"
		}
		fmt.Printf("append slot %2d  energy %.3f  %-38s  ring %d/%d live, %d evicted\n",
			info.Slot, info.Energy, verdict, st.Live, st.Appended, st.Evicted)
		parked()
	}

	h.Cancel()
	rep, err := h.Wait()
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	fmt.Printf("\nstanding query: %d distinct cars (%d alert events) over %d frames, %.1fs charged\n",
		len(rep.Results), <-alerts, rep.FramesProcessed, rep.TotalSeconds())

	st := stream.StreamStats()
	fmt.Printf("ring: %d appended, %d gated, %d evicted; gate probe charge %.1fs\n\n",
		st.Appended, st.Gated, st.Evicted, st.GateSeconds)
	fmt.Println("slot  status    energy   detector-calls")
	shardStats := stream.ShardStats()
	for _, seg := range stream.Segments() {
		fmt.Printf("%4d  %-8s  %6.3f  %15d\n",
			seg.Slot, shardStats[seg.Slot].Status, seg.Energy, shardStats[seg.Slot].DetectCalls)
	}
	fmt.Println("\n(gated slots show zero detector calls — the motion gate's whole point)")
}
