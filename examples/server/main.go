// Server: run many distinct-object queries concurrently with the Engine —
// the multi-tenant shape of ExSample, where one bounded detector worker
// pool (the shared GPU budget) serves every client's query at once while
// each query keeps its own Thompson-sampling state.
//
// Three clients search the same dashcam archive for different classes; we
// stream each query's incremental results as they arrive and print the
// final reports. Note the per-query charged seconds: fair-share scheduling
// means no query monopolizes the detector even though their difficulties
// differ wildly.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	exsample "github.com/exsample/exsample"
)

func main() {
	ds, err := exsample.OpenProfile("dashcam", 0.05, 42)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        4, // at most 4 detector invocations in flight, total
		FramesPerRound: 2, // each query proposes 2 frames per scheduling round
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	classes := []string{"traffic light", "bicycle", "bus"}
	handles := make([]*exsample.QueryHandle, len(classes))
	for i, class := range classes {
		handles[i], err = eng.Submit(context.Background(), ds,
			exsample.Query{Class: class, Limit: 8},
			exsample.Options{Seed: uint64(i + 1)})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Stream incremental results from all three queries as they happen.
	start := time.Now()
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *exsample.QueryHandle) {
			defer wg.Done()
			for ev := range h.Events() {
				for _, r := range ev.New {
					fmt.Printf("[%6.1fms] %-14s object %2d at frame %d\n",
						float64(time.Since(start).Microseconds())/1000,
						classes[i], r.ObjectID, r.Frame)
				}
			}
		}(i, h)
	}

	for i, h := range handles {
		rep, err := h.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s done: %d distinct objects, %d frames, %.1fs charged detector time\n",
			classes[i], len(rep.Results), rep.FramesProcessed, rep.TotalSeconds())
	}
	wg.Wait()
}
