// Chunking: reproduces the Figure 4 phenomenon on a live search — the
// number of chunks is the one parameter the user chooses ahead of time, and
// both too few (can't exploit skew) and too many (too many arms to learn)
// hurt. The sweet spot spans orders of magnitude.
package main

import (
	"fmt"
	"log"

	exsample "github.com/exsample/exsample"
)

func main() {
	// A custom single-class dataset with strong skew: 95% of the 500
	// objects live in 1/32 of the two-million-frame repository.
	ds, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    2_000_000,
		NumInstances: 500,
		Class:        "event",
		MeanDuration: 700,
		SkewFraction: 1.0 / 32,
		Seed:         3,
	}, exsample.WithPerfectDetector())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic repository: %d frames, 500 objects, 95%% inside 1/32 of the data\n\n", ds.NumFrames())

	q := exsample.Query{Class: "event", RecallTarget: 0.5}
	fmt.Printf("%8s %12s %12s\n", "chunks", "frames", "vs random")

	// Random baseline first.
	rnd, err := ds.Search(q, exsample.Options{Strategy: exsample.StrategyRandom, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %12d %12s\n", "random", rnd.FramesProcessed, "1.00x")

	for _, m := range []int{1, 2, 16, 128, 1024} {
		rep, err := ds.Search(q, exsample.Options{
			Strategy:  exsample.StrategyExSample,
			NumChunks: m,
			Seed:      21,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %11.2fx\n", m, rep.FramesProcessed,
			float64(rnd.FramesProcessed)/float64(rep.FramesProcessed))
	}
	fmt.Println("\n1 chunk degenerates to random; moderate chunk counts exploit the skew;")
	fmt.Println("very many chunks pay a long exploration tax before the skew is visible (§IV-C).")
}
