// Dashcam: the map-annotation scenario from the paper's introduction. An
// OpenStreetMap contributor wants most of the stop signs in a drive archive
// (high recall), while an autonomous-driving data scientist only needs a
// handful of bicycle examples (low recall). The right stopping point — and
// the value of adaptive sampling — differs between the two.
package main

import (
	"fmt"
	"log"

	exsample "github.com/exsample/exsample"
)

func main() {
	ds, err := exsample.OpenProfile("dashcam", 0.1, 11, exsample.WithPerfectDetector())
	if err != nil {
		log.Fatal(err)
	}

	// Scenario 1: a few bicycle examples for model debugging (10% recall).
	runScenario(ds, "bicycle", 0.1, "ML engineer: a few examples")

	// Scenario 2: most stop signs for map annotation (90% recall).
	runScenario(ds, "stop sign", 0.9, "mapper: near-exhaustive")
}

func runScenario(ds *exsample.Dataset, class string, recall float64, label string) {
	total, err := ds.GroundTruthCount(class)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s — %q to %.0f%% recall (%d instances in ground truth)\n",
		label, class, recall*100, total)

	q := exsample.Query{Class: class, RecallTarget: recall}
	ex, err := ds.Search(q, exsample.Options{Strategy: exsample.StrategyExSample, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	rnd, err := ds.Search(q, exsample.Options{Strategy: exsample.StrategyRandom, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("   exsample: %6d frames, %7.1fs, found %d\n",
		ex.FramesProcessed, ex.TotalSeconds(), len(ex.Results))
	fmt.Printf("   random:   %6d frames, %7.1fs, found %d\n",
		rnd.FramesProcessed, rnd.TotalSeconds(), len(rnd.Results))
	if ex.TotalSeconds() > 0 {
		fmt.Printf("   savings: %.2fx\n\n", rnd.TotalSeconds()/ex.TotalSeconds())
	}
}
