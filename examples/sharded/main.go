// Sharded: compose independent datasets into one ShardedSource and search
// it as a single logical repository — the production shape of ExSample,
// where a video archive is partitioned across machines and one query's
// Thompson sampler treats every machine's chunks as arms of the same
// bandit.
//
// The walkthrough builds a three-shard archive (three days of footage
// recorded by different cameras), runs one Engine query that fans its
// detector calls out across all shards, then runs a second identical query
// to show the detector memo cache absorbing the duplicate inference: the
// second query is charged decode-only cost for every frame.
package main

import (
	"context"
	"fmt"
	"log"

	exsample "github.com/exsample/exsample"
)

func main() {
	// Three shards with different sizes and object densities: day 2 is
	// busier than the others, so the sampler should concentrate there.
	var shards []*exsample.Dataset
	for i, spec := range []struct {
		frames    int64
		instances int
	}{
		{80_000, 40},
		{120_000, 160},
		{60_000, 30},
	} {
		ds, err := exsample.Synthesize(exsample.SynthSpec{
			NumFrames:    spec.frames,
			NumInstances: spec.instances,
			Class:        "delivery truck",
			MeanDuration: 150,
			SkewFraction: 1.0 / 8,
			ChunkFrames:  4000,
			Seed:         uint64(90 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		shards = append(shards, ds)
	}
	archive, err := exsample.NewShardedSource("three-days", shards...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive %q: %d shards, %d frames, %d chunks, %.1f h of video\n\n",
		archive.Name(), archive.NumShards(), archive.NumFrames(),
		archive.NumChunks(), archive.Hours())

	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        4,       // shared GPU budget across all queries
		FramesPerRound: 4,       // rounds batch 4 frames per query, grouped by shard
		CacheEntries:   1 << 16, // memoize detector output across queries
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	query := exsample.Query{Class: "delivery truck", Limit: 40}
	for attempt := 1; attempt <= 2; attempt++ {
		h, err := eng.Submit(context.Background(), archive, query,
			exsample.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := h.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: %d distinct objects in %d frames, %.1f charged seconds "+
			"(detect %.1f, decode %.1f), %d/%d cache hits\n",
			attempt, len(rep.Results), rep.FramesProcessed, rep.TotalSeconds(),
			rep.DetectSeconds, rep.DecodeSeconds, rep.CacheHits, rep.FramesProcessed)
	}

	// Same seed, same source: the second query re-proposed exactly the
	// same frames, so every one of them was memoized — it paid decode-only
	// cost. Per-shard traffic shows the fan-out (and that cache hits never
	// reached a shard).
	fmt.Println("\nper-shard detector traffic:")
	for _, st := range archive.ShardStats() {
		fmt.Printf("  shard %d: %7d frames, %4d detector calls\n",
			st.Shard, st.NumFrames, st.DetectCalls)
	}
	st := eng.CacheStats()
	fmt.Printf("cache: %.0f%% hit rate (%d hits, %d misses)\n",
		st.HitRate()*100, st.Hits, st.Misses)
}
