// Batched: GPU inference is faster on batches of images, so Algorithm 1 has
// a batched variant (§III-F): draw B belief samples per chunk, process the
// whole batch, then apply the N1/n updates — which are additive and
// commutative, so correctness is unaffected. This example shows batch size
// barely changes sampling efficiency (frames needed), which is what makes
// the batching free on real hardware.
package main

import (
	"fmt"
	"log"

	exsample "github.com/exsample/exsample"
)

func main() {
	ds, err := exsample.OpenProfile("amsterdam", 0.05, 13)
	if err != nil {
		log.Fatal(err)
	}
	total, err := ds.GroundTruthCount("bicycle")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("amsterdam @ 0.05: %d frames, %d distinct bicycles\n\n", ds.NumFrames(), total)

	q := exsample.Query{Class: "bicycle", RecallTarget: 0.5}
	fmt.Printf("%8s %12s %10s\n", "batch", "frames", "found")
	for _, b := range []int{1, 8, 32, 128} {
		rep, err := ds.Search(q, exsample.Options{BatchSize: b, Seed: 17})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %10d\n", b, rep.FramesProcessed, len(rep.Results))
	}
	fmt.Println("\nupdates commute, so batching trades a slightly staler belief for")
	fmt.Println("GPU-batch throughput without hurting the sample efficiency much.")
}
