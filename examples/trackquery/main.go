// Track-predicate queries: find object *trajectories* — not just distinct
// objects — matching spatial and kinematic clauses, MIRIS-style. The query
// runs an accelerate/refine loop: a coarse stride pass localizes candidate
// intervals, then only those intervals are densified, tracked and matched,
// so a sparse scene costs a small fraction of a dense scan.
package main

import (
	"fmt"
	"log"

	exsample "github.com/exsample/exsample"
)

func main() {
	// A sparse synthetic scene: 8 cars over ~22 minutes of 30fps video,
	// each travelling 300 px rightward over its lifetime (TravelX), so
	// speed and direction clauses have something to discriminate on.
	ds, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    40_000,
		NumInstances: 8,
		Class:        "car",
		MeanDuration: 300,
		ChunkFrames:  1000,
		Seed:         7,
		TravelX:      300,
	})
	if err != nil {
		log.Fatal(err)
	}

	// "Cars visible for at least 50 frames, moving roughly rightward."
	// MinDuration doubles as the coarse-stride hint: an object on screen
	// for 50 frames cannot slip through a 25-frame grid.
	pred := exsample.TrackPredicate{
		Class:       "car",
		MinDuration: 50,
		Direction:   &exsample.DirectionRange{MinDeg: 315, MaxDeg: 45}, // wraps through 0°
	}

	rep, err := ds.TrackSearch(pred, exsample.TrackOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("matched %d tracks\n", len(rep.Results))
	fmt.Printf("detector frames: %d of %d dense (%.1fx avoided)\n",
		rep.FramesProcessed, rep.DenseFrames, rep.Speedup())
	fmt.Printf("phases: %d coarse + %d refine over %d candidate intervals (%d frames)\n\n",
		rep.CoarseFrames, rep.RefineFrames, rep.Intervals, rep.IntervalFrames)
	for _, t := range rep.Results {
		fmt.Printf("  track %d: frames %d..%d (%d hits), %.1f px/frame\n",
			t.TrackID, t.Start, t.End, t.Hits, t.AvgSpeed)
	}

	// The same predicate refined with a region clause: only tracks whose
	// smoothed path crosses a virtual tripwire. Invalid predicates are
	// rejected up front with field-level errors (errors.Is against
	// exsample.ErrInvalidPredicate).
	pred.Crosses = &exsample.Segment{
		A: exsample.Point{X: 700, Y: 0},
		B: exsample.Point{X: 700, Y: 2000},
	}
	rep, err = ds.TrackSearch(pred, exsample.TrackOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrossing the x=700 tripwire: %d of the rightward tracks\n", len(rep.Results))
}
