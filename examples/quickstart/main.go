// Quickstart: find 20 traffic lights in a dashcam-style repository using
// ExSample's public API — the paper's motivating query ("find 100 traffic
// lights in dashcam video", §I) at example scale.
package main

import (
	"fmt"
	"log"

	exsample "github.com/exsample/exsample"
)

func main() {
	// Open the built-in dashcam profile at 10% of the paper's size:
	// roughly an hour of 30fps drive video with ground truth for seven
	// object classes.
	ds, err := exsample.OpenProfile("dashcam", 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository: %d frames (%.1f hours), %d chunks\n",
		ds.NumFrames(), ds.Hours(), ds.NumChunks())
	fmt.Printf("classes: %v\n\n", ds.Classes())

	// Ask for 20 distinct traffic lights. The zero-valued Options run
	// ExSample with the paper's defaults: Thompson sampling over
	// Gamma(N1+0.1, n+1) beliefs, random+ within chunks.
	report, err := ds.Search(
		exsample.Query{Class: "traffic light", Limit: 20},
		exsample.Options{Seed: 1},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d distinct traffic lights\n", len(report.Results))
	fmt.Printf("frames processed: %d of %d (%.2f%%)\n",
		report.FramesProcessed, ds.NumFrames(),
		100*float64(report.FramesProcessed)/float64(ds.NumFrames()))
	fmt.Printf("charged query time: %.1fs (detector) + %.1fs (decode)\n\n",
		report.DetectSeconds, report.DecodeSeconds)

	for _, r := range report.Results {
		fmt.Printf("  #%02d  frame %8d  score %.2f\n", r.ObjectID, r.Frame, r.Score)
	}
}
