// Sharedcache: the shared result tier — the walkthrough for README's
// "Shared result tier" section.
//
// Detector output for a frame never changes, so once any process has paid
// the GPU for (video, class, frame), nobody should pay again. The
// cachestore packages turn the engine's per-process memo cache into the
// L1 of a two-tier store: detections are keyed by content (a hash of how
// the video was constructed, not a process-local handle), missed locally,
// fetched from a shared httpcache server, and written through on fill.
//
// The walkthrough plays two users of one video archive:
//
//  1. serves an empty cachestore.Local over HTTP — the shared tier any
//     number of processes can point at,
//  2. first user: a fresh engine + remote tier runs a query against a
//     slow detector; every frame pays the simulated inference latency
//     and is written through to the server,
//  3. second user: a separate engine (its own dataset handle, as a
//     different process would build) runs the same query; every frame
//     resolves from the shared tier, the detector never fires, and the
//     results are byte-identical,
//  4. prints both wall times and the second user's tier table.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	exsample "github.com/exsample/exsample"
	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/cachestore"
	"github.com/exsample/exsample/cachestore/httpcache"
)

// spec is the shared video archive. Both users construct their dataset
// from the same spec, the way two analysts open the same recording; the
// cache key hashes the construction inputs, so their handles address the
// same shared entries.
var spec = exsample.SynthSpec{
	NumFrames:    120_000,
	NumInstances: 200,
	Class:        "car",
	MeanDuration: 120,
	SkewFraction: 1.0 / 12,
	ChunkFrames:  3000,
	Seed:         7,
}

// slowDetector simulates GPU inference cost: a fixed per-batch overhead
// plus per-frame time, the latency profile the shared tier exists to
// amortize across users.
type slowDetector struct{ inner backend.Backend }

func (s *slowDetector) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	select {
	case <-time.After(2*time.Millisecond + time.Duration(len(frames))*50*time.Microsecond):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.inner.DetectBatch(ctx, class, frames)
}

func (s *slowDetector) Hints() backend.Hints { return s.inner.Hints() }

func runUser(name string, endpoint string) (*exsample.Report, time.Duration, cachestore.TierStats, error) {
	// Each user builds everything from scratch: dataset, engine, client.
	// Only the endpoint URL is shared.
	base, err := exsample.Synthesize(spec)
	if err != nil {
		return nil, 0, cachestore.TierStats{}, err
	}
	ds, err := exsample.Synthesize(spec, exsample.WithBackend(&slowDetector{inner: base.Backend()}))
	if err != nil {
		return nil, 0, cachestore.TierStats{}, err
	}
	client, err := httpcache.New(httpcache.Config{Endpoint: endpoint})
	if err != nil {
		return nil, 0, cachestore.TierStats{}, err
	}
	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        4,
		FramesPerRound: 8,
		RemoteCache:    client,
	})
	if err != nil {
		return nil, 0, cachestore.TierStats{}, err
	}
	defer eng.Close()
	start := time.Now()
	h, err := eng.Submit(context.Background(), ds,
		exsample.Query{Class: "car", Limit: 40},
		exsample.Options{Seed: 11, MaxFrames: 2000})
	if err != nil {
		return nil, 0, cachestore.TierStats{}, err
	}
	rep, err := h.Wait()
	if err != nil {
		return nil, 0, cachestore.TierStats{}, err
	}
	elapsed := time.Since(start)
	fmt.Printf("%s: %d results, %d frames, %d local hits, %d remote hits, %.1fs detector-charged, %v wall\n",
		name, len(rep.Results), rep.FramesProcessed, rep.CacheHits-rep.RemoteCacheHits,
		rep.RemoteCacheHits, rep.TotalSeconds(), elapsed.Round(time.Millisecond))
	return rep, elapsed, eng.TierStats(), nil
}

func main() {
	// 1. The shared tier: an in-memory store served over HTTP. In a real
	// fleet this is one long-lived service per video archive.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpcache.Handler(cachestore.NewLocal(1 << 18))}
	go srv.Serve(ln)
	defer srv.Close()
	endpoint := "http://" + ln.Addr().String()
	fmt.Printf("shared cache server: %s\n\n", endpoint)

	// 2. First user pays the detector for every frame and fills the tier.
	first, coldWall, _, err := runUser("first user ", endpoint)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Second user: same query, fresh everything. The tier serves every
	// frame; the detector never runs.
	second, warmWall, tier, err := runUser("second user", endpoint)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The receipts.
	if !reflect.DeepEqual(first.Results, second.Results) {
		log.Fatal("results diverged — the tier must be invisible to correctness")
	}
	fmt.Printf("\nresults byte-identical: true\n")
	fmt.Printf("second user speedup: %.1fx (%v -> %v)\n",
		coldWall.Seconds()/warmWall.Seconds(),
		coldWall.Round(time.Millisecond), warmWall.Round(time.Millisecond))
	fmt.Printf("second user tier: L1 %d/%d, L2 %d/%d in %d round trips (EWMA %.2fms), %d detector fills\n",
		tier.L1Hits, tier.L1Misses, tier.L2Hits, tier.L2Misses,
		tier.L2RoundTrips, tier.L2RTTSeconds*1e3, tier.Fills)
}
