// Streaming: drive a search one frame at a time with the Session API and
// watch ExSample's attention shift across chunks as evidence accumulates —
// the bandit dynamics of §III made visible.
package main

import (
	"fmt"
	"log"
	"strings"

	exsample "github.com/exsample/exsample"
)

func main() {
	ds, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    500_000,
		NumInstances: 400,
		Class:        "event",
		MeanDuration: 300,
		SkewFraction: 1.0 / 16, // 95% of objects in 1/16 of the data
		ChunkFrames:  500_000 / 32,
		Seed:         7,
	}, exsample.WithPerfectDetector())
	if err != nil {
		log.Fatal(err)
	}

	sess, err := ds.NewSession(
		exsample.Query{Class: "event", Limit: 350},
		exsample.Options{Seed: 3},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sampling allocation across 32 chunks (one row per 100 frames processed):")
	for !sess.Done() {
		info, ok, err := sess.Step()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		if len(info.New) > 0 && len(sess.Results())%100 == 0 {
			fmt.Printf("frame %7d: %3d results so far\n", info.Frame, len(sess.Results()))
		}
		if sess.Frames()%100 == 0 {
			fmt.Printf("%6d frames  %s\n", sess.Frames(), allocationBar(sess.ChunkStats()))
		}
	}
	fmt.Printf("\ndone: %d distinct objects in %d frames (%.1fs charged)\n",
		len(sess.Results()), sess.Frames(), sess.Seconds())
	fmt.Printf("final allocation: %s\n", allocationBar(sess.ChunkStats()))
	fmt.Println("(dense glyphs = chunks receiving most samples; the hot 1/16 lights up)")
}

// allocationBar renders each chunk's allocation share (the fraction of
// all samples drawn from it, §IV-A) as a density strip.
func allocationBar(stats []exsample.ChunkStat) string {
	if len(stats) == 0 {
		return ""
	}
	max := 0.0
	for _, cs := range stats {
		if cs.Allocation > max {
			max = cs.Allocation
		}
	}
	if max == 0 {
		max = 1
	}
	levels := []byte(" .:-=+*#%@")
	var sb strings.Builder
	for _, cs := range stats {
		idx := int(cs.Allocation * float64(len(levels)-1) / max)
		sb.WriteByte(levels[idx])
	}
	return sb.String()
}
