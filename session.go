package exsample

import (
	"fmt"

	"github.com/exsample/exsample/internal/baseline"
	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/video"
	"github.com/exsample/exsample/internal/xrand"
)

// Session is the incremental counterpart to Search: the caller drives the
// loop one frame at a time and observes results as they stream in. This is
// the natural shape for interactive use ("keep going until I like what I
// see") and for integrating ExSample into a larger pipeline that
// interleaves other work between detector calls.
//
// A Session never stops on its own: Step processes one frame and reports
// what it found; the caller decides when to stop. Sessions are not safe for
// concurrent use.
type Session struct {
	dataset  *Dataset
	query    Query
	opts     Options
	detector detect.Detector
	dis      *discrim.Discriminator
	curve    *metrics.RecallCurve

	sampler *core.Sampler    // StrategyExSample
	order   video.FrameOrder // other strategies
	home    map[int]int      // HomeChunkAccounting

	results     []Result
	frames      int64
	detectSecs  float64
	decodeSecs  float64
	scanSecs    float64
	exhausted   bool
	totalTruths int
}

// StepInfo reports what one Step did.
type StepInfo struct {
	// Frame is the frame that was processed.
	Frame int64
	// Chunk is the chunk it came from (-1 for non-chunked strategies).
	Chunk int
	// New lists the distinct objects discovered by this frame (often
	// empty).
	New []Result
	// SecondSightings counts objects re-confirmed by this frame.
	SecondSightings int
}

// NewSession prepares an incremental search. The query's Limit/RecallTarget
// are advisory for Session (exposed via Done) — Step keeps working as long
// as frames remain.
func (d *Dataset) NewSession(q Query, opts Options) (*Session, error) {
	if q.Class == "" {
		return nil, fmt.Errorf("exsample: session needs a class")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.BatchSize > 1 || opts.Parallelism > 1 {
		return nil, fmt.Errorf("exsample: sessions are single-frame; use Search for batching")
	}
	total, err := d.GroundTruthCount(q.Class)
	if err != nil {
		return nil, err
	}
	sim, err := detect.NewSim(d.inner.Index, d.seed^0xdecade,
		detect.WithClass(q.Class),
		detect.WithNoise(d.noise),
		detect.WithCost(1/d.cost.DetectFPS),
	)
	if err != nil {
		return nil, err
	}
	var detector detect.Detector = sim
	if d.failAfter > 0 {
		detector = &detect.FailAfter{Inner: sim, Limit: d.failAfter}
	}
	coverage := opts.TrackerCoverage
	if coverage == 0 {
		coverage = 1
	}
	extender, err := discrim.NewTruthExtender(d.inner.Index, coverage)
	if err != nil {
		return nil, err
	}
	dis, err := discrim.New(extender, opts.IoUThreshold)
	if err != nil {
		return nil, err
	}
	curve, err := metrics.NewRecallCurve(total)
	if err != nil {
		return nil, err
	}
	s := &Session{
		dataset:     d,
		query:       q,
		opts:        opts,
		detector:    detector,
		dis:         dis,
		curve:       curve,
		totalTruths: total,
	}
	if err := s.initStrategy(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Session) initStrategy() error {
	d := s.dataset
	opts := s.opts
	switch opts.Strategy {
	case StrategyExSample:
		chunks := d.inner.Chunks
		if opts.NumChunks > 0 {
			var err error
			chunks, err = video.SplitRange(0, d.NumFrames(), opts.NumChunks)
			if err != nil {
				return err
			}
		}
		cfg := core.Config{
			Alpha0: opts.Alpha0,
			Beta0:  opts.Beta0,
			Policy: opts.Policy.toCore(),
			Within: core.WithinRandomPlus,
			Seed:   opts.Seed,
		}
		if opts.UniformWithinChunk {
			cfg.Within = core.WithinUniform
		}
		if opts.FuseProxyWithinChunk {
			quality := opts.ProxyQuality
			if quality == 0 {
				quality = 1
			}
			scorer, err := baseline.NewProxyScorer(d.inner.Index, s.query.Class, quality, opts.Seed^0xbead)
			if err != nil {
				return err
			}
			cfg.Within = core.WithinScored
			cfg.Scorer = scorer.Score
			cfg.OnChunkOpen = func(j int) {
				s.scanSecs += d.cost.ScanSeconds(chunks[j].Len())
			}
		}
		sampler, err := core.New(chunks, cfg)
		if err != nil {
			return err
		}
		s.sampler = sampler
		if opts.HomeChunkAccounting {
			s.home = make(map[int]int)
		}
	case StrategyRandom:
		order, err := video.NewUniformOrder(0, d.NumFrames(), xrand.New(opts.Seed))
		if err != nil {
			return err
		}
		s.order = order
	case StrategyRandomPlus:
		hour := int64(d.inner.Profile.FPS * 3600)
		order, err := video.NewRandomPlusOrder(0, d.NumFrames(), hour, xrand.New(opts.Seed))
		if err != nil {
			return err
		}
		s.order = order
	case StrategySequential:
		order, err := video.NewSequentialOrder(0, d.NumFrames(), 1)
		if err != nil {
			return err
		}
		s.order = order
	case StrategyProxy:
		quality := opts.ProxyQuality
		if quality == 0 {
			quality = 1
		}
		scorer, err := baseline.NewProxyScorer(d.inner.Index, s.query.Class, quality, opts.Seed^0xbead)
		if err != nil {
			return err
		}
		order, err := baseline.NewProxyOrder(scorer, 0, d.NumFrames(), opts.ProxyDupRadius)
		if err != nil {
			return err
		}
		s.scanSecs = d.cost.ScanSeconds(order.ScannedFrames)
		s.order = order
	default:
		return fmt.Errorf("exsample: session does not support strategy %v", opts.Strategy)
	}
	return nil
}

// Step processes one frame. ok is false when the repository is exhausted.
func (s *Session) Step() (info StepInfo, ok bool, err error) {
	if s.exhausted {
		return StepInfo{}, false, nil
	}
	var frame int64
	chunk := -1
	if s.sampler != nil {
		p, sok := s.sampler.Next()
		if !sok {
			s.exhausted = true
			return StepInfo{}, false, nil
		}
		frame, chunk = p.Frame, p.Chunk
	} else {
		f, ook := s.order.Next()
		if !ook {
			s.exhausted = true
			return StepInfo{}, false, nil
		}
		frame = f
	}

	s.decodeSecs += s.dataset.dec.Cost(frame)
	s.detectSecs += s.detector.CostSeconds()
	s.frames++
	dets := s.detector.Detect(frame)
	newObjs, secondObjs := s.dis.ObserveObjects(frame, dets)

	info = StepInfo{Frame: frame, Chunk: chunk, SecondSightings: len(secondObjs)}
	var truthIDs []int
	for _, obj := range newObjs {
		det := obj.FirstDetection
		r := Result{
			ObjectID: len(s.results),
			Frame:    det.Frame,
			Class:    det.Class,
			Box:      Box{det.Box.X1, det.Box.Y1, det.Box.X2, det.Box.Y2},
			Score:    det.Score,
		}
		s.results = append(s.results, r)
		info.New = append(info.New, r)
		truthIDs = append(truthIDs, det.TruthID)
	}
	s.curve.Observe(s.frames, s.Seconds(), truthIDs)

	if s.sampler != nil {
		if s.home == nil {
			err = s.sampler.Update(chunk, len(newObjs), len(secondObjs))
		} else {
			for _, o := range newObjs {
				s.home[o.ID] = chunk
			}
			err = s.sampler.Update(chunk, len(newObjs), 0)
			for _, o := range secondObjs {
				if err != nil {
					break
				}
				hc, okh := s.home[o.ID]
				if !okh {
					hc = chunk
				}
				err = s.sampler.Adjust(hc, -1)
			}
		}
		if err != nil {
			return StepInfo{}, false, err
		}
	}
	return info, true, nil
}

// Done reports whether the query's stopping condition (Limit and/or
// RecallTarget) is satisfied.
func (s *Session) Done() bool {
	if s.query.Limit > 0 && len(s.results) >= s.query.Limit {
		return true
	}
	if s.query.RecallTarget > 0 && s.curve.Recall() >= s.query.RecallTarget {
		return true
	}
	return false
}

// Results returns all distinct objects found so far (shared slice; do not
// mutate).
func (s *Session) Results() []Result { return s.results }

// Recall returns the fraction of ground-truth instances found so far.
func (s *Session) Recall() float64 { return s.curve.Recall() }

// Frames returns the number of frames processed.
func (s *Session) Frames() int64 { return s.frames }

// Seconds returns the charged query time so far, including any scan.
func (s *Session) Seconds() float64 { return s.detectSecs + s.decodeSecs + s.scanSecs }

// ChunkStats exposes the live per-chunk sampler statistics (N1, n) for
// StrategyExSample sessions; it returns nil for other strategies. Useful for
// visualizing how the sampler's attention shifts.
func (s *Session) ChunkStats() []ChunkStat {
	if s.sampler == nil {
		return nil
	}
	out := make([]ChunkStat, s.sampler.NumChunks())
	for j := range out {
		n1, n := s.sampler.Stats(j)
		c := s.sampler.Chunks()[j]
		out[j] = ChunkStat{Chunk: j, Start: c.Start, End: c.End, N1: n1, N: n,
			Estimate: s.sampler.PointEstimate(j)}
	}
	return out
}

// ChunkStat is one chunk's live sampling statistics.
type ChunkStat struct {
	Chunk      int
	Start, End int64
	N1         int64
	N          int64
	Estimate   float64
}
