package exsample

import (
	"context"
	"fmt"
)

// Session is the incremental counterpart to Search: the caller drives the
// loop one frame at a time and observes results as they stream in. This is
// the natural shape for interactive use ("keep going until I like what I
// see") and for integrating ExSample into a larger pipeline that
// interleaves other work between detector calls.
//
// A Session never stops on its own: Step processes one frame and reports
// what it found; the caller decides when to stop. Sessions are not safe for
// concurrent use. To run many queries concurrently over a shared detector
// worker pool, use Engine — Session and Engine drive the same underlying
// step loop, so both reproduce Search exactly for the same seed.
type Session struct {
	run *queryRun
	// alloc is the reused per-poll buffer behind ChunkStats' Allocation
	// column — stats polling every step must not allocate per call.
	alloc []float64
}

// StepInfo reports what one Step did.
type StepInfo struct {
	// Frame is the frame that was processed.
	Frame int64
	// Chunk is the chunk it came from (-1 for non-chunked strategies).
	Chunk int
	// New lists the distinct objects discovered by this frame (often
	// empty).
	New []Result
	// SecondSightings counts objects re-confirmed by this frame.
	SecondSightings int
}

// NewSession prepares an incremental search over any Source — a local
// Dataset or a ShardedSource. The query's Limit/RecallTarget are advisory
// for Session (exposed via Done) — Step keeps working as long as frames
// remain.
func NewSession(src Source, q Query, opts Options) (*Session, error) {
	if q.Class == "" {
		return nil, fmt.Errorf("exsample: session needs a class")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.BatchSize > 1 || opts.Parallelism > 1 {
		return nil, fmt.Errorf("exsample: sessions are single-frame; use Search for batching")
	}
	run, err := newQueryRun(src, q, opts, cacheConfig{}, false)
	if err != nil {
		return nil, err
	}
	return &Session{run: run}, nil
}

// NewSession prepares an incremental search against the dataset.
func (d *Dataset) NewSession(q Query, opts Options) (*Session, error) {
	return NewSession(d, q, opts)
}

// Step processes one frame. ok is false when the repository is exhausted.
// A detector backend error (network failure, cancelled endpoint) surfaces
// as err with the session state unchanged.
func (s *Session) Step() (info StepInfo, ok bool, err error) {
	p, ok := s.run.next()
	if !ok {
		return StepInfo{}, false, nil
	}
	fr, err := s.run.detectOne(context.Background(), p.Frame)
	if err != nil {
		return StepInfo{}, false, err
	}
	info, err = s.run.apply(p, fr)
	if err != nil {
		return StepInfo{}, false, err
	}
	return info, true, nil
}

// Done reports whether the query's stopping condition (Limit and/or
// RecallTarget) is satisfied.
func (s *Session) Done() bool { return s.run.stopRequested() }

// Results returns all distinct objects found so far (shared slice; do not
// mutate).
func (s *Session) Results() []Result { return s.run.rep.Results }

// Recall returns the fraction of ground-truth instances found so far.
func (s *Session) Recall() float64 { return s.run.curve.Recall() }

// Frames returns the number of frames processed.
func (s *Session) Frames() int64 { return s.run.rep.FramesProcessed }

// Seconds returns the charged query time so far, including any scan.
func (s *Session) Seconds() float64 { return s.run.rep.TotalSeconds() }

// ChunkStats exposes the live per-chunk sampler statistics (N1, n) for
// StrategyExSample sessions; it returns nil for other strategies. Useful for
// visualizing how the sampler's attention shifts.
func (s *Session) ChunkStats() []ChunkStat {
	sampler := s.run.sampler
	if sampler == nil {
		return nil
	}
	// The allocation fractions come through the session's reused buffer
	// (core.AllocationInto): live dashboards poll ChunkStats every few
	// steps, and the per-chunk share is the §IV-A weight vector they plot.
	s.alloc = sampler.AllocationInto(s.alloc)
	out := make([]ChunkStat, sampler.NumChunks())
	for j := range out {
		n1, n := sampler.Stats(j)
		c := sampler.Chunks()[j]
		out[j] = ChunkStat{Chunk: j, Start: c.Start, End: c.End, N1: n1, N: n,
			Estimate: sampler.PointEstimate(j), Allocation: s.alloc[j]}
	}
	return out
}

// ChunkStat is one chunk's live sampling statistics.
type ChunkStat struct {
	Chunk      int
	Start, End int64
	N1         int64
	N          int64
	Estimate   float64
	// Allocation is the fraction of all samples drawn from this chunk so
	// far — the de-facto weight vector the sampler has converged to
	// (§IV-A); the fractions sum to 1 once sampling has started.
	Allocation float64
}
