package exsample

import "testing"

// Tests for the BlazeIt-style training phase of the proxy baseline.

func TestProxyTrainingFindsLabelsThenScans(t *testing.T) {
	// Cars are common in the small dataset: training succeeds quickly and
	// the scan is still charged.
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", Limit: 10},
		Options{Strategy: StrategyProxy, ProxyTrainPositives: 3, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScanSeconds <= 0 {
		t.Fatal("trained proxy did not charge the scan")
	}
	if len(rep.Results) < 10 {
		t.Fatalf("found %d results", len(rep.Results))
	}
}

func TestProxyTrainingFallsBackToRandomOnRareClass(t *testing.T) {
	// A very rare class with a tiny training budget: the proxy cannot
	// collect labels and degrades to random sampling — no scan charged.
	ds, err := Synthesize(SynthSpec{
		NumFrames:    300_000,
		NumInstances: 5,
		Class:        "unicorn",
		MeanDuration: 20,
		ChunkFrames:  5000,
		Seed:         63,
	}, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ds.Search(Query{Class: "unicorn", Limit: 3},
		Options{
			Strategy:            StrategyProxy,
			ProxyTrainPositives: 4,
			ProxyTrainBudget:    200,
			MaxFrames:           5_000,
			Seed:                65,
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScanSeconds != 0 {
		t.Fatalf("fallback proxy charged a scan of %vs", rep.ScanSeconds)
	}
	if rep.FramesProcessed == 0 {
		t.Fatal("fallback processed nothing")
	}
}

func TestProxyTrainingResultsCount(t *testing.T) {
	// Objects discovered during training are real results; a limit query
	// can finish inside the training phase without ever scanning.
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", Limit: 1},
		Options{Strategy: StrategyProxy, ProxyTrainPositives: 1000, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 1 {
		t.Fatal("no results")
	}
	if rep.ScanSeconds != 0 {
		t.Fatalf("query finished during training but charged scan %vs", rep.ScanSeconds)
	}
}

func TestProxyTrainingValidation(t *testing.T) {
	if err := (Options{ProxyTrainPositives: -1}).Validate(); err == nil {
		t.Error("negative ProxyTrainPositives accepted")
	}
	if err := (Options{ProxyTrainBudget: -1}).Validate(); err == nil {
		t.Error("negative ProxyTrainBudget accepted")
	}
}
