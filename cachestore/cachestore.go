// Package cachestore is the shared result tier: a pluggable, batched,
// context-aware store of detector outputs keyed by content-addressed
// (source content id, class, frame) triples.
//
// The per-engine memo cache (internal/cache) dies with its process and its
// keys — per-process source ids — mean nothing to anyone else. This package
// lifts the same memoization to a seam a fleet can share: keys hash the
// *content* of a source (profile, scale, generation seed, noise model), so
// they survive restarts and are identical across processes that opened the
// same video. A Store can be the in-process L1 (Local, wrapping
// internal/cache), a remote L2 (httpcache.Client, speaking the JSON batch
// protocol in the backend/httpbatch idiom), or a Tiered composition of both
// with write-through and singleflight dedupe.
//
// Values are []backend.Detection — the public wire type — so a remote store
// round-trips exactly what a remote detector would have produced, and a
// query served from the tier reports byte-identical results to one that
// paid for the inference.
package cachestore

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/exsample/exsample/backend"
)

// Key identifies one detector invocation by content. Content is a stable
// hash of the source's construction inputs (two processes opening the same
// profile at the same scale and seed derive the same value — see the root
// package's content addressing), Class the detector head, Frame the global
// frame index.
type Key struct {
	Content uint64
	Class   string
	Frame   int64
}

// keyVersion is the wire-format version prefix; bump it when the encoding
// (or the content-hash recipe feeding Key.Content) changes incompatibly, so
// stale remote entries miss instead of poisoning new readers.
const keyVersion = "v1"

// Encode renders the key in its canonical wire form:
//
//	v1:<content as 16 lowercase hex digits>:<frame as decimal>:<class>
//
// The class is last and unescaped — it may contain any byte, including the
// separator — so DecodeKey splits on the first three colons only.
func (k Key) Encode() string {
	var b strings.Builder
	b.Grow(len(keyVersion) + 1 + 16 + 1 + 20 + 1 + len(k.Class))
	b.WriteString(keyVersion)
	b.WriteByte(':')
	var hexBuf [16]byte
	const digits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		hexBuf[i] = digits[(k.Content>>uint(60-4*i))&0xf]
	}
	b.Write(hexBuf[:])
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(k.Frame, 10))
	b.WriteByte(':')
	b.WriteString(k.Class)
	return b.String()
}

// DecodeKey parses a wire-form key. It accepts exactly the shape Encode
// produces: the v1 prefix, a 16-digit lowercase hex content hash, a
// non-negative decimal frame, and the class as the unvalidated remainder
// (which may be empty or contain further colons).
func DecodeKey(s string) (Key, error) {
	parts := strings.SplitN(s, ":", 4)
	if len(parts) != 4 {
		return Key{}, fmt.Errorf("cachestore: key %q: want 4 colon-separated fields, got %d", s, len(parts))
	}
	if parts[0] != keyVersion {
		return Key{}, fmt.Errorf("cachestore: key %q: unsupported version %q", s, parts[0])
	}
	if len(parts[1]) != 16 {
		return Key{}, fmt.Errorf("cachestore: key %q: content hash must be 16 hex digits, got %d", s, len(parts[1]))
	}
	if strings.ToLower(parts[1]) != parts[1] {
		return Key{}, fmt.Errorf("cachestore: key %q: content hash must be lowercase hex", s)
	}
	content, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil {
		return Key{}, fmt.Errorf("cachestore: key %q: bad content hash: %v", s, err)
	}
	frame, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return Key{}, fmt.Errorf("cachestore: key %q: bad frame: %v", s, err)
	}
	if frame < 0 {
		return Key{}, fmt.Errorf("cachestore: key %q: negative frame %d", s, frame)
	}
	// Reject non-canonical frame spellings ("+7", "007") so a key has
	// exactly one wire form and remote stores never hold aliased entries.
	if strconv.FormatInt(frame, 10) != parts[2] {
		return Key{}, fmt.Errorf("cachestore: key %q: non-canonical frame %q", s, parts[2])
	}
	return Key{Content: content, Class: parts[3], Frame: frame}, nil
}

// Entry is one key's lookup outcome. Found distinguishes a memoized empty
// result (Found true, Dets nil — a frame the detector saw and found
// nothing in) from an absent entry.
type Entry struct {
	Found bool
	Dets  []backend.Detection
}

// Store is the batched cache contract every tier implements. Both methods
// take the full batch in one call — the whole point of the tier is paying
// one round trip for a round's worth of frames — and honor ctx for
// cancellation and deadlines.
//
// GetBatch returns one Entry per key, aligned with keys. PutBatch stores
// vals[i] under keys[i]; storing nil is valid (a memoized "no detections").
// Implementations must be safe for concurrent use; detector output is
// deterministic per key, so concurrent puts of the same key are benign.
type Store interface {
	GetBatch(ctx context.Context, keys []Key) ([]Entry, error)
	PutBatch(ctx context.Context, keys []Key, vals [][]backend.Detection) error
}

// rangeCounter is implemented by stores that can cheaply report how many
// entries they hold for a (content, class) pair within a frame range — the
// signal behind cache-aware sampling. Local implements it; Tiered delegates
// to its L1.
type rangeCounter interface {
	CountRange(content uint64, class string, start, end int64) int
}
