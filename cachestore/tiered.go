package cachestore

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/exsample/exsample/backend"
)

// Tier identifies which layer served a frame.
type Tier uint8

const (
	// TierDetector means the fill function ran — a real detector call was
	// paid for this frame.
	TierDetector Tier = iota
	// TierL1 is a local in-process hit.
	TierL1
	// TierL2 is a remote hit (one shared round trip for the batch).
	TierL2
	// TierMerged means another in-flight fill for the same key produced
	// the value — singleflight turned a duplicate miss into a free ride.
	TierMerged
)

// Outcome is one frame's resolution through the tiers.
type Outcome struct {
	Dets  []backend.Detection
	Cost  float64 // the fill-reported inference cost; 0 for every cached tier
	Where Tier
}

// FillFunc resolves the keys FetchBatch could not serve from any tier: miss
// holds indexes into the FetchBatch keys slice, and the returned detections
// and per-key costs must align with miss. It is the seam where the real
// detector call goes.
type FillFunc func(ctx context.Context, miss []int) ([][]backend.Detection, []float64, error)

// flight is one in-progress fill for a single key. Waiters block on done;
// err non-nil means the leader failed (possibly cancelled) and waiters must
// resolve the key themselves.
type flight struct {
	done chan struct{}
	dets []backend.Detection
	cost float64
	err  error
}

// Tiered composes a fast local store (L1) with a shared remote store (L2):
// lookups go L1 → L2 → fill, remote hits and fills write through to L1, and
// fills write through to L2 so the whole fleet inherits them. Concurrent
// identical misses are deduplicated per key (singleflight): one caller
// leads the fill, the others wait and merge its result at zero cost — N
// queries sampling the same hot frame pay for one detector call.
//
// Every layer degrades gracefully: an L2 read error counts as a miss and an
// L2 write error is dropped (both surface in TierStats), so a remote cache
// outage slows queries down but never fails them. A fill error — a real
// detector failure — is the only error FetchBatch propagates.
//
// Tiered itself implements Store (GetBatch/PutBatch fan across the tiers),
// so stores nest: a Tiered can serve as another process's L2 behind an
// httpcache.Handler.
type Tiered struct {
	l1 Store
	l2 Store // nil disables the remote tier (L1-only, still singleflighted)

	mu       sync.Mutex
	inflight map[Key]*flight

	l1Hits, l1Misses       atomic.Int64
	l2Hits, l2Misses       atomic.Int64
	l2Trips                atomic.Int64
	l2Errors, l2PutErrors  atomic.Int64
	merges, fills, warmed  atomic.Int64
	rttMu                  sync.Mutex
	rttEWMA, rttLastSecond float64
}

// Compile-time interface check.
var _ Store = (*Tiered)(nil)

// NewTiered composes l1 (required) and l2 (nil for a local-only tier that
// still gets singleflight dedupe).
func NewTiered(l1, l2 Store) *Tiered {
	if l1 == nil {
		panic("cachestore: NewTiered requires an L1 store")
	}
	return &Tiered{l1: l1, l2: l2, inflight: make(map[Key]*flight)}
}

// TierStats is a snapshot of a tiered store's counters.
type TierStats struct {
	// L1Hits/L1Misses count local lookups; L2Hits/L2Misses count the
	// remote lookups issued for L1 misses.
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	// L2RoundTrips counts remote GetBatch calls (each covers a whole
	// batch of misses); L2RTTSeconds is their EWMA wall latency.
	L2RoundTrips int64
	L2RTTSeconds float64
	// L2Errors counts remote reads degraded to misses; L2PutErrors counts
	// dropped write-throughs. Both are outages survived, not failures.
	L2Errors, L2PutErrors int64
	// Merges counts frames served by another caller's in-flight fill
	// (singleflight); Fills counts frames the fill function actually
	// served; Warmed counts entries copied L2→L1 by Warm.
	Merges, Fills, Warmed int64
}

// Stats snapshots the tier counters.
func (t *Tiered) Stats() TierStats {
	t.rttMu.Lock()
	rtt := t.rttEWMA
	t.rttMu.Unlock()
	return TierStats{
		L1Hits:       t.l1Hits.Load(),
		L1Misses:     t.l1Misses.Load(),
		L2Hits:       t.l2Hits.Load(),
		L2Misses:     t.l2Misses.Load(),
		L2RoundTrips: t.l2Trips.Load(),
		L2RTTSeconds: rtt,
		L2Errors:     t.l2Errors.Load(),
		L2PutErrors:  t.l2PutErrors.Load(),
		Merges:       t.merges.Load(),
		Fills:        t.fills.Load(),
		Warmed:       t.warmed.Load(),
	}
}

// CountRange delegates the cache-aware sampler's per-range entry count to
// the L1 store (0 when the L1 cannot count).
func (t *Tiered) CountRange(content uint64, class string, start, end int64) int {
	if rc, ok := t.l1.(rangeCounter); ok {
		return rc.CountRange(content, class, start, end)
	}
	return 0
}

// observeRTT folds one remote round trip into the EWMA.
func (t *Tiered) observeRTT(d time.Duration) {
	s := d.Seconds()
	t.rttMu.Lock()
	if t.rttEWMA == 0 {
		t.rttEWMA = s
	} else {
		t.rttEWMA = 0.2*s + 0.8*t.rttEWMA
	}
	t.rttLastSecond = s
	t.rttMu.Unlock()
}

// FetchBatch resolves keys through the tiers, calling fill exactly once per
// key that no tier holds (deduplicated against concurrent callers). out is
// an optional reusable buffer; the returned slice aliases it when capacity
// suffices and is aligned with keys. fill must be non-nil.
//
// Cost accounting: outcomes served by any cache tier (or merged from
// another caller's fill) carry zero cost — the caller charges its own
// decode-only cost, exactly like a memo-cache hit.
func (t *Tiered) FetchBatch(ctx context.Context, keys []Key, out []Outcome, fill FillFunc) ([]Outcome, error) {
	if fill == nil {
		return nil, fmt.Errorf("cachestore: FetchBatch requires a fill function")
	}
	if cap(out) < len(keys) {
		out = make([]Outcome, len(keys))
	}
	out = out[:len(keys)]
	for i := range out {
		out[i] = Outcome{}
	}
	if len(keys) == 0 {
		return out, nil
	}

	// L1.
	miss := make([]int, 0, len(keys))
	if entries, err := t.l1.GetBatch(ctx, keys); err == nil && len(entries) == len(keys) {
		for i, e := range entries {
			if e.Found {
				out[i] = Outcome{Dets: e.Dets, Where: TierL1}
				t.l1Hits.Add(1)
			} else {
				t.l1Misses.Add(1)
				miss = append(miss, i)
			}
		}
	} else {
		// A failing L1 degrades to all-miss; the fill (and L2) still serve.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		t.l1Misses.Add(int64(len(keys)))
		for i := range keys {
			miss = append(miss, i)
		}
	}

	// L2: one shared round trip for every L1 miss.
	if len(miss) > 0 && t.l2 != nil {
		miss = t.lookupL2(ctx, keys, out, miss)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	if len(miss) == 0 {
		return out, nil
	}
	if err := t.resolveMisses(ctx, keys, out, miss, fill); err != nil {
		return nil, err
	}
	return out, nil
}

// lookupL2 issues the remote lookup for the given misses, writes hits
// through to L1, and returns the indexes still unresolved. A remote error
// leaves every index a miss (counted, never fatal).
func (t *Tiered) lookupL2(ctx context.Context, keys []Key, out []Outcome, miss []int) []int {
	k2 := make([]Key, len(miss))
	for j, i := range miss {
		k2[j] = keys[i]
	}
	start := time.Now()
	entries, err := t.l2.GetBatch(ctx, k2)
	t.l2Trips.Add(1)
	t.observeRTT(time.Since(start))
	if err != nil || len(entries) != len(miss) {
		t.l2Errors.Add(1)
		return miss
	}
	rem := miss[:0]
	var wbKeys []Key
	var wbVals [][]backend.Detection
	for j, i := range miss {
		if entries[j].Found {
			out[i] = Outcome{Dets: entries[j].Dets, Where: TierL2}
			t.l2Hits.Add(1)
			wbKeys = append(wbKeys, keys[i])
			wbVals = append(wbVals, entries[j].Dets)
		} else {
			t.l2Misses.Add(1)
			rem = append(rem, i)
		}
	}
	if len(wbKeys) > 0 {
		// Write-through: the next local lookup for these keys is an L1 hit.
		_ = t.l1.PutBatch(ctx, wbKeys, wbVals)
	}
	return rem
}

// resolveMisses runs the singleflight protocol over the unresolved keys:
// register as leader where no fill is in flight, wait (and merge) where one
// is. A leader that fails — including one cancelled mid-fill — completes
// its flights with the error, and its waiters re-resolve those keys with
// their own fill and their own context, so a dying caller can neither wedge
// nor poison the others.
func (t *Tiered) resolveMisses(ctx context.Context, keys []Key, out []Outcome, miss []int, fill FillFunc) error {
	var lead, waitIdx []int
	var waits []*flight
	t.mu.Lock()
	for _, i := range miss {
		if f, ok := t.inflight[keys[i]]; ok {
			waitIdx = append(waitIdx, i)
			waits = append(waits, f)
		} else {
			f := &flight{done: make(chan struct{})}
			t.inflight[keys[i]] = f
			lead = append(lead, i)
		}
	}
	t.mu.Unlock()

	var leadErr error
	if len(lead) > 0 {
		leadErr = t.leadFill(ctx, keys, out, lead, fill)
	}
	// Collect merged results even when our own fill failed — the flights we
	// wait on belong to other callers and may well succeed.
	var retry []int
	for k, f := range waits {
		i := waitIdx[k]
		select {
		case <-f.done:
		case <-ctx.Done():
			return ctx.Err()
		}
		if f.err != nil {
			retry = append(retry, i)
		} else {
			out[i] = Outcome{Dets: f.dets, Where: TierMerged}
			t.merges.Add(1)
		}
	}
	if leadErr != nil {
		return leadErr
	}
	if len(retry) > 0 {
		// The leaders we waited on failed; fill directly, without
		// re-registering — one retry bounds the protocol (no wait chains),
		// and any error now is our own fill's error.
		return t.directFill(ctx, keys, out, retry, fill)
	}
	return nil
}

// leadFill runs the fill for the keys this caller leads, double-checking L1
// first: a previous leader may have filled (and deregistered) between our
// L1 miss and our registration, and re-detecting would break the
// exactly-once guarantee the singleflight tests pin. Flights complete —
// value or error — before the slow L2 write-through, so waiters never
// stall behind a remote put they do not need.
func (t *Tiered) leadFill(ctx context.Context, keys []Key, out []Outcome, lead []int, fill FillFunc) error {
	// Double-check L1 under our leadership.
	kk := make([]Key, len(lead))
	for k, i := range lead {
		kk[k] = keys[i]
	}
	still := lead[:0]
	if entries, err := t.l1.GetBatch(ctx, kk); err == nil && len(entries) == len(lead) {
		for k, i := range lead {
			if entries[k].Found {
				out[i] = Outcome{Dets: entries[k].Dets, Where: TierL1}
				t.l1Hits.Add(1)
				t.completeFlight(keys[i], entries[k].Dets, 0, nil)
			} else {
				still = append(still, i)
			}
		}
	} else {
		still = lead
	}
	if len(still) == 0 {
		return nil
	}

	dets, costs, err := fill(ctx, still)
	if err == nil && (len(dets) != len(still) || len(costs) != len(still)) {
		err = fmt.Errorf("cachestore: fill returned %d detections and %d costs for %d keys", len(dets), len(costs), len(still))
	}
	if err != nil {
		for _, i := range still {
			t.completeFlight(keys[i], nil, 0, err)
		}
		return err
	}
	fk := make([]Key, len(still))
	for k, i := range still {
		fk[k] = keys[i]
	}
	// L1 write-through happens before the flights complete: a caller that
	// registers as leader after our deregistration is guaranteed to find
	// the value locally (the exactly-once invariant, modulo eviction).
	_ = t.l1.PutBatch(ctx, fk, dets)
	for k, i := range still {
		t.completeFlight(keys[i], dets[k], costs[k], nil)
		out[i] = Outcome{Dets: dets[k], Cost: costs[k], Where: TierDetector}
	}
	t.fills.Add(int64(len(still)))
	if t.l2 != nil {
		if perr := t.l2.PutBatch(ctx, fk, dets); perr != nil {
			t.l2PutErrors.Add(1)
		}
	}
	return nil
}

// completeFlight publishes one led key's result (or error) and deregisters
// it.
func (t *Tiered) completeFlight(key Key, dets []backend.Detection, cost float64, err error) {
	t.mu.Lock()
	f := t.inflight[key]
	delete(t.inflight, key)
	t.mu.Unlock()
	if f == nil {
		return
	}
	f.dets, f.cost, f.err = dets, cost, err
	close(f.done)
}

// directFill serves keys whose leaders failed: a plain fill with this
// caller's context, written through both tiers, with no singleflight
// registration (bounded retries beat wait chains).
func (t *Tiered) directFill(ctx context.Context, keys []Key, out []Outcome, idxs []int, fill FillFunc) error {
	dets, costs, err := fill(ctx, idxs)
	if err == nil && (len(dets) != len(idxs) || len(costs) != len(idxs)) {
		err = fmt.Errorf("cachestore: fill returned %d detections and %d costs for %d keys", len(dets), len(costs), len(idxs))
	}
	if err != nil {
		return err
	}
	fk := make([]Key, len(idxs))
	for k, i := range idxs {
		fk[k] = keys[i]
	}
	_ = t.l1.PutBatch(ctx, fk, dets)
	for k, i := range idxs {
		out[i] = Outcome{Dets: dets[k], Cost: costs[k], Where: TierDetector}
	}
	t.fills.Add(int64(len(idxs)))
	if t.l2 != nil {
		if perr := t.l2.PutBatch(ctx, fk, dets); perr != nil {
			t.l2PutErrors.Add(1)
		}
	}
	return nil
}

// Warm copies L2 entries for the given keys into L1 without touching the
// fill path — the ahead-of-query prefetch behind Engine.Warm. It returns
// how many of the keys were present remotely. Unlike lookups, a remote
// error here is returned: warming is an explicit operation whose caller
// wants to know the remote tier is unreachable.
func (t *Tiered) Warm(ctx context.Context, keys []Key) (int, error) {
	if t.l2 == nil {
		return 0, fmt.Errorf("cachestore: no remote tier to warm from")
	}
	if len(keys) == 0 {
		return 0, nil
	}
	start := time.Now()
	entries, err := t.l2.GetBatch(ctx, keys)
	t.l2Trips.Add(1)
	t.observeRTT(time.Since(start))
	if err != nil {
		t.l2Errors.Add(1)
		return 0, err
	}
	if len(entries) != len(keys) {
		t.l2Errors.Add(1)
		return 0, fmt.Errorf("cachestore: remote returned %d entries for %d keys", len(entries), len(keys))
	}
	var wbKeys []Key
	var wbVals [][]backend.Detection
	for i, e := range entries {
		if e.Found {
			wbKeys = append(wbKeys, keys[i])
			wbVals = append(wbVals, e.Dets)
		}
	}
	if len(wbKeys) > 0 {
		if err := t.l1.PutBatch(ctx, wbKeys, wbVals); err != nil {
			return 0, err
		}
	}
	t.warmed.Add(int64(len(wbKeys)))
	return len(wbKeys), nil
}

// GetBatch implements Store: L1 → L2 with write-through, no fill. Misses
// come back Found false.
func (t *Tiered) GetBatch(ctx context.Context, keys []Key) ([]Entry, error) {
	out := make([]Entry, len(keys))
	miss := make([]int, 0, len(keys))
	if entries, err := t.l1.GetBatch(ctx, keys); err == nil && len(entries) == len(keys) {
		for i, e := range entries {
			if e.Found {
				out[i] = e
				t.l1Hits.Add(1)
			} else {
				t.l1Misses.Add(1)
				miss = append(miss, i)
			}
		}
	} else {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		t.l1Misses.Add(int64(len(keys)))
		for i := range keys {
			miss = append(miss, i)
		}
	}
	if len(miss) > 0 && t.l2 != nil {
		outcomes := make([]Outcome, len(keys))
		for _, i := range t.lookupL2(ctx, keys, outcomes, miss) {
			_ = i // unresolved stay Found false
		}
		for _, i := range miss {
			if outcomes[i].Where == TierL2 {
				out[i] = Entry{Found: true, Dets: outcomes[i].Dets}
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// PutBatch implements Store: write-through to both tiers. An L2 write
// failure is dropped and counted, matching the lookup path's degradation.
func (t *Tiered) PutBatch(ctx context.Context, keys []Key, vals [][]backend.Detection) error {
	if err := t.l1.PutBatch(ctx, keys, vals); err != nil {
		return err
	}
	if t.l2 != nil {
		if err := t.l2.PutBatch(ctx, keys, vals); err != nil {
			t.l2PutErrors.Add(1)
		}
	}
	return nil
}
