package cachestore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/exsample/exsample/backend"
)

func det(frame int64, score float64) backend.Detection {
	return backend.Detection{
		Frame: frame,
		Class: "car",
		Box:   backend.Box{X1: 1, Y1: 2, X2: 3, Y2: 4},
		Score: score,
	}
}

// TestKeyEncodeDecode: Encode and DecodeKey are exact inverses over
// representative keys, including classes containing the separator.
func TestKeyEncodeDecode(t *testing.T) {
	keys := []Key{
		{},
		{Content: 1, Class: "car", Frame: 0},
		{Content: ^uint64(0), Class: "person", Frame: 1<<63 - 1},
		{Content: 0xdeadbeef, Class: "a:b:c", Frame: 7},
		{Content: 42, Class: "", Frame: 123456},
		{Content: 42, Class: "with space\tand\nnewline", Frame: 1},
	}
	for _, k := range keys {
		s := k.Encode()
		got, err := DecodeKey(s)
		if err != nil {
			t.Fatalf("DecodeKey(%q): %v", s, err)
		}
		if got != k {
			t.Fatalf("round trip %q: got %+v want %+v", s, got, k)
		}
	}
	// Canonical form is stable.
	s := Key{Content: 0xabc, Class: "car", Frame: 9}.Encode()
	if want := "v1:0000000000000abc:9:car"; s != want {
		t.Fatalf("Encode = %q, want %q", s, want)
	}
}

// TestDecodeKeyRejects: every malformed shape is an error, not a mangled
// key — remote stores must never hold aliased or misparsed entries.
func TestDecodeKeyRejects(t *testing.T) {
	bad := []string{
		"",
		"v1",
		"v1:0000000000000abc:9", // missing class field entirely
		"v2:0000000000000abc:9:car",
		"v1:abc:9:car",               // short hex
		"v1:0000000000000ABC:9:car",  // uppercase hex
		"v1:000000000000zabc:9:car",  // non-hex
		"v1:0000000000000abc:-1:car", // negative frame
		"v1:0000000000000abc:+9:car", // non-canonical frame
		"v1:0000000000000abc:09:car", // non-canonical frame
		"v1:0000000000000abc::car",   // empty frame
		"v1:0000000000000abc:9.5:car",
	}
	for _, s := range bad {
		if _, err := DecodeKey(s); err == nil {
			t.Errorf("DecodeKey(%q) succeeded, want error", s)
		}
	}
}

// TestLocalStore: PutBatch/GetBatch round-trip through the internal cache,
// distinguishing memoized-empty from absent, and CountRange sees entries.
func TestLocalStore(t *testing.T) {
	l := NewLocal(1024)
	ctx := context.Background()
	keys := []Key{
		{Content: 7, Class: "car", Frame: 10},
		{Content: 7, Class: "car", Frame: 20},
	}
	vals := [][]backend.Detection{{det(10, 0.9)}, nil} // nil = memoized empty
	if err := l.PutBatch(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	got, err := l.GetBatch(ctx, append(keys, Key{Content: 7, Class: "car", Frame: 30}))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Found || len(got[0].Dets) != 1 || got[0].Dets[0].Score != 0.9 {
		t.Fatalf("entry 0 = %+v, want found with one detection", got[0])
	}
	if !got[1].Found || got[1].Dets != nil {
		t.Fatalf("entry 1 = %+v, want memoized empty (found, no dets)", got[1])
	}
	if got[2].Found {
		t.Fatalf("entry 2 = %+v, want absent", got[2])
	}
	if n := l.CountRange(7, "car", 0, 100); n < 2 {
		t.Fatalf("CountRange = %d, want >= 2", n)
	}
	if n := l.CountRange(8, "car", 0, 100); n != 0 {
		t.Fatalf("CountRange wrong content = %d, want 0", n)
	}
}

// TestLocalForcesKeyFrame: a stored detection's Frame is the key's frame,
// whatever a confused remote payload claimed — misrouted entries cannot
// leak detections onto the wrong frame.
func TestLocalForcesKeyFrame(t *testing.T) {
	l := NewLocal(16)
	ctx := context.Background()
	k := Key{Content: 1, Class: "car", Frame: 50}
	if err := l.PutBatch(ctx, []Key{k}, [][]backend.Detection{{det(999, 0.5)}}); err != nil {
		t.Fatal(err)
	}
	got, err := l.GetBatch(ctx, []Key{k})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Found || got[0].Dets[0].Frame != 50 {
		t.Fatalf("got %+v, want detection pinned to frame 50", got[0])
	}
}

// fillFromMap is a test fill that serves from a fixed map and counts calls
// per key.
type fillCounter struct {
	mu    sync.Mutex
	calls map[Key]int
}

func (fc *fillCounter) fill(keys []Key) FillFunc {
	return func(_ context.Context, miss []int) ([][]backend.Detection, []float64, error) {
		fc.mu.Lock()
		if fc.calls == nil {
			fc.calls = make(map[Key]int)
		}
		for _, i := range miss {
			fc.calls[keys[i]]++
		}
		fc.mu.Unlock()
		dets := make([][]backend.Detection, len(miss))
		costs := make([]float64, len(miss))
		for j, i := range miss {
			dets[j] = []backend.Detection{det(keys[i].Frame, 0.8)}
			costs[j] = 0.002
		}
		return dets, costs, nil
	}
}

// TestTieredFetchBatch: cold keys fill (and write through both tiers), a
// second fetch is all L1, and a fresh L1 over the same L2 hits remotely.
func TestTieredFetchBatch(t *testing.T) {
	l2 := NewLocal(1024)
	tiered := NewTiered(NewLocal(1024), l2)
	ctx := context.Background()
	keys := []Key{
		{Content: 3, Class: "car", Frame: 1},
		{Content: 3, Class: "car", Frame: 2},
	}
	var fc fillCounter
	out, err := tiered.FetchBatch(ctx, keys, nil, fc.fill(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Where != TierDetector || o.Cost != 0.002 || len(o.Dets) != 1 {
			t.Fatalf("cold outcome %d = %+v, want detector fill", i, o)
		}
	}
	out, err = tiered.FetchBatch(ctx, keys, out, fc.fill(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Where != TierL1 || o.Cost != 0 {
			t.Fatalf("warm outcome %d = %+v, want L1 hit at zero cost", i, o)
		}
	}
	for k, n := range fc.calls {
		if n != 1 {
			t.Fatalf("key %v filled %d times, want 1", k, n)
		}
	}

	// A second process: fresh L1, same L2.
	second := NewTiered(NewLocal(1024), l2)
	var fc2 fillCounter
	out2, err := second.FetchBatch(ctx, keys, nil, fc2.fill(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out2 {
		if o.Where != TierL2 || o.Cost != 0 {
			t.Fatalf("second-user outcome %d = %+v, want L2 hit at zero cost", i, o)
		}
	}
	if len(fc2.calls) != 0 {
		t.Fatalf("second user paid %d detector calls, want 0", len(fc2.calls))
	}
	// And the L2 hits wrote through: third fetch is all L1.
	out2, err = second.FetchBatch(ctx, keys, out2, fc2.fill(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out2 {
		if o.Where != TierL1 {
			t.Fatalf("write-through outcome %d = %+v, want L1 hit", i, o)
		}
	}
	st := second.Stats()
	if st.L2Hits != 2 || st.L2RoundTrips != 1 || st.Fills != 0 {
		t.Fatalf("second-user stats = %+v, want 2 L2 hits over 1 round trip, 0 fills", st)
	}
	if st.L2RTTSeconds <= 0 {
		t.Fatalf("L2RTTSeconds = %v, want > 0 after a round trip", st.L2RTTSeconds)
	}
}

// errStore fails every call.
type errStore struct{}

func (errStore) GetBatch(context.Context, []Key) ([]Entry, error) {
	return nil, errors.New("remote down")
}
func (errStore) PutBatch(context.Context, []Key, [][]backend.Detection) error {
	return errors.New("remote down")
}

// TestTieredL2Degrades: a failing remote counts errors but the fetch still
// succeeds through the fill, and write-through failures are dropped.
func TestTieredL2Degrades(t *testing.T) {
	tiered := NewTiered(NewLocal(64), errStore{})
	ctx := context.Background()
	keys := []Key{{Content: 9, Class: "car", Frame: 4}}
	var fc fillCounter
	out, err := tiered.FetchBatch(ctx, keys, nil, fc.fill(keys))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Where != TierDetector {
		t.Fatalf("outcome = %+v, want detector fill despite remote outage", out[0])
	}
	st := tiered.Stats()
	if st.L2Errors != 1 || st.L2PutErrors != 1 {
		t.Fatalf("stats = %+v, want one read error and one dropped put", st)
	}
	if _, err := tiered.Warm(ctx, keys); err == nil {
		t.Fatal("Warm against a down remote succeeded, want error")
	}
}

// TestTieredWarm: Warm copies exactly the remotely present keys into L1 and
// reports the count; a later fetch is all L1 with zero fills.
func TestTieredWarm(t *testing.T) {
	l2 := NewLocal(1024)
	ctx := context.Background()
	present := []Key{{Content: 5, Class: "car", Frame: 0}, {Content: 5, Class: "car", Frame: 1}}
	if err := l2.PutBatch(ctx, present, [][]backend.Detection{{det(0, 0.7)}, nil}); err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(NewLocal(1024), l2)
	probe := append(append([]Key{}, present...), Key{Content: 5, Class: "car", Frame: 2})
	n, err := tiered.Warm(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Warm = %d, want 2", n)
	}
	var fc fillCounter
	out, err := tiered.FetchBatch(ctx, present, nil, fc.fill(present))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Where != TierL1 {
			t.Fatalf("post-warm outcome %d = %+v, want L1", i, o)
		}
	}
	if len(fc.calls) != 0 {
		t.Fatalf("post-warm fetch paid %d fills, want 0", len(fc.calls))
	}
	if st := tiered.Stats(); st.Warmed != 2 {
		t.Fatalf("Warmed = %d, want 2", st.Warmed)
	}
}

// TestTieredStoreInterface: Tiered's own GetBatch/PutBatch fan across tiers
// so tiered stores nest (a Tiered can be a cache server's backing store).
func TestTieredStoreInterface(t *testing.T) {
	l2 := NewLocal(64)
	tiered := NewTiered(NewLocal(64), l2)
	ctx := context.Background()
	keys := []Key{{Content: 11, Class: "bus", Frame: 3}}
	if err := tiered.PutBatch(ctx, keys, [][]backend.Detection{{det(3, 0.6)}}); err != nil {
		t.Fatal(err)
	}
	// Both tiers hold it.
	for name, s := range map[string]Store{"tiered": tiered, "l2": l2} {
		got, err := s.GetBatch(ctx, keys)
		if err != nil {
			t.Fatal(err)
		}
		if !got[0].Found {
			t.Fatalf("%s missing entry after PutBatch", name)
		}
	}
	// A fresh L1 resolves through L2 via the Store interface too.
	second := NewTiered(NewLocal(64), l2)
	got, err := second.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Found {
		t.Fatal("nested GetBatch missed an L2-resident entry")
	}
}

// TestSingleflightExactlyOnce: N concurrent fetches of the same cold keys
// pay exactly one fill per key — the others merge or hit L1.
func TestSingleflightExactlyOnce(t *testing.T) {
	tiered := NewTiered(NewLocal(1024), nil)
	keys := make([]Key, 16)
	for i := range keys {
		keys[i] = Key{Content: 21, Class: "car", Frame: int64(i)}
	}
	var fills atomic.Int64
	gate := make(chan struct{})
	slowFill := func(_ context.Context, miss []int) ([][]backend.Detection, []float64, error) {
		<-gate // hold every leader until all goroutines have fetched
		fills.Add(int64(len(miss)))
		dets := make([][]backend.Detection, len(miss))
		costs := make([]float64, len(miss))
		for j, i := range miss {
			dets[j] = []backend.Detection{det(keys[i].Frame, 0.8)}
		}
		return dets, costs, nil
	}
	const callers = 8
	var wg sync.WaitGroup
	var started sync.WaitGroup
	outcomes := make([][]Outcome, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		started.Add(1)
		go func(c int) {
			defer wg.Done()
			started.Done()
			outcomes[c], errs[c] = tiered.FetchBatch(context.Background(), keys, nil, slowFill)
		}(c)
	}
	started.Wait()
	close(gate)
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		for i, o := range outcomes[c] {
			if len(o.Dets) != 1 || o.Dets[0].Frame != keys[i].Frame {
				t.Fatalf("caller %d outcome %d = %+v, want frame %d", c, i, o, keys[i].Frame)
			}
		}
	}
	if n := fills.Load(); n != int64(len(keys)) {
		t.Fatalf("fill served %d frames across %d concurrent callers, want exactly %d", n, callers, len(keys))
	}
	if st := tiered.Stats(); st.Merges == 0 {
		t.Fatal("no singleflight merges recorded for concurrent identical fetches")
	}
}

// TestSingleflightLeaderCancelled: a leader cancelled mid-fill completes
// its flights with the error; waiters neither wedge nor inherit it — they
// re-fill with their own context and succeed.
func TestSingleflightLeaderCancelled(t *testing.T) {
	tiered := NewTiered(NewLocal(64), nil)
	keys := []Key{{Content: 31, Class: "car", Frame: 0}}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, err := tiered.FetchBatch(leaderCtx, keys, nil,
			func(ctx context.Context, miss []int) ([][]backend.Detection, []float64, error) {
				close(leaderIn)
				<-ctx.Done() // simulate a fill aborted by cancellation
				return nil, nil, ctx.Err()
			})
		leaderErr <- err
	}()
	<-leaderIn // the leader's flight is registered and its fill is running

	waiterDone := make(chan error, 1)
	var waiterOut []Outcome
	var waiterFills atomic.Int64
	go func() {
		out, err := tiered.FetchBatch(context.Background(), keys, nil,
			func(_ context.Context, miss []int) ([][]backend.Detection, []float64, error) {
				waiterFills.Add(1)
				return [][]backend.Detection{{det(0, 0.9)}}, []float64{0.001}, nil
			})
		waiterOut = out
		waiterDone <- err
	}()

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter failed after leader cancellation: %v", err)
	}
	if len(waiterOut) != 1 || len(waiterOut[0].Dets) != 1 {
		t.Fatalf("waiter outcome = %+v, want one filled frame", waiterOut)
	}
	if waiterFills.Load() != 1 {
		t.Fatalf("waiter filled %d times, want exactly 1 retry", waiterFills.Load())
	}
	// The protocol left no stranded flight behind.
	tiered.mu.Lock()
	stranded := len(tiered.inflight)
	tiered.mu.Unlock()
	if stranded != 0 {
		t.Fatalf("%d flights still registered after completion", stranded)
	}
}

// TestFetchBatchFillError: a real fill error (the detector failing)
// propagates, and the keys stay absent rather than memoized.
func TestFetchBatchFillError(t *testing.T) {
	tiered := NewTiered(NewLocal(64), nil)
	ctx := context.Background()
	keys := []Key{{Content: 41, Class: "car", Frame: 0}}
	boom := errors.New("detector down")
	_, err := tiered.FetchBatch(ctx, keys, nil,
		func(context.Context, []int) ([][]backend.Detection, []float64, error) {
			return nil, nil, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the fill error", err)
	}
	got, err := tiered.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Found {
		t.Fatal("a failed fill memoized an entry")
	}
	// Length-mismatched fills are rejected the same way.
	_, err = tiered.FetchBatch(ctx, keys, nil,
		func(context.Context, []int) ([][]backend.Detection, []float64, error) {
			return nil, nil, nil
		})
	if err == nil {
		t.Fatal("length-mismatched fill accepted")
	}
}

// TestFetchBatchReusesBuffer: a caller-supplied outcome buffer with enough
// capacity is reused, not reallocated — the engine's steady state.
func TestFetchBatchReusesBuffer(t *testing.T) {
	tiered := NewTiered(NewLocal(64), nil)
	ctx := context.Background()
	keys := []Key{{Content: 51, Class: "car", Frame: 0}}
	var fc fillCounter
	buf := make([]Outcome, 0, 8)
	out, err := tiered.FetchBatch(ctx, keys, buf, fc.fill(keys))
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("FetchBatch reallocated despite sufficient capacity")
	}
	if fmt.Sprintf("%p", out) != fmt.Sprintf("%p", buf[:1]) {
		t.Fatal("outcome buffer not aliased")
	}
}
