package cachestore

import (
	"context"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/internal/cache"
	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

// Local is the in-process tier: a Store over the bounded sharded LRU that
// backs the engine's memo cache. It is the natural L1 of a Tiered store and
// the natural backing store for an httpcache.Handler (a cache server is a
// Local behind the wire protocol). Local never returns an error and is safe
// for concurrent use.
type Local struct {
	c *cache.Cache
}

// Compile-time interface checks.
var (
	_ Store        = (*Local)(nil)
	_ rangeCounter = (*Local)(nil)
)

// NewLocal builds a local store bounding resident entries to roughly
// capacity (values < 1 are clamped to 1, matching internal/cache).
func NewLocal(capacity int) *Local {
	return &Local{c: cache.New(capacity)}
}

// WrapCache builds a Local over an existing internal cache, sharing its
// entries, counters and presence index. This is the bridge the engine uses
// to make its memo cache double as the tier's L1 — external callers want
// NewLocal (the parameter type is internal to this module).
func WrapCache(c *cache.Cache) *Local {
	return &Local{c: c}
}

// GetBatch implements Store. The returned detections are converted copies
// of the cached values, so callers may retain them freely.
func (l *Local) GetBatch(_ context.Context, keys []Key) ([]Entry, error) {
	out := make([]Entry, len(keys))
	for i, k := range keys {
		if dets, ok := l.c.Get(cacheKey(k)); ok {
			out[i] = Entry{Found: true, Dets: toBackend(dets)}
		}
	}
	return out, nil
}

// PutBatch implements Store.
func (l *Local) PutBatch(_ context.Context, keys []Key, vals [][]backend.Detection) error {
	for i, k := range keys {
		var v []backend.Detection
		if i < len(vals) {
			v = vals[i]
		}
		l.c.Put(cacheKey(k), toTrack(k.Frame, v))
	}
	return nil
}

// CountRange reports roughly how many entries for (content, class) are
// resident with frames in [start, end) — the cache-aware sampler's
// per-chunk signal.
func (l *Local) CountRange(content uint64, class string, start, end int64) int {
	return l.c.CountRange(content, class, start, end)
}

// Stats is a snapshot of a local store's counters.
type Stats struct {
	// Hits and Misses count lookup outcomes since construction.
	Hits, Misses int64
	// Evictions counts entries displaced by capacity pressure.
	Evictions int64
	// Entries is the current resident entry count.
	Entries int
}

// Stats snapshots the store's counters.
func (l *Local) Stats() Stats {
	st := l.c.Stats()
	return Stats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries}
}

// cacheKey maps a content-addressed key onto the internal cache's key
// space: Content plays the role the per-process source id plays for the
// memo cache.
func cacheKey(k Key) cache.Key {
	return cache.Key{Source: k.Content, Class: k.Class, Frame: k.Frame}
}

// toBackend converts internal detections to the public wire type.
func toBackend(dets []track.Detection) []backend.Detection {
	if len(dets) == 0 {
		return nil
	}
	out := make([]backend.Detection, len(dets))
	for i, d := range dets {
		out[i] = backend.Detection{
			Frame:   d.Frame,
			Class:   d.Class,
			Box:     backend.Box{X1: d.Box.X1, Y1: d.Box.Y1, X2: d.Box.X2, Y2: d.Box.Y2},
			Score:   d.Score,
			TruthID: d.TruthID,
		}
	}
	return out
}

// toTrack converts wire detections to the internal type, forcing the frame
// index: per the Store contract an entry holds its key's frame, so an
// echoed Frame field from a confused (or corrupted) remote store cannot
// misroute detections.
func toTrack(frame int64, dets []backend.Detection) []track.Detection {
	if len(dets) == 0 {
		return nil
	}
	out := make([]track.Detection, len(dets))
	for i, d := range dets {
		out[i] = track.Detection{
			Frame:   frame,
			Class:   d.Class,
			Box:     geom.Box{X1: d.Box.X1, Y1: d.Box.Y1, X2: d.Box.X2, Y2: d.Box.Y2},
			Score:   d.Score,
			TruthID: d.TruthID,
		}
	}
	return out
}
