package cachestore

import "testing"

// FuzzKeyRoundTrip pins the wire format both ways: every Key encodes to a
// string that decodes back to itself, and every string DecodeKey accepts
// re-encodes to a canonical fixpoint (one wire form per key — remote
// stores must never hold aliased entries).
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), "")
	f.Add(uint64(1), int64(1), "car")
	f.Add(^uint64(0), int64(1)<<62, "person")
	f.Add(uint64(0xdeadbeef), int64(7), "a:b:c")
	f.Add(uint64(42), int64(99), "class with \x00 bytes")
	f.Fuzz(func(t *testing.T, content uint64, frame int64, class string) {
		if frame < 0 {
			frame = -frame
		}
		if frame < 0 { // MinInt64 negates to itself
			frame = 0
		}
		k := Key{Content: content, Class: class, Frame: frame}
		s := k.Encode()
		got, err := DecodeKey(s)
		if err != nil {
			t.Fatalf("DecodeKey(Encode(%+v) = %q): %v", k, s, err)
		}
		if got != k {
			t.Fatalf("round trip %q: got %+v want %+v", s, got, k)
		}
		// Decode → Encode is a fixpoint: the accepted form IS the canonical
		// form.
		if s2 := got.Encode(); s2 != s {
			t.Fatalf("re-encode %q != %q", s2, s)
		}
	})
}

// FuzzDecodeKey feeds arbitrary strings: DecodeKey must never panic, and
// anything it accepts must re-encode to the exact input (canonicality).
func FuzzDecodeKey(f *testing.F) {
	f.Add("v1:0000000000000abc:9:car")
	f.Add("v1:0000000000000abc:+9:car")
	f.Add("v2:0000000000000abc:9:car")
	f.Add("")
	f.Add("v1:::")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := DecodeKey(s)
		if err != nil {
			return
		}
		if got := k.Encode(); got != s {
			t.Fatalf("accepted %q but canonical form is %q", s, got)
		}
	})
}
