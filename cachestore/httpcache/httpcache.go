// Package httpcache is the remote half of the shared result tier: a Client
// that speaks a small JSON batch protocol to a cache server, and a Handler
// that serves any cachestore.Store over the same protocol (the loopback
// pairing used by tests, examples and exserve's -cache-remote mode). It
// mirrors backend/httpbatch: timeouts, bounded retries with backoff, and a
// per-endpoint concurrency cap.
//
// # Wire protocol
//
// One POST per batch, routed by path suffix.
//
// GET — POST {endpoint}/get:
//
//	{"keys": ["v1:000000000000002a:17:car", ...]}
//
// Response (HTTP 200), entries aligned with keys:
//
//	{"entries": [{"found": true, "dets": [{"frame": 17, "class": "car",
//	  "box": [x1, y1, x2, y2], "score": 0.93, "truth_id": 7}]},
//	  {"found": false}]}
//
// PUT — POST {endpoint}/put:
//
//	{"entries": [{"key": "v1:000000000000002a:17:car", "dets": [...]}]}
//
// Response (HTTP 200):
//
//	{"stored": 1}
//
// found:true with no dets is a valid memoized "nothing in this frame".
// Errors follow httpbatch exactly: a non-200 status fails the batch, 5xx and
// transport errors retry up to Config.Retries with a short backoff, 4xx is
// terminal (the request itself is malformed). Every attempt carries
// Config.Timeout and honors the caller's context.
package httpcache

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/cachestore"
)

// wireDetection is the wire form of one detection — the same shape
// backend/httpbatch puts on the wire, so a cache entry round-trips exactly
// what a remote detector would have produced.
type wireDetection struct {
	Frame   int64      `json:"frame"`
	Class   string     `json:"class"`
	Box     [4]float64 `json:"box"`
	Score   float64    `json:"score"`
	TruthID int        `json:"truth_id"`
}

// getRequest / getResponse are the wire forms of a batched lookup.
type getRequest struct {
	Keys []string `json:"keys"`
}

type getEntry struct {
	Found bool            `json:"found"`
	Dets  []wireDetection `json:"dets,omitempty"`
}

type getResponse struct {
	Entries []getEntry `json:"entries"`
}

// putRequest / putResponse are the wire forms of a batched store.
type putRequest struct {
	Entries []putEntry `json:"entries"`
}

type putEntry struct {
	Key  string          `json:"key"`
	Dets []wireDetection `json:"dets,omitempty"`
}

type putResponse struct {
	Stored int `json:"stored"`
}

// Config parameterizes a Client. Endpoint is required; everything else has
// a production-shaped default matching backend/httpbatch.
type Config struct {
	// Endpoint is the cache server's base URL (e.g. http://cache-1:9090);
	// the client POSTs to {Endpoint}/get and {Endpoint}/put.
	Endpoint string
	// HTTPClient overrides the transport (default: a fresh http.Client;
	// the per-attempt timeout always comes from Timeout).
	HTTPClient *http.Client
	// Timeout bounds each HTTP attempt (default 30s).
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried on transport
	// errors and 5xx responses (default 2; 4xx never retries). Use -1 to
	// disable retries entirely.
	Retries int
	// RetryBackoff is the pause before each retry (default 100ms).
	RetryBackoff time.Duration
	// MaxConcurrent caps in-flight requests to the endpoint across every
	// query sharing this client (default 4).
	MaxConcurrent int
	// MaxBatch caps keys per wire request; larger batches are split into
	// sequential requests (default 256 — cache entries are far smaller
	// than detector batches, so the cap is correspondingly higher).
	MaxBatch int
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	switch {
	case c.Retries == 0:
		c.Retries = 2
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	return c
}

// Stats is a snapshot of a client's traffic counters.
type Stats struct {
	// Gets/Puts count successful batched calls; Keys the keys they
	// covered (both directions).
	Gets, Puts, Keys int64
	// Requests counts HTTP attempts (retries included); Retries the
	// attempts beyond the first.
	Requests, Retries int64
}

// bufPool recycles response-read and handler-encode buffers, whose
// lifetimes are provably synchronous (request bodies are not pooled — same
// reasoning as httpbatch: the transport may touch the body reader after Do
// returns).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Client is a remote cache store: it implements cachestore.Store over the
// httpcache wire protocol and is safe for concurrent use by any number of
// queries. A failing remote never fails a query — the Tiered store above
// degrades its errors to misses — but the Client itself reports them
// honestly.
type Client struct {
	cfg    Config
	getURL string
	putURL string
	sem    chan struct{}

	mu    sync.Mutex
	stats Stats
}

// Compile-time interface check.
var _ cachestore.Store = (*Client)(nil)

// New builds a client for the given cache server.
func New(cfg Config) (*Client, error) {
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("httpcache: Config.Endpoint is required")
	}
	if cfg.Retries < -1 || cfg.MaxConcurrent < 0 || cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("httpcache: negative MaxConcurrent or MaxBatch, or Retries below -1")
	}
	if cfg.Timeout < 0 || cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("httpcache: negative Timeout or RetryBackoff")
	}
	cfg = cfg.withDefaults()
	base := strings.TrimSuffix(cfg.Endpoint, "/")
	return &Client{
		cfg:    cfg,
		getURL: base + "/get",
		putURL: base + "/put",
		sem:    make(chan struct{}, cfg.MaxConcurrent),
	}, nil
}

// Stats returns a snapshot of the client's traffic counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// GetBatch implements cachestore.Store. Batches beyond MaxBatch are split
// into sequential wire requests; the returned entries are aligned with keys.
func (c *Client) GetBatch(ctx context.Context, keys []cachestore.Key) ([]cachestore.Entry, error) {
	out := make([]cachestore.Entry, len(keys))
	for lo := 0; lo < len(keys); lo += c.cfg.MaxBatch {
		hi := lo + c.cfg.MaxBatch
		if hi > len(keys) {
			hi = len(keys)
		}
		if err := c.getChunk(ctx, keys[lo:hi], out[lo:hi]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *Client) getChunk(ctx context.Context, keys []cachestore.Key, out []cachestore.Entry) error {
	if len(keys) == 0 {
		return nil
	}
	req := getRequest{Keys: make([]string, len(keys))}
	for i, k := range keys {
		req.Keys[i] = k.Encode()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("httpcache: encode get request: %w", err)
	}
	var resp getResponse
	if err := c.roundTrip(ctx, c.getURL, body, &resp); err != nil {
		return err
	}
	if len(resp.Entries) != len(keys) {
		return fmt.Errorf("httpcache: server returned %d entries for a %d-key get", len(resp.Entries), len(keys))
	}
	for i, e := range resp.Entries {
		if !e.Found {
			out[i] = cachestore.Entry{}
			continue
		}
		out[i] = cachestore.Entry{Found: true, Dets: fromWire(e.Dets)}
	}
	c.mu.Lock()
	c.stats.Gets++
	c.stats.Keys += int64(len(keys))
	c.mu.Unlock()
	return nil
}

// PutBatch implements cachestore.Store, splitting by MaxBatch like GetBatch.
func (c *Client) PutBatch(ctx context.Context, keys []cachestore.Key, vals [][]backend.Detection) error {
	for lo := 0; lo < len(keys); lo += c.cfg.MaxBatch {
		hi := lo + c.cfg.MaxBatch
		if hi > len(keys) {
			hi = len(keys)
		}
		var chunk [][]backend.Detection
		if lo < len(vals) {
			vhi := hi
			if vhi > len(vals) {
				vhi = len(vals)
			}
			chunk = vals[lo:vhi]
		}
		if err := c.putChunk(ctx, keys[lo:hi], chunk); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) putChunk(ctx context.Context, keys []cachestore.Key, vals [][]backend.Detection) error {
	if len(keys) == 0 {
		return nil
	}
	req := putRequest{Entries: make([]putEntry, len(keys))}
	for i, k := range keys {
		var v []backend.Detection
		if i < len(vals) {
			v = vals[i]
		}
		req.Entries[i] = putEntry{Key: k.Encode(), Dets: toWire(v)}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("httpcache: encode put request: %w", err)
	}
	var resp putResponse
	if err := c.roundTrip(ctx, c.putURL, body, &resp); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Puts++
	c.stats.Keys += int64(len(keys))
	c.mu.Unlock()
	return nil
}

// roundTrip runs one request through admission control and the retry loop —
// the httpbatch retry discipline verbatim: doomed deadlines terminate
// early, cancellation mid-backoff is terminal, and only attempts actually
// issued count as retries.
func (c *Client) roundTrip(ctx context.Context, url string, body []byte, into any) error {
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-ctx.Done():
		return ctx.Err()
	}
	var retries int64
	var err error
	for attempt := 0; ; attempt++ {
		var retryable bool
		retryable, err = c.attempt(ctx, url, body, into)
		if err == nil {
			break
		}
		if !retryable || attempt >= c.cfg.Retries || ctx.Err() != nil {
			c.mu.Lock()
			c.stats.Requests += int64(attempt) + 1
			c.stats.Retries += retries
			c.mu.Unlock()
			return err
		}
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= c.cfg.RetryBackoff {
			c.mu.Lock()
			c.stats.Requests += int64(attempt) + 1
			c.stats.Retries += retries
			c.mu.Unlock()
			return fmt.Errorf("%w before the retry backoff (last attempt: %v)", context.DeadlineExceeded, err)
		}
		select {
		case <-time.After(c.cfg.RetryBackoff):
			retries++
		case <-ctx.Done():
			c.mu.Lock()
			c.stats.Requests += int64(attempt) + 1
			c.stats.Retries += retries
			c.mu.Unlock()
			return ctx.Err()
		}
	}
	c.mu.Lock()
	c.stats.Requests += retries + 1
	c.stats.Retries += retries
	c.mu.Unlock()
	return nil
}

// attempt issues one HTTP request, decoding the 200 body into into.
// retryable reports whether a failure is worth retrying (transport errors
// and 5xx).
func (c *Client) attempt(ctx context.Context, url string, body []byte, into any) (retryable bool, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("httpcache: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return true, fmt.Errorf("httpcache: %w", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		err := fmt.Errorf("httpcache: endpoint returned %s: %s", httpResp.Status, bytes.TrimSpace(msg))
		return httpResp.StatusCode >= 500, err
	}
	// Read whole, then decode: a reset mid-body stays retryable, a complete
	// body that does not parse is a terminal protocol error.
	respBuf := bufPool.Get().(*bytes.Buffer)
	respBuf.Reset()
	defer bufPool.Put(respBuf)
	if _, err := respBuf.ReadFrom(httpResp.Body); err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return true, fmt.Errorf("httpcache: read response: %w", err)
	}
	if err := json.Unmarshal(respBuf.Bytes(), into); err != nil {
		return false, fmt.Errorf("httpcache: decode response: %w", err)
	}
	return false, nil
}

func toWire(dets []backend.Detection) []wireDetection {
	if len(dets) == 0 {
		return nil
	}
	out := make([]wireDetection, len(dets))
	for i, d := range dets {
		out[i] = wireDetection{
			Frame:   d.Frame,
			Class:   d.Class,
			Box:     [4]float64{d.Box.X1, d.Box.Y1, d.Box.X2, d.Box.Y2},
			Score:   d.Score,
			TruthID: d.TruthID,
		}
	}
	return out
}

func fromWire(dets []wireDetection) []backend.Detection {
	if len(dets) == 0 {
		return nil
	}
	out := make([]backend.Detection, len(dets))
	for i, w := range dets {
		out[i] = backend.Detection{
			Frame:   w.Frame,
			Class:   w.Class,
			Box:     backend.Box{X1: w.Box[0], Y1: w.Box[1], X2: w.Box[2], Y2: w.Box[3]},
			Score:   w.Score,
			TruthID: w.TruthID,
		}
	}
	return out
}

// Server-side bounds, mirroring httpbatch's maxRequestBytes discipline.
const (
	// maxRequestBytes bounds a request body the Handler will decode.
	maxRequestBytes = 8 << 20
	// maxKeysPerRequest bounds keys (or entries) per request — far above
	// any batch a well-behaved client sends (MaxBatch defaults to 256).
	maxKeysPerRequest = 4096
	// maxDetsPerEntry bounds detections in a single stored entry; a frame
	// with thousands of detections is a corrupt or hostile payload, not a
	// video frame.
	maxDetsPerEntry = 1024
)

// Handler serves a cachestore.Store over the httpcache wire protocol — the
// server half of the pairing. Routing is by path suffix: POST .../get and
// POST .../put. Requests are bounded (oversized bodies, oversized batches
// and absurdly large entries are rejected with 400) and every key must
// decode; a request carrying one undecodable key is rejected whole, so a
// version-skewed client cannot silently poison a shared store. Pair it with
// any mux: http.Handle("/cache/", httpcache.Handler(store)).
func Handler(store cachestore.Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "httpcache: POST only", http.StatusMethodNotAllowed)
			return
		}
		switch {
		case strings.HasSuffix(r.URL.Path, "/get"):
			handleGet(store, w, r)
		case strings.HasSuffix(r.URL.Path, "/put"):
			handlePut(store, w, r)
		default:
			http.Error(w, "httpcache: unknown endpoint (want .../get or .../put)", http.StatusNotFound)
		}
	})
}

func handleGet(store cachestore.Store, w http.ResponseWriter, r *http.Request) {
	var req getRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("httpcache: bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Keys) == 0 {
		http.Error(w, "httpcache: keys are required", http.StatusBadRequest)
		return
	}
	if len(req.Keys) > maxKeysPerRequest {
		http.Error(w, fmt.Sprintf("httpcache: %d keys exceeds the per-request cap %d", len(req.Keys), maxKeysPerRequest), http.StatusBadRequest)
		return
	}
	keys := make([]cachestore.Key, len(req.Keys))
	for i, s := range req.Keys {
		k, err := cachestore.DecodeKey(s)
		if err != nil {
			http.Error(w, fmt.Sprintf("httpcache: %v", err), http.StatusBadRequest)
			return
		}
		keys[i] = k
	}
	entries, err := store.GetBatch(r.Context(), keys)
	if err != nil {
		http.Error(w, fmt.Sprintf("httpcache: store: %v", err), http.StatusInternalServerError)
		return
	}
	if len(entries) != len(keys) {
		http.Error(w, fmt.Sprintf("httpcache: store returned %d entries for %d keys", len(entries), len(keys)), http.StatusInternalServerError)
		return
	}
	resp := getResponse{Entries: make([]getEntry, len(entries))}
	for i, e := range entries {
		resp.Entries[i] = getEntry{Found: e.Found, Dets: toWire(e.Dets)}
	}
	writeJSON(w, resp)
}

func handlePut(store cachestore.Store, w http.ResponseWriter, r *http.Request) {
	var req putRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("httpcache: bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Entries) == 0 {
		http.Error(w, "httpcache: entries are required", http.StatusBadRequest)
		return
	}
	if len(req.Entries) > maxKeysPerRequest {
		http.Error(w, fmt.Sprintf("httpcache: %d entries exceeds the per-request cap %d", len(req.Entries), maxKeysPerRequest), http.StatusBadRequest)
		return
	}
	keys := make([]cachestore.Key, len(req.Entries))
	vals := make([][]backend.Detection, len(req.Entries))
	for i, e := range req.Entries {
		k, err := cachestore.DecodeKey(e.Key)
		if err != nil {
			http.Error(w, fmt.Sprintf("httpcache: %v", err), http.StatusBadRequest)
			return
		}
		if len(e.Dets) > maxDetsPerEntry {
			http.Error(w, fmt.Sprintf("httpcache: entry %q carries %d detections, cap is %d", e.Key, len(e.Dets), maxDetsPerEntry), http.StatusBadRequest)
			return
		}
		keys[i] = k
		vals[i] = fromWire(e.Dets)
	}
	if err := store.PutBatch(r.Context(), keys, vals); err != nil {
		http.Error(w, fmt.Sprintf("httpcache: store: %v", err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, putResponse{Stored: len(keys)})
}

// writeJSON encodes into a pooled buffer first, so the response hits the
// wire in one write and an encode failure can still surface as a 500.
func writeJSON(w http.ResponseWriter, v any) {
	out := bufPool.Get().(*bytes.Buffer)
	out.Reset()
	defer bufPool.Put(out)
	if err := json.NewEncoder(out).Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("httpcache: encode response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out.Bytes())
}
