package httpcache

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/cachestore"
)

func loopback(t *testing.T) (*Client, *cachestore.Local, *httptest.Server) {
	t.Helper()
	store := cachestore.NewLocal(4096)
	srv := httptest.NewServer(Handler(store))
	t.Cleanup(srv.Close)
	c, err := New(Config{Endpoint: srv.URL, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	return c, store, srv
}

func dets(frame int64) []backend.Detection {
	return []backend.Detection{{
		Frame: frame,
		Class: "car",
		Box:   backend.Box{X1: 0.125, Y1: 2.5, X2: 3.75, Y2: 4.0625},
		Score: 0.9375, // exactly representable, but arbitrary floats round-trip too
	}}
}

// TestClientServerRoundTrip: PutBatch then GetBatch through a real HTTP
// loopback returns exactly what went in, memoized-empty included.
func TestClientServerRoundTrip(t *testing.T) {
	c, _, _ := loopback(t)
	ctx := context.Background()
	keys := []cachestore.Key{
		{Content: 42, Class: "car", Frame: 17},
		{Content: 42, Class: "car", Frame: 18},
	}
	vals := [][]backend.Detection{dets(17), nil}
	if err := c.PutBatch(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	probe := append(append([]cachestore.Key{}, keys...), cachestore.Key{Content: 42, Class: "car", Frame: 99})
	got, err := c.GetBatch(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Found || len(got[0].Dets) != 1 || got[0].Dets[0] != vals[0][0] {
		t.Fatalf("entry 0 = %+v, want exact round trip of %+v", got[0], vals[0][0])
	}
	if !got[1].Found || got[1].Dets != nil {
		t.Fatalf("entry 1 = %+v, want memoized empty", got[1])
	}
	if got[2].Found {
		t.Fatalf("entry 2 = %+v, want absent", got[2])
	}
	st := c.Stats()
	if st.Gets != 1 || st.Puts != 1 || st.Keys != 5 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want 1 get + 1 put over 5 keys, no retries", st)
	}
}

// TestFloatRoundTrip: arbitrary float64 box coordinates and scores survive
// the JSON wire bit-exactly (Go emits shortest-round-trip encodings), which
// is what keeps remote-tier results byte-identical to paid inference.
func TestFloatRoundTrip(t *testing.T) {
	c, _, _ := loopback(t)
	ctx := context.Background()
	in := []backend.Detection{{
		Frame: 3, Class: "car",
		Box:   backend.Box{X1: 0.1 + 0.2, Y1: 1.0 / 3.0, X2: 0.30000000000000004, Y2: 1e-17},
		Score: 0.123456789012345678,
	}}
	k := []cachestore.Key{{Content: 1, Class: "car", Frame: 3}}
	if err := c.PutBatch(ctx, k, [][]backend.Detection{in}); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dets[0] != in[0] {
		t.Fatalf("floats drifted over the wire: got %+v want %+v", got[0].Dets[0], in[0])
	}
}

// TestBatchSplitting: a batch beyond MaxBatch splits into sequential wire
// requests, entries still aligned.
func TestBatchSplitting(t *testing.T) {
	store := cachestore.NewLocal(4096)
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/get") {
			gets.Add(1)
		}
		Handler(store).ServeHTTP(w, r)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, MaxBatch: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	keys := make([]cachestore.Key, 25)
	vals := make([][]backend.Detection, 25)
	for i := range keys {
		keys[i] = cachestore.Key{Content: 7, Class: "car", Frame: int64(i)}
		vals[i] = dets(int64(i))
	}
	if err := c.PutBatch(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if n := gets.Load(); n != 3 {
		t.Fatalf("25 keys at MaxBatch 10 issued %d get requests, want 3", n)
	}
	for i, e := range got {
		if !e.Found || e.Dets[0].Frame != int64(i) {
			t.Fatalf("entry %d = %+v, misaligned after splitting", i, e)
		}
	}
}

// TestRetryOn5xx: a transient 500 is retried and the call succeeds; the
// retry is counted.
func TestRetryOn5xx(t *testing.T) {
	store := cachestore.NewLocal(64)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		Handler(store).ServeHTTP(w, r)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(context.Background(), []cachestore.Key{{Content: 1, Class: "car", Frame: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Found {
		t.Fatal("empty store returned a hit")
	}
	if st := c.Stats(); st.Retries != 1 || st.Requests != 2 {
		t.Fatalf("stats = %+v, want exactly one retry over two requests", st)
	}
}

// Test4xxTerminal: a 400 fails immediately without retries.
func Test4xxTerminal(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBatch(context.Background(), []cachestore.Key{{Frame: 0}}); err == nil {
		t.Fatal("400 response did not fail the call")
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried (%d attempts), must be terminal", calls.Load())
	}
}

// TestEntryCountMismatch: a server answering with the wrong entry count is
// a protocol error, not silently misaligned data.
func TestEntryCountMismatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"entries":[]}`)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBatch(context.Background(), []cachestore.Key{{Frame: 0}}); err == nil {
		t.Fatal("entry-count mismatch accepted")
	}
}

// TestCorruptResponseTerminal: a complete-but-unparseable body is a
// terminal protocol error, not retried.
func TestCorruptResponseTerminal(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, `{"entries": not json`)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBatch(context.Background(), []cachestore.Key{{Frame: 0}}); err == nil {
		t.Fatal("corrupt response accepted")
	}
	if calls.Load() != 1 {
		t.Fatalf("corrupt body retried (%d attempts), must be terminal", calls.Load())
	}
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestHandlerRejects: the server rejects malformed, oversized and
// version-skewed requests with 400 — one bad key fails the whole batch so
// a skewed client cannot poison a shared store.
func TestHandlerRejects(t *testing.T) {
	_, _, srv := loopback(t)
	goodKey := cachestore.Key{Content: 1, Class: "car", Frame: 0}.Encode()

	manyKeys := make([]string, 5000)
	for i := range manyKeys {
		manyKeys[i] = cachestore.Key{Content: 1, Class: "car", Frame: int64(i)}.Encode()
	}
	manyJSON, _ := json.Marshal(map[string]any{"keys": manyKeys})

	bigDets := make([]wireDetection, 2000)
	bigEntry, _ := json.Marshal(map[string]any{"entries": []any{map[string]any{"key": goodKey, "dets": bigDets}}})

	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"corrupt get body", "/get", `{"keys": [`, http.StatusBadRequest},
		{"empty keys", "/get", `{"keys": []}`, http.StatusBadRequest},
		{"bad key", "/get", `{"keys": ["v9:junk:1:car"]}`, http.StatusBadRequest},
		{"one bad key poisons the batch", "/get", fmt.Sprintf(`{"keys": [%q, "nope"]}`, goodKey), http.StatusBadRequest},
		{"oversized key batch", "/get", string(manyJSON), http.StatusBadRequest},
		{"corrupt put body", "/put", `{"entries": [`, http.StatusBadRequest},
		{"empty entries", "/put", `{"entries": []}`, http.StatusBadRequest},
		{"bad put key", "/put", `{"entries": [{"key": "garbage", "dets": []}]}`, http.StatusBadRequest},
		{"oversized entry", "/put", string(bigEntry), http.StatusBadRequest},
		{"unknown endpoint", "/stats", `{}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp := postJSON(t, srv.URL+tc.path, tc.body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
	}

	// Non-POST is 405.
	resp, err := http.Get(srv.URL + "/get")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /get: status %d, want 405", resp.StatusCode)
	}

	// An oversized body (beyond maxRequestBytes) is rejected, not decoded.
	huge := `{"keys": ["` + strings.Repeat("x", maxRequestBytes) + `"]}`
	resp2 := postJSON(t, srv.URL+"/get", huge)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp2.StatusCode)
	}
}

// TestConfigValidation: New rejects out-of-range configs.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty endpoint accepted")
	}
	if _, err := New(Config{Endpoint: "http://x", Retries: -2}); err == nil {
		t.Error("Retries -2 accepted")
	}
	if _, err := New(Config{Endpoint: "http://x", Timeout: -time.Second}); err == nil {
		t.Error("negative Timeout accepted")
	}
	if _, err := New(Config{Endpoint: "http://x", MaxBatch: -1}); err == nil {
		t.Error("negative MaxBatch accepted")
	}
}

// TestTieredOverLoopback: the full composition — Tiered with an httpcache
// Client as L2 against a live loopback server — serves a second user's
// fetch entirely from the shared tier.
func TestTieredOverLoopback(t *testing.T) {
	store := cachestore.NewLocal(4096)
	srv := httptest.NewServer(Handler(store))
	defer srv.Close()

	newTier := func() *cachestore.Tiered {
		c, err := New(Config{Endpoint: srv.URL})
		if err != nil {
			t.Fatal(err)
		}
		return cachestore.NewTiered(cachestore.NewLocal(256), c)
	}
	ctx := context.Background()
	keys := []cachestore.Key{{Content: 8, Class: "car", Frame: 5}}

	first := newTier()
	var fills atomic.Int64
	fill := func(_ context.Context, miss []int) ([][]backend.Detection, []float64, error) {
		fills.Add(int64(len(miss)))
		return [][]backend.Detection{dets(5)}, []float64{0.002}, nil
	}
	if _, err := first.FetchBatch(ctx, keys, nil, fill); err != nil {
		t.Fatal(err)
	}
	second := newTier()
	out, err := second.FetchBatch(ctx, keys, nil, fill)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Where != cachestore.TierL2 {
		t.Fatalf("second user outcome = %+v, want L2 hit over HTTP", out[0])
	}
	if fills.Load() != 1 {
		t.Fatalf("%d detector fills across two users, want 1", fills.Load())
	}
}
