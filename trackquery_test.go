package exsample

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// trackScene builds a sparse moving-object scene: 8 cars over 40k frames,
// each travelling 300 px rightward over its lifetime, so speed and
// direction clauses have signal and a dense scan is ~8x the accelerated
// cost.
func trackScene(t *testing.T, opts ...DatasetOption) *Dataset {
	t.Helper()
	ds, err := Synthesize(SynthSpec{
		NumFrames:    40_000,
		NumInstances: 8,
		Class:        "car",
		MeanDuration: 300,
		ChunkFrames:  1000,
		Seed:         7,
		TravelX:      300,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// trackPred is the baseline predicate most tests run: cars visible for at
// least 50 frames (deriving a coarse stride of 25).
func trackPred() TrackPredicate {
	return TrackPredicate{Class: "car", MinDuration: 50}
}

// normTracks strips emission numbering and orders results by position so
// two runs with different interval groupings can be compared as sets.
func normTracks(rs []TrackResult) []TrackResult {
	out := append([]TrackResult(nil), rs...)
	for i := range out {
		out[i].TrackID = 0
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].StartBox.Y1 < out[j].StartBox.Y1
	})
	return out
}

func TestTrackSearchFindsTracks(t *testing.T) {
	ds := trackScene(t, WithPerfectDetector())
	rep, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no tracks matched")
	}
	if rep.CoarseFrames+rep.RefineFrames != rep.FramesProcessed {
		t.Errorf("phase split %d+%d != total %d", rep.CoarseFrames, rep.RefineFrames, rep.FramesProcessed)
	}
	if rep.Intervals == 0 || rep.IntervalFrames == 0 {
		t.Errorf("no candidate intervals recorded: %d intervals, %d frames", rep.Intervals, rep.IntervalFrames)
	}
	if rep.DenseFrames != 40_000 {
		t.Errorf("DenseFrames = %d, want 40000", rep.DenseFrames)
	}
	if rep.Speedup() < 3 {
		t.Errorf("speedup %.2f < 3 (processed %d of %d dense frames)", rep.Speedup(), rep.FramesProcessed, rep.DenseFrames)
	}
	for i, r := range rep.Results {
		if r.TrackID != i {
			t.Errorf("result %d has TrackID %d", i, r.TrackID)
		}
		if r.Class != "car" {
			t.Errorf("result %d class %q", i, r.Class)
		}
		if span := r.End - r.Start + 1; span < 50 {
			t.Errorf("result %d span %d below MinDuration", i, span)
		}
		if r.Hits < 2 {
			t.Errorf("result %d has %d hits", i, r.Hits)
		}
		if r.AvgSpeed <= 0 {
			t.Errorf("result %d has non-positive speed %v", i, r.AvgSpeed)
		}
	}
}

func TestTrackSearchDeterministicRepeat(t *testing.T) {
	// Same source, predicate and options: the full report — results,
	// frame counts and charged seconds — must be byte-identical run over
	// run.
	ds := trackScene(t, WithPerfectDetector())
	want, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got, want)
		}
	}
}

func TestTrackSearchSeedIndependentResults(t *testing.T) {
	// The sampler seed orders the coarse phase but the grid always runs
	// to completion, so the result set — and every frame counter — is
	// seed-independent. Only charged seconds may differ (summation
	// order).
	ds := trackScene(t, WithPerfectDetector())
	want, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{2, 99, 12345} {
		got, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Results, got.Results) {
			t.Errorf("seed %d changed the result set (%d vs %d results)", seed, len(got.Results), len(want.Results))
		}
		if got.FramesProcessed != want.FramesProcessed || got.Intervals != want.Intervals {
			t.Errorf("seed %d changed coverage: frames %d vs %d, intervals %d vs %d",
				seed, got.FramesProcessed, want.FramesProcessed, got.Intervals, want.Intervals)
		}
	}
}

func TestTrackEngineMatchesTrackSearch(t *testing.T) {
	// The engine adds scheduling, never behavior: at FramesPerRound 1 the
	// pick/apply sequence is exactly the sequential driver's, so the full
	// report is byte-identical.
	ds := trackScene(t, WithPerfectDetector())
	want, err := TrackSearch(ds, trackPred(), TrackOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 1, FramesPerRound: 1})
	h, err := e.SubmitTrack(context.Background(), ds, trackPred(), TrackOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("engine diverged from TrackSearch:\nsearch: %+v\nengine: %+v", want, got)
	}
}

func TestTrackEngineRoundSizeInvariance(t *testing.T) {
	// Round size and worker count reorder coarse picks but cannot change
	// what the grid discovers: results and frame counters are invariant.
	ds := trackScene(t, WithPerfectDetector())
	want, err := TrackSearch(ds, trackPred(), TrackOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []EngineOptions{
		{Workers: 1, FramesPerRound: 16},
		{Workers: 8, FramesPerRound: 16},
		{Workers: 8, FramesPerRound: 64},
	} {
		e := newTestEngine(t, cfg)
		h, err := e.SubmitTrack(context.Background(), ds, trackPred(), TrackOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Results, got.Results) {
			t.Errorf("workers=%d round=%d changed results (%d vs %d)",
				cfg.Workers, cfg.FramesPerRound, len(got.Results), len(want.Results))
		}
		if got.FramesProcessed != want.FramesProcessed || got.CoarseFrames != want.CoarseFrames ||
			got.RefineFrames != want.RefineFrames || got.Intervals != want.Intervals {
			t.Errorf("workers=%d round=%d changed coverage: %+v vs %+v", cfg.Workers, cfg.FramesPerRound, got, want)
		}
	}
}

func TestTrackSingleShardMatchesDataset(t *testing.T) {
	// A 1-shard ShardedSource is the identity remapping: the track report
	// must be byte-identical to querying the dataset directly.
	ds := trackScene(t, WithPerfectDetector())
	ss, err := NewShardedSource("one", ds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TrackSearch(ds, trackPred(), TrackOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrackSearch(ss, trackPred(), TrackOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("1-shard source diverged from Dataset:\ndataset: %+v\nsharded: %+v", want, got)
	}
}

func TestTrackTwoShardsSpanningBoundary(t *testing.T) {
	// Across a 2-shard layout the query sees one global frame space:
	// candidate intervals may pad across the shard boundary, refine
	// batches split per shard via affinity, and the report stays
	// deterministic — sequential and engine agree byte for byte.
	mk := func(seed uint64) *Dataset {
		ds, err := Synthesize(SynthSpec{
			NumFrames:    20_000,
			NumInstances: 6,
			Class:        "car",
			MeanDuration: 300,
			ChunkFrames:  1000,
			Seed:         seed,
			TravelX:      300,
		}, WithPerfectDetector())
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	ss, err := NewShardedSource("pair", mk(7), mk(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := TrackSearch(ss, trackPred(), TrackOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi bool
	for _, r := range want.Results {
		if r.Start < 20_000 {
			lo = true
		} else {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatalf("expected matches in both shards, got lo=%v hi=%v over %d results", lo, hi, len(want.Results))
	}
	e := newTestEngine(t, EngineOptions{Workers: 8, FramesPerRound: 1})
	h, err := e.SubmitTrack(context.Background(), ss, trackPred(), TrackOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("engine diverged from sequential on 2 shards:\nseq: %+v\nengine: %+v", want, got)
	}
}

func TestTrackAccelerateBeatsDenseScan(t *testing.T) {
	// The acceptance bar: the accelerate/refine loop must find the same
	// tracks as a dense scan (stride 1) while charging at least 3x fewer
	// detector frames.
	ds := trackScene(t, WithPerfectDetector())
	accel, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 3, Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dense.FramesProcessed != 40_000 {
		t.Fatalf("dense scan processed %d frames, want all 40000", dense.FramesProcessed)
	}
	if !reflect.DeepEqual(normTracks(accel.Results), normTracks(dense.Results)) {
		t.Fatalf("accelerated results diverge from dense scan:\naccel: %+v\ndense: %+v",
			normTracks(accel.Results), normTracks(dense.Results))
	}
	if ratio := float64(dense.FramesProcessed) / float64(accel.FramesProcessed); ratio < 3 {
		t.Errorf("accelerate charged %d frames vs dense %d — only %.2fx savings, need >= 3x",
			accel.FramesProcessed, dense.FramesProcessed, ratio)
	}
}

func TestTrackPredicateClauses(t *testing.T) {
	// Kinematic and spatial clauses over the same scene: every object
	// travels +300 px in x, so rightward direction keeps everything,
	// leftward and implausible speeds keep nothing, and a region drawn
	// around one track's start pins that track.
	ds := trackScene(t, WithPerfectDetector())
	base, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) == 0 {
		t.Fatal("baseline found nothing")
	}

	right := trackPred()
	right.Direction = &DirectionRange{MinDeg: 315, MaxDeg: 45} // wraps through 0
	if rep, err := ds.TrackSearch(right, TrackOptions{Seed: 3}); err != nil {
		t.Fatal(err)
	} else if len(rep.Results) != len(base.Results) {
		t.Errorf("rightward arc kept %d of %d tracks", len(rep.Results), len(base.Results))
	}

	left := trackPred()
	left.Direction = &DirectionRange{MinDeg: 135, MaxDeg: 225}
	if rep, err := ds.TrackSearch(left, TrackOptions{Seed: 3}); err != nil {
		t.Fatal(err)
	} else if len(rep.Results) != 0 {
		t.Errorf("leftward arc matched %d tracks moving right", len(rep.Results))
	}

	fast := trackPred()
	fast.MinSpeed = 1000
	if rep, err := ds.TrackSearch(fast, TrackOptions{Seed: 3}); err != nil {
		t.Fatal(err)
	} else if len(rep.Results) != 0 {
		t.Errorf("MinSpeed 1000 matched %d tracks", len(rep.Results))
	}

	r0 := base.Results[0]
	cx := (r0.StartBox.X1 + r0.StartBox.X2) / 2
	cy := (r0.StartBox.Y1 + r0.StartBox.Y2) / 2
	from := trackPred()
	from.From = Region{
		{X: cx - 10, Y: cy - 10}, {X: cx + 10, Y: cy - 10},
		{X: cx + 10, Y: cy + 10}, {X: cx - 10, Y: cy + 10},
	}
	rep, err := ds.TrackSearch(from, TrackOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rep.Results {
		if r.Start == r0.Start && r.End == r0.End {
			found = true
		}
	}
	if !found {
		t.Errorf("From region around track 0's start did not recover it (%d results)", len(rep.Results))
	}
}

func TestTrackCoarseOnly(t *testing.T) {
	// CoarseOnly skips densification entirely: only grid frames are
	// charged and long tracks still surface (at grid-snapped endpoints).
	ds := trackScene(t, WithPerfectDetector())
	rep, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 3, CoarseOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefineFrames != 0 {
		t.Errorf("CoarseOnly charged %d refine frames", rep.RefineFrames)
	}
	if rep.FramesProcessed != rep.CoarseFrames {
		t.Errorf("frames %d != coarse %d", rep.FramesProcessed, rep.CoarseFrames)
	}
	if rep.FramesProcessed >= 40_000/20 {
		t.Errorf("coarse pass charged %d frames — more than the stride-25 grid", rep.FramesProcessed)
	}
	if len(rep.Results) == 0 {
		t.Error("coarse-only pass found no tracks")
	}
}

func TestTrackLimitStopsEarly(t *testing.T) {
	ds := trackScene(t, WithPerfectDetector())
	full, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 3, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("Limit 1 returned %d results", len(rep.Results))
	}
	if rep.FramesProcessed >= full.FramesProcessed {
		t.Errorf("Limit 1 charged %d frames, full run %d — no early stop", rep.FramesProcessed, full.FramesProcessed)
	}
}

func TestTrackMaxFramesBudget(t *testing.T) {
	ds := trackScene(t, WithPerfectDetector())
	rep, err := ds.TrackSearch(trackPred(), TrackOptions{Seed: 3, MaxFrames: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed != 100 {
		t.Errorf("MaxFrames 100 charged %d frames", rep.FramesProcessed)
	}
}

func TestTrackEngineEventsCarryTracks(t *testing.T) {
	// Every matched track arrives exactly once through the event stream,
	// attached to the interval-completion event that emitted it.
	ds := trackScene(t, WithPerfectDetector())
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 8})
	h, err := e.SubmitTrack(context.Background(), ds, trackPred(), TrackOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []TrackResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range h.Events() {
			if len(ev.Tracks) == 0 {
				// Track queries only emit on interval completion
				// with matches.
				streamed = append(streamed, TrackResult{TrackID: -1})
				continue
			}
			streamed = append(streamed, ev.Tracks...)
		}
	}()
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if h.Dropped() != 0 {
		t.Fatalf("%d events dropped; raise EventBuffer for this test", h.Dropped())
	}
	if !reflect.DeepEqual(streamed, rep.Results) {
		t.Errorf("event stream carried %d tracks, report has %d", len(streamed), len(rep.Results))
	}
}

func TestTrackQueriesShareMemoCache(t *testing.T) {
	// Track queries ride the same cross-query memo cache as
	// distinct-object queries: a repeat query is served mostly from
	// cache, with identical results.
	ds := trackScene(t, WithPerfectDetector())
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 8, CacheEntries: 1 << 16})
	run := func() *TrackReport {
		h, err := e.SubmitTrack(context.Background(), ds, trackPred(), TrackOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first := run()
	second := run()
	if second.CacheHits == 0 {
		t.Error("repeat query hit the cache 0 times")
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Error("cached run changed the results")
	}
	if second.DetectSeconds >= first.DetectSeconds {
		t.Errorf("cached run charged %.3fs detect vs %.3fs uncached", second.DetectSeconds, first.DetectSeconds)
	}
}

func TestTrackPredicateValidation(t *testing.T) {
	// A rejected predicate reports every bad field at once, each
	// matching the sentinel and carrying its field name.
	bad := TrackPredicate{
		From:        Region{{X: 0, Y: 0}, {X: 1, Y: 1}},
		Visits:      Region{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}, // collinear: zero area
		Crosses:     &Segment{A: Point{X: 5, Y: 5}, B: Point{X: 5, Y: 5}},
		Direction:   &DirectionRange{MinDeg: 400, MaxDeg: 45},
		MinDuration: 10,
		MaxDuration: 5,
		MinSpeed:    -1,
	}
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid predicate accepted")
	}
	if !errors.Is(err, ErrInvalidPredicate) {
		t.Errorf("error does not match ErrInvalidPredicate: %v", err)
	}
	var fe *PredicateError
	if !errors.As(err, &fe) {
		t.Fatalf("error does not unwrap to *PredicateError: %v", err)
	}
	for _, field := range []string{"Class", "From", "Visits", "Crosses", "Direction", "MinDuration", "MinSpeed"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("bundle does not report field %s: %v", field, err)
		}
	}

	if err := trackPred().Validate(); err != nil {
		t.Errorf("valid predicate rejected: %v", err)
	}

	ds := trackScene(t)
	if _, err := ds.TrackSearch(TrackPredicate{}, TrackOptions{}); !errors.Is(err, ErrInvalidPredicate) {
		t.Errorf("TrackSearch accepted an empty predicate: %v", err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 1, FramesPerRound: 1})
	if _, err := e.SubmitTrack(context.Background(), ds, TrackPredicate{}, TrackOptions{}); !errors.Is(err, ErrInvalidPredicate) {
		t.Errorf("SubmitTrack accepted an empty predicate: %v", err)
	}
}

func TestTrackOptionsValidation(t *testing.T) {
	ds := trackScene(t)
	for name, o := range map[string]TrackOptions{
		"stride":   {Stride: -1},
		"pad":      {Pad: -1},
		"limit":    {Limit: -1},
		"frames":   {MaxFrames: -1},
		"seconds":  {MaxSeconds: -1},
		"iou":      {IoUThreshold: 1.5},
		"age":      {MaxAge: -1},
		"hits":     {MinHits: -1},
		"smoother": {SmoothQ: -1},
	} {
		if _, err := ds.TrackSearch(trackPred(), o); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
	if _, err := TrackSearch(nil, trackPred(), TrackOptions{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := ds.TrackSearch(TrackPredicate{Class: "submarine", MinDuration: 50}, TrackOptions{}); err == nil {
		t.Error("unknown class accepted")
	}
}
