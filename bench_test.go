// Benchmarks regenerating every table and figure in the paper's evaluation.
// Each benchmark runs the corresponding experiment harness at a reduced but
// shape-preserving scale (see DESIGN.md and EXPERIMENTS.md); run with
//
//	go test -bench=. -benchmem
//
// and use cmd/exbench to print the full rendered tables. Custom metrics
// (savings ratios, geometric means, coverage) are reported per benchmark so
// the paper's headline numbers are visible straight from the bench output.
package exsample_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/exsample/exsample/internal/bench"

	exsample "github.com/exsample/exsample"
	"github.com/exsample/exsample/backend/httpbatch"
	"github.com/exsample/exsample/backend/router"
	"github.com/exsample/exsample/internal/perf"
)

// BenchmarkFig2 regenerates the §III-D belief-validation study (Figure 2):
// the Gamma(N1+0.1, n+1) belief against the empirical distribution of the
// true next-sample reward R(n+1).
func BenchmarkFig2(b *testing.B) {
	cfg := bench.DefaultFig2()
	cfg.NumInstances = 500
	cfg.Runs = 120
	cfg.Probes = []int64{100, 5000, 40000, 90000}
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		var cov float64
		for _, row := range res.Rows {
			cov += row.Coverage95
		}
		b.ReportMetric(cov/float64(len(res.Rows)), "coverage95")
	}
}

// BenchmarkFig3 regenerates the §IV-B simulation grid (Figure 3): savings of
// ExSample over random across skew and duration settings. Reports the
// savings ratio of the heavy-skew cell, the paper's headline simulation
// number.
func BenchmarkFig3(b *testing.B) {
	cfg := bench.DefaultFig3()
	cfg.NumInstances = 500
	cfg.NumFrames = 500_000
	cfg.NumChunks = 64
	cfg.Trials = 3
	cfg.Budget = 5_000
	cfg.Skews = []float64{0, 1.0 / 32}
	cfg.MeanDurs = []float64{100, 700}
	cfg.Targets = []int64{10, 100}
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		for _, cell := range res.Cells {
			if cell.Skew == 1.0/32 && cell.MeanDur == 700 {
				b.ReportMetric(cell.SavingsAt[1], "savings@100")
			}
		}
	}
}

// BenchmarkFig4 regenerates the §IV-C chunk-count sweep (Figure 4),
// including the Eq. IV.1 optimal-allocation dashed curves.
func BenchmarkFig4(b *testing.B) {
	cfg := bench.DefaultFig4()
	cfg.NumInstances = 500
	cfg.NumFrames = 500_000
	cfg.Trials = 3
	cfg.Budget = 5_000
	cfg.ChunkCounts = []int{1, 16, 128, 1024}
	cfg.Checkpoints = []int64{500, 2000, 5000}
	cfg.WithOptimal = true
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		// Mid-trajectory advantage of 128 chunks over 1 chunk.
		var one, many float64
		for _, s := range res.Series {
			switch s.NumChunks {
			case 1:
				one = s.Found[1]
			case 128:
				many = s.Found[1]
			}
		}
		if one > 0 {
			b.ReportMetric(many/one, "128ch-vs-1ch")
		}
	}
}

// BenchmarkTable1 regenerates Table I: proxy scan time versus ExSample's
// time to 10/50/90% recall across all 43 dataset×class queries. Reports the
// fraction of queries where 90% recall beats the scan (the paper: all).
func BenchmarkTable1(b *testing.B) {
	cfg := bench.DefaultTable1()
	cfg.Scale = 0.02
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BeatScanCount)/float64(len(res.Rows)), "beat-scan-frac")
	}
}

// BenchmarkFig5 regenerates the per-query savings study (Figure 5): time
// savings of ExSample over random at recall 0.1/0.5/0.9 on every query.
// Reports the overall geometric mean (the paper's 1.9x headline).
func BenchmarkFig5(b *testing.B) {
	cfg := bench.DefaultFig5()
	cfg.Scale = 0.02
	cfg.Trials = 3
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverallGeoMean, "geomean-savings")
		b.ReportMetric(res.Max, "max-savings")
	}
}

// BenchmarkFig6 regenerates the skew panels (Figure 6): per-chunk instance
// histograms and the skew metric S for the five representative queries.
func BenchmarkFig6(b *testing.B) {
	cfg := bench.DefaultFig6()
	cfg.Scale = 0.1
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Panels {
			if p.Dataset == "dashcam" && p.Class == "bicycle" {
				b.ReportMetric(p.S, "S-dashcam-bicycle")
			}
		}
	}
}

// BenchmarkAblation runs the design-choice ablations DESIGN.md calls out:
// Thompson vs Bayes-UCB vs greedy, random+ vs uniform within chunks, and
// prior strength.
func BenchmarkAblation(b *testing.B) {
	cfg := bench.DefaultAblation()
	cfg.NumInstances = 500
	cfg.NumFrames = 500_000
	cfg.NumChunks = 64
	cfg.Target = 150
	cfg.Budget = 5_000
	cfg.Trials = 3
	cfg.Alpha0Values = []float64{0.1, 1}
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensions measures the §VII future-work implementations
// (fusion, autochunk, home-chunk accounting) against the paper
// configuration and the baselines.
func BenchmarkExtensions(b *testing.B) {
	cfg := bench.DefaultExtensions()
	cfg.NumFrames = 200_000
	cfg.NumInstances = 200
	cfg.ChunkFrames = 200_000 / 32
	cfg.Trials = 3
	for i := 0; i < b.N; i++ {
		res, err := bench.RunExtensions(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		var paper, random float64
		for _, row := range res.Rows {
			switch row.Variant {
			case "exsample (paper)":
				paper = row.MedianSeconds
			case "random":
				random = row.MedianSeconds
			}
		}
		if paper > 0 {
			b.ReportMetric(random/paper, "savings-vs-random")
		}
	}
}

// BenchmarkSearchExSample measures the raw throughput of the end-to-end
// search pipeline (sampler + detector + discriminator) per distinct result.
func BenchmarkSearchExSample(b *testing.B) {
	ds, err := exsample.OpenProfile("dashcam", 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ds.Search(exsample.Query{Class: "traffic light", Limit: 20},
			exsample.Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkEngineThroughput measures the concurrent query engine end to
// end: N simultaneous seeded queries over one dataset, multiplexed onto a
// shared detector worker pool. Reported metrics are aggregate frames and
// distinct results per benchmark iteration, the perf trajectory future
// scaling PRs (sharding, caching, multi-backend) measure against.
func BenchmarkEngineThroughput(b *testing.B) {
	ds, err := exsample.OpenProfile("dashcam", 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, queries := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%d-queries", queries), func(b *testing.B) {
			var frames int64
			var found int
			for i := 0; i < b.N; i++ {
				eng, err := exsample.NewEngine(exsample.EngineOptions{
					Workers:        4,
					FramesPerRound: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				handles := make([]*exsample.QueryHandle, queries)
				for qi := range handles {
					handles[qi], err = eng.Submit(context.Background(), ds,
						exsample.Query{Class: "traffic light", Limit: 10},
						exsample.Options{Seed: uint64(i*queries + qi + 1)})
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, h := range handles {
					rep, err := h.Wait()
					if err != nil {
						b.Fatal(err)
					}
					frames += rep.FramesProcessed
					found += len(rep.Results)
				}
				eng.Close()
			}
			b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
			b.ReportMetric(float64(found)/float64(b.N), "results/op")
		})
	}
}

// BenchmarkSamplerDecision isolates the cost of one Thompson-sampling
// decision across 128 chunks — the per-frame scheduling overhead that must
// stay negligible next to detector inference.
func BenchmarkSamplerDecision(b *testing.B) {
	ds, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    1 << 20,
		NumInstances: 100,
		MeanDuration: 100,
		ChunkFrames:  1 << 13, // 128 chunks
		Seed:         9,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Drive the internal sampler through the public API with a detector
	// that is effectively free, so decision cost dominates.
	rep, err := ds.Search(exsample.Query{Class: "object", Limit: 1},
		exsample.Options{MaxFrames: 1, Seed: 1})
	if err != nil || rep.FramesProcessed != 1 {
		b.Fatalf("warmup failed: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := ds.Search(exsample.Query{Class: "object", Limit: 1000000},
			exsample.Options{MaxFrames: 256, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedThroughput measures the shard fan-out path: the same
// total repository split over 1, 2 or 4 shards, searched by 4 concurrent
// engine queries. The decision loop is identical across arms, so the spread
// isolates the cost of global-space remapping and per-shard routing.
func BenchmarkShardedThroughput(b *testing.B) {
	const totalFrames = 160_000
	for _, nShards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%d-shards", nShards), func(b *testing.B) {
			shards := make([]*exsample.Dataset, nShards)
			for i := range shards {
				ds, err := exsample.Synthesize(exsample.SynthSpec{
					NumFrames:    totalFrames / int64(nShards),
					NumInstances: 200 / nShards,
					Class:        "car",
					MeanDuration: 120,
					SkewFraction: 1.0 / 8,
					ChunkFrames:  2000,
					Seed:         uint64(40 + i),
				})
				if err != nil {
					b.Fatal(err)
				}
				shards[i] = ds
			}
			src, err := exsample.NewShardedSource("bench", shards...)
			if err != nil {
				b.Fatal(err)
			}
			var frames int64
			for i := 0; i < b.N; i++ {
				eng, err := exsample.NewEngine(exsample.EngineOptions{
					Workers:        4,
					FramesPerRound: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				handles := make([]*exsample.QueryHandle, 4)
				for qi := range handles {
					handles[qi], err = eng.Submit(context.Background(), src,
						exsample.Query{Class: "car", Limit: 10},
						exsample.Options{Seed: uint64(i*4 + qi + 1)})
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, h := range handles {
					rep, err := h.Wait()
					if err != nil {
						b.Fatal(err)
					}
					frames += rep.FramesProcessed
				}
				eng.Close()
			}
			b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkCacheHitRate measures the detector memo cache: 8 same-seeded
// queries run back to back on one engine, so all but the first hit the
// cache for every frame. Reported metrics are the aggregate hit rate and
// the charged-seconds saving over the uncached equivalent.
func BenchmarkCacheHitRate(b *testing.B) {
	ds, err := exsample.OpenProfile("dashcam", 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	var hitRate, saved float64
	for i := 0; i < b.N; i++ {
		eng, err := exsample.NewEngine(exsample.EngineOptions{
			Workers:      4,
			CacheEntries: 1 << 17,
		})
		if err != nil {
			b.Fatal(err)
		}
		var cold, warm float64
		for qi := 0; qi < 8; qi++ {
			h, err := eng.Submit(context.Background(), ds,
				exsample.Query{Class: "traffic light", Limit: 10},
				exsample.Options{Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := h.Wait()
			if err != nil {
				b.Fatal(err)
			}
			if qi == 0 {
				cold = rep.TotalSeconds()
			} else {
				warm += rep.TotalSeconds()
			}
		}
		hitRate += eng.CacheStats().HitRate()
		saved += 1 - warm/(7*cold)
		eng.Close()
	}
	b.ReportMetric(hitRate/float64(b.N), "hitrate")
	b.ReportMetric(saved/float64(b.N), "charged-s-saved")
}

// BenchmarkAdaptiveRounds measures feedback-controlled round sizing
// against a slow fixed-overhead backend (2ms per DetectBatch call + 20µs
// per frame — the HTTP-round-trip-plus-GPU shape): the static arm pays the
// call overhead every FramesPerRound frames, while the adaptive arm grows
// its quota toward the backend's MaxBatch and amortizes it. Both arms push
// the same 256-frame budget per query; the frames/s spread is the win.
func BenchmarkAdaptiveRounds(b *testing.B) {
	spec := exsample.SynthSpec{
		NumFrames:    200_000,
		NumInstances: 300,
		Class:        "car",
		MeanDuration: 150,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  4000,
		Seed:         21,
	}
	inner, err := exsample.Synthesize(spec)
	if err != nil {
		b.Fatal(err)
	}
	slow := perf.SlowBackend(inner.Backend(), 2*time.Millisecond, 20*time.Microsecond, 64)
	ds, err := exsample.Synthesize(spec, exsample.WithBackend(slow))
	if err != nil {
		b.Fatal(err)
	}
	for _, arm := range []struct {
		name     string
		adaptive bool
	}{
		{"static", false},
		{"adaptive", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var frames int64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				eng, err := exsample.NewEngine(exsample.EngineOptions{
					Workers:        2,
					FramesPerRound: 2,
					AdaptiveRounds: arm.adaptive,
				})
				if err != nil {
					b.Fatal(err)
				}
				handles := make([]*exsample.QueryHandle, 2)
				for qi := range handles {
					handles[qi], err = eng.Submit(context.Background(), ds,
						exsample.Query{Class: "car", Limit: 1_000_000},
						exsample.Options{Seed: uint64(i*2 + qi + 1), MaxFrames: 256})
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, h := range handles {
					rep, err := h.Wait()
					if err != nil {
						b.Fatal(err)
					}
					frames += rep.FramesProcessed
				}
				eng.Close()
			}
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(frames)/secs, "frames/s")
			}
		})
	}
}

// BenchmarkHeteroFleet measures the capacity-aware router over a
// heterogeneous fleet — one fast replica (500µs + 60µs/frame, MaxBatch 256,
// weight 4) and three slower, smaller-batch ones (500µs + 80µs/frame,
// MaxBatch 64, weight 3) — in its two modes. single routes each batch
// whole to one replica, so every round is serialized at the fleet's min
// MaxBatch on whichever replica wins the weighted pick; scatter splits the
// round across all healthy replicas proportional to capacity and the round
// costs one slice-time. Both arms push the same 2048-frame budget; the
// frames/s spread is scatter-gather's win (see hetero_fleet_* in the perf
// suite for the gated counterpart).
func BenchmarkHeteroFleet(b *testing.B) {
	spec := exsample.SynthSpec{
		NumFrames:    200_000,
		NumInstances: 40,
		Class:        "car",
		MeanDuration: 60,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  10_000,
		Seed:         27,
	}
	for _, arm := range []struct {
		name    string
		scatter bool
	}{
		{"single", false},
		{"scatter", true},
	} {
		specs := make([]router.ReplicaSpec, 4)
		for i := range specs {
			twin, err := exsample.Synthesize(spec)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				specs[i] = router.ReplicaSpec{
					Backend: perf.SlowBackend(twin.Backend(), 500*time.Microsecond, 60*time.Microsecond, 256),
					Name:    "fast",
					Weight:  4,
				}
			} else {
				specs[i] = router.ReplicaSpec{
					Backend: perf.SlowBackend(twin.Backend(), 500*time.Microsecond, 80*time.Microsecond, 64),
					Name:    fmt.Sprintf("slow-%d", i),
					Weight:  3,
				}
			}
		}
		rtr, err := router.New(router.Config{Specs: specs, Scatter: arm.scatter})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := exsample.Synthesize(spec, exsample.WithBackend(rtr))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(arm.name, func(b *testing.B) {
			var frames int64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				eng, err := exsample.NewEngine(exsample.EngineOptions{
					Workers:        2,
					FramesPerRound: 256,
				})
				if err != nil {
					b.Fatal(err)
				}
				h, err := eng.Submit(context.Background(), ds,
					exsample.Query{Class: "car", Limit: 1_000_000},
					exsample.Options{Seed: uint64(i + 1), MaxFrames: 2048})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := h.Wait()
				if err != nil {
					b.Fatal(err)
				}
				frames += rep.FramesProcessed
				eng.Close()
			}
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(frames)/secs, "frames/s")
			}
		})
		rtr.Close()
	}
}

// BenchmarkStreamIngest measures the live-ingest path end to end: one
// standing query over a segment ring while a writer appends segments at the
// consumption rate (each append issued at the previous park boundary —
// the steady state of a camera that produces video no faster than the
// engine drains it). Half the appended segments are dead. The arms differ
// only in the motion gate: gate-off samples the dead segments in full,
// gate-on pays a strided probe pass and never charges the detector for
// them, so the alerts/s and frames/op spread is the gate's value.
func BenchmarkStreamIngest(b *testing.B) {
	const framesEach = 1000
	const appends = 6
	mk := func(seed uint64, dead bool) *exsample.Dataset {
		spec := exsample.SynthSpec{
			NumFrames:    framesEach,
			NumInstances: 40,
			Class:        "car",
			MeanDuration: 100,
			SkewFraction: 1.0 / 8,
			ChunkFrames:  framesEach / 8,
			Seed:         seed,
		}
		if dead {
			spec.NumInstances = 1
			spec.MeanDuration = 1
		}
		ds, err := exsample.Synthesize(spec)
		if err != nil {
			b.Fatal(err)
		}
		return ds
	}
	for _, arm := range []struct {
		name      string
		threshold float64
	}{
		{"gate-off", 0},
		{"gate-on", 0.12},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var alerts, frames int64
			var gateSeconds float64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				s, err := exsample.NewStreamSource(
					exsample.StreamConfig{Retention: 4, MotionThreshold: arm.threshold},
					mk(uint64(7000+i), false))
				if err != nil {
					b.Fatal(err)
				}
				eng, err := exsample.NewEngine(exsample.EngineOptions{
					Workers:        4,
					FramesPerRound: 4,
					EventBuffer:    1 << 15,
				})
				if err != nil {
					b.Fatal(err)
				}
				h, err := eng.SubmitStanding(context.Background(), s,
					exsample.Query{Class: "car"}, exsample.Options{Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				waitPark := func() {
					for !h.Parked() {
						time.Sleep(100 * time.Microsecond)
					}
				}
				waitPark()
				for a := 1; a <= appends; a++ {
					if _, err := s.Append(mk(uint64(7000+i*100+a), a%2 == 0)); err != nil {
						b.Fatal(err)
					}
					waitPark()
				}
				h.Cancel()
				rep, err := h.Wait()
				if err != nil && !errors.Is(err, context.Canceled) {
					b.Fatal(err)
				}
				alerts += int64(len(rep.Results))
				frames += rep.FramesProcessed
				gateSeconds += s.StreamStats().GateSeconds
				eng.Close()
			}
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(alerts)/secs, "alerts/s")
				b.ReportMetric(float64(frames)/secs, "frames/s")
			}
			b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
			b.ReportMetric(gateSeconds/float64(b.N), "gate-s/op")
		})
	}
}

// BenchmarkGlobalBudget measures what the scheduler-level marginal-value
// budget buys on a mixed fleet: 8 concurrent queries — 4 hot (a dense
// repository, high expected results per frame) and 4 cold (a near-empty
// one, random order, marginal value decaying toward zero) — run under
// fair-share and under a global budget, each arm stopped at the same total
// detector-call budget so the cost side is held equal. Fair-share spends
// half the detector on the cold queries; the budget arm pins them to the
// floor and steers the surplus to the hot queries, so the spread in
// results/kdetect (aggregate distinct results per thousand detector
// calls) is pure scheduling win — the PR's ≥1.5x acceptance ratio.
func BenchmarkGlobalBudget(b *testing.B) {
	// The hot repository is tuned so the fleet stays far from exhausting it
	// at the detector budget below — results scale linearly with the frames
	// a query is granted, so the metric reads scheduling, not saturation.
	hotSpec := exsample.SynthSpec{
		NumFrames:    200_000,
		NumInstances: 5000,
		Class:        "car",
		MeanDuration: 4,
		SkewFraction: 1.0 / 4,
		ChunkFrames:  4000,
		Seed:         31,
	}
	coldSpec := hotSpec
	coldSpec.NumInstances = 2
	coldSpec.MeanDuration = 10
	coldSpec.Seed = 32
	dsHot, err := exsample.Synthesize(hotSpec)
	if err != nil {
		b.Fatal(err)
	}
	dsCold, err := exsample.Synthesize(coldSpec)
	if err != nil {
		b.Fatal(err)
	}
	const detectBudget = 6000
	for _, arm := range []struct {
		name string
		opts exsample.EngineOptions
	}{
		{"fair-share", exsample.EngineOptions{Workers: 4, FramesPerRound: 16}},
		{"global-budget", exsample.EngineOptions{Workers: 4, FramesPerRound: 16,
			GlobalBudget: 40, FloorQuota: 1}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var found, detects int64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				eng, err := exsample.NewEngine(arm.opts)
				if err != nil {
					b.Fatal(err)
				}
				var handles []*exsample.QueryHandle
				for qi := 0; qi < 4; qi++ {
					h, err := eng.Submit(context.Background(), dsHot,
						exsample.Query{Class: "car", Limit: 1 << 30},
						exsample.Options{Seed: uint64(i*8 + qi + 1)})
					if err != nil {
						b.Fatal(err)
					}
					handles = append(handles, h)
				}
				for qi := 0; qi < 4; qi++ {
					h, err := eng.Submit(context.Background(), dsCold,
						exsample.Query{Class: "car", Limit: 1 << 30},
						exsample.Options{Strategy: exsample.StrategyRandom,
							Seed: uint64(i*8 + qi + 5)})
					if err != nil {
						b.Fatal(err)
					}
					handles = append(handles, h)
				}
				for eng.Stats().DetectCalls < detectBudget {
					time.Sleep(100 * time.Microsecond)
				}
				for _, h := range handles {
					h.Cancel()
				}
				for _, h := range handles {
					rep, err := h.Wait()
					if err != nil && !errors.Is(err, context.Canceled) {
						b.Fatal(err)
					}
					found += int64(len(rep.Results))
				}
				detects += eng.Stats().DetectCalls
				eng.Close()
			}
			b.ReportMetric(float64(found)/float64(b.N), "results/op")
			b.ReportMetric(float64(detects)/float64(b.N), "detects/op")
			if detects > 0 {
				b.ReportMetric(float64(found)/float64(detects)*1000, "results/kdetect")
			}
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(found)/secs, "results/s")
			}
		})
	}
}

// BenchmarkBackendBatch measures the httpbatch wire path end to end — a
// loopback server wrapping the simulated detector, an httpbatch client on
// the query side — at batch sizes 1, 8 and 32. The reported frames/s is
// raw wire+inference throughput (frames pushed through DetectBatch per
// wall second); growing it with the batch size is the whole point of the
// batched Backend contract.
func BenchmarkBackendBatch(b *testing.B) {
	ds, err := exsample.OpenProfile("dashcam", 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(httpbatch.Handler(ds.Backend()))
	defer srv.Close()
	class := ds.Classes()[0]
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			client, err := httpbatch.New(httpbatch.Config{Endpoint: srv.URL, MaxBatch: batch})
			if err != nil {
				b.Fatal(err)
			}
			frames := make([]int64, batch)
			start := time.Now()
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := range frames {
					frames[k] = (int64(i)*int64(batch) + int64(k)) % ds.NumFrames()
				}
				if _, err := client.DetectBatch(context.Background(), class, frames); err != nil {
					b.Fatal(err)
				}
				total += int64(batch)
			}
			b.StopTimer()
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(total)/secs, "frames/s")
			}
		})
	}
}
