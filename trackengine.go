package exsample

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/engine"
	"github.com/exsample/exsample/internal/sizer"
)

// SubmitTrack registers a track-predicate query against a source and
// returns its handle; the query starts immediately and is scheduled
// against every other in-flight query — distinct-object and track alike —
// through the same rounds, worker pool, affinity grouping, memo cache and
// (when enabled) global marginal-value budget. The context cancels the
// query, not the engine.
//
// The query runs the accelerate/refine loop documented on TrackSearch, and
// for the same predicate and options produces the same Results. Events
// stream one QueryEvent per completed candidate interval that matched
// tracks, with the matches in QueryEvent.Tracks; the final TrackReport
// comes from TrackHandle.Wait.
//
// Elastic sources are sampled under the topology active at submit: a track
// query localizes intervals over a frozen frame population, so shards
// attached later are not folded into a running track query (submit another
// one), and intervals never cross into shards that were draining.
func (e *Engine) SubmitTrack(ctx context.Context, src Source, p TrackPredicate, opts TrackOptions) (*TrackHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	run, err := newTrackRun(src, p, opts, e.cacheCfg())
	if err != nil {
		return nil, err
	}
	h := &TrackHandle{
		run:    run,
		ctx:    ctx,
		events: make(chan QueryEvent, e.opts.EventBuffer),
	}
	tq := &trackEngineQuery{run: run, ctx: ctx, handle: h}
	var iq engine.Query = tq
	if e.opts.AdaptiveRounds {
		fleet, err := sizer.NewFleet(sizer.Config{
			Min: e.opts.FramesPerRound,
			Max: run.src.backendMaxBatch(),
		}, &e.quota)
		if err != nil {
			return nil, err
		}
		tq.sizer = fleet
		sq := &trackSizedQuery{trackEngineQuery: tq}
		if run.src.breakerOpens != nil {
			sq.breakerOpens = run.src.breakerOpens
			sq.lastOpens = sq.breakerOpens()
		}
		sq.scope.seed(run.src, fleet)
		iq = sq
	}
	inner, err := e.inner.Submit(iq)
	if err != nil {
		return nil, err
	}
	h.inner = inner
	return h, nil
}

// TrackHandle tracks one submitted track query.
type TrackHandle struct {
	run     *trackRun
	ctx     context.Context
	inner   *engine.Handle
	events  chan QueryEvent
	dropped atomic.Int64
}

// Events streams one QueryEvent per candidate interval that completed with
// matching tracks (QueryEvent.Tracks carries them). The channel closes
// when the query finishes; consumers that fall behind the EventBuffer lose
// intermediate events (see Dropped) but never stall the engine.
func (h *TrackHandle) Events() <-chan QueryEvent { return h.events }

// Dropped returns how many events were discarded because the Events
// consumer fell behind.
func (h *TrackHandle) Dropped() int64 { return h.dropped.Load() }

// Cancel stops the query at the next round boundary. Wait returns
// context.Canceled with the partial report.
func (h *TrackHandle) Cancel() { h.inner.Cancel() }

// BudgetCounters reports the query's cumulative global-budget accounting;
// both are 0 when the engine runs without a GlobalBudget.
func (h *TrackHandle) BudgetCounters() (granted, requested int64) {
	return h.inner.BudgetCounters()
}

// Wait blocks until the query finishes and returns its report — complete
// on success, partial (but internally consistent) on cancellation or
// failure.
func (h *TrackHandle) Wait() (*TrackReport, error) {
	if err := h.inner.Wait(); err != nil {
		return h.run.rep, err
	}
	switch h.inner.Reason() {
	case engine.ReasonCancelled:
		if err := h.ctx.Err(); err != nil {
			return h.run.rep, err
		}
		return h.run.rep, context.Canceled
	case engine.ReasonDone:
		if !h.run.done() {
			if err := h.ctx.Err(); err != nil {
				return h.run.rep, err
			}
		}
	}
	return h.run.rep, h.run.err
}

// emit publishes one interval-completion event without ever blocking the
// scheduler.
func (h *TrackHandle) emit(frame int64, chunk int, tracks []TrackResult) {
	ev := QueryEvent{
		Frame:           frame,
		Chunk:           chunk,
		Tracks:          tracks,
		FramesProcessed: h.run.rep.FramesProcessed,
		Found:           len(h.run.rep.Results),
		Seconds:         h.run.rep.TotalSeconds(),
	}
	select {
	case h.events <- ev:
	default:
		h.dropped.Add(1)
	}
}

// trackEngineQuery adapts a trackRun to the internal scheduler — the exact
// shape of engineQuery with the plan in place of the sampler. Propose,
// Apply, Done and Finalize run on the scheduler goroutine; DetectBatch
// runs on pool workers, several at once when a round spans multiple
// affinity groups, hence the shared scratchPool.
type trackEngineQuery struct {
	run     *trackRun
	ctx     context.Context
	handle  *TrackHandle
	pending []core.Pick
	frames  []int64
	scr     scratchPool
	sizer   *sizer.Fleet
}

func (q *trackEngineQuery) Done() bool {
	return q.ctx.Err() != nil || q.run.err != nil || q.run.done()
}

// MarginalValue implements the scheduler's Valued contract on the same
// expected-new-results-per-frame scale as distinct-object queries: the
// coarse sampler's best arm during phase 1, the remaining hit density
// during refine. Track and distinct queries are therefore directly
// comparable under one GlobalBudget.
func (q *trackEngineQuery) MarginalValue() float64 {
	return q.run.marginalValue()
}

func (q *trackEngineQuery) Propose(max int) []int64 {
	q.scr.reclaim()
	q.pending = q.pending[:0]
	q.frames = q.frames[:0]
	for len(q.frames) < max {
		p, ok := q.run.next()
		if !ok {
			break
		}
		q.pending = append(q.pending, p)
		q.frames = append(q.frames, p.Frame)
	}
	// next may have assembled intervals at the coarse→refine transition
	// (dense and CoarseOnly plans finish entirely there); publish them
	// before the engine can observe an empty proposal and finalize.
	q.flushEmits()
	return q.frames
}

// flushEmits publishes queued interval completions to the event stream.
func (q *trackEngineQuery) flushEmits() {
	for _, em := range q.run.takeEmits() {
		q.handle.emit(em.frame, em.chunk, em.tracks)
	}
}

// DetectBatch runs one affinity group's frames through the run's batched
// detector (memo cache first, misses as one backend call) under the
// query's context. Results are pointers into a recycled scratch, exactly
// like the distinct-object path.
func (q *trackEngineQuery) DetectBatch(frames []int64) ([]any, error) {
	s := q.scr.get()
	results, err := q.run.detectBatchInto(q.ctx, frames, s)
	if err != nil {
		return nil, err
	}
	if q.sizer != nil {
		misses := len(frames)
		if q.run.memo != nil {
			misses = len(s.missIdx)
		}
		q.scr.note(q.AffinityKey(frames[0]), misses)
	}
	if cap(s.out) < len(results) {
		s.out = make([]any, 0, cap(results))
	}
	s.out = s.out[:0]
	for i := range results {
		s.out = append(s.out, &results[i])
	}
	return s.out, nil
}

// AffinityKey implements engine.Affine with the same (source, shard) key
// distinct-object queries use, so a refine interval spanning a shard
// boundary splits into one inference batch per shard.
func (q *trackEngineQuery) AffinityKey(frame int64) uint64 {
	src := q.run.src
	if src.shardOf == nil {
		return src.id << 16
	}
	return src.id<<16 | uint64(src.shardOf(frame))&0xffff
}

func (q *trackEngineQuery) Apply(frame int64, dets any) (bool, error) {
	p := q.pending[0]
	q.pending = q.pending[1:]
	if p.Frame != frame {
		return false, fmt.Errorf("exsample: engine applied frame %d out of order (expected %d)", frame, p.Frame)
	}
	if err := q.run.apply(p, *dets.(*frameResult)); err != nil {
		return false, err
	}
	q.flushEmits()
	return q.run.done(), nil
}

func (q *trackEngineQuery) Finalize() {
	close(q.handle.events)
}

// trackSizedQuery opts a trackEngineQuery into adaptive round sizing
// (engine.Sized), mirroring sizedQuery: breaker-open events shrink the
// controller before the next propose, and observed batch latency is
// charged against the frames the backend actually served.
type trackSizedQuery struct {
	*trackEngineQuery
	breakerOpens func() int64
	lastOpens    int64
	// scope attributes capacity-loss edges to (shard, replica), exactly
	// as sizedQuery does.
	scope capacityScope
}

// RoundQuota implements engine.Sized.
func (q *trackSizedQuery) RoundQuota(base int) int {
	if q.breakerOpens != nil {
		if n := q.breakerOpens(); n > q.lastOpens {
			q.lastOpens = n
			q.scope.loss(q.run.src, q.sizer)
		}
	}
	return q.sizer.Quota()
}

// ObserveBatch implements engine.Sized.
func (q *trackSizedQuery) ObserveBatch(key uint64, frames int, seconds float64) {
	if misses := q.scr.take(key); misses > 0 {
		q.sizer.Observe(key, misses, seconds)
	}
}
