package exsample

import (
	"context"
	"reflect"
	"testing"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/backend/router"
)

// TestScatterReportsByteIdentical: routing a query's batches through a
// heterogeneous 4-replica router — scatter off AND scatter on — leaves
// the seeded report byte-identical to the plain routerless run. Replicas
// are twins, so however a batch is sliced and reassembled, every frame's
// detections (and charged costs) are the same; scatter must keep it that
// way, and scatter-off must remain byte-for-byte the pre-scatter router.
func TestScatterReportsByteIdentical(t *testing.T) {
	const frames = 4000
	const seed = 700
	q := Query{Class: "car", Limit: 1 << 30}
	opts := Options{Seed: 41, MaxFrames: 400}

	runEngine := func(ds *Dataset) *Report {
		t.Helper()
		e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 32})
		h, err := e.Submit(context.Background(), ds, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for range h.Events() {
		}
		rep, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	baseline := runEngine(elasticShard(t, frames, seed))

	build := func(scatter bool) (*Dataset, *router.Router) {
		t.Helper()
		specs := make([]router.ReplicaSpec, 4)
		for i := range specs {
			twin := elasticShard(t, frames, seed)
			specs[i] = router.ReplicaSpec{Backend: twin.Backend()}
			if i == 0 {
				specs[i].Weight = 4
			} else {
				specs[i].Weight = 1
			}
		}
		r, err := router.New(router.Config{Specs: specs, Scatter: scatter})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Close)
		var be backend.Backend = r
		return elasticShard(t, frames, seed, WithBackend(be)), r
	}

	dsOff, _ := build(false)
	off := runEngine(dsOff)
	if !reflect.DeepEqual(baseline, off) {
		t.Fatalf("scatter-off router diverged from the routerless baseline (frames %d vs %d, results %d vs %d)",
			off.FramesProcessed, baseline.FramesProcessed, len(off.Results), len(baseline.Results))
	}

	dsOn, rOn := build(true)
	on := runEngine(dsOn)
	if !reflect.DeepEqual(baseline, on) {
		t.Fatalf("scatter-gather became visible in the report (frames %d vs %d, results %d vs %d, seconds %v vs %v)",
			on.FramesProcessed, baseline.FramesProcessed, len(on.Results), len(baseline.Results),
			on.TotalSeconds(), baseline.TotalSeconds())
	}
	if rOn.Scatters() == 0 {
		t.Fatal("scatter-on run never scattered a batch — the identity above proved nothing")
	}
	var served int
	for _, st := range rOn.Stats() {
		if st.Slices > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("only %d replicas served slices, want the batch spread across >= 2", served)
	}
}

// TestScatterAdaptiveRoundsComplete: adaptive round sizing over a
// scattering router — per-replica quota controllers seeded from the
// fleet's weights — runs to completion and reports the same results as
// the routerless adaptive run.
func TestScatterAdaptiveRoundsComplete(t *testing.T) {
	const frames = 4000
	const seed = 701
	// Limit-bounded (10 of the 40 synthesized instances, no frame cap):
	// both runs stop at the limit, so the result count is schedule-proof
	// even though adaptive quota trajectories are clock-dependent.
	q := Query{Class: "car", Limit: 10}
	opts := Options{Seed: 42}

	runEngine := func(ds *Dataset) *Report {
		t.Helper()
		e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 32, AdaptiveRounds: true})
		h, err := e.Submit(context.Background(), ds, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for range h.Events() {
		}
		rep, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	specs := make([]router.ReplicaSpec, 4)
	for i := range specs {
		twin := elasticShard(t, frames, seed)
		specs[i] = router.ReplicaSpec{Backend: twin.Backend(), Weight: []float64{4, 1, 1, 1}[i]}
	}
	r, err := router.New(router.Config{Specs: specs, Scatter: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	rep := runEngine(elasticShard(t, frames, seed, WithBackend(r)))
	if rep.FramesProcessed == 0 {
		t.Fatal("adaptive scatter run processed no frames")
	}
	plain := runEngine(elasticShard(t, frames, seed))
	if len(rep.Results) != len(plain.Results) {
		t.Fatalf("adaptive scatter found %d results, routerless adaptive found %d", len(rep.Results), len(plain.Results))
	}
}
