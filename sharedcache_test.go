package exsample

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"github.com/exsample/exsample/cachestore"
	"github.com/exsample/exsample/cachestore/httpcache"
)

// Tests for the shared result tier: remote L2 via httpcache, content
// addressing, engine-level singleflight and cache-aware sampling.

// loopbackCache spins up an httpcache server over a Local store and returns
// a connected client plus the backing store.
func loopbackCache(t *testing.T) (*httpcache.Client, *cachestore.Local) {
	t.Helper()
	store := cachestore.NewLocal(1 << 16)
	srv := httptest.NewServer(httpcache.Handler(store))
	t.Cleanup(srv.Close)
	c, err := httpcache.New(httpcache.Config{Endpoint: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	return c, store
}

func TestRemoteTierByteIdenticalResults(t *testing.T) {
	// With the remote tier enabled, a seeded engine query must return
	// byte-identical Results to plain Search — the tier changes charged
	// costs and sharing, never behavior.
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 20}
	opts := Options{Seed: 101}

	want, err := ds.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := loopbackCache(t)
	e := newTestEngine(t, EngineOptions{Workers: 2, RemoteCache: remote})
	h, err := e.Submit(context.Background(), ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, rep.Results) {
		t.Fatal("remote-tier run diverged from Search's Results")
	}
	if rep.CacheMisses != rep.FramesProcessed || rep.CacheHits != 0 || rep.RemoteCacheHits != 0 {
		t.Fatalf("cold tier run: hits=%d remote=%d misses=%d over %d frames",
			rep.CacheHits, rep.RemoteCacheHits, rep.CacheMisses, rep.FramesProcessed)
	}
	st := e.TierStats()
	if st.Fills != rep.FramesProcessed {
		t.Fatalf("tier filled %d frames for %d processed", st.Fills, rep.FramesProcessed)
	}
	if st.L2RoundTrips == 0 || st.L2RTTSeconds <= 0 {
		t.Fatalf("no remote traffic recorded: %+v", st)
	}
}

func TestSecondUserServedFromRemoteTier(t *testing.T) {
	// The headline path: one process pays for a query's inference, a second
	// process — fresh dataset object, fresh engine, same video content,
	// same shared cache server — runs the same query without a single
	// detector-charged frame, byte-identically.
	spec := SynthSpec{
		NumFrames:    200_000,
		NumInstances: 300,
		Class:        "car",
		MeanDuration: 150,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  4000,
		Seed:         21,
	}
	q := Query{Class: "car", Limit: 20}
	opts := Options{Seed: 77}
	remote, _ := loopbackCache(t)

	ds1, err := Synthesize(spec, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	e1 := newTestEngine(t, EngineOptions{Workers: 2, RemoteCache: remote})
	h1, err := e1.Submit(context.Background(), ds1, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := h1.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Second user: everything process-local is rebuilt from scratch.
	ds2, err := Synthesize(spec, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	e2 := newTestEngine(t, EngineOptions{Workers: 2, RemoteCache: remote})
	h2, err := e2.Submit(context.Background(), ds2, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := h2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1.Results, rep2.Results) {
		t.Fatal("second user's Results diverged from the first's")
	}
	if rep2.CacheMisses != 0 {
		t.Fatalf("second user missed %d frames, want 0", rep2.CacheMisses)
	}
	if rep2.RemoteCacheHits != rep2.FramesProcessed {
		t.Fatalf("second user: %d remote hits over %d frames, want all remote",
			rep2.RemoteCacheHits, rep2.FramesProcessed)
	}
	if rep2.DetectSeconds != 0 {
		t.Fatalf("second user charged %v detector seconds", rep2.DetectSeconds)
	}
	if st := e2.TierStats(); st.Fills != 0 {
		t.Fatalf("second user paid %d detector fills", st.Fills)
	}

	// Third user warms ahead of the query: every hit is then local.
	ds3, err := Synthesize(spec, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	e3 := newTestEngine(t, EngineOptions{Workers: 2, RemoteCache: remote})
	warmed, err := e3.Warm(context.Background(), ds3, "car", 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(warmed) != rep1.FramesProcessed {
		t.Fatalf("Warm copied %d entries, first run processed %d frames", warmed, rep1.FramesProcessed)
	}
	h3, err := e3.Submit(context.Background(), ds3, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := h3.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1.Results, rep3.Results) {
		t.Fatal("warmed user's Results diverged")
	}
	if rep3.CacheMisses != 0 || rep3.RemoteCacheHits != 0 || rep3.CacheHits != rep3.FramesProcessed {
		t.Fatalf("warmed user: hits=%d remote=%d misses=%d, want all local hits",
			rep3.CacheHits, rep3.RemoteCacheHits, rep3.CacheMisses)
	}
}

func TestContentIDStableAcrossReopens(t *testing.T) {
	spec := SynthSpec{
		NumFrames:    50_000,
		NumInstances: 50,
		Class:        "car",
		MeanDuration: 100,
		ChunkFrames:  2000,
		Seed:         9,
	}
	a, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.qs.contentID != b.qs.contentID {
		t.Fatal("re-opening the same spec changed the content id")
	}
	if a.qs.id == b.qs.id {
		t.Fatal("two opens share a process-local source id")
	}
	spec.Seed = 10
	c, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.qs.contentID == a.qs.contentID {
		t.Fatal("different generation seeds share a content id")
	}
	// A noise-model option changes detector output, so it must change the
	// content id too.
	d, err := Synthesize(SynthSpec{
		NumFrames:    50_000,
		NumInstances: 50,
		Class:        "car",
		MeanDuration: 100,
		ChunkFrames:  2000,
		Seed:         9,
	}, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	if d.qs.contentID == a.qs.contentID {
		t.Fatal("different noise models share a content id")
	}
	// Sharded composition is content-addressed from its members and name.
	mk := func() *ShardedSource {
		shards := shardDatasets(t, 2, 20_000)
		ss, err := NewShardedSource("fleet", shards...)
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	if mk().qs.contentID != mk().qs.contentID {
		t.Fatal("identical sharded compositions differ in content id")
	}
}

func TestEngineSingleflightSharedFrames(t *testing.T) {
	// Two identical concurrent queries on a cold shared tier must cost
	// exactly one detector call per distinct frame: whichever query reaches
	// a frame second either merges into the first's in-flight fill
	// (singleflight) or hits the L1 write-through — never the backend.
	shards := shardDatasets(t, 2, 20_000, WithPerfectDetector())
	ss, err := NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := loopbackCache(t)
	e := newTestEngine(t, EngineOptions{Workers: 4, RemoteCache: remote})
	q := Query{Class: "car", Limit: 20}
	opts := Options{Seed: 5}

	var handles [2]*QueryHandle
	for i := range handles {
		h, err := e.Submit(context.Background(), ss, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(h *QueryHandle) {
			defer wg.Done()
			for range h.Events() {
			}
		}(h)
	}
	reps := make([]*Report, len(handles))
	for i, h := range handles {
		rep, err := h.Wait()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		reps[i] = rep
	}
	wg.Wait()
	if !reflect.DeepEqual(reps[0].Results, reps[1].Results) {
		t.Fatal("identical concurrent queries diverged")
	}
	// Same seed → same distinct frame set; the backends must have served it
	// exactly once.
	var detects int64
	for _, st := range ss.ShardStats() {
		detects += st.DetectCalls
	}
	if detects != reps[0].FramesProcessed {
		t.Fatalf("backends served %d frames for %d distinct sampled frames (duplicate inference under concurrency)",
			detects, reps[0].FramesProcessed)
	}
	if st := e.TierStats(); st.Fills != reps[0].FramesProcessed {
		t.Fatalf("tier filled %d frames, want %d", st.Fills, reps[0].FramesProcessed)
	}
}

func TestCacheAwareColdIdentity(t *testing.T) {
	// With an empty cache every chunk's cached fraction is 0, ties resolve
	// to the higher score — exactly the unaware rule — so a cold
	// cache-aware run is still byte-identical to Search.
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 20}
	opts := Options{Seed: 31}
	want, err := ds.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 1, CacheEntries: 1 << 16, CacheAware: true})
	h, err := e.Submit(context.Background(), ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, rep.Results) {
		t.Fatal("cold cache-aware run diverged from Search")
	}
}

func TestCacheAwarePrefersCachedChunks(t *testing.T) {
	// Two engines start from identical warm L1 state (same remote tier,
	// same Warm call); the cache-aware one must convert at least as many of
	// its frames into cache hits as the unaware one.
	spec := SynthSpec{
		NumFrames:    200_000,
		NumInstances: 300,
		Class:        "car",
		MeanDuration: 150,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  4000,
		Seed:         21,
	}
	remote, _ := loopbackCache(t)

	// Seed the shared tier with one query's worth of frames.
	seedDS, err := Synthesize(spec, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	e0 := newTestEngine(t, EngineOptions{Workers: 2, RemoteCache: remote})
	h0, err := e0.Submit(context.Background(), seedDS, Query{Class: "car", Limit: 30}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h0.Wait(); err != nil {
		t.Fatal(err)
	}

	run := func(aware bool) *Report {
		ds, err := Synthesize(spec, WithPerfectDetector())
		if err != nil {
			t.Fatal(err)
		}
		e := newTestEngine(t, EngineOptions{Workers: 1, RemoteCache: remote, CacheAware: aware})
		if _, err := e.Warm(context.Background(), ds, "car", 0); err != nil {
			t.Fatal(err)
		}
		h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 30}, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run(false)
	on := run(true)
	if on.CacheHits < off.CacheHits {
		t.Fatalf("cache-aware run hit %d frames, unaware hit %d — awareness lost hits",
			on.CacheHits, off.CacheHits)
	}
	if len(on.Results) == 0 {
		t.Fatal("cache-aware run found nothing")
	}
}

func TestWarmRequiresRemote(t *testing.T) {
	ds := smallDataset(t)
	e := newTestEngine(t, EngineOptions{CacheEntries: 1 << 10})
	if _, err := e.Warm(context.Background(), ds, "car", 0); err == nil {
		t.Fatal("Warm without a RemoteCache succeeded")
	}
}

func TestCacheAwareNeedsCache(t *testing.T) {
	if _, err := NewEngine(EngineOptions{CacheAware: true}); err == nil {
		t.Fatal("CacheAware without any cache accepted")
	}
}
