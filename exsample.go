// Package exsample is a Go implementation of ExSample (Moll et al., ICDE
// 2022): adaptive sampling for distinct-object limit queries over large,
// un-indexed video repositories.
//
// A distinct-object query asks for a number of different objects of a class
// ("find 20 traffic lights in my dashcam archive"), where repeated
// detections of the same physical object count once. Running an object
// detector on every frame is prohibitively expensive; ExSample instead
// splits the repository into temporal chunks, estimates per chunk how likely
// the next sampled frame is to reveal a new object (R̂ = N1/n), and uses
// Thompson sampling over Gamma(N1+α0, n+β0) beliefs to decide where to
// sample next. Chunks that keep producing new objects get more samples;
// chunks that are exhausted or empty are visited less.
//
// # Quick start
//
//	ds, err := exsample.OpenProfile("dashcam", 0.1, 42)
//	if err != nil { ... }
//	report, err := ds.Search(
//		exsample.Query{Class: "traffic light", Limit: 20},
//		exsample.Options{Strategy: exsample.StrategyExSample},
//	)
//	for _, r := range report.Results {
//		fmt.Printf("object %d at frame %d\n", r.ObjectID, r.Frame)
//	}
//
// # Concurrent queries
//
// Engine serves many simultaneous queries — across one or more open
// Datasets — over one bounded detector worker pool, scheduling rounds
// fair-share across queries while Thompson sampling still decides the
// frame within each query:
//
//	eng, err := exsample.NewEngine(exsample.EngineOptions{Workers: 4})
//	if err != nil { ... }
//	defer eng.Close()
//	h, err := eng.Submit(ctx, ds,
//		exsample.Query{Class: "traffic light", Limit: 20},
//		exsample.Options{Seed: 42},
//	)
//	for ev := range h.Events() { // streamed incremental results
//		for _, r := range ev.New {
//			fmt.Printf("object %d at frame %d\n", r.ObjectID, r.Frame)
//		}
//	}
//	report, err := h.Wait()
//
// Each query gets a handle with context cancellation, an event stream and
// a final Report. A seeded query through the Engine is byte-identical to
// Dataset.Search with the same options: the pool parallelizes only the
// stateless detector, never the sampler or discriminator bookkeeping.
// Session exposes the same step loop for single-query incremental use.
//
// # Sources, sharding and caching
//
// Search, Session and Engine all run against a Source — the seam between
// the query pipeline and a repository. A Source is either a single local
// Dataset or a ShardedSource composing N datasets into one global frame
// space:
//
//	shards := []*exsample.Dataset{day1, day2, day3}
//	archive, err := exsample.NewShardedSource("archive", shards...)
//	if err != nil { ... }
//	rep, err := archive.Search(
//		exsample.Query{Class: "truck", Limit: 40},
//		exsample.Options{Seed: 7},
//	)
//
// Shard chunk ids are remapped into one sampler space, so a query's
// Thompson sampler treats every shard's chunks as arms of the same bandit
// while detector calls route back to the owning shard (the Engine groups
// each scheduling round's inference batch by shard). A seeded query over a
// 1-shard source is byte-identical to Dataset.Search on the underlying
// dataset.
//
// EngineOptions.CacheEntries enables a bounded cross-query memo cache of
// detector outputs keyed by (source, class, frame): overlapping concurrent
// queries stop paying for duplicate inference, with hits charged
// decode-only cost and Results unchanged from an uncached run.
//
// # Pluggable detector backends
//
// The detector is pluggable: the backend package defines the public
// batched, context-aware Backend contract, WithBackend attaches an
// implementation to a Dataset at open time (per shard in a ShardedSource,
// so each shard can route to its own endpoint), and backend/httpbatch
// ships a production-shaped remote HTTP batch client:
//
//	client, err := httpbatch.New(httpbatch.Config{Endpoint: "http://gpu-7:8080/detect"})
//	if err != nil { ... }
//	ds, err := exsample.OpenProfile("dashcam", 0.1, 42, exsample.WithBackend(client))
//
// The engine dispatches each scheduling round as one DetectBatch call per
// shard-affinity group — the access pattern a real GPU fleet wants — and
// charges the cost the backend reports. The simulated detector is just the
// default Backend behind an adapter; Dataset.Backend exposes it, and
// httpbatch.Handler serves any Backend over the wire protocol.
//
// The package ships six synthetic dataset profiles mirroring the paper's
// evaluation datasets, a simulated object detector and SORT-style
// discriminator (real video and DNN inference are out of scope — the
// sampler treats both as black boxes, exactly as the paper does), the
// paper's baselines (sequential, random, random+, and a BlazeIt-style proxy
// with its mandatory full-scan phase), and benchmark harnesses regenerating
// every table and figure in the paper's evaluation.
package exsample

import (
	"fmt"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/internal/core"
)

// Box is an axis-aligned bounding box in pixel coordinates; (X1, Y1) is the
// top-left corner. It is an alias of the backend package's stable wire
// type, so detections cross the public Backend API without conversion.
type Box = backend.Box

// Detection is one object detector output on a frame — an alias of the
// backend package's stable wire type (see backend.Detection for the field
// contract, including TruthID's -1-when-unknown convention).
type Detection = backend.Detection

// Detector is the black-box object detector contract: given a frame index it
// returns detections, and it charges a fixed cost per invocation. Samplers
// never look inside — this mirrors the paper's treatment of the detector
// (§II-A).
type Detector interface {
	Detect(frame int64) []Detection
	// CostSeconds is the per-frame inference cost charged to the query.
	CostSeconds() float64
}

// Strategy selects the frame-sampling method for a search.
type Strategy int

const (
	// StrategyExSample is the paper's chunk-based adaptive sampler.
	StrategyExSample Strategy = iota
	// StrategyRandom samples frames uniformly without replacement.
	StrategyRandom
	// StrategyRandomPlus stratifies random samples to avoid early temporal
	// clustering (§III-F).
	StrategyRandomPlus
	// StrategySequential scans frames in order (the naive baseline).
	StrategySequential
	// StrategyProxy scores every frame with a cheap proxy model first
	// (paying a full sequential scan), then runs the detector on frames in
	// descending score order — the BlazeIt-style baseline.
	StrategyProxy
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyExSample:
		return "exsample"
	case StrategyRandom:
		return "random"
	case StrategyRandomPlus:
		return "random+"
	case StrategySequential:
		return "sequential"
	case StrategyProxy:
		return "proxy"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Policy selects how ExSample turns chunk beliefs into decisions.
type Policy int

const (
	// PolicyThompson draws from each chunk's Gamma belief (the paper's
	// method).
	PolicyThompson Policy = iota
	// PolicyBayesUCB scores chunks by an upper belief quantile (§III-C).
	PolicyBayesUCB
	// PolicyGreedy uses the raw point estimate; prone to getting stuck,
	// provided for ablations.
	PolicyGreedy
)

func (p Policy) toCore() core.Policy {
	switch p {
	case PolicyBayesUCB:
		return core.BayesUCB
	case PolicyGreedy:
		return core.Greedy
	default:
		return core.Thompson
	}
}

// Query describes what to search for and when to stop.
type Query struct {
	// Class is the object class to search for; it must exist in the
	// dataset.
	Class string
	// Limit stops the search after this many distinct objects (0 = no
	// limit).
	Limit int
	// RecallTarget stops the search once this fraction of the ground-truth
	// distinct instances has been found (0 = ignore). Only synthetic
	// datasets know their ground truth.
	RecallTarget float64
}

// Validate reports an error for a malformed query.
func (q Query) Validate() error {
	if q.Class == "" {
		return fmt.Errorf("exsample: query needs a class")
	}
	if q.Limit < 0 {
		return fmt.Errorf("exsample: negative limit %d", q.Limit)
	}
	if q.RecallTarget < 0 || q.RecallTarget > 1 {
		return fmt.Errorf("exsample: recall target %v outside [0,1]", q.RecallTarget)
	}
	if q.Limit == 0 && q.RecallTarget == 0 {
		return fmt.Errorf("exsample: query needs a limit or a recall target")
	}
	return nil
}

// Options tunes the search. The zero value runs ExSample with the paper's
// defaults (Thompson sampling, α0=0.1, β0=1, random+ within chunks, the
// dataset's native chunking).
type Options struct {
	// Strategy selects the sampling method (default StrategyExSample).
	Strategy Strategy
	// Policy selects the ExSample decision rule (default PolicyThompson).
	Policy Policy
	// NumChunks overrides the dataset's native chunk layout with an even
	// split into this many chunks (0 = native layout).
	NumChunks int
	// AutoChunk implements the paper's §VII "automating chunking" future
	// work: a short pilot phase samples a coarse chunking, then the
	// repository is re-chunked — hot regions finely, cold regions coarsely
	// — and the search continues with the adaptive layout. Mutually
	// exclusive with NumChunks; only valid with StrategyExSample.
	AutoChunk bool
	// Alpha0 and Beta0 override the belief prior (0 = paper defaults).
	Alpha0, Beta0 float64
	// UniformWithinChunk replaces the default random+ within-chunk order
	// with plain uniform sampling (ablation knob).
	UniformWithinChunk bool
	// BatchSize processes frames in batches of this size with deferred
	// state updates, emulating GPU batch inference (§III-F); 0 or 1 is
	// unbatched.
	BatchSize int
	// Parallelism fans detector calls within a batch out over this many
	// goroutines (the detector is stateless and safe for concurrent use);
	// 0 or 1 keeps inference sequential. Charged cost is unchanged — this
	// models batch-parallel GPU inference, not extra hardware. Requires
	// BatchSize > 1.
	Parallelism int
	// Seed drives all randomness in the search.
	Seed uint64
	// MaxFrames caps the number of frames processed (0 = repository size).
	MaxFrames int64
	// MaxSeconds caps the charged query time (0 = no cap).
	MaxSeconds float64
	// ProxyQuality is the proxy score fidelity in [0,1] for StrategyProxy
	// (default 1: a perfect proxy, the strongest baseline).
	ProxyQuality float64
	// ProxyDupRadius enables the proxy duplicate-avoidance heuristic:
	// frames within this distance of an already-processed frame are
	// deferred (0 = off).
	ProxyDupRadius int64
	// ProxyTrainPositives models BlazeIt's training requirement (§II-B):
	// before scoring, the proxy must collect this many frames containing
	// the target class by random sampling with the full detector. If the
	// positives are not found within ProxyTrainBudget frames, the proxy
	// falls back to plain random sampling, as BlazeIt does. 0 skips the
	// training phase (an idealized pre-trained proxy).
	ProxyTrainPositives int
	// ProxyTrainBudget caps the training phase's detector frames
	// (0 = 2% of the repository).
	ProxyTrainBudget int64
	// TrackerCoverage is the fraction of an object's true visible extent
	// the discriminator's tracker recovers (default 1, the paper's
	// idealized SORT-style tracker).
	TrackerCoverage float64
	// IoUThreshold is the discriminator match threshold (default 0.5).
	IoUThreshold float64
	// FuseProxyWithinChunk implements the paper's §VII future-work fusion:
	// ExSample still chooses chunks by Thompson sampling, but frames inside
	// a chunk are processed in descending proxy-score order, and the
	// scoring cost is charged per chunk on first visit instead of as a
	// full-dataset scan. ProxyQuality controls the score fidelity. Only
	// valid with StrategyExSample.
	FuseProxyWithinChunk bool
	// HomeChunkAccounting applies the technical report's adjustment for
	// instances spanning chunks: the -1 of a second sighting is charged to
	// the chunk where the object was first discovered rather than to the
	// chunk being sampled. Only affects StrategyExSample.
	HomeChunkAccounting bool
}

// Validate reports an error for out-of-range options.
func (o Options) Validate() error {
	switch o.Strategy {
	case StrategyExSample, StrategyRandom, StrategyRandomPlus, StrategySequential, StrategyProxy:
	default:
		return fmt.Errorf("exsample: unknown strategy %d", int(o.Strategy))
	}
	switch o.Policy {
	case PolicyThompson, PolicyBayesUCB, PolicyGreedy:
	default:
		return fmt.Errorf("exsample: unknown policy %d", int(o.Policy))
	}
	if o.NumChunks < 0 {
		return fmt.Errorf("exsample: negative NumChunks %d", o.NumChunks)
	}
	if o.Alpha0 < 0 || o.Beta0 < 0 {
		return fmt.Errorf("exsample: negative prior")
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("exsample: negative BatchSize %d", o.BatchSize)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("exsample: negative Parallelism %d", o.Parallelism)
	}
	if o.Parallelism > 1 && o.BatchSize <= 1 {
		return fmt.Errorf("exsample: Parallelism %d requires BatchSize > 1", o.Parallelism)
	}
	if o.MaxFrames < 0 {
		return fmt.Errorf("exsample: negative MaxFrames %d", o.MaxFrames)
	}
	if o.MaxSeconds < 0 {
		return fmt.Errorf("exsample: negative MaxSeconds %v", o.MaxSeconds)
	}
	if o.ProxyQuality < 0 || o.ProxyQuality > 1 {
		return fmt.Errorf("exsample: ProxyQuality %v outside [0,1]", o.ProxyQuality)
	}
	if o.ProxyDupRadius < 0 {
		return fmt.Errorf("exsample: negative ProxyDupRadius %d", o.ProxyDupRadius)
	}
	if o.ProxyTrainPositives < 0 {
		return fmt.Errorf("exsample: negative ProxyTrainPositives %d", o.ProxyTrainPositives)
	}
	if o.ProxyTrainBudget < 0 {
		return fmt.Errorf("exsample: negative ProxyTrainBudget %d", o.ProxyTrainBudget)
	}
	if o.TrackerCoverage < 0 || o.TrackerCoverage > 1 {
		return fmt.Errorf("exsample: TrackerCoverage %v outside [0,1]", o.TrackerCoverage)
	}
	if o.IoUThreshold < 0 || o.IoUThreshold > 1 {
		return fmt.Errorf("exsample: IoUThreshold %v outside [0,1]", o.IoUThreshold)
	}
	if o.FuseProxyWithinChunk && o.Strategy != StrategyExSample {
		return fmt.Errorf("exsample: FuseProxyWithinChunk requires StrategyExSample")
	}
	if o.FuseProxyWithinChunk && o.UniformWithinChunk {
		return fmt.Errorf("exsample: FuseProxyWithinChunk conflicts with UniformWithinChunk")
	}
	if o.HomeChunkAccounting && o.Strategy != StrategyExSample {
		return fmt.Errorf("exsample: HomeChunkAccounting requires StrategyExSample")
	}
	if o.AutoChunk {
		if o.Strategy != StrategyExSample {
			return fmt.Errorf("exsample: AutoChunk requires StrategyExSample")
		}
		if o.NumChunks > 0 {
			return fmt.Errorf("exsample: AutoChunk conflicts with NumChunks")
		}
		if o.BatchSize > 1 {
			return fmt.Errorf("exsample: AutoChunk does not support batching")
		}
		if o.HomeChunkAccounting {
			// Chunk identities change when the layout is rebuilt, so the
			// home-chunk bookkeeping cannot survive the re-chunk.
			return fmt.Errorf("exsample: AutoChunk conflicts with HomeChunkAccounting")
		}
	}
	return nil
}

// Result is one distinct object found by a search.
type Result struct {
	// ObjectID is the discriminator-assigned distinct-object id in
	// discovery order.
	ObjectID int
	// Frame is where the object was first detected.
	Frame int64
	// Class is the object class.
	Class string
	// Box is the first detection's bounding box.
	Box Box
	// Score is the first detection's confidence.
	Score float64
}

// Report summarizes a finished search.
type Report struct {
	// Strategy that produced the report.
	Strategy Strategy
	// Results lists the distinct objects found, in discovery order.
	Results []Result
	// FramesProcessed counts detector invocations.
	FramesProcessed int64
	// DetectSeconds is the charged detector time.
	DetectSeconds float64
	// DecodeSeconds is the charged random-read+decode time.
	DecodeSeconds float64
	// ScanSeconds is the proxy scoring pre-pass time (zero for other
	// strategies).
	ScanSeconds float64
	// Recall is the fraction of ground-truth distinct instances found
	// (synthetic datasets only).
	Recall float64
	// CacheHits and CacheMisses count memo-cache outcomes for the query's
	// frames when an Engine-level detector cache is enabled (both zero
	// otherwise). Hits are charged decode-only cost.
	CacheHits, CacheMisses int64
	// RemoteCacheHits counts the subset of CacheHits served by the shared
	// remote tier (EngineOptions.RemoteCache) rather than the local cache —
	// frames some other process (or an earlier run of this one) paid the
	// detector for. Zero without a remote tier.
	RemoteCacheHits int64
	// CurveSamples/CurveSeconds/CurveFound trace discovery progress: after
	// CurveSamples[i] frames (CurveSeconds[i] charged seconds, including
	// any scan), CurveFound[i] distinct true instances had been found.
	CurveSamples []int64
	CurveSeconds []float64
	CurveFound   []int
}

// TotalSeconds is the full charged query time.
func (r *Report) TotalSeconds() float64 {
	return r.DetectSeconds + r.DecodeSeconds + r.ScanSeconds
}

// SecondsToRecall returns the charged time at which the search first reached
// recall target r, and whether it did.
func (r *Report) SecondsToRecall(target float64) (float64, bool) {
	if len(r.CurveFound) == 0 || target <= 0 {
		return 0, false
	}
	// Recall is measured against the dataset's ground truth; CurveFound
	// holds absolute counts, so derive the needed count from the final
	// recall/count pair.
	total := r.groundTruthTotal()
	if total == 0 {
		return 0, false
	}
	need := int(target*float64(total) + 0.9999)
	if need < 1 {
		need = 1
	}
	for i, f := range r.CurveFound {
		if f >= need {
			return r.CurveSeconds[i], true
		}
	}
	return 0, false
}

func (r *Report) groundTruthTotal() int {
	if r.Recall <= 0 || len(r.CurveFound) == 0 {
		return 0
	}
	final := r.CurveFound[len(r.CurveFound)-1]
	return int(float64(final)/r.Recall + 0.5)
}
