package exsample_test

import (
	"fmt"
	"log"

	exsample "github.com/exsample/exsample"
)

// The basic flow: open a dataset, run a distinct-object limit query, read
// the results.
func Example() {
	ds, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    100_000,
		NumInstances: 50,
		Class:        "traffic light",
		MeanDuration: 200,
		SkewFraction: 0.25,
		Seed:         1,
	}, exsample.WithPerfectDetector())
	if err != nil {
		log.Fatal(err)
	}
	report, err := ds.Search(
		exsample.Query{Class: "traffic light", Limit: 5},
		exsample.Options{Seed: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	// A single frame can reveal more than one new object, so the result
	// count can slightly exceed the limit.
	fmt.Printf("found at least 5: %v\n", len(report.Results) >= 5)
	// Output:
	// found at least 5: true
}

// Comparing strategies on the same query: ExSample needs no scan, the proxy
// baseline pays one before its first result.
func ExampleDataset_Search_strategies() {
	ds, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    100_000,
		NumInstances: 50,
		Class:        "car",
		MeanDuration: 200,
		SkewFraction: 0.25,
		Seed:         3,
	}, exsample.WithPerfectDetector())
	if err != nil {
		log.Fatal(err)
	}
	q := exsample.Query{Class: "car", Limit: 5}
	ex, err := ds.Search(q, exsample.Options{Strategy: exsample.StrategyExSample, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	px, err := ds.Search(q, exsample.Options{Strategy: exsample.StrategyProxy, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exsample scan: %.0fs, proxy scan: %.0fs\n", ex.ScanSeconds, px.ScanSeconds)
	// Output:
	// exsample scan: 0s, proxy scan: 1000s
}

// Driving a search incrementally with a Session.
func ExampleDataset_NewSession() {
	ds, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    100_000,
		NumInstances: 50,
		Class:        "bike",
		MeanDuration: 200,
		SkewFraction: 0.25,
		Seed:         5,
	}, exsample.WithPerfectDetector())
	if err != nil {
		log.Fatal(err)
	}
	sess, err := ds.NewSession(exsample.Query{Class: "bike", Limit: 3}, exsample.Options{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	for !sess.Done() {
		if _, ok, err := sess.Step(); err != nil || !ok {
			if err != nil {
				log.Fatal(err)
			}
			break
		}
	}
	fmt.Printf("%d results, processed frames: %v\n", len(sess.Results()), sess.Frames() > 0)
	// Output:
	// 3 results, processed frames: true
}
