package exsample

import "testing"

func TestParallelBatchedSearch(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", Limit: 30},
		Options{BatchSize: 16, Parallelism: 8, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 30 {
		t.Fatalf("parallel batched search found %d results", len(rep.Results))
	}
}

func TestParallelMatchesSequentialExactly(t *testing.T) {
	// The detector is deterministic and the discriminator consumes
	// detections in pick order, so parallel inference must not change the
	// outcome at all.
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 25}
	seq, err := ds.Search(q, Options{BatchSize: 16, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ds.Search(q, Options{BatchSize: 16, Parallelism: 8, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	if seq.FramesProcessed != par.FramesProcessed || len(seq.Results) != len(par.Results) {
		t.Fatalf("parallel diverged: frames %d vs %d, results %d vs %d",
			seq.FramesProcessed, par.FramesProcessed, len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		if seq.Results[i] != par.Results[i] {
			t.Fatalf("result %d differs between sequential and parallel", i)
		}
	}
}

func TestParallelismValidation(t *testing.T) {
	if err := (Options{Parallelism: -1}).Validate(); err == nil {
		t.Error("negative parallelism accepted")
	}
	if err := (Options{Parallelism: 4}).Validate(); err == nil {
		t.Error("parallelism without batching accepted")
	}
	if err := (Options{Parallelism: 4, BatchSize: 8}).Validate(); err != nil {
		t.Errorf("valid parallel options rejected: %v", err)
	}
}
