package httpbatch

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/exsample/exsample/backend"
)

// fakeBackend is a deterministic in-memory backend: frame f has one
// detection when f is even, none otherwise.
type fakeBackend struct {
	cost  float64
	calls atomic.Int64
}

func (f *fakeBackend) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	f.calls.Add(1)
	out := make([][]backend.Detection, len(frames))
	for i, frame := range frames {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if frame%2 == 0 {
			out[i] = []backend.Detection{{
				Frame:   frame,
				Class:   class,
				Box:     backend.Box{X1: 1, Y1: 2, X2: 3, Y2: 4},
				Score:   0.9,
				TruthID: int(frame / 2),
			}}
		}
	}
	return out, nil
}

func (f *fakeBackend) Hints() backend.Hints {
	return backend.Hints{CostSeconds: f.cost, MaxBatch: 16}
}

func newTestPair(t *testing.T, b backend.Backend, cfg Config) (*Client, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(Handler(b))
	t.Cleanup(srv.Close)
	cfg.Endpoint = srv.URL
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func TestRoundTrip(t *testing.T) {
	fb := &fakeBackend{cost: 0.05}
	c, _ := newTestPair(t, fb, Config{})

	frames := []int64{0, 1, 2, 3, 10}
	dets, costs, err := c.DetectBatchCost(context.Background(), "car", frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != len(frames) {
		t.Fatalf("got %d results, want %d", len(dets), len(frames))
	}
	// Server reports the exact nominal per-frame cost for a
	// non-BatchCoster backend — no divide-by-batch-size loss.
	if len(costs) != len(frames) {
		t.Fatalf("got %d costs, want %d", len(costs), len(frames))
	}
	var cost float64
	for _, per := range costs {
		if per != 0.05 {
			t.Fatalf("per-frame cost = %v, want exactly 0.05", per)
		}
		cost += per
	}
	for i, frame := range frames {
		if frame%2 == 0 {
			if len(dets[i]) != 1 {
				t.Fatalf("frame %d: %d detections, want 1", frame, len(dets[i]))
			}
			d := dets[i][0]
			if d.Frame != frame || d.Class != "car" || d.Score != 0.9 || d.TruthID != int(frame/2) {
				t.Fatalf("frame %d: wrong detection %+v", frame, d)
			}
			if d.Box != (backend.Box{X1: 1, Y1: 2, X2: 3, Y2: 4}) {
				t.Fatalf("frame %d: wrong box %+v", frame, d.Box)
			}
		} else if len(dets[i]) != 0 {
			t.Fatalf("frame %d: %d detections, want 0", frame, len(dets[i]))
		}
	}
	st := c.Stats()
	if st.Batches != 1 || st.Frames != int64(len(frames)) || st.Requests != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ServerSeconds != cost {
		t.Fatalf("ServerSeconds = %v, want %v", st.ServerSeconds, cost)
	}
}

func TestEmptyBatchSkipsWire(t *testing.T) {
	fb := &fakeBackend{cost: 0.05}
	c, _ := newTestPair(t, fb, Config{})
	dets, err := c.DetectBatch(context.Background(), "car", nil)
	if err != nil || dets != nil {
		t.Fatalf("empty batch: %v, %v", dets, err)
	}
	if fb.calls.Load() != 0 {
		t.Fatal("empty batch reached the backend")
	}
}

func TestRetriesOn5xxThenSucceeds(t *testing.T) {
	fb := &fakeBackend{cost: 0.05}
	var failures atomic.Int64
	failures.Store(2)
	inner := Handler(fb)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dets, err := c.DetectBatch(context.Background(), "car", []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 || len(dets[0]) != 1 {
		t.Fatalf("unexpected results %+v", dets)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Requests != 3 {
		t.Fatalf("stats = %+v, want 2 retries over 3 requests", st)
	}
}

func TestRetriesAreBounded(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DetectBatch(context.Background(), "car", []int64{1}); err == nil {
		t.Fatal("persistent 5xx did not fail the batch")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("made %d attempts, want 3 (1 + 2 retries)", got)
	}
	st := c.Stats()
	if st.Requests != 3 || st.Retries != 2 || st.Batches != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientErrorsAreNotRetried(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "no such class", http.StatusBadRequest)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, Retries: 5, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.DetectBatch(context.Background(), "dragon", []int64{1})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err = %v, want a 400", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("made %d attempts, want 1 (4xx never retries)", got)
	}
}

func TestContextCancellationAbortsInFlightBatch(t *testing.T) {
	inFlight := make(chan struct{})
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)
	c, err := New(Config{Endpoint: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.DetectBatch(ctx, "car", []int64{1})
		done <- err
	}()
	<-inFlight
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled batch did not return")
	}
}

func TestPerEndpointConcurrencyCap(t *testing.T) {
	var running, peak atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		running.Add(-1)
		Handler(&fakeBackend{cost: 0.01}).ServeHTTP(w, r)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.DetectBatch(context.Background(), "car", []int64{int64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("observed %d concurrent requests with MaxConcurrent=2", got)
	}
}

func TestHandlerRejectsMalformedRequests(t *testing.T) {
	srv := httptest.NewServer(Handler(&fakeBackend{cost: 0.01}))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL, "application/json", strings.NewReader(`{"class":"","frames":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request = %d, want 400", resp.StatusCode)
	}
}

func TestRetriesMinusOneDisablesRetries(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, Retries: -1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DetectBatch(context.Background(), "car", []int64{1}); err == nil {
		t.Fatal("5xx did not fail the batch")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("made %d attempts with Retries: -1, want exactly 1", got)
	}
}

func TestHandlerEnforcesMaxBatch(t *testing.T) {
	// fakeBackend hints MaxBatch 16; a 17-frame batch must be refused
	// rather than run unsplit.
	fb := &fakeBackend{cost: 0.01}
	srv := httptest.NewServer(Handler(fb))
	defer srv.Close()
	frames := make([]byte, 0, 64)
	frames = append(frames, `{"class":"car","frames":[`...)
	for i := 0; i < 17; i++ {
		if i > 0 {
			frames = append(frames, ',')
		}
		frames = append(frames, byte('0'+i%10))
	}
	frames = append(frames, "]}"...)
	resp, err := http.Post(srv.URL, "application/json", bytes.NewReader(frames))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", resp.StatusCode)
	}
	if fb.calls.Load() != 0 {
		t.Fatal("oversized batch reached the backend")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing endpoint accepted")
	}
	if _, err := New(Config{Endpoint: "http://x", Retries: -2}); err == nil {
		t.Fatal("Retries below -1 accepted")
	}
	if _, err := New(Config{Endpoint: "http://x", MaxBatch: -1}); err == nil {
		t.Fatal("negative MaxBatch accepted")
	}
}

// TestDeadlineDuringBackoffIsTerminal pins the no-wasted-final-attempt
// rule: when the caller's deadline cannot outlive the retry backoff, the
// client returns context.DeadlineExceeded immediately instead of sleeping
// into a doomed attempt — the failing endpoint sees no further requests.
func TestDeadlineDuringBackoffIsTerminal(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, Retries: 3, RetryBackoff: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.DetectBatch(ctx, "car", []int64{1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("endpoint saw %d requests, want 1 (no attempt after a doomed backoff)", got)
	}
	if elapsed >= 150*time.Millisecond {
		t.Fatalf("client slept %v toward the backoff despite the shorter deadline", elapsed)
	}
	st := c.Stats()
	if st.Requests != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want 1 request, 0 retries", st)
	}
}

// TestCancelDuringBackoffIsTerminal verifies a cancellation that fires
// mid-backoff returns promptly with the context error and issues no
// further attempts.
func TestCancelDuringBackoffIsTerminal(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, Retries: 3, RetryBackoff: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.DetectBatch(ctx, "car", []int64{1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("endpoint saw %d requests, want 1", got)
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("cancellation took %v to take effect mid-backoff", elapsed)
	}
}
