// Package httpbatch is a production-shaped remote detector backend: a
// Client that speaks a small JSON batch protocol to an HTTP endpoint, and a
// Handler that serves any backend.Backend over the same protocol (the
// loopback pairing used by tests, examples and exserve's -backend http
// mode).
//
// # Wire protocol
//
// One POST per batch. Request body:
//
//	{"class": "car", "frames": [17, 42, 1999]}
//
// Response body (HTTP 200):
//
//	{
//	  "results": [
//	    [{"frame": 17, "class": "car", "box": [x1, y1, x2, y2],
//	      "score": 0.93, "truth_id": 7}],
//	    [],
//	    [{"frame": 1999, "class": "car", "box": [x1, y1, x2, y2],
//	      "score": 0.88, "truth_id": -1}]
//	  ],
//	  "cost_seconds": 0.15
//	}
//
// results is aligned with the request's frames (results[i] holds frame
// frames[i]'s detections; an empty array is a valid "nothing found").
// The response may also carry per-frame charged costs:
//
//	"frame_costs": [0.05, 0.05, 0.05]
//
// When frame_costs is present (aligned with frames), the client charges
// those exact seconds per frame — including legitimate zeros. Otherwise
// cost_seconds, the server-reported inference latency for the whole batch,
// is spread evenly across the batch's frames; and when neither is
// reported the client falls back to its nominal Config.CostSeconds. Either
// way charged query time tracks what the remote fleet actually spent.
// truth_id is -1 when the server does not know ground-truth identity —
// the value real detectors report.
//
// Errors: a non-200 status fails the batch. 5xx responses and transport
// errors are retried up to Config.Retries times with a short backoff; 4xx
// responses are not (the request itself is malformed — retrying cannot
// help). Every attempt carries Config.Timeout and honors the caller's
// context, so a query cancellation aborts an in-flight batch immediately.
package httpbatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/exsample/exsample/backend"
)

// request is the wire form of one batch request.
type request struct {
	Class  string  `json:"class"`
	Frames []int64 `json:"frames"`
}

// wireDetection is the wire form of one detection.
type wireDetection struct {
	Frame   int64      `json:"frame"`
	Class   string     `json:"class"`
	Box     [4]float64 `json:"box"`
	Score   float64    `json:"score"`
	TruthID int        `json:"truth_id"`
}

// response is the wire form of one batch response.
type response struct {
	Results [][]wireDetection `json:"results"`
	// FrameCosts, when present, is the exact charged seconds per frame.
	FrameCosts []float64 `json:"frame_costs,omitempty"`
	// CostSeconds is the batch-level inference latency, used (spread
	// evenly) when FrameCosts is absent.
	CostSeconds float64 `json:"cost_seconds"`
}

// Config parameterizes a Client. Endpoint is required; everything else has
// a production-shaped default.
type Config struct {
	// Endpoint is the batch URL (e.g. http://gpu-7:8080/detect).
	Endpoint string
	// HTTPClient overrides the transport (default: a fresh http.Client;
	// the per-attempt timeout always comes from Timeout).
	HTTPClient *http.Client
	// Timeout bounds each HTTP attempt (default 30s).
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried on transport
	// errors and 5xx responses (default 2; 4xx never retries). Use -1 to
	// disable retries entirely — e.g. for a non-idempotent endpoint that
	// must never see the same batch twice.
	Retries int
	// RetryBackoff is the pause before each retry (default 100ms). Kept
	// short and fixed: the bounded worker pool above us is the real
	// pacing mechanism.
	RetryBackoff time.Duration
	// MaxConcurrent caps in-flight requests to the endpoint across every
	// query sharing this client (default 4) — the per-endpoint admission
	// control a shared GPU service needs.
	MaxConcurrent int
	// MaxBatch is the batch-size hint advertised to the pipeline: larger
	// batches are split before they reach the wire (default 32).
	MaxBatch int
	// CostSeconds is the nominal per-frame cost charged when the server
	// does not report cost_seconds (default 1/20 s, the paper's measured
	// 20 fps detector).
	CostSeconds float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	switch {
	case c.Retries == 0:
		c.Retries = 2
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.CostSeconds == 0 {
		c.CostSeconds = 1.0 / 20.0
	}
	return c
}

// Stats is a snapshot of a client's traffic counters.
type Stats struct {
	// Batches counts successful DetectBatch calls; Frames the frames they
	// covered. Frames/Batches is the realized wire batch size.
	Batches, Frames int64
	// Requests counts HTTP attempts (retries included); Retries the
	// attempts beyond the first.
	Requests, Retries int64
	// ServerSeconds sums the server-reported cost_seconds across
	// successful batches — the charged inference time.
	ServerSeconds float64
}

// bufPool recycles the JSON buffers whose lifetimes are provably
// synchronous: the client's response reads and the handler's response
// encodes. (Client request bodies are NOT pooled — see DetectBatchCost.)
// Shared across clients and handlers: the buffers are opaque scratch, and
// a process typically runs many endpoint clients (one per shard replica)
// with identical traffic shapes.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// reqPool recycles the Handler's decoded request structs; encoding/json
// reuses the Frames slice capacity when decoding into a non-nil slice, so
// a warm handler stops allocating a frames array per request.
var reqPool = sync.Pool{New: func() any { return new(request) }}

// Client is a remote HTTP batch detector backend. It implements both
// backend.Backend and backend.BatchCoster, so the pipeline charges the
// server-reported latency of every batch. Client is safe for concurrent
// use by any number of queries.
type Client struct {
	cfg Config
	sem chan struct{}

	mu    sync.Mutex
	stats Stats
}

// Compile-time interface checks.
var (
	_ backend.Backend     = (*Client)(nil)
	_ backend.BatchCoster = (*Client)(nil)
)

// New builds a client for the given endpoint.
func New(cfg Config) (*Client, error) {
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("httpbatch: Config.Endpoint is required")
	}
	if cfg.Retries < -1 || cfg.MaxConcurrent < 0 || cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("httpbatch: negative MaxConcurrent or MaxBatch, or Retries below -1")
	}
	if cfg.CostSeconds < 0 || cfg.Timeout < 0 || cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("httpbatch: negative CostSeconds, Timeout or RetryBackoff")
	}
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrent)}, nil
}

// Hints implements backend.Backend.
func (c *Client) Hints() backend.Hints {
	return backend.Hints{CostSeconds: c.cfg.CostSeconds, MaxBatch: c.cfg.MaxBatch}
}

// Stats returns a snapshot of the client's traffic counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// DetectBatch implements backend.Backend.
func (c *Client) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	dets, _, err := c.DetectBatchCost(ctx, class, frames)
	return dets, err
}

// DetectBatchCost implements backend.BatchCoster: it runs the batch and
// reports the server-charged inference seconds per frame, which the
// pipeline charges in place of the nominal per-frame cost.
func (c *Client) DetectBatchCost(ctx context.Context, class string, frames []int64) ([][]backend.Detection, []float64, error) {
	if len(frames) == 0 {
		return nil, nil, nil
	}
	// Per-endpoint admission control: block until a slot frees up, but
	// never past a cancellation.
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}

	// The request body is deliberately NOT pooled: net/http's transport
	// may keep reading (or closing) the body reader from its own goroutine
	// after Do returns — on failed attempts, and in edge cases (early
	// server response) even on successful ones — so no point in this
	// function can prove the backing array is free for reuse. Request
	// bodies are tiny (~20 bytes/frame); the recycled buffers are the
	// response reads below and the handler's decode/encode, whose
	// lifetimes are synchronous.
	body, err := json.Marshal(request{Class: class, Frames: frames})
	if err != nil {
		return nil, nil, fmt.Errorf("httpbatch: encode request: %w", err)
	}

	var resp response
	var retries int64
	for attempt := 0; ; attempt++ {
		var retryable bool
		resp, retryable, err = c.attempt(ctx, body)
		if err == nil {
			break
		}
		if !retryable || attempt >= c.cfg.Retries || ctx.Err() != nil {
			c.mu.Lock()
			c.stats.Requests += int64(attempt) + 1
			c.stats.Retries += retries
			c.mu.Unlock()
			return nil, nil, err
		}
		// A deadline that cannot outlive the backoff makes the retry a
		// guaranteed deadline failure: treat it as terminal now instead of
		// sleeping toward a doomed final attempt.
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= c.cfg.RetryBackoff {
			c.mu.Lock()
			c.stats.Requests += int64(attempt) + 1
			c.stats.Retries += retries
			c.mu.Unlock()
			// Keep the real failure visible: errors.Is still matches
			// context.DeadlineExceeded, but the log shows what the
			// endpoint actually returned.
			return nil, nil, fmt.Errorf("%w before the retry backoff (last attempt: %v)", context.DeadlineExceeded, err)
		}
		select {
		case <-time.After(c.cfg.RetryBackoff):
			// Only now is a retry actually issued; counting it earlier
			// would record a phantom retry on cancellation mid-backoff.
			retries++
		case <-ctx.Done():
			// Cancelled (or deadline-expired) mid-backoff: terminal
			// immediately, no final attempt.
			c.mu.Lock()
			c.stats.Requests += int64(attempt) + 1
			c.stats.Retries += retries
			c.mu.Unlock()
			return nil, nil, ctx.Err()
		}
	}

	// The HTTP traffic happened whether or not the payload validates, so
	// record it before checking the response shape.
	c.mu.Lock()
	c.stats.Requests += retries + 1
	c.stats.Retries += retries
	c.mu.Unlock()

	if len(resp.Results) != len(frames) {
		return nil, nil, fmt.Errorf("httpbatch: server returned %d results for a %d-frame batch", len(resp.Results), len(frames))
	}
	if resp.FrameCosts != nil && len(resp.FrameCosts) != len(frames) {
		return nil, nil, fmt.Errorf("httpbatch: server returned %d frame costs for a %d-frame batch", len(resp.FrameCosts), len(frames))
	}
	out := make([][]backend.Detection, len(frames))
	for i, wire := range resp.Results {
		if len(wire) == 0 {
			continue
		}
		dets := make([]backend.Detection, len(wire))
		for k, w := range wire {
			dets[k] = backend.Detection{
				Frame:   w.Frame,
				Class:   w.Class,
				Box:     backend.Box{X1: w.Box[0], Y1: w.Box[1], X2: w.Box[2], Y2: w.Box[3]},
				Score:   w.Score,
				TruthID: w.TruthID,
			}
		}
		out[i] = dets
	}
	costs := resp.FrameCosts
	if costs == nil {
		// No per-frame costs: spread the batch latency evenly, falling
		// back to the nominal rate when the server reported nothing.
		per := resp.CostSeconds / float64(len(frames))
		if resp.CostSeconds == 0 {
			per = c.cfg.CostSeconds
		}
		costs = make([]float64, len(frames))
		for i := range costs {
			costs[i] = per
		}
	}
	var total float64
	for _, cost := range costs {
		total += cost
	}
	c.mu.Lock()
	c.stats.Batches++
	c.stats.Frames += int64(len(frames))
	c.stats.ServerSeconds += total
	c.mu.Unlock()
	return out, costs, nil
}

// attempt issues one HTTP request. retryable reports whether a failure is
// worth retrying (transport errors and 5xx); ctx and the per-attempt
// timeout both bound the call.
func (c *Client) attempt(ctx context.Context, body []byte) (resp response, retryable bool, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		return response{}, false, fmt.Errorf("httpbatch: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// Attribute the failure to the caller's cancellation when that is
		// what aborted the attempt — the engine surfaces this through
		// QueryHandle.Wait as a context error.
		if ctx.Err() != nil {
			return response{}, false, ctx.Err()
		}
		return response{}, true, fmt.Errorf("httpbatch: %w", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		err := fmt.Errorf("httpbatch: endpoint returned %s: %s", httpResp.Status, bytes.TrimSpace(msg))
		return response{}, httpResp.StatusCode >= 500, err
	}
	// Read the body before decoding so a connection reset mid-body (after
	// a 200 status) stays a retryable transport failure; only a body that
	// arrived whole but does not parse is a terminal protocol error. The
	// read buffer is pooled — json.Unmarshal copies what the response
	// keeps, so the raw payload can be recycled immediately.
	respBuf := bufPool.Get().(*bytes.Buffer)
	respBuf.Reset()
	defer bufPool.Put(respBuf)
	if _, err := respBuf.ReadFrom(httpResp.Body); err != nil {
		if ctx.Err() != nil {
			return response{}, false, ctx.Err()
		}
		return response{}, true, fmt.Errorf("httpbatch: read response: %w", err)
	}
	if err := json.Unmarshal(respBuf.Bytes(), &resp); err != nil {
		return response{}, false, fmt.Errorf("httpbatch: decode response: %w", err)
	}
	return resp, false, nil
}

// maxRequestBytes bounds a request body the Handler is willing to decode:
// far above any sane batch (a frame is ~20 bytes on the wire), far below
// anything that could pressure server memory.
const maxRequestBytes = 8 << 20

// Handler serves a backend.Backend over the httpbatch wire protocol — the
// server half of the pairing. Detection cost in the response comes from the
// backend's own accounting, reported per frame in frame_costs (so clients
// charge exact values, no divide-by-batch-size loss): the measured
// per-frame costs when the backend implements backend.BatchCoster, its
// nominal Hints().CostSeconds per frame otherwise. Requests are bounded:
// oversized bodies are rejected, and when the backend hints a MaxBatch,
// batches beyond it are refused with a 400 rather than run unsplit. Pair
// it with any mux: http.Handle("/detect", httpbatch.Handler(b)).
func Handler(b backend.Backend) http.Handler {
	coster, _ := b.(backend.BatchCoster)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "httpbatch: POST only", http.StatusMethodNotAllowed)
			return
		}
		req := reqPool.Get().(*request)
		defer reqPool.Put(req)
		req.Class, req.Frames = "", req.Frames[:0]
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(req); err != nil {
			http.Error(w, fmt.Sprintf("httpbatch: bad request: %v", err), http.StatusBadRequest)
			return
		}
		if req.Class == "" || len(req.Frames) == 0 {
			http.Error(w, "httpbatch: class and frames are required", http.StatusBadRequest)
			return
		}
		if max := b.Hints().MaxBatch; max > 0 && len(req.Frames) > max {
			http.Error(w, fmt.Sprintf("httpbatch: batch of %d frames exceeds the backend's MaxBatch %d", len(req.Frames), max), http.StatusBadRequest)
			return
		}
		var (
			dets  [][]backend.Detection
			costs []float64
			err   error
		)
		if coster != nil {
			dets, costs, err = coster.DetectBatchCost(r.Context(), req.Class, req.Frames)
		} else {
			dets, err = b.DetectBatch(r.Context(), req.Class, req.Frames)
			costs = make([]float64, len(req.Frames))
			per := b.Hints().CostSeconds
			for i := range costs {
				costs[i] = per
			}
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("httpbatch: backend: %v", err), http.StatusInternalServerError)
			return
		}
		var total float64
		for _, cost := range costs {
			total += cost
		}
		resp := response{Results: make([][]wireDetection, len(dets)), FrameCosts: costs, CostSeconds: total}
		for i, frameDets := range dets {
			wire := make([]wireDetection, len(frameDets))
			for k, d := range frameDets {
				wire[k] = wireDetection{
					Frame:   d.Frame,
					Class:   d.Class,
					Box:     [4]float64{d.Box.X1, d.Box.Y1, d.Box.X2, d.Box.Y2},
					Score:   d.Score,
					TruthID: d.TruthID,
				}
			}
			resp.Results[i] = wire
		}
		// Encode into a pooled buffer first: the response hits the wire in
		// one write, and an encode failure can still surface as a 500
		// instead of a half-written body.
		out := bufPool.Get().(*bytes.Buffer)
		out.Reset()
		defer bufPool.Put(out)
		if err := json.NewEncoder(out).Encode(resp); err != nil {
			http.Error(w, fmt.Sprintf("httpbatch: encode response: %v", err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out.Bytes())
	})
}
