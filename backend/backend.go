// Package backend defines the public, pluggable detector backend API.
//
// The paper treats the object detector as a costly black box (§II-A): the
// sampler only ever observes the boxes a detector emits on the frames it is
// asked about and the time each call takes. Nothing in the algorithm
// requires the simulated detector the exsample package ships — any system
// that can answer "what objects are in these frames?" can sit behind a
// query. This package is that seam: a Backend answers batched,
// context-aware detection requests, and the query pipeline (Search,
// Session, Engine) drives it through an adapter, charging whatever cost the
// backend reports.
//
// The contract is deliberately batched. The engine's scheduler already
// groups each round's detector work by shard affinity, so a Backend
// receives exactly the access pattern a real GPU fleet wants: one
// DetectBatch call per scheduling round per shard, with as many frames as
// the round proposed. Hints lets a backend bound the batch size and declare
// its nominal per-frame cost; BatchCoster lets it report the measured cost
// of each call instead (a remote backend charging server-reported latency).
//
// Determinism caveat: the exsample memo cache and the byte-identical
// reproducibility guarantees assume detector output is a pure function of
// (source, class, frame) — true for any stateless network, and required of
// a Backend that is used with EngineOptions.CacheEntries or compared across
// runs. A backend that is not deterministic still works; its queries are
// simply not reproducible.
package backend

import "context"

// Box is an axis-aligned bounding box in pixel coordinates; (X1, Y1) is the
// top-left corner.
type Box struct {
	X1, Y1, X2, Y2 float64
}

// Width returns the box width.
func (b Box) Width() float64 { return b.X2 - b.X1 }

// Height returns the box height.
func (b Box) Height() float64 { return b.Y2 - b.Y1 }

// Detection is one object detector output on a frame. It is the stable
// wire- and API-level result type: the exsample package's public Detection
// is an alias of this type, and the httpbatch protocol serializes it.
type Detection struct {
	// Frame is the frame index the detection was computed on, in the
	// coordinate space of the DetectBatch call that produced it.
	Frame int64
	// Class is the detected object class.
	Class string
	// Box is the detected bounding box.
	Box Box
	// Score is the detector confidence in [0, 1].
	Score float64
	// TruthID is the ground-truth instance id when the backend knows it
	// (simulated or replayed backends; it is what makes recall measurable),
	// or -1 when unknown — the value real detectors report.
	TruthID int
}

// Hints are a backend's static scheduling hints. The zero value means "no
// preference": unbounded batches and an unknown (zero) nominal cost.
type Hints struct {
	// CostSeconds is the nominal charged inference cost per frame. It is
	// used when the backend does not implement BatchCoster.
	CostSeconds float64
	// MaxBatch bounds the number of frames per DetectBatch call; the
	// pipeline splits larger batches before they reach the backend
	// (0 = unlimited).
	MaxBatch int
}

// Backend is the pluggable black-box detector contract. Implementations
// must be safe for concurrent use: the engine runs one DetectBatch per
// shard-affinity group per scheduling round, and groups from different
// shards (or different queries) run concurrently on the worker pool.
type Backend interface {
	// DetectBatch runs the detector on every frame of the batch for one
	// object class and returns one detection slice per frame, aligned with
	// frames (results[i] holds frame frames[i]'s detections; an empty or
	// nil slice is a valid "nothing found"). The call honors ctx: when the
	// context is cancelled mid-batch the backend abandons the work and
	// returns ctx's error, which the engine surfaces through
	// QueryHandle.Wait alongside a consistent partial report.
	DetectBatch(ctx context.Context, class string, frames []int64) ([][]Detection, error)
	// Hints returns the backend's scheduling hints. It must be cheap and
	// concurrency-safe; the pipeline may call it once per query.
	Hints() Hints
}

// BatchCoster is an optional Backend refinement for backends whose charged
// cost is measured per call rather than fixed — a remote batch endpoint
// that reports the server-side inference cost of each request. When a
// backend implements it, the pipeline calls DetectBatchCost instead of
// DetectBatch and charges the reported per-frame seconds in place of
// Hints().CostSeconds. Costs are per frame (not one batch scalar) so a
// backend that knows the exact charge — a server echoing its nominal rate,
// a fully-cached zero — reports it without a lossy divide-by-batch-size
// round trip; a backend that only measures batch latency spreads it across
// the frames itself.
type BatchCoster interface {
	// DetectBatchCost behaves exactly like Backend.DetectBatch and
	// additionally returns the charged inference seconds for each frame,
	// aligned with frames.
	DetectBatchCost(ctx context.Context, class string, frames []int64) ([][]Detection, []float64, error)
}
