package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/exsample/exsample/backend"
)

// fakeBackend is a controllable replica: deterministic detections, an
// atomic kill switch and call counters.
type fakeBackend struct {
	name    string
	dead    atomic.Bool
	calls   atomic.Int64
	biggest atomic.Int64 // largest batch seen
	hints   backend.Hints
	// delay simulates inference latency.
	delay time.Duration
}

// maxSeen returns the largest batch (or slice) the replica served.
func (f *fakeBackend) maxSeen() int64 { return f.biggest.Load() }

func (f *fakeBackend) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	f.calls.Add(1)
	for {
		cur := f.biggest.Load()
		if int64(len(frames)) <= cur || f.biggest.CompareAndSwap(cur, int64(len(frames))) {
			break
		}
	}
	if f.dead.Load() {
		return nil, fmt.Errorf("%s: connection refused", f.name)
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([][]backend.Detection, len(frames))
	for i, fr := range frames {
		if fr%2 == 0 {
			out[i] = []backend.Detection{{Frame: fr, Class: class, Score: 0.9, TruthID: int(fr)}}
		}
	}
	return out, nil
}

func (f *fakeBackend) Hints() backend.Hints { return f.hints }

func fleet(n int) ([]*fakeBackend, []backend.Backend) {
	fakes := make([]*fakeBackend, n)
	bs := make([]backend.Backend, n)
	for i := range fakes {
		fakes[i] = &fakeBackend{name: fmt.Sprintf("gpu-%d", i)}
		bs[i] = fakes[i]
	}
	return fakes, bs
}

func TestRouterValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty replica list accepted")
	}
	if _, err := New(Config{Replicas: []backend.Backend{nil}}); err == nil {
		t.Error("nil replica accepted")
	}
	_, bs := fleet(2)
	if _, err := New(Config{Replicas: bs, Names: []string{"only-one"}}); err == nil {
		t.Error("mismatched names accepted")
	}
	if _, err := New(Config{Replicas: bs, LatencyDecay: 2}); err == nil {
		t.Error("out-of-range LatencyDecay accepted")
	}
	if _, err := New(Config{Replicas: bs, FailoverRetries: -1}); err == nil {
		t.Error("negative FailoverRetries accepted")
	}
}

func TestRouterRoutesAndSpreadsLoad(t *testing.T) {
	fakes, bs := fleet(3)
	r, err := New(Config{Replicas: bs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 30; i++ {
		dets, err := r.DetectBatch(context.Background(), "car", []int64{int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if len(dets) != 1 {
			t.Fatalf("batch %d: %d results", i, len(dets))
		}
	}
	// Every replica warms up in rotation (the cold-start rule guarantees
	// at least coldRequests calls each); after that the latency weighting
	// decides, so the exact split is load-dependent.
	var total int64
	for i, f := range fakes {
		got := f.calls.Load()
		total += got
		if got < coldRequests {
			t.Errorf("replica %d served %d batches, want >= %d", i, got, coldRequests)
		}
	}
	if total != 30 {
		t.Errorf("fleet served %d batches, want 30", total)
	}
}

func TestRouterFailoverIsTransparent(t *testing.T) {
	fakes, bs := fleet(3)
	r, err := New(Config{Replicas: bs, FailureThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fakes[0].dead.Store(true)
	frames := []int64{2, 3, 4}
	for i := 0; i < 12; i++ {
		dets, err := r.DetectBatch(context.Background(), "car", frames)
		if err != nil {
			t.Fatalf("batch %d through a 1-dead fleet: %v", i, err)
		}
		if len(dets) != len(frames) || dets[0] == nil || dets[1] != nil {
			t.Fatalf("batch %d: wrong results %v", i, dets)
		}
	}
	if got := r.Failovers(); got < 1 {
		t.Fatalf("Failovers = %d, want >= 1", got)
	}
	// The dead replica's breaker is open and it stopped receiving traffic.
	st := r.Stats()
	if st[0].State != Open {
		t.Fatalf("dead replica state = %v, want open", st[0].State)
	}
	if st[0].LastErr == "" || st[0].ConsecutiveFailures < 1 {
		t.Fatal("dead replica's failure not recorded")
	}
	deadCalls := fakes[0].calls.Load()
	if deadCalls > 2 {
		t.Fatalf("dead replica kept receiving traffic: %d calls", deadCalls)
	}
}

func TestRouterAllReplicasDead(t *testing.T) {
	fakes, bs := fleet(2)
	r, err := New(Config{Replicas: bs, FailureThreshold: 1, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, f := range fakes {
		f.dead.Store(true)
	}
	if _, err := r.DetectBatch(context.Background(), "car", []int64{1}); err == nil {
		t.Fatal("all-dead fleet succeeded")
	}
	// Breakers are now open with a long cooldown: the next call fails fast
	// with the sentinel, without touching any replica.
	before := fakes[0].calls.Load() + fakes[1].calls.Load()
	_, err = r.DetectBatch(context.Background(), "car", []int64{1})
	if !errors.Is(err, ErrNoHealthyReplicas) {
		t.Fatalf("err = %v, want ErrNoHealthyReplicas", err)
	}
	if after := fakes[0].calls.Load() + fakes[1].calls.Load(); after != before {
		t.Fatal("open breakers still admitted traffic")
	}
}

func TestRouterCircuitReadmission(t *testing.T) {
	fakes, bs := fleet(2)
	r, err := New(Config{Replicas: bs, FailureThreshold: 1, Cooldown: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fakes[0].dead.Store(true)
	// Trip replica 0's breaker.
	for i := 0; i < 4; i++ {
		if _, err := r.DetectBatch(context.Background(), "car", []int64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st[0].State != Open {
		t.Fatalf("replica 0 state = %v, want open", st[0].State)
	}
	// Heal it and wait out the cooldown: a half-open trial call readmits.
	fakes[0].dead.Store(false)
	time.Sleep(30 * time.Millisecond)
	healed := false
	for i := 0; i < 10; i++ {
		if _, err := r.DetectBatch(context.Background(), "car", []int64{1}); err != nil {
			t.Fatal(err)
		}
		if r.Stats()[0].State == Healthy && fakes[0].calls.Load() > 1 {
			healed = true
			break
		}
	}
	if !healed {
		t.Fatalf("replica 0 never readmitted: %+v", r.Stats()[0])
	}
}

func TestRouterFailedTrialReopens(t *testing.T) {
	fakes, bs := fleet(2)
	r, err := New(Config{Replicas: bs, FailureThreshold: 1, Cooldown: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fakes[0].dead.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := r.DetectBatch(context.Background(), "car", []int64{1}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(15 * time.Millisecond)
	// Still dead: the half-open trial fails and the breaker re-opens
	// immediately (one strike, no threshold credit).
	for i := 0; i < 4; i++ {
		if _, err := r.DetectBatch(context.Background(), "car", []int64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st[0].State != Open {
		t.Fatalf("replica 0 state after failed trial = %v, want open", st[0].State)
	}
}

func TestRouterProbeHealsWithoutTraffic(t *testing.T) {
	fakes, bs := fleet(2)
	var probed atomic.Int64
	r, err := New(Config{
		Replicas:         bs,
		FailureThreshold: 1,
		Cooldown:         10 * time.Millisecond,
		ProbeInterval:    10 * time.Millisecond,
		Probe: func(ctx context.Context, b backend.Backend) error {
			probed.Add(1)
			_, err := b.DetectBatch(ctx, "car", []int64{0})
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fakes[0].dead.Store(true)
	if _, err := r.DetectBatch(context.Background(), "car", []int64{1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for r.Stats()[0].State != Open {
		select {
		case <-deadline:
			t.Fatalf("probe never opened the dead replica: %+v", r.Stats()[0])
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Heal the backend; the probe loop alone must close the breaker.
	fakes[0].dead.Store(false)
	for r.Stats()[0].State != Healthy {
		select {
		case <-deadline:
			t.Fatalf("probe never healed the replica: %+v", r.Stats()[0])
		case <-time.After(5 * time.Millisecond):
		}
	}
	if probed.Load() == 0 {
		t.Fatal("probe never ran")
	}
}

func TestRouterCancellationIsTerminal(t *testing.T) {
	fakes, bs := fleet(3)
	r, err := New(Config{Replicas: bs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, f := range fakes {
		f.delay = 50 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err = r.DetectBatch(ctx, "car", []int64{1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Exactly one replica was tried: cancellation must not fail over.
	var total int64
	for _, f := range fakes {
		total += f.calls.Load()
	}
	if total != 1 {
		t.Fatalf("%d replicas tried under a cancelled context, want 1", total)
	}
	// And it must not be scored as a replica failure: a cancelled query
	// says nothing about endpoint health, so no breaker moves.
	for _, st := range r.Stats() {
		if st.Failures != 0 || st.ConsecutiveFailures != 0 || st.State != Healthy {
			t.Fatalf("cancellation charged replica %s a failure: %+v", st.Name, st)
		}
	}
}

func TestRouterConcurrentUse(t *testing.T) {
	fakes, bs := fleet(3)
	r, err := New(Config{Replicas: bs, FailureThreshold: 2, Cooldown: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g == 0 && i == 20 {
					fakes[1].dead.Store(true)
				}
				if _, err := r.DetectBatch(context.Background(), "car", []int64{int64(i)}); err != nil {
					t.Errorf("goroutine %d batch %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRouterHintsMerge(t *testing.T) {
	fakes, bs := fleet(3)
	fakes[0].hints = backend.Hints{CostSeconds: 0.05, MaxBatch: 0}
	fakes[1].hints = backend.Hints{CostSeconds: 0.05, MaxBatch: 16}
	fakes[2].hints = backend.Hints{CostSeconds: 0.05, MaxBatch: 64}
	r, err := New(Config{Replicas: bs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h := r.Hints()
	if h.MaxBatch != 16 || h.CostSeconds != 0.05 {
		t.Fatalf("merged hints = %+v, want MaxBatch 16, CostSeconds 0.05", h)
	}
}

// BenchmarkRouterFailover is the resilience path's perf trajectory:
// frames/s through a 3-replica router with 0 and 1 dead replicas. The
// dead-replica case pays breaker bookkeeping plus the occasional trial
// call, and must stay in the same order of magnitude.
func BenchmarkRouterFailover(b *testing.B) {
	for _, dead := range []int{0, 1} {
		b.Run(fmt.Sprintf("dead=%d", dead), func(b *testing.B) {
			fakes, bs := fleet(3)
			r, err := New(Config{Replicas: bs, FailureThreshold: 1, Cooldown: time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			for i := 0; i < dead; i++ {
				fakes[i].dead.Store(true)
			}
			frames := make([]int64, 16)
			for i := range frames {
				frames[i] = int64(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.DetectBatch(context.Background(), "car", frames); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*len(frames))/elapsed, "frames/s")
			}
		})
	}
}

// TestSizerSignalCountsBreakerOpens: the sizer-facing signal reports one
// cumulative open event per breaker transition (not per failure), the
// live/cooling replica split, and the healthy fleet's best latency EWMA.
func TestSizerSignalCountsBreakerOpens(t *testing.T) {
	fakes, bs := fleet(2)
	// Threshold 1: the first failure trips the breaker, so the weighted
	// pick's passive avoidance of the slow failed replica cannot keep the
	// breaker half-shut for the whole test.
	r, err := New(Config{Replicas: bs, FailureThreshold: 1, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if sig := r.SizerSignal(); sig.BreakerOpens != 0 || sig.HealthyReplicas != 2 {
		t.Fatalf("fresh signal = %+v, want 2 healthy / 0 opens", sig)
	}
	// A few healthy batches establish a latency EWMA.
	for i := 0; i < 4; i++ {
		if _, err := r.DetectBatch(ctx, "car", []int64{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if sig := r.SizerSignal(); sig.EWMALatencySeconds <= 0 {
		t.Fatalf("no latency EWMA after healthy traffic: %+v", sig)
	}
	// Kill replica 0 and drive its breaker open; every failed batch is
	// rescued by a sibling, so the caller never sees an error.
	fakes[0].dead.Store(true)
	for i := 0; i < 6; i++ {
		if _, err := r.DetectBatch(ctx, "car", []int64{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sig := r.SizerSignal()
	if sig.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d after one replica died, want 1 (signal %+v)", sig.BreakerOpens, sig)
	}
	if sig.OpenBreakers != 1 || sig.HealthyReplicas != 1 {
		t.Fatalf("signal = %+v, want 1 open / 1 healthy", sig)
	}
	if r.BreakerOpens() != 1 {
		t.Fatalf("BreakerOpens() = %d, want 1", r.BreakerOpens())
	}
}
