package router

import (
	"context"
	"fmt"
	"sync"

	"github.com/exsample/exsample/backend"
)

// scatterBatch splits one batch across several healthy replicas
// proportional to their capacity weights: contiguous frame slices
// dispatched concurrently, reassembled in frame order. A failed slice
// fails over onto untried siblings (up to FailoverRetries, same as a
// whole batch); a slice that exhausts its retries cancels the remaining
// slices and fails the whole batch — callers keep the exact
// all-or-nothing semantics of single-replica routing, so engine
// determinism is untouched.
//
// Returns ok=false when the batch is not worth splitting (too few
// frames, fewer than two healthy replicas): the caller falls back to the
// single-replica path, which also owns half-open trials and degraded
// fleets.
func (r *Router) scatterBatch(ctx context.Context, class string, frames []int64) (_ [][]backend.Detection, _ []float64, ok bool, _ error) {
	type member struct {
		i      int
		weight float64
		max    int
	}
	var members []member
	for i, rep := range r.replicas {
		rep.mu.Lock()
		if rep.state == Healthy {
			members = append(members, member{i, capacityWeightLocked(rep), rep.maxBatch})
		}
		rep.mu.Unlock()
	}
	width := len(frames) / r.cfg.ScatterMinSlice
	if width > len(members) {
		width = len(members)
	}
	if width < 2 {
		return nil, nil, false, nil
	}
	// Keep the `width` heaviest members when the batch cannot feed
	// everyone a worthwhile slice.
	for len(members) > width {
		drop := 0
		for k := 1; k < len(members); k++ {
			if members[k].weight < members[drop].weight {
				drop = k
			}
		}
		members = append(members[:drop], members[drop+1:]...)
	}
	weights := make([]float64, len(members))
	caps := make([]int, len(members))
	for k, m := range members {
		weights[k] = m.weight
		caps[k] = m.max
	}
	shares := scatterShares(len(frames), weights, caps)
	if shares == nil {
		// The healthy fleet's aggregate MaxBatch cannot absorb the batch;
		// let the single path route it whole (MaxBatch is a hint).
		return nil, nil, false, nil
	}

	dets := make([][]backend.Detection, len(frames))
	costs := make([]float64, len(frames))
	// One slice's terminal failure cancels its siblings: their aborted
	// calls read as context cancellation inside call(), so the healthy
	// replicas they ran on are not charged a failure.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	start := 0
	for k, m := range members {
		share := shares[k]
		if share == 0 {
			continue
		}
		lo, hi := start, start+share
		start = hi
		wg.Add(1)
		go func(first, lo, hi int) {
			defer wg.Done()
			d, c, err := r.scatterSlice(sctx, first, class, frames[lo:hi])
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				cancel()
				return
			}
			copy(dets[lo:hi], d)
			if c != nil {
				copy(costs[lo:hi], c)
			}
		}(m.i, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, true, err
	}
	if firstErr != nil {
		return nil, nil, true, fmt.Errorf("router: scatter slice failed: %w", firstErr)
	}
	r.mu.Lock()
	r.scatters++
	r.mu.Unlock()
	return dets, costs, true, nil
}

// scatterSlice runs one slice, first on its assigned replica and then,
// on failure, on untried siblings chosen by pick — the per-slice
// equivalent of DetectBatchCost's failover loop.
func (r *Router) scatterSlice(ctx context.Context, first int, class string, frames []int64) ([][]backend.Detection, []float64, error) {
	tried := make(map[int]bool)
	var lastErr error
	for attempt := 0; attempt <= r.cfg.FailoverRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		i := first
		if attempt > 0 {
			var ok bool
			i, ok = r.pick(tried)
			if !ok {
				break
			}
		}
		tried[i] = true
		rep := r.replicas[i]
		dets, costs, err := r.call(ctx, rep, class, frames)
		if err == nil {
			rep.mu.Lock()
			rep.slices++
			rep.mu.Unlock()
			if attempt > 0 {
				r.mu.Lock()
				r.failovers++
				r.mu.Unlock()
			}
			return dets, costs, nil
		}
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w (all %d cooling down)", ErrNoHealthyReplicas, len(r.replicas))
	}
	return nil, nil, lastErr
}

// scatterShares splits n frames across members proportional to their
// weights by largest remainder, respecting each member's MaxBatch cap
// (0 = unbounded). Returns nil when the caps cannot absorb n frames.
func scatterShares(n int, weights []float64, caps []int) []int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return nil
	}
	shares := make([]int, len(weights))
	fracs := make([]float64, len(weights))
	assigned := 0
	for k, w := range weights {
		ideal := float64(n) * w / total
		s := int(ideal)
		if caps[k] > 0 && s > caps[k] {
			s = caps[k]
		}
		shares[k] = s
		fracs[k] = ideal - float64(s)
		assigned += s
	}
	// Hand out the remainder one frame at a time to the member with the
	// largest unmet ideal share that still has cap headroom — ties break
	// by lowest index, so the split is deterministic.
	for assigned < n {
		best := -1
		for k := range shares {
			if caps[k] > 0 && shares[k] >= caps[k] {
				continue
			}
			if best < 0 || fracs[k] > fracs[best] {
				best = k
			}
		}
		if best < 0 {
			return nil
		}
		shares[best]++
		fracs[best]--
		assigned++
	}
	return shares
}
