// Package router implements a resilient multi-endpoint detector backend:
// one backend.Backend fronting N replica backends (typically
// backend/httpbatch clients pointed at different GPU hosts) with
// per-replica health tracking, weighted load-aware replica selection,
// automatic failover retry, and circuit-breaker re-admission.
//
// The router is the serving-layer half of surviving fleet churn: a dead
// endpoint stops being a query-killing event and becomes a routing event.
// Every DetectBatch picks the healthiest replica (lowest
// latency-weighted load among closed breakers), and a failed call is
// retried transparently on a sibling — the query above never learns the
// first replica died, it just observes a slower batch. Failures are
// scored passively (consecutive failures trip the breaker) and healed
// actively (an optional probe loop) or lazily (a half-open trial call
// after the cooldown).
//
// Replicas must be equivalent: they serve the same repository and, for
// the reproducibility guarantees of the exsample pipeline to hold, return
// identical detections for the same (class, frame). Under that contract a
// failover is invisible in the Report — which is exactly what the
// end-to-end tests assert.
package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/exsample/exsample/backend"
)

// State is a replica's circuit-breaker state.
type State int

const (
	// Healthy replicas receive traffic.
	Healthy State = iota
	// Open replicas are excluded from routing until Cooldown elapses.
	Open
	// HalfOpen replicas have cooled down and admit one trial call; success
	// closes the breaker, failure re-opens it.
	HalfOpen
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ReplicaSpec declares one replica together with its capacity metadata —
// the structured alternative to the parallel Replicas/Names lists for
// heterogeneous fleets.
type ReplicaSpec struct {
	// Backend is the replica endpoint (required).
	Backend backend.Backend
	// Name labels the replica in Stats (default "replica-i").
	Name string
	// Weight is the replica's relative capacity: a replica with 4x the
	// throughput of its siblings gets Weight 4 and draws ~4x the batches
	// (and, under Scatter, ~4x the frames of each split batch). Weights
	// only compare against each other, so set them for every replica or
	// for none. Zero derives the weight live: the measured per-frame
	// throughput once the replica has served coldRequests batches, the
	// Hints.MaxBatch ratio before that, 1 when neither signal exists.
	Weight float64
}

// Config parameterizes a Router. Replicas (or Specs) is required;
// everything else has a production-shaped default.
type Config struct {
	// Replicas are the equivalent backends to route across (at least one).
	// Mutually exclusive with Specs.
	Replicas []backend.Backend
	// Names labels the replicas in Stats (default "replica-0", ...).
	Names []string
	// Specs declares the replicas with per-replica capacity weights — use
	// this instead of Replicas/Names for heterogeneous fleets.
	Specs []ReplicaSpec
	// Scatter splits each large DetectBatch across several healthy
	// replicas proportional to their capacity weights (contiguous frame
	// slices, reassembled in order), instead of sending the whole batch to
	// one replica. A failed slice fails over to untried siblings exactly
	// like a whole batch; a slice that exhausts its retries fails the
	// whole batch, so callers see the same all-or-nothing semantics as
	// single-replica routing. With Scatter on, Hints().MaxBatch reports
	// the fleet's aggregate capacity rather than the most conservative
	// replica's. Off by default: the single-replica path is byte-for-byte
	// the pre-scatter router.
	Scatter bool
	// ScatterMinSlice is the smallest slice worth a separate dispatch
	// (default 8): batches under 2*ScatterMinSlice frames, and fleets with
	// fewer than two healthy replicas, use the single-replica path.
	ScatterMinSlice int
	// FailureThreshold is how many consecutive failures open a replica's
	// circuit breaker (default 3). The counter resets on any success, so
	// sporadic failures only shed load transiently.
	FailureThreshold int
	// Cooldown is how long an open breaker excludes its replica before a
	// half-open trial call is admitted (default 2s).
	Cooldown time.Duration
	// FailoverRetries bounds how many sibling replicas a failed
	// DetectBatch is retried on (default: every other replica once).
	// Caller context cancellation is always terminal — a cancelled query
	// never fails over.
	FailoverRetries int
	// Probe, when non-nil, is the active health check: the probe loop
	// calls it for every replica each ProbeInterval, and its error result
	// feeds the same failure scoring as live traffic. A typical probe
	// issues a one-frame DetectBatch for a known class. When nil, health
	// is scored passively from live traffic only and re-admission happens
	// through half-open trial calls.
	Probe func(ctx context.Context, b backend.Backend) error
	// ProbeInterval is the probe loop period (default 1s; ignored when
	// Probe is nil).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe call (default 5s).
	ProbeTimeout time.Duration
	// LatencyDecay is the EWMA coefficient for the per-replica latency
	// estimate in (0, 1]; higher weighs recent batches more (default 0.3).
	LatencyDecay float64
}

func (c Config) withDefaults() Config {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.FailoverRetries == 0 {
		n := len(c.Replicas)
		if len(c.Specs) > 0 {
			n = len(c.Specs)
		}
		c.FailoverRetries = n - 1
	}
	if c.ScatterMinSlice == 0 {
		c.ScatterMinSlice = 8
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 5 * time.Second
	}
	if c.LatencyDecay == 0 {
		c.LatencyDecay = 0.3
	}
	return c
}

// ErrNoHealthyReplicas is wrapped by DetectBatch errors when every
// replica's breaker is open and still cooling down.
var ErrNoHealthyReplicas = errors.New("router: no healthy replicas")

// coldRequests is how many calls a replica serves before its latency
// EWMA is trusted for weighting.
const coldRequests = 3

// replica is one endpoint's routing state. The mutex-guarded fields are
// tiny and uncontended next to the inference calls they account for.
type replica struct {
	b        backend.Backend
	name     string
	weight   float64 // configured capacity weight (0 = derive live)
	maxBatch int     // Hints().MaxBatch cached at construction

	mu          sync.Mutex
	state       State
	consecFails int
	openedAt    time.Time
	trial       bool // a half-open trial call is in flight
	inflight    int
	ewmaSeconds float64
	perFrame    float64 // per-frame latency EWMA — the throughput proxy
	lastErr     error
	lastErrAt   time.Time

	requests  int64
	failures  int64
	successes int64
	opens     int64 // breaker open transitions charged to this replica
	slices    int64 // scatter slices served

	// credit is the replica's smooth weighted-round-robin balance for
	// near-tie picks. Guarded by Router.mu, not rep.mu: only pick touches
	// it, and pick already holds the router lock.
	credit float64
}

// Router is a backend.Backend (and backend.BatchCoster) that fans a fleet
// of equivalent replica backends into one resilient endpoint. It is safe
// for concurrent use by any number of queries.
type Router struct {
	cfg      Config
	replicas []*replica
	mu       sync.Mutex

	failovers int64 // batches (or slices) rescued by a sibling after a failure
	scatters  int64 // batches served scattered across several replicas

	// breakerOpens counts breaker open transitions (healthy/half-open →
	// open) over the router's lifetime — the capacity-loss edge the
	// adaptive batch sizer watches. Atomic so per-round polls never touch
	// the routing locks.
	breakerOpens atomic.Int64

	probeStop chan struct{}
	probeDone chan struct{}
}

// Compile-time interface checks.
var (
	_ backend.Backend     = (*Router)(nil)
	_ backend.BatchCoster = (*Router)(nil)
)

// New builds a router over the given replicas and, when Config.Probe is
// set, starts its health-probe loop. Callers that set Probe must Close
// the router to stop the loop.
func New(cfg Config) (*Router, error) {
	if len(cfg.Specs) > 0 && (len(cfg.Replicas) > 0 || len(cfg.Names) > 0) {
		return nil, fmt.Errorf("router: Config.Specs is mutually exclusive with Replicas/Names")
	}
	specs := cfg.Specs
	if len(specs) == 0 {
		if len(cfg.Replicas) == 0 {
			return nil, fmt.Errorf("router: Config.Replicas (or Specs) is required")
		}
		if cfg.Names != nil && len(cfg.Names) != len(cfg.Replicas) {
			return nil, fmt.Errorf("router: %d names for %d replicas", len(cfg.Names), len(cfg.Replicas))
		}
		specs = make([]ReplicaSpec, len(cfg.Replicas))
		for i, b := range cfg.Replicas {
			specs[i] = ReplicaSpec{Backend: b}
			if cfg.Names != nil {
				specs[i].Name = cfg.Names[i]
			}
		}
	}
	if cfg.FailureThreshold < 0 || cfg.FailoverRetries < 0 {
		return nil, fmt.Errorf("router: negative FailureThreshold or FailoverRetries")
	}
	if cfg.LatencyDecay < 0 || cfg.LatencyDecay > 1 {
		return nil, fmt.Errorf("router: LatencyDecay %v outside [0, 1]", cfg.LatencyDecay)
	}
	if cfg.ScatterMinSlice < 0 {
		return nil, fmt.Errorf("router: negative ScatterMinSlice")
	}
	cfg = cfg.withDefaults()
	r := &Router{cfg: cfg}
	for i, s := range specs {
		if s.Backend == nil {
			return nil, fmt.Errorf("router: replica %d is nil", i)
		}
		if s.Weight < 0 {
			return nil, fmt.Errorf("router: replica %d has negative Weight %v", i, s.Weight)
		}
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("replica-%d", i)
		}
		r.replicas = append(r.replicas, &replica{
			b:        s.Backend,
			name:     name,
			weight:   s.Weight,
			maxBatch: s.Backend.Hints().MaxBatch,
		})
	}
	if cfg.Probe != nil {
		r.probeStop = make(chan struct{})
		r.probeDone = make(chan struct{})
		go r.probeLoop(r.probeStop)
	}
	return r, nil
}

// Close stops the probe loop, if one is running. It does not close the
// replica backends. Close is idempotent.
func (r *Router) Close() {
	r.mu.Lock()
	stop := r.probeStop
	r.probeStop = nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-r.probeDone
	}
}

// probeLoop actively health-checks every replica each ProbeInterval. A
// probe success heals an open breaker without waiting for live traffic
// to trial the replica; a probe failure counts exactly like a live one.
func (r *Router) probeLoop(stop <-chan struct{}) {
	defer close(r.probeDone)
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		for _, rep := range r.replicas {
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
			err := r.cfg.Probe(ctx, rep.b)
			cancel()
			if err != nil {
				r.noteFailure(rep, fmt.Errorf("probe: %w", err))
			} else {
				r.noteSuccess(rep, 0, 0, false)
			}
		}
	}
}

// admissible reports whether the replica may receive a call now, moving
// an open breaker to half-open when its cooldown has elapsed. For a
// half-open replica it admits only the single trial call.
func (r *Router) admissible(rep *replica, now time.Time) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	switch rep.state {
	case Healthy:
		return true
	case Open:
		if now.Sub(rep.openedAt) < r.cfg.Cooldown {
			return false
		}
		rep.state = HalfOpen
		fallthrough
	case HalfOpen:
		if rep.trial {
			return false
		}
		rep.trial = true
		return true
	}
	return false
}

// capacityWeightLocked returns the replica's relative capacity weight.
// An explicit ReplicaSpec.Weight wins; otherwise a warmed replica's
// measured per-frame throughput (1/perFrame — frames per second, modulo
// batch overhead) is the live estimate, the MaxBatch hint stands in
// before the EWMA warms, and 1 is the no-signal fallback. Weights only
// ever compare against each other, so the mixed scales are harmless: a
// cold replica ranks at load 0 and warms regardless of its weight.
// Caller must hold rep.mu.
func capacityWeightLocked(rep *replica) float64 {
	if rep.weight > 0 {
		return rep.weight
	}
	if rep.requests >= coldRequests && rep.perFrame > 0 {
		return 1 / rep.perFrame
	}
	if rep.maxBatch > 0 {
		return float64(rep.maxBatch)
	}
	return 1
}

// pick selects the next replica to try: among admissible replicas not yet
// tried for this batch, the one with the lowest capacity-weighted load
// ewma*(inflight+1)/weight — weighted least-connections where a replica
// with 4x the capacity carries 4x the latency-load before it stops
// looking light (a replica with no traffic has load ≈ 0 and is always
// worth a try). Loads within ~10% of the lightest are noise-level ties
// (latency EWMAs of equivalent replicas differ by noise); ties resolve by
// smooth weighted round-robin on persistent per-replica credits, so a
// 4:1:1:1 fleet interleaves picks 4-1-1-1 instead of bursting, and equal
// weights reproduce plain round-robin.
func (r *Router) pick(tried map[int]bool) (int, bool) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	type cand struct {
		i      int
		load   float64
		weight float64
	}
	var cands []cand
	for i, rep := range r.replicas {
		if tried[i] {
			continue
		}
		if !r.admissible(rep, now) {
			continue
		}
		rep.mu.Lock()
		w := capacityWeightLocked(rep)
		load := rep.ewmaSeconds * float64(rep.inflight+1) / w
		if rep.requests < coldRequests {
			// An unmeasured replica has no latency signal to weigh; rank
			// it weightless so cold replicas warm up in weighted rotation
			// instead of starving behind an early lucky measurement.
			load = 0
		}
		rep.mu.Unlock()
		cands = append(cands, cand{i, load, w})
	}
	if len(cands) == 0 {
		return 0, false
	}
	minLoad := cands[0].load
	for _, c := range cands[1:] {
		if c.load < minLoad {
			minLoad = c.load
		}
	}
	// Smooth WRR over the near-tie set: every tied candidate earns credit
	// proportional to its weight, the highest balance wins and pays the
	// round's total back — the classic nginx schedule, which spreads a
	// 4:1:1:1 fleet as 0,1,0,2,0,3,0,0 rather than 0,0,0,0,1,2,3.
	best := -1
	var total float64
	for k := range cands {
		c := &cands[k]
		if c.load*0.9 > minLoad {
			continue // meaningfully heavier than the lightest — not a tie
		}
		rep := r.replicas[c.i]
		rep.credit += c.weight
		total += c.weight
		if best < 0 || rep.credit > r.replicas[cands[best].i].credit {
			best = k
		}
	}
	r.replicas[cands[best].i].credit -= total
	// Candidates scanned but not chosen give back any half-open trial
	// slot admissible() just claimed for them.
	for _, c := range cands {
		if c.i != cands[best].i {
			r.releaseTrial(r.replicas[c.i])
		}
	}
	return cands[best].i, true
}

// releaseTrial returns an unused half-open trial slot.
func (r *Router) releaseTrial(rep *replica) {
	rep.mu.Lock()
	if rep.state == HalfOpen {
		rep.trial = false
	}
	rep.mu.Unlock()
}

// noteSuccess records a successful call (or probe): the breaker closes,
// the failure streak resets and the latency EWMAs absorb the observation
// (probes pass elapsed 0 / frames 0 and update no latency).
func (r *Router) noteSuccess(rep *replica, elapsed time.Duration, frames int, counts bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.state = Healthy
	rep.trial = false
	rep.consecFails = 0
	if counts {
		rep.successes++
		sec := elapsed.Seconds()
		d := r.cfg.LatencyDecay
		if rep.ewmaSeconds == 0 {
			rep.ewmaSeconds = sec
		} else {
			rep.ewmaSeconds = d*sec + (1-d)*rep.ewmaSeconds
		}
		if frames > 0 {
			pf := sec / float64(frames)
			if rep.perFrame == 0 {
				rep.perFrame = pf
			} else {
				rep.perFrame = d*pf + (1-d)*rep.perFrame
			}
		}
	}
}

// noteFailure records a failed call (or probe), opening the breaker when
// the consecutive-failure score reaches the threshold — and immediately
// for a failed half-open trial, which has no credit to burn.
func (r *Router) noteFailure(rep *replica, err error) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.failures++
	rep.consecFails++
	rep.lastErr = err
	rep.lastErrAt = time.Now()
	if rep.state == HalfOpen || rep.consecFails >= r.cfg.FailureThreshold {
		if rep.state != Open {
			r.breakerOpens.Add(1)
			rep.opens++
		}
		rep.state = Open
		rep.openedAt = time.Now()
		rep.trial = false
	}
}

// Hints implements backend.Backend. With scatter off, the fleet's hints
// are the most conservative of its replicas' — the smallest non-zero
// MaxBatch (every replica must accept a whole routed batch) and the
// first replica's nominal per-frame cost. With scatter on, MaxBatch is
// the fleet aggregate (the sum across replicas, 0/unbounded if any
// replica is unbounded): a scattered batch is sliced to each replica's
// own capacity, so the fleet as a whole absorbs the sum. Replicas should
// still treat their own MaxBatch as a hint, not a contract — a degraded
// fleet routes whole batches to the survivors.
func (r *Router) Hints() backend.Hints {
	h := r.replicas[0].b.Hints()
	if r.cfg.Scatter {
		total := 0
		for _, rep := range r.replicas {
			mb := rep.b.Hints().MaxBatch
			if mb <= 0 {
				total = 0
				break
			}
			total += mb
		}
		h.MaxBatch = total
		return h
	}
	for _, rep := range r.replicas[1:] {
		rh := rep.b.Hints()
		if rh.MaxBatch > 0 && (h.MaxBatch == 0 || rh.MaxBatch < h.MaxBatch) {
			h.MaxBatch = rh.MaxBatch
		}
	}
	return h
}

// DetectBatch implements backend.Backend.
func (r *Router) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	dets, _, err := r.DetectBatchCost(ctx, class, frames)
	return dets, err
}

// DetectBatchCost implements backend.BatchCoster: the batch runs on the
// healthiest replica and, should the call fail, fails over to untried
// siblings (up to FailoverRetries) before surfacing an error. Caller
// cancellation is terminal immediately — a cancelled query never burns
// sibling capacity. Charged costs are the serving replica's: measured
// per-call for BatchCoster replicas, Hints().CostSeconds otherwise.
func (r *Router) DetectBatchCost(ctx context.Context, class string, frames []int64) ([][]backend.Detection, []float64, error) {
	if len(frames) == 0 {
		return nil, nil, nil
	}
	if r.cfg.Scatter {
		if dets, costs, ok, err := r.scatterBatch(ctx, class, frames); ok {
			return dets, costs, err
		}
		// Too small a batch or too few healthy replicas to be worth
		// splitting — fall through to the single-replica path.
	}
	tried := make(map[int]bool)
	var lastErr error
	for attempt := 0; attempt <= r.cfg.FailoverRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		i, ok := r.pick(tried)
		if !ok {
			break
		}
		tried[i] = true
		dets, costs, err := r.call(ctx, r.replicas[i], class, frames)
		if err == nil {
			if attempt > 0 {
				r.mu.Lock()
				r.failovers++
				r.mu.Unlock()
			}
			return dets, costs, nil
		}
		if ctx.Err() != nil {
			// The caller's context aborted the call mid-flight; failing
			// over would waste a sibling on a dead query.
			return nil, nil, ctx.Err()
		}
		lastErr = err
	}
	if lastErr == nil {
		return nil, nil, fmt.Errorf("router: %w (all %d cooling down)", ErrNoHealthyReplicas, len(r.replicas))
	}
	return nil, nil, fmt.Errorf("router: all replicas failed, last: %w", lastErr)
}

// call runs the batch on one replica and feeds the outcome into its
// health state.
func (r *Router) call(ctx context.Context, rep *replica, class string, frames []int64) ([][]backend.Detection, []float64, error) {
	rep.mu.Lock()
	rep.inflight++
	rep.requests++
	rep.mu.Unlock()
	start := time.Now()
	var (
		dets  [][]backend.Detection
		costs []float64
		err   error
	)
	if coster, ok := rep.b.(backend.BatchCoster); ok {
		dets, costs, err = coster.DetectBatchCost(ctx, class, frames)
	} else {
		dets, err = rep.b.DetectBatch(ctx, class, frames)
		if err == nil {
			per := rep.b.Hints().CostSeconds
			costs = make([]float64, len(frames))
			for i := range costs {
				costs[i] = per
			}
		}
	}
	if err == nil && len(dets) != len(frames) {
		err = fmt.Errorf("router: replica %s returned %d results for a %d-frame batch", rep.name, len(dets), len(frames))
	}
	elapsed := time.Since(start)
	rep.mu.Lock()
	rep.inflight--
	rep.mu.Unlock()
	if err != nil {
		if ctx.Err() != nil {
			// The caller's cancellation aborted the call; that says nothing
			// about the replica's health, so charge no failure — just give
			// back any half-open trial slot the pick claimed.
			r.releaseTrial(rep)
			return nil, nil, err
		}
		r.noteFailure(rep, err)
		return nil, nil, err
	}
	r.noteSuccess(rep, elapsed, len(frames), true)
	return dets, costs, nil
}

// ReplicaStats is one replica's health and traffic snapshot.
type ReplicaStats struct {
	// Replica is the replica's index; Name its configured label.
	Replica int
	Name    string
	// State is the circuit-breaker state.
	State State
	// Requests, Successes and Failures count calls routed to the replica
	// (probes count toward Failures on error but are not Requests).
	Requests, Successes, Failures int64
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	// EWMALatencySeconds is the decayed per-batch latency estimate — the
	// signal behind weighted picks, and the stat the adaptive batch sizer
	// wants.
	EWMALatencySeconds float64
	// Weight is the replica's effective capacity weight at snapshot time:
	// the configured ReplicaSpec.Weight, or the live derived estimate.
	Weight float64
	// BreakerOpens counts breaker open transitions charged to this
	// replica over the router's lifetime.
	BreakerOpens int64
	// Slices counts scatter-gather slices this replica served.
	Slices int64
	// LastErr is the most recent failure ("" when none).
	LastErr string
	// LastErrAt is when it happened (zero when none).
	LastErrAt time.Time
}

// Stats snapshots every replica's health and traffic counters.
func (r *Router) Stats() []ReplicaStats {
	out := make([]ReplicaStats, len(r.replicas))
	for i, rep := range r.replicas {
		rep.mu.Lock()
		out[i] = ReplicaStats{
			Replica:             i,
			Name:                rep.name,
			State:               rep.state,
			Requests:            rep.requests,
			Successes:           rep.successes,
			Failures:            rep.failures,
			ConsecutiveFailures: rep.consecFails,
			EWMALatencySeconds:  rep.ewmaSeconds,
			Weight:              capacityWeightLocked(rep),
			BreakerOpens:        rep.opens,
			Slices:              rep.slices,
		}
		if rep.lastErr != nil {
			out[i].LastErr = rep.lastErr.Error()
			out[i].LastErrAt = rep.lastErrAt
		}
		rep.mu.Unlock()
	}
	return out
}

// Failovers returns how many batches (or scatter slices) were rescued by
// a sibling replica after their first pick failed.
func (r *Router) Failovers() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failovers
}

// Scatters returns how many batches were served scattered across several
// replicas (0 unless Config.Scatter is on).
func (r *Router) Scatters() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scatters
}

// ScatterEnabled reports whether scatter-gather batch splitting is on.
func (r *Router) ScatterEnabled() bool { return r.cfg.Scatter }

// ReplicaOpens snapshots each replica's cumulative breaker-open count,
// indexed by replica. The per-replica complement of BreakerOpens: a
// caller that diffs successive snapshots can attribute a capacity-loss
// edge to the specific replica that dropped out.
func (r *Router) ReplicaOpens() []int64 {
	out := make([]int64, len(r.replicas))
	for i, rep := range r.replicas {
		rep.mu.Lock()
		out[i] = rep.opens
		rep.mu.Unlock()
	}
	return out
}

// CapacityWeights snapshots each replica's effective capacity weight
// (configured or live-derived), indexed by replica.
func (r *Router) CapacityWeights() []float64 {
	out := make([]float64, len(r.replicas))
	for i, rep := range r.replicas {
		rep.mu.Lock()
		out[i] = capacityWeightLocked(rep)
		rep.mu.Unlock()
	}
	return out
}

// BreakerOpens returns the cumulative count of circuit-breaker open
// transitions across the fleet. It is the capacity-loss signal the
// adaptive batch sizer polls once per scheduling round: any increase means
// a replica just dropped out, so the sustainable batch quota shrank
// whatever the latency EWMA still says. The read is one atomic load —
// safe at any polling rate.
func (r *Router) BreakerOpens() int64 { return r.breakerOpens.Load() }

// SizerSignal is the batch-sizer-facing slice of the router's health
// state: how much capacity is live, how much is cooling down, and the
// fleet's achievable per-batch latency.
type SizerSignal struct {
	// HealthyReplicas counts replicas currently admitting traffic;
	// OpenBreakers counts replicas excluded while their breaker cools.
	HealthyReplicas, OpenBreakers int
	// BreakerOpens is the cumulative open-transition count (see the
	// method of the same name).
	BreakerOpens int64
	// EWMALatencySeconds is the lowest per-batch latency EWMA among
	// healthy measured replicas (0 when none has served traffic yet) —
	// the "flat" reference a sizer can compare a round's observed batch
	// latency against.
	EWMALatencySeconds float64
	// Replicas is the per-replica breakdown, indexed by replica — the
	// signal a per-replica quota controller needs to scope a shrink to
	// the member that actually dropped out.
	Replicas []ReplicaSignal
}

// ReplicaSignal is one replica's slice of the sizer-facing signal.
type ReplicaSignal struct {
	// Replica is the replica's index; Name its configured label.
	Replica int
	Name    string
	// Healthy reports whether the replica currently admits traffic.
	Healthy bool
	// BreakerOpens is the replica's cumulative open-transition count.
	BreakerOpens int64
	// EWMALatencySeconds is the replica's per-batch latency EWMA.
	EWMALatencySeconds float64
	// Weight is the replica's effective capacity weight.
	Weight float64
}

// SizerSignal snapshots the sizer-facing health signal.
func (r *Router) SizerSignal() SizerSignal {
	sig := SizerSignal{
		BreakerOpens: r.breakerOpens.Load(),
		Replicas:     make([]ReplicaSignal, 0, len(r.replicas)),
	}
	for i, rep := range r.replicas {
		rep.mu.Lock()
		rs := ReplicaSignal{
			Replica:            i,
			Name:               rep.name,
			Healthy:            rep.state != Open,
			BreakerOpens:       rep.opens,
			EWMALatencySeconds: rep.ewmaSeconds,
			Weight:             capacityWeightLocked(rep),
		}
		if rep.state == Open {
			sig.OpenBreakers++
		} else {
			sig.HealthyReplicas++
			if rep.ewmaSeconds > 0 && (sig.EWMALatencySeconds == 0 || rep.ewmaSeconds < sig.EWMALatencySeconds) {
				sig.EWMALatencySeconds = rep.ewmaSeconds
			}
		}
		rep.mu.Unlock()
		sig.Replicas = append(sig.Replicas, rs)
	}
	return sig
}
