package router

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/exsample/exsample/backend"
)

func heteroFleet(n int, weights []float64, delays []time.Duration, maxBatch []int) ([]*fakeBackend, []ReplicaSpec) {
	fakes := make([]*fakeBackend, n)
	specs := make([]ReplicaSpec, n)
	for i := range fakes {
		fakes[i] = &fakeBackend{name: specName(i)}
		if delays != nil {
			fakes[i].delay = delays[i]
		}
		if maxBatch != nil {
			fakes[i].hints = backend.Hints{MaxBatch: maxBatch[i]}
		}
		specs[i] = ReplicaSpec{Backend: fakes[i], Name: fakes[i].name}
		if weights != nil {
			specs[i].Weight = weights[i]
		}
	}
	return fakes, specs
}

func specName(i int) string {
	if i == 0 {
		return "fast"
	}
	return "slow-" + string(rune('0'+i))
}

func TestRouterSpecsValidation(t *testing.T) {
	_, bs := fleet(2)
	_, specs := heteroFleet(2, nil, nil, nil)
	if _, err := New(Config{Replicas: bs, Specs: specs}); err == nil {
		t.Error("Specs combined with Replicas accepted")
	}
	if _, err := New(Config{Specs: []ReplicaSpec{{Backend: bs[0], Weight: -1}}}); err == nil {
		t.Error("negative Weight accepted")
	}
	if _, err := New(Config{Specs: []ReplicaSpec{{}}}); err == nil {
		t.Error("nil Specs backend accepted")
	}
	if _, err := New(Config{Replicas: bs, ScatterMinSlice: -1}); err == nil {
		t.Error("negative ScatterMinSlice accepted")
	}
}

// TestPickWeightShares pins the pick shares on 1-fast+3-slow fleets: the
// fast replica draws ~4x the batches once warmed, the cold-start rotation
// interleaves by weight, and an open breaker redistributes its share
// across the surviving siblings evenly.
func TestPickWeightShares(t *testing.T) {
	t.Run("cold-start-explicit-weights", func(t *testing.T) {
		// Equal measured latency, explicit 4:1:1:1 weights: the weighted
		// rotation warms everyone, then the weight term alone makes the
		// fast replica's load 4x lighter and it takes the remainder.
		fakes, specs := heteroFleet(4, []float64{4, 1, 1, 1},
			[]time.Duration{time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond}, nil)
		r, err := New(Config{Specs: specs})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		const batches = 40
		for i := 0; i < batches; i++ {
			if _, err := r.DetectBatch(context.Background(), "car", []int64{int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		var total int64
		for i, f := range fakes {
			got := f.calls.Load()
			total += got
			if got < coldRequests {
				t.Errorf("replica %d served %d batches, want >= %d", i, got, coldRequests)
			}
			if i > 0 && got > 5 {
				t.Errorf("slow replica %d served %d batches, want <= 5", i, got)
			}
		}
		if total != batches {
			t.Fatalf("fleet served %d batches, want %d", total, batches)
		}
		if fast := fakes[0].calls.Load(); fast < 25 {
			t.Errorf("fast replica served %d of %d batches, want >= 25", fast, batches)
		}
	})

	t.Run("warmed-ewma-derived-weights", func(t *testing.T) {
		// No explicit weights: after the cold rotation the measured
		// per-frame EWMA (1ms vs 4ms) is the capacity signal, and the
		// fast replica draws the remainder on its own.
		fakes, specs := heteroFleet(4, nil,
			[]time.Duration{time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}, nil)
		r, err := New(Config{Specs: specs})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		const batches = 30
		for i := 0; i < batches; i++ {
			if _, err := r.DetectBatch(context.Background(), "car", []int64{int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		var total int64
		for i, f := range fakes {
			got := f.calls.Load()
			total += got
			if got < coldRequests {
				t.Errorf("replica %d served %d batches, want >= %d", i, got, coldRequests)
			}
			if i > 0 && got > 6 {
				t.Errorf("slow replica %d served %d batches, want <= 6", i, got)
			}
		}
		if total != batches {
			t.Fatalf("fleet served %d batches, want %d", total, batches)
		}
		if fast := fakes[0].calls.Load(); fast < 15 {
			t.Errorf("fast replica served %d of %d batches, want >= 15", fast, batches)
		}
	})

	t.Run("fast-breaker-open", func(t *testing.T) {
		// The 4x replica dies: its breaker opens on the first failure and
		// the three equal slow siblings split the traffic evenly.
		fakes, specs := heteroFleet(4, []float64{4, 1, 1, 1},
			[]time.Duration{0, time.Millisecond, time.Millisecond, time.Millisecond}, nil)
		fakes[0].dead.Store(true)
		r, err := New(Config{Specs: specs, FailureThreshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		const batches = 30
		for i := 0; i < batches; i++ {
			if _, err := r.DetectBatch(context.Background(), "car", []int64{int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if got := fakes[0].calls.Load(); got > 2 {
			t.Errorf("dead fast replica called %d times, want <= 2", got)
		}
		if st := r.Stats()[0]; st.State != Open || st.BreakerOpens == 0 {
			t.Errorf("fast replica state %v opens %d, want open breaker", st.State, st.BreakerOpens)
		}
		for i := 1; i < 4; i++ {
			if got := fakes[i].calls.Load(); got < 6 {
				t.Errorf("surviving replica %d served %d batches, want >= 6 (even split)", i, got)
			}
		}
	})
}

// TestScatterSplitsAcrossReplicas: one large batch fans out to every
// healthy replica proportional to weight and reassembles in frame order.
func TestScatterSplitsAcrossReplicas(t *testing.T) {
	fakes, specs := heteroFleet(4, []float64{4, 1, 1, 1}, nil, nil)
	r, err := New(Config{Specs: specs, Scatter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	frames := make([]int64, 64)
	for i := range frames {
		frames[i] = int64(i * 3)
	}
	dets, costs, err := r.DetectBatchCost(context.Background(), "car", frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != len(frames) || len(costs) != len(frames) {
		t.Fatalf("got %d dets / %d costs for %d frames", len(dets), len(costs), len(frames))
	}
	for i, fr := range frames {
		want := 0
		if fr%2 == 0 {
			want = 1
		}
		if len(dets[i]) != want {
			t.Fatalf("frame %d (pos %d): %d detections, want %d — reassembly out of order?", fr, i, len(dets[i]), want)
		}
		if want == 1 && dets[i][0].Frame != fr {
			t.Fatalf("pos %d carries frame %d, want %d", i, dets[i][0].Frame, fr)
		}
	}
	for i, f := range fakes {
		if f.calls.Load() == 0 {
			t.Errorf("replica %d served no slice of the scattered batch", i)
		}
	}
	if got := r.Scatters(); got != 1 {
		t.Errorf("Scatters() = %d, want 1", got)
	}
	var slices int64
	for _, st := range r.Stats() {
		slices += st.Slices
	}
	if slices != 4 {
		t.Errorf("served slices total %d, want 4", slices)
	}
}

// TestScatterHints: scatter off keeps the conservative min MaxBatch
// (every replica must take a whole batch); scatter on reports the fleet
// aggregate, and any unbounded replica makes the aggregate unbounded.
func TestScatterHints(t *testing.T) {
	_, specs := heteroFleet(3, nil, nil, []int{16, 64, 32})
	off, err := New(Config{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if got := off.Hints().MaxBatch; got != 16 {
		t.Errorf("scatter-off MaxBatch = %d, want conservative min 16", got)
	}
	on, err := New(Config{Specs: specs, Scatter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	if got := on.Hints().MaxBatch; got != 112 {
		t.Errorf("scatter-on MaxBatch = %d, want aggregate 112", got)
	}
	_, unbounded := heteroFleet(3, nil, nil, []int{16, 0, 32})
	onU, err := New(Config{Specs: unbounded, Scatter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer onU.Close()
	if got := onU.Hints().MaxBatch; got != 0 {
		t.Errorf("scatter-on MaxBatch with an unbounded replica = %d, want 0", got)
	}
}

// TestScatterRespectsReplicaCaps: slices never exceed a replica's own
// MaxBatch; overflow redistributes to siblings with headroom.
func TestScatterRespectsReplicaCaps(t *testing.T) {
	fakes, specs := heteroFleet(3, []float64{8, 1, 1}, nil, []int{10, 32, 32})
	r, err := New(Config{Specs: specs, Scatter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	frames := make([]int64, 48)
	for i := range frames {
		frames[i] = int64(i)
	}
	if _, err := r.DetectBatch(context.Background(), "car", frames); err != nil {
		t.Fatal(err)
	}
	// The heavy replica's ideal share (38) is capped at 10; the rest
	// lands on the siblings.
	if got := fakes[0].maxSeen(); got > 10 {
		t.Errorf("capped replica served a %d-frame slice, cap 10", got)
	}
}

// TestScatterSliceFailover: a slice landing on a dying replica is rescued
// by an untried sibling; the batch succeeds with correct results.
func TestScatterSliceFailover(t *testing.T) {
	fakes, specs := heteroFleet(4, []float64{1, 1, 1, 1}, nil, nil)
	fakes[2].dead.Store(true)
	r, err := New(Config{Specs: specs, Scatter: true, FailureThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	frames := make([]int64, 64)
	for i := range frames {
		frames[i] = int64(i)
	}
	dets, err := r.DetectBatch(context.Background(), "car", frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range frames {
		want := 0
		if fr%2 == 0 {
			want = 1
		}
		if len(dets[i]) != want {
			t.Fatalf("frame %d: %d detections after failover, want %d", fr, len(dets[i]), want)
		}
	}
	if got := r.Failovers(); got < 1 {
		t.Errorf("Failovers() = %d, want >= 1 (a slice was rescued)", got)
	}
	if st := r.Stats()[2]; st.State != Open {
		t.Errorf("dead replica state %v, want open", st.State)
	}
}

// TestScatterPartialFailureFailsWholeBatch: with failover exhausted, one
// bad slice fails the entire batch — no partial results ever escape.
func TestScatterPartialFailureFailsWholeBatch(t *testing.T) {
	fakes, specs := heteroFleet(4, []float64{1, 1, 1, 1}, nil, nil)
	r, err := New(Config{Specs: specs, Scatter: true, FailureThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every replica is dead: each slice exhausts its failover budget and
	// the whole batch must fail with no partial results.
	for i := range fakes {
		fakes[i].dead.Store(true)
	}
	defer r.Close()
	frames := make([]int64, 64)
	for i := range frames {
		frames[i] = int64(i)
	}
	dets, _, err := r.DetectBatchCost(context.Background(), "car", frames)
	if err == nil {
		t.Fatal("scattered batch with dead slices returned no error")
	}
	if dets != nil {
		t.Fatalf("partial results escaped a failed scattered batch: %d rows", len(dets))
	}
	if !strings.Contains(err.Error(), "scatter") && !strings.Contains(err.Error(), "router") {
		t.Errorf("error %q does not identify the router", err)
	}
}

// TestScatterSmallBatchUsesSinglePath: batches under 2*ScatterMinSlice
// are not worth splitting and route whole, exactly like scatter off.
func TestScatterSmallBatchUsesSinglePath(t *testing.T) {
	fakes, specs := heteroFleet(4, nil, nil, nil)
	r, err := New(Config{Specs: specs, Scatter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.DetectBatch(context.Background(), "car", []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, f := range fakes {
		total += f.calls.Load()
	}
	if total != 1 {
		t.Errorf("small batch touched %d replicas, want 1 (single path)", total)
	}
	if got := r.Scatters(); got != 0 {
		t.Errorf("Scatters() = %d, want 0", got)
	}
}

// TestSizerSignalPerReplica: the sizer-facing signal carries per-replica
// breaker opens and capacity weights.
func TestSizerSignalPerReplica(t *testing.T) {
	fakes, specs := heteroFleet(3, []float64{4, 1, 1}, nil, nil)
	fakes[1].dead.Store(true)
	r, err := New(Config{Specs: specs, Scatter: true, FailureThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.ScatterEnabled() {
		t.Fatal("ScatterEnabled() = false with Scatter on")
	}
	frames := make([]int64, 32)
	for i := range frames {
		frames[i] = int64(i)
	}
	if _, err := r.DetectBatch(context.Background(), "car", frames); err != nil {
		t.Fatal(err)
	}
	sig := r.SizerSignal()
	if len(sig.Replicas) != 3 {
		t.Fatalf("SizerSignal carries %d replicas, want 3", len(sig.Replicas))
	}
	if sig.Replicas[0].Weight != 4 || sig.Replicas[2].Weight != 1 {
		t.Errorf("weights = %v / %v, want 4 / 1", sig.Replicas[0].Weight, sig.Replicas[2].Weight)
	}
	if sig.Replicas[1].BreakerOpens != 1 || sig.Replicas[1].Healthy {
		t.Errorf("dead replica signal = %+v, want 1 open and unhealthy", sig.Replicas[1])
	}
	if sig.Replicas[0].BreakerOpens != 0 {
		t.Errorf("healthy replica charged %d opens", sig.Replicas[0].BreakerOpens)
	}
	opens := r.ReplicaOpens()
	if len(opens) != 3 || opens[1] != 1 || opens[0] != 0 {
		t.Errorf("ReplicaOpens() = %v, want [0 1 0]", opens)
	}
	weights := r.CapacityWeights()
	if len(weights) != 3 || weights[0] != 4 {
		t.Errorf("CapacityWeights() = %v, want explicit [4 1 1]", weights)
	}
}

// TestScatterFailoverSoak hammers a scattering router from many
// goroutines while replicas die and heal — run under -race in CI, it is
// the concurrency regression net for the scatter path.
func TestScatterFailoverSoak(t *testing.T) {
	fakes, specs := heteroFleet(4, []float64{2, 1, 1, 1},
		[]time.Duration{100 * time.Microsecond, 200 * time.Microsecond, 200 * time.Microsecond, 200 * time.Microsecond}, nil)
	r, err := New(Config{
		Specs:            specs,
		Scatter:          true,
		FailureThreshold: 2,
		FailoverRetries:  3,
		Cooldown:         10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		victims := []int{1, 3, 2}
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			v := victims[k%len(victims)]
			fakes[v].dead.Store(true)
			time.Sleep(10 * time.Millisecond)
			fakes[v].dead.Store(false)
		}
	}()
	var workers sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			frames := make([]int64, 48)
			for b := 0; b < 25; b++ {
				for i := range frames {
					frames[i] = int64(g*10000 + b*100 + i)
				}
				dets, err := r.DetectBatch(context.Background(), "car", frames)
				if err != nil {
					errs <- err
					return
				}
				for i, fr := range frames {
					want := 0
					if fr%2 == 0 {
						want = 1
					}
					if len(dets[i]) != want {
						errs <- errOutOfOrder(fr, len(dets[i]), want)
						return
					}
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	chaos.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type scatterOrderError struct {
	frame     int64
	got, want int
}

func (e scatterOrderError) Error() string {
	return "scatter soak: frame result out of order"
}

func errOutOfOrder(frame int64, got, want int) error {
	return scatterOrderError{frame: frame, got: got, want: want}
}
