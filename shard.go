package exsample

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/shard"
	"github.com/exsample/exsample/internal/track"
)

// ShardedSource composes N datasets into one logical repository: shard i's
// frames, chunks and ground-truth ids are remapped into a shared global
// space, so one query's Thompson sampler treats every shard's chunks as
// arms of a single bandit while detector calls route back to the owning
// shard. This is the paper's observation taken to production scale — a
// chunk is "just another source of Propose/Detect work", so a shard (a
// machine's worth of chunks) is too.
//
// The shard set is elastic. AddShard attaches a new dataset while queries
// are running: its frames, chunks and truth ids append past the existing
// global space (addresses never move), and every in-flight query picks the
// new chunks up at its next round boundary with fresh belief arms — its
// existing per-chunk statistics, proxy scores and memo-cache entries carry
// across untouched. DrainShard retires a shard the same way: batches
// already in flight finish and apply, but the shard's chunks are fenced
// out of every sampler and its frames receive no new picks; the shard's
// data stays resident so old detections remain extendable and decodable.
// Each mutation publishes a new generation-counted snapshot; queries
// compare generations at round boundaries, so a stable topology costs one
// atomic load per pick.
//
// Determinism is unchanged: a seeded query over a 1-shard source is
// byte-identical to Dataset.Search on the underlying dataset, a
// multi-shard query is reproducible for a fixed seed and shard order, and
// — because fenced chunks are skipped before the sampling policy draws any
// randomness — attaching and immediately draining a shard mid-query leaves
// a seeded Report byte-identical to a run that never saw the churn.
// Objects never span shards (frame ranges are disjoint), so the
// discriminator's distinct-object guarantee is preserved; ground-truth
// populations simply add.
//
// ShardedSource is safe for concurrent use by any number of queries, and
// AddShard/DrainShard may be called concurrently with running queries.
type ShardedSource struct {
	name string
	qs   *querySource

	// mu serializes topology mutations (AddShard, DrainShard); readers go
	// through the topo pointer and never block.
	mu   sync.Mutex
	topo atomic.Pointer[shardedTopo]

	// subs are append-notification callbacks (keyed for cancellation):
	// standing queries subscribe so a segment attach wakes them out of
	// their park. Callbacks run after the new topology is published, off
	// the topology lock, and must be cheap and non-blocking.
	subsMu  sync.Mutex
	subs    map[int]func()
	nextSub int
}

// onAppend registers fn to run after every shard attach that adds
// sampleable frames, returning a cancel function. It is the wake-on-append
// seam for standing queries; fn runs on the appender's goroutine.
func (s *ShardedSource) onAppend(fn func()) (cancel func()) {
	s.subsMu.Lock()
	defer s.subsMu.Unlock()
	if s.subs == nil {
		s.subs = make(map[int]func())
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = fn
	return func() {
		s.subsMu.Lock()
		delete(s.subs, id)
		s.subsMu.Unlock()
	}
}

// notifyAppend runs every subscribed append callback.
func (s *ShardedSource) notifyAppend() {
	s.subsMu.Lock()
	for _, fn := range s.subs {
		fn()
	}
	s.subsMu.Unlock()
}

// shardedTopo is one immutable generation of the composed repository:
// the address snapshot plus the slot-aligned member list and the merged
// ground-truth populations. Mutations build a fresh shardedTopo and
// publish it atomically.
type shardedTopo struct {
	snap    *shard.Snapshot
	members []*shardMember
	counts  map[string]int
}

// shardMember is one attached dataset and its per-shard counters. Members
// are append-only: a slot, once assigned, always refers to the same
// dataset, draining or not.
type shardMember struct {
	ds      *Dataset
	detects atomic.Int64 // detector invocations routed here (cache hits excluded)
	// opensBase is the member backend's cumulative breaker-open count at
	// the moment it joined the source. The source-level capacity signal
	// sums (current - base) per member, so attaching a shard whose router
	// already recorded breaker opens in a previous life does not jump the
	// total and fire a phantom capacity-loss shrink on running adaptive
	// queries.
	opensBase int64
}

// newShardMember snapshots the backend's breaker baseline at attach time.
func newShardMember(d *Dataset) *shardMember {
	m := &shardMember{ds: d}
	if sig, ok := d.be.(capacitySignaler); ok {
		m.opensBase = sig.BreakerOpens()
	}
	return m
}

// shardPart builds the address-space description of a dataset.
func shardPart(d *Dataset) shard.Part {
	bound := 0
	for _, in := range d.inner.Instances {
		if in.ID+1 > bound {
			bound = in.ID + 1
		}
	}
	return shard.Part{
		NumFrames:    d.NumFrames(),
		Chunks:       d.inner.Chunks,
		TruthIDBound: bound,
	}
}

// NewShardedSource composes the given datasets, in order, into one
// searchable source. Every dataset keeps its own detector, noise model and
// cost model; frames are charged at their owning shard's rates. One global
// property is taken from shard 0: the recording rate used for random+'s
// hour-granularity stratification — compose shards of equal FPS when that
// baseline's stratum boundaries matter. More shards can be attached later
// with AddShard and retired with DrainShard.
func NewShardedSource(name string, shards ...*Dataset) (*ShardedSource, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("exsample: sharded source needs at least one shard")
	}
	parts := make([]shard.Part, len(shards))
	counts := make(map[string]int)
	members := make([]*shardMember, len(shards))
	for i, d := range shards {
		if d == nil {
			return nil, fmt.Errorf("exsample: shard %d is nil", i)
		}
		parts[i] = shardPart(d)
		for class, n := range d.inner.CountByClass {
			counts[class] += n
		}
		members[i] = newShardMember(d)
	}
	m, err := shard.New(parts)
	if err != nil {
		return nil, err
	}
	s := &ShardedSource{name: name}
	status := make([]shard.Status, len(shards))
	s.topo.Store(&shardedTopo{
		snap:    &shard.Snapshot{Gen: 1, Map: m, Status: status},
		members: members,
		counts:  counts,
	})
	cacheable := true
	for _, d := range shards {
		if d.failAfter > 0 {
			cacheable = false
		}
	}
	s.qs = &querySource{
		id:        sourceIDs.Add(1),
		contentID: shardedContentID(name, shards),
		name:      name,
		numFrames: m.NumFrames(),
		fps:       shards[0].inner.Profile.FPS,
		chunks:    m.Chunks(),
		numShards: len(shards),
		cacheable: cacheable,
		maxBatch: func() int {
			// The tightest positive per-shard bound: every shard must
			// accept whatever slice of a round lands on it.
			min := 0
			for _, m := range s.topo.Load().members {
				if m.ds.be == nil {
					continue
				}
				if mb := m.ds.be.Hints().MaxBatch; mb > 0 && (min == 0 || mb < min) {
					min = mb
				}
			}
			return min
		},
		breakerOpens: func() int64 {
			// Sum of per-member deltas since attach: a valid edge signal
			// even as the member set grows mid-run.
			var n int64
			for _, m := range s.topo.Load().members {
				if sig, ok := m.ds.be.(capacitySignaler); ok {
					n += sig.BreakerOpens() - m.opensBase
				}
			}
			return n
		},
		replicaFleets: func() []shardReplicas {
			var out []shardReplicas
			for i, m := range s.topo.Load().members {
				sig, ok := m.ds.be.(replicaSignaler)
				if !ok {
					continue
				}
				out = append(out, shardReplicas{
					shard:   i,
					scatter: sig.ScatterEnabled(),
					weights: sig.CapacityWeights(),
					opens:   sig.ReplicaOpens(),
				})
			}
			return out
		},
		shardOf: func(frame int64) int {
			sh, _ := s.topo.Load().snap.Map.Locate(frame)
			return sh
		},
		topology: func() *shard.Snapshot {
			return s.topo.Load().snap
		},
		decodeCost: func(frame int64) float64 {
			t := s.topo.Load()
			sh, local := t.snap.Map.Locate(frame)
			return t.members[sh].ds.dec.Cost(local)
		},
		scanSeconds: s.scanSeconds,
		groundTruth: s.GroundTruthCount,
		shardTruth: func(class string, shard int) int {
			return s.topo.Load().members[shard].ds.inner.CountByClass[class]
		},
		newDetector: s.newDetector,
		newExtender: s.newExtender,
		newScorer:   s.newScorer,
	}
	return s, nil
}

// shardedContentID composes the initial members' content addresses, in
// order, under the source's name — the composed repository's stable content
// address (see querySource.contentID). Later attaches keep the id: frames
// append past the existing space, so the original members' keys stay valid,
// and cross-process sharing of the appended range is sound exactly when the
// processes attach the same shards in the same order — the caveat the
// shared-tier docs carry.
func shardedContentID(name string, shards []*Dataset) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "sharded|%s|", name)
	for _, d := range shards {
		fmt.Fprintf(h, "%016x|", d.qs.contentID)
	}
	return h.Sum64()
}

// AddShard attaches one more dataset to the composed repository and
// returns its shard index. The new shard's frames, chunks and truth ids
// append past the existing global space, so no running query's state is
// invalidated; every query discovers the new chunks at its next round
// boundary and starts sampling them from the belief prior. Queries
// submitted after AddShard returns see the enlarged repository (classes
// and ground-truth populations included) immediately.
//
// Failure-injected datasets (WithDetectorFailureAfter) must be present at
// construction — attaching one later would silently poison the memo cache
// of queries already running with cacheable output — and are rejected.
func (s *ShardedSource) AddShard(d *Dataset) (int, error) {
	return s.addShardStatus(d, shard.Active)
}

// addShardStatus is AddShard with an explicit initial lifecycle state —
// the seam the stream motion gate uses to attach a dead segment already
// fenced, so no query can sample it during the window between the attach
// and a separate gate flip. Attaching an Active shard notifies append
// subscribers (parked standing queries wake); a Gated attach adds nothing
// sampleable and stays silent.
func (s *ShardedSource) addShardStatus(d *Dataset, st shard.Status) (int, error) {
	if d == nil {
		return 0, fmt.Errorf("exsample: cannot attach a nil shard")
	}
	if d.failAfter > 0 {
		return 0, fmt.Errorf("exsample: failure-injected shards must be composed at construction, not attached live")
	}
	s.mu.Lock()
	old := s.topo.Load()
	m, err := old.snap.Map.Extend(shardPart(d))
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	slot := len(old.members)
	counts := make(map[string]int, len(old.counts))
	for class, n := range old.counts {
		counts[class] = n
	}
	for class, n := range d.inner.CountByClass {
		counts[class] += n
	}
	status := append(append(make([]shard.Status, 0, slot+1), old.snap.Status...), st)
	members := append(append(make([]*shardMember, 0, slot+1), old.members...), newShardMember(d))
	s.topo.Store(&shardedTopo{
		snap:    &shard.Snapshot{Gen: old.snap.Gen + 1, Map: m, Status: status},
		members: members,
		counts:  counts,
	})
	s.mu.Unlock()
	if st == shard.Active {
		s.notifyAppend()
	}
	return slot, nil
}

// setShardStatus flips shard i between Active and Gated — the reversible
// fence behind the stream motion gate. Draining is terminal and owned by
// DrainShard: a draining shard cannot be flipped, and this method cannot
// drain. Readmitting a shard to Active notifies append subscribers, since
// its frames just became sampleable again.
func (s *ShardedSource) setShardStatus(i int, st shard.Status) error {
	if st != shard.Active && st != shard.Gated {
		return fmt.Errorf("exsample: setShardStatus only flips between active and gated, got %v", st)
	}
	s.mu.Lock()
	old := s.topo.Load()
	if i < 0 || i >= len(old.members) {
		s.mu.Unlock()
		return fmt.Errorf("exsample: shard %d out of range [0, %d)", i, len(old.members))
	}
	if old.snap.Status[i] == shard.Draining {
		s.mu.Unlock()
		return fmt.Errorf("exsample: shard %d is draining and cannot be regated", i)
	}
	if old.snap.Status[i] == st {
		s.mu.Unlock()
		return nil
	}
	status := append(make([]shard.Status, 0, len(old.snap.Status)), old.snap.Status...)
	status[i] = st
	s.topo.Store(&shardedTopo{
		snap:    &shard.Snapshot{Gen: old.snap.Gen + 1, Map: old.snap.Map, Status: status},
		members: old.members,
		counts:  old.counts,
	})
	s.mu.Unlock()
	if st == shard.Active {
		s.notifyAppend()
	}
	return nil
}

// DrainShard retires shard i: detector batches already in flight finish
// and their results apply normally, but the shard's chunks are fenced out
// of every running query's sampler at its next round boundary and no new
// picks route to the shard. The shard's dataset stays resident — frames
// already processed remain decodable and their detections extendable — so
// draining never perturbs the belief state built from the shard's past
// samples. Draining the last active shard is allowed; new bounded queries
// then fail with ErrNoActiveShards until a shard is attached, while
// standing queries park and wait.
func (s *ShardedSource) DrainShard(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.topo.Load()
	if i < 0 || i >= len(old.members) {
		return fmt.Errorf("exsample: shard %d out of range [0, %d)", i, len(old.members))
	}
	if old.snap.Status[i] == shard.Draining {
		return fmt.Errorf("exsample: shard %d is already draining", i)
	}
	status := append(make([]shard.Status, 0, len(old.snap.Status)), old.snap.Status...)
	status[i] = shard.Draining
	s.topo.Store(&shardedTopo{
		snap:    &shard.Snapshot{Gen: old.snap.Gen + 1, Map: old.snap.Map, Status: status},
		members: old.members,
		counts:  old.counts,
	})
	return nil
}

// Generation returns the current topology generation: 1 at construction,
// incremented by every AddShard/DrainShard. Running queries re-fence their
// samplers when they observe the generation move.
func (s *ShardedSource) Generation() uint64 { return s.topo.Load().snap.Gen }

// Name returns the composed source's name.
func (s *ShardedSource) Name() string { return s.name }

// NumFrames returns the total frame count across all attached shards,
// draining ones included (their frames remain addressable).
func (s *ShardedSource) NumFrames() int64 { return s.topo.Load().snap.Map.NumFrames() }

// NumChunks returns the total native chunk count across attached shards.
func (s *ShardedSource) NumChunks() int { return len(s.topo.Load().snap.Map.Chunks()) }

// NumShards returns the number of attached shards, draining ones included.
func (s *ShardedSource) NumShards() int { return len(s.topo.Load().members) }

// NumActiveShards returns how many shards currently accept new picks.
func (s *ShardedSource) NumActiveShards() int { return s.topo.Load().snap.NumActive() }

// Shard returns the i-th underlying dataset.
func (s *ShardedSource) Shard(i int) *Dataset { return s.topo.Load().members[i].ds }

// Hours returns the repository length in hours of video across shards.
func (s *ShardedSource) Hours() float64 {
	var h float64
	for _, mem := range s.topo.Load().members {
		h += mem.ds.Hours()
	}
	return h
}

// Classes lists the union of the shards' searchable classes, sorted.
func (s *ShardedSource) Classes() []string {
	counts := s.topo.Load().counts
	out := make([]string, 0, len(counts))
	for c := range counts {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// GroundTruthCount returns the summed distinct-instance population of a
// class across attached shards. Draining shards stay in the total: their
// data is still resident, and shrinking a running query's recall
// denominator mid-flight would make recall non-monotonic.
func (s *ShardedSource) GroundTruthCount(class string) (int, error) {
	n, ok := s.topo.Load().counts[class]
	if !ok {
		return 0, fmt.Errorf("exsample: sharded source %q has no class %q", s.name, class)
	}
	return n, nil
}

// Search runs a query against the composed repository; see Dataset.Search.
func (s *ShardedSource) Search(q Query, opts Options) (*Report, error) {
	return SearchSource(s, q, opts)
}

// NewSession prepares an incremental search over the composed repository.
func (s *ShardedSource) NewSession(q Query, opts Options) (*Session, error) {
	return NewSession(s, q, opts)
}

// querySource implements Source. It is nil-receiver-safe and returns nil
// for a zero-value ShardedSource, so the pipeline can reject uninitialized
// sources with a clear error instead of a panic.
func (s *ShardedSource) querySource() *querySource {
	if s == nil {
		return nil
	}
	return s.qs
}

// ShardStat is one shard's contribution to the queries run so far.
type ShardStat struct {
	// Shard is the shard index in attachment order.
	Shard int
	// Name is the underlying dataset's profile name.
	Name string
	// Status is the shard's lifecycle state: "active", "draining" or
	// "gated" (fenced by the stream motion gate).
	Status string
	// NumFrames is the shard's repository size.
	NumFrames int64
	// DetectCalls counts detector invocations routed to the shard across
	// all queries on this source (memo-cache hits never reach a shard and
	// are not counted).
	DetectCalls int64
}

// ShardStats snapshots the per-shard detector traffic and lifecycle state
// — the fan-out visibility knob for dashboards and the fairness tests.
func (s *ShardedSource) ShardStats() []ShardStat {
	t := s.topo.Load()
	out := make([]ShardStat, len(t.members))
	for i, mem := range t.members {
		out[i] = ShardStat{
			Shard:       i,
			Name:        mem.ds.Name(),
			Status:      t.snap.Status[i].String(),
			NumFrames:   mem.ds.NumFrames(),
			DetectCalls: mem.detects.Load(),
		}
	}
	return out
}

// scanSeconds charges a proxy-scoring pass over a global frame range at
// each overlapped shard's own scan throughput. Draining shards still
// charge — their data remains scannable.
func (s *ShardedSource) scanSeconds(start, end int64) float64 {
	t := s.topo.Load()
	m := t.snap.Map
	var total float64
	for i, mem := range t.members {
		off := m.Offset(i)
		lo, hi := max(start, off), min(end, off+m.ShardFrames(i))
		if hi > lo {
			total += mem.ds.cost.ScanSeconds(hi - lo)
		}
	}
	return total
}

// newDetector builds the fan-out detector: frames route to the owning
// shard's own batched detector — its attached Backend when one is
// configured, otherwise its simulated detector (with that shard's noise,
// cost and failure injection) — and detections come back remapped into
// global coordinates. Per-shard detectors are built lazily per query, so a
// shard attached after the query started is served the moment a pick
// routes to it. This is where a ShardedSource routes each shard to its own
// endpoint: every shard keeps its own backend.
func (s *ShardedSource) newDetector(class string) (detect.BatchDetector, error) {
	return &shardedDetector{src: s, class: class}, nil
}

// newExtender builds the discriminator's tracker model: a detection is
// extended by its owning shard's ground-truth tracker and the predicted
// track is translated back to global frames. The coverage parameter is
// validated eagerly; per-shard extenders are built lazily so detections
// from late-attached shards extend too.
func (s *ShardedSource) newExtender(coverage float64) (discrim.Extender, error) {
	// Validate coverage once, against the first member — construction can
	// only fail on the parameter, which is identical for every shard.
	first, err := discrim.NewTruthExtender(s.topo.Load().members[0].ds.inner.Index, coverage)
	if err != nil {
		return nil, err
	}
	return &shardedExtender{src: s, coverage: coverage, exts: []discrim.Extender{first}}, nil
}

// newScorer builds the routed proxy scorer. Shard 0 keeps the caller's
// seed unchanged so a 1-shard source scores byte-identically to its
// underlying dataset; later shards decorrelate their hash noise by slot,
// so a shard's scores do not depend on when it was attached. Per-shard
// scorers are built lazily for the same reason as detectors.
func (s *ShardedSource) newScorer(class string, quality float64, seed uint64) (func(int64) float64, error) {
	// Validate (class, quality) once against shard 0, like the eager path.
	first, err := s.topo.Load().members[0].ds.qs.newScorer(class, quality, seed)
	if err != nil {
		return nil, err
	}
	sc := &shardedScorer{src: s, class: class, quality: quality, seed: seed}
	sc.scores.Store(&[]func(int64) float64{first})
	return sc.score, nil
}

// shardedScorer routes per-frame proxy scores to lazily built per-shard
// scorers. score is a hot path (a proxy scan calls it once per repository
// frame), so the built scorers live behind an atomic copy-on-write slice:
// the fast path is one extra atomic load over the old eager design, and
// the mutex is taken only to build a late-attached shard's scorer.
type shardedScorer struct {
	src     *ShardedSource
	class   string
	quality float64
	seed    uint64

	scores atomic.Pointer[[]func(int64) float64]
	mu     sync.Mutex // serializes slow-path slice growth
}

func (sc *shardedScorer) score(frame int64) float64 {
	t := sc.src.topo.Load()
	sh, local := t.snap.Map.Locate(frame)
	if sp := *sc.scores.Load(); sh < len(sp) {
		return sp[sh](local)
	}
	return sc.scoreSlow(t, sh, local)
}

// scoreSlow grows the scorer slice to cover a late-attached shard.
func (sc *shardedScorer) scoreSlow(t *shardedTopo, sh int, local int64) float64 {
	sc.mu.Lock()
	cur := *sc.scores.Load()
	if sh < len(cur) {
		sc.mu.Unlock()
		return cur[sh](local)
	}
	next := append(make([]func(int64) float64, 0, sh+1), cur...)
	for len(next) <= sh {
		slot := len(next)
		score, err := t.members[slot].ds.qs.newScorer(sc.class, sc.quality,
			sc.seed+uint64(slot)*0x9e3779b97f4a7c15)
		if err != nil {
			// Unreachable after the eager validation (construction fails
			// only on quality, identical across shards); score the frame
			// as class-absent rather than panicking mid-query.
			score = func(int64) float64 { return 0 }
		}
		next = append(next, score)
	}
	sc.scores.Store(&next)
	sc.mu.Unlock()
	return next[sh](local)
}

// shardedDetector routes batches of global frames to per-shard batched
// detectors and remaps detections (frame and truth id) into the global
// space. A batch is regrouped so each shard receives ONE DetectBatch call
// covering all of its frames, in pick order, whatever the interleaving —
// so Search's batched loop gets per-shard wire batching even though its
// picks alternate shards, and the engine's already-grouped rounds pass
// through as a single group. Output positions follow the input, so
// regrouping never reorders results. DetectBatch is safe for concurrent
// use, like every shard detector it wraps. Each frame's cost comes from
// its owning shard's detector, so heterogeneous fleets are charged
// accurately.
//
// Per-shard detectors are built lazily under a mutex, which is what lets a
// query started before an AddShard route picks to the new shard without
// rebuilding its pipeline; frames of draining shards still resolve, so
// batches in flight across a drain finish normally.
type shardedDetector struct {
	src   *ShardedSource
	class string

	mu   sync.Mutex
	dets []detect.BatchDetector // slot-indexed, built on first use
}

// detector returns the slot's batched detector, building it on first use.
func (s *shardedDetector) detector(t *shardedTopo, slot int) (detect.BatchDetector, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.dets) <= slot {
		s.dets = append(s.dets, nil)
	}
	if s.dets[slot] == nil {
		det, err := t.members[slot].ds.newBatchDetector(s.class)
		if err != nil {
			return nil, err
		}
		s.dets[slot] = det
	}
	return s.dets[slot], nil
}

// DetectBatch implements detect.BatchDetector over the global frame space.
func (s *shardedDetector) DetectBatch(ctx context.Context, global []int64) ([]detect.FrameOutput, error) {
	// One topology load per batch: the append-only address space means a
	// snapshot taken here stays valid however the topology moves while the
	// batch is in flight.
	t := s.src.topo.Load()
	m := t.snap.Map
	// Carve the batch into per-shard groups (stable: a shard's frames keep
	// their relative order; groups appear in first-touch order).
	type group struct {
		sh    int
		local []int64
		idx   []int // positions in global / out
	}
	var groups []*group
	byShard := make(map[int]*group)
	for i, g := range global {
		sh, local := m.Locate(g)
		grp := byShard[sh]
		if grp == nil {
			grp = &group{sh: sh}
			byShard[sh] = grp
			groups = append(groups, grp)
		}
		grp.local = append(grp.local, local)
		grp.idx = append(grp.idx, i)
	}
	out := make([]detect.FrameOutput, len(global))
	for _, grp := range groups {
		det, err := s.detector(t, grp.sh)
		if err != nil {
			return nil, err
		}
		outs, err := det.DetectBatch(ctx, grp.local)
		if err != nil {
			return nil, err
		}
		if len(outs) != len(grp.local) {
			return nil, fmt.Errorf("exsample: shard %d returned %d results for a %d-frame batch", grp.sh, len(outs), len(grp.local))
		}
		t.members[grp.sh].detects.Add(int64(len(grp.local)))
		for k, fo := range outs {
			dets := make([]track.Detection, len(fo.Dets))
			for j, d := range fo.Dets {
				d.Frame = m.Global(grp.sh, d.Frame)
				d.TruthID = m.GlobalTruthID(grp.sh, d.TruthID)
				dets[j] = d
			}
			if len(dets) == 0 {
				dets = nil
			}
			out[grp.idx[k]] = detect.FrameOutput{Dets: dets, Cost: fo.Cost}
		}
	}
	return out, nil
}

// shardedExtender routes detections to per-shard tracker models and
// translates the predicted tracks back into global frames. Extenders are
// built lazily by slot so detections on late-attached shards extend too.
type shardedExtender struct {
	src      *ShardedSource
	coverage float64

	mu   sync.Mutex
	exts []discrim.Extender
}

// extender returns the slot's tracker model, building it on first use.
func (s *shardedExtender) extender(t *shardedTopo, slot int) discrim.Extender {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.exts) <= slot {
		next := len(s.exts)
		var ext discrim.Extender
		ext, err := discrim.NewTruthExtender(t.members[next].ds.inner.Index, s.coverage)
		if err != nil {
			// Unreachable after the eager coverage validation; fall back to
			// the no-extension model rather than panicking mid-query.
			ext = identityExtender{}
		}
		s.exts = append(s.exts, ext)
	}
	return s.exts[slot]
}

// identityExtender predicts a single-frame track — the defensive fallback
// for an extender that failed lazy construction.
type identityExtender struct{}

func (identityExtender) Extend(det track.Detection) discrim.PredictedTrack {
	return discrim.PredictedTrack{Start: det.Frame, End: det.Frame, StartBox: det.Box, EndBox: det.Box}
}

// Extend implements discrim.Extender over the global frame space.
func (s *shardedExtender) Extend(det track.Detection) discrim.PredictedTrack {
	t := s.src.topo.Load()
	m := t.snap.Map
	sh, local := m.Locate(det.Frame)
	ld := det
	ld.Frame = local
	ld.TruthID = m.LocalTruthID(sh, det.TruthID)
	tr := s.extender(t, sh).Extend(ld)
	tr.Start = m.Global(sh, tr.Start)
	tr.End = m.Global(sh, tr.End)
	return tr
}
