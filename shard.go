package exsample

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/shard"
	"github.com/exsample/exsample/internal/track"
)

// ShardedSource composes N datasets into one logical repository: shard i's
// frames, chunks and ground-truth ids are remapped into a shared global
// space, so one query's Thompson sampler treats every shard's chunks as
// arms of a single bandit while detector calls route back to the owning
// shard. This is the paper's observation taken to production scale — a
// chunk is "just another source of Propose/Detect work", so a shard (a
// machine's worth of chunks) is too.
//
// Determinism is unchanged: a seeded query over a 1-shard source is
// byte-identical to Dataset.Search on the underlying dataset, and a
// multi-shard query is reproducible for a fixed seed and shard order.
// Objects never span shards (frame ranges are disjoint), so the
// discriminator's distinct-object guarantee is preserved; ground-truth
// populations simply add.
//
// ShardedSource is safe for concurrent use by any number of queries.
type ShardedSource struct {
	name    string
	shards  []*Dataset
	m       *shard.Map
	counts  map[string]int
	detects []atomic.Int64 // per-shard detector invocations (cache hits excluded)
	qs      *querySource
}

// NewShardedSource composes the given datasets, in order, into one
// searchable source. Every dataset keeps its own detector, noise model and
// cost model; frames are charged at their owning shard's rates. One global
// property is taken from shard 0: the recording rate used for random+'s
// hour-granularity stratification — compose shards of equal FPS when that
// baseline's stratum boundaries matter.
func NewShardedSource(name string, shards ...*Dataset) (*ShardedSource, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("exsample: sharded source needs at least one shard")
	}
	parts := make([]shard.Part, len(shards))
	counts := make(map[string]int)
	for i, d := range shards {
		if d == nil {
			return nil, fmt.Errorf("exsample: shard %d is nil", i)
		}
		bound := 0
		for _, in := range d.inner.Instances {
			if in.ID+1 > bound {
				bound = in.ID + 1
			}
		}
		parts[i] = shard.Part{
			NumFrames:    d.NumFrames(),
			Chunks:       d.inner.Chunks,
			TruthIDBound: bound,
		}
		for class, n := range d.inner.CountByClass {
			counts[class] += n
		}
	}
	m, err := shard.New(parts)
	if err != nil {
		return nil, err
	}
	s := &ShardedSource{
		name:    name,
		shards:  append([]*Dataset(nil), shards...),
		m:       m,
		counts:  counts,
		detects: make([]atomic.Int64, len(shards)),
	}
	cacheable := true
	for _, d := range shards {
		if d.failAfter > 0 {
			cacheable = false
		}
	}
	s.qs = &querySource{
		id:        sourceIDs.Add(1),
		name:      name,
		numFrames: m.NumFrames(),
		fps:       shards[0].inner.Profile.FPS,
		chunks:    m.Chunks(),
		numShards: len(shards),
		cacheable: cacheable,
		shardOf: func(frame int64) int {
			sh, _ := m.Locate(frame)
			return sh
		},
		decodeCost: func(frame int64) float64 {
			sh, local := m.Locate(frame)
			return s.shards[sh].dec.Cost(local)
		},
		scanSeconds: s.scanSeconds,
		groundTruth: s.GroundTruthCount,
		newDetector: s.newDetector,
		newExtender: s.newExtender,
		newScorer:   s.newScorer,
	}
	return s, nil
}

// Name returns the composed source's name.
func (s *ShardedSource) Name() string { return s.name }

// NumFrames returns the total frame count across shards.
func (s *ShardedSource) NumFrames() int64 { return s.m.NumFrames() }

// NumChunks returns the total native chunk count across shards.
func (s *ShardedSource) NumChunks() int { return len(s.m.Chunks()) }

// NumShards returns the number of composed shards.
func (s *ShardedSource) NumShards() int { return len(s.shards) }

// Shard returns the i-th underlying dataset.
func (s *ShardedSource) Shard(i int) *Dataset { return s.shards[i] }

// Hours returns the repository length in hours of video across shards.
func (s *ShardedSource) Hours() float64 {
	var h float64
	for _, d := range s.shards {
		h += d.Hours()
	}
	return h
}

// Classes lists the union of the shards' searchable classes, sorted.
func (s *ShardedSource) Classes() []string {
	out := make([]string, 0, len(s.counts))
	for c := range s.counts {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// GroundTruthCount returns the summed distinct-instance population of a
// class across shards.
func (s *ShardedSource) GroundTruthCount(class string) (int, error) {
	n, ok := s.counts[class]
	if !ok {
		return 0, fmt.Errorf("exsample: sharded source %q has no class %q", s.name, class)
	}
	return n, nil
}

// Search runs a query against the composed repository; see Dataset.Search.
func (s *ShardedSource) Search(q Query, opts Options) (*Report, error) {
	return SearchSource(s, q, opts)
}

// NewSession prepares an incremental search over the composed repository.
func (s *ShardedSource) NewSession(q Query, opts Options) (*Session, error) {
	return NewSession(s, q, opts)
}

// querySource implements Source. It is nil-receiver-safe and returns nil
// for a zero-value ShardedSource, so the pipeline can reject uninitialized
// sources with a clear error instead of a panic.
func (s *ShardedSource) querySource() *querySource {
	if s == nil {
		return nil
	}
	return s.qs
}

// ShardStat is one shard's contribution to the queries run so far.
type ShardStat struct {
	// Shard is the shard index in composition order.
	Shard int
	// Name is the underlying dataset's profile name.
	Name string
	// NumFrames is the shard's repository size.
	NumFrames int64
	// DetectCalls counts detector invocations routed to the shard across
	// all queries on this source (memo-cache hits never reach a shard and
	// are not counted).
	DetectCalls int64
}

// ShardStats snapshots the per-shard detector traffic — the fan-out
// visibility knob for dashboards and the fairness tests.
func (s *ShardedSource) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, d := range s.shards {
		out[i] = ShardStat{
			Shard:       i,
			Name:        d.Name(),
			NumFrames:   d.NumFrames(),
			DetectCalls: s.detects[i].Load(),
		}
	}
	return out
}

// scanSeconds charges a proxy-scoring pass over a global frame range at
// each overlapped shard's own scan throughput.
func (s *ShardedSource) scanSeconds(start, end int64) float64 {
	var total float64
	for i, d := range s.shards {
		off := s.m.Offset(i)
		lo, hi := max(start, off), min(end, off+s.m.ShardFrames(i))
		if hi > lo {
			total += d.cost.ScanSeconds(hi - lo)
		}
	}
	return total
}

// newDetector builds the fan-out detector: frames route to the owning
// shard's own batched detector — its attached Backend when one is
// configured, otherwise its simulated detector (with that shard's noise,
// cost and failure injection) — and detections come back remapped into
// global coordinates. This is where a ShardedSource routes each shard to
// its own endpoint: every shard keeps its own backend.
func (s *ShardedSource) newDetector(class string) (detect.BatchDetector, error) {
	dets := make([]detect.BatchDetector, len(s.shards))
	for i, d := range s.shards {
		det, err := d.newBatchDetector(class)
		if err != nil {
			return nil, err
		}
		dets[i] = det
	}
	return &shardedDetector{m: s.m, dets: dets, counts: s.detects}, nil
}

// newExtender builds the discriminator's tracker model: a detection is
// extended by its owning shard's ground-truth tracker and the predicted
// track is translated back to global frames.
func (s *ShardedSource) newExtender(coverage float64) (discrim.Extender, error) {
	exts := make([]discrim.Extender, len(s.shards))
	for i, d := range s.shards {
		ext, err := discrim.NewTruthExtender(d.inner.Index, coverage)
		if err != nil {
			return nil, err
		}
		exts[i] = ext
	}
	return &shardedExtender{m: s.m, exts: exts}, nil
}

// newScorer builds the routed proxy scorer. Shard 0 keeps the caller's
// seed unchanged so a 1-shard source scores byte-identically to its
// underlying dataset; later shards decorrelate their hash noise.
func (s *ShardedSource) newScorer(class string, quality float64, seed uint64) (func(int64) float64, error) {
	scores := make([]func(int64) float64, len(s.shards))
	for i, d := range s.shards {
		score, err := d.qs.newScorer(class, quality, seed+uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		scores[i] = score
	}
	m := s.m
	return func(frame int64) float64 {
		sh, local := m.Locate(frame)
		return scores[sh](local)
	}, nil
}

// shardedDetector routes batches of global frames to per-shard batched
// detectors and remaps detections (frame and truth id) into the global
// space. A batch is regrouped so each shard receives ONE DetectBatch call
// covering all of its frames, in pick order, whatever the interleaving —
// so Search's batched loop gets per-shard wire batching even though its
// picks alternate shards, and the engine's already-grouped rounds pass
// through as a single group. Output positions follow the input, so
// regrouping never reorders results. DetectBatch is safe for concurrent
// use, like every shard detector it wraps. Each frame's cost comes from
// its owning shard's detector, so heterogeneous fleets are charged
// accurately.
type shardedDetector struct {
	m      *shard.Map
	dets   []detect.BatchDetector
	counts []atomic.Int64
}

// DetectBatch implements detect.BatchDetector over the global frame space.
func (s *shardedDetector) DetectBatch(ctx context.Context, global []int64) ([]detect.FrameOutput, error) {
	// Carve the batch into per-shard groups (stable: a shard's frames keep
	// their relative order; groups appear in first-touch order).
	type group struct {
		sh    int
		local []int64
		idx   []int // positions in global / out
	}
	var groups []*group
	byShard := make(map[int]*group)
	for i, g := range global {
		sh, local := s.m.Locate(g)
		grp := byShard[sh]
		if grp == nil {
			grp = &group{sh: sh}
			byShard[sh] = grp
			groups = append(groups, grp)
		}
		grp.local = append(grp.local, local)
		grp.idx = append(grp.idx, i)
	}
	out := make([]detect.FrameOutput, len(global))
	for _, grp := range groups {
		outs, err := s.dets[grp.sh].DetectBatch(ctx, grp.local)
		if err != nil {
			return nil, err
		}
		if len(outs) != len(grp.local) {
			return nil, fmt.Errorf("exsample: shard %d returned %d results for a %d-frame batch", grp.sh, len(outs), len(grp.local))
		}
		s.counts[grp.sh].Add(int64(len(grp.local)))
		for k, fo := range outs {
			dets := make([]track.Detection, len(fo.Dets))
			for j, d := range fo.Dets {
				d.Frame = s.m.Global(grp.sh, d.Frame)
				d.TruthID = s.m.GlobalTruthID(grp.sh, d.TruthID)
				dets[j] = d
			}
			if len(dets) == 0 {
				dets = nil
			}
			out[grp.idx[k]] = detect.FrameOutput{Dets: dets, Cost: fo.Cost}
		}
	}
	return out, nil
}

// shardedExtender routes detections to per-shard tracker models and
// translates the predicted tracks back into global frames.
type shardedExtender struct {
	m    *shard.Map
	exts []discrim.Extender
}

// Extend implements discrim.Extender over the global frame space.
func (s *shardedExtender) Extend(det track.Detection) discrim.PredictedTrack {
	sh, local := s.m.Locate(det.Frame)
	ld := det
	ld.Frame = local
	ld.TruthID = s.m.LocalTruthID(sh, det.TruthID)
	tr := s.exts[sh].Extend(ld)
	tr.Start = s.m.Global(sh, tr.Start)
	tr.End = s.m.Global(sh, tr.End)
	return tr
}
