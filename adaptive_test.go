package exsample

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/internal/sizer"
)

// TestAdaptiveRoundsOffByteIdentical: with AdaptiveRounds explicitly off
// the engine stays byte-identical to Dataset.Search with BatchSize =
// FramesPerRound — the §III-F determinism contract the adaptive option
// must not perturb when disabled. Quota counters stay zero and the static
// path reports the static quota.
func TestAdaptiveRoundsOffByteIdentical(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 25}

	want, err := ds.Search(q, Options{BatchSize: 8, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 8, AdaptiveRounds: false})
	h, err := e.Submit(context.Background(), ds, q, Options{Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("static engine diverged from batched Search (frames %d vs %d)",
			got.FramesProcessed, want.FramesProcessed)
	}
	st := e.Stats()
	if st.QuotaGrows != 0 || st.QuotaShrinks != 0 || st.PeakQuota != 0 || st.CapacityLosses != 0 {
		t.Fatalf("static engine reported adaptive activity: %+v", st)
	}
	if got := h.RoundQuota(); got != 8 {
		t.Fatalf("static RoundQuota = %d, want FramesPerRound 8", got)
	}
}

// TestAdaptiveRoundsGrowsQuotaOnFlatBackend: the in-process simulated
// detector has flat (near-zero) per-frame latency, so the AIMD controller
// must grow the round quota past FramesPerRound, the engine must report
// the growth, and the query must still complete with valid results.
func TestAdaptiveRoundsGrowsQuotaOnFlatBackend(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 2, AdaptiveRounds: true})
	h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 40}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("adaptive query found nothing")
	}
	st := e.Stats()
	if st.QuotaGrows == 0 {
		t.Fatalf("flat backend never grew the quota: %+v", st)
	}
	if st.PeakQuota <= 2 {
		t.Fatalf("PeakQuota = %d, want > FramesPerRound 2", st.PeakQuota)
	}
	if got := h.RoundQuota(); got < 2 {
		t.Fatalf("adaptive RoundQuota = %d, below the FramesPerRound floor", got)
	}
	// Fewer, larger batches: the realized frames-per-batch must beat the
	// static quota.
	if st.Batches > 0 && float64(st.DetectCalls)/float64(st.Batches) <= 2 {
		t.Fatalf("realized batch size %.1f did not exceed the static quota (detects %d, batches %d)",
			float64(st.DetectCalls)/float64(st.Batches), st.DetectCalls, st.Batches)
	}
}

// TestAdaptiveQuotaRespectsBackendMaxBatch: the quota ceiling is the
// backend's MaxBatch hint, however flat the latency stays.
func TestAdaptiveQuotaRespectsBackendMaxBatch(t *testing.T) {
	inner := smallDataset(t, WithPerfectDetector())
	capped := &cappedBackend{inner: inner.Backend(), maxBatch: 5}
	ds, err := Synthesize(SynthSpec{
		NumFrames:    200_000,
		NumInstances: 300,
		Class:        "car",
		MeanDuration: 150,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  4000,
		Seed:         21,
	}, WithPerfectDetector(), WithBackend(capped))
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 2, AdaptiveRounds: true})
	h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 30}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PeakQuota > 5 {
		t.Fatalf("PeakQuota %d exceeds the backend's MaxBatch 5", st.PeakQuota)
	}
}

// cappedBackend wraps a backend with a MaxBatch hint (and optionally a
// breaker-open counter the sizer polls).
type cappedBackend struct {
	inner    backend.Backend
	maxBatch int
	opens    atomic.Int64
	calls    atomic.Int64
	openAt   int64 // bump opens once after this many calls (0 = never)
}

func (b *cappedBackend) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	if n := b.calls.Add(1); b.openAt > 0 && n == b.openAt {
		b.opens.Add(1)
	}
	return b.inner.DetectBatch(ctx, class, frames)
}

func (b *cappedBackend) Hints() backend.Hints {
	h := b.inner.Hints()
	h.MaxBatch = b.maxBatch
	return h
}

func (b *cappedBackend) BreakerOpens() int64 { return b.opens.Load() }

// TestAdaptiveCapacityLossShrinksQuota: a breaker-open event reported by
// the source's backend (the router in production; a stub here) must
// register as a capacity loss and shrink the quota multiplicatively.
func TestAdaptiveCapacityLossShrinksQuota(t *testing.T) {
	inner := smallDataset(t, WithPerfectDetector())
	flaky := &cappedBackend{inner: inner.Backend(), maxBatch: 64, openAt: 4}
	ds, err := Synthesize(SynthSpec{
		NumFrames:    200_000,
		NumInstances: 300,
		Class:        "car",
		MeanDuration: 150,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  4000,
		Seed:         21,
	}, WithPerfectDetector(), WithBackend(flaky))
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 2, AdaptiveRounds: true})
	h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 40}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CapacityLosses == 0 {
		t.Fatalf("breaker-open event never registered as a capacity loss: %+v", st)
	}
}

// TestAdaptiveRoundsSharded: a sharded source runs per-shard groups; the
// fleet keys one controller per shard-affinity group and the min across
// them gates the quota. The query must complete and grow past the floor.
func TestAdaptiveRoundsSharded(t *testing.T) {
	shards := make([]*Dataset, 2)
	for i := range shards {
		ds, err := Synthesize(SynthSpec{
			NumFrames:    50_000,
			NumInstances: 100,
			Class:        "car",
			MeanDuration: 120,
			SkewFraction: 1.0 / 8,
			ChunkFrames:  2000,
			Seed:         uint64(31 + i),
		}, WithPerfectDetector())
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = ds
	}
	src, err := NewShardedSource("adaptive", shards...)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 2, AdaptiveRounds: true})
	h, err := e.Submit(context.Background(), src, Query{Class: "car", Limit: 30}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("sharded adaptive query found nothing")
	}
	if st := e.Stats(); st.QuotaGrows == 0 {
		t.Fatalf("sharded adaptive query never grew its quota: %+v", st)
	}
}

// TestAdaptiveObserveSkipsMemoHits: a group resolved from the memo cache
// reports near-zero wall latency for frames the backend never served;
// those observations must be charged to the backend-served (miss) count
// only — and skipped outright for all-hit groups — or the controller's
// baseline collapses and genuine backend batches read as queueing.
func TestAdaptiveObserveSkipsMemoHits(t *testing.T) {
	var counters sizer.Counters
	fleet, err := sizer.NewFleet(sizer.Config{Min: 2, Max: 32}, &counters)
	if err != nil {
		t.Fatal(err)
	}
	eq := &engineQuery{sizer: fleet}
	sq := &sizedQuery{engineQuery: eq}
	// All-hit group: wall latency is irrelevant, no observation reaches
	// the controller however extreme it looks per frame.
	eq.scr.note(7, 0)
	sq.ObserveBatch(7, 8, 5.0)
	if got := fleet.Quota(); got != 2 {
		t.Fatalf("all-hit group moved the quota to %d", got)
	}
	if counters.Shrinks.Load() != 0 {
		t.Fatalf("all-hit group counted %d shrinks", counters.Shrinks.Load())
	}
	// Backend-served groups (flat latency) grow the quota normally.
	for i := 0; i < 10; i++ {
		eq.scr.note(7, fleet.Quota())
		sq.ObserveBatch(7, fleet.Quota(), 0.001*float64(fleet.Quota()))
	}
	if got := fleet.Quota(); got <= 2 {
		t.Fatalf("backend-served groups never grew the quota: %d", got)
	}
	// A group whose ObserveBatch has no recorded backend count (failed
	// call, stale key) is ignored rather than observed at full size.
	before := fleet.Quota()
	sq.ObserveBatch(99, 8, 9.0)
	if got := fleet.Quota(); got != before {
		t.Fatalf("unrecorded group moved the quota from %d to %d", before, got)
	}
}

// TestAddShardDoesNotFirePhantomCapacityLoss: attaching a shard whose
// router already recorded breaker opens in a previous life must not jump
// the source's capacity signal — the edge detector would read it as a
// fresh breaker opening and halve every adaptive query's quota on an
// event that ADDED capacity.
func TestAddShardDoesNotFirePhantomCapacityLoss(t *testing.T) {
	mk := func(seed uint64, be backend.Backend) *Dataset {
		opts := []DatasetOption{WithPerfectDetector()}
		if be != nil {
			opts = append(opts, WithBackend(be))
		}
		ds, err := Synthesize(SynthSpec{
			NumFrames:    20_000,
			NumInstances: 40,
			Class:        "car",
			MeanDuration: 120,
			ChunkFrames:  2000,
			Seed:         seed,
		}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	src, err := NewShardedSource("phantom", mk(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	qs := src.querySource()
	before := qs.breakerOpens()
	// The new shard's backend carries 3 breaker opens from a previous
	// attachment.
	scarred := &cappedBackend{inner: mk(2, nil).Backend(), maxBatch: 16}
	scarred.opens.Add(3)
	if _, err := src.AddShard(mk(2, scarred)); err != nil {
		t.Fatal(err)
	}
	if after := qs.breakerOpens(); after != before {
		t.Fatalf("AddShard jumped the capacity signal from %d to %d", before, after)
	}
	// A genuinely fresh open after attach still surfaces.
	scarred.opens.Add(1)
	if after := qs.breakerOpens(); after != before+1 {
		t.Fatalf("fresh breaker open not visible: %d, want %d", after, before+1)
	}
}
