package exsample

import (
	"bytes"
	"strings"
	"testing"
)

func TestGroundTruthRoundTrip(t *testing.T) {
	orig := smallDataset(t)
	var buf bytes.Buffer
	if err := orig.SaveGroundTruth(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGroundTruth(&buf, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumFrames() != orig.NumFrames() {
		t.Fatalf("frames %d != %d", loaded.NumFrames(), orig.NumFrames())
	}
	n1, _ := orig.GroundTruthCount("car")
	n2, err := loaded.GroundTruthCount("car")
	if err != nil || n2 != n1 {
		t.Fatalf("instance count %d != %d (%v)", n2, n1, err)
	}
	// The loaded dataset is searchable and distinct-object semantics hold.
	rep, err := loaded.Search(Query{Class: "car", Limit: 20}, Options{Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 20 {
		t.Fatalf("loaded dataset search found %d results", len(rep.Results))
	}
	if rep.Recall <= 0 {
		t.Fatal("zero recall on loaded dataset")
	}
}

func TestLoadGroundTruthHandWritten(t *testing.T) {
	doc := `{
		"dataset": "mycams",
		"num_frames": 10000,
		"num_chunks": 10,
		"instances": [
			{"id": 0, "class": "cat", "start_frame": 100, "end_frame": 400},
			{"id": 1, "class": "cat", "start_frame": 5000, "end_frame": 5200},
			{"id": 2, "class": "dog", "start_frame": 9000, "end_frame": 9999}
		]
	}`
	ds, err := LoadGroundTruth(strings.NewReader(doc), WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "mycams" || ds.NumChunks() != 10 {
		t.Fatalf("name=%q chunks=%d", ds.Name(), ds.NumChunks())
	}
	classes := ds.Classes()
	if len(classes) != 2 || classes[0] != "cat" || classes[1] != "dog" {
		t.Fatalf("classes = %v", classes)
	}
	rep, err := ds.Search(Query{Class: "cat", RecallTarget: 1}, Options{Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall != 1 || len(rep.Results) != 2 {
		t.Fatalf("recall %v with %d results", rep.Recall, len(rep.Results))
	}
}

func TestLoadGroundTruthErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":        `not json`,
		"no frames":      `{"num_frames": 0, "instances": [{"id":0,"class":"c","start_frame":0,"end_frame":1}]}`,
		"no instances":   `{"num_frames": 100, "instances": []}`,
		"duplicate id":   `{"num_frames": 100, "instances": [{"id":0,"class":"c","start_frame":0,"end_frame":1},{"id":0,"class":"c","start_frame":2,"end_frame":3}]}`,
		"inverted":       `{"num_frames": 100, "instances": [{"id":0,"class":"c","start_frame":9,"end_frame":5}]}`,
		"empty class":    `{"num_frames": 100, "instances": [{"id":0,"class":"","start_frame":0,"end_frame":1}]}`,
		"start past end": `{"num_frames": 100, "instances": [{"id":0,"class":"c","start_frame":200,"end_frame":300}]}`,
	}
	for name, doc := range cases {
		if _, err := LoadGroundTruth(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadGroundTruthDefaults(t *testing.T) {
	doc := `{"num_frames": 6400, "instances": [{"id":0,"class":"c","start_frame":0,"end_frame":10}]}`
	ds, err := LoadGroundTruth(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "imported" {
		t.Fatalf("default name = %q", ds.Name())
	}
	if ds.NumChunks() != 64 {
		t.Fatalf("default chunks = %d", ds.NumChunks())
	}
}

func TestDetectorFailureInjection(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector(), WithDetectorFailureAfter(30))
	rep, err := ds.Search(Query{Class: "car", Limit: 1000},
		Options{MaxFrames: 200, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	// The search must terminate on its budget, still charging for the
	// useless post-failure frames.
	if rep.FramesProcessed != 200 {
		t.Fatalf("processed %d frames, want the full 200 budget", rep.FramesProcessed)
	}
	// No results can arrive after the failure point.
	for _, s := range rep.CurveSamples {
		if s > 30 {
			t.Fatalf("result recorded at frame %d after detector failure at 30", s)
		}
	}
}
