// Command exsearch runs one distinct-object search against a synthetic
// dataset profile and prints the results and cost accounting.
//
// Usage:
//
//	exsearch -dataset dashcam -class "traffic light" -limit 20
//	         [-strategy exsample|random|random+|sequential|proxy]
//	         [-scale 0.1] [-recall 0] [-chunks 0] [-seed 1] [-batch 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/exsample/exsample/internal/costmodel"

	exsample "github.com/exsample/exsample"
)

func main() {
	var (
		dataset  = flag.String("dataset", "dashcam", "profile name (see -list)")
		class    = flag.String("class", "traffic light", "object class to search")
		limit    = flag.Int("limit", 20, "number of distinct objects to find (0 = use -recall)")
		recall   = flag.Float64("recall", 0, "recall target in (0,1] instead of a limit")
		strategy = flag.String("strategy", "exsample", "exsample|random|random+|sequential|proxy")
		scale    = flag.Float64("scale", 0.1, "dataset scale (1 = paper size)")
		chunks   = flag.Int("chunks", 0, "override chunk count (0 = native)")
		batch    = flag.Int("batch", 0, "batched sampling size (0 = unbatched)")
		seed     = flag.Uint64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list dataset profiles and classes, then exit")
	)
	flag.Parse()

	if *list {
		for _, name := range exsample.ProfileNames() {
			ds, err := exsample.OpenProfile(name, 0.02, 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, "exsearch:", err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %8d frames (full: scale this by 50x)  classes: %v\n",
				name, ds.NumFrames(), ds.Classes())
		}
		return
	}

	if err := run(*dataset, *class, *limit, *recall, *strategy, *scale, *chunks, *batch, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "exsearch:", err)
		os.Exit(1)
	}
}

func parseStrategy(s string) (exsample.Strategy, error) {
	switch s {
	case "exsample":
		return exsample.StrategyExSample, nil
	case "random":
		return exsample.StrategyRandom, nil
	case "random+":
		return exsample.StrategyRandomPlus, nil
	case "sequential":
		return exsample.StrategySequential, nil
	case "proxy":
		return exsample.StrategyProxy, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func run(dataset, class string, limit int, recall float64, strategy string, scale float64, chunks, batch int, seed uint64) error {
	strat, err := parseStrategy(strategy)
	if err != nil {
		return err
	}
	ds, err := exsample.OpenProfile(dataset, scale, seed)
	if err != nil {
		return err
	}
	total, err := ds.GroundTruthCount(class)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s at scale %.2f: %d frames (%.1f h), %d chunks, %d distinct %q instances\n",
		dataset, scale, ds.NumFrames(), ds.Hours(), ds.NumChunks(), total, class)

	rep, err := ds.Search(
		exsample.Query{Class: class, Limit: limit, RecallTarget: recall},
		exsample.Options{Strategy: strat, NumChunks: chunks, BatchSize: batch, Seed: seed},
	)
	if err != nil {
		return err
	}

	fmt.Printf("\n%s found %d distinct objects in %d frames (%.1f%% of repo)\n",
		strat, len(rep.Results), rep.FramesProcessed,
		100*float64(rep.FramesProcessed)/float64(ds.NumFrames()))
	fmt.Printf("charged time: detect %s + decode %s", costmodel.FormatDuration(rep.DetectSeconds),
		costmodel.FormatDuration(rep.DecodeSeconds))
	if rep.ScanSeconds > 0 {
		fmt.Printf(" + proxy scan %s", costmodel.FormatDuration(rep.ScanSeconds))
	}
	fmt.Printf(" = %s  (~$%.2f GPU)\n", costmodel.FormatDuration(rep.TotalSeconds()),
		costmodel.DollarCost(rep.TotalSeconds()))
	fmt.Printf("recall vs ground truth: %.1f%%\n\n", rep.Recall*100)

	show := len(rep.Results)
	if show > 10 {
		show = 10
	}
	for _, r := range rep.Results[:show] {
		fmt.Printf("  object %3d: frame %9d  box (%.0f,%.0f)-(%.0f,%.0f)  score %.2f\n",
			r.ObjectID, r.Frame, r.Box.X1, r.Box.Y1, r.Box.X2, r.Box.Y2, r.Score)
	}
	if len(rep.Results) > show {
		fmt.Printf("  ... and %d more\n", len(rep.Results)-show)
	}
	return nil
}
