package main

import (
	"testing"

	exsample "github.com/exsample/exsample"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]exsample.Strategy{
		"exsample":   exsample.StrategyExSample,
		"random":     exsample.StrategyRandom,
		"random+":    exsample.StrategyRandomPlus,
		"sequential": exsample.StrategySequential,
		"proxy":      exsample.StrategyProxy,
	}
	for in, want := range cases {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseStrategy("quantum"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunSearch(t *testing.T) {
	if err := run("dashcam", "traffic light", 5, 0, "exsample", 0.02, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunSearchRecallTarget(t *testing.T) {
	if err := run("bdd1k", "truck", 0, 0.2, "random", 0.02, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunSearchErrors(t *testing.T) {
	if err := run("nope", "car", 5, 0, "exsample", 0.02, 0, 0, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("dashcam", "spaceship", 5, 0, "exsample", 0.02, 0, 0, 1); err == nil {
		t.Error("unknown class accepted")
	}
	if err := run("dashcam", "truck", 5, 0, "quantum", 0.02, 0, 0, 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}
