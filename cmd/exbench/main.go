// Command exbench regenerates the paper's tables and figures from the
// synthetic reproduction. Each experiment prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	exbench -experiment fig2|fig3|fig4|table1|fig5|fig6|ablation|extensions|all
//	        [-scale 0.05] [-trials N] [-seed N] [-full]
//	exbench -bench-out BENCH_engine.json
//
// -full runs fig3/fig4 at the paper's 16M-frame size (slow).
//
// -bench-out FILE skips the paper experiments and instead runs the engine
// performance-trajectory suite (internal/perf): engine/sharded throughput,
// sampler decision cost with allocation accounting, and adaptive-vs-static
// round sizing against a slow simulated backend. The machine-readable
// snapshot is written to FILE (and echoed to stdout when FILE is "-");
// the committed BENCH_engine.json and the CI artifact both come from this
// mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/exsample/exsample/internal/bench"
	"github.com/exsample/exsample/internal/perf"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2|fig3|fig4|table1|fig5|fig6|ablation|extensions|all")
		scale      = flag.Float64("scale", 0, "dataset scale for table1/fig5/fig6 (0 = experiment default)")
		trials     = flag.Int("trials", 0, "trial count override (0 = experiment default)")
		seed       = flag.Uint64("seed", 0, "seed override (0 = experiment default)")
		full       = flag.Bool("full", false, "run fig3/fig4 at the paper's full 16M-frame size")
		benchOut   = flag.String("bench-out", "", "write the engine perf-trajectory snapshot (BENCH_engine.json) to this file and exit (\"-\" = stdout)")
	)
	flag.Parse()

	if *benchOut != "" {
		if err := writeBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "exbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*experiment, *scale, *trials, *seed, *full); err != nil {
		fmt.Fprintln(os.Stderr, "exbench:", err)
		os.Exit(1)
	}
}

// writeBench runs the perf-trajectory suite and writes the JSON snapshot.
func writeBench(path string) error {
	snap, err := perf.RunSuite()
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	if path != "-" {
		for _, r := range snap.Suite {
			fmt.Printf("%-28s %10.0f ns/op %12.0f allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
			if v, ok := r.Metrics["frames/s"]; ok {
				fmt.Printf(" %12.0f frames/s", v)
			}
			fmt.Println()
		}
	}
	return nil
}

func run(experiment string, scale float64, trials int, seed uint64, full bool) error {
	type renderer interface{ Render(w *os.File) error }
	runOne := func(name string) error {
		switch name {
		case "fig2":
			cfg := bench.DefaultFig2()
			if trials > 0 {
				cfg.Runs = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig2(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig3":
			cfg := bench.DefaultFig3()
			if full {
				cfg = bench.PaperFig3()
			}
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig3(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig4":
			cfg := bench.DefaultFig4()
			if full {
				cfg.NumFrames = 16_000_000
				cfg.Trials = 21
				cfg.Budget = 30_000
				cfg.Checkpoints = []int64{1000, 3000, 10_000, 20_000, 30_000}
			}
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig4(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "table1":
			cfg := bench.DefaultTable1()
			if scale > 0 {
				cfg.Scale = scale
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunTable1(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig5":
			cfg := bench.DefaultFig5()
			if scale > 0 {
				cfg.Scale = scale
			}
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig5(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig6":
			cfg := bench.DefaultFig6()
			if scale > 0 {
				cfg.Scale = scale
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig6(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "extensions":
			cfg := bench.DefaultExtensions()
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunExtensions(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "ablation":
			cfg := bench.DefaultAblation()
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunAblation(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if experiment == "all" {
		for _, name := range []string{"fig2", "fig3", "fig4", "table1", "fig5", "fig6", "ablation", "extensions"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(experiment)
}
