// Command exbench regenerates the paper's tables and figures from the
// synthetic reproduction. Each experiment prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	exbench -experiment fig2|fig3|fig4|table1|fig5|fig6|ablation|extensions|all
//	        [-scale 0.05] [-trials N] [-seed N] [-full]
//	exbench -bench-out BENCH_engine.json
//	exbench -bench-compare BENCH_engine.json [-bench-tolerance 0.25]
//	exbench ... [-cpuprofile FILE] [-memprofile FILE]
//
// -full runs fig3/fig4 at the paper's 16M-frame size (slow).
//
// -bench-out FILE skips the paper experiments and instead runs the engine
// performance-trajectory suite (internal/perf): engine/sharded throughput,
// sampler decision cost with allocation accounting, adaptive-vs-static
// round sizing against a slow simulated backend, and fair-share vs
// global-budget scheduling on a mixed fleet. The machine-readable snapshot
// is written to FILE (and echoed to stdout when FILE is "-"); the
// committed BENCH_engine.json and the CI artifact both come from this mode.
//
// -bench-compare FILE runs the same suite fresh and compares its headline
// throughput metrics (frames/s, results/kdetect) against the committed
// snapshot in FILE for the low-noise gating rows (engine throughput and
// the two scheduling arms), exiting nonzero when any gated metric
// regresses by more than -bench-tolerance (default 0.25). Rows present on
// only one side are reported and skipped, so the check survives suite
// growth. This is the CI bench-regression smoke.
//
// -cpuprofile / -memprofile write pprof profiles covering whichever mode
// ran — paper experiment, suite snapshot or comparison — for digging into
// scheduler or sampler hot spots without rigging up a go-test harness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/exsample/exsample/internal/bench"
	"github.com/exsample/exsample/internal/perf"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2|fig3|fig4|table1|fig5|fig6|ablation|extensions|all")
		scale      = flag.Float64("scale", 0, "dataset scale for table1/fig5/fig6 (0 = experiment default)")
		trials     = flag.Int("trials", 0, "trial count override (0 = experiment default)")
		seed       = flag.Uint64("seed", 0, "seed override (0 = experiment default)")
		full       = flag.Bool("full", false, "run fig3/fig4 at the paper's full 16M-frame size")
		benchOut   = flag.String("bench-out", "", "write the engine perf-trajectory snapshot (BENCH_engine.json) to this file and exit (\"-\" = stdout)")
		benchCmp   = flag.String("bench-compare", "", "run the perf-trajectory suite and fail on throughput regression against this committed snapshot")
		benchTol   = flag.Float64("bench-tolerance", 0.25, "allowed fractional throughput regression for -bench-compare")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "exbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "exbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "exbench:", err)
			}
		}()
	}

	// exit defers the profile flushes above before terminating.
	code := 0
	switch {
	case *benchCmp != "":
		if err := compareBench(*benchCmp, *benchTol); err != nil {
			fmt.Fprintln(os.Stderr, "exbench:", err)
			code = 1
		}
	case *benchOut != "":
		if err := writeBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "exbench:", err)
			code = 1
		}
	default:
		if err := run(*experiment, *scale, *trials, *seed, *full); err != nil {
			fmt.Fprintln(os.Stderr, "exbench:", err)
			code = 1
		}
	}
	if code != 0 {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(code)
	}
}

// compareMetrics are the headline throughput numbers the regression smoke
// watches; higher is better for every one of them.
var compareMetrics = []string{"frames/s", "results/kdetect", "vs-cold-x", "vs-single-x"}

// compareMetricSkips suppresses gating for metrics that are reported for
// context but too noisy to regress on. The warm shared-tier row keeps its
// raw frames/s in the snapshot, but its wall time is dominated by loopback
// HTTP latency that swings past the tolerance run to run; the acceptance
// number is the warm/cold ratio (vs-cold-x), which divides out the shared
// machine noise and is gated instead.
var compareMetricSkips = map[string]map[string]bool{
	"cache_second_user_warm": {"frames/s": true},
}

// compareMetricTols widens the tolerance for specific metrics. vs-cold-x
// divides a loopback-HTTP-bound number by a sleep-bound one, so it swings
// ~25% run to run even averaged over eight ops; what the gate must catch
// is the remote tier silently not serving — which collapses the ratio to
// ~1x, far past any tolerance — so a wide band loses nothing.
// vs-single-x divides two sleep-bound numbers measured on the same
// machine in the same process, so it is steadier, but both arms share the
// scheduler's wall clock; a 0.30 band still catches the failure that
// matters — scatter silently degrading to single-replica routing, which
// drags the ratio to ~1x.
var compareMetricTols = map[string]float64{"vs-cold-x": 0.45, "vs-single-x": 0.30}

// compareRows are the suite rows stable enough to gate on: the end-to-end
// engine throughput row, the two scheduling arms (whose detector-call
// normalization makes them nearly noise-free), and the track-query accel
// and dense arms — their results/kdetect is a deterministic count ratio,
// so the accel row regressing toward the dense row's value means the
// accelerate/refine loop stopped saving frames. The remaining rows
// (sharded fan-out, stream ingest, coarse triage) swing past 20% run to
// run on shared hardware and stay report-only.
var compareRows = map[string]bool{
	"engine_throughput_4q":           true,
	"engine_fairshare_mixedfleet":    true,
	"engine_globalbudget_mixedfleet": true,
	"track_query_accel":              true,
	"track_query_dense":              true,
	// The shared-tier rows: cold pays simulated inference for every frame,
	// warm resolves everything from a populated cache server. Both gate on
	// frames/s; the warm row collapsing toward the cold row's value means
	// the remote tier stopped serving.
	"cache_second_user_cold": true,
	"cache_second_user_warm": true,
	// The cache-aware arms run a deterministic Workers-1 fleet and report
	// only count ratios, so their results/kdetect is noise-free; the on
	// row regressing toward the off row means tie-breaking stopped
	// converting fleet overlap into cache hits.
	"cache_aware_off": true,
	"cache_aware_on":  true,
	// The heterogeneous-fleet arms are sleep-bound like the slow-backend
	// rows, so their frames/s is low-noise; the scatter row additionally
	// gates vs-single-x, whose collapse toward 1x means scatter-gather
	// stopped fanning batches out.
	"hetero_fleet_single":  true,
	"hetero_fleet_scatter": true,
}

// compareAllocRows gates allocs_per_op — lower is better — for the rows
// whose allocation profile is deterministic enough to regress on: the
// sampler decision micro-row (its steady state is pinned allocation-free by
// CI AllocsPerRun guards; this catches drift in the setup path) and the two
// scheduling arms, which run a fixed detector-call budget.
//
// Context for the scheduling arms' absolute values: the global-budget row
// reports ~1.7x the fair-share row's allocs_per_op, which reads like a
// regression but is inherent — the marginal-value allocator steers frames
// at hot queries, so the same 6000-detector-call budget yields ~1.9x the
// results, and every result carries discriminator/report allocations. Per
// result the budget arm allocates ~9.0 objects against fair-share's ~9.8:
// the budget path is the leaner of the two per unit of useful work, and
// gating each row against its own committed baseline (rather than against
// each other) is what keeps that inherent gap from tripping the smoke.
var compareAllocRows = map[string]bool{
	"sampler_decision_256":           true,
	"engine_fairshare_mixedfleet":    true,
	"engine_globalbudget_mixedfleet": true,
	// The heterogeneous-fleet arms process a fixed 2048-frame budget over a
	// fixed round schedule, so their allocation profile is as deterministic
	// as the scheduling arms'; gating them pins the per-round cost of the
	// weighted pick and the scatter fan-out (slice bookkeeping, goroutines).
	"hetero_fleet_single":  true,
	"hetero_fleet_scatter": true,
}

// compareBench runs the perf suite fresh and fails when any watched metric
// of any row shared with the committed snapshot regresses by more than tol.
func compareBench(path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed perf.Snapshot
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	fresh, err := perf.RunSuite()
	if err != nil {
		return err
	}
	freshByName := make(map[string]perf.Result, len(fresh.Suite))
	for _, r := range fresh.Suite {
		freshByName[r.Name] = r
	}
	var failures int
	for _, want := range committed.Suite {
		if !compareRows[want.Name] {
			continue
		}
		got, ok := freshByName[want.Name]
		if !ok {
			fmt.Printf("%-32s committed row missing from fresh suite, skipped\n", want.Name)
			continue
		}
		for _, metric := range compareMetrics {
			if compareMetricSkips[want.Name][metric] {
				continue
			}
			base, ok := want.Metrics[metric]
			if !ok || base <= 0 {
				continue
			}
			cur := got.Metrics[metric]
			ratio := cur / base
			mtol := tol
			if t, ok := compareMetricTols[metric]; ok {
				mtol = t
			}
			status := "ok"
			if ratio < 1-mtol {
				status = "REGRESSION"
				failures++
			}
			fmt.Printf("%-32s %-16s %12.0f -> %12.0f  (%+5.1f%%)  %s\n",
				want.Name, metric, base, cur, (ratio-1)*100, status)
		}
		if compareAllocRows[want.Name] && want.AllocsPerOp > 0 {
			ratio := got.AllocsPerOp / want.AllocsPerOp
			status := "ok"
			if ratio > 1+tol {
				status = "REGRESSION"
				failures++
			}
			fmt.Printf("%-32s %-16s %12.0f -> %12.0f  (%+5.1f%%)  %s\n",
				want.Name, "allocs_per_op", want.AllocsPerOp, got.AllocsPerOp, (ratio-1)*100, status)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d metric(s) regressed more than %.0f%% against %s", failures, tol*100, path)
	}
	return nil
}

// writeBench runs the perf-trajectory suite and writes the JSON snapshot.
func writeBench(path string) error {
	snap, err := perf.RunSuite()
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	if path != "-" {
		for _, r := range snap.Suite {
			fmt.Printf("%-28s %10.0f ns/op %12.0f allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
			if v, ok := r.Metrics["frames/s"]; ok {
				fmt.Printf(" %12.0f frames/s", v)
			}
			fmt.Println()
		}
	}
	return nil
}

func run(experiment string, scale float64, trials int, seed uint64, full bool) error {
	type renderer interface{ Render(w *os.File) error }
	runOne := func(name string) error {
		switch name {
		case "fig2":
			cfg := bench.DefaultFig2()
			if trials > 0 {
				cfg.Runs = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig2(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig3":
			cfg := bench.DefaultFig3()
			if full {
				cfg = bench.PaperFig3()
			}
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig3(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig4":
			cfg := bench.DefaultFig4()
			if full {
				cfg.NumFrames = 16_000_000
				cfg.Trials = 21
				cfg.Budget = 30_000
				cfg.Checkpoints = []int64{1000, 3000, 10_000, 20_000, 30_000}
			}
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig4(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "table1":
			cfg := bench.DefaultTable1()
			if scale > 0 {
				cfg.Scale = scale
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunTable1(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig5":
			cfg := bench.DefaultFig5()
			if scale > 0 {
				cfg.Scale = scale
			}
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig5(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig6":
			cfg := bench.DefaultFig6()
			if scale > 0 {
				cfg.Scale = scale
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunFig6(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "extensions":
			cfg := bench.DefaultExtensions()
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunExtensions(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "ablation":
			cfg := bench.DefaultAblation()
			if trials > 0 {
				cfg.Trials = trials
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := bench.RunAblation(cfg)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if experiment == "all" {
		for _, name := range []string{"fig2", "fig3", "fig4", "table1", "fig5", "fig6", "ablation", "extensions"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(experiment)
}
