package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("figure99", 0, 0, 0, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig6(t *testing.T) {
	if err := run("fig6", 0.05, 0, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig2SmallTrials(t *testing.T) {
	if err := run("fig2", 0, 30, 99, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1SmallScale(t *testing.T) {
	if err := run("table1", 0.02, 0, 3, false); err != nil {
		t.Fatal(err)
	}
}
