// Command exserve exercises the concurrent query engine: it opens one or
// more dataset profiles (optionally sharding each into an N-way
// ShardedSource), submits many simultaneous distinct-object queries
// (spread round-robin over the sources' classes), multiplexes their
// detector calls onto a shared bounded worker pool — grouped by shard and
// dispatched as one DetectBatch per group — and prints per-query,
// per-shard, backend and cache statistics.
//
// Usage:
//
//	exserve -datasets dashcam,bdd1k -queries 8 -limit 10
//	        [-workers 4] [-round 4] [-scale 0.05] [-seed 1]
//	        [-shards 1] [-cache 0]
//	        [-backend sim|http] [-endpoint URL]
//
// -shards N composes each profile from N independently generated shards
// (one logical repository, N machines' worth of chunks); -cache N enables
// an N-entry detector memo cache shared by every query on the engine.
//
// -backend http runs every detector call over the backend/httpbatch wire
// protocol. With no -endpoint, each shard gets its own loopback HTTP
// server fed by a twin dataset — a self-contained demo of a per-shard
// remote GPU fleet; with -endpoint URL, all shards call that one external
// service (which must serve the same profiles' classes). Either way the
// run prints a backend table: batches, frames, realized batch size,
// retries and server-reported inference seconds per shard.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	exsample "github.com/exsample/exsample"
	"github.com/exsample/exsample/backend/httpbatch"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.datasets, "datasets", "dashcam,bdd1k", "comma-separated profile names")
	flag.IntVar(&cfg.queries, "queries", 8, "number of concurrent queries")
	flag.IntVar(&cfg.limit, "limit", 10, "distinct objects per query")
	flag.IntVar(&cfg.workers, "workers", 4, "shared detector worker pool size")
	flag.IntVar(&cfg.round, "round", 4, "frames per query per scheduling round")
	flag.Float64Var(&cfg.scale, "scale", 0.05, "dataset scale (1 = paper size)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base random seed")
	flag.IntVar(&cfg.shards, "shards", 1, "shards per profile (>1 composes a ShardedSource)")
	flag.IntVar(&cfg.cache, "cache", 0, "detector memo cache entries (0 = disabled)")
	flag.StringVar(&cfg.backend, "backend", "sim", "detector backend: sim (in-process) or http (httpbatch wire protocol)")
	flag.StringVar(&cfg.endpoint, "endpoint", "", "external httpbatch endpoint URL (http backend only; empty = per-shard loopback servers)")
	flag.Parse()
	cfg.profiles = strings.Split(cfg.datasets, ",")

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "exserve:", err)
		os.Exit(1)
	}
}

// config collects the run parameters.
type config struct {
	datasets string
	profiles []string
	queries  int
	limit    int
	workers  int
	round    int
	scale    float64
	seed     uint64
	shards   int
	cache    int
	backend  string
	endpoint string
}

// backendStat tracks one httpbatch client for the stats table: a per-shard
// loopback client, or (shard -1, profile "(all)") the one shared client of
// an external endpoint.
type backendStat struct {
	profile string
	shard   int
	client  *httpbatch.Client
}

// serveBackend starts a loopback HTTP server for a dataset's backend — the
// in-process stand-in for a remote GPU service — and returns the endpoint
// URL plus a shutdown func.
func serveBackend(ds *exsample.Dataset) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: httpbatch.Handler(ds.Backend())}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// openShard opens one shard's dataset, wiring the configured backend: the
// in-process simulator, the shared external-endpoint client, or a loopback
// server fed by a twin dataset generated from the same seed. shared is
// non-nil exactly when -endpoint was given: every shard then reuses the
// one client so the per-endpoint concurrency cap covers the whole run.
func openShard(name string, seed uint64, cfg config, shared *httpbatch.Client) (*exsample.Dataset, *httpbatch.Client, func(), error) {
	if cfg.backend != "http" {
		ds, err := exsample.OpenProfile(name, cfg.scale, seed)
		return ds, nil, nil, err
	}
	client := shared
	stop := func() {}
	if client == nil {
		twin, err := exsample.OpenProfile(name, cfg.scale, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		endpoint, stopSrv, err := serveBackend(twin)
		if err != nil {
			return nil, nil, nil, err
		}
		stop = stopSrv
		client, err = httpbatch.New(httpbatch.Config{Endpoint: endpoint, MaxBatch: 64})
		if err != nil {
			stop()
			return nil, nil, nil, err
		}
	}
	ds, err := exsample.OpenProfile(name, cfg.scale, seed, exsample.WithBackend(client))
	if err != nil {
		stop()
		return nil, nil, nil, err
	}
	return ds, client, stop, nil
}

// openSource opens one profile as a plain dataset or an N-way sharded
// composition of independently generated datasets, each shard routed to
// its own backend (or all to the shared external client).
func openSource(name string, cfg config, shared *httpbatch.Client) (exsample.Source, *exsample.ShardedSource, []backendStat, []func(), error) {
	var stats []backendStat
	var stops []func()
	open := func(i int) (*exsample.Dataset, error) {
		ds, client, stop, err := openShard(name, cfg.seed+uint64(i)*1000, cfg, shared)
		if err != nil {
			return nil, err
		}
		if client != nil && client != shared {
			stats = append(stats, backendStat{profile: name, shard: i, client: client})
		}
		if stop != nil {
			stops = append(stops, stop)
		}
		return ds, nil
	}
	if cfg.shards <= 1 {
		ds, err := open(0)
		return ds, nil, stats, stops, err
	}
	shards := make([]*exsample.Dataset, cfg.shards)
	for i := range shards {
		ds, err := open(i)
		if err != nil {
			return nil, nil, stats, stops, err
		}
		shards[i] = ds
	}
	ss, err := exsample.NewShardedSource(name, shards...)
	return ss, ss, stats, stops, err
}

// run opens the sources, fans the queries out over the engine and renders
// the throughput, shard, backend and cache tables.
func run(w io.Writer, cfg config) error {
	if cfg.queries < 1 {
		return fmt.Errorf("need at least one query, got %d", cfg.queries)
	}
	if cfg.limit < 1 {
		return fmt.Errorf("need a positive per-query limit, got %d", cfg.limit)
	}
	if cfg.shards < 1 {
		return fmt.Errorf("need at least one shard per profile, got %d", cfg.shards)
	}
	if cfg.backend == "" {
		cfg.backend = "sim"
	}
	if cfg.backend != "sim" && cfg.backend != "http" {
		return fmt.Errorf("unknown backend %q (want sim or http)", cfg.backend)
	}
	if cfg.endpoint != "" && cfg.backend != "http" {
		return fmt.Errorf("-endpoint requires -backend http")
	}
	type target struct {
		src   exsample.Source
		class string
	}
	var targets []target
	var sharded []*exsample.ShardedSource
	var backends []backendStat
	// One shared client for an external endpoint, so the configured
	// per-endpoint concurrency cap holds across every shard and profile.
	var shared *httpbatch.Client
	if cfg.backend == "http" && cfg.endpoint != "" {
		var err error
		shared, err = httpbatch.New(httpbatch.Config{Endpoint: cfg.endpoint, MaxBatch: 64})
		if err != nil {
			return err
		}
		backends = append(backends, backendStat{profile: "(all)", shard: -1, client: shared})
	}
	for _, name := range cfg.profiles {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		src, ss, bstats, stops, err := openSource(name, cfg, shared)
		for _, stop := range stops {
			defer stop()
		}
		if err != nil {
			return err
		}
		backends = append(backends, bstats...)
		if ss != nil {
			sharded = append(sharded, ss)
		}
		for _, class := range src.Classes() {
			targets = append(targets, target{src: src, class: class})
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no datasets given")
	}

	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        cfg.workers,
		FramesPerRound: cfg.round,
		CacheEntries:   cfg.cache,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	start := time.Now()
	handles := make([]*exsample.QueryHandle, cfg.queries)
	specs := make([]target, cfg.queries)
	for i := 0; i < cfg.queries; i++ {
		specs[i] = targets[i%len(targets)]
		handles[i], err = eng.Submit(context.Background(), specs[i].src,
			exsample.Query{Class: specs[i].class, Limit: cfg.limit},
			exsample.Options{Seed: cfg.seed + uint64(i)})
		if err != nil {
			return err
		}
	}

	// Wait for every query concurrently so each row's throughput reflects
	// the query's own finish time, not the Wait loop's position.
	type outcome struct {
		rep     *exsample.Report
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, cfg.queries)
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *exsample.QueryHandle) {
			defer wg.Done()
			rep, err := h.Wait()
			outcomes[i] = outcome{rep: rep, err: err, elapsed: time.Since(start)}
		}(i, h)
	}
	wg.Wait()

	fmt.Fprintf(w, "engine: %d queries, %d workers, %d frames/round, %d shard(s)/profile, %s backend\n\n",
		cfg.queries, cfg.workers, cfg.round, cfg.shards, cfg.backend)
	fmt.Fprintf(w, "%-3s %-12s %-14s %8s %8s %8s %10s %10s\n",
		"#", "dataset", "class", "found", "frames", "hits", "charged-s", "frames/s")
	var totalFrames int64
	for i, o := range outcomes {
		if o.err != nil {
			return fmt.Errorf("query %d (%s/%s): %w", i, specs[i].src.Name(), specs[i].class, o.err)
		}
		totalFrames += o.rep.FramesProcessed
		perSec := 0.0
		if secs := o.elapsed.Seconds(); secs > 0 {
			perSec = float64(o.rep.FramesProcessed) / secs
		}
		fmt.Fprintf(w, "%-3d %-12s %-14s %8d %8d %8d %10.1f %10.1f\n",
			i, specs[i].src.Name(), specs[i].class, len(o.rep.Results),
			o.rep.FramesProcessed, o.rep.CacheHits, o.rep.TotalSeconds(), perSec)
	}
	wall := time.Since(start)
	st := eng.Stats()
	fmt.Fprintf(w, "\ntotal: %d detector frames in %v wall (%.0f frames/s aggregate); %d rounds, %d detect batches\n",
		totalFrames, wall.Round(time.Millisecond), float64(totalFrames)/wall.Seconds(),
		st.Rounds, st.Batches)

	for _, ss := range sharded {
		fmt.Fprintf(w, "\nshards of %s:\n", ss.Name())
		fmt.Fprintf(w, "%-3s %8s %10s\n", "#", "frames", "detects")
		for _, sst := range ss.ShardStats() {
			fmt.Fprintf(w, "%-3d %8d %10d\n", sst.Shard, sst.NumFrames, sst.DetectCalls)
		}
	}
	if len(backends) > 0 {
		fmt.Fprintf(w, "\nbackend (httpbatch):\n")
		fmt.Fprintf(w, "%-12s %-5s %8s %8s %9s %8s %10s\n",
			"dataset", "shard", "batches", "frames", "avg-batch", "retries", "server-s")
		for _, b := range backends {
			cs := b.client.Stats()
			avg := 0.0
			if cs.Batches > 0 {
				avg = float64(cs.Frames) / float64(cs.Batches)
			}
			shard := fmt.Sprintf("%d", b.shard)
			if b.shard < 0 {
				shard = "all" // shared external endpoint
			}
			fmt.Fprintf(w, "%-12s %-5s %8d %8d %9.1f %8d %10.2f\n",
				b.profile, shard, cs.Batches, cs.Frames, avg, cs.Retries, cs.ServerSeconds)
		}
	}
	if cfg.cache > 0 {
		cst := eng.CacheStats()
		fmt.Fprintf(w, "\ncache: %d entries, %d hits / %d misses (%.1f%% hit rate), %d evictions\n",
			cst.Entries, cst.Hits, cst.Misses, cst.HitRate()*100, cst.Evictions)
	}
	return nil
}
