// Command exserve exercises the concurrent query engine: it opens one or
// more dataset profiles (optionally sharding each into an N-way
// ShardedSource), submits many simultaneous distinct-object queries
// (spread round-robin over the sources' classes), multiplexes their
// detector calls onto a shared bounded worker pool — grouped by shard —
// and prints per-query, per-shard and cache statistics.
//
// Usage:
//
//	exserve -datasets dashcam,bdd1k -queries 8 -limit 10
//	        [-workers 4] [-round 4] [-scale 0.05] [-seed 1]
//	        [-shards 1] [-cache 0]
//
// -shards N composes each profile from N independently generated shards
// (one logical repository, N machines' worth of chunks); -cache N enables
// an N-entry detector memo cache shared by every query on the engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	exsample "github.com/exsample/exsample"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.datasets, "datasets", "dashcam,bdd1k", "comma-separated profile names")
	flag.IntVar(&cfg.queries, "queries", 8, "number of concurrent queries")
	flag.IntVar(&cfg.limit, "limit", 10, "distinct objects per query")
	flag.IntVar(&cfg.workers, "workers", 4, "shared detector worker pool size")
	flag.IntVar(&cfg.round, "round", 4, "frames per query per scheduling round")
	flag.Float64Var(&cfg.scale, "scale", 0.05, "dataset scale (1 = paper size)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base random seed")
	flag.IntVar(&cfg.shards, "shards", 1, "shards per profile (>1 composes a ShardedSource)")
	flag.IntVar(&cfg.cache, "cache", 0, "detector memo cache entries (0 = disabled)")
	flag.Parse()
	cfg.profiles = strings.Split(cfg.datasets, ",")

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "exserve:", err)
		os.Exit(1)
	}
}

// config collects the run parameters.
type config struct {
	datasets string
	profiles []string
	queries  int
	limit    int
	workers  int
	round    int
	scale    float64
	seed     uint64
	shards   int
	cache    int
}

// openSource opens one profile as a plain dataset or an N-way sharded
// composition of independently generated datasets.
func openSource(name string, cfg config) (exsample.Source, *exsample.ShardedSource, error) {
	if cfg.shards <= 1 {
		ds, err := exsample.OpenProfile(name, cfg.scale, cfg.seed)
		return ds, nil, err
	}
	shards := make([]*exsample.Dataset, cfg.shards)
	for i := range shards {
		ds, err := exsample.OpenProfile(name, cfg.scale, cfg.seed+uint64(i)*1000)
		if err != nil {
			return nil, nil, err
		}
		shards[i] = ds
	}
	ss, err := exsample.NewShardedSource(name, shards...)
	return ss, ss, err
}

// run opens the sources, fans the queries out over the engine and renders
// the throughput, shard and cache tables.
func run(w io.Writer, cfg config) error {
	if cfg.queries < 1 {
		return fmt.Errorf("need at least one query, got %d", cfg.queries)
	}
	if cfg.limit < 1 {
		return fmt.Errorf("need a positive per-query limit, got %d", cfg.limit)
	}
	if cfg.shards < 1 {
		return fmt.Errorf("need at least one shard per profile, got %d", cfg.shards)
	}
	type target struct {
		src   exsample.Source
		class string
	}
	var targets []target
	var sharded []*exsample.ShardedSource
	for _, name := range cfg.profiles {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		src, ss, err := openSource(name, cfg)
		if err != nil {
			return err
		}
		if ss != nil {
			sharded = append(sharded, ss)
		}
		for _, class := range src.Classes() {
			targets = append(targets, target{src: src, class: class})
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no datasets given")
	}

	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        cfg.workers,
		FramesPerRound: cfg.round,
		CacheEntries:   cfg.cache,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	start := time.Now()
	handles := make([]*exsample.QueryHandle, cfg.queries)
	specs := make([]target, cfg.queries)
	for i := 0; i < cfg.queries; i++ {
		specs[i] = targets[i%len(targets)]
		handles[i], err = eng.Submit(context.Background(), specs[i].src,
			exsample.Query{Class: specs[i].class, Limit: cfg.limit},
			exsample.Options{Seed: cfg.seed + uint64(i)})
		if err != nil {
			return err
		}
	}

	// Wait for every query concurrently so each row's throughput reflects
	// the query's own finish time, not the Wait loop's position.
	type outcome struct {
		rep     *exsample.Report
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, cfg.queries)
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *exsample.QueryHandle) {
			defer wg.Done()
			rep, err := h.Wait()
			outcomes[i] = outcome{rep: rep, err: err, elapsed: time.Since(start)}
		}(i, h)
	}
	wg.Wait()

	fmt.Fprintf(w, "engine: %d queries, %d workers, %d frames/round, %d shard(s)/profile\n\n",
		cfg.queries, cfg.workers, cfg.round, cfg.shards)
	fmt.Fprintf(w, "%-3s %-12s %-14s %8s %8s %8s %10s %10s\n",
		"#", "dataset", "class", "found", "frames", "hits", "charged-s", "frames/s")
	var totalFrames int64
	for i, o := range outcomes {
		if o.err != nil {
			return fmt.Errorf("query %d (%s/%s): %w", i, specs[i].src.Name(), specs[i].class, o.err)
		}
		totalFrames += o.rep.FramesProcessed
		perSec := 0.0
		if secs := o.elapsed.Seconds(); secs > 0 {
			perSec = float64(o.rep.FramesProcessed) / secs
		}
		fmt.Fprintf(w, "%-3d %-12s %-14s %8d %8d %8d %10.1f %10.1f\n",
			i, specs[i].src.Name(), specs[i].class, len(o.rep.Results),
			o.rep.FramesProcessed, o.rep.CacheHits, o.rep.TotalSeconds(), perSec)
	}
	wall := time.Since(start)
	fmt.Fprintf(w, "\ntotal: %d detector frames in %v wall (%.0f frames/s aggregate)\n",
		totalFrames, wall.Round(time.Millisecond), float64(totalFrames)/wall.Seconds())

	for _, ss := range sharded {
		fmt.Fprintf(w, "\nshards of %s:\n", ss.Name())
		fmt.Fprintf(w, "%-3s %8s %10s\n", "#", "frames", "detects")
		for _, st := range ss.ShardStats() {
			fmt.Fprintf(w, "%-3d %8d %10d\n", st.Shard, st.NumFrames, st.DetectCalls)
		}
	}
	if cfg.cache > 0 {
		st := eng.CacheStats()
		fmt.Fprintf(w, "\ncache: %d entries, %d hits / %d misses (%.1f%% hit rate), %d evictions\n",
			st.Entries, st.Hits, st.Misses, st.HitRate()*100, st.Evictions)
	}
	return nil
}
