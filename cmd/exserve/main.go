// Command exserve exercises the concurrent query engine: it opens one or
// more dataset profiles, submits many simultaneous distinct-object queries
// (spread round-robin over the datasets' classes), multiplexes their
// detector calls onto a shared bounded worker pool, and prints per-query
// and aggregate throughput.
//
// Usage:
//
//	exserve -datasets dashcam,bdd1k -queries 8 -limit 10
//	        [-workers 4] [-round 4] [-scale 0.05] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	exsample "github.com/exsample/exsample"
)

func main() {
	var (
		datasets = flag.String("datasets", "dashcam,bdd1k", "comma-separated profile names")
		queries  = flag.Int("queries", 8, "number of concurrent queries")
		limit    = flag.Int("limit", 10, "distinct objects per query")
		workers  = flag.Int("workers", 4, "shared detector worker pool size")
		round    = flag.Int("round", 4, "frames per query per scheduling round")
		scale    = flag.Float64("scale", 0.05, "dataset scale (1 = paper size)")
		seed     = flag.Uint64("seed", 1, "base random seed")
	)
	flag.Parse()

	if err := run(os.Stdout, strings.Split(*datasets, ","), *queries, *limit, *workers, *round, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "exserve:", err)
		os.Exit(1)
	}
}

// run opens the profiles, fans the queries out over the engine and renders
// the throughput table.
func run(w io.Writer, profiles []string, queries, limit, workers, round int, scale float64, seed uint64) error {
	if queries < 1 {
		return fmt.Errorf("need at least one query, got %d", queries)
	}
	if limit < 1 {
		return fmt.Errorf("need a positive per-query limit, got %d", limit)
	}
	type target struct {
		ds    *exsample.Dataset
		class string
	}
	var targets []target
	for _, name := range profiles {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		ds, err := exsample.OpenProfile(name, scale, seed)
		if err != nil {
			return err
		}
		for _, class := range ds.Classes() {
			targets = append(targets, target{ds: ds, class: class})
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no datasets given")
	}

	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        workers,
		FramesPerRound: round,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	start := time.Now()
	handles := make([]*exsample.QueryHandle, queries)
	specs := make([]target, queries)
	for i := 0; i < queries; i++ {
		specs[i] = targets[i%len(targets)]
		handles[i], err = eng.Submit(context.Background(), specs[i].ds,
			exsample.Query{Class: specs[i].class, Limit: limit},
			exsample.Options{Seed: seed + uint64(i)})
		if err != nil {
			return err
		}
	}

	// Wait for every query concurrently so each row's throughput reflects
	// the query's own finish time, not the Wait loop's position.
	type outcome struct {
		rep     *exsample.Report
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, queries)
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *exsample.QueryHandle) {
			defer wg.Done()
			rep, err := h.Wait()
			outcomes[i] = outcome{rep: rep, err: err, elapsed: time.Since(start)}
		}(i, h)
	}
	wg.Wait()

	fmt.Fprintf(w, "engine: %d queries, %d workers, %d frames/round\n\n", queries, workers, round)
	fmt.Fprintf(w, "%-3s %-12s %-14s %8s %8s %10s %10s\n",
		"#", "dataset", "class", "found", "frames", "charged-s", "frames/s")
	var totalFrames int64
	for i, o := range outcomes {
		if o.err != nil {
			return fmt.Errorf("query %d (%s/%s): %w", i, specs[i].ds.Name(), specs[i].class, o.err)
		}
		totalFrames += o.rep.FramesProcessed
		perSec := 0.0
		if secs := o.elapsed.Seconds(); secs > 0 {
			perSec = float64(o.rep.FramesProcessed) / secs
		}
		fmt.Fprintf(w, "%-3d %-12s %-14s %8d %8d %10.1f %10.1f\n",
			i, specs[i].ds.Name(), specs[i].class, len(o.rep.Results),
			o.rep.FramesProcessed, o.rep.TotalSeconds(), perSec)
	}
	wall := time.Since(start)
	fmt.Fprintf(w, "\ntotal: %d detector frames in %v wall (%.0f frames/s aggregate)\n",
		totalFrames, wall.Round(time.Millisecond), float64(totalFrames)/wall.Seconds())
	return nil
}
