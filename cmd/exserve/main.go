// Command exserve exercises the concurrent query engine: it opens one or
// more dataset profiles (optionally sharding each into an N-way
// ShardedSource), submits many simultaneous distinct-object queries
// (spread round-robin over the sources' classes), multiplexes their
// detector calls onto a shared bounded worker pool — grouped by shard and
// dispatched as one DetectBatch per group — and prints per-query,
// per-shard, backend, router and cache statistics.
//
// Usage:
//
//	exserve -datasets dashcam,bdd1k -queries 8 -limit 10
//	        [-workers 4] [-round 4] [-adaptive] [-scale 0.05] [-seed 1]
//	        [-budget 0] [-floor 1] [-shards 1] [-cache 0]
//	        [-cache-remote URL] [-cache-warm] [-cache-aware]
//	        [-backend sim|http] [-endpoint URL] [-replicas 1]
//	        [-replica-weight W1,W2,...] [-scatter]
//	        [-churn 0] [-admin addr]
//
// -shards N composes each profile from N independently generated shards
// (one logical repository, N machines' worth of chunks); -cache N enables
// an N-entry detector memo cache shared by every query on the engine.
//
// -cache-remote URL attaches a shared remote result tier (a
// cachestore/httpcache server) behind the memo cache: detector results are
// looked up L1-then-L2 and written through, so a fleet of exserve
// processes pointed at one server shares every frame any of them paid
// for. -cache-warm prefetches each target's cached entries L2→L1 before
// the queries start; -cache-aware breaks Thompson-sampling ties toward
// chunks with more cached frames. With a remote tier the run ends with a
// per-tier table: hits/misses per tier, round trips, EWMA round-trip
// latency and the singleflight merge/fill counters.
//
// -adaptive turns on feedback-controlled round sizing: each query's
// per-round detector quota grows from -round toward the backend's MaxBatch
// while observed batch latency stays flat and shrinks when latency
// inflates or a replica's circuit breaker opens. The run then prints an
// adaptive table: peak/final quotas per query and the grow/shrink
// counters.
//
// -budget N replaces fair-share scheduling with one engine-level budget of
// N frames per round, divided across the queries by marginal value (each
// query's expected new results per frame under its Thompson beliefs);
// -floor M guarantees every query at least M frames per round so nothing
// starves. -round (or the adaptive controller's live quota) becomes each
// query's per-round cap. The run then prints a budget table: frames
// granted vs the fair-share request per query, and the engine-level grant
// ratio — how hard the budget squeezed the fleet.
//
// -backend http runs every detector call over the backend/httpbatch wire
// protocol. With no -endpoint, each shard gets its own loopback HTTP
// server fed by a twin dataset — a self-contained demo of a per-shard
// remote GPU fleet; with -endpoint URL, all shards call that one external
// service (which must serve the same profiles' classes). Either way the
// run prints a backend table: batches, frames, realized batch size,
// retries and server-reported inference seconds per shard.
//
// -replicas R (http backend, loopback mode) fronts every shard with a
// backend/router health-checked router over R equivalent loopback
// replicas: a replica dying mid-run sheds load to its siblings instead of
// failing queries, and the run ends with a per-replica health/failover
// table (state, traffic, weight, slices, EWMA latency, last error).
// -replica-weight W1,...,WR declares the replicas' relative capacities
// (one weight per replica; unweighted fleets derive capacity from observed
// per-frame latency), and -scatter turns on scatter-gather: each batch is
// split across the healthy replicas proportional to capacity and
// reassembled in order, so a round costs one slice-time instead of one
// whole-batch-time — the heterogeneous-fleet throughput path.
//
// Fleet churn: with -shards > 1, a SIGHUP (or -churn D after delay D, or
// POST /admin/churn when -admin is set) runs a live add/drain cycle on
// every sharded source — a fresh shard is attached and the oldest active
// shard drained while the queries keep running; the shard table shows the
// resulting statuses. -admin ADDR serves GET /healthz plus POST
// /admin/add, /admin/drain and /admin/churn for manual control.
//
// Live streaming: -stream switches to the ingest demo — a synthetic camera
// appends fixed-duration segments (every -interval, -segments times, half
// of them dead) into a bounded ring (-retention slots, motion gate at
// -gate), while -queries standing queries registered with SubmitStanding
// ride along: they emit alerts as segments arrive, park when the ring is
// drained and wake on the next live append. The run prints the append log,
// a standing alert log, the per-query table and the ring's segment table
// (energy, gated, evicted, detector calls).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	exsample "github.com/exsample/exsample"
	"github.com/exsample/exsample/backend/httpbatch"
	"github.com/exsample/exsample/backend/router"
	"github.com/exsample/exsample/cachestore/httpcache"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.datasets, "datasets", "dashcam,bdd1k", "comma-separated profile names")
	flag.IntVar(&cfg.queries, "queries", 8, "number of concurrent queries")
	flag.IntVar(&cfg.limit, "limit", 10, "distinct objects per query")
	flag.IntVar(&cfg.workers, "workers", 4, "shared detector worker pool size")
	flag.IntVar(&cfg.round, "round", 4, "frames per query per scheduling round")
	flag.Float64Var(&cfg.scale, "scale", 0.05, "dataset scale (1 = paper size)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base random seed")
	flag.IntVar(&cfg.shards, "shards", 1, "shards per profile (>1 composes a ShardedSource)")
	flag.IntVar(&cfg.cache, "cache", 0, "detector memo cache entries (0 = disabled)")
	flag.StringVar(&cfg.cacheRemote, "cache-remote", "", "shared remote result tier endpoint URL (a cachestore/httpcache server)")
	flag.BoolVar(&cfg.cacheWarm, "cache-warm", false, "prefetch each target's cached entries from the remote tier before the queries start (requires -cache-remote)")
	flag.BoolVar(&cfg.cacheAware, "cache-aware", false, "break Thompson-sampling ties toward chunks with more cached frames (requires -cache or -cache-remote)")
	flag.BoolVar(&cfg.adaptive, "adaptive", false, "adaptive round sizing: grow each query's per-round quota toward the backend's MaxBatch while latency stays flat")
	flag.IntVar(&cfg.budget, "budget", 0, "engine-level frames-per-round budget divided across queries by marginal value (0 = fair-share)")
	flag.IntVar(&cfg.floor, "floor", 1, "per-round frame floor every query is guaranteed under -budget")
	flag.StringVar(&cfg.backend, "backend", "sim", "detector backend: sim (in-process) or http (httpbatch wire protocol)")
	flag.StringVar(&cfg.endpoint, "endpoint", "", "external httpbatch endpoint URL (http backend only; empty = per-shard loopback servers)")
	flag.IntVar(&cfg.replicas, "replicas", 1, "replica endpoints per shard behind a health-checked router (http loopback mode)")
	flag.StringVar(&cfg.replicaWeight, "replica-weight", "", "comma-separated relative capacity weights, one per replica (requires -replicas > 1; empty = derive from observed latency)")
	flag.BoolVar(&cfg.scatter, "scatter", false, "scatter-gather: split each batch across healthy replicas proportional to capacity (requires -replicas > 1)")
	flag.DurationVar(&cfg.churn, "churn", 0, "run one add/drain churn cycle this long after the queries start (0 = off; requires -shards > 1)")
	flag.StringVar(&cfg.admin, "admin", "", "serve /healthz and /admin/{add,drain,churn} on this address (e.g. 127.0.0.1:8080)")
	flag.BoolVar(&cfg.track, "trackquery", false, "track-predicate demo: MIRIS-style accelerate/refine queries (one per source class) instead of distinct-object queries")
	flag.Int64Var(&cfg.minDuration, "min-duration", 50, "track predicate MinDuration in frames (-trackquery; also sets the coarse stride)")
	flag.BoolVar(&cfg.coarseOnly, "coarse-only", false, "skip densification: track over the coarse grid alone (-trackquery)")
	flag.BoolVar(&cfg.stream, "stream", false, "live ingest demo: a synthetic camera appends segments into a bounded ring while standing queries alert on them")
	flag.IntVar(&cfg.segments, "segments", 12, "segments the synthetic camera appends (-stream)")
	flag.Int64Var(&cfg.segFrames, "segment-frames", 2000, "frames per appended segment (-stream)")
	flag.IntVar(&cfg.retention, "retention", 6, "segment ring retention in slots, 0 = unbounded (-stream)")
	flag.Float64Var(&cfg.gate, "gate", 0.12, "motion-gate energy threshold, 0 = gate off (-stream)")
	flag.DurationVar(&cfg.interval, "interval", 50*time.Millisecond, "synthetic camera append interval (-stream)")
	flag.Parse()
	cfg.profiles = strings.Split(cfg.datasets, ",")

	// SIGHUP triggers the same live add/drain cycle as -churn/-admin.
	sighup := make(chan os.Signal, 1)
	signal.Notify(sighup, syscall.SIGHUP)
	cfg.churnSignal = sighup

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "exserve:", err)
		os.Exit(1)
	}
}

// config collects the run parameters.
type config struct {
	datasets string
	profiles []string
	queries  int
	limit    int
	workers  int
	round    int
	scale    float64
	seed     uint64
	shards   int
	cache    int
	// Shared-result-tier knobs: the remote cache endpoint, the pre-warm
	// toggle and the cache-aware sampling toggle.
	cacheRemote string
	cacheWarm   bool
	cacheAware  bool
	adaptive    bool
	budget      int
	floor       int
	backend     string
	endpoint    string
	replicas    int
	// Heterogeneous-fleet knobs: the raw -replica-weight flag, its parsed
	// form (set during validation) and the scatter-gather toggle.
	replicaWeight string
	weights       []float64
	scatter       bool
	churn         time.Duration
	admin         string
	// churnSignal, when non-nil, triggers an add/drain cycle per receive
	// (wired to SIGHUP by main; tests poke it directly).
	churnSignal <-chan os.Signal
	// Track-query-demo knobs (-trackquery mode).
	track       bool
	minDuration int64
	coarseOnly  bool
	// Streaming-demo knobs (-stream mode).
	stream    bool
	segments  int
	segFrames int64
	retention int
	gate      float64
	interval  time.Duration
}

// backendStat tracks one httpbatch client for the stats table: a
// per-shard (and, with -replicas, per-replica) loopback client, or
// (shard -1, profile "(all)") the one shared client of an external
// endpoint.
type backendStat struct {
	profile string
	shard   int
	replica int
	client  *httpbatch.Client
}

// routerStat tracks one shard's replica router for the health table.
type routerStat struct {
	profile string
	shard   int
	router  *router.Router
}

// syncWriter serializes writes from the churn goroutines and the table
// renderer onto one underlying writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// engineOptions builds the engine configuration shared by the query and
// track modes, dialing the remote result tier when -cache-remote is set.
func engineOptions(cfg config) (exsample.EngineOptions, error) {
	opts := exsample.EngineOptions{
		Workers:        cfg.workers,
		FramesPerRound: cfg.round,
		CacheEntries:   cfg.cache,
		AdaptiveRounds: cfg.adaptive,
		GlobalBudget:   cfg.budget,
		FloorQuota:     cfg.floor,
		CacheAware:     cfg.cacheAware,
	}
	if cfg.cacheRemote != "" {
		client, err := httpcache.New(httpcache.Config{Endpoint: cfg.cacheRemote})
		if err != nil {
			return exsample.EngineOptions{}, fmt.Errorf("cache-remote: %w", err)
		}
		opts.RemoteCache = client
	}
	return opts, nil
}

// printTierTable renders the shared-result-tier stats when -cache-remote
// is active: per-tier hit/miss counts, remote round trips with their EWMA
// latency, and the singleflight merge/fill counters.
func printTierTable(w io.Writer, eng *exsample.Engine, cfg config) {
	if cfg.cacheRemote == "" {
		return
	}
	ts := eng.TierStats()
	fmt.Fprintf(w, "\nshared result tier (%s):\n", cfg.cacheRemote)
	fmt.Fprintf(w, "%-5s %10s %10s %12s %9s\n", "tier", "hits", "misses", "round-trips", "rtt-ms")
	fmt.Fprintf(w, "%-5s %10d %10d %12s %9s\n", "L1", ts.L1Hits, ts.L1Misses, "-", "-")
	fmt.Fprintf(w, "%-5s %10d %10d %12d %9.2f\n", "L2", ts.L2Hits, ts.L2Misses, ts.L2RoundTrips, ts.L2RTTSeconds*1e3)
	fmt.Fprintf(w, "singleflight: %d merged, %d filled, %d warmed; L2 outages: %d read, %d write\n",
		ts.Merges, ts.Fills, ts.Warmed, ts.L2Errors, ts.L2PutErrors)
}

// serveBackend starts a loopback HTTP server for a dataset's backend — the
// in-process stand-in for a remote GPU service — and returns the endpoint
// URL plus a shutdown func.
func serveBackend(ds *exsample.Dataset) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: httpbatch.Handler(ds.Backend())}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// fleetState is everything the run accumulates while opening sources —
// the stats tables, the shutdown hooks and the handles churn needs.
type fleetState struct {
	mu       sync.Mutex
	backends []backendStat
	routers  []routerStat
	stops    []func()
	sharded  []*exsample.ShardedSource
	// shared is the one external-endpoint client (nil without -endpoint).
	shared *httpbatch.Client
	// shardSeq hands out seeds for churn-attached shards.
	shardSeq map[string]uint64
}

func (f *fleetState) addStop(stop func()) {
	if stop != nil {
		f.mu.Lock()
		f.stops = append(f.stops, stop)
		f.mu.Unlock()
	}
}

// openShard opens one shard's dataset, wiring the configured backend: the
// in-process simulator, the shared external-endpoint client, a loopback
// server fed by a twin dataset, or — with -replicas R > 1 — a
// health-checked router over R loopback replicas.
func (f *fleetState) openShard(name string, shardIdx int, seed uint64, cfg config) (*exsample.Dataset, error) {
	if cfg.backend != "http" {
		return exsample.OpenProfile(name, cfg.scale, seed)
	}
	if f.shared != nil {
		return exsample.OpenProfile(name, cfg.scale, seed, exsample.WithBackend(f.shared))
	}
	specs := make([]router.ReplicaSpec, cfg.replicas)
	for r := 0; r < cfg.replicas; r++ {
		twin, err := exsample.OpenProfile(name, cfg.scale, seed)
		if err != nil {
			return nil, err
		}
		endpoint, stop, err := serveBackend(twin)
		if err != nil {
			return nil, err
		}
		f.addStop(stop)
		client, err := httpbatch.New(httpbatch.Config{Endpoint: endpoint, MaxBatch: 64})
		if err != nil {
			return nil, err
		}
		specs[r] = router.ReplicaSpec{Backend: client, Name: fmt.Sprintf("%s/s%d/r%d", name, shardIdx, r)}
		if len(cfg.weights) > 0 {
			specs[r].Weight = cfg.weights[r]
		}
		f.mu.Lock()
		f.backends = append(f.backends, backendStat{profile: name, shard: shardIdx, replica: r, client: client})
		f.mu.Unlock()
	}
	if cfg.replicas == 1 {
		// Single endpoint: no router in the path, exactly the PR 3 shape.
		return exsample.OpenProfile(name, cfg.scale, seed, exsample.WithBackend(specs[0].Backend))
	}
	rt, err := router.New(router.Config{Specs: specs, Scatter: cfg.scatter})
	if err != nil {
		return nil, err
	}
	f.addStop(rt.Close)
	f.mu.Lock()
	f.routers = append(f.routers, routerStat{profile: name, shard: shardIdx, router: rt})
	f.mu.Unlock()
	return exsample.OpenProfile(name, cfg.scale, seed, exsample.WithBackend(rt))
}

// openSource opens one profile as a plain dataset or an N-way sharded
// composition of independently generated datasets, each shard routed to
// its own backend fleet (or all to the shared external client).
func (f *fleetState) openSource(name string, cfg config) (exsample.Source, error) {
	if cfg.shards <= 1 {
		return f.openShard(name, 0, cfg.seed, cfg)
	}
	shards := make([]*exsample.Dataset, cfg.shards)
	for i := range shards {
		ds, err := f.openShard(name, i, cfg.seed+uint64(i)*1000, cfg)
		if err != nil {
			return nil, err
		}
		shards[i] = ds
	}
	ss, err := exsample.NewShardedSource(name, shards...)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.sharded = append(f.sharded, ss)
	f.shardSeq[name] = cfg.seed + uint64(cfg.shards)*1000
	f.mu.Unlock()
	return ss, nil
}

// churnCycle runs one live add/drain cycle on a sharded source: attach a
// freshly generated shard, then drain the lowest-indexed active shard.
// Running queries re-route at their next round; nothing restarts.
func (f *fleetState) churnCycle(w io.Writer, ss *exsample.ShardedSource, cfg config) error {
	f.mu.Lock()
	seed := f.shardSeq[ss.Name()]
	f.shardSeq[ss.Name()] = seed + 1000
	f.mu.Unlock()
	ds, err := f.openShard(ss.Name(), ss.NumShards(), seed, cfg)
	if err != nil {
		return fmt.Errorf("churn %s: open shard: %w", ss.Name(), err)
	}
	added, err := ss.AddShard(ds)
	if err != nil {
		return fmt.Errorf("churn %s: attach: %w", ss.Name(), err)
	}
	drained := -1
	for _, st := range ss.ShardStats() {
		if st.Status == "active" && st.Shard != added {
			drained = st.Shard
			break
		}
	}
	if drained < 0 {
		fmt.Fprintf(w, "churn: %s attached shard %d, no other active shard to drain\n", ss.Name(), added)
		return nil
	}
	if err := ss.DrainShard(drained); err != nil {
		return fmt.Errorf("churn %s: drain: %w", ss.Name(), err)
	}
	fmt.Fprintf(w, "churn: %s attached shard %d, draining shard %d\n", ss.Name(), added, drained)
	return nil
}

// churnAll runs one cycle on every sharded source.
func (f *fleetState) churnAll(w io.Writer, cfg config) {
	for _, ss := range f.sharded {
		if err := f.churnCycle(w, ss, cfg); err != nil {
			fmt.Fprintln(w, "churn:", err)
		}
	}
}

// adminHandler serves the ops surface: GET /healthz (shard + router
// health JSON) and POST /admin/{add,drain,churn}.
func (f *fleetState) adminHandler(w io.Writer, cfg config) http.Handler {
	mux := http.NewServeMux()
	source := func(r *http.Request) *exsample.ShardedSource {
		name := r.URL.Query().Get("source")
		for _, ss := range f.sharded {
			if ss.Name() == name {
				return ss
			}
		}
		return nil
	}
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		type shardHealth struct {
			Shard   int    `json:"shard"`
			Status  string `json:"status"`
			Frames  int64  `json:"frames"`
			Detects int64  `json:"detects"`
		}
		type sourceHealth struct {
			Name       string        `json:"name"`
			Generation uint64        `json:"generation"`
			Shards     []shardHealth `json:"shards"`
		}
		type replicaHealth struct {
			Name     string  `json:"name"`
			State    string  `json:"state"`
			Requests int64   `json:"requests"`
			Failures int64   `json:"failures"`
			Weight   float64 `json:"weight,omitempty"`
			Slices   int64   `json:"slices,omitempty"`
			EWMAms   float64 `json:"ewma_ms"`
			LastErr  string  `json:"last_error,omitempty"`
		}
		type routerHealth struct {
			Profile   string          `json:"profile"`
			Shard     int             `json:"shard"`
			Failovers int64           `json:"failovers"`
			Scatters  int64           `json:"scatters,omitempty"`
			Replicas  []replicaHealth `json:"replicas"`
		}
		var payload struct {
			Sources []sourceHealth `json:"sources"`
			Routers []routerHealth `json:"routers"`
		}
		// Snapshot under the lock: churn and /admin/add append to these
		// slices concurrently with health requests.
		f.mu.Lock()
		sharded := append([]*exsample.ShardedSource{}, f.sharded...)
		routers := append([]routerStat{}, f.routers...)
		f.mu.Unlock()
		for _, ss := range sharded {
			sh := sourceHealth{Name: ss.Name(), Generation: ss.Generation()}
			for _, st := range ss.ShardStats() {
				sh.Shards = append(sh.Shards, shardHealth{st.Shard, st.Status, st.NumFrames, st.DetectCalls})
			}
			payload.Sources = append(payload.Sources, sh)
		}
		for _, rs := range routers {
			rh := routerHealth{Profile: rs.profile, Shard: rs.shard,
				Failovers: rs.router.Failovers(), Scatters: rs.router.Scatters()}
			for _, st := range rs.router.Stats() {
				rh.Replicas = append(rh.Replicas, replicaHealth{
					Name: st.Name, State: st.State.String(), Requests: st.Requests,
					Failures: st.Failures, Weight: st.Weight, Slices: st.Slices,
					EWMAms: st.EWMALatencySeconds * 1e3, LastErr: st.LastErr,
				})
			}
			payload.Routers = append(payload.Routers, rh)
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(payload)
	})
	mux.HandleFunc("POST /admin/add", func(rw http.ResponseWriter, r *http.Request) {
		ss := source(r)
		if ss == nil {
			http.Error(rw, "unknown or unsharded source", http.StatusNotFound)
			return
		}
		f.mu.Lock()
		seed := f.shardSeq[ss.Name()]
		f.shardSeq[ss.Name()] = seed + 1000
		f.mu.Unlock()
		ds, err := f.openShard(ss.Name(), ss.NumShards(), seed, cfg)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		slot, err := ss.AddShard(ds)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(rw, "{\"shard\":%d}\n", slot)
	})
	mux.HandleFunc("POST /admin/drain", func(rw http.ResponseWriter, r *http.Request) {
		ss := source(r)
		if ss == nil {
			http.Error(rw, "unknown or unsharded source", http.StatusNotFound)
			return
		}
		var shard int
		if _, err := fmt.Sscanf(r.URL.Query().Get("shard"), "%d", &shard); err != nil {
			http.Error(rw, "shard query parameter required", http.StatusBadRequest)
			return
		}
		if err := ss.DrainShard(shard); err != nil {
			http.Error(rw, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(rw, "{\"drained\":%d}\n", shard)
	})
	mux.HandleFunc("POST /admin/churn", func(rw http.ResponseWriter, r *http.Request) {
		if ss := source(r); ss != nil {
			if err := f.churnCycle(w, ss, cfg); err != nil {
				http.Error(rw, err.Error(), http.StatusInternalServerError)
				return
			}
		} else {
			f.churnAll(w, cfg)
		}
		fmt.Fprint(rw, "{\"ok\":true}\n")
	})
	return mux
}

// runStream is the -stream mode: a synthetic camera appends segments into
// a bounded StreamSource ring while standing queries alert on them. Half
// the appended segments are dead (one barely-visible object), so with the
// gate on the segment table shows them fenced at zero detector cost.
func runStream(w io.Writer, cfg config) error {
	if cfg.queries < 1 {
		return fmt.Errorf("need at least one standing query, got %d", cfg.queries)
	}
	if cfg.segments < 0 {
		return fmt.Errorf("need a non-negative segment count, got %d", cfg.segments)
	}
	if cfg.segFrames < 16 {
		return fmt.Errorf("need at least 16 frames per segment, got %d", cfg.segFrames)
	}
	if cfg.backend != "" && cfg.backend != "sim" {
		return fmt.Errorf("-stream runs on the in-process sim backend (got %q)", cfg.backend)
	}
	if cfg.shards > 1 || cfg.churn > 0 || cfg.admin != "" || cfg.endpoint != "" || cfg.cacheRemote != "" {
		return fmt.Errorf("-stream is its own topology: drop -shards/-churn/-admin/-endpoint/-cache-remote")
	}
	w = &syncWriter{w: w}

	mkSeg := func(seed uint64, dead bool) (*exsample.Dataset, error) {
		spec := exsample.SynthSpec{
			NumFrames:    cfg.segFrames,
			NumInstances: 40,
			Class:        "car",
			MeanDuration: 100,
			SkewFraction: 1.0 / 8,
			ChunkFrames:  cfg.segFrames / 8,
			Seed:         seed,
		}
		if dead {
			spec.NumInstances = 1
			spec.MeanDuration = 1
		}
		return exsample.Synthesize(spec)
	}
	first, err := mkSeg(cfg.seed, false)
	if err != nil {
		return err
	}
	src, err := exsample.NewStreamSource(exsample.StreamConfig{
		Name:            "camera",
		Retention:       cfg.retention,
		MotionThreshold: cfg.gate,
	}, first)
	if err != nil {
		return err
	}
	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        cfg.workers,
		FramesPerRound: cfg.round,
		CacheEntries:   cfg.cache,
		AdaptiveRounds: cfg.adaptive,
		GlobalBudget:   cfg.budget,
		FloorQuota:     cfg.floor,
		EventBuffer:    1 << 15,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	fmt.Fprintf(w, "stream: %d standing queries over a %d-slot ring, %d-frame segments every %v, gate threshold %v\n\n",
		cfg.queries, cfg.retention, cfg.segFrames, cfg.interval, cfg.gate)

	// Standing alert log: each query's consumer prints its first few
	// distinct-object alerts, then just counts — the log shows the shape
	// (alerts arrive per segment, silence while parked) without drowning
	// the tables.
	const logPerQuery = 4
	start := time.Now()
	handles := make([]*exsample.QueryHandle, cfg.queries)
	alerts := make([]int64, cfg.queries)
	var logWG sync.WaitGroup
	for i := range handles {
		handles[i], err = eng.SubmitStanding(context.Background(), src,
			exsample.Query{Class: "car"}, exsample.Options{Seed: cfg.seed + uint64(i)})
		if err != nil {
			return err
		}
		logWG.Add(1)
		go func(i int, h *exsample.QueryHandle) {
			defer logWG.Done()
			logged := 0
			for ev := range h.Events() {
				if len(ev.New) == 0 {
					continue
				}
				alerts[i] += int64(len(ev.New))
				if logged < logPerQuery {
					logged++
					fmt.Fprintf(w, "alert: query %d  slot %d  frame %d  +%d object(s)  (%d found, %.1fs charged)\n",
						i, int(ev.Frame/cfg.segFrames), ev.Frame, len(ev.New), ev.Found, ev.Seconds)
					if logged == logPerQuery {
						fmt.Fprintf(w, "alert: query %d  ... (further alerts counted, not logged)\n", i)
					}
				}
			}
		}(i, handles[i])
	}

	waitParked := func(h *exsample.QueryHandle) {
		deadline := time.Now().Add(30 * time.Second)
		for !h.Parked() && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
	}
	for n := 1; n <= cfg.segments; n++ {
		time.Sleep(cfg.interval)
		dead := n%2 == 0
		seg, err := mkSeg(cfg.seed+uint64(n)*977, dead)
		if err != nil {
			return err
		}
		info, err := src.Append(seg)
		if err != nil {
			return err
		}
		st := src.StreamStats()
		fmt.Fprintf(w, "append: slot %d  %d frames  energy %.3f  gated=%-5v  live %d/%d evicted %d\n",
			info.Slot, info.NumFrames, info.Energy, info.Gated, st.Live, st.Appended, st.Evicted)
	}
	// Let the ring drain, then close the standing queries out.
	for _, h := range handles {
		waitParked(h)
	}
	for _, h := range handles {
		h.Cancel()
	}
	// The log goroutines own the alert counters; let them drain the closed
	// event channels before the table reads the counts.
	logWG.Wait()
	fmt.Fprintf(w, "\n%-3s %8s %8s %10s %8s\n", "#", "found", "frames", "charged-s", "alerts")
	var totalFrames int64
	for i, h := range handles {
		rep, err := h.Wait()
		if err != nil && err != context.Canceled {
			return fmt.Errorf("standing query %d: %w", i, err)
		}
		totalFrames += rep.FramesProcessed
		fmt.Fprintf(w, "%-3d %8d %8d %10.1f %8d\n",
			i, len(rep.Results), rep.FramesProcessed, rep.TotalSeconds(), alerts[i])
	}

	wall := time.Since(start)
	est := eng.Stats()
	sst := src.StreamStats()
	fmt.Fprintf(w, "\ntotal: %d detector frames in %v wall (%.0f frames/s aggregate); %d rounds, %d parks, %d wakes\n",
		totalFrames, wall.Round(time.Millisecond), float64(totalFrames)/wall.Seconds(),
		est.Rounds, est.Parks, est.Wakes)
	fmt.Fprintf(w, "ring: %d appended, %d live, %d evicted, %d gated; gate charge %.1fs (generation %d)\n",
		sst.Appended, sst.Live, sst.Evicted, sst.Gated, sst.GateSeconds, sst.Generation)

	fmt.Fprintf(w, "\nsegments of %s:\n", src.Name())
	fmt.Fprintf(w, "%-4s %-9s %8s %8s %10s\n", "slot", "status", "frames", "energy", "detects")
	stats := src.ShardStats()
	for _, seg := range src.Segments() {
		fmt.Fprintf(w, "%-4d %-9s %8d %8.3f %10d\n",
			seg.Slot, stats[seg.Slot].Status, seg.NumFrames, seg.Energy, stats[seg.Slot].DetectCalls)
	}
	return nil
}

// run opens the sources, fans the queries out over the engine, reacts to
// churn triggers and renders the throughput, shard, backend, router and
// cache tables.
func run(w io.Writer, cfg config) error {
	if cfg.stream {
		return runStream(w, cfg)
	}
	if cfg.track {
		return runTrack(w, cfg)
	}
	if cfg.queries < 1 {
		return fmt.Errorf("need at least one query, got %d", cfg.queries)
	}
	if cfg.limit < 1 {
		return fmt.Errorf("need a positive per-query limit, got %d", cfg.limit)
	}
	if cfg.shards < 1 {
		return fmt.Errorf("need at least one shard per profile, got %d", cfg.shards)
	}
	if cfg.backend == "" {
		cfg.backend = "sim"
	}
	if cfg.backend != "sim" && cfg.backend != "http" {
		return fmt.Errorf("unknown backend %q (want sim or http)", cfg.backend)
	}
	if cfg.endpoint != "" && cfg.backend != "http" {
		return fmt.Errorf("-endpoint requires -backend http")
	}
	if cfg.replicas < 1 {
		return fmt.Errorf("need at least one replica per shard, got %d", cfg.replicas)
	}
	if cfg.replicas > 1 && (cfg.backend != "http" || cfg.endpoint != "") {
		return fmt.Errorf("-replicas requires -backend http without -endpoint (the router fronts loopback replicas)")
	}
	if cfg.scatter && cfg.replicas <= 1 {
		return fmt.Errorf("-scatter requires -replicas > 1")
	}
	if cfg.replicaWeight != "" {
		if cfg.replicas <= 1 {
			return fmt.Errorf("-replica-weight requires -replicas > 1")
		}
		parts := strings.Split(cfg.replicaWeight, ",")
		if len(parts) != cfg.replicas {
			return fmt.Errorf("-replica-weight lists %d weights, want one per replica (%d)", len(parts), cfg.replicas)
		}
		cfg.weights = make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("-replica-weight %q: weights must be positive numbers", p)
			}
			cfg.weights[i] = v
		}
	}
	if cfg.churn > 0 && cfg.shards <= 1 {
		return fmt.Errorf("-churn requires -shards > 1")
	}
	if cfg.cacheWarm && cfg.cacheRemote == "" {
		return fmt.Errorf("-cache-warm requires -cache-remote")
	}
	if cfg.cacheAware && cfg.cache <= 0 && cfg.cacheRemote == "" {
		return fmt.Errorf("-cache-aware requires -cache or -cache-remote")
	}
	// Churn messages print from timer/signal goroutines while the main
	// goroutine renders tables; serialize the writer.
	w = &syncWriter{w: w}

	f := &fleetState{shardSeq: make(map[string]uint64)}
	defer func() {
		f.mu.Lock()
		stops := append([]func(){}, f.stops...)
		f.mu.Unlock()
		for _, stop := range stops {
			stop()
		}
	}()
	type target struct {
		src   exsample.Source
		class string
	}
	var targets []target
	if cfg.backend == "http" && cfg.endpoint != "" {
		shared, err := httpbatch.New(httpbatch.Config{Endpoint: cfg.endpoint, MaxBatch: 64})
		if err != nil {
			return err
		}
		f.shared = shared
		f.backends = append(f.backends, backendStat{profile: "(all)", shard: -1, client: shared})
	}
	for _, name := range cfg.profiles {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		src, err := f.openSource(name, cfg)
		if err != nil {
			return err
		}
		for _, class := range src.Classes() {
			targets = append(targets, target{src: src, class: class})
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no datasets given")
	}

	if cfg.admin != "" {
		ln, err := net.Listen("tcp", cfg.admin)
		if err != nil {
			return fmt.Errorf("admin: %w", err)
		}
		srv := &http.Server{Handler: f.adminHandler(w, cfg)}
		go srv.Serve(ln)
		f.addStop(func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		fmt.Fprintf(w, "admin: listening on http://%s\n", ln.Addr())
	}

	engOpts, err := engineOptions(cfg)
	if err != nil {
		return err
	}
	eng, err := exsample.NewEngine(engOpts)
	if err != nil {
		return err
	}
	defer eng.Close()

	// Pre-warm the local tier: copy whatever the remote already holds for
	// each target into L1 so the first rounds hit locally instead of
	// paying a round trip each.
	if cfg.cacheWarm {
		for _, tgt := range targets {
			n, err := eng.Warm(context.Background(), tgt.src, tgt.class, 0)
			if err != nil {
				return fmt.Errorf("cache-warm %s/%s: %w", tgt.src.Name(), tgt.class, err)
			}
			fmt.Fprintf(w, "warm: %s/%s — %d cached frame(s) copied to L1\n", tgt.src.Name(), tgt.class, n)
		}
	}

	// Churn triggers: a delay (-churn) and the signal channel (SIGHUP),
	// live until every query finishes. Both are joined before run returns
	// so an in-flight cycle cannot write to w (or register shutdown
	// hooks) after the tables render and the cleanup snapshot is taken.
	churnDone := make(chan struct{})
	var churnWG sync.WaitGroup
	defer func() {
		close(churnDone)
		churnWG.Wait()
	}()
	if cfg.churn > 0 && len(f.sharded) > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			select {
			case <-churnDone:
			case <-time.After(cfg.churn):
				f.churnAll(w, cfg)
			}
		}()
	}
	if cfg.churnSignal != nil {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for {
				select {
				case <-churnDone:
					return
				case _, ok := <-cfg.churnSignal:
					if !ok {
						return
					}
					f.churnAll(w, cfg)
				}
			}
		}()
	}

	start := time.Now()
	handles := make([]*exsample.QueryHandle, cfg.queries)
	specs := make([]target, cfg.queries)
	for i := 0; i < cfg.queries; i++ {
		specs[i] = targets[i%len(targets)]
		handles[i], err = eng.Submit(context.Background(), specs[i].src,
			exsample.Query{Class: specs[i].class, Limit: cfg.limit},
			exsample.Options{Seed: cfg.seed + uint64(i)})
		if err != nil {
			return err
		}
	}

	// Wait for every query concurrently so each row's throughput reflects
	// the query's own finish time, not the Wait loop's position.
	type outcome struct {
		rep     *exsample.Report
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, cfg.queries)
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *exsample.QueryHandle) {
			defer wg.Done()
			rep, err := h.Wait()
			outcomes[i] = outcome{rep: rep, err: err, elapsed: time.Since(start)}
		}(i, h)
	}
	wg.Wait()

	fmt.Fprintf(w, "engine: %d queries, %d workers, %d frames/round, %d shard(s)/profile, %d replica(s)/shard, %s backend\n\n",
		cfg.queries, cfg.workers, cfg.round, cfg.shards, cfg.replicas, cfg.backend)
	fmt.Fprintf(w, "%-3s %-12s %-14s %8s %8s %8s %10s %10s\n",
		"#", "dataset", "class", "found", "frames", "hits", "charged-s", "frames/s")
	var totalFrames int64
	for i, o := range outcomes {
		if o.err != nil {
			return fmt.Errorf("query %d (%s/%s): %w", i, specs[i].src.Name(), specs[i].class, o.err)
		}
		totalFrames += o.rep.FramesProcessed
		perSec := 0.0
		if secs := o.elapsed.Seconds(); secs > 0 {
			perSec = float64(o.rep.FramesProcessed) / secs
		}
		fmt.Fprintf(w, "%-3d %-12s %-14s %8d %8d %8d %10.1f %10.1f\n",
			i, specs[i].src.Name(), specs[i].class, len(o.rep.Results),
			o.rep.FramesProcessed, o.rep.CacheHits, o.rep.TotalSeconds(), perSec)
	}
	wall := time.Since(start)
	st := eng.Stats()
	fmt.Fprintf(w, "\ntotal: %d detector frames in %v wall (%.0f frames/s aggregate); %d rounds, %d detect batches\n",
		totalFrames, wall.Round(time.Millisecond), float64(totalFrames)/wall.Seconds(),
		st.Rounds, st.Batches)
	if cfg.adaptive {
		avgBatch := 0.0
		if st.Batches > 0 {
			avgBatch = float64(st.DetectCalls) / float64(st.Batches)
		}
		fmt.Fprintf(w, "\nadaptive rounds: base quota %d, peak %d, avg batch %.1f; %d grows / %d shrinks (%d capacity losses)\n",
			cfg.round, st.PeakQuota, avgBatch, st.QuotaGrows, st.QuotaShrinks, st.CapacityLosses)
		fmt.Fprintf(w, "%-3s %-12s %-14s %8s\n", "#", "dataset", "class", "quota")
		for i, h := range handles {
			fmt.Fprintf(w, "%-3d %-12s %-14s %8d\n", i, specs[i].src.Name(), specs[i].class, h.RoundQuota())
		}
	}
	if cfg.budget > 0 {
		ratio := 0.0
		if st.BudgetRequested > 0 {
			ratio = float64(st.BudgetGranted) / float64(st.BudgetRequested)
		}
		fmt.Fprintf(w, "\nglobal budget: %d frames/round, floor %d; granted %d of %d requested (%.1f%%)\n",
			cfg.budget, cfg.floor, st.BudgetGranted, st.BudgetRequested, ratio*100)
		fmt.Fprintf(w, "%-3s %-12s %-14s %10s %10s %7s\n",
			"#", "dataset", "class", "granted", "requested", "share%")
		for i, h := range handles {
			g, r := h.BudgetCounters()
			share := 0.0
			if st.BudgetGranted > 0 {
				share = float64(g) / float64(st.BudgetGranted) * 100
			}
			fmt.Fprintf(w, "%-3d %-12s %-14s %10d %10d %7.1f\n",
				i, specs[i].src.Name(), specs[i].class, g, r, share)
		}
	}

	// Snapshot the stats lists under the lock: the admin server and churn
	// goroutines stay live (and can attach shards) until run returns.
	f.mu.Lock()
	sharded := append([]*exsample.ShardedSource{}, f.sharded...)
	backends := append([]backendStat{}, f.backends...)
	routers := append([]routerStat{}, f.routers...)
	f.mu.Unlock()
	for _, ss := range sharded {
		fmt.Fprintf(w, "\nshards of %s (generation %d):\n", ss.Name(), ss.Generation())
		fmt.Fprintf(w, "%-3s %-9s %8s %10s\n", "#", "status", "frames", "detects")
		for _, sst := range ss.ShardStats() {
			fmt.Fprintf(w, "%-3d %-9s %8d %10d\n", sst.Shard, sst.Status, sst.NumFrames, sst.DetectCalls)
		}
	}
	if len(backends) > 0 {
		fmt.Fprintf(w, "\nbackend (httpbatch):\n")
		fmt.Fprintf(w, "%-12s %-5s %-7s %8s %8s %9s %8s %10s\n",
			"dataset", "shard", "replica", "batches", "frames", "avg-batch", "retries", "server-s")
		for _, b := range backends {
			cs := b.client.Stats()
			avg := 0.0
			if cs.Batches > 0 {
				avg = float64(cs.Frames) / float64(cs.Batches)
			}
			shard := fmt.Sprintf("%d", b.shard)
			if b.shard < 0 {
				shard = "all" // shared external endpoint
			}
			fmt.Fprintf(w, "%-12s %-5s %-7d %8d %8d %9.1f %8d %10.2f\n",
				b.profile, shard, b.replica, cs.Batches, cs.Frames, avg, cs.Retries, cs.ServerSeconds)
		}
	}
	if len(routers) > 0 {
		fmt.Fprintf(w, "\nrouter health/failover:\n")
		fmt.Fprintf(w, "%-20s %-9s %6s %8s %8s %8s %8s %9s %8s %9s  %s\n",
			"replica", "state", "weight", "requests", "success", "failures", "slices", "failover", "scatter", "ewma-ms", "last-error")
		for _, rs := range routers {
			for _, rst := range rs.router.Stats() {
				fmt.Fprintf(w, "%-20s %-9s %6.1f %8d %8d %8d %8d %9d %8d %9.2f  %s\n",
					rst.Name, rst.State.String(), rst.Weight, rst.Requests, rst.Successes, rst.Failures,
					rst.Slices, rs.router.Failovers(), rs.router.Scatters(), rst.EWMALatencySeconds*1e3, rst.LastErr)
			}
		}
	}
	if cfg.cache > 0 {
		cst := eng.CacheStats()
		fmt.Fprintf(w, "\ncache: %d entries, %d hits / %d misses (%.1f%% hit rate), %d evictions\n",
			cst.Entries, cst.Hits, cst.Misses, cst.HitRate()*100, cst.Evictions)
	}
	printTierTable(w, eng, cfg)
	return nil
}

// runTrack is the -trackquery mode: one MIRIS-style track-predicate query
// per (profile, class) target, scheduled concurrently through the shared
// engine, with a table showing how much of a dense scan each query's
// accelerate/refine loop avoided.
func runTrack(w io.Writer, cfg config) error {
	if cfg.limit < 1 {
		return fmt.Errorf("need a positive per-query limit, got %d", cfg.limit)
	}
	if cfg.shards < 1 {
		return fmt.Errorf("need at least one shard per profile, got %d", cfg.shards)
	}
	if cfg.minDuration < 0 {
		return fmt.Errorf("need a non-negative -min-duration, got %d", cfg.minDuration)
	}
	f := &fleetState{shardSeq: make(map[string]uint64)}
	defer func() {
		f.mu.Lock()
		stops := append([]func(){}, f.stops...)
		f.mu.Unlock()
		for _, stop := range stops {
			stop()
		}
	}()
	type target struct {
		src   exsample.Source
		class string
	}
	var targets []target
	for _, name := range cfg.profiles {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		src, err := f.openSource(name, cfg)
		if err != nil {
			return err
		}
		for _, class := range src.Classes() {
			targets = append(targets, target{src: src, class: class})
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no datasets given")
	}
	engOpts, err := engineOptions(cfg)
	if err != nil {
		return err
	}
	eng, err := exsample.NewEngine(engOpts)
	if err != nil {
		return err
	}
	defer eng.Close()

	if cfg.cacheWarm {
		if cfg.cacheRemote == "" {
			return fmt.Errorf("-cache-warm requires -cache-remote")
		}
		for _, tgt := range targets {
			n, err := eng.Warm(context.Background(), tgt.src, tgt.class, 0)
			if err != nil {
				return fmt.Errorf("cache-warm %s/%s: %w", tgt.src.Name(), tgt.class, err)
			}
			fmt.Fprintf(w, "warm: %s/%s — %d cached frame(s) copied to L1\n", tgt.src.Name(), tgt.class, n)
		}
	}

	start := time.Now()
	handles := make([]*exsample.TrackHandle, len(targets))
	for i, tgt := range targets {
		handles[i], err = eng.SubmitTrack(context.Background(), tgt.src,
			exsample.TrackPredicate{Class: tgt.class, MinDuration: cfg.minDuration},
			exsample.TrackOptions{Seed: cfg.seed + uint64(i), Limit: cfg.limit, CoarseOnly: cfg.coarseOnly})
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "track queries: %d targets, min-duration %d, %d workers, %d frames/round, %d shard(s)/profile\n\n",
		len(targets), cfg.minDuration, cfg.workers, cfg.round, cfg.shards)
	fmt.Fprintf(w, "%-3s %-12s %-14s %7s %8s %8s %8s %6s %8s %10s\n",
		"#", "dataset", "class", "tracks", "frames", "coarse", "refine", "ivals", "dense-x", "charged-s")
	var frames, dense int64
	for i, h := range handles {
		rep, err := h.Wait()
		if err != nil {
			return fmt.Errorf("track query %d (%s/%s): %w", i, targets[i].src.Name(), targets[i].class, err)
		}
		frames += rep.FramesProcessed
		dense += rep.DenseFrames
		fmt.Fprintf(w, "%-3d %-12s %-14s %7d %8d %8d %8d %6d %8.1f %10.1f\n",
			i, targets[i].src.Name(), targets[i].class, len(rep.Results),
			rep.FramesProcessed, rep.CoarseFrames, rep.RefineFrames,
			rep.Intervals, rep.Speedup(), rep.TotalSeconds())
	}
	wall := time.Since(start)
	ratio := 0.0
	if frames > 0 {
		ratio = float64(dense) / float64(frames)
	}
	fmt.Fprintf(w, "\ntotal: %d detector frames (dense scan: %d — %.1fx avoided) in %v wall; %d rounds, %d detect batches\n",
		frames, dense, ratio, wall.Round(time.Millisecond), eng.Stats().Rounds, eng.Stats().Batches)
	if cfg.cache > 0 {
		cst := eng.CacheStats()
		fmt.Fprintf(w, "cache: %d entries, %d hits / %d misses (%.1f%% hit rate)\n",
			cst.Entries, cst.Hits, cst.Misses, cst.HitRate()*100)
	}
	printTierTable(w, eng, cfg)
	return nil
}
