package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/exsample/exsample/cachestore"
	"github.com/exsample/exsample/cachestore/httpcache"
)

func testConfig(profiles []string, queries, limit int) config {
	return config{
		profiles: profiles,
		queries:  queries,
		limit:    limit,
		workers:  4,
		round:    2,
		scale:    0.02,
		seed:     3,
		shards:   1,
		replicas: 1,
	}
}

func TestRunConcurrentQueries(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, testConfig([]string{"dashcam", "bdd1k"}, 8, 5)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "engine: 8 queries") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "dashcam") || !strings.Contains(out, "bdd1k") {
		t.Fatalf("missing per-dataset rows:\n%s", out)
	}
	if !strings.Contains(out, "total:") {
		t.Fatalf("missing aggregate line:\n%s", out)
	}
}

func TestRunShardedWithCache(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 6, 5)
	cfg.shards = 2
	cfg.cache = 1 << 14
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 shard(s)/profile") {
		t.Fatalf("missing shard header:\n%s", out)
	}
	if !strings.Contains(out, "shards of dashcam (generation 1):") {
		t.Fatalf("missing per-shard table:\n%s", out)
	}
	if !strings.Contains(out, "cache:") || !strings.Contains(out, "hit rate") {
		t.Fatalf("missing cache stats:\n%s", out)
	}
}

func TestRunHTTPBackendLoopback(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 4, 5)
	cfg.backend = "http"
	cfg.shards = 2
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "http backend") {
		t.Fatalf("missing backend header:\n%s", out)
	}
	if !strings.Contains(out, "backend (httpbatch):") {
		t.Fatalf("missing backend table:\n%s", out)
	}
	if !strings.Contains(out, "avg-batch") || !strings.Contains(out, "server-s") {
		t.Fatalf("missing batch/latency columns:\n%s", out)
	}
	if !strings.Contains(out, "detect batches") {
		t.Fatalf("missing engine batch counter:\n%s", out)
	}
	// Two shards → two per-shard endpoint rows.
	if got := strings.Count(out, "dashcam      "); got < 2 {
		t.Fatalf("want 2 backend rows, table:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, testConfig([]string{"nonexistent"}, 2, 5)); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run(&buf, testConfig([]string{""}, 2, 5)); err == nil {
		t.Error("empty profile list accepted")
	}
	if err := run(&buf, testConfig([]string{"dashcam"}, 0, 5)); err == nil {
		t.Error("zero queries accepted")
	}
	if err := run(&buf, testConfig([]string{"dashcam"}, 1, 0)); err == nil {
		t.Error("zero limit accepted")
	}
	bad := testConfig([]string{"dashcam"}, 1, 5)
	bad.shards = 0
	if err := run(&buf, bad); err == nil {
		t.Error("zero shards accepted")
	}
	bad = testConfig([]string{"dashcam"}, 1, 5)
	bad.backend = "grpc"
	if err := run(&buf, bad); err == nil {
		t.Error("unknown backend accepted")
	}
	bad = testConfig([]string{"dashcam"}, 1, 5)
	bad.endpoint = "http://example.invalid"
	if err := run(&buf, bad); err == nil {
		t.Error("-endpoint without -backend http accepted")
	}
}

func TestRunReplicatedBackendWithRouter(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 4, 5)
	cfg.backend = "http"
	cfg.shards = 2
	cfg.replicas = 3
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 replica(s)/shard") {
		t.Fatalf("missing replica header:\n%s", out)
	}
	if !strings.Contains(out, "router health/failover:") {
		t.Fatalf("missing router health table:\n%s", out)
	}
	if !strings.Contains(out, "healthy") || !strings.Contains(out, "ewma-ms") {
		t.Fatalf("missing health columns:\n%s", out)
	}
	// 2 shards x 3 replicas = 6 replica rows named profile/sN/rM.
	for _, want := range []string{"dashcam/s0/r0", "dashcam/s0/r2", "dashcam/s1/r1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing replica row %s:\n%s", want, out)
		}
	}
}

func TestRunChurnCycleMidRun(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 6, 8)
	cfg.shards = 2
	cfg.churn = time.Millisecond
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "churn: dashcam attached shard 2, draining shard 0") {
		t.Fatalf("missing churn line:\n%s", out)
	}
	if !strings.Contains(out, "generation 3") {
		t.Fatalf("shard table missing post-churn generation:\n%s", out)
	}
	if !strings.Contains(out, "draining") || !strings.Contains(out, "active") {
		t.Fatalf("shard table missing statuses:\n%s", out)
	}
}

func TestRunSighupTriggersChurn(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 6, 8)
	cfg.shards = 2
	sig := make(chan os.Signal, 1)
	sig <- syscall.SIGHUP
	cfg.churnSignal = sig
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "churn: dashcam attached shard") {
		t.Fatalf("SIGHUP did not trigger a churn cycle:\n%s", buf.String())
	}
}

func TestAdminHandler(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 1, 1)
	cfg.shards = 2
	f := &fleetState{shardSeq: make(map[string]uint64)}
	if _, err := f.openSource("dashcam", cfg); err != nil {
		t.Fatal(err)
	}
	h := f.adminHandler(&buf, cfg)

	get := func(method, url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, url, nil))
		return rec
	}
	if rec := get("GET", "/healthz"); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), `"generation":1`) ||
		!strings.Contains(rec.Body.String(), `"status":"active"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	if rec := get("POST", "/admin/add?source=dashcam"); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), `"shard":2`) {
		t.Fatalf("add: %d %s", rec.Code, rec.Body.String())
	}
	if rec := get("POST", "/admin/drain?source=dashcam&shard=0"); rec.Code != 200 {
		t.Fatalf("drain: %d %s", rec.Code, rec.Body.String())
	}
	if rec := get("POST", "/admin/drain?source=dashcam&shard=0"); rec.Code != http.StatusConflict {
		t.Fatalf("double drain: %d, want 409", rec.Code)
	}
	if rec := get("POST", "/admin/drain?source=dashcam"); rec.Code != http.StatusBadRequest {
		t.Fatalf("drain without shard: %d, want 400", rec.Code)
	}
	if rec := get("POST", "/admin/add?source=nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("add unknown source: %d, want 404", rec.Code)
	}
	if rec := get("POST", "/admin/churn?source=dashcam"); rec.Code != 200 {
		t.Fatalf("churn: %d %s", rec.Code, rec.Body.String())
	}
	if rec := get("GET", "/healthz"); !strings.Contains(rec.Body.String(), `"status":"draining"`) {
		t.Fatalf("healthz after drain: %s", rec.Body.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	bad := testConfig([]string{"dashcam"}, 1, 5)
	bad.replicas = 0
	if err := run(&buf, bad); err == nil {
		t.Error("zero replicas accepted")
	}
	bad = testConfig([]string{"dashcam"}, 1, 5)
	bad.replicas = 2 // without -backend http
	if err := run(&buf, bad); err == nil {
		t.Error("-replicas without http backend accepted")
	}
	bad = testConfig([]string{"dashcam"}, 1, 5)
	bad.churn = time.Second // without shards
	if err := run(&buf, bad); err == nil {
		t.Error("-churn without -shards accepted")
	}
	bad = testConfig([]string{"dashcam"}, 1, 5)
	bad.cacheWarm = true // without -cache-remote
	if err := run(&buf, bad); err == nil {
		t.Error("-cache-warm without -cache-remote accepted")
	}
	bad = testConfig([]string{"dashcam"}, 1, 5)
	bad.cacheAware = true // without any cache
	if err := run(&buf, bad); err == nil {
		t.Error("-cache-aware without a cache accepted")
	}
}

// TestRunRemoteCacheTier: two exserve runs against one shared httpcache
// server — the ops-surface equivalent of two processes splitting a
// detector bill. The first run fills the server; the second pre-warms,
// samples cache-aware, and must show local hits plus the tier table.
func TestRunRemoteCacheTier(t *testing.T) {
	srv := httptest.NewServer(httpcache.Handler(cachestore.NewLocal(1 << 16)))
	defer srv.Close()
	cfg := testConfig([]string{"dashcam"}, 4, 5)
	cfg.cacheRemote = srv.URL
	var first bytes.Buffer
	if err := run(&first, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "shared result tier") {
		t.Fatalf("first run missing tier table:\n%s", first.String())
	}
	cfg.cacheWarm = true
	cfg.cacheAware = true
	var second bytes.Buffer
	if err := run(&second, cfg); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if !strings.Contains(out, "warm: dashcam/") {
		t.Fatalf("missing warm log line:\n%s", out)
	}
	if !strings.Contains(out, "shared result tier") || !strings.Contains(out, "L2") {
		t.Fatalf("missing tier table:\n%s", out)
	}
}

func TestRunAdaptiveRounds(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 4, 5)
	cfg.adaptive = true
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "adaptive rounds: base quota 2") {
		t.Fatalf("missing adaptive summary:\n%s", out)
	}
	if !strings.Contains(out, "quota") {
		t.Fatalf("missing per-query quota table:\n%s", out)
	}
}

func TestRunGlobalBudget(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 4, 5)
	cfg.budget = 6
	cfg.floor = 1
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "global budget: 6 frames/round, floor 1") {
		t.Fatalf("missing budget summary:\n%s", out)
	}
	if !strings.Contains(out, "granted") || !strings.Contains(out, "requested") {
		t.Fatalf("missing per-query budget table:\n%s", out)
	}
}

func TestRunStreamMode(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig(nil, 3, 0)
	cfg.stream = true
	cfg.segments = 6
	cfg.segFrames = 1000
	cfg.retention = 4
	cfg.gate = 0.12
	cfg.interval = time.Millisecond
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"stream: 3 standing queries",
		"append: slot 1",
		"gated=true",
		"alert: query 0",
		"segments of camera:",
		"gated",
		"evicted",
		"parks",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in stream-mode output:\n%s", want, out)
		}
	}
	// Standing queries must have parked at least once each and woken on
	// live appends.
	if strings.Contains(out, "0 parks, 0 wakes") {
		t.Fatalf("park/wake never exercised:\n%s", out)
	}

	bad := cfg
	bad.shards = 2
	if err := run(&buf, bad); err == nil {
		t.Error("-stream with -shards accepted")
	}
	bad = cfg
	bad.backend = "http"
	if err := run(&buf, bad); err == nil {
		t.Error("-stream with http backend accepted")
	}
	bad = cfg
	bad.segFrames = 4
	if err := run(&buf, bad); err == nil {
		t.Error("tiny segment frames accepted")
	}
}
