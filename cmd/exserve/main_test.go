package main

import (
	"bytes"
	"strings"
	"testing"
)

func testConfig(profiles []string, queries, limit int) config {
	return config{
		profiles: profiles,
		queries:  queries,
		limit:    limit,
		workers:  4,
		round:    2,
		scale:    0.02,
		seed:     3,
		shards:   1,
	}
}

func TestRunConcurrentQueries(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, testConfig([]string{"dashcam", "bdd1k"}, 8, 5)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "engine: 8 queries") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "dashcam") || !strings.Contains(out, "bdd1k") {
		t.Fatalf("missing per-dataset rows:\n%s", out)
	}
	if !strings.Contains(out, "total:") {
		t.Fatalf("missing aggregate line:\n%s", out)
	}
}

func TestRunShardedWithCache(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 6, 5)
	cfg.shards = 2
	cfg.cache = 1 << 14
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 shard(s)/profile") {
		t.Fatalf("missing shard header:\n%s", out)
	}
	if !strings.Contains(out, "shards of dashcam:") {
		t.Fatalf("missing per-shard table:\n%s", out)
	}
	if !strings.Contains(out, "cache:") || !strings.Contains(out, "hit rate") {
		t.Fatalf("missing cache stats:\n%s", out)
	}
}

func TestRunHTTPBackendLoopback(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig([]string{"dashcam"}, 4, 5)
	cfg.backend = "http"
	cfg.shards = 2
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "http backend") {
		t.Fatalf("missing backend header:\n%s", out)
	}
	if !strings.Contains(out, "backend (httpbatch):") {
		t.Fatalf("missing backend table:\n%s", out)
	}
	if !strings.Contains(out, "avg-batch") || !strings.Contains(out, "server-s") {
		t.Fatalf("missing batch/latency columns:\n%s", out)
	}
	if !strings.Contains(out, "detect batches") {
		t.Fatalf("missing engine batch counter:\n%s", out)
	}
	// Two shards → two per-shard endpoint rows.
	if got := strings.Count(out, "dashcam      "); got < 2 {
		t.Fatalf("want 2 backend rows, table:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, testConfig([]string{"nonexistent"}, 2, 5)); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run(&buf, testConfig([]string{""}, 2, 5)); err == nil {
		t.Error("empty profile list accepted")
	}
	if err := run(&buf, testConfig([]string{"dashcam"}, 0, 5)); err == nil {
		t.Error("zero queries accepted")
	}
	if err := run(&buf, testConfig([]string{"dashcam"}, 1, 0)); err == nil {
		t.Error("zero limit accepted")
	}
	bad := testConfig([]string{"dashcam"}, 1, 5)
	bad.shards = 0
	if err := run(&buf, bad); err == nil {
		t.Error("zero shards accepted")
	}
	bad = testConfig([]string{"dashcam"}, 1, 5)
	bad.backend = "grpc"
	if err := run(&buf, bad); err == nil {
		t.Error("unknown backend accepted")
	}
	bad = testConfig([]string{"dashcam"}, 1, 5)
	bad.endpoint = "http://example.invalid"
	if err := run(&buf, bad); err == nil {
		t.Error("-endpoint without -backend http accepted")
	}
}
