package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunConcurrentQueries(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"dashcam", "bdd1k"}, 8, 5, 4, 2, 0.02, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "engine: 8 queries") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "dashcam") || !strings.Contains(out, "bdd1k") {
		t.Fatalf("missing per-dataset rows:\n%s", out)
	}
	if !strings.Contains(out, "total:") {
		t.Fatalf("missing aggregate line:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"nonexistent"}, 2, 5, 2, 1, 0.02, 1); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run(&buf, []string{""}, 2, 5, 2, 1, 0.02, 1); err == nil {
		t.Error("empty profile list accepted")
	}
	if err := run(&buf, []string{"dashcam"}, 0, 5, 2, 1, 0.02, 1); err == nil {
		t.Error("zero queries accepted")
	}
	if err := run(&buf, []string{"dashcam"}, 1, 0, 2, 1, 0.02, 1); err == nil {
		t.Error("zero limit accepted")
	}
}
