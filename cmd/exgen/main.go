// Command exgen generates a synthetic dataset and exports its ground truth
// as JSON for inspection or external tooling, along with summary statistics
// (per-chunk histograms and the Figure 6 skew metric).
//
// Usage:
//
//	exgen -dataset amsterdam -scale 0.05 -out truth.json
//	exgen -dataset bdd1k -scale 0.05 -stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/exsample/exsample/internal/datasets"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/sorttrack"
	"github.com/exsample/exsample/internal/synth"
)

// exportInstance is the JSON shape for one ground-truth object.
type exportInstance struct {
	ID    int    `json:"id"`
	Class string `json:"class"`
	Start int64  `json:"start_frame"`
	End   int64  `json:"end_frame"`
}

// exportFile is the JSON document.
type exportFile struct {
	Dataset   string           `json:"dataset"`
	Scale     float64          `json:"scale"`
	NumFrames int64            `json:"num_frames"`
	NumChunks int              `json:"num_chunks"`
	Instances []exportInstance `json:"instances"`
}

func main() {
	var (
		dataset = flag.String("dataset", "dashcam", "profile name")
		scale   = flag.Float64("scale", 0.05, "dataset scale")
		seed    = flag.Uint64("seed", 1, "generation seed")
		out     = flag.String("out", "", "write ground truth JSON to this path ('-' = stdout)")
		stats   = flag.Bool("stats", false, "print per-class population and skew statistics")
		rebuild = flag.Bool("rebuild", false, "rerun the paper's §V-A ground-truth pipeline (sequential scan + SORT) and score recovery")
		stride  = flag.Int64("stride", 5, "scan stride for -rebuild")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *out, *stats, *rebuild, *stride); err != nil {
		fmt.Fprintln(os.Stderr, "exgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed uint64, out string, stats, rebuild bool, stride int64) error {
	p, err := datasets.ProfileByName(dataset)
	if err != nil {
		return err
	}
	ds, err := datasets.Build(p, scale, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%s @ scale %.2f: %d frames, %d files, %d chunks, %d instances\n",
		dataset, scale, ds.Repo.NumFrames(), ds.Repo.NumFiles(), len(ds.Chunks), len(ds.Instances))

	if stats {
		fmt.Printf("\n%-16s %8s %10s %10s %8s %8s\n", "class", "N", "mean dur", "max dur", "S", "k(half)")
		for _, q := range p.Queries {
			instances := ds.ClassInstances(q.Class)
			d := synth.Durations(instances)
			hist := metrics.ChunkHistogram(instances, ds.Chunks)
			s, err := metrics.SkewMetric(hist)
			if err != nil {
				return err
			}
			k, err := metrics.MinChunksForHalf(hist)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %8d %10.0f %10d %8.1f %8d\n",
				q.Class, len(instances), d.Mean, d.Max, s, k)
		}
	}

	if rebuild {
		detector, err := detect.NewSim(ds.Index, seed^0x6007, detect.WithNoise(detect.NoiseModel{
			MissProb: 0.05, JitterFrac: 0.02, MinScore: 0.5, MaxScore: 0.99,
		}))
		if err != nil {
			return err
		}
		res, err := sorttrack.BuildGroundTruth(detector, ds.Repo.NumFrames(), stride, sorttrack.Config{})
		if err != nil {
			return err
		}
		fmt.Printf("\nrebuilt ground truth: scanned %d frames (stride %d), recovered %d tracks\n",
			res.FramesScanned, stride, len(res.Instances))
		fmt.Printf("%-16s %10s %10s %8s\n", "class", "true", "recovered", "ratio")
		cmp := sorttrack.CompareToTruth(res.Instances, ds.Instances)
		for _, q := range p.Queries {
			c := cmp[q.Class]
			fmt.Printf("%-16s %10d %10d %8.2f\n", q.Class, c.TrueCount, c.RecoveredCount, c.CountRatio)
		}
	}

	if out == "" {
		return nil
	}
	doc := exportFile{
		Dataset:   dataset,
		Scale:     scale,
		NumFrames: ds.Repo.NumFrames(),
		NumChunks: len(ds.Chunks),
	}
	for _, in := range ds.Instances {
		doc.Instances = append(doc.Instances, exportInstance{
			ID: in.ID, Class: in.Class, Start: in.Start, End: in.End,
		})
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote %d instances to %s\n", len(doc.Instances), out)
	}
	return nil
}
