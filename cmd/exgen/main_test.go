package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunStats(t *testing.T) {
	if err := run("bddmot", 0.05, 3, "", true, false, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunExportJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "truth.json")
	if err := run("dashcam", 0.02, 5, out, false, false, 5); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc exportFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Dataset != "dashcam" || doc.NumFrames <= 0 || len(doc.Instances) == 0 {
		t.Fatalf("bad export: %+v", doc)
	}
	for _, in := range doc.Instances {
		if in.End < in.Start || in.Start < 0 || in.End >= doc.NumFrames {
			t.Fatalf("bad instance %+v", in)
		}
		if in.Class == "" {
			t.Fatal("empty class in export")
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 0.05, 1, "", false, false, 5); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("dashcam", 0, 1, "", false, false, 5); err == nil {
		t.Error("zero scale accepted")
	}
	if err := run("dashcam", 0.02, 1, "/nonexistent-dir/x.json", false, false, 5); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestRunRebuild(t *testing.T) {
	if err := run("bdd1k", 0.02, 3, "", false, true, 10); err != nil {
		t.Fatal(err)
	}
}
