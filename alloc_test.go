package exsample

import (
	"context"
	"testing"

	"github.com/exsample/exsample/internal/cache"
)

// TestDetectBatchMemoHitAllocFree: once every frame of a batch is resident
// in the cross-query memo cache, detectBatchInto through a warm scratch
// resolves the whole batch locally without a single allocation — the
// steady state of overlapping engine queries sharing a cache.
func TestDetectBatchMemoHitAllocFree(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	memo := cache.New(1 << 12)
	run, err := newQueryRun(ds, Query{Class: "car", Limit: 10}, Options{Seed: 3}, cacheConfig{memo: memo}, false)
	if err != nil {
		t.Fatal(err)
	}
	frames := []int64{10, 2000, 40_000, 90_000, 150_000, 199_999}
	var scr detectScratch
	ctx := context.Background()
	// First pass misses and fills the cache (and sizes the scratch).
	if _, err := run.detectBatchInto(ctx, frames, &scr); err != nil {
		t.Fatal(err)
	}
	res, err := run.detectBatchInto(ctx, frames, &scr)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range res {
		if !fr.cached {
			t.Fatalf("frame %d not cached on the second pass", frames[i])
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := run.detectBatchInto(ctx, frames, &scr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("all-hit detectBatch allocates %.2f objects/batch, want 0", allocs)
	}
}

// TestDetectOneScratchReuse: the sequential step loop's detectOne path
// reuses the per-run scratch, so repeated single-frame batches on the
// memo-hit path are allocation-free too.
func TestDetectOneScratchReuse(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	memo := cache.New(1 << 12)
	run, err := newQueryRun(ds, Query{Class: "car", Limit: 10}, Options{Seed: 3}, cacheConfig{memo: memo}, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := run.detectOne(ctx, 12345); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := run.detectOne(ctx, 12345); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("memo-hit detectOne allocates %.2f objects/call, want 0", allocs)
	}
}
