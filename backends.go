package exsample

import (
	"context"
	"fmt"
	"sync"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

// geomBox converts a public box to the internal geometry type.
func geomBox(b backend.Box) geom.Box { return geom.Box{X1: b.X1, Y1: b.Y1, X2: b.X2, Y2: b.Y2} }

// This file is the bridge between the public backend API and the internal
// query pipeline: backendDetector drives a backend.Backend through the
// internal detect.BatchDetector contract, and simBackend exposes a
// Dataset's simulated detector as a backend.Backend — making the simulated
// detector just the default Backend behind an adapter.

// trackToBackend converts internal detections to the public wire type.
func trackToBackend(dets []track.Detection) []backend.Detection {
	if len(dets) == 0 {
		return nil
	}
	out := make([]backend.Detection, len(dets))
	for i, d := range dets {
		out[i] = backend.Detection{
			Frame:   d.Frame,
			Class:   d.Class,
			Box:     backend.Box{X1: d.Box.X1, Y1: d.Box.Y1, X2: d.Box.X2, Y2: d.Box.Y2},
			Score:   d.Score,
			TruthID: d.TruthID,
		}
	}
	return out
}

// backendToTrack converts public detections back to the internal type. The
// frame is forced to the requested frame index: per the Backend contract,
// results[i] holds frame frames[i]'s detections, so the echoed Frame field
// is advisory and a confused backend cannot corrupt frame routing.
func backendToTrack(frame int64, dets []backend.Detection) []track.Detection {
	if len(dets) == 0 {
		return nil
	}
	out := make([]track.Detection, len(dets))
	for i, d := range dets {
		out[i] = track.Detection{
			Frame:   frame,
			Class:   d.Class,
			Box:     geomBox(d.Box),
			Score:   d.Score,
			TruthID: d.TruthID,
		}
	}
	return out
}

// backendDetector adapts a public backend.Backend to the internal batched
// detector contract for one query's class. It honors the backend's MaxBatch
// hint by splitting oversized batches, and charges either the measured
// per-frame cost (BatchCoster backends) or the nominal Hints().CostSeconds
// per frame.
type backendDetector struct {
	b      backend.Backend
	coster backend.BatchCoster // non-nil when b measures per-call cost
	class  string
	hints  backend.Hints
}

func newBackendDetector(b backend.Backend, class string) *backendDetector {
	bd := &backendDetector{b: b, class: class, hints: b.Hints()}
	if c, ok := b.(backend.BatchCoster); ok {
		bd.coster = c
	}
	return bd
}

// DetectBatch implements detect.BatchDetector over the public backend.
func (bd *backendDetector) DetectBatch(ctx context.Context, frames []int64) ([]detect.FrameOutput, error) {
	out := make([]detect.FrameOutput, 0, len(frames))
	max := bd.hints.MaxBatch
	for start := 0; start < len(frames); {
		end := len(frames)
		if max > 0 && end-start > max {
			end = start + max
		}
		chunk := frames[start:end]
		var (
			dets  [][]backend.Detection
			costs []float64
			err   error
		)
		if bd.coster != nil {
			dets, costs, err = bd.coster.DetectBatchCost(ctx, bd.class, chunk)
			if err == nil && len(costs) != len(chunk) {
				err = fmt.Errorf("exsample: backend returned %d costs for a %d-frame batch", len(costs), len(chunk))
			}
		} else {
			dets, err = bd.b.DetectBatch(ctx, bd.class, chunk)
		}
		if err != nil {
			return nil, err
		}
		if len(dets) != len(chunk) {
			return nil, fmt.Errorf("exsample: backend returned %d results for a %d-frame batch", len(dets), len(chunk))
		}
		for i, frame := range chunk {
			cost := bd.hints.CostSeconds
			if costs != nil {
				cost = costs[i]
			}
			out = append(out, detect.FrameOutput{Dets: backendToTrack(frame, dets[i]), Cost: cost})
		}
		start = end
	}
	return out, nil
}

// simBackend exposes a Dataset's simulated detector through the public
// Backend API: per-class detectors (with the dataset's noise, cost and
// failure-injection configuration) are built lazily and shared across
// calls. It is what Dataset.Backend returns by default, and what an
// httpbatch.Handler serves when a synthetic dataset stands in for a real
// GPU fleet.
type simBackend struct {
	d    *Dataset
	mu   sync.Mutex
	dets map[string]detect.Detector
}

func (b *simBackend) detector(class string) (detect.Detector, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if det, ok := b.dets[class]; ok {
		return det, nil
	}
	if _, err := b.d.GroundTruthCount(class); err != nil {
		return nil, err
	}
	det, err := b.d.newDetector(Query{Class: class})
	if err != nil {
		return nil, err
	}
	if b.dets == nil {
		b.dets = make(map[string]detect.Detector)
	}
	b.dets[class] = det
	return det, nil
}

// DetectBatch implements backend.Backend over the simulated detector.
func (b *simBackend) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	det, err := b.detector(class)
	if err != nil {
		return nil, err
	}
	out := make([][]backend.Detection, len(frames))
	for i, frame := range frames {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = trackToBackend(det.Detect(frame))
	}
	return out, nil
}

// Hints implements backend.Backend: the dataset's configured per-frame
// inference cost, with no batch-size bound.
func (b *simBackend) Hints() backend.Hints {
	return backend.Hints{CostSeconds: 1 / b.d.cost.DetectFPS}
}
