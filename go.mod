module github.com/exsample/exsample

go 1.22
