package exsample

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/backend/router"
)

// shardSpec returns the SynthSpec shared by a shard and its replica twins.
func shardSpec(framesEach int64, seed uint64) SynthSpec {
	return SynthSpec{
		NumFrames:    framesEach,
		NumInstances: 40,
		Class:        "car",
		MeanDuration: 100,
		SkewFraction: 1.0 / 8,
		ChunkFrames:  framesEach / 8,
		Seed:         seed,
	}
}

// elasticShard synthesizes one shard dataset.
func elasticShard(t *testing.T, framesEach int64, seed uint64, opts ...DatasetOption) *Dataset {
	t.Helper()
	ds, err := Synthesize(shardSpec(framesEach, seed), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// frameShard returns which of the equal-size shards a global frame lives
// on, by layout arithmetic (shards are composed in order).
func frameShard(frame, framesEach int64) int { return int(frame / framesEach) }

func TestElasticNoOpChurnByteIdentity(t *testing.T) {
	// The satellite acceptance test: attaching a shard mid-query and
	// draining it before it is ever sampled must leave a seeded Report
	// byte-identical to a run that never saw the churn — fenced arms are
	// skipped before the sampling policy draws randomness, so the pick
	// stream is untouched.
	const framesEach = 4000
	q := Query{Class: "car", Limit: 1 << 30}
	opts := Options{Seed: 73}

	run := func(churn bool) *Report {
		shards := []*Dataset{
			elasticShard(t, framesEach, 201),
			elasticShard(t, framesEach, 202),
			elasticShard(t, framesEach, 203),
		}
		ss, err := NewShardedSource("fleet", shards...)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := ss.NewSession(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Session is caller-driven: the caller bounds the run at 900 steps
		// (well past the churn window).
		for steps := 0; steps < 900; {
			_, ok, err := sess.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			steps++
			if churn && steps == 120 {
				// Attach and drain with no pick in between: the shard is
				// never used, so the query's next sync sees its chunks
				// already fenced and scores nothing new. (A pick between
				// the two would sample the then-active shard — a real
				// topology change, not a no-op.)
				slot, err := ss.AddShard(elasticShard(t, framesEach, 299))
				if err != nil {
					t.Fatal(err)
				}
				if err := ss.DrainShard(slot); err != nil {
					t.Fatal(err)
				}
			}
		}
		return sess.run.rep
	}

	want := run(false)
	got := run(true)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("no-op churn changed the report:\nplain:   frames=%d results=%d seconds=%v\nchurned: frames=%d results=%d seconds=%v",
			want.FramesProcessed, len(want.Results), want.TotalSeconds(),
			got.FramesProcessed, len(got.Results), got.TotalSeconds())
	}
	// The churned run really did sample between attach and drain, so the
	// identity is not vacuous.
	if want.FramesProcessed < 200 {
		t.Fatalf("run too short to exercise the churn window: %d frames", want.FramesProcessed)
	}
}

func TestElasticDrainFencesShardMidQuery(t *testing.T) {
	// Draining a shard mid-query: picks already made still apply, but no
	// frame of the drained shard is sampled after the drain, the belief
	// state of the other shards carries on, and the query completes with
	// every frame applied exactly once.
	const framesEach = 4000
	shards := shardDatasets(t, 3, framesEach)
	ss, err := NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ss.NewSession(Query{Class: "car", Limit: 1 << 30}, Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	drainedAt := int64(-1)
	var sawShard1Before bool
	for sess.Frames() < 900 {
		info, ok, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[info.Frame] {
			t.Fatalf("frame %d applied twice", info.Frame)
		}
		seen[info.Frame] = true
		sh := frameShard(info.Frame, framesEach)
		if drainedAt >= 0 && sh == 1 {
			t.Fatalf("frame %d (shard 1) sampled after the drain", info.Frame)
		}
		if drainedAt < 0 && sh == 1 {
			sawShard1Before = true
		}
		if drainedAt < 0 && sess.Frames() == 300 {
			if err := ss.DrainShard(1); err != nil {
				t.Fatal(err)
			}
			drainedAt = sess.Frames()
		}
	}
	if !sawShard1Before {
		t.Fatal("shard 1 was never sampled before the drain — fencing untested")
	}
	if got := sess.Frames(); got != 900 {
		t.Fatalf("query processed %d frames, want 900 (two shards hold plenty)", got)
	}
	if int64(len(seen)) != sess.Frames() {
		t.Fatalf("%d distinct frames for %d processed — lost or double-applied work", len(seen), sess.Frames())
	}
	if st := ss.ShardStats(); st[1].Status != "draining" || st[0].Status != "active" {
		t.Fatalf("shard stats statuses = %q/%q", st[0].Status, st[1].Status)
	}
	if ss.NumActiveShards() != 2 {
		t.Fatalf("NumActiveShards = %d", ss.NumActiveShards())
	}
}

func TestElasticAddShardMidQuery(t *testing.T) {
	// A shard attached mid-query becomes sampleable at the next pick: its
	// chunks join as fresh prior arms, its ground truth joins the
	// repository, and the running query starts drawing from it without
	// restarting.
	const framesEach = 4000
	shards := shardDatasets(t, 2, framesEach)
	ss, err := NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	if gen := ss.Generation(); gen != 1 {
		t.Fatalf("fresh source generation = %d, want 1", gen)
	}
	sess, err := ss.NewSession(Query{Class: "car", Limit: 1 << 30}, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var sawNewShard bool
	for {
		info, ok, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if frameShard(info.Frame, framesEach) == 2 {
			sawNewShard = true
			break
		}
		if sess.Frames() == 200 {
			if slot, err := ss.AddShard(elasticShard(t, framesEach, 300)); err != nil || slot != 2 {
				t.Fatalf("AddShard: slot=%d err=%v", slot, err)
			}
			if gen := ss.Generation(); gen != 2 {
				t.Fatalf("generation after attach = %d, want 2", gen)
			}
			if ss.NumFrames() != 3*framesEach {
				t.Fatalf("NumFrames after attach = %d", ss.NumFrames())
			}
			if n, _ := ss.GroundTruthCount("car"); n != 120 {
				t.Fatalf("GroundTruthCount after attach = %d, want 120", n)
			}
		}
		if sess.Frames() > 4000 {
			break
		}
	}
	if !sawNewShard {
		t.Fatal("attached shard never sampled by the running query")
	}
	// The running query's recall denominator grew to the reachable
	// population the moment the shard became samplable (40 per shard × 3),
	// so recall can never exceed 1 and RecallTarget tracks the enlarged
	// repository.
	if sess.run.truthTotal != 120 {
		t.Fatalf("recall denominator = %d after attach, want 120", sess.run.truthTotal)
	}
	// A query submitted after the attach sees the enlarged repository from
	// its first pick.
	rep, err := ss.Search(Query{Class: "car", Limit: 5}, Options{Seed: 9, MaxFrames: 400})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed == 0 {
		t.Fatal("post-attach query made no progress")
	}
}

func TestElasticBoundedBudgetWidensOnAttach(t *testing.T) {
	// A MaxFrames budget larger than the repository is clamped at
	// submission, but regains its headroom when an attached shard grows
	// the repository: the query runs past the old size up to its bound.
	const framesEach = 1000
	served := &atomic.Int64{}
	fired := &atomic.Bool{}
	var ss *ShardedSource
	shards := make([]*Dataset, 2)
	for i := range shards {
		twin := elasticShard(t, framesEach, uint64(700+i))
		shards[i] = elasticShard(t, framesEach, uint64(700+i), WithBackend(&gateBackend{
			inner:   twin.Backend(),
			served:  served,
			trigger: 500,
			fired:   fired,
			onFire: func() {
				if _, err := ss.AddShard(elasticShard(t, framesEach, 777)); err != nil {
					t.Errorf("attach: %v", err)
				}
			},
		}))
	}
	var err error
	ss, err = NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 4})
	h, err := e.Submit(context.Background(), ss, Query{Class: "car", Limit: 1 << 30},
		Options{Seed: 51, MaxFrames: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for range h.Events() {
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed != 3000 {
		t.Fatalf("processed %d frames, want 3000 (the bound, reachable after the attach)", rep.FramesProcessed)
	}
}

func TestElasticAllDrainingErrors(t *testing.T) {
	// The satellite error-path bar: a source whose every shard is draining
	// rejects new queries with a clear error instead of panicking or
	// spinning, across all three entry points.
	ds := smallDataset(t)
	ss, err := NewShardedSource("lone", ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.DrainShard(0); err != nil {
		t.Fatal(err)
	}
	q := Query{Class: "car", Limit: 1}
	if _, err := ss.Search(q, Options{Seed: 1}); !errors.Is(err, ErrNoActiveShards) {
		t.Errorf("Search on an all-draining source: %v, want ErrNoActiveShards", err)
	}
	if _, err := ss.NewSession(q, Options{Seed: 1}); !errors.Is(err, ErrNoActiveShards) {
		t.Errorf("NewSession on an all-draining source: %v, want ErrNoActiveShards", err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 1})
	if _, err := e.Submit(context.Background(), ss, q, Options{Seed: 1}); !errors.Is(err, ErrNoActiveShards) {
		t.Errorf("Engine.Submit on an all-draining source: %v, want ErrNoActiveShards", err)
	}
	// Attaching a fresh shard re-opens the source.
	if _, err := ss.AddShard(smallDataset(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Search(q, Options{Seed: 1, MaxFrames: 50}); err != nil {
		t.Fatalf("Search after re-attach: %v", err)
	}
}

func TestElasticTopologyMutationErrors(t *testing.T) {
	shards := shardDatasets(t, 2, 2000)
	ss, err := NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.AddShard(nil); err == nil {
		t.Error("nil shard attached")
	}
	failing, err := Synthesize(shardSpec(2000, 9), WithDetectorFailureAfter(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.AddShard(failing); err == nil {
		t.Error("failure-injected shard attached live")
	}
	if err := ss.DrainShard(-1); err == nil {
		t.Error("negative shard index drained")
	}
	if err := ss.DrainShard(2); err == nil {
		t.Error("out-of-range shard index drained")
	}
	if err := ss.DrainShard(0); err != nil {
		t.Fatal(err)
	}
	if err := ss.DrainShard(0); err == nil {
		t.Error("double drain accepted")
	}
}

// gateBackend wraps a backend, counting served frames on a shared counter
// and firing a callback exactly once when the count crosses a threshold —
// the deterministic mid-query trigger for the engine churn tests. The
// callback runs on the worker goroutine, i.e. strictly before the round's
// results apply, so the topology change is visible to the very next
// scheduling round.
type gateBackend struct {
	inner   backend.Backend
	served  *atomic.Int64
	trigger int64
	fired   *atomic.Bool
	onFire  func()
}

func (g *gateBackend) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	dets, err := g.inner.DetectBatch(ctx, class, frames)
	if err != nil {
		return nil, err
	}
	if g.served.Add(int64(len(frames))) >= g.trigger && g.fired.CompareAndSwap(false, true) {
		g.onFire()
	}
	return dets, nil
}

func (g *gateBackend) Hints() backend.Hints { return g.inner.Hints() }

func TestElasticEngineSurvivesShardDrain(t *testing.T) {
	// Acceptance (b): an Engine query over a 3-shard source survives one
	// shard drained mid-query — the in-flight round finishes and applies,
	// every later round avoids the drained shard, and the report has no
	// lost or double-applied frames.
	const framesEach = 4000
	const perRound = 4
	const maxFrames = 600
	served := &atomic.Int64{}
	fired := &atomic.Bool{}
	var ss *ShardedSource
	shards := make([]*Dataset, 3)
	for i := range shards {
		twin := elasticShard(t, framesEach, uint64(400+i))
		shards[i] = elasticShard(t, framesEach, uint64(400+i), WithBackend(&gateBackend{
			inner:   twin.Backend(),
			served:  served,
			trigger: 200,
			fired:   fired,
			onFire: func() {
				if err := ss.DrainShard(2); err != nil {
					t.Errorf("drain: %v", err)
				}
			},
		}))
	}
	var err error
	ss, err = NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: perRound, EventBuffer: 1 << 16})
	h, err := e.Submit(context.Background(), ss, Query{Class: "car", Limit: 1 << 30},
		Options{Seed: 21, MaxFrames: maxFrames})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	var events []QueryEvent
	for ev := range h.Events() {
		if seen[ev.Frame] {
			t.Fatalf("frame %d applied twice", ev.Frame)
		}
		seen[ev.Frame] = true
		events = append(events, ev)
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatalf("query did not survive the drain: %v", err)
	}
	if rep.FramesProcessed != maxFrames {
		t.Fatalf("processed %d frames, want %d", rep.FramesProcessed, maxFrames)
	}
	if int64(len(seen)) != rep.FramesProcessed || h.Dropped() != 0 {
		t.Fatalf("%d distinct frames, %d dropped events, for %d processed — lost or double-applied work",
			len(seen), h.Dropped(), rep.FramesProcessed)
	}
	// The drain fired inside a round that had served < trigger+perRound
	// frames; that round's in-flight picks may still include shard 2
	// (draining shards finish in-flight work), but every event after it
	// must not.
	var sawShard2Before bool
	for _, ev := range events {
		sh := frameShard(ev.Frame, framesEach)
		if ev.FramesProcessed <= 200+perRound {
			if sh == 2 {
				sawShard2Before = true
			}
			continue
		}
		if sh == 2 {
			t.Fatalf("frame %d (drained shard) applied at position %d, after the drain settled",
				ev.Frame, ev.FramesProcessed)
		}
	}
	if !sawShard2Before {
		t.Fatal("shard 2 was never sampled before the drain — fencing untested")
	}
}

func TestElasticEngineSurvivesReplicaDeath(t *testing.T) {
	// Acceptance (a): an Engine query whose shards sit behind 3-replica
	// routers survives one replica killed mid-query on every shard, and
	// the report is byte-identical to (1) a run with a healthy router
	// fleet and (2) a plain routerless run — failover is invisible above
	// the backend seam.
	const framesEach = 4000
	const maxFrames = 500
	q := Query{Class: "car", Limit: 1 << 30}
	opts := Options{Seed: 33, MaxFrames: maxFrames}

	runEngine := func(ss *ShardedSource) *Report {
		t.Helper()
		e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 4})
		h, err := e.Submit(context.Background(), ss, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for range h.Events() {
		}
		rep, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Plain routerless fleet — the PR 3 baseline.
	plainShards := make([]*Dataset, 3)
	for i := range plainShards {
		plainShards[i] = elasticShard(t, framesEach, uint64(500+i))
	}
	ssPlain, err := NewShardedSource("fleet", plainShards...)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runEngine(ssPlain)

	// Routered fleet: each shard fronted by 3 equivalent twin replicas.
	// kill, when set, marks replica 0 dead once the fleet has served
	// enough frames.
	build := func(kill bool) (*ShardedSource, []*router.Router) {
		t.Helper()
		served := &atomic.Int64{}
		fired := &atomic.Bool{}
		var routers []*router.Router
		var killFns []func()
		shards := make([]*Dataset, 3)
		for i := range shards {
			replicas := make([]backend.Backend, 3)
			var killReplica func()
			for rIdx := range replicas {
				twin := elasticShard(t, framesEach, uint64(500+i))
				dead := &atomic.Bool{}
				inner := twin.Backend()
				replicas[rIdx] = &mortalBackend{inner: inner, dead: dead}
				if rIdx == 0 {
					killReplica = func() { dead.Store(true) }
				}
			}
			r, err := router.New(router.Config{Replicas: replicas, FailureThreshold: 1})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(r.Close)
			routers = append(routers, r)
			killFns = append(killFns, killReplica)
			var be backend.Backend = r
			if kill {
				be = &gateBackend{
					inner:   r,
					served:  served,
					trigger: 150,
					fired:   fired,
					onFire: func() {
						for _, k := range killFns {
							k()
						}
					},
				}
			}
			shards[i] = elasticShard(t, framesEach, uint64(500+i), WithBackend(be))
		}
		ss, err := NewShardedSource("fleet", shards...)
		if err != nil {
			t.Fatal(err)
		}
		return ss, routers
	}

	ssHealthy, _ := build(false)
	healthy := runEngine(ssHealthy)
	if !reflect.DeepEqual(baseline, healthy) {
		t.Fatalf("healthy router fleet diverged from the routerless baseline (frames %d vs %d, results %d vs %d, seconds %v vs %v)",
			healthy.FramesProcessed, baseline.FramesProcessed,
			len(healthy.Results), len(baseline.Results),
			healthy.TotalSeconds(), baseline.TotalSeconds())
	}

	ssKilled, routers := build(true)
	killed := runEngine(ssKilled)
	if !reflect.DeepEqual(baseline, killed) {
		t.Fatalf("replica death became visible in the report (frames %d vs %d, results %d vs %d, seconds %v vs %v)",
			killed.FramesProcessed, baseline.FramesProcessed,
			len(killed.Results), len(baseline.Results),
			killed.TotalSeconds(), baseline.TotalSeconds())
	}
	var failovers int64
	var sawOpen bool
	for _, r := range routers {
		failovers += r.Failovers()
		for _, st := range r.Stats() {
			if st.State == router.Open {
				sawOpen = true
			}
		}
	}
	if failovers < 1 {
		t.Fatalf("no batch ever failed over (failovers=%d) — the kill never bit", failovers)
	}
	if !sawOpen {
		t.Fatal("no breaker opened on the killed replicas")
	}
}

// mortalBackend is a backend with a kill switch, standing in for a replica
// whose process dies.
type mortalBackend struct {
	inner backend.Backend
	dead  *atomic.Bool
}

func (m *mortalBackend) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	if m.dead.Load() {
		return nil, errReplicaDown
	}
	return m.inner.DetectBatch(ctx, class, frames)
}

var errReplicaDown = errors.New("replica down: connection refused")

func (m *mortalBackend) Hints() backend.Hints { return m.inner.Hints() }
