package exsample

import (
	"fmt"
	"sync"

	"github.com/exsample/exsample/internal/shard"
	"github.com/exsample/exsample/internal/track"
)

// StreamConfig parameterizes a live segment ring.
type StreamConfig struct {
	// Name identifies the stream source.
	Name string
	// Retention bounds how many appended segments stay resident: when an
	// append pushes the live count past Retention, the oldest segments are
	// evicted (their shards drain, exactly like DrainShard — no new picks,
	// in-flight work finishes). 0 keeps every segment forever.
	Retention int
	// MotionThreshold enables the motion-gate pre-filter: a segment whose
	// frame-diff energy (see SegmentInfo.Energy) falls below the threshold
	// is attached already fenced — its chunks never become sampler arms'
	// targets and the detector is never charged for its frames. 0 disables
	// the gate. Dead segments still occupy retention slots: they are
	// retained data, just not detector work.
	MotionThreshold float64
	// GateStride is the frame stride of the gate's probe pass (default
	// 16): the gate inspects every GateStride-th frame, so its cost is a
	// ~1/GateStride fraction of a full scan.
	GateStride int64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Name == "" {
		c.Name = "stream"
	}
	if c.GateStride <= 0 {
		c.GateStride = 16
	}
	return c
}

// Validate reports an error for out-of-range stream parameters.
func (c StreamConfig) Validate() error {
	if c.Retention < 0 {
		return fmt.Errorf("exsample: negative Retention %d", c.Retention)
	}
	if c.MotionThreshold < 0 {
		return fmt.Errorf("exsample: negative MotionThreshold %v", c.MotionThreshold)
	}
	return nil
}

// SegmentInfo describes one segment's place in the ring.
type SegmentInfo struct {
	// Slot is the segment's shard index in append order (global addresses
	// never move, so slots are stable for the stream's lifetime).
	Slot int
	// NumFrames is the segment length.
	NumFrames int64
	// Energy is the motion-gate energy measured at append time: the mean
	// per-probe activity over every GateStride-th frame, in [0, 1]. Frames
	// with moving objects probe at 1; empty frames contribute only a small
	// deterministic sensor-flicker noise floor.
	Energy float64
	// Gated reports whether the motion gate fenced the segment at append.
	Gated bool
	// Evicted reports whether retention has drained the segment.
	Evicted bool
}

// StreamStats summarizes the ring's lifetime counters.
type StreamStats struct {
	// Appended, Evicted and Gated count segments over the stream's
	// lifetime; Live is the resident count (Appended - Evicted), gated
	// segments included.
	Appended, Evicted, Gated, Live int
	// Generation is the underlying topology generation (1 at construction;
	// every append, gate flip and eviction increments it).
	Generation uint64
	// GateSeconds is the total charged cost of the motion-gate probe
	// passes — the price of never running the detector on dead segments.
	GateSeconds float64
}

// StreamSource is a Source whose frame space grows while queries run: a
// bounded ring of fixed-duration segments fed by a live camera. Append
// attaches a segment as one new shard of an elastic composed repository —
// running queries pick its chunks up at their next round boundary — and
// retention evicts the oldest segments by draining their shards, so the
// detector-facing working set stays bounded while every address ever
// handed out stays valid.
//
// Two things distinguish a StreamSource from the ShardedSource it wraps.
// First, the motion gate: a cheap frame-diff probe pass at append time
// (charged as GateSeconds) classifies each segment, and a dead segment is
// attached already fenced — Thompson samplers never draw its chunks and
// the detector is never charged for it. Second, standing queries: Engine.
// SubmitStanding registers a query that parks when the ring is drained and
// wakes on the next live append, emitting incremental QueryEvents
// indefinitely instead of terminating at budget exhaustion.
//
// StreamSource is safe for concurrent use; Append may race any number of
// running queries.
type StreamSource struct {
	cfg   StreamConfig
	inner *ShardedSource
	qs    *querySource

	// mu serializes Append/eviction bookkeeping; queries never take it.
	mu          sync.Mutex
	segs        []SegmentInfo
	head        int // oldest live slot
	evicted     int
	gatedTotal  int
	gateSeconds float64
	// probe is the reused gate probe buffer.
	probe []track.Instance
}

// NewStreamSource opens a live segment ring primed with one or more initial
// segments (a stream needs at least one segment to define its recording
// rate and classes). The motion gate and retention policy apply to the
// initial segments exactly as to appended ones.
func NewStreamSource(cfg StreamConfig, first ...*Dataset) (*StreamSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(first) == 0 {
		return nil, fmt.Errorf("exsample: stream needs at least one initial segment")
	}
	for i, d := range first {
		if d == nil {
			return nil, fmt.Errorf("exsample: initial segment %d is nil", i)
		}
		if d.failAfter > 0 {
			return nil, fmt.Errorf("exsample: failure-injected segments cannot join a stream (they would poison the memo cache)")
		}
	}
	inner, err := NewShardedSource(cfg.Name, first...)
	if err != nil {
		return nil, err
	}
	s := &StreamSource{cfg: cfg, inner: inner}
	// The stream shares the composed repository's plumbing but relaxes the
	// ground-truth lookup: a standing query's class may have no instances
	// yet (or ever), so an unknown class is an empty population, not an
	// error. The strict lookup stays available via GroundTruthCount.
	qs := *inner.qs
	qs.groundTruth = func(class string) (int, error) {
		n, err := inner.GroundTruthCount(class)
		if err != nil {
			return 0, nil
		}
		return n, nil
	}
	s.qs = &qs
	// Gate the initial segments before any query can exist, then apply
	// retention in append order.
	for slot, d := range first {
		info := s.classify(slot, d)
		if info.Gated {
			if err := inner.setShardStatus(slot, shard.Gated); err != nil {
				return nil, err
			}
		}
		s.segs = append(s.segs, info)
	}
	if err := s.evictOverflow(); err != nil {
		return nil, err
	}
	return s, nil
}

// classify runs the motion-gate probe pass over a segment and fills in its
// SegmentInfo. Callers hold s.mu (or are single-threaded construction).
func (s *StreamSource) classify(slot int, d *Dataset) SegmentInfo {
	info := SegmentInfo{Slot: slot, NumFrames: d.NumFrames()}
	if s.cfg.MotionThreshold <= 0 {
		return info
	}
	var energy float64
	probes := 0
	for f := int64(0); f < info.NumFrames; f += s.cfg.GateStride {
		s.probe = d.inner.Index.At(f, s.probe[:0])
		if len(s.probe) > 0 {
			energy += 1
		} else {
			energy += flicker(f)
		}
		probes++
	}
	if probes > 0 {
		info.Energy = energy / float64(probes)
	}
	// The probe pass is charged at the segment's own scan rate — the gate
	// is a strided scan, and its whole point is costing ~1/GateStride of
	// one.
	s.gateSeconds += d.cost.ScanSeconds(int64(probes))
	info.Gated = info.Energy < s.cfg.MotionThreshold
	if info.Gated {
		s.gatedTotal++
	}
	return info
}

// flicker is the gate's deterministic per-frame sensor-noise floor for
// frames with no moving objects: a splitmix64 hash of the frame index
// scaled into [0, 0.08). Determinism matters — the gate verdict must be a
// pure function of the segment, or replaying an ingest schedule would not
// reproduce the same fence pattern (and therefore the same alerts).
func flicker(frame int64) float64 {
	x := uint64(frame)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53) * 0.08
}

// Append attaches one camera segment to the ring and returns its
// SegmentInfo. The segment is gated first and attached atomically in its
// final state, so a dead segment is never samplable — not even for the
// instant between attach and fence. A live append wakes parked standing
// queries; retention then evicts the oldest segments past the configured
// bound. Append is safe to call while queries run.
func (s *StreamSource) Append(d *Dataset) (SegmentInfo, error) {
	if d == nil {
		return SegmentInfo{}, fmt.Errorf("exsample: cannot append a nil segment")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info := s.classify(len(s.segs), d)
	st := shard.Active
	if info.Gated {
		st = shard.Gated
	}
	slot, err := s.inner.addShardStatus(d, st)
	if err != nil {
		// The classification charged gate time for a segment that never
		// joined; keep the charge — the probe pass really ran.
		return SegmentInfo{}, err
	}
	if slot != info.Slot {
		// Unreachable while the stream owns its inner source; fail loudly
		// rather than corrupting slot bookkeeping.
		return SegmentInfo{}, fmt.Errorf("exsample: stream slot skew (attached %d, expected %d)", slot, info.Slot)
	}
	s.segs = append(s.segs, info)
	if err := s.evictOverflow(); err != nil {
		return SegmentInfo{}, err
	}
	return info, nil
}

// evictOverflow drains the oldest live segments until the resident count
// fits the retention bound. Callers hold s.mu.
func (s *StreamSource) evictOverflow() error {
	if s.cfg.Retention <= 0 {
		return nil
	}
	for len(s.segs)-s.evicted > s.cfg.Retention {
		if err := s.inner.DrainShard(s.head); err != nil {
			return err
		}
		s.segs[s.head].Evicted = true
		s.head++
		s.evicted++
	}
	return nil
}

// Segments returns a copy of every segment's ring state, in append order.
func (s *StreamSource) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, len(s.segs))
	copy(out, s.segs)
	return out
}

// StreamStats snapshots the ring's lifetime counters.
func (s *StreamSource) StreamStats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StreamStats{
		Appended:    len(s.segs),
		Evicted:     s.evicted,
		Gated:       s.gatedTotal,
		Live:        len(s.segs) - s.evicted,
		Generation:  s.inner.Generation(),
		GateSeconds: s.gateSeconds,
	}
}

// Name returns the stream's name.
func (s *StreamSource) Name() string { return s.inner.Name() }

// NumFrames returns the total frame count ever appended (evicted segments'
// frames stay addressable; addresses never move).
func (s *StreamSource) NumFrames() int64 { return s.inner.NumFrames() }

// NumChunks returns the total native chunk count across segments.
func (s *StreamSource) NumChunks() int { return s.inner.NumChunks() }

// NumShards returns the number of segments ever attached.
func (s *StreamSource) NumShards() int { return s.inner.NumShards() }

// NumActiveShards returns how many segments currently accept new picks
// (live, not gated).
func (s *StreamSource) NumActiveShards() int { return s.inner.NumActiveShards() }

// Generation returns the ring's topology generation.
func (s *StreamSource) Generation() uint64 { return s.inner.Generation() }

// Hours returns the appended video length in hours.
func (s *StreamSource) Hours() float64 { return s.inner.Hours() }

// Classes lists the union of the segments' searchable classes, sorted.
func (s *StreamSource) Classes() []string { return s.inner.Classes() }

// GroundTruthCount returns the summed distinct-instance population of a
// class across attached segments. Unlike the query pipeline's internal
// lookup — which treats a class the stream has not seen yet as an empty
// population — this reports an unknown class as an error.
func (s *StreamSource) GroundTruthCount(class string) (int, error) {
	return s.inner.GroundTruthCount(class)
}

// ShardStats snapshots per-segment detector traffic and lifecycle state.
// A gated segment's DetectCalls staying at zero is the motion gate's whole
// value proposition, and what the acceptance tests assert.
func (s *StreamSource) ShardStats() []ShardStat { return s.inner.ShardStats() }

// Search runs a bounded query over the currently retained segments; see
// Dataset.Search. The union of active segments behaves exactly like a
// ShardedSource with the same shards and fences.
func (s *StreamSource) Search(q Query, opts Options) (*Report, error) {
	return SearchSource(s, q, opts)
}

// NewSession prepares an incremental search over the retained segments.
func (s *StreamSource) NewSession(q Query, opts Options) (*Session, error) {
	return NewSession(s, q, opts)
}

// onAppend forwards the wake-on-append subscription to the composed
// repository — the seam SubmitStanding uses.
func (s *StreamSource) onAppend(fn func()) (cancel func()) { return s.inner.onAppend(fn) }

// querySource implements Source.
func (s *StreamSource) querySource() *querySource {
	if s == nil {
		return nil
	}
	return s.qs
}
