package exsample

import (
	"context"
	"reflect"
	"testing"
)

// shardDatasets builds n small datasets with distinct seeds, all carrying
// the class "car".
func shardDatasets(t *testing.T, n int, framesEach int64, opts ...DatasetOption) []*Dataset {
	t.Helper()
	out := make([]*Dataset, n)
	for i := range out {
		ds, err := Synthesize(SynthSpec{
			NumFrames:    framesEach,
			NumInstances: 40,
			Class:        "car",
			MeanDuration: 100,
			SkewFraction: 1.0 / 8,
			ChunkFrames:  framesEach / 8,
			Seed:         uint64(100 + i),
		}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ds
	}
	return out
}

func TestShardedSingleShardMatchesSearch(t *testing.T) {
	// The acceptance bar: a seeded query against a 1-shard ShardedSource
	// is byte-identical to Dataset.Search on the underlying dataset — the
	// remapping is the identity and the pipeline is shared.
	ds := smallDataset(t, WithPerfectDetector())
	ss, err := NewShardedSource("one", ds)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Class: "car", Limit: 25}
	for name, opts := range map[string]Options{
		"exsample":  {Seed: 73},
		"batched":   {Seed: 73, BatchSize: 8},
		"random":    {Strategy: StrategyRandom, Seed: 73},
		"proxy":     {Strategy: StrategyProxy, Seed: 73},
		"fusion":    {FuseProxyWithinChunk: true, Seed: 73},
		"homechunk": {HomeChunkAccounting: true, Seed: 73},
		"autochunk": {AutoChunk: true, Seed: 73},
	} {
		want, err := ds.Search(q, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ss.Search(q, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: 1-shard source diverged from Dataset.Search (frames %d vs %d, results %d vs %d, seconds %v vs %v)",
				name, got.FramesProcessed, want.FramesProcessed,
				len(got.Results), len(want.Results), got.TotalSeconds(), want.TotalSeconds())
		}
	}
}

func TestShardedSourceBasics(t *testing.T) {
	shards := shardDatasets(t, 3, 20_000)
	ss, err := NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumShards() != 3 {
		t.Fatalf("NumShards = %d", ss.NumShards())
	}
	if ss.NumFrames() != 60_000 {
		t.Fatalf("NumFrames = %d", ss.NumFrames())
	}
	wantChunks := 0
	for _, d := range shards {
		wantChunks += d.NumChunks()
	}
	if ss.NumChunks() != wantChunks {
		t.Fatalf("NumChunks = %d, want %d", ss.NumChunks(), wantChunks)
	}
	n, err := ss.GroundTruthCount("car")
	if err != nil {
		t.Fatal(err)
	}
	if n != 120 {
		t.Fatalf("GroundTruthCount = %d, want 120 (40 per shard)", n)
	}
	if _, err := ss.GroundTruthCount("dragon"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if got := ss.Classes(); len(got) != 1 || got[0] != "car" {
		t.Fatalf("Classes = %v", got)
	}
	if _, err := NewShardedSource("empty"); err == nil {
		t.Fatal("empty shard list accepted")
	}
}

func TestShardedDistinctCountingAcrossShards(t *testing.T) {
	// Two shards built from the SAME seed carry instances with identical
	// local truth ids; the global remap must keep them distinct, so an
	// exhaustive query reaches full recall over the doubled population.
	ds1, err := Synthesize(SynthSpec{
		NumFrames: 10_000, NumInstances: 12, Class: "car",
		MeanDuration: 80, ChunkFrames: 1000, Seed: 5,
	}, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := Synthesize(SynthSpec{
		NumFrames: 10_000, NumInstances: 12, Class: "car",
		MeanDuration: 80, ChunkFrames: 1000, Seed: 5,
	}, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShardedSource("twins", ds1, ds2)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ss.GroundTruthCount("car"); n != 24 {
		t.Fatalf("population = %d, want 24", n)
	}
	rep, err := ss.Search(Query{Class: "car", RecallTarget: 1}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall < 1 {
		t.Fatalf("exhaustive sharded query reached recall %v over the doubled population (found %d)",
			rep.Recall, len(rep.Results))
	}
}

func TestShardedEngineMatchesShardedSearch(t *testing.T) {
	// Engine ≡ Search must hold over a 4-shard source too: scheduling and
	// shard-affinity grouping add no behavior.
	shards := shardDatasets(t, 4, 20_000, WithPerfectDetector())
	ss, err := NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Class: "car", Limit: 30}
	opts := Options{Seed: 17}
	want, err := ss.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		e := newTestEngine(t, EngineOptions{Workers: workers, FramesPerRound: 1})
		h, err := e.Submit(context.Background(), ss, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: sharded engine query diverged from SearchSource (frames %d vs %d, results %d vs %d)",
				workers, got.FramesProcessed, want.FramesProcessed, len(got.Results), len(want.Results))
		}
	}
}

func TestShardedEngineDeterministicAcrossRuns(t *testing.T) {
	// Same seed, two independent engines under concurrent load: identical
	// reports.
	shards := shardDatasets(t, 4, 20_000, WithPerfectDetector())
	run := func() *Report {
		ss, err := NewShardedSource("fleet", shards...)
		if err != nil {
			t.Fatal(err)
		}
		e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 4, CacheEntries: 1 << 14})
		var others []*QueryHandle
		for i := 0; i < 3; i++ {
			h, err := e.Submit(context.Background(), ss, Query{Class: "car", Limit: 15},
				Options{Seed: uint64(200 + i)})
			if err != nil {
				t.Fatal(err)
			}
			others = append(others, h)
		}
		h, err := e.Submit(context.Background(), ss, Query{Class: "car", Limit: 30}, Options{Seed: 55})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range others {
			if _, err := o.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		return rep
	}
	a, b := run(), run()
	// Cache hit/miss split depends on concurrent interleaving; everything
	// else — results, frames, curve — must be identical.
	a.CacheHits, a.CacheMisses = 0, 0
	b.CacheHits, b.CacheMisses = 0, 0
	if !reflect.DeepEqual(a.Results, b.Results) || a.FramesProcessed != b.FramesProcessed {
		t.Fatalf("sharded engine runs diverged: frames %d vs %d, results %d vs %d",
			a.FramesProcessed, b.FramesProcessed, len(a.Results), len(b.Results))
	}
}

func TestShardedEngineCancellation(t *testing.T) {
	shards := shardDatasets(t, 4, 20_000, WithPerfectDetector())
	ss, err := NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 2, CacheEntries: 1 << 12})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := e.Submit(ctx, ss, Query{Class: "car", Limit: 1 << 30}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for range h.Events() {
		seen++
		if seen == 10 {
			cancel()
		}
	}
	rep, err := h.Wait()
	if err == nil {
		t.Fatal("cancelled sharded query returned nil error")
	}
	if rep.FramesProcessed < 10 || rep.FramesProcessed >= ss.NumFrames() {
		t.Fatalf("partial report has %d frames", rep.FramesProcessed)
	}
}

func TestShardAffinityDoesNotStarveSmallShards(t *testing.T) {
	// One shard is 16x smaller than the others. Affinity grouping only
	// reorders within a round, so the sampler must still reach the small
	// shard's chunks and the query must still find its objects.
	big := shardDatasets(t, 3, 32_000, WithPerfectDetector())
	tiny, err := Synthesize(SynthSpec{
		NumFrames:    2_000,
		NumInstances: 10,
		Class:        "car",
		MeanDuration: 60,
		ChunkFrames:  500,
		Seed:         77,
	}, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShardedSource("lopsided", big[0], tiny, big[1], big[2])
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 8})
	// Two concurrent queries so rounds carry multi-query batches.
	h1, err := e.Submit(context.Background(), ss, Query{Class: "car", Limit: 60}, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(context.Background(), ss, Query{Class: "car", Limit: 60}, Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
	stats := ss.ShardStats()
	for _, st := range stats {
		if st.DetectCalls == 0 {
			t.Errorf("shard %d (%s, %d frames) received no detector calls — starved",
				st.Shard, st.Name, st.NumFrames)
		}
	}
	var total int64
	for _, st := range stats {
		total += st.DetectCalls
	}
	// The tiny shard holds ~2% of frames; require it saw a nontrivial
	// share of traffic rather than a stray call.
	if frac := float64(stats[1].DetectCalls) / float64(total); frac < 0.005 {
		t.Errorf("tiny shard received %.3f%% of detector traffic", frac*100)
	}
}

func TestShardedFailureInjectionStillTerminates(t *testing.T) {
	// Per-shard failure injection: queries keep terminating on their
	// budget, and the engine bypasses the memo cache for such sources.
	bad, err := Synthesize(SynthSpec{
		NumFrames: 10_000, NumInstances: 20, Class: "car",
		MeanDuration: 80, ChunkFrames: 1000, Seed: 31,
	}, WithDetectorFailureAfter(40))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Synthesize(SynthSpec{
		NumFrames: 10_000, NumInstances: 20, Class: "car",
		MeanDuration: 80, ChunkFrames: 1000, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShardedSource("degraded", bad, ok)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, CacheEntries: 1 << 10})
	h, err := e.Submit(context.Background(), ss, Query{Class: "car", Limit: 1 << 30},
		Options{Seed: 7, MaxFrames: 500})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed != 500 {
		t.Fatalf("degraded query processed %d frames, want its 500-frame budget", rep.FramesProcessed)
	}
	if st := e.CacheStats(); st.Hits+st.Misses != 0 {
		t.Fatalf("memo cache consulted for a failure-injected source: %+v", st)
	}
}
