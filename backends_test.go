package exsample

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/backend/httpbatch"
)

// truthTwin opens a second dataset identical to smallDataset — same spec,
// same seed — so one copy can serve detections while the other runs the
// query, the way a remote GPU fleet is a separate process from the sampler.
func truthTwin(t *testing.T, opts ...DatasetOption) *Dataset {
	t.Helper()
	return smallDataset(t, opts...)
}

func TestDatasetBackendDefaultIsSim(t *testing.T) {
	ds := smallDataset(t)
	b := ds.Backend()
	if b == nil {
		t.Fatal("nil default backend")
	}
	hints := b.Hints()
	if hints.CostSeconds <= 0 {
		t.Fatalf("default backend hints %+v: no cost", hints)
	}
	dets, err := b.DetectBatch(context.Background(), "car", []int64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 3 {
		t.Fatalf("got %d results, want 3", len(dets))
	}
	if _, err := b.DetectBatch(context.Background(), "dragon", []int64{0}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestWithBackendSimRoundTripIsByteIdentical(t *testing.T) {
	// Routing the simulated detector through the public Backend API (an
	// attached twin's Backend) must change nothing: the default path IS
	// the backend path for the sim, so reports stay byte-identical.
	plain := smallDataset(t)
	twin := truthTwin(t)
	viaBackend := smallDataset(t, WithBackend(twin.Backend()))

	q := Query{Class: "car", Limit: 20}
	opts := Options{Seed: 99}
	want, err := plain.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := viaBackend.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("backend-routed search diverged:\nwant frames=%d detect=%v results=%d\ngot  frames=%d detect=%v results=%d",
			want.FramesProcessed, want.DetectSeconds, len(want.Results),
			got.FramesProcessed, got.DetectSeconds, len(got.Results))
	}
}

func TestHTTPBatchEngineEndToEnd(t *testing.T) {
	// The acceptance setup: a twin dataset served over the httpbatch wire
	// protocol, the query dataset running against it through the Engine.
	// The report must be byte-identical to the all-local sim run, and each
	// scheduling round must have issued exactly one wire batch (single
	// source, one affinity group per round). Round sizes cover a
	// non-power-of-two to pin the exact per-frame cost transport (a
	// divide-by-batch-size would drift in the last ULP at 6).
	twin := truthTwin(t)
	srv := httptest.NewServer(httpbatch.Handler(twin.Backend()))
	defer srv.Close()

	for _, round := range []int{8, 6} {
		client, err := httpbatch.New(httpbatch.Config{Endpoint: srv.URL, MaxBatch: 64})
		if err != nil {
			t.Fatal(err)
		}
		remote := smallDataset(t, WithBackend(client))
		local := smallDataset(t)

		q := Query{Class: "car", Limit: 15}
		opts := Options{Seed: 41}

		e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: round})
		h, err := e.Submit(context.Background(), remote, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}

		eLocal := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: round})
		hLocal, err := eLocal.Submit(context.Background(), local, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := hLocal.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round=%d: remote run diverged from local sim:\nwant frames=%d detect=%v results=%d\ngot  frames=%d detect=%v results=%d",
				round, want.FramesProcessed, want.DetectSeconds, len(want.Results),
				got.FramesProcessed, got.DetectSeconds, len(got.Results))
		}

		// One DetectBatch per affinity group per round: a single unsharded
		// query means engine batches == wire batches == scheduling rounds
		// that dispatched work, and every proposed frame went over the
		// wire.
		st := client.Stats()
		es := e.Stats()
		if st.Batches != es.Batches {
			t.Fatalf("round=%d: wire batches %d != engine batches %d: groups were split or merged", round, st.Batches, es.Batches)
		}
		if st.Frames != es.DetectCalls {
			t.Fatalf("round=%d: wire frames %d != engine frames %d", round, st.Frames, es.DetectCalls)
		}
		// The final round's tail can be discarded unapplied once the limit
		// fires, so the report covers at most the wire traffic.
		if got.FramesProcessed > st.Frames {
			t.Fatalf("round=%d: report frames %d exceed wire frames %d", round, got.FramesProcessed, st.Frames)
		}
		if st.Retries != 0 || st.Requests != st.Batches {
			t.Fatalf("round=%d: unexpected retries: %+v", round, st)
		}
		// Charged inference time came from the server-reported per-frame
		// costs (discarded tail frames were paid on the wire but never
		// charged).
		if got.DetectSeconds <= 0 || got.DetectSeconds > st.ServerSeconds+1e-9 {
			t.Fatalf("round=%d: report charged %v detect seconds, server reported %v", round, got.DetectSeconds, st.ServerSeconds)
		}
	}
}

func TestFailureInjectionAppliesToCustomBackends(t *testing.T) {
	// WithDetectorFailureAfter must not be silently dropped when a custom
	// backend is attached: the outage injects at the same per-frame count
	// on both paths, so the degraded reports stay byte-identical.
	q := Query{Class: "car", Limit: 500}
	opts := Options{Seed: 13, MaxFrames: 400}

	simInjected := smallDataset(t, WithDetectorFailureAfter(20))
	want, err := simInjected.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}

	twin := truthTwin(t)
	backendInjected := smallDataset(t, WithBackend(twin.Backend()), WithDetectorFailureAfter(20))
	got, err := backendInjected.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("backend-path failure injection diverged: frames %d vs %d, results %d vs %d",
			got.FramesProcessed, want.FramesProcessed, len(got.Results), len(want.Results))
	}
	// The outage actually engaged: a healthy run finds more.
	healthy := smallDataset(t)
	full, err := healthy.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Results) <= len(got.Results) {
		t.Fatalf("injection had no effect: %d results with outage, %d without", len(got.Results), len(full.Results))
	}
}

func TestHTTPBatchShardedPerShardEndpoints(t *testing.T) {
	// Two shards, each routed to its own endpoint — the ShardedSource
	// composition point the Backend option exists for. Results must be
	// byte-identical to the same shards running their sims locally.
	specs := []uint64{7, 8}
	var remoteShards, localShards []*Dataset
	var clients []*httpbatch.Client
	for _, seed := range specs {
		mk := func(opts ...DatasetOption) *Dataset {
			ds, err := Synthesize(SynthSpec{
				NumFrames:    60_000,
				NumInstances: 120,
				Class:        "car",
				MeanDuration: 120,
				SkewFraction: 1.0 / 8,
				ChunkFrames:  2000,
				Seed:         seed,
			}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return ds
		}
		twin := mk()
		srv := httptest.NewServer(httpbatch.Handler(twin.Backend()))
		t.Cleanup(srv.Close)
		client, err := httpbatch.New(httpbatch.Config{Endpoint: srv.URL})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, client)
		remoteShards = append(remoteShards, mk(WithBackend(client)))
		localShards = append(localShards, mk())
	}
	remote, err := NewShardedSource("fleet", remoteShards...)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewShardedSource("fleet", localShards...)
	if err != nil {
		t.Fatal(err)
	}

	// Batched Search interleaves shard picks; the sharded detector must
	// regroup them so each shard sees one wire batch per Search batch,
	// not one POST per frame.
	q := Query{Class: "car", Limit: 12}
	opts := Options{Seed: 5, BatchSize: 16}
	want, err := local.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("per-shard-endpoint search diverged: frames %d vs %d, results %d vs %d",
			got.FramesProcessed, want.FramesProcessed, len(got.Results), len(want.Results))
	}
	// Both shards actually served traffic, and served it batched.
	for i, st := range remote.ShardStats() {
		if st.DetectCalls == 0 {
			t.Fatalf("shard %d served no detector calls", i)
		}
	}
	for i, c := range clients {
		cs := c.Stats()
		if cs.Frames == 0 {
			t.Fatalf("client %d saw no traffic", i)
		}
		if avg := float64(cs.Frames) / float64(cs.Batches); avg < 2 {
			t.Fatalf("client %d averaged %.1f frames/batch — interleaved picks degraded to per-frame calls", i, avg)
		}
	}
}

func TestHTTPBatchCancellationMidBatchSurfacesThroughWait(t *testing.T) {
	// A server that blocks while a batch is in flight: cancelling the
	// query's context must abort the wire call, surface the context error
	// through QueryHandle.Wait, and leave a consistent partial report.
	twin := truthTwin(t)
	inner := httpbatch.Handler(twin.Backend())
	inFlight := make(chan struct{}, 64)
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case inFlight <- struct{}{}:
		default:
		}
		select {
		case <-block:
		case <-r.Context().Done():
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer close(block)

	client, err := httpbatch.New(httpbatch.Config{Endpoint: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	remote := smallDataset(t, WithBackend(client))

	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := e.Submit(ctx, remote, Query{Class: "car", Limit: 1000}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inFlight:
	case <-time.After(10 * time.Second):
		t.Fatal("no batch reached the server")
	}
	cancel()
	rep, err := h.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("no partial report")
	}
	// The in-flight round was discarded whole: the partial report is
	// consistent at a round boundary (results ⊆ frames, totals coherent).
	if int64(len(rep.Results)) > rep.FramesProcessed {
		t.Fatalf("inconsistent partial report: %d results from %d frames", len(rep.Results), rep.FramesProcessed)
	}
	if rep.FramesProcessed > 0 && rep.TotalSeconds() <= 0 {
		t.Fatalf("frames charged but no seconds: %+v", rep)
	}
}

func TestSubmitRejectsNilAndZeroValueSources(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 1})
	q := Query{Class: "car", Limit: 1}

	cases := []struct {
		name string
		src  Source
	}{
		{"nil interface", nil},
		{"typed-nil dataset", (*Dataset)(nil)},
		{"typed-nil sharded", (*ShardedSource)(nil)},
		{"zero-value dataset", &Dataset{}},
		{"zero-value sharded", &ShardedSource{}},
	}
	for _, tc := range cases {
		if _, err := e.Submit(context.Background(), tc.src, q, Options{}); err == nil {
			t.Errorf("%s: Submit accepted an unusable source", tc.name)
		}
	}
	// The same guard protects the synchronous entry points.
	if _, err := SearchSource(&ShardedSource{}, q, Options{}); err == nil {
		t.Error("SearchSource accepted a zero-value ShardedSource")
	}
	if _, err := NewSession(&Dataset{}, q, Options{}); err == nil {
		t.Error("NewSession accepted a zero-value Dataset")
	}
}

func TestBackendErrorFailsSearchCleanly(t *testing.T) {
	// A backend that always fails: Search must surface the error, not
	// panic or spin.
	ds := smallDataset(t, WithBackend(failingBackend{}))
	_, err := ds.Search(Query{Class: "car", Limit: 5}, Options{Seed: 1})
	if err == nil || !errors.Is(err, errBackendDown) {
		t.Fatalf("Search = %v, want errBackendDown", err)
	}
}

var errBackendDown = errors.New("backend down")

type failingBackend struct{}

func (failingBackend) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	return nil, errBackendDown
}

func (failingBackend) Hints() backend.Hints { return backend.Hints{CostSeconds: 0.01} }
