package exsample

import (
	"context"
	"fmt"

	"github.com/exsample/exsample/cachestore"
	"github.com/exsample/exsample/internal/cache"
	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/kalman"
	"github.com/exsample/exsample/internal/sorttrack"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/trackquery"
	"github.com/exsample/exsample/internal/video"
)

// trackRun is the step state machine behind TrackSearch and
// Engine.SubmitTrack — the track-query sibling of queryRun, built around
// internal/trackquery's accelerate/refine plan instead of the distinct-
// object sampler. The same next/detect/apply discipline holds: only apply
// mutates state and must run in pick order on one goroutine; detect calls
// may fan out across workers between a round's picks and its applies.
//
// Determinism: the coarse phase always runs its stride grid to completion,
// so the hit set — and therefore the candidate intervals, the refine
// schedule, the per-interval tracker inputs and the emitted TrackResults —
// is a pure function of (source contents, predicate, options), independent
// of the sampler seed, the engine's round size and worker count, and the
// shard layout (a ShardedSource presents the same global frame space as
// the equivalent Dataset).
type trackRun struct {
	src      *querySource
	pred     TrackPredicate
	eval     *trackquery.Evaluator
	opts     TrackOptions
	detector detect.BatchDetector
	// memo/tier mirror queryRun: at most one is non-nil (see cacheConfig).
	memo   *cache.Cache
	tier   *cachestore.Tiered
	plan   *trackquery.Plan
	stride int64
	trkCfg sorttrack.Config

	// store holds every processed frame's detections until the interval
	// containing the frame is assembled (coarse frames outside every
	// interval stay until the run ends — the grid is small by design).
	store map[int64][]track.Detection

	rep            *TrackReport
	intervalsNoted bool
	err            error

	// emits queues per-interval result batches for the event stream.
	// Intervals can complete both from apply (a refine observation) and
	// from next (the coarse→refine transition readies intervals the
	// coarse grid already covered — all of them in dense or CoarseOnly
	// mode), so emission is buffered here and drained by the driver.
	emits []trackEmit

	// seq is the scratch behind detectOne for the sequential driver.
	seq detectScratch
	one [1]int64
}

// newTrackRun validates the predicate and options and builds the full
// track-query pipeline over a Source. For elastic sources the topology is
// frozen at submit: the plan samples the shards active right now, and
// later attach/drain events do not move a running track query (candidate
// intervals are clipped to the frozen coverage, so refine never touches a
// frame the snapshot cannot reach).
func newTrackRun(s Source, p TrackPredicate, o TrackOptions, cc cacheConfig) (*trackRun, error) {
	if s == nil {
		return nil, fmt.Errorf("exsample: nil Source (open a Dataset or compose a ShardedSource first)")
	}
	src := s.querySource()
	if src == nil {
		return nil, fmt.Errorf("exsample: uninitialized Source — construct it with OpenProfile, Synthesize or NewShardedSource, not as a zero value")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	eval, err := trackquery.Compile(p.lower())
	if err != nil {
		return nil, err
	}
	if _, err := src.groundTruth(p.Class); err != nil {
		return nil, err
	}
	chunks := src.chunks
	numFrames := src.numFrames
	if src.topology != nil {
		snap := src.topology()
		if snap.NumActive() == 0 {
			return nil, fmt.Errorf("exsample: source %q: %w (every shard is draining or gated; attach one with AddShard first)", src.name, ErrNoActiveShards)
		}
		numFrames = snap.Map.NumFrames()
		all := snap.Map.Chunks()
		chunks = make([]video.Chunk, 0, len(all))
		for j, c := range all {
			if snap.ChunkActive(j) {
				chunks = append(chunks, c)
			}
		}
	}
	detector, err := src.newDetector(p.Class)
	if err != nil {
		return nil, err
	}
	if cc.memo != nil && cc.tier != nil {
		return nil, fmt.Errorf("exsample: a run caches through a memo cache or a shared tier, not both")
	}
	if !src.cacheable {
		cc = cacheConfig{}
	}
	stride := o.strideFor(p)
	pad := o.Pad
	if pad == 0 {
		pad = stride
	}
	plan, err := trackquery.NewPlan(trackquery.Config{
		NumFrames:  numFrames,
		Chunks:     chunks,
		Stride:     stride,
		Pad:        pad,
		Seed:       o.Seed,
		CoarseOnly: o.CoarseOnly,
	})
	if err != nil {
		return nil, err
	}
	trkCfg := sorttrack.Config{IoUThreshold: 0.3, MaxAge: 3, MinHits: 2}
	if o.IoUThreshold > 0 {
		trkCfg.IoUThreshold = o.IoUThreshold
	}
	if o.MaxAge > 0 {
		trkCfg.MaxAge = o.MaxAge
	}
	if o.MinHits > 0 {
		trkCfg.MinHits = o.MinHits
	}
	if o.CoarseOnly {
		// Consecutive observations are a stride apart, so age in grid
		// steps: a track may miss MaxAge grid points before finalizing.
		trkCfg.MaxAge *= stride
	}
	var dense int64
	for _, c := range chunks {
		dense += c.Len()
	}
	return &trackRun{
		src:      src,
		pred:     p,
		eval:     eval,
		opts:     o,
		detector: detector,
		memo:     cc.memo,
		tier:     cc.tier,
		plan:     plan,
		stride:   stride,
		trkCfg:   trkCfg,
		store:    make(map[int64][]track.Detection),
		rep:      &TrackReport{Predicate: p, DenseFrames: dense},
	}, nil
}

// trackEmit is one queued interval-completion event: the tracks an
// interval matched, stamped with its last frame.
type trackEmit struct {
	frame  int64
	chunk  int
	tracks []TrackResult
}

// next draws the next frame from the plan. Chunk is the coarse sampler arm
// during phase 1 and -1 during refine. ok is false when the plan has
// nothing to issue — terminal once done() holds, transient while a round's
// coarse observes are outstanding. next runs on the same goroutine as
// apply (the scheduler's, or the sequential driver's), so it may drain
// intervals the plan transition just readied.
func (r *trackRun) next() (core.Pick, bool) {
	if r.err != nil || r.done() {
		return core.Pick{}, false
	}
	f, c, ok := r.plan.Next()
	// Next may have run the coarse→refine transition, readying every
	// interval the coarse grid already covered; assemble them now or
	// they would never surface (in dense and CoarseOnly runs that is
	// the entire result set).
	if err := r.drain(); err != nil {
		return core.Pick{}, false
	}
	if !ok || r.done() {
		return core.Pick{}, false
	}
	return core.Pick{Frame: f, Chunk: c}, true
}

// takeEmits hands the queued interval-completion batches to the driver
// and resets the queue.
func (r *trackRun) takeEmits() []trackEmit {
	out := r.emits
	r.emits = nil
	return out
}

// marginalValue exposes the plan's expected-value estimate to the engine's
// global budget planner, on the same scale distinct-object queries use.
func (r *trackRun) marginalValue() float64 {
	if r.err != nil || r.done() {
		return 0
	}
	return r.plan.MarginalValue()
}

// detectBatchInto runs the cache-aware batched detector; see detectFrames
// and detectFramesTiered.
func (r *trackRun) detectBatchInto(ctx context.Context, frames []int64, scr *detectScratch) ([]frameResult, error) {
	if r.tier != nil {
		return detectFramesTiered(ctx, r.detector, r.tier, r.src.contentID, r.pred.Class, frames, scr)
	}
	return detectFrames(ctx, r.detector, r.memo, r.src.id, r.pred.Class, frames, scr)
}

// detectOne is detectBatchInto for a single frame through the sequential
// scratch.
func (r *trackRun) detectOne(ctx context.Context, frame int64) (frameResult, error) {
	r.one[0] = frame
	res, err := r.detectBatchInto(ctx, r.one[:], &r.seq)
	if err != nil {
		return frameResult{}, err
	}
	return res[0], nil
}

// apply charges the frame's costs, records its detections, feeds the plan,
// and assembles any interval the observation completed (matching tracks
// land on the emit queue). Must be called in pick order from one
// goroutine.
func (r *trackRun) apply(p core.Pick, fr frameResult) error {
	if r.err != nil {
		return r.err
	}
	rep := r.rep
	rep.DecodeSeconds += r.src.decodeCost(p.Frame)
	rep.DetectSeconds += fr.cost
	if r.memo != nil || r.tier != nil {
		if fr.cached {
			rep.CacheHits++
			if fr.remote {
				rep.RemoteCacheHits++
			}
		} else {
			rep.CacheMisses++
		}
	}
	rep.FramesProcessed++
	if p.Chunk >= 0 {
		rep.CoarseFrames++
	} else {
		rep.RefineFrames++
	}
	r.store[p.Frame] = fr.dets
	if err := r.plan.Observe(p.Frame, p.Chunk, len(fr.dets) > 0); err != nil {
		r.err = err
		return err
	}
	return r.drain()
}

// drain records the interval set once the plan leaves the coarse phase and
// assembles every interval that became ready, queueing matched tracks for
// emission. Runs from apply and from next — both on the driver's apply
// goroutine.
func (r *trackRun) drain() error {
	if r.err != nil {
		return r.err
	}
	if !r.intervalsNoted && r.plan.Phase() != trackquery.PhaseCoarse {
		r.intervalsNoted = true
		ivs := r.plan.Intervals()
		r.rep.Intervals = len(ivs)
		for _, iv := range ivs {
			r.rep.IntervalFrames += iv.Len()
		}
	}
	for _, iv := range r.plan.TakeReady() {
		res, err := r.assemble(iv)
		if err != nil {
			r.err = err
			return err
		}
		if len(res) > 0 {
			r.emits = append(r.emits, trackEmit{frame: iv.End, chunk: -1, tracks: res})
		}
	}
	return nil
}

// assemble runs the tracker over one completed interval's stored
// detections, smooths each track, evaluates the predicate and emits the
// matches. Interval frames are released from the store afterwards.
func (r *trackRun) assemble(iv trackquery.Interval) ([]TrackResult, error) {
	defer func() {
		for f := iv.Start; f <= iv.End; f++ {
			delete(r.store, f)
		}
	}()
	if r.opts.Limit > 0 && len(r.rep.Results) >= r.opts.Limit {
		return nil, nil
	}
	tr, err := sorttrack.New(r.trkCfg)
	if err != nil {
		return nil, err
	}
	for f := iv.Start; f <= iv.End; f++ {
		dets, ok := r.store[f]
		if !ok {
			// CoarseOnly mode: only grid frames were processed.
			continue
		}
		// Processed frames with no detections still age live tracks —
		// a confirmed absence separates two objects sharing a lane.
		if err := tr.Observe(f, dets); err != nil {
			return nil, err
		}
	}
	var out []TrackResult
	for _, t := range tr.Flush() {
		if r.opts.Limit > 0 && len(r.rep.Results) >= r.opts.Limit {
			break
		}
		frames := make([]int64, len(t.Path))
		boxes := make([]geom.Box, len(t.Path))
		for i, pp := range t.Path {
			frames[i] = pp.Frame
			boxes[i] = pp.Box
		}
		sm, err := kalman.Smooth(frames, boxes, r.opts.SmoothQ, r.opts.SmoothR)
		if err != nil {
			return nil, err
		}
		smPath := make([]sorttrack.PathPoint, len(sm))
		for i := range sm {
			smPath[i] = sorttrack.PathPoint{Frame: frames[i], Box: sm[i]}
		}
		if !r.eval.Match(smPath) {
			continue
		}
		first, last := sm[0], sm[len(sm)-1]
		res := TrackResult{
			TrackID:  len(r.rep.Results),
			Class:    r.pred.Class,
			Start:    t.Start,
			End:      t.End,
			StartBox: Box{X1: first.X1, Y1: first.Y1, X2: first.X2, Y2: first.Y2},
			EndBox:   Box{X1: last.X1, Y1: last.Y1, X2: last.X2, Y2: last.Y2},
			Hits:     t.Hits,
			AvgSpeed: trackquery.AvgSpeed(smPath),
		}
		r.rep.Results = append(r.rep.Results, res)
		out = append(out, res)
	}
	return out, nil
}

// done is the track query's stopping condition: the plan finished, the
// result limit was reached, or an explicit frame/time budget is spent.
func (r *trackRun) done() bool {
	if r.opts.Limit > 0 && len(r.rep.Results) >= r.opts.Limit {
		return true
	}
	if r.plan.Done() {
		return true
	}
	if r.opts.MaxFrames > 0 && r.rep.FramesProcessed >= r.opts.MaxFrames {
		return true
	}
	if r.opts.MaxSeconds > 0 && r.rep.TotalSeconds() >= r.opts.MaxSeconds {
		return true
	}
	return false
}

// TrackSearch runs a track-predicate query against a source — a local
// Dataset or a ShardedSource — and returns its report. It is the
// sequential driver over the same trackRun step machine Engine.SubmitTrack
// schedules concurrently, so both produce identical Results for the same
// predicate and options.
//
// The query runs the MIRIS-style accelerate/refine loop: phase 1 samples
// the repository at a coarse stride (ordered by the adaptive chunk sampler,
// so detector frames flow to chunks where the class actually appears) to
// localize candidate intervals, phase 2 densifies only those intervals and
// evaluates the predicate over the smoothed tracks found there. On sparse
// scenes this charges a small fraction of a dense scan's detector frames —
// TrackReport.Speedup reports the realized ratio.
func TrackSearch(src Source, p TrackPredicate, o TrackOptions) (*TrackReport, error) {
	run, err := newTrackRun(src, p, o, cacheConfig{})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	for !run.done() {
		pick, ok := run.next()
		if !ok {
			break
		}
		fr, err := run.detectOne(ctx, pick.Frame)
		if err != nil {
			return run.rep, err
		}
		if err := run.apply(pick, fr); err != nil {
			return run.rep, err
		}
		run.emits = nil // no event stream to feed
	}
	run.emits = nil
	return run.rep, run.err
}

// TrackSearch runs a track-predicate query against this dataset; see the
// package-level TrackSearch.
func (d *Dataset) TrackSearch(p TrackPredicate, o TrackOptions) (*TrackReport, error) {
	return TrackSearch(d, p, o)
}
