package exsample

import "testing"

func TestAutoChunkValidation(t *testing.T) {
	bad := []Options{
		{AutoChunk: true, Strategy: StrategyRandom},
		{AutoChunk: true, NumChunks: 8},
		{AutoChunk: true, BatchSize: 8},
		{AutoChunk: true, HomeChunkAccounting: true},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad autochunk options %d accepted", i)
		}
	}
	if err := (Options{AutoChunk: true}).Validate(); err != nil {
		t.Errorf("valid autochunk options rejected: %v", err)
	}
}

func TestAutoChunkFindsResults(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", Limit: 30},
		Options{AutoChunk: true, Seed: 111})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 30 {
		t.Fatalf("autochunk found %d results", len(rep.Results))
	}
}

func TestAutoChunkBeatsRandomUnderSkew(t *testing.T) {
	// Heavy skew with many objects: the adaptive layout should strongly
	// outperform random even though the user never chose a chunk count.
	ds, err := Synthesize(SynthSpec{
		NumFrames:    1_000_000,
		NumInstances: 800,
		Class:        "event",
		MeanDuration: 400,
		SkewFraction: 1.0 / 32,
		ChunkFrames:  1_000_000 / 4, // deliberately terrible native layout
		Seed:         113,
	}, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Class: "event", RecallTarget: 0.5}
	var autoFrames, rndFrames, nativeFrames int64
	for seed := uint64(0); seed < 3; seed++ {
		auto, err := ds.Search(q, Options{AutoChunk: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := ds.Search(q, Options{Strategy: StrategyRandom, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		native, err := ds.Search(q, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		autoFrames += auto.FramesProcessed
		rndFrames += rnd.FramesProcessed
		nativeFrames += native.FramesProcessed
	}
	if autoFrames >= rndFrames {
		t.Fatalf("autochunk %d frames >= random %d", autoFrames, rndFrames)
	}
	// It should also beat the terrible 4-chunk native layout.
	if autoFrames >= nativeFrames {
		t.Fatalf("autochunk %d frames >= native-4-chunk %d", autoFrames, nativeFrames)
	}
	t.Logf("frames to 50%% recall: autochunk %d, native-4 %d, random %d",
		autoFrames/3, nativeFrames/3, rndFrames/3)
}

func TestAutoChunkSmallRepository(t *testing.T) {
	// Repositories smaller than the coarse grid must still work.
	ds, err := Synthesize(SynthSpec{
		NumFrames:    2000,
		NumInstances: 10,
		Class:        "car",
		MeanDuration: 50,
		ChunkFrames:  500,
		Seed:         117,
	}, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ds.Search(Query{Class: "car", RecallTarget: 1}, Options{AutoChunk: true, Seed: 119})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall < 1 {
		t.Fatalf("recall %v on tiny repo", rep.Recall)
	}
}
