package exsample

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/internal/baseline"
	"github.com/exsample/exsample/internal/costmodel"
	"github.com/exsample/exsample/internal/datasets"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/synth"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
)

// Dataset is a searchable video repository with known ground truth: a frame
// layout, a chunking, per-class object instances, a simulated detector and
// the cost model that converts frame counts into query time.
//
// Real deployments would wire a decoder and a DNN here; the paper's sampler
// only ever sees frame indices, detections and costs, which is exactly what
// Dataset provides.
type Dataset struct {
	inner *datasets.Dataset
	noise detect.NoiseModel
	cost  costmodel.Model
	dec   video.DecodeCostModel
	seed  uint64
	// failAfter > 0 injects a detector outage after that many calls per
	// search (failure-injection testing).
	failAfter int64
	// be is the attached custom detector backend; nil runs the simulated
	// detector (the default Backend).
	be backend.Backend
	// qs is the dataset's query-pipeline plumbing, built after options are
	// applied (see Source).
	qs *querySource
}

// NoiseConfig exposes the simulated detector's imperfections.
type NoiseConfig struct {
	// MissProb is the per-frame probability a visible object goes
	// undetected.
	MissProb float64
	// EdgeMissBoost adds misses near the start/end of an object's
	// visibility.
	EdgeMissBoost float64
	// JitterFrac perturbs box coordinates by up to this fraction of size.
	JitterFrac float64
	// FalsePositiveRate is the expected spurious detections per frame.
	FalsePositiveRate float64
}

// DatasetOption customizes dataset construction.
type DatasetOption func(*Dataset)

// WithNoise replaces the default detector noise model.
func WithNoise(nc NoiseConfig) DatasetOption {
	return func(d *Dataset) {
		d.noise = detect.NoiseModel{
			MissProb:          nc.MissProb,
			EdgeMissBoost:     nc.EdgeMissBoost,
			JitterFrac:        nc.JitterFrac,
			FalsePositiveRate: nc.FalsePositiveRate,
			MinScore:          0.5,
			MaxScore:          0.99,
		}
	}
}

// WithPerfectDetector removes all detector noise.
func WithPerfectDetector() DatasetOption {
	return func(d *Dataset) {
		d.noise = detect.NoiseModel{MinScore: 1, MaxScore: 1}
	}
}

// WithThroughput overrides the cost model (frames/second of the detector
// path and of the proxy scoring scan). The defaults are the paper's measured
// 20 and 100 fps.
func WithThroughput(detectFPS, scanFPS float64) DatasetOption {
	return func(d *Dataset) {
		d.cost = costmodel.Model{DetectFPS: detectFPS, ScanFPS: scanFPS}
	}
}

// WithDetectorFailureAfter makes every search's detector return no
// detections after n calls, simulating a mid-query inference outage.
// Searches must keep terminating cleanly (on their budget) rather than
// spinning; this is a failure-injection knob for tests.
func WithDetectorFailureAfter(n int64) DatasetOption {
	return func(d *Dataset) { d.failAfter = n }
}

// WithBackend attaches a custom detector backend: every query against the
// dataset runs its inference through b instead of the simulated detector.
// The sampler, discriminator and cost accounting are unchanged — the
// backend is the paper's black box, and the pipeline charges whatever cost
// it reports (Hints().CostSeconds per frame, or the measured per-call cost
// for backend.BatchCoster implementations such as httpbatch).
//
// In a ShardedSource each shard keeps its own backend, so a fleet can route
// every shard to its own endpoint. Backends used with the Engine's memo
// cache must be deterministic per (class, frame); see the backend package's
// determinism caveat.
func WithBackend(b backend.Backend) DatasetOption {
	return func(d *Dataset) { d.be = b }
}

// Backend returns the dataset's detector as a public backend.Backend: the
// attached custom backend when one was configured, otherwise the simulated
// detector behind the default adapter. Serving the returned backend over
// backend/httpbatch.Handler turns the dataset into a remote detection
// endpoint — the loopback setup the end-to-end tests and exserve's
// -backend http mode use.
func (d *Dataset) Backend() backend.Backend {
	if d.be != nil {
		return d.be
	}
	return &simBackend{d: d}
}

// ProfileNames lists the built-in dataset profiles (the paper's six
// evaluation datasets).
func ProfileNames() []string {
	ps := datasets.Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// OpenProfile builds one of the six built-in synthetic datasets at the given
// scale (1 = paper size; e.g. 0.1 shrinks frames and populations 10x while
// preserving density and skew). seed drives ground-truth generation and the
// detector's noise.
func OpenProfile(name string, scale float64, seed uint64, opts ...DatasetOption) (*Dataset, error) {
	p, err := datasets.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	inner, err := datasets.Build(p, scale, seed)
	if err != nil {
		return nil, err
	}
	return newDataset(inner, seed, opts...), nil
}

func newDataset(inner *datasets.Dataset, seed uint64, opts ...DatasetOption) *Dataset {
	d := &Dataset{
		inner: inner,
		noise: detect.DefaultNoise(),
		cost:  costmodel.Default(),
		dec:   video.DefaultDecodeCost(),
		seed:  seed,
	}
	for _, o := range opts {
		o(d)
	}
	d.qs = &querySource{
		id:        sourceIDs.Add(1),
		contentID: datasetContentID(inner, seed, d.noise),
		name:      inner.Profile.Name,
		numFrames: inner.Repo.NumFrames(),
		fps:       inner.Profile.FPS,
		chunks:    inner.Chunks,
		numShards: 1,
		cacheable: d.failAfter == 0,
		maxBatch: func() int {
			if d.be == nil {
				return 0 // the simulated detector batches without bound
			}
			return d.be.Hints().MaxBatch
		},
		breakerOpens: func() int64 {
			if sig, ok := d.be.(capacitySignaler); ok {
				return sig.BreakerOpens()
			}
			return 0
		},
		replicaFleets: func() []shardReplicas {
			sig, ok := d.be.(replicaSignaler)
			if !ok {
				return nil
			}
			return []shardReplicas{{
				shard:   0,
				scatter: sig.ScatterEnabled(),
				weights: sig.CapacityWeights(),
				opens:   sig.ReplicaOpens(),
			}}
		},
		decodeCost:  d.dec.Cost,
		scanSeconds: func(start, end int64) float64 { return d.cost.ScanSeconds(end - start) },
		groundTruth: d.GroundTruthCount,
		newDetector: d.newBatchDetector,
		newExtender: func(coverage float64) (discrim.Extender, error) {
			return discrim.NewTruthExtender(d.inner.Index, coverage)
		},
		newScorer: func(class string, quality float64, seed uint64) (func(int64) float64, error) {
			scorer, err := baseline.NewProxyScorer(d.inner.Index, class, quality, seed)
			if err != nil {
				return nil, err
			}
			return scorer.Score, nil
		},
	}
	return d
}

// datasetContentID computes the stable content address of a dataset: an
// FNV-1a hash over every construction input that determines detector output
// — profile name, scale, generation seed, frame count, recording rate, the
// noise model and the per-class populations. Unlike the per-process source
// id, the value is identical across processes (and restarts) that opened
// the same data, which is what keys the shared result tier (cachestore).
func datasetContentID(inner *datasets.Dataset, seed uint64, noise detect.NoiseModel) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%g|%d|%d|%g|%+v|",
		inner.Profile.Name, inner.Scale, seed, inner.Repo.NumFrames(), inner.Profile.FPS, noise)
	classes := make([]string, 0, len(inner.CountByClass))
	for c := range inner.CountByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(h, "%s=%d|", c, inner.CountByClass[c])
	}
	return h.Sum64()
}

// newBatchDetector builds the per-query batched detector — the single
// construction point shared by Search, Session and Engine. With a custom
// backend attached it adapts the backend for the query's class; otherwise
// it wraps a fresh simulated detector. Failure injection
// (WithDetectorFailureAfter) stays per-query on both paths: the simulated
// detector is wrapped inside newDetector, a custom backend by the batch
// adapter's own outage wrapper.
func (d *Dataset) newBatchDetector(class string) (detect.BatchDetector, error) {
	if d.be != nil {
		var bd detect.BatchDetector = newBackendDetector(d.be, class)
		if d.failAfter > 0 {
			bd = &detect.FailAfterBatch{Inner: bd, Limit: d.failAfter}
		}
		return bd, nil
	}
	det, err := d.newDetector(Query{Class: class})
	if err != nil {
		return nil, err
	}
	return detect.Batch(det), nil
}

// newDetector builds the per-query simulated detector, applying the
// failure-injection wrapper when configured.
func (d *Dataset) newDetector(q Query) (detect.Detector, error) {
	sim, err := detect.NewSim(d.inner.Index, d.seed^0xdecade,
		detect.WithClass(q.Class),
		detect.WithNoise(d.noise),
		detect.WithCost(1/d.cost.DetectFPS),
	)
	if err != nil {
		return nil, err
	}
	if d.failAfter > 0 {
		return &detect.FailAfter{Inner: sim, Limit: d.failAfter}, nil
	}
	return sim, nil
}

// SynthSpec describes a custom single-class synthetic dataset.
type SynthSpec struct {
	// NumFrames is the repository size.
	NumFrames int64
	// NumInstances is the distinct object population.
	NumInstances int
	// Class names the objects (default "object").
	Class string
	// MeanDuration is the mean visibility in frames.
	MeanDuration float64
	// SkewFraction concentrates 95% of objects into this fraction of the
	// repository (0 = uniform).
	SkewFraction float64
	// ChunkFrames is the chunk length (0 = 1/64 of the repository).
	ChunkFrames int64
	// FPS is the recording rate (0 = 30).
	FPS float64
	// Seed drives generation.
	Seed uint64
	// TravelX and TravelY, when either is nonzero, give every object a net
	// displacement of (TravelX, TravelY) pixels over its lifetime, so speed
	// and direction predicates have something to discriminate on. Both zero
	// keeps the legacy slight drift.
	TravelX, TravelY float64
}

// Synthesize builds a custom dataset from a SynthSpec.
func Synthesize(spec SynthSpec, opts ...DatasetOption) (*Dataset, error) {
	if spec.FPS == 0 {
		spec.FPS = 30
	}
	if spec.Class == "" {
		spec.Class = "object"
	}
	if spec.ChunkFrames == 0 {
		spec.ChunkFrames = spec.NumFrames / 64
		if spec.ChunkFrames < 1 {
			spec.ChunkFrames = 1
		}
	}
	instances, err := synth.Generate(synth.GridSpec{
		NumInstances: spec.NumInstances,
		NumFrames:    spec.NumFrames,
		SkewFraction: spec.SkewFraction,
		MeanDuration: spec.MeanDuration,
		Class:        spec.Class,
		Seed:         spec.Seed,
		TravelX:      spec.TravelX,
		TravelY:      spec.TravelY,
	})
	if err != nil {
		return nil, err
	}
	repo, err := video.NewRepository(spec.FPS, spec.NumFrames)
	if err != nil {
		return nil, err
	}
	chunks, err := repo.ChunkByDuration(spec.ChunkFrames)
	if err != nil {
		return nil, err
	}
	idx, err := track.NewIndex(instances, spec.NumFrames, 0)
	if err != nil {
		return nil, err
	}
	inner := &datasets.Dataset{
		Profile: datasets.Profile{
			Name:        "custom",
			NumFrames:   spec.NumFrames,
			FPS:         spec.FPS,
			ChunkFrames: spec.ChunkFrames,
			Queries: []datasets.QuerySpec{{
				Class:        spec.Class,
				NumInstances: spec.NumInstances,
				MeanDuration: spec.MeanDuration,
				SkewFraction: spec.SkewFraction,
			}},
		},
		Scale:        1,
		Repo:         repo,
		Chunks:       chunks,
		Instances:    instances,
		Index:        idx,
		CountByClass: map[string]int{spec.Class: len(instances)},
	}
	d := newDataset(inner, spec.Seed, opts...)
	// The shared profile name "custom" under-determines a synthetic dataset
	// (TravelX/TravelY, duration, skew all shape detector output), so fold
	// the full spec into the content address.
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|%+v", d.qs.contentID, spec)
	d.qs.contentID = h.Sum64()
	return d, nil
}

// Name returns the dataset profile name.
func (d *Dataset) Name() string { return d.inner.Profile.Name }

// NumFrames returns the repository size in frames.
func (d *Dataset) NumFrames() int64 { return d.inner.Repo.NumFrames() }

// NumChunks returns the native chunk count.
func (d *Dataset) NumChunks() int { return len(d.inner.Chunks) }

// Hours returns the repository length in hours of video.
func (d *Dataset) Hours() float64 { return d.inner.Repo.Hours() }

// Classes lists the searchable object classes, sorted.
func (d *Dataset) Classes() []string {
	out := make([]string, 0, len(d.inner.CountByClass))
	for c := range d.inner.CountByClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// GroundTruthCount returns the number of distinct instances of a class.
func (d *Dataset) GroundTruthCount(class string) (int, error) {
	n, ok := d.inner.CountByClass[class]
	if !ok {
		return 0, fmt.Errorf("exsample: dataset %q has no class %q", d.Name(), class)
	}
	return n, nil
}

// ScanSeconds returns the time a proxy-model scoring pass over the whole
// dataset costs under the dataset's cost model — the upfront price of the
// proxy baseline (Table I's "proxy (scan)" column).
func (d *Dataset) ScanSeconds() float64 {
	return d.cost.ScanSeconds(d.NumFrames())
}

// NumShards implements Source: a local dataset is a single shard.
func (d *Dataset) NumShards() int { return 1 }

// querySource implements Source. It is nil-receiver-safe and returns nil
// for a zero-value Dataset, so the pipeline can reject uninitialized
// sources with a clear error instead of a panic.
func (d *Dataset) querySource() *querySource {
	if d == nil {
		return nil
	}
	return d.qs
}

// compile-time check that the pipeline detector satisfies the public
// Detector contract via the adapter below.
var _ Detector = (*frameDetectorAdapter)(nil)

// frameDetectorAdapter exposes the batched pipeline detector through the
// public per-frame Detector interface (used by examples that want direct
// detector access).
type frameDetectorAdapter struct {
	inner detect.BatchDetector
	cost  float64
}

// NewDetector returns a standalone per-frame detector for the dataset,
// restricted to one class: the attached custom backend when one was
// configured, otherwise the same simulated detector Search uses internally,
// including any configured failure injection.
func (d *Dataset) NewDetector(class string) (Detector, error) {
	if _, err := d.GroundTruthCount(class); err != nil {
		return nil, err
	}
	inner, err := d.newBatchDetector(class)
	if err != nil {
		return nil, err
	}
	cost := 1 / d.cost.DetectFPS
	if d.be != nil {
		cost = d.be.Hints().CostSeconds
	}
	return &frameDetectorAdapter{inner: inner, cost: cost}, nil
}

// Detect implements Detector. A backend error (network failure, timeout)
// surfaces as no detections — the per-frame interface has no error channel;
// use Backend().DetectBatch for error-aware access.
func (a *frameDetectorAdapter) Detect(frame int64) []Detection {
	outs, err := a.inner.DetectBatch(context.Background(), []int64{frame})
	if err != nil || len(outs) != 1 {
		return nil
	}
	return trackToBackend(outs[0].Dets)
}

// CostSeconds implements Detector.
func (a *frameDetectorAdapter) CostSeconds() float64 { return a.cost }
