package exsample

import (
	"errors"
	"fmt"
	"math"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/trackquery"
)

// ErrInvalidPredicate is the sentinel every track-predicate validation
// failure wraps: match it with errors.Is, and unwrap the individual
// field-level failures with errors.As into *PredicateError. A rejected
// predicate reports every bad field at once, not just the first.
var ErrInvalidPredicate = errors.New("exsample: invalid track predicate")

// PredicateError is one field-level track-predicate validation failure.
type PredicateError struct {
	// Field names the offending TrackPredicate field ("From", "Crosses",
	// "MinDuration", ...).
	Field string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *PredicateError) Error() string {
	return fmt.Sprintf("%v: %s: %s", ErrInvalidPredicate, e.Field, e.Reason)
}

// Is matches ErrInvalidPredicate, so errors.Is works on a single field
// error and on the joined bundle Validate returns alike.
func (e *PredicateError) Is(target error) bool { return target == ErrInvalidPredicate }

// Point is a pixel coordinate in frame space.
type Point struct {
	X, Y float64
}

// Region is a simple polygon in pixel coordinates (≥ 3 vertices, nonzero
// area; either winding). Boundary points count as inside.
type Region []Point

// Segment is a line segment in pixel coordinates, used for crossing
// clauses (a virtual tripwire).
type Segment struct {
	A, B Point
}

// DirectionRange constrains a track's net-motion heading to the arc from
// MinDeg to MaxDeg, degrees in [0, 360) measured from +x toward +y (screen
// coordinates: 0 = rightward, 90 = downward). The arc may wrap through 0 —
// {MinDeg: 315, MaxDeg: 45} accepts "roughly rightward".
type DirectionRange struct {
	MinDeg, MaxDeg float64
}

// TrackPredicate describes which object trajectories a track query should
// return: a MIRIS-style conjunction of spatial, temporal and kinematic
// clauses evaluated over each smoothed track. Class is required; every
// other clause is optional (zero value = unconstrained).
type TrackPredicate struct {
	// Class is the object class whose tracks are searched.
	Class string
	// From requires the track to start inside the region (its first
	// observed center point); To requires it to end inside; Visits
	// requires some observed center point inside.
	From, To, Visits Region
	// Crosses requires the track's center path to intersect the segment.
	Crosses *Segment
	// Direction constrains the net-motion heading.
	Direction *DirectionRange
	// MinDuration and MaxDuration bound the track's observed span in
	// frames, inclusive (0 = unbounded). MinDuration also informs the
	// default coarse stride — see TrackOptions.Stride.
	MinDuration, MaxDuration int64
	// MinSpeed and MaxSpeed bound the track's average speed in pixels per
	// frame over the smoothed path (0 MaxSpeed = unbounded).
	MinSpeed, MaxSpeed float64
}

// validRegion appends field errors for one region clause.
func validRegion(errs []error, field string, r Region) []error {
	if r == nil {
		return errs
	}
	if len(r) < 3 {
		return append(errs, &PredicateError{Field: field, Reason: fmt.Sprintf("polygon needs at least 3 vertices, got %d", len(r))})
	}
	for i, p := range r {
		if !finite(p.X) || !finite(p.Y) {
			return append(errs, &PredicateError{Field: field, Reason: fmt.Sprintf("vertex %d has a non-finite coordinate", i)})
		}
	}
	if !r.poly().Valid() {
		errs = append(errs, &PredicateError{Field: field, Reason: "polygon has zero area"})
	}
	return errs
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks every field and returns nil or a joined error bundling
// one *PredicateError per offense; the bundle (and each member) matches
// errors.Is(err, ErrInvalidPredicate).
func (p TrackPredicate) Validate() error {
	var errs []error
	if p.Class == "" {
		errs = append(errs, &PredicateError{Field: "Class", Reason: "must be set"})
	}
	errs = validRegion(errs, "From", p.From)
	errs = validRegion(errs, "To", p.To)
	errs = validRegion(errs, "Visits", p.Visits)
	if s := p.Crosses; s != nil {
		switch {
		case !finite(s.A.X) || !finite(s.A.Y) || !finite(s.B.X) || !finite(s.B.Y):
			errs = append(errs, &PredicateError{Field: "Crosses", Reason: "endpoint has a non-finite coordinate"})
		case s.A == s.B:
			errs = append(errs, &PredicateError{Field: "Crosses", Reason: "segment has zero length"})
		}
	}
	if d := p.Direction; d != nil {
		for _, deg := range []struct {
			name string
			v    float64
		}{{"MinDeg", d.MinDeg}, {"MaxDeg", d.MaxDeg}} {
			if !finite(deg.v) || deg.v < 0 || deg.v >= 360 {
				errs = append(errs, &PredicateError{Field: "Direction", Reason: fmt.Sprintf("%s %v outside [0, 360)", deg.name, deg.v)})
			}
		}
	}
	if p.MinDuration < 0 {
		errs = append(errs, &PredicateError{Field: "MinDuration", Reason: fmt.Sprintf("negative duration %d", p.MinDuration)})
	}
	if p.MaxDuration < 0 {
		errs = append(errs, &PredicateError{Field: "MaxDuration", Reason: fmt.Sprintf("negative duration %d", p.MaxDuration)})
	}
	if p.MaxDuration > 0 && p.MinDuration > p.MaxDuration {
		errs = append(errs, &PredicateError{Field: "MinDuration", Reason: fmt.Sprintf("bounds inverted: MinDuration %d > MaxDuration %d", p.MinDuration, p.MaxDuration)})
	}
	if p.MinSpeed < 0 || !finite(p.MinSpeed) {
		errs = append(errs, &PredicateError{Field: "MinSpeed", Reason: fmt.Sprintf("speed %v not a non-negative finite value", p.MinSpeed)})
	}
	if p.MaxSpeed < 0 || !finite(p.MaxSpeed) {
		errs = append(errs, &PredicateError{Field: "MaxSpeed", Reason: fmt.Sprintf("speed %v not a non-negative finite value", p.MaxSpeed)})
	}
	if p.MaxSpeed > 0 && p.MinSpeed > p.MaxSpeed {
		errs = append(errs, &PredicateError{Field: "MinSpeed", Reason: fmt.Sprintf("bounds inverted: MinSpeed %v > MaxSpeed %v", p.MinSpeed, p.MaxSpeed)})
	}
	return errors.Join(errs...)
}

// poly lowers a Region to the internal polygon type.
func (r Region) poly() geom.Polygon {
	if r == nil {
		return nil
	}
	out := make(geom.Polygon, len(r))
	for i, p := range r {
		out[i] = geom.Point{X: p.X, Y: p.Y}
	}
	return out
}

// lower converts the validated public predicate into the internal
// evaluator input.
func (p TrackPredicate) lower() trackquery.Predicate {
	ip := trackquery.Predicate{
		Class:       p.Class,
		From:        p.From.poly(),
		To:          p.To.poly(),
		Visits:      p.Visits.poly(),
		MinDuration: p.MinDuration,
		MaxDuration: p.MaxDuration,
		MinSpeed:    p.MinSpeed,
		MaxSpeed:    p.MaxSpeed,
	}
	if p.Crosses != nil {
		ip.Crosses = &geom.Segment{
			A: geom.Point{X: p.Crosses.A.X, Y: p.Crosses.A.Y},
			B: geom.Point{X: p.Crosses.B.X, Y: p.Crosses.B.Y},
		}
	}
	if p.Direction != nil {
		ip.HasDirection = true
		ip.DirMinDeg = p.Direction.MinDeg
		ip.DirMaxDeg = p.Direction.MaxDeg
	}
	return ip
}

// TrackOptions tunes a track query. The zero value picks a stride from the
// predicate, pads intervals by one stride, and runs the full
// accelerate/refine loop with the default SORT tracker.
type TrackOptions struct {
	// Seed drives the coarse phase's chunk sampler. The result set is
	// independent of it (the coarse grid always runs to completion);
	// it shapes only which chunks are localized first.
	Seed uint64
	// Stride is the coarse-grid spacing in frames. 0 derives it from the
	// predicate: MinDuration/2 (an object visible for MinDuration frames
	// cannot fall through a gap of half that), clamped to [1, 64], or 16
	// when the predicate has no MinDuration.
	Stride int64
	// Pad widens each coarse hit into a candidate interval by this many
	// frames on each side before merging (0 = Stride, which guarantees a
	// track touching one grid point is densified across its whole
	// neighborhood).
	Pad int64
	// CoarseOnly skips densification and tracks over the stride-spaced
	// detections alone — a cheap low-fidelity mode for triage. Track
	// endpoints snap to grid points and short tracks may be missed.
	CoarseOnly bool
	// Limit stops the query after this many matching tracks (0 = none).
	Limit int
	// MaxFrames caps detector frames processed (0 = no cap).
	MaxFrames int64
	// MaxSeconds caps the charged query time (0 = no cap).
	MaxSeconds float64
	// IoUThreshold, MaxAge and MinHits tune the SORT association (0 =
	// tracker defaults: 0.3, 3, 2). In CoarseOnly mode MaxAge is measured
	// in grid steps (consecutive observations are a stride apart).
	IoUThreshold float64
	MaxAge       int64
	MinHits      int
	// SmoothQ and SmoothR tune the Kalman smoother's process and
	// measurement noise (0 = filter defaults).
	SmoothQ, SmoothR float64
}

// Validate reports an error for out-of-range track options.
func (o TrackOptions) Validate() error {
	if o.Stride < 0 {
		return fmt.Errorf("exsample: negative Stride %d", o.Stride)
	}
	if o.Pad < 0 {
		return fmt.Errorf("exsample: negative Pad %d", o.Pad)
	}
	if o.Limit < 0 {
		return fmt.Errorf("exsample: negative Limit %d", o.Limit)
	}
	if o.MaxFrames < 0 {
		return fmt.Errorf("exsample: negative MaxFrames %d", o.MaxFrames)
	}
	if o.MaxSeconds < 0 {
		return fmt.Errorf("exsample: negative MaxSeconds %v", o.MaxSeconds)
	}
	if o.IoUThreshold < 0 || o.IoUThreshold > 1 {
		return fmt.Errorf("exsample: IoUThreshold %v outside [0,1]", o.IoUThreshold)
	}
	if o.MaxAge < 0 {
		return fmt.Errorf("exsample: negative MaxAge %d", o.MaxAge)
	}
	if o.MinHits < 0 {
		return fmt.Errorf("exsample: negative MinHits %d", o.MinHits)
	}
	if o.SmoothQ < 0 || o.SmoothR < 0 {
		return fmt.Errorf("exsample: negative smoother noise")
	}
	return nil
}

// strideFor resolves the effective coarse stride for a predicate.
func (o TrackOptions) strideFor(p TrackPredicate) int64 {
	if o.Stride > 0 {
		return o.Stride
	}
	if p.MinDuration >= 2 {
		s := p.MinDuration / 2
		if s > 64 {
			s = 64
		}
		return s
	}
	return 16
}

// TrackResult is one object track matching the predicate.
type TrackResult struct {
	// TrackID numbers matched tracks in emission order (deterministic for
	// a fixed predicate, options and source).
	TrackID int
	// Class is the object class.
	Class string
	// Start and End are the first and last frames the object was observed
	// on (inclusive).
	Start, End int64
	// StartBox and EndBox are the smoothed bounding boxes at those frames.
	StartBox, EndBox Box
	// Hits is the number of detections associated into the track.
	Hits int
	// AvgSpeed is the mean center speed along the smoothed path, pixels
	// per frame.
	AvgSpeed float64
}

// TrackReport summarizes a finished track query.
type TrackReport struct {
	// Predicate is the query as submitted.
	Predicate TrackPredicate
	// Results lists the matching tracks in emission order.
	Results []TrackResult
	// FramesProcessed counts detector invocations (coarse + refine).
	FramesProcessed int64
	// CoarseFrames and RefineFrames split FramesProcessed by phase.
	CoarseFrames, RefineFrames int64
	// Intervals is the number of candidate intervals phase 1 localized;
	// IntervalFrames is their total frame span.
	Intervals      int
	IntervalFrames int64
	// DenseFrames is what a dense scan of the same (active) frame range
	// would have cost in detector frames — the baseline the accelerate
	// loop is saving against.
	DenseFrames int64
	// DetectSeconds and DecodeSeconds are the charged costs.
	DetectSeconds, DecodeSeconds float64
	// CacheHits and CacheMisses count memo-cache outcomes when an
	// Engine-level detector cache is enabled (both zero otherwise).
	CacheHits, CacheMisses int64
	// RemoteCacheHits counts the subset of CacheHits served by the shared
	// remote tier (EngineOptions.RemoteCache). Zero without a remote tier.
	RemoteCacheHits int64
}

// TotalSeconds is the full charged query time.
func (r *TrackReport) TotalSeconds() float64 {
	return r.DetectSeconds + r.DecodeSeconds
}

// Speedup returns DenseFrames / FramesProcessed — how many detector frames
// the dense baseline spends per frame this query spent (1 when the query
// degenerated to a dense scan; 0 before any frame was processed).
func (r *TrackReport) Speedup() float64 {
	if r.FramesProcessed == 0 {
		return 0
	}
	return float64(r.DenseFrames) / float64(r.FramesProcessed)
}
