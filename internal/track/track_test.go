package track

import (
	"testing"
	"testing/quick"

	"github.com/exsample/exsample/internal/geom"
)

func inst(id int, class string, start, end int64) Instance {
	return Instance{
		ID:       id,
		Class:    class,
		Start:    start,
		End:      end,
		StartBox: geom.Rect(0, 0, 10, 10),
		EndBox:   geom.Rect(100, 100, 10, 10),
	}
}

func TestDuration(t *testing.T) {
	if d := inst(1, "car", 5, 5).Duration(); d != 1 {
		t.Errorf("single-frame duration = %d", d)
	}
	if d := inst(1, "car", 5, 14).Duration(); d != 10 {
		t.Errorf("duration = %d", d)
	}
	if d := (Instance{Start: 10, End: 5}).Duration(); d != 0 {
		t.Errorf("inverted duration = %d", d)
	}
}

func TestVisibleAt(t *testing.T) {
	in := inst(1, "car", 10, 20)
	for _, c := range []struct {
		f    int64
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}} {
		if got := in.VisibleAt(c.f); got != c.want {
			t.Errorf("VisibleAt(%d) = %v", c.f, got)
		}
	}
}

func TestBoxAtInterpolation(t *testing.T) {
	in := inst(1, "car", 0, 10)
	if b := in.BoxAt(0); b != in.StartBox {
		t.Errorf("BoxAt(start) = %+v", b)
	}
	if b := in.BoxAt(10); b != in.EndBox {
		t.Errorf("BoxAt(end) = %+v", b)
	}
	mid := in.BoxAt(5)
	if mid.X1 != 50 || mid.Y1 != 50 {
		t.Errorf("BoxAt(mid) = %+v", mid)
	}
	// Clamped outside the interval.
	if b := in.BoxAt(-5); b != in.StartBox {
		t.Errorf("BoxAt(before) = %+v", b)
	}
	if b := in.BoxAt(99); b != in.EndBox {
		t.Errorf("BoxAt(after) = %+v", b)
	}
}

func TestBoxAtSingleFrame(t *testing.T) {
	in := inst(1, "car", 7, 7)
	if b := in.BoxAt(7); b != in.StartBox {
		t.Errorf("single-frame BoxAt = %+v", b)
	}
}

func TestValidate(t *testing.T) {
	good := inst(1, "car", 0, 10)
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []Instance{
		{ID: 1, Class: "car", Start: 10, End: 5, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
		{ID: 2, Class: "car", Start: -1, End: 5, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
		{ID: 3, Class: "", Start: 0, End: 5, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
		{ID: 4, Class: "car", Start: 0, End: 5, StartBox: geom.Box{X1: 5, X2: 0}, EndBox: geom.Rect(0, 0, 1, 1)},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("instance %d accepted, want error", in.ID)
		}
	}
}

func TestIndexBasicLookup(t *testing.T) {
	instances := []Instance{
		inst(0, "car", 0, 99),
		inst(1, "car", 50, 149),
		inst(2, "bus", 60, 60),
		inst(3, "car", 5000, 6000),
	}
	idx, err := NewIndex(instances, 10000, 64)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.At(60, nil)
	if len(got) != 3 {
		t.Fatalf("At(60) returned %d instances", len(got))
	}
	got = idx.AtClass(60, "car", nil)
	if len(got) != 2 {
		t.Fatalf("AtClass(60, car) returned %d instances", len(got))
	}
	if got := idx.At(200, nil); len(got) != 0 {
		t.Fatalf("At(200) returned %d instances", len(got))
	}
	if got := idx.At(5500, nil); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("At(5500) = %+v", got)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	idx, err := NewIndex([]Instance{inst(0, "car", 0, 10)}, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.At(-1, nil); len(got) != 0 {
		t.Errorf("At(-1) = %v", got)
	}
	if got := idx.At(100, nil); len(got) != 0 {
		t.Errorf("At(numFrames) = %v", got)
	}
}

func TestIndexClipsToRepository(t *testing.T) {
	// Instance extends past the end of the repository; lookups inside work.
	idx, err := NewIndex([]Instance{inst(0, "car", 90, 500)}, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.At(95, nil); len(got) != 1 {
		t.Fatalf("At(95) = %v", got)
	}
}

func TestIndexRejectsBadInput(t *testing.T) {
	if _, err := NewIndex(nil, 0, 0); err == nil {
		t.Error("NewIndex with 0 frames accepted")
	}
	if _, err := NewIndex([]Instance{{ID: 1, Start: 5, End: 1}}, 100, 0); err == nil {
		t.Error("NewIndex with invalid instance accepted")
	}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	// Property: index lookups agree with a brute-force scan for arbitrary
	// intervals.
	f := func(raws [8][2]uint16, probe uint16) bool {
		const numFrames = 4096
		var instances []Instance
		for i, r := range raws {
			a := int64(r[0]) % numFrames
			b := int64(r[1]) % numFrames
			if a > b {
				a, b = b, a
			}
			instances = append(instances, inst(i, "car", a, b))
		}
		idx, err := NewIndex(instances, numFrames, 32)
		if err != nil {
			return false
		}
		frame := int64(probe) % numFrames
		got := idx.At(frame, nil)
		want := 0
		for _, in := range instances {
			if in.VisibleAt(frame) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCountByClass(t *testing.T) {
	counts := CountByClass([]Instance{
		inst(0, "car", 0, 1), inst(1, "car", 2, 3), inst(2, "bus", 4, 5),
	})
	if counts["car"] != 2 || counts["bus"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFilterClass(t *testing.T) {
	in := []Instance{inst(0, "car", 0, 1), inst(1, "bus", 2, 3), inst(2, "car", 4, 5)}
	cars := FilterClass(in, "car")
	if len(cars) != 2 || cars[0].ID != 0 || cars[1].ID != 2 {
		t.Fatalf("FilterClass = %+v", cars)
	}
	if got := FilterClass(in, "dog"); got != nil {
		t.Fatalf("FilterClass(dog) = %+v", got)
	}
}

func TestSortByStart(t *testing.T) {
	in := []Instance{inst(2, "car", 50, 60), inst(1, "car", 10, 20), inst(3, "car", 10, 30)}
	SortByStart(in)
	if in[0].ID != 1 || in[1].ID != 3 || in[2].ID != 2 {
		t.Fatalf("sorted order = %d %d %d", in[0].ID, in[1].ID, in[2].ID)
	}
}

// TestSortByStartTieBreakDeterministic is the regression guard for the
// equal-start tie-break: sort.Slice is unstable, so without the explicit
// by-ID tie rule different input permutations (exactly what -shuffle=on
// produces through map iteration and test ordering upstream) could emit
// equal-start instances in different orders. Every permutation must yield
// the one canonical order: by start, then by ID.
func TestSortByStartTieBreakDeterministic(t *testing.T) {
	base := []Instance{
		inst(7, "car", 10, 20),
		inst(3, "car", 10, 25),
		inst(5, "car", 10, 22),
		inst(1, "car", 5, 9),
		inst(9, "car", 10, 21),
		inst(2, "car", 30, 40),
	}
	want := []int{1, 3, 5, 7, 9, 2}
	// Rotate through every cyclic permutation of the input.
	for shift := 0; shift < len(base); shift++ {
		in := make([]Instance, 0, len(base))
		in = append(in, base[shift:]...)
		in = append(in, base[:shift]...)
		SortByStart(in)
		for i, id := range want {
			if in[i].ID != id {
				t.Fatalf("shift %d: position %d has ID %d, want %d (full order %+v)", shift, i, in[i].ID, id, ids(in))
			}
		}
	}
}

func ids(in []Instance) []int {
	out := make([]int, len(in))
	for i := range in {
		out[i] = in[i].ID
	}
	return out
}

func TestAtReusesBuffer(t *testing.T) {
	idx, err := NewIndex([]Instance{inst(0, "car", 0, 10)}, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Instance, 0, 8)
	got := idx.At(5, buf)
	if len(got) != 1 {
		t.Fatalf("got %d", len(got))
	}
	got2 := idx.At(5, got[:0])
	if len(got2) != 1 || &got2[0] != &got[0] {
		t.Fatal("buffer was not reused")
	}
}
