// Package track models ground-truth object instances in a video repository.
//
// A distinct object ("instance" in the paper's terminology) is visible for a
// contiguous interval of frames; its bounding box moves smoothly between a
// start and an end pose. The paper's distinct-object queries count each
// instance once no matter how many frames it is detected in (§II-B); the
// discriminator and the evaluation both need an efficient mapping from a
// frame index to the instances visible in that frame, which Index provides.
package track

import (
	"fmt"
	"sort"

	"github.com/exsample/exsample/internal/geom"
)

// Instance is one distinct ground-truth object: a class label, a visibility
// interval [Start, End] in repository frame coordinates (inclusive on both
// ends), and interpolated box motion from StartBox to EndBox.
type Instance struct {
	ID       int
	Class    string
	Start    int64
	End      int64
	StartBox geom.Box
	EndBox   geom.Box
}

// Duration returns the number of frames the instance is visible in.
func (in Instance) Duration() int64 {
	if in.End < in.Start {
		return 0
	}
	return in.End - in.Start + 1
}

// VisibleAt reports whether the instance is visible in the given frame.
func (in Instance) VisibleAt(frame int64) bool {
	return frame >= in.Start && frame <= in.End
}

// BoxAt returns the instance's bounding box at the given frame, linearly
// interpolated between StartBox and EndBox. The frame must be within the
// visibility interval; callers should check VisibleAt first. Out-of-interval
// frames are clamped to the nearest endpoint.
func (in Instance) BoxAt(frame int64) geom.Box {
	if in.Duration() <= 1 {
		return in.StartBox
	}
	t := float64(frame-in.Start) / float64(in.End-in.Start)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return geom.Lerp(in.StartBox, in.EndBox, t)
}

// Validate reports an error if the instance is malformed.
func (in Instance) Validate() error {
	if in.End < in.Start {
		return fmt.Errorf("track: instance %d has End %d < Start %d", in.ID, in.End, in.Start)
	}
	if in.Start < 0 {
		return fmt.Errorf("track: instance %d has negative Start %d", in.ID, in.Start)
	}
	if !in.StartBox.Valid() || !in.EndBox.Valid() {
		return fmt.Errorf("track: instance %d has an invalid box", in.ID)
	}
	if in.Class == "" {
		return fmt.Errorf("track: instance %d has empty class", in.ID)
	}
	return nil
}

// Index answers "which instances are visible in frame f?" in time
// proportional to the answer size. It buckets the frame axis; each bucket
// records the instances whose interval overlaps it.
type Index struct {
	instances  []Instance
	bucketSize int64
	buckets    [][]int32 // instance indices per bucket
	numFrames  int64
}

// DefaultBucketSize is used when NewIndex is called with bucketSize <= 0.
const DefaultBucketSize = 1 << 10

// NewIndex builds an index over the given instances for a repository with
// numFrames frames. Instances extending beyond the repository are clipped to
// it. bucketSize <= 0 selects DefaultBucketSize.
func NewIndex(instances []Instance, numFrames int64, bucketSize int64) (*Index, error) {
	if numFrames <= 0 {
		return nil, fmt.Errorf("track: NewIndex requires numFrames > 0, got %d", numFrames)
	}
	if bucketSize <= 0 {
		bucketSize = DefaultBucketSize
	}
	for _, in := range instances {
		if err := in.Validate(); err != nil {
			return nil, err
		}
	}
	nb := (numFrames + bucketSize - 1) / bucketSize
	idx := &Index{
		instances:  instances,
		bucketSize: bucketSize,
		buckets:    make([][]int32, nb),
		numFrames:  numFrames,
	}
	for i, in := range instances {
		lo := in.Start
		hi := in.End
		if hi >= numFrames {
			hi = numFrames - 1
		}
		if lo >= numFrames || hi < 0 {
			continue // entirely outside the repository
		}
		for b := lo / bucketSize; b <= hi/bucketSize; b++ {
			idx.buckets[b] = append(idx.buckets[b], int32(i))
		}
	}
	return idx, nil
}

// At appends to dst the instances visible in the given frame and returns the
// extended slice. Pass a reusable buffer to avoid allocation in hot loops.
// Out-of-range frames yield no instances.
func (x *Index) At(frame int64, dst []Instance) []Instance {
	if frame < 0 || frame >= x.numFrames {
		return dst
	}
	for _, i := range x.buckets[frame/x.bucketSize] {
		in := x.instances[i]
		if in.VisibleAt(frame) {
			dst = append(dst, in)
		}
	}
	return dst
}

// AtClass is like At but keeps only instances of the given class.
func (x *Index) AtClass(frame int64, class string, dst []Instance) []Instance {
	if frame < 0 || frame >= x.numFrames {
		return dst
	}
	for _, i := range x.buckets[frame/x.bucketSize] {
		in := x.instances[i]
		if in.Class == class && in.VisibleAt(frame) {
			dst = append(dst, in)
		}
	}
	return dst
}

// Instances returns the indexed instances (shared slice; do not mutate).
func (x *Index) Instances() []Instance { return x.instances }

// NumFrames returns the repository size the index was built for.
func (x *Index) NumFrames() int64 { return x.numFrames }

// CountByClass returns the number of distinct instances per class.
func CountByClass(instances []Instance) map[string]int {
	counts := make(map[string]int)
	for _, in := range instances {
		counts[in.Class]++
	}
	return counts
}

// FilterClass returns the instances of the given class, preserving order.
func FilterClass(instances []Instance, class string) []Instance {
	var out []Instance
	for _, in := range instances {
		if in.Class == class {
			out = append(out, in)
		}
	}
	return out
}

// SortByStart sorts instances in place by start frame (ties by ID) so
// downstream code can rely on a deterministic order.
func SortByStart(instances []Instance) {
	sort.Slice(instances, func(i, j int) bool {
		if instances[i].Start != instances[j].Start {
			return instances[i].Start < instances[j].Start
		}
		return instances[i].ID < instances[j].ID
	})
}

// Detection is a single detector output: a box with a class label and a
// confidence score, tied to the frame it was computed on.
type Detection struct {
	Frame int64
	Class string
	Box   geom.Box
	Score float64
	// TruthID is the ground-truth instance the detection came from, or -1
	// for a false positive. It is used only by the evaluation to compute
	// recall — the sampler and the discriminator never read it, mirroring
	// the paper's setting where instance identity is unknown at query time.
	TruthID int
}
