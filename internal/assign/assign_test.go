package assign

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/exsample/exsample/internal/xrand"
)

func TestSolveIdentity(t *testing.T) {
	cost := [][]float64{
		{0, 5, 5},
		{5, 0, 5},
		{5, 5, 0},
	}
	rowTo, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("total = %v", total)
	}
	for i, j := range rowTo {
		if i != j {
			t.Fatalf("assignment = %v", rowTo)
		}
	}
}

func TestSolveAntiDiagonal(t *testing.T) {
	cost := [][]float64{
		{9, 1},
		{1, 9},
	}
	rowTo, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if rowTo[0] != 1 || rowTo[1] != 0 || total != 2 {
		t.Fatalf("assignment = %v, total = %v", rowTo, total)
	}
}

func TestSolveClassic(t *testing.T) {
	// Known instance with optimal total 140+120+... classic 3x3.
	cost := [][]float64{
		{40, 60, 15},
		{25, 30, 45},
		{55, 30, 25},
	}
	rowTo, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: (0,2)=15, (1,0)=25, (2,1)=30 -> 70.
	if total != 70 {
		t.Fatalf("total = %v, assignment %v", total, rowTo)
	}
}

func TestSolveRectangularMoreRows(t *testing.T) {
	cost := [][]float64{
		{1, 10},
		{2, 1},
		{10, 10},
	}
	rowTo, _, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	assigned := 0
	seen := map[int]bool{}
	for _, j := range rowTo {
		if j >= 0 {
			if seen[j] {
				t.Fatalf("column %d assigned twice: %v", j, rowTo)
			}
			seen[j] = true
			assigned++
		}
	}
	if assigned != 2 {
		t.Fatalf("%d rows assigned, want 2 (only 2 columns)", assigned)
	}
}

func TestSolveRectangularMoreCols(t *testing.T) {
	cost := [][]float64{
		{5, 1, 9, 9},
	}
	rowTo, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if rowTo[0] != 1 || total != 1 {
		t.Fatalf("assignment = %v total = %v", rowTo, total)
	}
}

func TestSolveInfeasible(t *testing.T) {
	cost := [][]float64{
		{Infeasible, 1},
		{Infeasible, Infeasible},
	}
	rowTo, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if rowTo[0] != 1 || rowTo[1] != -1 {
		t.Fatalf("assignment = %v", rowTo)
	}
	if total != 1 {
		t.Fatalf("total = %v", total)
	}
}

func TestSolveAllInfeasible(t *testing.T) {
	cost := [][]float64{{Infeasible}, {Infeasible}}
	rowTo, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if rowTo[0] != -1 || rowTo[1] != -1 || total != 0 {
		t.Fatalf("assignment = %v total = %v", rowTo, total)
	}
}

func TestSolveEmpty(t *testing.T) {
	rowTo, total, err := Solve(nil)
	if err != nil || rowTo != nil || total != 0 {
		t.Fatalf("Solve(nil) = %v, %v, %v", rowTo, total, err)
	}
}

func TestSolveRagged(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSolveNaN(t *testing.T) {
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN cost accepted")
	}
}

// bruteForce finds the optimal assignment by permutation enumeration.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	m := len(cost[0])
	best := math.Inf(1)
	perm := make([]int, m)
	for j := range perm {
		perm[j] = j
	}
	var rec func(i int, used int, acc float64, count int)
	rec = func(i int, used int, acc float64, count int) {
		if i == n {
			if acc < best {
				best = acc
			}
			return
		}
		// Option: leave row i unassigned (only beneficial with Inf cells).
		rec(i+1, used, acc, count)
		for j := 0; j < m; j++ {
			if used&(1<<j) != 0 || math.IsInf(cost[i][j], 1) {
				continue
			}
			rec(i+1, used|(1<<j), acc+cost[i][j], count+1)
		}
	}
	_ = perm
	// We want maximum cardinality first, then min cost; emulate by adding a
	// large penalty for each unassigned feasible row. Simplify: penalize
	// unassignment by a huge constant per row that has at least one finite
	// cell.
	penalty := maxFinite(cost)*float64(n*m+1) + 1
	best = math.Inf(1)
	var rec2 func(i int, used int, acc float64)
	rec2 = func(i int, used int, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		hasFeasible := false
		for j := 0; j < m; j++ {
			if math.IsInf(cost[i][j], 1) {
				continue
			}
			hasFeasible = true
			if used&(1<<j) == 0 {
				rec2(i+1, used|(1<<j), acc+cost[i][j])
			}
		}
		skipPenalty := 0.0
		if hasFeasible {
			skipPenalty = penalty
		}
		rec2(i+1, used, acc+skipPenalty)
	}
	rec2(0, 0, 0)
	// Remove penalties: recompute min feasible-cost with max cardinality is
	// messy; instead return best modulo penalty remainder.
	return math.Mod(best, penalty)
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := xrand.New(99)
	f := func(seed uint16) bool {
		n := int(seed%4) + 1
		m := int(seed/4%4) + 1
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 20)
			}
		}
		rowTo, total, err := Solve(cost)
		if err != nil {
			return false
		}
		// Validate: no column reused.
		seen := map[int]bool{}
		for _, j := range rowTo {
			if j < 0 {
				continue
			}
			if seen[j] {
				return false
			}
			seen[j] = true
		}
		want := bruteForce(cost)
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
