// Package assign solves the linear assignment problem (minimum-cost
// bipartite matching) with the Hungarian algorithm. The SORT-style tracker
// uses it to associate detections with predicted track positions each frame
// (the paper's ground-truth construction matches detection boxes across
// adjacent frames by IoU, §V-A).
package assign

import (
	"fmt"
	"math"
)

// Infeasible marks a forbidden pairing in the cost matrix; the solver never
// selects it unless a row has no feasible column at all, in which case the
// row is reported unassigned.
var Infeasible = math.Inf(1)

// Solve finds the assignment of rows to columns minimizing total cost.
// cost[i][j] is the cost of assigning row i to column j; the matrix may be
// rectangular. It returns rowTo, where rowTo[i] is the column assigned to
// row i or -1, and the total cost over feasible assignments.
//
// The implementation is the O(n³) Hungarian algorithm with potentials
// (Jonker–Volgenant style shortest augmenting paths).
func Solve(cost [][]float64) (rowTo []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("assign: ragged cost matrix at row %d", i)
		}
		for _, c := range row {
			if math.IsNaN(c) {
				return nil, 0, fmt.Errorf("assign: NaN cost at row %d", i)
			}
			if c < 0 && !math.IsInf(c, 1) {
				// Negative costs are fine mathematically, but the Infeasible
				// sentinel logic assumes +Inf is the only special value.
				continue
			}
		}
	}

	// Pad to a square problem of size N = max(n, m) with Infeasible cells,
	// then run the potentials algorithm on the padded matrix. Work in a
	// "large but finite" surrogate for Inf so arithmetic stays sane.
	big := maxFinite(cost)*float64(n+m+1) + 1
	if big == 1 {
		big = 1 // all-infeasible matrix
	}
	size := n
	if m > size {
		size = m
	}
	a := make([][]float64, size+1)
	for i := range a {
		a[i] = make([]float64, size+1)
	}
	for i := 1; i <= size; i++ {
		for j := 1; j <= size; j++ {
			v := big
			if i <= n && j <= m && !math.IsInf(cost[i-1][j-1], 1) {
				v = cost[i-1][j-1]
			}
			a[i][j] = v
		}
	}

	u := make([]float64, size+1)
	v := make([]float64, size+1)
	p := make([]int, size+1) // p[j] = row matched to column j
	way := make([]int, size+1)
	for i := 1; i <= size; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, size+1)
		used := make([]bool, size+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= size; j++ {
				if used[j] {
					continue
				}
				cur := a[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= size; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	rowTo = make([]int, n)
	for i := range rowTo {
		rowTo[i] = -1
	}
	for j := 1; j <= size; j++ {
		i := p[j]
		if i >= 1 && i <= n && j <= m {
			// Reject padded/infeasible matches.
			if !math.IsInf(cost[i-1][j-1], 1) {
				rowTo[i-1] = j - 1
				total += cost[i-1][j-1]
			}
		}
	}
	return rowTo, total, nil
}

func maxFinite(cost [][]float64) float64 {
	mx := 0.0
	for _, row := range cost {
		for _, c := range row {
			if !math.IsInf(c, 1) && math.Abs(c) > mx {
				mx = math.Abs(c)
			}
		}
	}
	return mx
}
