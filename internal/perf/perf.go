// Package perf is the machine-readable performance trajectory behind
// BENCH_engine.json: a small, fixed suite of end-to-end engine benchmarks
// (throughput, sharded fan-out, sampler decision cost, adaptive-vs-static
// round sizing) measured with explicit op counts and allocation accounting.
//
// It exists separately from the go-test benchmarks so cmd/exbench can run
// the suite from a plain binary (`exbench -bench-out BENCH_engine.json`)
// and CI can upload the snapshot as an artifact; the go-test benchmarks
// remain the interactive, -benchmem-friendly view of the same paths.
package perf

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	exsample "github.com/exsample/exsample"
	"github.com/exsample/exsample/backend"
	"github.com/exsample/exsample/backend/router"
	"github.com/exsample/exsample/cachestore"
	"github.com/exsample/exsample/cachestore/httpcache"
)

// Result is one benchmark's snapshot entry.
type Result struct {
	// Name identifies the benchmark; names are stable across snapshots so
	// trajectories can be diffed.
	Name string `json:"name"`
	// Ops is how many times the op ran (after one untimed warmup).
	Ops int `json:"ops"`
	// NsPerOp, AllocsPerOp and BytesPerOp are the per-op wall time and
	// allocation averages over the measured ops.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics carries benchmark-specific values (frames/op, frames/s, ...),
	// averaged over the measured ops.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_engine.json document.
type Snapshot struct {
	// GoVersion, GOOS and GOARCH identify the toolchain and platform the
	// numbers were measured on — the snapshot is a trajectory record, not a
	// cross-machine contract.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Suite holds one entry per benchmark, in a fixed order.
	Suite []Result `json:"suite"`
}

// measure runs op ops times (after one untimed warmup call) and returns
// wall-time and allocation averages plus the merged benchmark metrics.
func measure(name string, ops int, op func() (map[string]float64, error)) (Result, error) {
	if _, err := op(); err != nil {
		return Result{}, fmt.Errorf("%s: warmup: %w", name, err)
	}
	metrics := make(map[string]float64)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		m, err := op()
		if err != nil {
			return Result{}, fmt.Errorf("%s: op %d: %w", name, i, err)
		}
		for k, v := range m {
			metrics[k] += v
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	for k := range metrics {
		metrics[k] /= float64(ops)
	}
	return Result{
		Name:        name,
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
		Metrics:     metrics,
	}, nil
}

// SlowBackend wraps a backend with a simulated wire/inference latency of
// overhead + perFrame*len(frames) per DetectBatch call — the fixed-cost
// batch shape (HTTP round trip + per-frame GPU time) that makes adaptive
// round sizing pay: bigger batches amortize the overhead. maxBatch is the
// advertised Hints.MaxBatch (0 = unbounded).
func SlowBackend(inner backend.Backend, overhead, perFrame time.Duration, maxBatch int) backend.Backend {
	return &slowBackend{inner: inner, overhead: overhead, perFrame: perFrame, maxBatch: maxBatch}
}

type slowBackend struct {
	inner    backend.Backend
	overhead time.Duration
	perFrame time.Duration
	maxBatch int
}

func (b *slowBackend) DetectBatch(ctx context.Context, class string, frames []int64) ([][]backend.Detection, error) {
	delay := b.overhead + time.Duration(len(frames))*b.perFrame
	select {
	case <-time.After(delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.inner.DetectBatch(ctx, class, frames)
}

func (b *slowBackend) Hints() backend.Hints {
	h := b.inner.Hints()
	h.MaxBatch = b.maxBatch
	return h
}

// engineOp runs n seeded queries on a fresh engine and reports frames/op,
// results/op and frames/s (detector frames per wall second).
func engineOp(src exsample.Source, class string, queries, limit int, opts exsample.EngineOptions, maxFrames int64, seed *uint64) (map[string]float64, error) {
	eng, err := exsample.NewEngine(opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	start := time.Now()
	handles := make([]*exsample.QueryHandle, queries)
	for i := range handles {
		*seed++
		handles[i], err = eng.Submit(context.Background(), src,
			exsample.Query{Class: class, Limit: limit},
			exsample.Options{Seed: *seed, MaxFrames: maxFrames})
		if err != nil {
			return nil, err
		}
	}
	var frames int64
	var found int
	for _, h := range handles {
		rep, err := h.Wait()
		if err != nil {
			return nil, err
		}
		frames += rep.FramesProcessed
		found += len(rep.Results)
	}
	secs := time.Since(start).Seconds()
	m := map[string]float64{
		"frames/op":  float64(frames),
		"results/op": float64(found),
	}
	if secs > 0 {
		m["frames/s"] = float64(frames) / secs
	}
	return m, nil
}

// budgetOp runs the mixed-fleet scheduling benchmark behind the global
// marginal-value budget: 8 concurrent queries — 4 over a dense repository,
// 4 random-order over a near-empty one — stopped once the engine has spent
// a fixed number of detector calls, then cancelled. Detector cost is held
// equal across arms, so results/kdetect (aggregate distinct results per
// thousand detector calls) isolates what the scheduler's frame placement
// is worth; the global-budget row's ratio over the fair-share row is the
// allocator's acceptance metric.
func budgetOp(dsHot, dsCold *exsample.Dataset, opts exsample.EngineOptions, seed *uint64) (map[string]float64, error) {
	const detectBudget = 6000
	eng, err := exsample.NewEngine(opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	start := time.Now()
	var handles []*exsample.QueryHandle
	for i := 0; i < 4; i++ {
		*seed++
		h, err := eng.Submit(context.Background(), dsHot,
			exsample.Query{Class: "car", Limit: 1 << 30},
			exsample.Options{Seed: *seed})
		if err != nil {
			return nil, err
		}
		handles = append(handles, h)
	}
	for i := 0; i < 4; i++ {
		*seed++
		h, err := eng.Submit(context.Background(), dsCold,
			exsample.Query{Class: "car", Limit: 1 << 30},
			exsample.Options{Strategy: exsample.StrategyRandom, Seed: *seed})
		if err != nil {
			return nil, err
		}
		handles = append(handles, h)
	}
	for eng.Stats().DetectCalls < detectBudget {
		time.Sleep(100 * time.Microsecond)
	}
	for _, h := range handles {
		h.Cancel()
	}
	var found int
	for _, h := range handles {
		rep, err := h.Wait()
		if err != nil && err != context.Canceled {
			return nil, err
		}
		found += len(rep.Results)
	}
	detects := eng.Stats().DetectCalls
	granted, requested := eng.Stats().BudgetGranted, eng.Stats().BudgetRequested
	secs := time.Since(start).Seconds()
	m := map[string]float64{
		"results/op": float64(found),
		"detects/op": float64(detects),
	}
	if detects > 0 {
		m["results/kdetect"] = float64(found) / float64(detects) * 1000
	}
	if requested > 0 {
		m["grant-ratio"] = float64(granted) / float64(requested)
	}
	if secs > 0 {
		m["results/s"] = float64(found) / secs
	}
	return m, nil
}

// streamOp runs one full live-ingest cycle: a standing query over a
// segment ring, a writer appending segments (half of them dead) at the
// consumption rate — each append issued at the previous park boundary —
// and a cancel once the schedule drains. Reported metrics are alerts/s
// (distinct objects surfaced per wall second), frames/op and the charged
// gate probe cost.
func streamOp(threshold float64, seedBase uint64) (map[string]float64, error) {
	const framesEach = 1000
	const appends = 6
	mk := func(seed uint64, dead bool) (*exsample.Dataset, error) {
		spec := exsample.SynthSpec{
			NumFrames:    framesEach,
			NumInstances: 40,
			Class:        "car",
			MeanDuration: 100,
			SkewFraction: 1.0 / 8,
			ChunkFrames:  framesEach / 8,
			Seed:         seed,
		}
		if dead {
			spec.NumInstances = 1
			spec.MeanDuration = 1
		}
		return exsample.Synthesize(spec)
	}
	first, err := mk(seedBase, false)
	if err != nil {
		return nil, err
	}
	s, err := exsample.NewStreamSource(
		exsample.StreamConfig{Retention: 4, MotionThreshold: threshold}, first)
	if err != nil {
		return nil, err
	}
	eng, err := exsample.NewEngine(exsample.EngineOptions{
		Workers:        4,
		FramesPerRound: 4,
		EventBuffer:    1 << 15,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	start := time.Now()
	h, err := eng.SubmitStanding(context.Background(), s,
		exsample.Query{Class: "car"}, exsample.Options{Seed: seedBase})
	if err != nil {
		return nil, err
	}
	waitPark := func() {
		for !h.Parked() {
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitPark()
	for a := 1; a <= appends; a++ {
		seg, err := mk(seedBase+uint64(a), a%2 == 0)
		if err != nil {
			return nil, err
		}
		if _, err := s.Append(seg); err != nil {
			return nil, err
		}
		waitPark()
	}
	h.Cancel()
	rep, err := h.Wait()
	if err != nil && err != context.Canceled {
		return nil, err
	}
	secs := time.Since(start).Seconds()
	m := map[string]float64{
		"frames/op": float64(rep.FramesProcessed),
		"alerts/op": float64(len(rep.Results)),
		"gate-s/op": s.StreamStats().GateSeconds,
	}
	if secs > 0 {
		m["alerts/s"] = float64(len(rep.Results)) / secs
		m["frames/s"] = float64(rep.FramesProcessed) / secs
	}
	return m, nil
}

// trackOp runs one track-predicate query through the engine over the
// sparse moving-object scene and reports detector frames, matched tracks,
// wall throughput and the realized dense-scan savings (dense-x) — the
// accelerate/refine loop's acceptance metric.
func trackOp(ds *exsample.Dataset, opts exsample.TrackOptions, seed *uint64) (map[string]float64, error) {
	*seed++
	opts.Seed = *seed
	eng, err := exsample.NewEngine(exsample.EngineOptions{Workers: 4, FramesPerRound: 8})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	start := time.Now()
	h, err := eng.SubmitTrack(context.Background(), ds,
		exsample.TrackPredicate{Class: "car", MinDuration: 50}, opts)
	if err != nil {
		return nil, err
	}
	rep, err := h.Wait()
	if err != nil {
		return nil, err
	}
	secs := time.Since(start).Seconds()
	m := map[string]float64{
		"frames/op": float64(rep.FramesProcessed),
		"tracks/op": float64(len(rep.Results)),
		"dense-x":   rep.Speedup(),
	}
	if rep.FramesProcessed > 0 {
		m["results/kdetect"] = float64(len(rep.Results)) / float64(rep.FramesProcessed) * 1000
	}
	if secs > 0 {
		m["frames/s"] = float64(rep.FramesProcessed) / secs
	}
	return m, nil
}

// RunSuite measures the whole trajectory suite. It is deliberately small
// (seconds, not minutes): the snapshot is a smoke-level trajectory, and
// the go-test benchmarks remain the precision instrument.
func RunSuite() (*Snapshot, error) {
	snap := &Snapshot{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	dashcam, err := exsample.OpenProfile("dashcam", 0.05, 3)
	if err != nil {
		return nil, err
	}
	var seed uint64
	res, err := measure("engine_throughput_4q", 3, func() (map[string]float64, error) {
		return engineOp(dashcam, "traffic light", 4, 10,
			exsample.EngineOptions{Workers: 4, FramesPerRound: 4}, 0, &seed)
	})
	if err != nil {
		return nil, err
	}
	snap.Suite = append(snap.Suite, res)

	shards := make([]*exsample.Dataset, 2)
	for i := range shards {
		shards[i], err = exsample.Synthesize(exsample.SynthSpec{
			NumFrames:    80_000,
			NumInstances: 100,
			Class:        "car",
			MeanDuration: 120,
			SkewFraction: 1.0 / 8,
			ChunkFrames:  2000,
			Seed:         uint64(40 + i),
		})
		if err != nil {
			return nil, err
		}
	}
	sharded, err := exsample.NewShardedSource("bench", shards...)
	if err != nil {
		return nil, err
	}
	seed = 100
	res, err = measure("sharded_throughput_2s_4q", 3, func() (map[string]float64, error) {
		return engineOp(sharded, "car", 4, 10,
			exsample.EngineOptions{Workers: 4, FramesPerRound: 4}, 0, &seed)
	})
	if err != nil {
		return nil, err
	}
	snap.Suite = append(snap.Suite, res)

	// Sampler decision cost: one 256-frame ExSample search over 128 chunks
	// with a near-free detector, so decision overhead dominates — the
	// §III-F "sampling must be negligible" number, with allocs/op as the
	// regression-sensitive part.
	synth, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    1 << 20,
		NumInstances: 100,
		MeanDuration: 100,
		ChunkFrames:  1 << 13,
		Seed:         9,
	})
	if err != nil {
		return nil, err
	}
	var dseed uint64
	res, err = measure("sampler_decision_256", 8, func() (map[string]float64, error) {
		dseed++
		rep, err := synth.Search(exsample.Query{Class: "object", Limit: 1_000_000},
			exsample.Options{MaxFrames: 256, Seed: dseed})
		if err != nil {
			return nil, err
		}
		return map[string]float64{"frames/op": float64(rep.FramesProcessed)}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Metrics["allocs/frame"] = res.AllocsPerOp / 256
	snap.Suite = append(snap.Suite, res)

	// Adaptive vs static round sizing against a slow fixed-overhead
	// backend: same repository, same budget, the only difference is
	// whether the quota may grow. The adaptive arm's frames/s advantage is
	// the tentpole's acceptance metric.
	slowSpec := exsample.SynthSpec{
		NumFrames:    200_000,
		NumInstances: 300,
		Class:        "car",
		MeanDuration: 150,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  4000,
		Seed:         21,
	}
	src, err := exsample.Synthesize(slowSpec)
	if err != nil {
		return nil, err
	}
	slow, err := exsample.Synthesize(slowSpec,
		exsample.WithBackend(SlowBackend(src.Backend(), 2*time.Millisecond, 20*time.Microsecond, 64)))
	if err != nil {
		return nil, err
	}
	for _, arm := range []struct {
		name     string
		adaptive bool
	}{
		{"engine_static_slowbackend", false},
		{"engine_adaptive_slowbackend", true},
	} {
		aseed := uint64(500)
		res, err = measure(arm.name, 2, func() (map[string]float64, error) {
			// Frame-budgeted, not result-limited: both arms process the
			// same 256 frames per query; only the batching differs.
			return engineOp(slow, "car", 2, 1_000_000,
				exsample.EngineOptions{Workers: 2, FramesPerRound: 2, AdaptiveRounds: arm.adaptive},
				256, &aseed)
		})
		if err != nil {
			return nil, err
		}
		snap.Suite = append(snap.Suite, res)
	}

	// Heterogeneous fleet: one fast replica (weight 4) and three slower,
	// smaller-batch ones (weight 3 each) behind the capacity-aware router,
	// single-replica routing versus scatter-gather over the same frame
	// budget. In single mode every 256-frame round splits at the fleet's
	// min MaxBatch and runs serially on whichever replica the router picks;
	// in scatter mode the round crosses the router whole and fans out
	// proportional to capacity, so the round takes one slice-time instead
	// of a sum of batch-times. The scatter row's frames/s multiple over the
	// single row — recorded as vs-single-x — is the fleet tier's
	// acceptance metric (>= 2.5x by construction of the latency model).
	//
	// The source is deliberately sparse and coarsely chunked (20 chunks):
	// sampler decision time is additive to both arms, so keeping it small
	// relative to the simulated backend latency is what lets the ratio
	// reflect the router rather than the scheduler.
	heteroSpec := exsample.SynthSpec{
		NumFrames:    200_000,
		NumInstances: 40,
		Class:        "car",
		MeanDuration: 60,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  10_000,
		Seed:         27,
	}
	heteroFleet := func(scatter bool) (*exsample.Dataset, *router.Router, error) {
		specs := make([]router.ReplicaSpec, 4)
		for i := range specs {
			twin, err := exsample.Synthesize(heteroSpec)
			if err != nil {
				return nil, nil, err
			}
			// Weight 4:3 matches the per-frame cost ratio (60µs vs 80µs),
			// so scatter shares finish near-simultaneously; the slow
			// replicas' MaxBatch 64 drags the fleet-wide single-mode batch
			// ceiling down to 64 (min across replicas), exactly the
			// lowest-common-denominator tax scatter mode exists to remove.
			if i == 0 {
				specs[i] = router.ReplicaSpec{
					Backend: SlowBackend(twin.Backend(), 500*time.Microsecond, 60*time.Microsecond, 256),
					Name:    "fast",
					Weight:  4,
				}
			} else {
				specs[i] = router.ReplicaSpec{
					Backend: SlowBackend(twin.Backend(), 500*time.Microsecond, 80*time.Microsecond, 64),
					Name:    fmt.Sprintf("slow-%d", i),
					Weight:  3,
				}
			}
		}
		r, err := router.New(router.Config{Specs: specs, Scatter: scatter})
		if err != nil {
			return nil, nil, err
		}
		ds, err := exsample.Synthesize(heteroSpec, exsample.WithBackend(r))
		if err != nil {
			r.Close()
			return nil, nil, err
		}
		return ds, r, nil
	}
	var singleFS float64
	for _, arm := range []struct {
		name    string
		scatter bool
	}{
		{"hetero_fleet_single", false},
		{"hetero_fleet_scatter", true},
	} {
		ds, rtr, err := heteroFleet(arm.scatter)
		if err != nil {
			return nil, err
		}
		hseed := uint64(600)
		res, merr := measure(arm.name, 3, func() (map[string]float64, error) {
			// Frame-budgeted, one query: both arms pay for the same 2048
			// frames; only how the router spends the fleet differs. The
			// warmup op also warms the router's EWMAs past cold start, so
			// the measured single-mode ops route to the settled replica.
			return engineOp(ds, "car", 1, 1_000_000,
				exsample.EngineOptions{Workers: 2, FramesPerRound: 256}, 2048, &hseed)
		})
		rtr.Close()
		if merr != nil {
			return nil, merr
		}
		if arm.scatter {
			if singleFS > 0 {
				res.Metrics["vs-single-x"] = res.Metrics["frames/s"] / singleFS
			}
		} else {
			singleFS = res.Metrics["frames/s"]
		}
		snap.Suite = append(snap.Suite, res)
	}

	// Fair-share vs global marginal-value budget on the mixed hot/cold
	// fleet, both arms stopped at the same detector-call budget. The
	// global-budget row's results/kdetect over the fair-share row's is the
	// scheduler-level allocator's win at equal detector cost.
	hotSpec := exsample.SynthSpec{
		NumFrames:    200_000,
		NumInstances: 5000,
		Class:        "car",
		MeanDuration: 4,
		SkewFraction: 1.0 / 4,
		ChunkFrames:  4000,
		Seed:         31,
	}
	coldSpec := hotSpec
	coldSpec.NumInstances = 2
	coldSpec.MeanDuration = 10
	coldSpec.Seed = 32
	dsHot, err := exsample.Synthesize(hotSpec)
	if err != nil {
		return nil, err
	}
	dsCold, err := exsample.Synthesize(coldSpec)
	if err != nil {
		return nil, err
	}
	for _, arm := range []struct {
		name string
		opts exsample.EngineOptions
	}{
		{"engine_fairshare_mixedfleet", exsample.EngineOptions{Workers: 4, FramesPerRound: 16}},
		{"engine_globalbudget_mixedfleet", exsample.EngineOptions{Workers: 4, FramesPerRound: 16,
			GlobalBudget: 40, FloorQuota: 1}},
	} {
		bseed := uint64(9000)
		res, err = measure(arm.name, 2, func() (map[string]float64, error) {
			return budgetOp(dsHot, dsCold, arm.opts, &bseed)
		})
		if err != nil {
			return nil, err
		}
		snap.Suite = append(snap.Suite, res)
	}

	// Shared result tier, second-user path: the same two seeded queries
	// against the same slow backend, with the remote cache server cold
	// (every frame pays the simulated inference latency and fills the
	// server) versus already populated by a previous process (every frame
	// resolves in one loopback round trip per batch, the detector never
	// fires). The warm row's frames/s multiple over the cold row —
	// recorded as vs-cold-x — is the tier's acceptance metric.
	const cacheSeedBase = 8000
	cacheEngineOpts := func(client *httpcache.Client) exsample.EngineOptions {
		return exsample.EngineOptions{Workers: 4, FramesPerRound: 8, RemoteCache: client}
	}
	res, err = measure("cache_second_user_cold", 3, func() (map[string]float64, error) {
		// A fresh server per op keeps every op genuinely cold.
		srv := httptest.NewServer(httpcache.Handler(cachestore.NewLocal(1 << 16)))
		defer srv.Close()
		client, err := httpcache.New(httpcache.Config{Endpoint: srv.URL})
		if err != nil {
			return nil, err
		}
		cseed := uint64(cacheSeedBase)
		return engineOp(slow, "car", 2, 1_000_000, cacheEngineOpts(client), 256, &cseed)
	})
	if err != nil {
		return nil, err
	}
	coldFS := res.Metrics["frames/s"]
	snap.Suite = append(snap.Suite, res)

	// One shared, pre-populated server for every warm op; each op still
	// rebuilds the dataset and engine from scratch — the second user owns
	// nothing but the server's address.
	warmSrv := httptest.NewServer(httpcache.Handler(cachestore.NewLocal(1 << 16)))
	defer warmSrv.Close()
	// The warm op is wall-clock tiny (tens of milliseconds), so its
	// frames/s — and through it vs-cold-x — is the suite's most
	// jitter-prone number; eight ops average the loopback-latency noise
	// down to where the ratio is gateable.
	res, err = measure("cache_second_user_warm", 8, func() (map[string]float64, error) {
		client, err := httpcache.New(httpcache.Config{Endpoint: warmSrv.URL})
		if err != nil {
			return nil, err
		}
		wseed := uint64(cacheSeedBase)
		return engineOp(slow, "car", 2, 1_000_000, cacheEngineOpts(client), 256, &wseed)
	})
	if err != nil {
		return nil, err
	}
	if coldFS > 0 {
		res.Metrics["vs-cold-x"] = res.Metrics["frames/s"] / coldFS
	}
	snap.Suite = append(snap.Suite, res)

	// Cache-aware tie-breaking on an overlapping fleet: four same-class,
	// different-seed queries sharing one memo cache, with Workers 1 so the
	// schedule (and therefore every count below) is deterministic. The
	// source is deliberately small and densely chunked — 250-frame chunks
	// — so fleet-mates steered into the same chunk collide on actual
	// frames, not just chunks. The aware arm steers tied Thompson draws
	// toward chunks its fleet-mates already paid for, so at equal results
	// it charges fewer detector frames — results/kdetect is the row's
	// gated metric. frames/s is deliberately not reported: these rows
	// exist to compare counts, and a wall-clock metric would only add
	// gate noise.
	fleetSrc, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    20_000,
		NumInstances: 40,
		Class:        "car",
		MeanDuration: 30,
		SkewFraction: 1.0 / 8,
		ChunkFrames:  250,
		Seed:         23,
	})
	if err != nil {
		return nil, err
	}
	for _, arm := range []struct {
		name  string
		aware bool
	}{
		{"cache_aware_off", false},
		{"cache_aware_on", true},
	} {
		res, err = measure(arm.name, 2, func() (map[string]float64, error) {
			eng, err := exsample.NewEngine(exsample.EngineOptions{
				Workers:        1,
				FramesPerRound: 4,
				CacheEntries:   1 << 16,
				CacheAware:     arm.aware,
			})
			if err != nil {
				return nil, err
			}
			defer eng.Close()
			handles := make([]*exsample.QueryHandle, 4)
			for i := range handles {
				handles[i], err = eng.Submit(context.Background(), fleetSrc,
					exsample.Query{Class: "car", Limit: 20},
					exsample.Options{Seed: uint64(8100 + i)})
				if err != nil {
					return nil, err
				}
			}
			var found int
			var hits, misses int64
			for _, h := range handles {
				rep, err := h.Wait()
				if err != nil {
					return nil, err
				}
				found += len(rep.Results)
				hits += rep.CacheHits
				misses += rep.CacheMisses
			}
			m := map[string]float64{
				"results/op": float64(found),
				"hits/op":    float64(hits),
				"detects/op": float64(misses),
			}
			if misses > 0 {
				m["results/kdetect"] = float64(found) / float64(misses) * 1000
			}
			return m, nil
		})
		if err != nil {
			return nil, err
		}
		snap.Suite = append(snap.Suite, res)
	}

	// Live streaming ingest with the motion gate off and on: same append
	// schedule (half the segments dead), paced at park boundaries. The
	// gated arm's smaller frames/op at comparable alerts/op is the gate's
	// detector saving made visible in the trajectory.
	for _, arm := range []struct {
		name      string
		threshold float64
	}{
		{"stream_ingest_gate_off", 0},
		{"stream_ingest_gate_on", 0.12},
	} {
		sseed := uint64(7000)
		res, err = measure(arm.name, 2, func() (map[string]float64, error) {
			sseed += 100
			return streamOp(arm.threshold, sseed)
		})
		if err != nil {
			return nil, err
		}
		snap.Suite = append(snap.Suite, res)
	}

	// Track-predicate queries over a sparse moving-object scene: the
	// accelerate/refine loop (accel) against its coarse-only triage and
	// dense-scan bounds. The accel row's dense-x (DenseFrames over frames
	// actually charged) is the subsystem's acceptance metric; dense runs
	// the same pipeline at stride 1 and by construction charges every
	// frame.
	trackDS, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    40_000,
		NumInstances: 8,
		Class:        "car",
		MeanDuration: 300,
		ChunkFrames:  1000,
		Seed:         7,
		TravelX:      300,
	})
	if err != nil {
		return nil, err
	}
	for _, arm := range []struct {
		name string
		opts exsample.TrackOptions
	}{
		{"track_query_accel", exsample.TrackOptions{}},
		{"track_query_coarse", exsample.TrackOptions{CoarseOnly: true}},
		{"track_query_dense", exsample.TrackOptions{Stride: 1}},
	} {
		tseed := uint64(4000)
		res, err = measure(arm.name, 2, func() (map[string]float64, error) {
			return trackOp(trackDS, arm.opts, &tseed)
		})
		if err != nil {
			return nil, err
		}
		snap.Suite = append(snap.Suite, res)
	}
	return snap, nil
}
