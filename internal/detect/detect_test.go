package detect

import (
	"context"
	"errors"
	"testing"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

func buildIndex(t *testing.T, instances []track.Instance, numFrames int64) *track.Index {
	t.Helper()
	idx, err := track.NewIndex(instances, numFrames, 0)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func inst(id int, class string, start, end int64) track.Instance {
	return track.Instance{
		ID: id, Class: class, Start: start, End: end,
		StartBox: geom.Rect(100, 100, 50, 80),
		EndBox:   geom.Rect(400, 300, 60, 90),
	}
}

func TestPerfectDetectorFindsAllVisible(t *testing.T) {
	idx := buildIndex(t, []track.Instance{
		inst(0, "car", 0, 99),
		inst(1, "bus", 50, 60),
	}, 1000)
	d, err := Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	dets := d.Detect(55)
	if len(dets) != 2 {
		t.Fatalf("Detect(55) = %d detections", len(dets))
	}
	dets = d.Detect(200)
	if len(dets) != 0 {
		t.Fatalf("Detect(200) = %d detections", len(dets))
	}
}

func TestPerfectDetectorBoxesMatchGroundTruth(t *testing.T) {
	in := inst(0, "car", 0, 10)
	idx := buildIndex(t, []track.Instance{in}, 100)
	d, err := Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	dets := d.Detect(5)
	if len(dets) != 1 {
		t.Fatalf("got %d detections", len(dets))
	}
	want := in.BoxAt(5)
	if geom.IoU(dets[0].Box, want) < 0.999 {
		t.Fatalf("box = %+v, want %+v", dets[0].Box, want)
	}
	if dets[0].TruthID != 0 {
		t.Fatalf("TruthID = %d", dets[0].TruthID)
	}
}

func TestClassRestriction(t *testing.T) {
	idx := buildIndex(t, []track.Instance{
		inst(0, "car", 0, 99),
		inst(1, "bus", 0, 99),
	}, 100)
	d, err := Perfect(idx, WithClass("bus"))
	if err != nil {
		t.Fatal(err)
	}
	dets := d.Detect(10)
	if len(dets) != 1 || dets[0].Class != "bus" {
		t.Fatalf("dets = %+v", dets)
	}
}

func TestDetectIsDeterministicPerFrame(t *testing.T) {
	idx := buildIndex(t, []track.Instance{inst(0, "car", 0, 999)}, 1000)
	d, err := NewSim(idx, 42, WithNoise(NoiseModel{MissProb: 0.5, JitterFrac: 0.1, FalsePositiveRate: 0.5, MinScore: 0.5, MaxScore: 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	for frame := int64(0); frame < 50; frame++ {
		a := d.Detect(frame)
		b := d.Detect(frame)
		if len(a) != len(b) {
			t.Fatalf("frame %d: %d vs %d detections on repeat", frame, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d det %d differs on repeat", frame, i)
			}
		}
	}
}

func TestMissProbabilityRoughlyHonored(t *testing.T) {
	idx := buildIndex(t, []track.Instance{inst(0, "car", 0, 99999)}, 100000)
	d, err := NewSim(idx, 7, WithNoise(NoiseModel{MissProb: 0.3, MinScore: 0.5, MaxScore: 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	missed := 0
	const n = 20000
	// Sample interior frames to avoid the (zero here) edge boost.
	for f := int64(20000); f < 20000+n; f++ {
		if len(d.Detect(f)) == 0 {
			missed++
		}
	}
	frac := float64(missed) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("miss fraction = %v, want ~0.3", frac)
	}
}

func TestEdgeMissBoost(t *testing.T) {
	// 1000-frame instance: the first and last 100 frames carry the boost.
	idx := buildIndex(t, []track.Instance{inst(0, "car", 0, 999)}, 1000)
	d, err := NewSim(idx, 11, WithNoise(NoiseModel{MissProb: 0, EdgeMissBoost: 1.0, MinScore: 0.5, MaxScore: 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Detect(10); len(got) != 0 {
		t.Fatalf("edge frame detected with boost=1: %+v", got)
	}
	if got := d.Detect(500); len(got) != 1 {
		t.Fatalf("interior frame missed with MissProb=0: %+v", got)
	}
	if got := d.Detect(995); len(got) != 0 {
		t.Fatalf("trailing edge frame detected with boost=1: %+v", got)
	}
}

func TestFalsePositives(t *testing.T) {
	idx := buildIndex(t, nil, 10000)
	d, err := NewSim(idx, 13, WithNoise(NoiseModel{FalsePositiveRate: 0.25, MinScore: 0.5, MaxScore: 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	fps := 0
	const n = 10000
	for f := int64(0); f < n; f++ {
		for _, det := range d.Detect(f) {
			if det.TruthID != -1 {
				t.Fatalf("frame %d produced non-FP detection from empty truth", f)
			}
			fps++
		}
	}
	frac := float64(fps) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("FP rate = %v, want ~0.25", frac)
	}
}

func TestFalsePositiveRateAboveOne(t *testing.T) {
	idx := buildIndex(t, nil, 100)
	d, err := NewSim(idx, 5, WithNoise(NoiseModel{FalsePositiveRate: 2.5, MinScore: 0.5, MaxScore: 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 100; f++ {
		n := len(d.Detect(f))
		if n < 2 || n > 3 {
			t.Fatalf("frame %d: %d FPs with rate 2.5", f, n)
		}
	}
}

func TestNoiseValidation(t *testing.T) {
	idx := buildIndex(t, nil, 10)
	bad := []NoiseModel{
		{MissProb: -0.1},
		{MissProb: 1.5},
		{EdgeMissBoost: 2},
		{JitterFrac: 0.9},
		{FalsePositiveRate: -1},
	}
	for i, nm := range bad {
		if _, err := NewSim(idx, 1, WithNoise(nm)); err == nil {
			t.Errorf("noise case %d accepted", i)
		}
	}
	if _, err := NewSim(idx, 1, WithCost(-1)); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestCountingDetector(t *testing.T) {
	idx := buildIndex(t, []track.Instance{inst(0, "car", 0, 99)}, 100)
	inner, err := Perfect(idx, WithCost(0.05))
	if err != nil {
		t.Fatal(err)
	}
	c := &CountingDetector{Inner: inner}
	c.Detect(1)
	c.Detect(2)
	c.Detect(3)
	if c.Frames != 3 {
		t.Fatalf("Frames = %d", c.Frames)
	}
	if c.Seconds < 0.149 || c.Seconds > 0.151 {
		t.Fatalf("Seconds = %v", c.Seconds)
	}
}

func TestFailAfter(t *testing.T) {
	idx := buildIndex(t, []track.Instance{inst(0, "car", 0, 99)}, 100)
	inner, err := Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	f := &FailAfter{Inner: inner, Limit: 2}
	if len(f.Detect(1)) != 1 || len(f.Detect(2)) != 1 {
		t.Fatal("detector failed before limit")
	}
	if f.Failed() {
		t.Fatal("failure flag tripped early")
	}
	if len(f.Detect(3)) != 0 || !f.Failed() {
		t.Fatal("detector did not fail after limit")
	}
}

func TestJitterStaysNearTruth(t *testing.T) {
	in := inst(0, "car", 0, 999)
	idx := buildIndex(t, []track.Instance{in}, 1000)
	d, err := NewSim(idx, 3, WithNoise(NoiseModel{JitterFrac: 0.05, MinScore: 0.5, MaxScore: 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 1000; f += 37 {
		dets := d.Detect(f)
		if len(dets) != 1 {
			t.Fatalf("frame %d: %d detections", f, len(dets))
		}
		if geom.IoU(dets[0].Box, in.BoxAt(f)) < 0.7 {
			t.Fatalf("frame %d: jittered box too far from truth (IoU %v)", f, geom.IoU(dets[0].Box, in.BoxAt(f)))
		}
	}
}

func TestCallsCounter(t *testing.T) {
	idx := buildIndex(t, nil, 10)
	d, err := Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	d.Detect(0)
	d.Detect(1)
	if d.Calls() != 2 {
		t.Fatalf("Calls = %d", d.Calls())
	}
}

func TestBatchAdapterAlignsOutputsAndCosts(t *testing.T) {
	in := inst(0, "car", 0, 999)
	idx := buildIndex(t, []track.Instance{in}, 1000)
	d, err := Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}

	frames := []int64{5, 300, 7}
	outs, err := Batch(d).DetectBatch(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(frames) {
		t.Fatalf("got %d outputs for %d frames", len(outs), len(frames))
	}
	for i, fo := range outs {
		if fo.Cost != d.CostSeconds() {
			t.Fatalf("frame %d charged %v, want %v", frames[i], fo.Cost, d.CostSeconds())
		}
		if len(fo.Dets) != 1 || fo.Dets[0].Frame != frames[i] {
			t.Fatalf("frame %d: wrong detections %+v", frames[i], fo.Dets)
		}
	}
}

func TestBatchAdapterHonorsContext(t *testing.T) {
	idx := buildIndex(t, nil, 10)
	d, err := Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Batch(d).DetectBatch(ctx, []int64{1, 2, 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
