// Package detect provides the simulated object detector.
//
// The paper treats the detector as a black box with a costly runtime
// (§II-A): the only things the search algorithm observes are the boxes the
// detector emits on the frames it is asked about, and the time each call
// takes. This package reproduces that contract over synthetic ground truth:
// detections are derived from the track model with a configurable noise
// model (per-frame misses, localization jitter, false positives) and a fixed
// per-frame inference cost.
//
// Detection noise is deterministic per (frame, instance): asking about the
// same frame twice yields the same detections, just like a real (stateless)
// network. Determinism comes from hashing (seed, frame, instance) rather
// than from a shared RNG stream.
package detect

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

// Detector is the black-box object detector interface used by samplers.
type Detector interface {
	// Detect returns the detections for one frame.
	Detect(frame int64) []track.Detection
	// CostSeconds returns the inference time charged per frame.
	CostSeconds() float64
}

// FrameOutput is one frame's detector output plus the inference cost
// charged for it. Frame-dependent costs (a sharded detector over shards
// with different throughputs) are expressed here, per output, rather than
// through a side-channel on the detector.
type FrameOutput struct {
	Dets []track.Detection
	Cost float64
}

// BatchDetector is the batched, context-aware detector contract the query
// pipeline runs on. One call covers many frames — the shape a real batch
// endpoint (GPU server, remote HTTP fleet) wants — and the call honors ctx:
// a cancellation mid-batch abandons the remaining frames and returns ctx's
// error. Implementations must be safe for concurrent use; batches for
// different shards (or different queries) run concurrently on the engine's
// worker pool.
type BatchDetector interface {
	// DetectBatch runs the detector on every frame of the batch and
	// returns one output per frame, aligned with frames.
	DetectBatch(ctx context.Context, frames []int64) ([]FrameOutput, error)
}

// Batch adapts a per-frame Detector to the BatchDetector contract: frames
// run sequentially with a context check between them, each charged the
// detector's CostSeconds.
func Batch(d Detector) BatchDetector { return &batchAdapter{inner: d} }

type batchAdapter struct {
	inner Detector
}

// DetectBatch implements BatchDetector over the wrapped per-frame detector.
func (a *batchAdapter) DetectBatch(ctx context.Context, frames []int64) ([]FrameOutput, error) {
	cost := a.inner.CostSeconds()
	out := make([]FrameOutput, len(frames))
	for i, frame := range frames {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = FrameOutput{Dets: a.inner.Detect(frame), Cost: cost}
	}
	return out, nil
}

// NoiseModel controls how far the simulated detector deviates from ground
// truth.
type NoiseModel struct {
	// MissProb is the per-frame, per-instance probability that a visible
	// object is not detected.
	MissProb float64
	// EdgeMissBoost adds extra miss probability near the first and last 10%
	// of an instance's visibility interval, where objects are small or
	// partially out of frame — the paper notes a single sampled frame "may
	// not show the light clearly" (§I).
	EdgeMissBoost float64
	// JitterFrac perturbs each box coordinate by a uniform offset of up to
	// this fraction of the box's size.
	JitterFrac float64
	// FalsePositiveRate is the expected number of spurious detections per
	// frame (Bernoulli per frame for rates <= 1).
	FalsePositiveRate float64
	// MinScore and MaxScore bound the confidence scores assigned to true
	// detections; false positives score uniformly below MinScore + 0.2.
	MinScore, MaxScore float64
}

// DefaultNoise returns a moderately noisy detector: 5% misses, 15% extra
// near track edges, 2% box jitter, and 1 false positive per 50 frames.
func DefaultNoise() NoiseModel {
	return NoiseModel{
		MissProb:          0.05,
		EdgeMissBoost:     0.15,
		JitterFrac:        0.02,
		FalsePositiveRate: 0.02,
		MinScore:          0.5,
		MaxScore:          0.99,
	}
}

// Validate reports an error if the noise parameters are out of range.
func (nm NoiseModel) Validate() error {
	if nm.MissProb < 0 || nm.MissProb > 1 {
		return fmt.Errorf("detect: MissProb %v outside [0,1]", nm.MissProb)
	}
	if nm.EdgeMissBoost < 0 || nm.EdgeMissBoost > 1 {
		return fmt.Errorf("detect: EdgeMissBoost %v outside [0,1]", nm.EdgeMissBoost)
	}
	if nm.JitterFrac < 0 || nm.JitterFrac > 0.5 {
		return fmt.Errorf("detect: JitterFrac %v outside [0,0.5]", nm.JitterFrac)
	}
	if nm.FalsePositiveRate < 0 {
		return fmt.Errorf("detect: negative FalsePositiveRate %v", nm.FalsePositiveRate)
	}
	return nil
}

// Sim is a simulated detector backed by a ground-truth track index. Detect
// is safe for concurrent use (outputs are hash-derived per frame; the call
// counter is atomic), matching a stateless DNN served to multiple workers.
type Sim struct {
	idx    *track.Index
	class  string // "" means all classes
	noise  NoiseModel
	cost   float64
	seed   uint64
	calls  atomic.Int64
	frameW float64
	frameH float64
}

// Option configures a Sim detector.
type Option func(*Sim)

// WithClass restricts the detector to one object class, mirroring a
// query-specific detector head.
func WithClass(class string) Option { return func(s *Sim) { s.class = class } }

// WithNoise sets the noise model (default DefaultNoise).
func WithNoise(nm NoiseModel) Option { return func(s *Sim) { s.noise = nm } }

// WithCost sets the per-frame inference cost in seconds (default 1/20 s,
// the paper's measured detector throughput of 20 fps, §V-B).
func WithCost(seconds float64) Option { return func(s *Sim) { s.cost = seconds } }

// WithFrameSize sets the frame dimensions used for false-positive placement.
func WithFrameSize(w, h float64) Option { return func(s *Sim) { s.frameW, s.frameH = w, h } }

// NewSim builds a simulated detector over the given ground truth.
func NewSim(idx *track.Index, seed uint64, opts ...Option) (*Sim, error) {
	s := &Sim{
		idx:    idx,
		noise:  DefaultNoise(),
		cost:   1.0 / 20.0,
		seed:   seed,
		frameW: 1920,
		frameH: 1080,
	}
	for _, o := range opts {
		o(s)
	}
	if err := s.noise.Validate(); err != nil {
		return nil, err
	}
	if s.cost < 0 {
		return nil, fmt.Errorf("detect: negative cost %v", s.cost)
	}
	return s, nil
}

// Perfect returns a noise-free detector, the stand-in for the paper's
// reference detector used to build ground truth.
func Perfect(idx *track.Index, opts ...Option) (*Sim, error) {
	base := []Option{WithNoise(NoiseModel{MinScore: 1, MaxScore: 1})}
	return NewSim(idx, 0, append(base, opts...)...)
}

// CostSeconds returns the per-frame inference cost.
func (s *Sim) CostSeconds() float64 { return s.cost }

// Calls returns how many frames have been processed so far.
func (s *Sim) Calls() int64 { return s.calls.Load() }

// Detect returns the detections for one frame. Output is deterministic per
// frame for a given detector.
func (s *Sim) Detect(frame int64) []track.Detection {
	s.calls.Add(1)
	var visible []track.Instance
	if s.class == "" {
		visible = s.idx.At(frame, nil)
	} else {
		visible = s.idx.AtClass(frame, s.class, nil)
	}
	var dets []track.Detection
	for _, in := range visible {
		u := hash01(s.seed, uint64(frame), uint64(in.ID), 0)
		if u < s.missProb(in, frame) {
			continue // missed
		}
		box := in.BoxAt(frame)
		if s.noise.JitterFrac > 0 {
			jx := (hash01(s.seed, uint64(frame), uint64(in.ID), 1) - 0.5) * 2 * s.noise.JitterFrac * box.Width()
			jy := (hash01(s.seed, uint64(frame), uint64(in.ID), 2) - 0.5) * 2 * s.noise.JitterFrac * box.Height()
			box = box.Translate(jx, jy)
		}
		score := s.noise.MinScore + (s.noise.MaxScore-s.noise.MinScore)*hash01(s.seed, uint64(frame), uint64(in.ID), 3)
		dets = append(dets, track.Detection{
			Frame:   frame,
			Class:   in.Class,
			Box:     box,
			Score:   score,
			TruthID: in.ID,
		})
	}
	// False positives: deterministic per frame.
	if s.noise.FalsePositiveRate > 0 {
		fpCount := s.fpCount(frame)
		for k := 0; k < fpCount; k++ {
			x := hash01(s.seed, uint64(frame), 0xfacade, uint64(4+3*k)) * s.frameW * 0.9
			y := hash01(s.seed, uint64(frame), 0xfacade, uint64(5+3*k)) * s.frameH * 0.9
			size := 20 + hash01(s.seed, uint64(frame), 0xfacade, uint64(6+3*k))*60
			class := s.class
			if class == "" {
				class = "unknown"
			}
			dets = append(dets, track.Detection{
				Frame:   frame,
				Class:   class,
				Box:     geom.Rect(x, y, size, size),
				Score:   0.3 + 0.3*hash01(s.seed, uint64(frame), 0xfefe, uint64(k)),
				TruthID: -1,
			})
		}
	}
	return dets
}

// fpCount returns the number of false positives in a frame (Bernoulli for
// rate <= 1, otherwise floor(rate) plus a Bernoulli remainder).
func (s *Sim) fpCount(frame int64) int {
	rate := s.noise.FalsePositiveRate
	n := int(rate)
	frac := rate - float64(n)
	if frac > 0 && hash01(s.seed, uint64(frame), 0xf00d, 0) < frac {
		n++
	}
	return n
}

// missProb returns the per-frame miss probability for an instance,
// including the edge boost near track endpoints.
func (s *Sim) missProb(in track.Instance, frame int64) float64 {
	p := s.noise.MissProb
	dur := in.Duration()
	if dur > 1 && s.noise.EdgeMissBoost > 0 {
		edge := int64(math.Ceil(float64(dur) * 0.1))
		if frame < in.Start+edge || frame > in.End-edge {
			p += s.noise.EdgeMissBoost
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// hash01 maps (seed, a, b, c) to a uniform value in [0, 1) using a
// splitmix64-style mix. It is the source of all detector nondeterminism,
// keeping outputs repeatable per frame.
func hash01(seed, a, b, c uint64) float64 {
	x := seed ^ (a * 0x9e3779b97f4a7c15) ^ (b * 0xbf58476d1ce4e5b9) ^ (c * 0x94d049bb133111eb)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// CountingDetector wraps a Detector and counts calls plus accumulated cost;
// used by the evaluation harness to charge query time.
type CountingDetector struct {
	Inner   Detector
	Frames  int64
	Seconds float64
}

// Detect forwards to the inner detector, accounting for cost.
func (c *CountingDetector) Detect(frame int64) []track.Detection {
	c.Frames++
	c.Seconds += c.Inner.CostSeconds()
	return c.Inner.Detect(frame)
}

// CostSeconds returns the inner detector's per-frame cost.
func (c *CountingDetector) CostSeconds() float64 { return c.Inner.CostSeconds() }

// FailAfter wraps a detector and returns an error sentinel (empty
// detections plus a tripped Failed flag) after a given number of calls. It
// is used by failure-injection tests to verify samplers keep functioning
// when the detector degrades. Safe for concurrent use.
type FailAfter struct {
	Inner  Detector
	Limit  int64
	calls  atomic.Int64
	failed atomic.Bool
}

// Failed reports whether the failure mode has engaged.
func (f *FailAfter) Failed() bool { return f.failed.Load() }

// Detect forwards until Limit calls have happened, then returns nothing.
func (f *FailAfter) Detect(frame int64) []track.Detection {
	if f.calls.Add(1) > f.Limit {
		f.failed.Store(true)
		return nil
	}
	return f.Inner.Detect(frame)
}

// CostSeconds returns the inner detector's per-frame cost.
func (f *FailAfter) CostSeconds() float64 { return f.Inner.CostSeconds() }

// FailAfterBatch is FailAfter for the batched contract: frames past the
// Limit-th processed frame return no detections (their cost is still
// charged — a degraded detector keeps burning inference time). It is how
// failure injection composes with custom backends. Safe for concurrent
// use.
type FailAfterBatch struct {
	Inner BatchDetector
	Limit int64
	calls atomic.Int64
}

// DetectBatch forwards to the inner detector, then blanks the detections
// of every frame beyond the limit.
func (f *FailAfterBatch) DetectBatch(ctx context.Context, frames []int64) ([]FrameOutput, error) {
	outs, err := f.Inner.DetectBatch(ctx, frames)
	if err != nil {
		return nil, err
	}
	for i := range outs {
		if f.calls.Add(1) > f.Limit {
			outs[i].Dets = nil
		}
	}
	return outs, nil
}
