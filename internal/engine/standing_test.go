package engine

import (
	"sync/atomic"
	"testing"
	"time"
)

// standingFake is a Standing query fed frames from outside: Propose drains
// whatever pending frames have been granted (through reused buffers, per
// the contract) and returns empty once dry, which is the park trigger.
type standingFake struct {
	pending   atomic.Int64
	next      int64
	buf       []int64
	dets      []any
	applied   atomic.Int64
	finalized atomic.Int32
	standing  bool
}

func (s *standingFake) StandingQuery() bool { return s.standing }
func (s *standingFake) Done() bool          { return false }

func (s *standingFake) Propose(max int) []int64 {
	n := int(s.pending.Load())
	if n > max {
		n = max
	}
	s.buf = s.buf[:0]
	for i := 0; i < n; i++ {
		s.buf = append(s.buf, s.next)
		s.next++
	}
	s.pending.Add(int64(-n))
	return s.buf
}

func (s *standingFake) DetectBatch(frames []int64) ([]any, error) {
	s.dets = s.dets[:0]
	for range frames {
		s.dets = append(s.dets, nil)
	}
	return s.dets, nil
}

func (s *standingFake) Apply(frame int64, dets any) (bool, error) {
	s.applied.Add(1)
	return false, nil
}

func (s *standingFake) Finalize() { s.finalized.Add(1) }

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStandingQueryParksAndWakes: a standing query over a drained
// repository parks with no terminal reason, resumes when woken with new
// frames, parks again when dry, and finalizes only on Cancel.
func TestStandingQueryParksAndWakes(t *testing.T) {
	e := New(Config{Workers: 2, FramesPerRound: 4})
	defer e.Close()
	q := &standingFake{standing: true, buf: make([]int64, 0, 8), dets: make([]any, 0, 8)}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial park", h.Parked)
	if q.finalized.Load() != 0 {
		t.Fatal("standing query finalized on park")
	}

	// Feed three frames and wake: they must all be applied, then the query
	// parks again.
	q.pending.Add(3)
	h.Wake()
	waitFor(t, "3 applies", func() bool { return q.applied.Load() == 3 })
	waitFor(t, "re-park", h.Parked)

	if parks, wakes := e.ParkCounters(); parks < 2 || wakes < 1 {
		t.Fatalf("ParkCounters = (%d, %d), want at least (2, 1)", parks, wakes)
	}

	// Cancel wakes the parked handle so it finalizes promptly.
	h.Cancel()
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if h.Reason() != ReasonCancelled {
		t.Fatalf("Reason = %v, want cancelled", h.Reason())
	}
	if q.finalized.Load() != 1 {
		t.Fatalf("finalized %d times", q.finalized.Load())
	}
}

// TestBoundedQueryStillExhausts: a query that does not implement Standing
// (or declines it) keeps the terminal exhaustion semantics.
func TestBoundedQueryStillExhausts(t *testing.T) {
	e := New(Config{Workers: 1, FramesPerRound: 2})
	defer e.Close()
	q := &standingFake{standing: false, buf: make([]int64, 0, 4), dets: make([]any, 0, 4)}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Reason() != ReasonExhausted {
		t.Fatalf("Reason = %v, want exhausted", h.Reason())
	}
}

// TestWakeDuringRoundIsNotLost: the lost-wakeup race, deterministically. A
// wake that lands while the handle is still on the schedule (mid-round,
// from the scheduler's perspective) must veto the park that follows the
// same round's empty Propose — otherwise an append between Propose and
// park would leave the query asleep on available data forever.
func TestWakeDuringRoundIsNotLost(t *testing.T) {
	e := newEngine(Config{Workers: 1, FramesPerRound: 2})
	defer func() {
		close(e.loopDone)
		e.Close()
	}()
	q := &standingFake{standing: true, buf: make([]int64, 0, 4), dets: make([]any, 0, 4)}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	// Wake while active: remembered, not lost.
	q.pending.Add(1)
	h.Wake()
	e.runOneRound() // proposes the fed frame normally
	if q.applied.Load() != 1 {
		t.Fatalf("applied %d frames, want 1", q.applied.Load())
	}
	h.Wake() // arrives "mid-round": handle is active, flag must persist
	e.runOneRound()
	if h.Parked() {
		t.Fatal("park won over a pending wake")
	}
	// No wake this time: the empty round parks.
	e.runOneRound()
	if !h.Parked() {
		t.Fatal("standing query did not park on a quiet empty round")
	}
}

// TestCloseFinalizesParked: Close must not strand parked handles — they
// re-enter the schedule cancelled and Wait returns.
func TestCloseFinalizesParked(t *testing.T) {
	e := New(Config{Workers: 1, FramesPerRound: 1})
	q := &standingFake{standing: true, buf: make([]int64, 0, 2), dets: make([]any, 0, 2)}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "park", h.Parked)
	e.Close()
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Reason() != ReasonCancelled {
		t.Fatalf("Reason = %v, want cancelled", h.Reason())
	}
	if q.finalized.Load() != 1 {
		t.Fatalf("finalized %d times", q.finalized.Load())
	}
}

// TestParkWakeAllocFree: the standing steady state — wake, propose the
// appended frame, apply, drain, park — allocates nothing once the scratch
// is warm. This is the append/wake hot-path budget: a camera appending a
// segment every few seconds against a fleet of standing queries must not
// turn the scheduler into a garbage factory.
func TestParkWakeAllocFree(t *testing.T) {
	e := newEngine(Config{Workers: 1, FramesPerRound: 4})
	defer func() {
		close(e.loopDone)
		e.Close()
	}()
	q := &standingFake{standing: true, buf: make([]int64, 0, 8), dets: make([]any, 0, 8)}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	e.runOneRound() // initial empty propose: enter the parked steady state
	cycle := func() {
		q.pending.Add(1)
		h.Wake()
		e.runOneRound() // proposes and applies the appended frame
		e.runOneRound() // drained again: parks
	}
	for i := 0; i < 10; i++ {
		cycle() // warm the scratch pools and the park/active slices
	}
	if !h.Parked() {
		t.Fatal("warmup did not end parked")
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("park/wake cycle allocates %.1f objects, want 0", allocs)
	}
}
