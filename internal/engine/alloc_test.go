package engine

import (
	"testing"
)

// allocQuery is a minimal steady-state query: it proposes the same frames
// forever from a reused buffer and returns detector results from a reused
// buffer, per the Query contract — so any allocation measured around a
// round belongs to the scheduler itself.
// One query's groups run concurrently, so the result buffer must not be
// shared between in-flight DetectBatch calls (per the Query contract);
// the stub keeps one buffer per affinity key.
type allocQuery struct {
	frames []int64
	dets   [8][]any
	key    func(int64) uint64
	sizer  *stubSizer
}

type stubSizer struct {
	quota    int
	observed int
}

func (q *allocQuery) Done() bool { return false }
func (q *allocQuery) Propose(max int) []int64 {
	n := max
	if n > cap(q.frames) {
		n = cap(q.frames)
	}
	q.frames = q.frames[:n]
	for i := range q.frames {
		q.frames[i] = int64(i)
	}
	return q.frames
}
func (q *allocQuery) DetectBatch(frames []int64) ([]any, error) {
	dets := q.dets[q.AffinityKey(frames[0])%8][:0]
	for range frames {
		dets = append(dets, nil)
	}
	q.dets[q.AffinityKey(frames[0])%8] = dets
	return dets, nil
}
func (q *allocQuery) Apply(frame int64, dets any) (bool, error) { return false, nil }
func (q *allocQuery) Finalize()                                 {}
func (q *allocQuery) AffinityKey(frame int64) uint64 {
	if q.key == nil {
		return 0
	}
	return q.key(frame)
}

// sizedAllocQuery layers the Sized contract on top so the adaptive path's
// allocation budget is guarded too.
type sizedAllocQuery struct{ allocQuery }

func (q *sizedAllocQuery) RoundQuota(base int) int { return q.sizer.quota }
func (q *sizedAllocQuery) ObserveBatch(key uint64, frames int, seconds float64) {
	q.sizer.observed++
}

// roundAllocs measures the steady-state allocation cost of one scheduler
// round over the given queries, after a warmup that sizes every reusable
// scratch buffer.
func roundAllocs(t *testing.T, queries []Query) float64 {
	t.Helper()
	return roundAllocsCfg(t, Config{Workers: 2, FramesPerRound: 4}, queries)
}

// roundAllocsCfg is roundAllocs with an explicit engine configuration, so
// the global-budget round path shares the same guard harness.
func roundAllocsCfg(t *testing.T, cfg Config, queries []Query) float64 {
	t.Helper()
	e := newEngine(cfg)
	defer func() {
		// The loop goroutine never started; release the pool directly.
		close(e.loopDone)
		e.Close()
	}()
	for _, q := range queries {
		if _, err := e.Submit(q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		e.runOneRound() // warm the scratch pools
	}
	return testing.AllocsPerRun(100, func() { e.runOneRound() })
}

// TestSchedulerRoundAllocFree: the static steady-state round — snapshot,
// propose, group, dispatch, apply — allocates nothing once the scratch is
// warm. This is the allocation budget the perf trajectory relies on; a
// regression here fails CI.
func TestSchedulerRoundAllocFree(t *testing.T) {
	queries := []Query{
		&allocQuery{frames: make([]int64, 0, 8)},
		&allocQuery{frames: make([]int64, 0, 8)},
	}
	if allocs := roundAllocs(t, queries); allocs > 0 {
		t.Fatalf("static scheduler round allocates %.1f objects/round, want 0", allocs)
	}
}

// TestSchedulerRoundAllocFreeGrouped: multi-key rounds exercise the group
// carving and the stable sort; both must stay allocation-free.
func TestSchedulerRoundAllocFreeGrouped(t *testing.T) {
	queries := []Query{
		&allocQuery{frames: make([]int64, 0, 8),
			key: func(f int64) uint64 { return uint64(f) % 3 }},
		&allocQuery{frames: make([]int64, 0, 8),
			key: func(f int64) uint64 { return uint64(f)%3 + 1 }},
	}
	if allocs := roundAllocs(t, queries); allocs > 0 {
		t.Fatalf("grouped scheduler round allocates %.1f objects/round, want 0", allocs)
	}
}

// TestSchedulerRoundAllocBudgetAdaptive: the adaptive path adds quota and
// latency bookkeeping (two clock reads per group) but no steady-state
// allocations.
func TestSchedulerRoundAllocBudgetAdaptive(t *testing.T) {
	sz := &stubSizer{quota: 6}
	q := &sizedAllocQuery{allocQuery{frames: make([]int64, 0, 8), sizer: sz}}
	if allocs := roundAllocs(t, []Query{q}); allocs > 0 {
		t.Fatalf("adaptive scheduler round allocates %.1f objects/round, want 0", allocs)
	}
	if sz.observed == 0 {
		t.Fatal("ObserveBatch never called for a Sized query")
	}
}

// TestSizedQuotaDrivesPropose: a Sized query's RoundQuota replaces the
// static FramesPerRound, and the scheduler clamps nonsense to 1.
func TestSizedQuotaDrivesPropose(t *testing.T) {
	e := newEngine(Config{Workers: 1, FramesPerRound: 4})
	defer func() {
		close(e.loopDone)
		e.Close()
	}()
	sz := &stubSizer{quota: 7}
	q := &sizedAllocQuery{allocQuery{frames: make([]int64, 0, 32), sizer: sz}}
	if _, err := e.Submit(q); err != nil {
		t.Fatal(err)
	}
	e.runOneRound()
	if got := len(q.frames); got != 7 {
		t.Fatalf("round used quota %d, want the Sized query's 7", got)
	}
	sz.quota = -5
	e.runOneRound()
	if got := len(q.frames); got != 1 {
		t.Fatalf("round used quota %d for a non-positive RoundQuota, want clamp to 1", got)
	}
	if sz.observed != 2 {
		t.Fatalf("ObserveBatch called %d times, want 2", sz.observed)
	}
}

// valuedAllocQuery layers the Valued contract on top of the steady-state
// stub so the global-budget planner's value polling is part of the guard.
type valuedAllocQuery struct {
	allocQuery
	value float64
}

func (q *valuedAllocQuery) MarginalValue() float64 { return q.value }

// TestSchedulerRoundAllocFreeGlobalBudget: the global allocator — cap and
// value polling, water-filling plan, grant accounting — rides the same
// reusable scratch and must keep the round at 0 allocs/op, including with a
// Sized query in the fleet and uneven values driving real reallocation
// between queries.
func TestSchedulerRoundAllocFreeGlobalBudget(t *testing.T) {
	sz := &stubSizer{quota: 6}
	queries := []Query{
		&valuedAllocQuery{allocQuery: allocQuery{frames: make([]int64, 0, 16)}, value: 0.4},
		&valuedAllocQuery{allocQuery: allocQuery{frames: make([]int64, 0, 16)}, value: 0.01},
		&allocQuery{frames: make([]int64, 0, 16)},
		&sizedAllocQuery{allocQuery{frames: make([]int64, 0, 16), sizer: sz}},
	}
	cfg := Config{Workers: 2, FramesPerRound: 4, GlobalBudget: 10, FloorQuota: 1}
	if allocs := roundAllocsCfg(t, cfg, queries); allocs > 0 {
		t.Fatalf("global-budget scheduler round allocates %.1f objects/round, want 0", allocs)
	}
	if sz.observed == 0 {
		t.Fatal("ObserveBatch never called for a Sized query under the global budget")
	}
}
