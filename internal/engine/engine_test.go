package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeQuery proposes sequential frames up to total and counts applies. It
// records enough to assert scheduling order and fairness.
type fakeQuery struct {
	total     int64
	next      int64
	applied   int64
	doneAfter int64 // Apply returns done once applied reaches this (0 = never)
	finalized atomic.Int32

	detect      func(frame int64) any // optional per-frame override
	detectErr   func(frames []int64) error
	batchCalls  atomic.Int64
	batchFrames atomic.Int64
	applyOrder  []int64
	mu          sync.Mutex
}

func (f *fakeQuery) Done() bool { return false }

func (f *fakeQuery) Propose(max int) []int64 {
	var frames []int64
	for len(frames) < max && f.next < f.total {
		frames = append(frames, f.next)
		f.next++
	}
	return frames
}

func (f *fakeQuery) DetectBatch(frames []int64) ([]any, error) {
	f.batchCalls.Add(1)
	f.batchFrames.Add(int64(len(frames)))
	if f.detectErr != nil {
		if err := f.detectErr(frames); err != nil {
			return nil, err
		}
	}
	out := make([]any, len(frames))
	for i, frame := range frames {
		if f.detect != nil {
			out[i] = f.detect(frame)
		} else {
			out[i] = frame * 2
		}
	}
	return out, nil
}

func (f *fakeQuery) Apply(frame int64, dets any) (bool, error) {
	if got := dets.(int64); got != frame*2 {
		return false, errors.New("detector result routed to wrong frame")
	}
	f.mu.Lock()
	f.applyOrder = append(f.applyOrder, frame)
	f.mu.Unlock()
	f.applied++
	return f.doneAfter > 0 && f.applied >= f.doneAfter, nil
}

func (f *fakeQuery) Finalize() { f.finalized.Add(1) }

func TestPoolRunsAllTasksWithinBound(t *testing.T) {
	const workers = 4
	pool := NewPool(workers)
	defer pool.Close()

	var running, peak, ran atomic.Int64
	tasks := make([]func(), 64)
	for i := range tasks {
		tasks[i] = func() {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			ran.Add(1)
		}
	}
	pool.Do(tasks)
	if ran.Load() != 64 {
		t.Fatalf("ran %d of 64 tasks", ran.Load())
	}
	if peak.Load() > workers {
		t.Fatalf("observed %d concurrent tasks with %d workers", peak.Load(), workers)
	}
	if peak.Load() < 2 {
		t.Fatalf("observed no concurrency (peak %d)", peak.Load())
	}
}

func TestPoolEmptyAndClose(t *testing.T) {
	pool := NewPool(0) // clamps to 1
	if pool.Workers() != 1 {
		t.Fatalf("Workers() = %d", pool.Workers())
	}
	pool.Do(nil)
	pool.Close()
	pool.Close() // idempotent
}

func TestEngineRunsQueryToExhaustion(t *testing.T) {
	e := New(Config{Workers: 2, FramesPerRound: 3})
	defer e.Close()

	q := &fakeQuery{total: 10}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Reason() != ReasonExhausted {
		t.Fatalf("reason = %v, want exhausted", h.Reason())
	}
	if q.applied != 10 {
		t.Fatalf("applied %d of 10 frames", q.applied)
	}
	for i, f := range q.applyOrder {
		if f != int64(i) {
			t.Fatalf("apply order violated at %d: got frame %d", i, f)
		}
	}
	if q.finalized.Load() != 1 {
		t.Fatalf("finalized %d times", q.finalized.Load())
	}
}

func TestEngineStopsOnApplyDone(t *testing.T) {
	e := New(Config{Workers: 1, FramesPerRound: 4})
	defer e.Close()

	q := &fakeQuery{total: 100, doneAfter: 6}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Reason() != ReasonDone {
		t.Fatalf("reason = %v, want done", h.Reason())
	}
	// done fired mid-round (frame 6 of an 8-frame horizon): the rest of
	// the round must be discarded unapplied.
	if q.applied != 6 {
		t.Fatalf("applied %d frames, want 6", q.applied)
	}
}

func TestEngineFairShareAcrossQueries(t *testing.T) {
	e := New(Config{Workers: 4, FramesPerRound: 2})
	defer e.Close()

	// A huge query and a small query submitted together: lock-step rounds
	// with equal quotas mean the small query finishes after ceil(20/2)
	// rounds, by which point the huge one has been given exactly the same
	// number of frames — no starvation in either direction.
	big := &fakeQuery{total: 100000, doneAfter: 40}
	small := &fakeQuery{total: 100000, doneAfter: 20}
	hb, err := e.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := e.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := hb.Wait(); err != nil {
		t.Fatal(err)
	}
	if big.applied != 40 || small.applied != 20 {
		t.Fatalf("applied big=%d small=%d, want 40/20", big.applied, small.applied)
	}
	// When the small query crossed 20 applies, the big one must have had
	// 18–22 (same rounds, ±1 round of apply-order skew).
	bigAt := big.applyOrder
	if len(bigAt) < 20 {
		t.Fatalf("big query starved: only %d applies", len(bigAt))
	}
}

func TestEngineCancellation(t *testing.T) {
	block := make(chan struct{})
	e := New(Config{Workers: 1, FramesPerRound: 1})
	defer e.Close()

	q := &fakeQuery{total: 1 << 40}
	q.detect = func(frame int64) any {
		if frame == 5 {
			<-block // hold round 6 open so Cancel lands mid-flight
		}
		return frame * 2
	}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	for {
		q.mu.Lock()
		n := len(q.applyOrder)
		q.mu.Unlock()
		if n >= 5 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	h.Cancel()
	close(block)
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Reason() != ReasonCancelled {
		t.Fatalf("reason = %v, want cancelled", h.Reason())
	}
	if q.finalized.Load() != 1 {
		t.Fatalf("finalized %d times", q.finalized.Load())
	}
}

func TestEngineApplyErrorPropagates(t *testing.T) {
	e := New(Config{Workers: 2, FramesPerRound: 2})
	defer e.Close()

	q := &fakeQuery{total: 10}
	q.detect = func(frame int64) any { return int64(-1) } // poisons Apply
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err == nil {
		t.Fatal("apply error did not propagate")
	}
	if h.Reason() != ReasonError {
		t.Fatalf("reason = %v, want error", h.Reason())
	}
}

func TestEngineDetectBatchErrorPropagates(t *testing.T) {
	e := New(Config{Workers: 2, FramesPerRound: 4})
	defer e.Close()

	boom := errors.New("backend down")
	q := &fakeQuery{total: 100}
	q.detectErr = func(frames []int64) error {
		if frames[0] >= 8 { // fail on the third round's group
			return boom
		}
		return nil
	}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if h.Reason() != ReasonError {
		t.Fatalf("reason = %v, want error", h.Reason())
	}
	// The failed round's results must not have been applied: exactly the
	// two clean rounds' frames.
	if q.applied != 8 {
		t.Fatalf("applied %d frames, want 8 (failed round discarded)", q.applied)
	}
	if q.finalized.Load() != 1 {
		t.Fatalf("finalized %d times", q.finalized.Load())
	}
}

func TestEngineOneBatchPerRoundWithoutAffinity(t *testing.T) {
	// A non-affine query's whole round is one affinity group, so the
	// engine must issue exactly one DetectBatch per round, each carrying
	// the full per-round quota.
	e := New(Config{Workers: 4, FramesPerRound: 5})
	defer e.Close()

	q := &fakeQuery{total: 20}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := q.batchCalls.Load(); got != 4 {
		t.Fatalf("DetectBatch called %d times for 20 frames at 5/round, want 4", got)
	}
	if got := q.batchFrames.Load(); got != 20 {
		t.Fatalf("DetectBatch covered %d frames, want 20", got)
	}
	rounds, detects, batches := e.Counters()
	if rounds < 4 || detects != 20 || batches != 4 {
		t.Fatalf("counters: %d rounds, %d detects, %d batches (want ≥4/20/4)", rounds, detects, batches)
	}
}

func TestEngineSubmitAfterClose(t *testing.T) {
	e := New(Config{})
	e.Close()
	if _, err := e.Submit(&fakeQuery{total: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestEngineCloseCancelsActive(t *testing.T) {
	e := New(Config{Workers: 1, FramesPerRound: 1})
	q := &fakeQuery{total: 1 << 40}
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let a few rounds run
	e.Close()
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Reason() != ReasonCancelled {
		t.Fatalf("reason = %v, want cancelled", h.Reason())
	}
}

func TestEngineManyQueriesAllComplete(t *testing.T) {
	e := New(Config{Workers: 3, FramesPerRound: 2})
	defer e.Close()

	queries := make([]*fakeQuery, 16)
	handles := make([]*Handle, 16)
	for i := range queries {
		queries[i] = &fakeQuery{total: 50, doneAfter: int64(10 + i)}
		h, err := e.Submit(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if queries[i].applied != int64(10+i) {
			t.Fatalf("query %d applied %d, want %d", i, queries[i].applied, 10+i)
		}
	}
}
