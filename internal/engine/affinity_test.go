package engine

import (
	"sync"
	"testing"
)

// affineQuery is a fakeQuery whose frames alternate between two shards
// (frame parity) and which records the global execution order of its
// detect calls through a shared recorder.
type affineQuery struct {
	fakeQuery
	id  uint64
	rec *detectRecorder
}

type detectRecorder struct {
	mu   sync.Mutex
	keys []uint64
}

func (r *detectRecorder) record(key uint64) {
	r.mu.Lock()
	r.keys = append(r.keys, key)
	r.mu.Unlock()
}

func (q *affineQuery) AffinityKey(frame int64) uint64 {
	return q.id<<16 | uint64(frame%2)
}

func newAffineQuery(id uint64, total int64, rec *detectRecorder) *affineQuery {
	q := &affineQuery{id: id, rec: rec}
	q.fakeQuery.total = total
	q.fakeQuery.detect = func(frame int64) any {
		rec.record(q.AffinityKey(frame))
		return frame * 2
	}
	return q
}

func TestRoundGroupsDetectBatchByAffinityKey(t *testing.T) {
	// One worker executes pool tasks in submission order, so the recorded
	// key sequence is exactly the scheduler's grouping. With two affine
	// queries proposing 8 frames each, every round's 16 tasks must be
	// sorted by key (queries interleave shards; grouping un-interleaves).
	e := New(Config{Workers: 1, FramesPerRound: 8})
	defer e.Close()

	rec := &detectRecorder{}
	q1 := newAffineQuery(1, 32, rec)
	q2 := newAffineQuery(2, 32, rec)
	h1, err := e.Submit(q1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(q2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
	if h1.Reason() != ReasonExhausted || h2.Reason() != ReasonExhausted {
		t.Fatalf("reasons %v, %v", h1.Reason(), h2.Reason())
	}

	rec.mu.Lock()
	keys := append([]uint64(nil), rec.keys...)
	rec.mu.Unlock()
	if len(keys) != 64 {
		t.Fatalf("recorded %d detect calls, want 64", len(keys))
	}
	// Rounds where both queries were active carry 16 tasks; within each
	// such round the key sequence must be non-decreasing. (Single-query
	// rounds at the tail are trivially grouped.)
	for start := 0; start+16 <= len(keys); start += 16 {
		round := keys[start : start+16]
		for i := 1; i < len(round); i++ {
			if round[i] < round[i-1] {
				t.Fatalf("round starting at %d not grouped by key: %v", start, round)
			}
		}
	}

	// Grouping must not break per-query apply order: applies arrive in
	// propose order regardless of execution order.
	for qi, q := range []*affineQuery{q1, q2} {
		for i, frame := range q.applyOrder {
			if frame != int64(i) {
				t.Fatalf("query %d applied frame %d at position %d", qi, frame, i)
			}
		}
	}
}

func TestAffinityGroupingPreservesNonAffineOrder(t *testing.T) {
	// A mixed round (one affine, one plain query): the plain query's
	// tasks keep their relative order and everything still runs.
	e := New(Config{Workers: 2, FramesPerRound: 4})
	defer e.Close()

	rec := &detectRecorder{}
	aff := newAffineQuery(7, 20, rec)
	plain := &fakeQuery{total: 20}
	h1, err := e.Submit(aff)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
	if aff.applied != 20 || plain.applied != 20 {
		t.Fatalf("applied %d and %d of 20 frames", aff.applied, plain.applied)
	}
	rounds, detects, batches := e.Counters()
	if rounds == 0 || detects != 40 {
		t.Fatalf("counters: %d rounds, %d detects (want 40)", rounds, detects)
	}
	if batches >= detects {
		t.Fatalf("batches %d not smaller than detects %d: grouping issued per-frame calls", batches, detects)
	}
}

func TestRoundIssuesOneDetectBatchPerAffinityGroup(t *testing.T) {
	// An affine query alternating between two shards at 8 frames/round
	// must see exactly 2 DetectBatch calls per round — one per shard
	// group, each carrying that shard's 4 frames — not 8 per-frame calls.
	e := New(Config{Workers: 2, FramesPerRound: 8})
	defer e.Close()

	rec := &detectRecorder{}
	q := newAffineQuery(3, 32, rec)
	h, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	// 32 frames at 8/round = 4 rounds × 2 shard groups.
	if got := q.batchCalls.Load(); got != 8 {
		t.Fatalf("DetectBatch called %d times, want 8 (2 groups × 4 rounds)", got)
	}
	if got := q.batchFrames.Load(); got != 32 {
		t.Fatalf("DetectBatch covered %d frames, want 32", got)
	}
	_, detects, batches := e.Counters()
	if detects != 32 || batches != 8 {
		t.Fatalf("counters: %d detects, %d batches (want 32/8)", detects, batches)
	}
}
