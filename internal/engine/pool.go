// Package engine provides the concurrency machinery behind the public
// exsample.Engine: a bounded worker pool for black-box detector invocations
// and a fair-share round scheduler that multiplexes many simultaneous
// distinct-object queries onto that pool.
//
// The package is deliberately ignorant of datasets, samplers and reports —
// queries are an interface, detector outputs are opaque. The scheduling
// contract is the one the paper's cost model demands: detector calls are the
// expensive part and may run concurrently (the detector is a stateless
// black box, §II-A); everything that touches per-query state (Thompson
// bookkeeping, the discriminator, report accumulation) runs on the single
// scheduler goroutine, in propose order, so a query behaves exactly as if it
// were running alone.
package engine

import "sync"

// Pool is a bounded pool of persistent workers executing opaque tasks. It
// generalizes the per-batch semaphore that parallel batched Search used: one
// pool is shared by every query of an Engine (or by every batch of a single
// Search), bounding total detector concurrency no matter how many queries
// are in flight.
type Pool struct {
	tasks   chan task
	workers int
	wg      sync.WaitGroup
	once    sync.Once
}

// task pairs a unit of work with the batch-completion group it reports to.
// It travels through the task channel by value, so dispatching a batch
// allocates nothing beyond whatever the caller's wait group costs.
type task struct {
	fn   func()
	done *sync.WaitGroup
}

// NewPool starts a pool with the given number of workers (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		tasks:   make(chan task),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.fn()
				t.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Do runs every task on the pool and returns when all have completed. At
// most Workers tasks run at any moment; excess tasks queue. Do may be called
// from multiple goroutines, but the usual caller is a single scheduler loop
// issuing one batch per scheduling round.
func (p *Pool) Do(tasks []func()) {
	var wg sync.WaitGroup
	p.DoWith(&wg, tasks)
}

// DoWith is Do with a caller-supplied wait group, letting a steady-state
// caller (the engine's round scheduler) reuse one group across batches
// instead of heap-allocating a fresh one per round. The group must be
// otherwise unused; DoWith adds, dispatches and waits.
func (p *Pool) DoWith(wg *sync.WaitGroup, tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	wg.Add(len(tasks))
	for _, fn := range tasks {
		p.tasks <- task{fn: fn, done: wg}
	}
	wg.Wait()
}

// Close shuts the workers down. It must not be called concurrently with Do;
// it is idempotent.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.tasks) })
	p.wg.Wait()
}
