package engine

import (
	"math"
	"testing"
)

// budgetQuery records the quota each round offers it, so the allocation
// plan is observable through the Propose contract.
type budgetQuery struct {
	allocQuery
	value   float64
	offered []int
}

func (q *budgetQuery) Propose(max int) []int64 {
	q.offered = append(q.offered, max)
	return q.allocQuery.Propose(max)
}

type valuedBudgetQuery struct{ budgetQuery }

func (q *valuedBudgetQuery) MarginalValue() float64 { return q.value }

func newBudgetEngine(t *testing.T, cfg Config, queries []Query) *Engine {
	t.Helper()
	e := newEngine(cfg)
	t.Cleanup(func() {
		close(e.loopDone)
		e.Close()
	})
	for _, q := range queries {
		if _, err := e.Submit(q); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestBudgetProportionalToValue: a hot query's grant dwarfs a cold one's,
// the floor still reaches the cold query, and the full budget is spent.
func TestBudgetProportionalToValue(t *testing.T) {
	hot := &valuedBudgetQuery{budgetQuery{value: 0.3}}
	hot.frames = make([]int64, 0, 64)
	cold := &valuedBudgetQuery{budgetQuery{value: 0.003}}
	cold.frames = make([]int64, 0, 64)
	cfg := Config{Workers: 1, FramesPerRound: 32, GlobalBudget: 16, FloorQuota: 1}
	e := newBudgetEngine(t, cfg, []Query{hot, cold})
	e.runOneRound()
	if len(hot.offered) != 1 || len(cold.offered) != 1 {
		t.Fatalf("offered lengths %d/%d, want 1/1", len(hot.offered), len(cold.offered))
	}
	if got := hot.offered[0] + cold.offered[0]; got != 16 {
		t.Fatalf("round granted %d frames total, want the full budget 16", got)
	}
	if cold.offered[0] < 1 {
		t.Fatalf("cold query offered %d frames, want at least the floor 1", cold.offered[0])
	}
	if hot.offered[0] < 13 {
		t.Fatalf("hot query offered %d of 16 frames; proportional fill should give it the bulk", hot.offered[0])
	}
	granted, requested := e.BudgetCounters()
	if granted != 16 || requested != 64 {
		t.Fatalf("BudgetCounters = (%d, %d), want (16, 64)", granted, requested)
	}
}

// TestBudgetEqualValuesSplitEvenly: identical values degenerate to
// fair-share — the equivalence the regression suite at the repo root pins
// byte-for-byte on real queries.
func TestBudgetEqualValuesSplitEvenly(t *testing.T) {
	var qs []Query
	var recs []*valuedBudgetQuery
	for i := 0; i < 4; i++ {
		q := &valuedBudgetQuery{budgetQuery{value: 0.2}}
		q.frames = make([]int64, 0, 64)
		qs = append(qs, q)
		recs = append(recs, q)
	}
	cfg := Config{Workers: 1, FramesPerRound: 8, GlobalBudget: 32}
	e := newBudgetEngine(t, cfg, qs)
	e.runOneRound()
	for i, q := range recs {
		if q.offered[0] != 8 {
			t.Fatalf("query %d offered %d frames, want 8 (even split of 32)", i, q.offered[0])
		}
	}
}

// TestBudgetRespectsSizedCaps: a Sized query's RoundQuota bounds its grant
// even when its value would claim more, and the surplus flows to the next
// query instead of evaporating.
func TestBudgetRespectsSizedCaps(t *testing.T) {
	sz := &stubSizer{quota: 3}
	capped := &sizedAllocQuery{allocQuery{frames: make([]int64, 0, 64), sizer: sz}}
	other := &valuedBudgetQuery{budgetQuery{value: 0.05}}
	other.frames = make([]int64, 0, 64)
	cfg := Config{Workers: 1, FramesPerRound: 16, GlobalBudget: 12}
	e := newBudgetEngine(t, cfg, []Query{capped, other})
	e.runOneRound()
	if got := len(capped.frames); got != 3 {
		t.Fatalf("Sized query ran %d frames, want its RoundQuota cap 3", got)
	}
	if got := other.offered[0]; got != 9 {
		t.Fatalf("other query offered %d frames, want the remaining 9", got)
	}
}

// TestBudgetFloorReachesZeroValueQuery: the starvation guarantee — a query
// whose beliefs have fully decayed still receives the floor every round, so
// it drains its repository and terminates instead of hanging.
func TestBudgetFloorReachesZeroValueQuery(t *testing.T) {
	dead := &valuedBudgetQuery{budgetQuery{value: 0}}
	dead.frames = make([]int64, 0, 64)
	hot := &valuedBudgetQuery{budgetQuery{value: 0.4}}
	hot.frames = make([]int64, 0, 64)
	cfg := Config{Workers: 1, FramesPerRound: 8, GlobalBudget: 10, FloorQuota: 2}
	e := newBudgetEngine(t, cfg, []Query{dead, hot})
	for i := 0; i < 5; i++ {
		e.runOneRound()
	}
	for i, got := range dead.offered {
		if got != 2 {
			t.Fatalf("round %d offered the zero-value query %d frames, want exactly the floor 2", i, got)
		}
	}
	for i, got := range hot.offered {
		if got != 8 {
			t.Fatalf("round %d offered the hot query %d frames, want its full cap 8", i, got)
		}
	}
}

// TestBudgetNaNAndNegativeValues: garbage values are treated as zero, not
// propagated into the plan.
func TestBudgetNaNAndNegativeValues(t *testing.T) {
	nan := &valuedBudgetQuery{budgetQuery{value: math.NaN()}}
	nan.frames = make([]int64, 0, 64)
	neg := &valuedBudgetQuery{budgetQuery{value: -3}}
	neg.frames = make([]int64, 0, 64)
	ok := &valuedBudgetQuery{budgetQuery{value: 0.1}}
	ok.frames = make([]int64, 0, 64)
	cfg := Config{Workers: 1, FramesPerRound: 8, GlobalBudget: 10}
	e := newBudgetEngine(t, cfg, []Query{nan, neg, ok})
	e.runOneRound()
	if nan.offered[0] != 1 || neg.offered[0] != 1 {
		t.Fatalf("NaN/negative-value queries offered %d/%d frames, want the floor 1", nan.offered[0], neg.offered[0])
	}
	if ok.offered[0] != 8 {
		t.Fatalf("valid query offered %d frames, want its cap 8", ok.offered[0])
	}
}

// TestBudgetAllZeroValuesSpreadEvenly: when every query reports zero value
// the leftover budget spreads evenly instead of collapsing onto one handle.
func TestBudgetAllZeroValuesSpreadEvenly(t *testing.T) {
	var qs []Query
	var recs []*valuedBudgetQuery
	for i := 0; i < 3; i++ {
		q := &valuedBudgetQuery{budgetQuery{value: 0}}
		q.frames = make([]int64, 0, 64)
		qs = append(qs, q)
		recs = append(recs, q)
	}
	cfg := Config{Workers: 1, FramesPerRound: 8, GlobalBudget: 9}
	e := newBudgetEngine(t, cfg, qs)
	e.runOneRound()
	for i, q := range recs {
		if q.offered[0] != 3 {
			t.Fatalf("query %d offered %d frames, want 3 (even spread of 9)", i, q.offered[0])
		}
	}
}

// TestBudgetPerHandleCounters: the handle-level granted/requested split
// matches the plan and stays zero under fair-share.
func TestBudgetPerHandleCounters(t *testing.T) {
	hot := &valuedBudgetQuery{budgetQuery{value: 0.5}}
	hot.frames = make([]int64, 0, 64)
	cold := &valuedBudgetQuery{budgetQuery{value: 0}}
	cold.frames = make([]int64, 0, 64)
	cfg := Config{Workers: 1, FramesPerRound: 4, GlobalBudget: 5}
	e := newEngine(cfg)
	t.Cleanup(func() {
		close(e.loopDone)
		e.Close()
	})
	hh, err := e.Submit(hot)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Submit(cold)
	if err != nil {
		t.Fatal(err)
	}
	e.runOneRound()
	if g, r := hh.BudgetCounters(); g != 4 || r != 4 {
		t.Fatalf("hot handle counters = (%d, %d), want (4, 4)", g, r)
	}
	if g, r := ch.BudgetCounters(); g != 1 || r != 4 {
		t.Fatalf("cold handle counters = (%d, %d), want (1, 4)", g, r)
	}

	fair := newEngine(Config{Workers: 1, FramesPerRound: 4})
	t.Cleanup(func() {
		close(fair.loopDone)
		fair.Close()
	})
	q := &valuedBudgetQuery{budgetQuery{value: 0.5}}
	q.frames = make([]int64, 0, 64)
	fh, err := fair.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	fair.runOneRound()
	if g, r := fh.BudgetCounters(); g != 0 || r != 0 {
		t.Fatalf("fair-share handle counters = (%d, %d), want (0, 0)", g, r)
	}
}
