package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Query is one schedulable unit of work: a distinct-object query whose
// expensive detector calls the engine wants to batch with everybody else's.
// All methods except DetectBatch are called only from the engine's
// scheduler goroutine; DetectBatch runs on pool workers and must be safe
// for concurrent use (the paper's stateless black-box detector contract).
type Query interface {
	// Done reports whether the query wants to stop (budget reached,
	// context cancelled). The engine checks it at every round boundary.
	Done() bool
	// Propose returns up to max frames to run the detector on this round,
	// drawn by the query's own sampling strategy. Returning an empty slice
	// means the repository is exhausted and the query is finalized.
	// Because Propose runs at every round boundary on the scheduler
	// goroutine, it is also where elastic sources sync their topology
	// snapshot: a shard attached or drained between rounds is reflected in
	// the very next round's picks (new affinity groups appear, a drained
	// shard's group retires), while the round in flight when the change
	// lands still applies normally.
	//
	// The engine reads the returned slice only until the next Propose
	// call, so implementations may reuse one backing buffer across rounds
	// — the allocation-free steady state the scheduler itself maintains.
	Propose(max int) []int64
	// DetectBatch runs the detector on a group of this round's proposed
	// frames — one affinity group per call — and returns one opaque result
	// per frame, aligned with frames. It must be concurrency-safe and
	// deterministic per frame. An error finalizes the query with
	// ReasonError; none of the round's results are applied.
	//
	// The engine copies the results out before the round's applies, so the
	// returned slice (not the results themselves) may be a reused buffer —
	// but because one query's groups run concurrently, a buffer must not
	// be shared between in-flight calls.
	DetectBatch(frames []int64) ([]any, error)
	// Apply consumes one frame's detector output. Calls arrive in propose
	// order on the scheduler goroutine, so the query's discriminator and
	// sampler bookkeeping see exactly the sequence a standalone run would.
	// Returning done stops the query; remaining results from the same
	// round are discarded unapplied (their cost is never charged).
	Apply(frame int64, dets any) (done bool, err error)
	// Finalize is called exactly once when the engine stops scheduling the
	// query, whatever the reason.
	Finalize()
}

// Affine is an optional Query refinement for sharded sources: frames that
// live on the same shard report the same affinity key, and the scheduler
// dispatches each round's frames as one DetectBatch call per (query, key)
// group, with same-key groups adjacent on the pool — the access pattern a
// real per-shard batch endpoint wants. Grouping only reorders work
// *within* a round (every proposed frame still runs that round, and
// results are still applied in propose order), so it cannot starve a shard
// or a query, and it never affects query results.
type Affine interface {
	// AffinityKey returns the grouping key for a frame. Keys are opaque;
	// only equality matters, but implementations should make keys unique
	// across sources so two sources' shard 0 do not interleave.
	AffinityKey(frame int64) uint64
}

// Sized is an optional Query refinement for adaptive round sizing: the
// query supplies its own per-round detector quota in place of the engine's
// static FramesPerRound, and the scheduler feeds back the wall latency of
// every dispatched DetectBatch group so a feedback controller (see
// internal/sizer) can close the loop. Queries that do not implement Sized
// cost the scheduler nothing — no clocks are read on their behalf, which
// is what keeps the default path byte-identical to the static engine.
type Sized interface {
	// RoundQuota returns the query's frame quota for the next round; base
	// is the engine's static FramesPerRound. Called once per round on the
	// scheduler goroutine, before Propose. Values below 1 are clamped to 1.
	RoundQuota(base int) int
	// ObserveBatch reports one successfully dispatched group's size and
	// detector wall latency. Calls arrive on the scheduler goroutine after
	// the round's pool run, in group creation (propose) order; failed
	// groups are not reported.
	ObserveBatch(key uint64, frames int, seconds float64)
}

// Valued is an optional Query refinement for global budget scheduling: the
// query exposes its current marginal value — the expected number of *new*
// results the next detector frame will produce, which ExSample's Thompson
// beliefs already estimate per chunk (Eq. III.1; the scheduler wants the
// arg-max arm's point estimate). The allocator divides the engine's
// GlobalBudget across queries proportionally to these values, so a nearly
// exhausted query naturally decays toward the floor quota while a fresh or
// just-woken standing query re-enters at its prior belief. Queries that do
// not implement Valued weigh in at a neutral constant value of 1.
type Valued interface {
	// MarginalValue returns the query's expected new results per frame.
	// Called once per round on the scheduler goroutine, before Propose;
	// it must be cheap and allocation-free. Negative and NaN values are
	// treated as 0.
	MarginalValue() float64
}

// Standing is an optional Query refinement for queries over live sources:
// an exhausted repository is a pause, not an ending. When a standing
// query's Propose returns no frames, the scheduler parks the handle —
// removes it from the round schedule with no terminal Reason and its full
// pipeline state intact — instead of finalizing it with ReasonExhausted.
// Handle.Wake re-admits it, typically from a source's append notification;
// a wake that races an in-flight round is remembered, so an append can
// never be lost between Propose observing emptiness and the park landing.
// Parked queries cost the scheduler nothing: the loop idles exactly as if
// they did not exist.
type Standing interface {
	// StandingQuery reports whether the query wants park-on-exhaustion
	// semantics. Implementations return a constant; the scheduler checks it
	// only when a Propose comes back empty.
	StandingQuery() bool
}

// Reason records why a query left the engine.
type Reason int

const (
	// ReasonNone means the query is still scheduled.
	ReasonNone Reason = iota
	// ReasonDone means Done() reported true or Apply returned done.
	ReasonDone
	// ReasonExhausted means Propose ran out of frames.
	ReasonExhausted
	// ReasonCancelled means Cancel was called on the handle.
	ReasonCancelled
	// ReasonError means Apply returned an error.
	ReasonError
)

// String returns the reason name.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonDone:
		return "done"
	case ReasonExhausted:
		return "exhausted"
	case ReasonCancelled:
		return "cancelled"
	case ReasonError:
		return "error"
	default:
		return "unknown"
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds concurrent DetectBatch calls across all queries
	// (default 1). Each call carries one (query, affinity-key) group of a
	// round's frames.
	Workers int
	// FramesPerRound is each query's per-round detector quota (default 1).
	// Every active query gets the same quota, which is what makes
	// scheduling fair-share: no query can starve another however greedy
	// its sampler is. Sized queries replace the static quota with their
	// own per-round value.
	FramesPerRound int
	// GlobalBudget, when > 0, replaces fair-share scheduling with one
	// scheduler-level frames-per-round budget divided across the active
	// queries in proportion to their marginal values (Valued queries; the
	// rest weigh in at a constant). Per-query quotas — FramesPerRound, or
	// a Sized query's RoundQuota — become *caps* the allocator fills up
	// to, never past, so AIMD round sizing composes: the sizer bounds how
	// big one query's batch may get, the budget decides who deserves the
	// frames. Every non-cancelled query is granted at least FloorQuota
	// frames (budget permitting it is a floor, not a share: with N active
	// queries the round dispatches at least N*FloorQuota frames), which
	// is what lets a zero-value query still drain to completion instead
	// of starving.
	GlobalBudget int
	// FloorQuota is the per-query minimum grant under GlobalBudget
	// (default 1; values < 1 are clamped to 1, because a zero-frame
	// Propose is indistinguishable from an exhausted repository). Ignored
	// when GlobalBudget is 0.
	FloorQuota int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.FramesPerRound < 1 {
		c.FramesPerRound = 1
	}
	if c.GlobalBudget < 0 {
		c.GlobalBudget = 0
	}
	if c.FloorQuota < 1 {
		c.FloorQuota = 1
	}
	return c
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// job is one query's work within a round: the proposed frames and the
// per-frame results its groups fill in. Jobs are pooled in the engine's
// round scratch and reused across rounds.
type job struct {
	h      *Handle
	sized  Sized // non-nil when the query adapts its own quota
	frames []int64
	dets   []any
	err    error // first detect-group error, in group order
}

// group is one (job, affinity-key) detector dispatch: a maximal same-key
// subset of a job's frames, in propose order. Groups are pooled and each
// carries its pool task closure, bound once at allocation, so the
// steady-state round creates no closures.
type group struct {
	j       *job
	key     uint64
	frames  []int64
	idx     []int // positions in j.frames / j.dets
	err     error
	seconds float64 // DetectBatch wall latency (Sized queries only)
	task    func()
}

// scratch is the engine's reusable per-round working set. It is touched
// only by the scheduler goroutine (pool workers reach individual groups
// through their bound tasks), and it is what makes the steady-state round
// allocation-free: handle snapshot, job and group objects, their frame and
// index slices, the sorted view and the task list are all recycled.
type scratch struct {
	round   []*Handle
	jobs    []*job
	groups  []*group
	njobs   int
	ngroups int
	sorted  []*group
	tasks   []func()
	wg      sync.WaitGroup
	// Global-budget planning state, aligned with round: each handle's
	// grant for this round, its cap (what fair-share would offer), and its
	// marginal value. Reused across rounds like everything else here.
	grants []int
	caps   []int
	vals   []float64
}

// job returns the next pooled job, growing the pool on first use.
func (s *scratch) job() *job {
	if s.njobs < len(s.jobs) {
		j := s.jobs[s.njobs]
		s.njobs++
		j.err = nil
		return j
	}
	j := &job{}
	s.jobs = append(s.jobs, j)
	s.njobs++
	return j
}

// Engine multiplexes queries onto a shared detector worker pool in
// lock-step scheduling rounds: every active query proposes up to its
// round quota of frames, all proposals run on the pool as one batch, and
// results are applied per query in propose order.
type Engine struct {
	cfg  Config
	pool *Pool
	scr  scratch

	mu     sync.Mutex
	cond   *sync.Cond
	active []*Handle
	// parked holds standing queries whose repositories are drained: off the
	// round schedule, never finalized, waiting for a Wake. They do not keep
	// the scheduler awake.
	parked []*Handle
	closed bool

	rounds  atomic.Int64
	detects atomic.Int64
	batches atomic.Int64
	parks   atomic.Int64
	wakes   atomic.Int64
	granted atomic.Int64 // frames granted by the global allocator
	capped  atomic.Int64 // frames the queries' caps requested

	loopDone chan struct{}
}

// New starts an engine and its scheduler goroutine.
func New(cfg Config) *Engine {
	e := newEngine(cfg)
	go e.loop()
	return e
}

// newEngine builds the engine without starting the scheduler goroutine —
// the seam the allocation-regression tests drive rounds through directly.
func newEngine(cfg Config) *Engine {
	e := &Engine{
		cfg:      cfg.withDefaults(),
		loopDone: make(chan struct{}),
	}
	e.pool = NewPool(e.cfg.Workers)
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Workers returns the detector concurrency bound.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Counters returns the number of completed scheduling rounds, detector
// frames dispatched, and DetectBatch group calls issued so far.
func (e *Engine) Counters() (rounds, detects, batches int64) {
	return e.rounds.Load(), e.detects.Load(), e.batches.Load()
}

// ParkCounters returns how many times standing queries were parked on an
// exhausted repository and woken back onto the schedule.
func (e *Engine) ParkCounters() (parks, wakes int64) {
	return e.parks.Load(), e.wakes.Load()
}

// BudgetCounters returns the cumulative frames the global allocator has
// granted across all queries and the frames their per-round caps would have
// taken (what fair-share scheduling would offer). Both stay zero when the
// engine runs fair-share (GlobalBudget 0).
func (e *Engine) BudgetCounters() (granted, requested int64) {
	return e.granted.Load(), e.capped.Load()
}

// Submit registers a query and returns its handle. The query starts
// participating in the next scheduling round.
func (e *Engine) Submit(q Query) (*Handle, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	h := &Handle{e: e, q: q, done: make(chan struct{})}
	e.active = append(e.active, h)
	e.cond.Signal()
	return h, nil
}

// Close cancels all in-flight queries, stops the scheduler and shuts the
// pool down. It blocks until every query has been finalized and is safe to
// call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for _, h := range e.active {
			h.cancelled.Store(true)
		}
		// Parked standing queries re-enter the schedule cancelled, so the
		// final rounds finalize them like any other cancellation — nobody
		// blocked in Wait is left hanging on a handle with no schedule.
		for _, h := range e.parked {
			h.cancelled.Store(true)
			h.parked = false
			e.active = append(e.active, h)
		}
		e.parked = e.parked[:0]
		e.cond.Signal()
	}
	e.mu.Unlock()
	<-e.loopDone
	e.pool.Close()
}

// loop is the scheduler: it runs rounds while queries are active and parks
// when the engine is idle.
func (e *Engine) loop() {
	defer close(e.loopDone)
	for {
		if !e.runOneRound() {
			return
		}
	}
}

// runOneRound snapshots the active queries into the reusable round scratch
// and executes one scheduling round, parking first when the engine is
// idle. It returns false when the engine has shut down.
func (e *Engine) runOneRound() bool {
	e.mu.Lock()
	for len(e.active) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.active) == 0 && e.closed {
		e.mu.Unlock()
		return false
	}
	e.scr.round = append(e.scr.round[:0], e.active...)
	e.mu.Unlock()
	e.runRound(e.scr.round)
	// Release the snapshot's handle references: finalized queries (and
	// their full pipelines) must not stay pinned by the recycled backing
	// array while the engine idles.
	for i := range e.scr.round {
		e.scr.round[i] = nil
	}
	return true
}

// group returns the next pooled group, binding its pool task closure once
// on first allocation.
func (e *Engine) group(j *job, key uint64) *group {
	s := &e.scr
	var g *group
	if s.ngroups < len(s.groups) {
		g = s.groups[s.ngroups]
		g.frames = g.frames[:0]
		g.idx = g.idx[:0]
		g.err = nil
		g.seconds = 0
	} else {
		g = &group{}
		g.task = func() { e.runGroup(g) }
		s.groups = append(s.groups, g)
	}
	s.ngroups++
	g.j, g.key = j, key
	return g
}

// runGroup executes one group's DetectBatch on a pool worker and scatters
// the results into the job's per-frame slots. Wall latency is measured
// only for Sized queries, so the static path never reads a clock.
func (e *Engine) runGroup(g *group) {
	var start time.Time
	if g.j.sized != nil {
		start = time.Now()
	}
	dets, err := g.j.h.q.DetectBatch(g.frames)
	if g.j.sized != nil {
		g.seconds = time.Since(start).Seconds()
	}
	if err == nil && len(dets) != len(g.frames) {
		err = fmt.Errorf("engine: DetectBatch returned %d results for a %d-frame group", len(dets), len(g.frames))
	}
	if err != nil {
		g.err = err
		return
	}
	for k, i := range g.idx {
		g.j.dets[i] = dets[k]
	}
}

// runRound executes one scheduling round over a snapshot of the active
// queries: propose, dispatch one DetectBatch per affinity group on the
// pool, apply in order. All per-round state lives in the engine's reusable
// scratch; the steady state allocates nothing.
func (e *Engine) runRound(round []*Handle) {
	s := &e.scr
	s.njobs, s.ngroups = 0, 0
	base := e.cfg.FramesPerRound
	budgeted := e.cfg.GlobalBudget > 0
	if budgeted {
		// The allocation plan polls each query's cap (RoundQuota) and
		// marginal value exactly once per round, here; the propose loop
		// below then reads the grants instead of re-deriving quotas.
		e.planBudget(round)
	}
	for i, h := range round {
		if h.cancelled.Load() {
			e.finalize(h, ReasonCancelled, nil)
			continue
		}
		if h.q.Done() {
			e.finalize(h, ReasonDone, nil)
			continue
		}
		sized, _ := h.q.(Sized)
		var quota int
		if budgeted {
			quota = s.grants[i]
		} else if sized != nil {
			if quota = sized.RoundQuota(base); quota < 1 {
				quota = 1
			}
		} else {
			quota = base
		}
		frames := h.q.Propose(quota)
		if len(frames) == 0 {
			// A drained repository finalizes a bounded query but only parks
			// a standing one. park may decline — a wake raced in (new data
			// is already there), the handle was cancelled, or the engine is
			// closing — and then the handle simply stays on the schedule:
			// the next round re-proposes or settles it.
			if st, ok := h.q.(Standing); ok && st.StandingQuery() {
				e.park(h)
				continue
			}
			e.finalize(h, ReasonExhausted, nil)
			continue
		}
		j := s.job()
		j.h, j.sized, j.frames = h, sized, frames
		if cap(j.dets) < len(frames) {
			j.dets = make([]any, len(frames))
		} else {
			j.dets = j.dets[:len(frames)]
		}
	}
	jobs := s.jobs[:s.njobs]

	// Carve each job's frames into affinity groups — maximal same-key
	// frame sets, in propose order — and dispatch every group as ONE
	// DetectBatch call on the pool. A stable sort of the groups by key
	// puts one shard's groups adjacent across queries (the access pattern
	// a per-shard batch endpoint wants) while preserving propose order
	// within a key; rounds whose frames all share one key — the common
	// single-source case — skip the sort.
	var frameCount int64
	grouped := false
	for _, j := range jobs {
		aff, ok := j.h.q.(Affine)
		first := s.ngroups // this job's groups start here
		for i, frame := range j.frames {
			var key uint64
			if ok {
				key = aff.AffinityKey(frame)
			}
			var g *group
			for _, cand := range s.groups[first:s.ngroups] {
				if cand.key == key {
					g = cand
					break
				}
			}
			if g == nil {
				g = e.group(j, key)
			}
			g.frames = append(g.frames, frame)
			g.idx = append(g.idx, i)
		}
		frameCount += int64(len(j.frames))
	}
	created := s.groups[:s.ngroups]
	for i := 1; i < len(created); i++ {
		if created[i].key != created[i-1].key {
			grouped = true
			break
		}
	}
	dispatch := created
	if grouped {
		// Stable insertion sort into the reusable sorted view: group
		// counts are small (queries x shards), and sort.SliceStable would
		// allocate per call.
		s.sorted = append(s.sorted[:0], created...)
		for i := 1; i < len(s.sorted); i++ {
			g := s.sorted[i]
			k := i - 1
			for k >= 0 && s.sorted[k].key > g.key {
				s.sorted[k+1] = s.sorted[k]
				k--
			}
			s.sorted[k+1] = g
		}
		dispatch = s.sorted
	}
	s.tasks = s.tasks[:0]
	for _, g := range dispatch {
		s.tasks = append(s.tasks, g.task)
	}
	e.pool.DoWith(&s.wg, s.tasks)
	e.rounds.Add(1)
	e.batches.Add(int64(len(created)))
	e.detects.Add(frameCount)

	// Propagate group errors to their jobs deterministically — the first
	// failed group in creation (propose) order wins — and feed successful
	// groups' latency back to their Sized queries in the same order.
	for _, g := range created {
		if g.err != nil {
			if g.j.err == nil {
				g.j.err = g.err
			}
			continue
		}
		if g.j.sized != nil {
			g.j.sized.ObserveBatch(g.key, len(g.frames), g.seconds)
		}
	}

	for _, j := range jobs {
		if j.h.cancelled.Load() {
			e.finalize(j.h, ReasonCancelled, nil)
		} else if j.err != nil {
			// A failed detector batch poisons the whole round for the
			// query: none of the round's results are applied, so the
			// query's partial state stays consistent at the previous
			// round boundary.
			e.finalize(j.h, ReasonError, j.err)
		} else {
			for i, frame := range j.frames {
				done, err := j.h.q.Apply(frame, j.dets[i])
				if err != nil {
					e.finalize(j.h, ReasonError, err)
					break
				}
				if done {
					e.finalize(j.h, ReasonDone, nil)
					break
				}
			}
		}
		// Release detector outputs so recycled jobs do not pin them.
		for i := range j.dets {
			j.dets[i] = nil
		}
		j.h, j.sized, j.frames = nil, nil, nil
	}
	for _, g := range created {
		g.j = nil
	}
}

// planBudget divides Config.GlobalBudget across a round snapshot by
// marginal value — discrete water-filling over the reusable scratch, so the
// plan itself allocates nothing. Every non-cancelled query starts at the
// floor quota (clamped to its cap); the remaining budget is then granted
// proportionally to the queries' values, clamping at each query's cap and
// re-distributing the clamped surplus until the budget is spent or every
// cap is full. With equal values this degenerates to an even split — which
// is exactly fair-share, keeping single-query and identical-fleet runs
// byte-identical to the fair-share scheduler — while a mixed fleet shifts
// frames from decayed (nearly exhausted) queries to the ones whose beliefs
// still promise results.
func (e *Engine) planBudget(round []*Handle) {
	s := &e.scr
	n := len(round)
	if cap(s.grants) < n {
		s.grants = make([]int, 0, n)
		s.caps = make([]int, 0, n)
		s.vals = make([]float64, 0, n)
	}
	s.grants, s.caps, s.vals = s.grants[:n], s.caps[:n], s.vals[:n]
	base := e.cfg.FramesPerRound
	floor := e.cfg.FloorQuota
	remaining := e.cfg.GlobalBudget
	for i, h := range round {
		if h.cancelled.Load() {
			s.grants[i], s.caps[i], s.vals[i] = 0, 0, 0
			continue
		}
		qcap := base
		if sized, ok := h.q.(Sized); ok {
			if qcap = sized.RoundQuota(base); qcap < 1 {
				qcap = 1
			}
		}
		v := 1.0
		if val, ok := h.q.(Valued); ok {
			v = val.MarginalValue()
			if v != v || v < 0 { // NaN or negative: no signal
				v = 0
			}
		}
		f := floor
		if f > qcap {
			f = qcap
		}
		s.grants[i], s.caps[i], s.vals[i] = f, qcap, v
		remaining -= f
	}
	for remaining > 0 {
		mass := 0.0
		open := 0
		for i := range s.grants {
			if s.caps[i] > s.grants[i] {
				open++
				mass += s.vals[i]
			}
		}
		if open == 0 {
			break
		}
		if mass <= 0 {
			// Every query with headroom reports zero value: spread the
			// remainder evenly in snapshot order.
			for i := range s.grants {
				if remaining == 0 {
					break
				}
				if s.caps[i] > s.grants[i] {
					s.grants[i]++
					remaining--
				}
			}
			continue
		}
		pool := remaining
		granted := false
		for i := range s.grants {
			headroom := s.caps[i] - s.grants[i]
			if headroom == 0 || s.vals[i] <= 0 {
				continue
			}
			give := int(float64(pool) * s.vals[i] / mass)
			if give > headroom {
				give = headroom
			}
			if give > remaining {
				give = remaining
			}
			if give > 0 {
				s.grants[i] += give
				remaining -= give
				granted = true
			}
		}
		if !granted {
			// Rounding starved everyone: hand one frame to the
			// highest-value query with headroom (snapshot order breaks
			// ties) so the loop always progresses.
			best := -1
			for i := range s.grants {
				if s.caps[i] > s.grants[i] && (best == -1 || s.vals[i] > s.vals[best]) {
					best = i
				}
			}
			s.grants[best]++
			remaining--
		}
	}
	var roundGranted, roundCapped int64
	for i, h := range round {
		if s.caps[i] == 0 {
			continue
		}
		h.granted.Add(int64(s.grants[i]))
		h.requested.Add(int64(s.caps[i]))
		roundGranted += int64(s.grants[i])
		roundCapped += int64(s.caps[i])
	}
	e.granted.Add(roundGranted)
	e.capped.Add(roundCapped)
}

// park removes a standing handle from the round schedule without
// finalizing it: no Reason is published, Wait keeps blocking, and the
// query's pipeline state stays exactly where the last apply left it.
// Parking is declined — and the handle stays active — when a wake arrived
// since the round snapshot was taken (the append's frames must be
// proposed, not slept through), when the handle was cancelled, or when the
// engine is closing. It reports whether the handle was parked.
func (e *Engine) park(h *Handle) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h.wakePending || h.cancelled.Load() || e.closed {
		h.wakePending = false
		return false
	}
	for i, a := range e.active {
		if a == h {
			e.active = append(e.active[:i], e.active[i+1:]...)
			break
		}
	}
	h.parked = true
	e.parked = append(e.parked, h)
	e.parks.Add(1)
	return true
}

// wake re-admits a parked handle to the schedule. Waking a handle that is
// not parked — it is mid-round, still active, or already finalized — sets
// a pending flag instead, so a park racing this wake is declined and the
// appended frames are proposed next round. Wakes are idempotent.
func (e *Engine) wake(h *Handle) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !h.parked {
		h.wakePending = true
		return
	}
	h.parked = false
	h.wakePending = false
	for i, a := range e.parked {
		if a == h {
			e.parked = append(e.parked[:i], e.parked[i+1:]...)
			break
		}
	}
	e.active = append(e.active, h)
	e.wakes.Add(1)
	e.cond.Signal()
}

// finalize removes a handle from the schedule and publishes its outcome.
func (e *Engine) finalize(h *Handle, reason Reason, err error) {
	e.mu.Lock()
	for i, a := range e.active {
		if a == h {
			e.active = append(e.active[:i], e.active[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	h.reason, h.err = reason, err
	h.q.Finalize()
	close(h.done)
}

// Handle tracks one submitted query.
type Handle struct {
	e         *Engine
	q         Query
	cancelled atomic.Bool
	// parked and wakePending are guarded by e.mu: parked marks a standing
	// query waiting off-schedule for new data; wakePending remembers a wake
	// that arrived while the handle was on the schedule, so an in-flight
	// round's empty Propose cannot park over it (the lost-wakeup race).
	parked      bool
	wakePending bool
	done        chan struct{}
	reason      Reason
	err         error
	// Global-budget accounting, written by the scheduler's allocation plan
	// and read from any goroutine: frames granted to this query and the
	// frames its caps requested. Zero under fair-share scheduling.
	granted   atomic.Int64
	requested atomic.Int64
}

// BudgetCounters returns the cumulative frames the global allocator has
// granted this query and the frames its per-round caps requested (its
// fair-share entitlement). The gap between the two is the scheduler's
// verdict on the query's marginal value. Both stay zero when the engine
// runs fair-share (GlobalBudget 0).
func (h *Handle) BudgetCounters() (granted, requested int64) {
	return h.granted.Load(), h.requested.Load()
}

// Cancel asks the engine to stop the query. The cancellation takes effect
// at the next round boundary; in-flight detector calls complete but their
// results are discarded unapplied. A parked standing query is woken so the
// cancellation finalizes it promptly.
func (h *Handle) Cancel() {
	h.cancelled.Store(true)
	h.e.wake(h)
}

// Wake re-admits a parked standing query to the schedule — the call a live
// source makes when a segment lands. Waking a handle that is not parked is
// remembered (never lost) and otherwise free; waking one that is already
// finalized is a no-op.
func (h *Handle) Wake() { h.e.wake(h) }

// Parked reports whether the query is currently parked: a standing query
// whose repository is drained, waiting for a Wake. A parked query has no
// terminal Reason and Wait keeps blocking.
func (h *Handle) Parked() bool {
	h.e.mu.Lock()
	defer h.e.mu.Unlock()
	return h.parked
}

// Wait blocks until the query is finalized and returns the Apply error, if
// any.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// Reason reports why the query was finalized. It is only meaningful after
// Wait returns.
func (h *Handle) Reason() Reason { return h.reason }
