package xrand

import (
	"math/rand/v2"
	"testing"
)

// TestStreamMatchesRandV2 pins the inline uniform draws to math/rand/v2's
// exact output over the same PCG stream. The repo's determinism contract
// (seeded runs are byte-identical) was established when RNG delegated every
// draw to rand.Rand; the inline implementations must never diverge from it.
func TestStreamMatchesRandV2(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef, 1 << 60} {
		g := New(seed)
		ref := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		for i := 0; i < 2000; i++ {
			switch i % 5 {
			case 0:
				if got, want := g.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 = %v, rand/v2 = %v", seed, i, got, want)
				}
			case 1:
				n := int64(i%97 + 1)
				if got, want := g.Int64N(n), ref.Int64N(n); got != want {
					t.Fatalf("seed %d draw %d: Int64N(%d) = %v, rand/v2 = %v", seed, i, n, got, want)
				}
			case 2:
				n := i%63 + 1
				if got, want := g.IntN(n), ref.IntN(n); got != want {
					t.Fatalf("seed %d draw %d: IntN(%d) = %v, rand/v2 = %v", seed, i, n, got, want)
				}
			case 3:
				if got, want := g.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 = %v, rand/v2 = %v", seed, i, got, want)
				}
			case 4:
				var got, want [10]int
				for j := range got {
					got[j], want[j] = j, j
				}
				g.Shuffle(len(got), func(a, b int) { got[a], got[b] = got[b], got[a] })
				ref.Shuffle(len(want), func(a, b int) { want[a], want[b] = want[b], want[a] })
				if got != want {
					t.Fatalf("seed %d draw %d: Shuffle = %v, rand/v2 = %v", seed, i, got, want)
				}
			}
		}
	}
}

// TestSeedFromMatchesNewFrom verifies in-place reseeding reproduces the
// allocated constructor's stream, including when the RNG was already used
// for ziggurat draws (which wrap the same PCG lazily).
func TestSeedFromMatchesNewFrom(t *testing.T) {
	var g RNG
	for stream := uint64(0); stream < 8; stream++ {
		g.SeedFrom(99, stream)
		ref := NewFrom(99, stream)
		for i := 0; i < 200; i++ {
			if got, want := g.Int64N(1000), ref.Int64N(1000); got != want {
				t.Fatalf("stream %d draw %d: SeedFrom RNG = %v, NewFrom RNG = %v", stream, i, got, want)
			}
		}
		// Mix in a Normal draw so the lazy rand.Rand wrapper exists, then
		// confirm the next reseed still aligns the streams.
		g.Normal(0, 1)
	}
}

// TestSeedFromAllocFree pins the point of the in-place API: deriving a new
// uniform stream from an embedded RNG allocates nothing.
func TestSeedFromAllocFree(t *testing.T) {
	var g RNG
	var sink int64
	avg := testing.AllocsPerRun(100, func() {
		g.SeedFrom(7, 3)
		sink += g.Int64N(128)
	})
	if avg != 0 {
		t.Fatalf("SeedFrom+Int64N allocated %.2f allocs/op, want 0", avg)
	}
	_ = sink
}
