// Package xrand provides deterministic pseudo-random number generation and
// the non-uniform distributions used throughout the ExSample reproduction:
// Gamma (for Thompson sampling of chunk beliefs), LogNormal (object
// durations), Poisson (N1 sampling distribution, paper §III-B), Beta and
// Normal (placement skew).
//
// All generators are seeded explicitly so experiments are reproducible; the
// package never touches global math/rand state.
package xrand

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// RNG is a deterministic random source with helpers for the distributions
// the paper relies on. It draws from a math/rand/v2 PCG generator held by
// value, so an RNG embedded in another struct (a per-chunk frame order, for
// example) can be seeded in place without allocating — the hot path of a
// sampler that lazily opens thousands of chunk orders.
//
// The uniform draws (Float64, IntN, Int64N, Shuffle, ...) are implemented
// directly over the PCG with the exact algorithms math/rand/v2 uses, so the
// streams are bit-identical to the previous *rand.Rand-backed
// implementation; the ziggurat-based helpers (Normal, Exp) lazily wrap the
// same PCG in a rand.Rand. An RNG must not be copied after first use.
type RNG struct {
	src rand.PCG
	r   *rand.Rand // lazily wraps &src for NormFloat64/ExpFloat64
}

// New returns an RNG seeded with the given seed. The same seed always
// produces the same stream.
func New(seed uint64) *RNG {
	g := &RNG{}
	g.src.Seed(seed, seed^0x9e3779b97f4a7c15)
	return g
}

// NewFrom returns an RNG seeded from two words, for deriving independent
// streams (e.g. one per trial) from a base seed.
func NewFrom(seed, stream uint64) *RNG {
	g := &RNG{}
	g.SeedFrom(seed, stream)
	return g
}

// SeedFrom reseeds g in place to the exact stream NewFrom(seed, stream)
// produces. A zero RNG is ready to be seeded this way, which lets callers
// embed the generator by value instead of allocating one per stream.
func (g *RNG) SeedFrom(seed, stream uint64) {
	g.src.Seed(seed, stream*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d)
}

// rand lazily wraps the PCG in a rand.Rand for the distribution helpers the
// standard library implements with large ziggurat tables. The wrapper and
// the inline draws share one underlying stream, so interleaving them is
// exactly equivalent to routing everything through rand.Rand.
func (g *RNG) rand() *rand.Rand {
	if g.r == nil {
		g.r = rand.New(&g.src)
	}
	return g.r
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 {
	// There are exactly 1<<53 float64s in [0,1); same construction as
	// rand.Rand.Float64.
	return float64(g.src.Uint64()<<11>>11) / (1 << 53)
}

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN requires n > 0")
	}
	return int(g.uint64n(uint64(n)))
}

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Int64N(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int64N requires n > 0")
	}
	return int64(g.uint64n(uint64(n)))
}

const is32bit = ^uint(0)>>32 == 0

// uint64n reduces a uniform uint64 to [0, n) with Lemire's unbiased
// multiply-shift rejection, transcribed from math/rand/v2 so the output
// stream matches rand.Rand over the same source bit for bit.
func (g *RNG) uint64n(n uint64) uint64 {
	if is32bit && uint64(uint32(n)) == n {
		return uint64(g.uint32n(uint32(n)))
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return g.src.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(g.src.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(g.src.Uint64(), n)
		}
	}
	return hi
}

// uint32n is uint64n in 32-bit math, preserving the exact output sequence
// observed on 64-bit machines (math/rand/v2's small-n fast path).
func (g *RNG) uint32n(n uint32) uint32 {
	if n&(n-1) == 0 { // n is power of two, can mask
		return uint32(g.src.Uint64()) & (n - 1)
	}
	x := g.src.Uint64()
	lo1a, lo0 := bits.Mul32(uint32(x), n)
	hi, lo1b := bits.Mul32(uint32(x>>32), n)
	lo1, c := bits.Add32(lo1a, lo1b, 0)
	hi += c
	if lo1 == 0 && lo0 < n {
		n64 := uint64(n)
		thresh := uint32(-n64 % n64)
		for lo1 == 0 && lo0 < thresh {
			x := g.src.Uint64()
			lo1a, lo0 = bits.Mul32(uint32(x), n)
			hi, lo1b = bits.Mul32(uint32(x>>32), n)
			lo1, c = bits.Add32(lo1a, lo1b, 0)
			hi += c
		}
	}
	return hi
}

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.src.Uint64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.Float64() < p }

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.rand().NormFloat64()
}

// Exp returns an exponentially distributed value with rate 1.
func (g *RNG) Exp() float64 { return g.rand().ExpFloat64() }

// LogNormal returns a log-normally distributed value where the underlying
// normal has mean mu and standard deviation sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// LogNormalMeanCV returns parameters (mu, sigma) of a LogNormal distribution
// with the requested arithmetic mean and coefficient of variation
// (stddev/mean). The paper's simulations fix a target mean duration (e.g.
// 700 frames) with heavy skew; cv controls that skew.
func LogNormalMeanCV(mean, cv float64) (mu, sigma float64) {
	if mean <= 0 {
		panic("xrand: LogNormalMeanCV requires mean > 0")
	}
	if cv <= 0 {
		panic("xrand: LogNormalMeanCV requires cv > 0")
	}
	s2 := math.Log(1 + cv*cv)
	sigma = math.Sqrt(s2)
	mu = math.Log(mean) - s2/2
	return mu, sigma
}

// Gamma returns a Gamma(alpha, beta)-distributed value using the shape/rate
// parameterization: mean alpha/beta, variance alpha/beta^2. This matches the
// paper's belief distribution Γ(α=N1+α0, β=n+β0) (Eq. III.4).
//
// Sampling uses the Marsaglia–Tsang squeeze method for alpha >= 1 and the
// standard boost (U^(1/alpha) scaling) for alpha < 1.
func (g *RNG) Gamma(alpha, beta float64) float64 {
	if alpha <= 0 || beta <= 0 {
		panic("xrand: Gamma requires alpha > 0 and beta > 0")
	}
	return g.gammaShape(alpha) / beta
}

// gammaShape samples Gamma(alpha, 1).
func (g *RNG) gammaShape(alpha float64) float64 {
	if alpha < 1 {
		// Boost: if X ~ Gamma(alpha+1) and U ~ Uniform(0,1),
		// X * U^(1/alpha) ~ Gamma(alpha).
		u := g.Float64()
		for u == 0 {
			u = g.Float64()
		}
		return g.gammaShape(alpha+1) * math.Pow(u, 1/alpha)
	}
	// Marsaglia–Tsang.
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		var x, v float64
		for {
			x = g.rand().NormFloat64()
			v = 1.0 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := g.Float64()
		if u < 1.0-0.0331*(x*x)*(x*x) {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b)-distributed value via two Gamma draws.
func (g *RNG) Beta(a, b float64) float64 {
	x := g.gammaShape(a)
	y := g.gammaShape(b)
	return x / (x + y)
}

// Poisson returns a Poisson(lambda)-distributed value. For small lambda it
// uses Knuth's multiplication method; for large lambda the PTRS
// transformed-rejection method (Hörmann 1993), which is O(1).
func (g *RNG) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("xrand: Poisson requires lambda >= 0")
	}
	if lambda == 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= g.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	return g.poissonPTRS(lambda)
}

// poissonPTRS implements Hörmann's PTRS algorithm for lambda >= 10.
func (g *RNG) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := g.Float64() - 0.5
		v := g.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-logGamma(k+1) {
			return int(k)
		}
	}
}

func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	g.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap
// (Fisher–Yates, same draw sequence as rand.Rand.Shuffle).
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("xrand: Shuffle requires n >= 0")
	}
	for i := n - 1; i > 0; i-- {
		j := int(g.uint64n(uint64(i + 1)))
		swap(i, j)
	}
}

// WeightedIndex returns an index in [0, len(weights)) drawn proportionally
// to the (non-negative) weights. It panics if weights is empty or all zero.
func (g *RNG) WeightedIndex(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: WeightedIndex requires at least one weight")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: WeightedIndex requires non-negative weights")
		}
		total += w
	}
	if total == 0 {
		panic("xrand: WeightedIndex requires a positive total weight")
	}
	target := g.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
