package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestNewFromStreamsIndependent(t *testing.T) {
	a := NewFrom(7, 0)
	b := NewFrom(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from same seed produced %d/100 identical draws", same)
	}
}

// moments estimates sample mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return mean, variance
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ alpha, beta float64 }{
		{0.1, 1}, {0.5, 2}, {1, 1}, {2, 0.5}, {5, 3}, {100, 10},
	}
	g := New(123)
	for _, c := range cases {
		wantMean := c.alpha / c.beta
		wantVar := c.alpha / (c.beta * c.beta)
		mean, variance := moments(200000, func() float64 { return g.Gamma(c.alpha, c.beta) })
		if relErr(mean, wantMean) > 0.03 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ~%v", c.alpha, c.beta, mean, wantMean)
		}
		if relErr(variance, wantVar) > 0.10 {
			t.Errorf("Gamma(%v,%v) variance = %v, want ~%v", c.alpha, c.beta, variance, wantVar)
		}
	}
}

func TestGammaPositive(t *testing.T) {
	g := New(5)
	for i := 0; i < 10000; i++ {
		if x := g.Gamma(0.1, 1); x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("Gamma(0.1,1) produced %v", x)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	g := New(1)
	for _, c := range []struct{ a, b float64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v,%v) did not panic", c.a, c.b)
				}
			}()
			g.Gamma(c.a, c.b)
		}()
	}
}

func TestLogNormalMeanCV(t *testing.T) {
	g := New(99)
	for _, c := range []struct{ mean, cv float64 }{{700, 1.5}, {14, 1}, {4900, 2}} {
		mu, sigma := LogNormalMeanCV(c.mean, c.cv)
		m, v := moments(400000, func() float64 { return g.LogNormal(mu, sigma) })
		if relErr(m, c.mean) > 0.05 {
			t.Errorf("LogNormal(mean=%v,cv=%v): sample mean %v", c.mean, c.cv, m)
		}
		wantSD := c.cv * c.mean
		if relErr(math.Sqrt(v), wantSD) > 0.20 {
			t.Errorf("LogNormal(mean=%v,cv=%v): sample sd %v want ~%v", c.mean, c.cv, math.Sqrt(v), wantSD)
		}
	}
}

func TestLogNormalMeanCVPanics(t *testing.T) {
	for _, c := range []struct{ mean, cv float64 }{{0, 1}, {-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogNormalMeanCV(%v,%v) did not panic", c.mean, c.cv)
				}
			}()
			LogNormalMeanCV(c.mean, c.cv)
		}()
	}
}

func TestPoissonMoments(t *testing.T) {
	g := New(77)
	for _, lambda := range []float64{0.5, 3, 10, 29, 35, 100, 1000} {
		mean, variance := moments(100000, func() float64 { return float64(g.Poisson(lambda)) })
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/100000)+0.05*lambda/10 {
			if relErr(mean, lambda) > 0.02 {
				t.Errorf("Poisson(%v) mean = %v", lambda, mean)
			}
		}
		if relErr(variance, lambda) > 0.08 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	g := New(3)
	if got := g.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
}

func TestPoissonNonNegativeProperty(t *testing.T) {
	g := New(8)
	f := func(raw uint16) bool {
		lambda := float64(raw) / 100.0 // 0 .. ~655
		k := g.Poisson(lambda)
		return k >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBetaRange(t *testing.T) {
	g := New(11)
	for i := 0; i < 10000; i++ {
		x := g.Beta(0.5, 0.5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of range: %v", x)
		}
	}
	mean, _ := moments(100000, func() float64 { return g.Beta(2, 6) })
	if relErr(mean, 0.25) > 0.05 {
		t.Errorf("Beta(2,6) mean = %v, want ~0.25", mean)
	}
}

func TestWeightedIndexProportions(t *testing.T) {
	g := New(21)
	weights := []float64{1, 2, 0, 7}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.WeightedIndex(weights)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[2])
	}
	total := 10.0
	for i, w := range weights {
		want := float64(n) * w / total
		if w > 0 && math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want) {
			t.Errorf("index %d drawn %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	g := New(1)
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedIndex(%v) did not panic", weights)
				}
			}()
			g.WeightedIndex(weights)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(31)
	f := func(raw uint8) bool {
		n := int(raw%64) + 1
		p := g.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(61)
	mean, variance := moments(200000, func() float64 { return g.Normal(5, 2) })
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal(5,2) mean = %v", mean)
	}
	if relErr(variance, 4) > 0.05 {
		t.Errorf("Normal(5,2) variance = %v", variance)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
