// Package synth generates the synthetic workloads used throughout the
// paper's analysis and evaluation sections:
//
//   - §III-D: a population of per-instance hit probabilities p_i drawn from
//     a heavy-tailed LogNormal (durations from fractions of a second to
//     hours), used to validate the estimator and its belief distribution.
//   - §IV (Figures 3 and 4): N instances placed over a frame axis with
//     controllable cross-dataset skew (95% of instances inside a chosen
//     center fraction) and LogNormal durations with a target mean.
//
// The same generator also underlies the six synthetic dataset profiles in
// internal/datasets.
package synth

import (
	"fmt"
	"math"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/xrand"
)

// GridSpec configures one cell of the paper's §IV simulation grid.
type GridSpec struct {
	// NumInstances is N, the number of distinct objects (2000 in Fig. 3).
	NumInstances int
	// NumFrames is the repository size (16M in Fig. 3).
	NumFrames int64
	// SkewFraction places ~95% of instance centers inside a band covering
	// SkewFraction of the frame axis; 0 (or 1) means no skew: uniform
	// placement. Fig. 3 uses {0, 1/4, 1/32, 1/256}.
	SkewFraction float64
	// Center positions the band's center as a fraction of the frame axis.
	// 0 selects the midpoint (0.5), the Fig. 3 setup. Dataset profiles use
	// different centers per class so skews do not all coincide.
	Center float64
	// MeanDuration is the target mean of the LogNormal duration
	// distribution, in frames (Fig. 3 rows: 14, 100, 700, 4900).
	MeanDuration float64
	// DurationSigma is the LogNormal shape parameter. 0 selects
	// DefaultDurationSigma, which reproduces the paper's ~50..5000 frame
	// range at mean 700.
	DurationSigma float64
	// Class labels all generated instances (default "object").
	Class string
	// Seed drives generation.
	Seed uint64
	// TravelX and TravelY, when either is nonzero, give every instance a
	// net spatial displacement over its lifetime: the end box is the start
	// box translated by (TravelX, TravelY) pixels, so an instance visible
	// for d frames moves at hypot(TravelX, TravelY)/(d-1) pixels per frame.
	// Both zero keeps the legacy slight drift (40 px in x), preserving the
	// ground truth of every existing dataset profile byte for byte. Track-
	// predicate scenes use these to give speed and direction clauses
	// something to discriminate on.
	TravelX, TravelY float64
}

// DefaultDurationSigma makes a LogNormal whose 2000-sample range is roughly
// a factor of 100 (the paper reports durations ~50..5000 at mean 700).
const DefaultDurationSigma = 0.7

// Validate reports an error for an unusable spec.
func (s GridSpec) Validate() error {
	if s.NumInstances <= 0 {
		return fmt.Errorf("synth: NumInstances must be positive, got %d", s.NumInstances)
	}
	if s.NumFrames <= 0 {
		return fmt.Errorf("synth: NumFrames must be positive, got %d", s.NumFrames)
	}
	if s.SkewFraction < 0 || s.SkewFraction > 1 {
		return fmt.Errorf("synth: SkewFraction %v outside [0,1]", s.SkewFraction)
	}
	if s.MeanDuration <= 0 {
		return fmt.Errorf("synth: MeanDuration must be positive, got %v", s.MeanDuration)
	}
	if s.MeanDuration >= float64(s.NumFrames) {
		return fmt.Errorf("synth: MeanDuration %v >= NumFrames %d", s.MeanDuration, s.NumFrames)
	}
	if s.DurationSigma < 0 {
		return fmt.Errorf("synth: negative DurationSigma %v", s.DurationSigma)
	}
	if s.Center < 0 || s.Center > 1 {
		return fmt.Errorf("synth: Center %v outside [0,1]", s.Center)
	}
	return nil
}

// Generate produces the instance population for a grid cell. Instances are
// spatially laid out in disjoint lanes so that temporally overlapping
// instances of the same class never overlap spatially (keeping IoU-based
// ground truth unambiguous).
func Generate(spec GridSpec) ([]track.Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Class == "" {
		spec.Class = "object"
	}
	sigma := spec.DurationSigma
	if sigma == 0 {
		sigma = DefaultDurationSigma
	}
	// mu so that the LogNormal mean is MeanDuration.
	mu := math.Log(spec.MeanDuration) - sigma*sigma/2

	rng := xrand.New(spec.Seed)
	instances := make([]track.Instance, 0, spec.NumInstances)
	for i := 0; i < spec.NumInstances; i++ {
		dur := int64(math.Round(rng.LogNormal(mu, sigma)))
		if dur < 1 {
			dur = 1
		}
		if dur > spec.NumFrames {
			dur = spec.NumFrames
		}
		center := placeCenter(rng, spec.NumFrames, spec.SkewFraction, spec.Center)
		start := center - dur/2
		if start < 0 {
			start = 0
		}
		end := start + dur - 1
		if end >= spec.NumFrames {
			end = spec.NumFrames - 1
			start = end - dur + 1
			if start < 0 {
				start = 0
			}
		}
		startBox := laneBox(i, 0)
		endBox := laneBox(i, 1)
		if spec.TravelX != 0 || spec.TravelY != 0 {
			endBox = startBox.Translate(spec.TravelX, spec.TravelY)
		}
		instances = append(instances, track.Instance{
			ID:       i,
			Class:    spec.Class,
			Start:    start,
			End:      end,
			StartBox: startBox,
			EndBox:   endBox,
		})
	}
	return instances, nil
}

// placeCenter draws an instance center. With skew f, centers are Normal
// around the band center with 95% mass inside a band covering fraction f of
// the axis (1.96 sigma = f*numFrames/2); draws outside the axis are redrawn.
func placeCenter(rng *xrand.RNG, numFrames int64, skewFraction, center float64) int64 {
	if skewFraction == 0 || skewFraction >= 1 {
		return rng.Int64N(numFrames)
	}
	if center == 0 {
		center = 0.5
	}
	mid := center * float64(numFrames)
	sigma := skewFraction * float64(numFrames) / 2 / 1.96
	for {
		c := rng.Normal(mid, sigma)
		if c >= 0 && c < float64(numFrames) {
			return int64(c)
		}
	}
}

// laneBox assigns each instance a private spatial lane; phase 0 is the
// start pose, 1 the end pose (slight drift for realistic tracking).
func laneBox(id int, phase int) geom.Box {
	const (
		lanes      = 997 // prime: consecutive ids spread across lanes
		laneHeight = 130
		baseSize   = 60
	)
	lane := id % lanes
	x := 100 + float64((id*7919)%1200)
	y := float64(lane) * laneHeight
	size := baseSize + float64(id%5)*10
	drift := 40.0 * float64(phase)
	return geom.Rect(x+drift, y, size, size*1.2)
}

// Pis draws n per-instance hit probabilities from a LogNormal with the given
// arithmetic mean and coefficient of variation, clamped to (0, maxP]. The
// §III-D experiment uses mean 3e-3 and a CV of ~2.7, giving the paper's
// reported range of ~3e-6 to 0.15.
func Pis(n int, mean, cv, maxP float64, seed uint64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("synth: n must be positive, got %d", n)
	}
	if mean <= 0 || mean >= 1 {
		return nil, fmt.Errorf("synth: mean %v outside (0,1)", mean)
	}
	if cv <= 0 {
		return nil, fmt.Errorf("synth: cv must be positive, got %v", cv)
	}
	if maxP <= 0 || maxP > 1 {
		return nil, fmt.Errorf("synth: maxP %v outside (0,1]", maxP)
	}
	mu, sigma := xrand.LogNormalMeanCV(mean, cv)
	rng := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		p := rng.LogNormal(mu, sigma)
		if p > maxP {
			p = maxP
		}
		if p <= 0 {
			p = 1e-12
		}
		out[i] = p
	}
	return out, nil
}

// DurationStats summarizes a generated population (used by tests and by the
// experiment logs to confirm fidelity with the paper's reported ranges).
type DurationStats struct {
	Min, Max int64
	Mean     float64
}

// Durations computes summary statistics over instance durations.
func Durations(instances []track.Instance) DurationStats {
	if len(instances) == 0 {
		return DurationStats{}
	}
	st := DurationStats{Min: instances[0].Duration(), Max: instances[0].Duration()}
	var sum int64
	for _, in := range instances {
		d := in.Duration()
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		sum += d
	}
	st.Mean = float64(sum) / float64(len(instances))
	return st
}
