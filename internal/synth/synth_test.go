package synth

import (
	"math"
	"testing"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

func TestGenerateBasics(t *testing.T) {
	spec := GridSpec{NumInstances: 500, NumFrames: 1 << 20, SkewFraction: 0, MeanDuration: 700, Seed: 1}
	instances, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 500 {
		t.Fatalf("generated %d instances", len(instances))
	}
	for _, in := range instances {
		if err := in.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v", in.ID, err)
		}
		if in.Start < 0 || in.End >= spec.NumFrames {
			t.Fatalf("instance %d outside repository: [%d, %d]", in.ID, in.Start, in.End)
		}
		if in.Class != "object" {
			t.Fatalf("default class = %q", in.Class)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GridSpec{NumInstances: 100, NumFrames: 100000, MeanDuration: 100, Seed: 7}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instance %d differs between runs", i)
		}
	}
}

func TestGenerateDurationDistribution(t *testing.T) {
	// Paper: mean 700 gives shortest ~50, longest ~5000 over 2000 draws.
	spec := GridSpec{NumInstances: 2000, NumFrames: 16_000_000, MeanDuration: 700, Seed: 3}
	instances, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := Durations(instances)
	if st.Mean < 550 || st.Mean > 850 {
		t.Errorf("mean duration = %v, want ~700", st.Mean)
	}
	if st.Min > 120 {
		t.Errorf("min duration = %d, want tail below ~120", st.Min)
	}
	if st.Max < 2500 {
		t.Errorf("max duration = %d, want heavy tail above 2500", st.Max)
	}
}

func TestGenerateSkewConcentratesCenters(t *testing.T) {
	const frames = 1 << 24
	for _, f := range []float64{0.25, 1.0 / 32, 1.0 / 256} {
		spec := GridSpec{NumInstances: 2000, NumFrames: frames, SkewFraction: f, MeanDuration: 100, Seed: 5}
		instances, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		lo := int64((0.5 - f/2) * frames)
		hi := int64((0.5 + f/2) * frames)
		inside := 0
		for _, in := range instances {
			c := (in.Start + in.End) / 2
			if c >= lo && c < hi {
				inside++
			}
		}
		frac := float64(inside) / float64(len(instances))
		if frac < 0.90 || frac > 0.99 {
			t.Errorf("skew %v: %v of centers inside central fraction, want ~0.95", f, frac)
		}
	}
}

func TestGenerateNoSkewIsUniform(t *testing.T) {
	const frames = 1 << 20
	spec := GridSpec{NumInstances: 4000, NumFrames: frames, SkewFraction: 0, MeanDuration: 10, Seed: 9}
	instances, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Quarter occupancy should be ~25% each.
	quarters := make([]int, 4)
	for _, in := range instances {
		q := int(4 * in.Start / frames)
		if q > 3 {
			q = 3
		}
		quarters[q]++
	}
	for q, c := range quarters {
		if c < 850 || c > 1150 {
			t.Errorf("quarter %d holds %d instances, want ~1000", q, c)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GridSpec{
		{NumInstances: 0, NumFrames: 100, MeanDuration: 10},
		{NumInstances: 10, NumFrames: 0, MeanDuration: 10},
		{NumInstances: 10, NumFrames: 100, MeanDuration: 0},
		{NumInstances: 10, NumFrames: 100, MeanDuration: 200},
		{NumInstances: 10, NumFrames: 100, MeanDuration: 10, SkewFraction: -0.1},
		{NumInstances: 10, NumFrames: 100, MeanDuration: 10, SkewFraction: 1.5},
		{NumInstances: 10, NumFrames: 100, MeanDuration: 10, DurationSigma: -1},
	}
	for i, spec := range bad {
		if _, err := Generate(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestLaneSeparationForConcurrentInstances(t *testing.T) {
	// Temporally overlapping instances (adjacent ids overlap with high
	// probability under heavy skew) must not overlap spatially.
	spec := GridSpec{NumInstances: 900, NumFrames: 1 << 16, SkewFraction: 1.0 / 256, MeanDuration: 500, Seed: 11}
	instances, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(instances); i++ {
		for j := i + 1; j < len(instances) && j < i+50; j++ {
			a, b := instances[i], instances[j]
			if a.End < b.Start || b.End < a.Start {
				continue // no temporal overlap
			}
			mid := maxI64(a.Start, b.Start)
			if geom.IoU(a.BoxAt(mid), b.BoxAt(mid)) > 0 {
				t.Fatalf("instances %d and %d overlap spatially and temporally", a.ID, b.ID)
			}
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestPis(t *testing.T) {
	pis, err := Pis(1000, 3e-3, 2.7, 0.15, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(pis) != 1000 {
		t.Fatalf("len = %d", len(pis))
	}
	var sum, min, max float64
	min = 1
	for _, p := range pis {
		if p <= 0 || p > 0.15 {
			t.Fatalf("p = %v outside (0, 0.15]", p)
		}
		sum += p
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	mean := sum / 1000
	if mean < 1e-3 || mean > 6e-3 {
		t.Errorf("mean p = %v, want ~3e-3", mean)
	}
	if min > 1e-4 {
		t.Errorf("min p = %v, want heavy lower tail", min)
	}
	if max < 0.02 {
		t.Errorf("max p = %v, want heavy upper tail", max)
	}
	// Order-of-magnitude spread, as in the paper's §III-D setup.
	if math.Log10(max/min) < 2 {
		t.Errorf("spread = %v orders of magnitude, want >= 2", math.Log10(max/min))
	}
}

func TestPisValidation(t *testing.T) {
	cases := []struct {
		n        int
		mean, cv float64
		maxP     float64
	}{
		{0, 0.1, 1, 1},
		{10, 0, 1, 1},
		{10, 1.5, 1, 1},
		{10, 0.1, 0, 1},
		{10, 0.1, 1, 0},
		{10, 0.1, 1, 1.5},
	}
	for i, c := range cases {
		if _, err := Pis(c.n, c.mean, c.cv, c.maxP, 1); err == nil {
			t.Errorf("bad Pis case %d accepted", i)
		}
	}
}

func TestDurationsEmpty(t *testing.T) {
	if st := Durations(nil); st.Min != 0 || st.Max != 0 || st.Mean != 0 {
		t.Fatalf("Durations(nil) = %+v", st)
	}
}

func TestDurationsSummary(t *testing.T) {
	instances := []track.Instance{
		{ID: 0, Class: "c", Start: 0, End: 9, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
		{ID: 1, Class: "c", Start: 0, End: 29, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
	}
	st := Durations(instances)
	if st.Min != 10 || st.Max != 30 || st.Mean != 20 {
		t.Fatalf("stats = %+v", st)
	}
}
