package sorttrack

import (
	"fmt"

	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/track"
)

// BuildResult is the output of the ground-truth construction pipeline.
type BuildResult struct {
	// Instances are the recovered object tracks converted to the ground
	// truth representation, with fresh sequential ids.
	Instances []track.Instance
	// FramesScanned counts detector invocations (the §V-A pipeline scans
	// sequentially, so this is the stride-decimated frame count).
	FramesScanned int64
	// RawTracks is the recovered track list before conversion.
	RawTracks []Track
}

// BuildGroundTruth reproduces the paper's §V-A ground-truth pipeline: scan
// the repository sequentially (every stride-th frame), run the reference
// detector on each frame, and stitch detections into object tracks with the
// SORT tracker. The output plays the role of the paper's approximate ground
// truth; its quality depends on the detector's noise and the stride, which
// is exactly the fine-tuning trade-off the paper describes.
func BuildGroundTruth(detector detect.Detector, numFrames, stride int64, cfg Config) (*BuildResult, error) {
	if detector == nil {
		return nil, fmt.Errorf("sorttrack: nil detector")
	}
	if numFrames <= 0 {
		return nil, fmt.Errorf("sorttrack: numFrames must be positive, got %d", numFrames)
	}
	if stride <= 0 {
		stride = 1
	}
	// Age out tracks after a few missed scan steps regardless of stride.
	if cfg == (Config{}) {
		cfg = DefaultConfig()
		cfg.MaxAge = 3 * stride
	}
	tr, err := New(cfg)
	if err != nil {
		return nil, err
	}
	res := &BuildResult{}
	for f := int64(0); f < numFrames; f += stride {
		dets := detector.Detect(f)
		res.FramesScanned++
		if err := tr.Observe(f, dets); err != nil {
			return nil, err
		}
	}
	res.RawTracks = tr.Flush()
	for i, t := range res.RawTracks {
		res.Instances = append(res.Instances, track.Instance{
			ID:       i,
			Class:    t.Class,
			Start:    t.Start,
			End:      t.End,
			StartBox: t.StartBox,
			EndBox:   t.EndBox,
		})
	}
	return res, nil
}

// CompareToTruth scores recovered instances against true ones per class:
// the count ratio and the mean absolute duration error, the two properties
// the sampler's behaviour depends on. It is used to validate the pipeline,
// mirroring the paper's manual quality checks.
type TruthComparison struct {
	TrueCount      int
	RecoveredCount int
	// CountRatio is recovered / true (1 = perfect).
	CountRatio float64
}

// CompareToTruth compares recovered instance counts per class.
func CompareToTruth(recovered, truth []track.Instance) map[string]TruthComparison {
	trueCounts := track.CountByClass(truth)
	recCounts := track.CountByClass(recovered)
	out := make(map[string]TruthComparison)
	for class, tc := range trueCounts {
		cmp := TruthComparison{TrueCount: tc, RecoveredCount: recCounts[class]}
		if tc > 0 {
			cmp.CountRatio = float64(cmp.RecoveredCount) / float64(tc)
		}
		out[class] = cmp
	}
	for class, rc := range recCounts {
		if _, ok := out[class]; !ok {
			out[class] = TruthComparison{RecoveredCount: rc}
		}
	}
	return out
}
