package sorttrack

import (
	"testing"

	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/synth"
	"github.com/exsample/exsample/internal/track"
)

func det(frame int64, class string, box geom.Box) track.Detection {
	return track.Detection{Frame: frame, Class: class, Box: box, Score: 0.9}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{IoUThreshold: 0, MaxAge: 3, MinHits: 2},
		{IoUThreshold: 1.5, MaxAge: 3, MinHits: 2},
		{IoUThreshold: 0.3, MaxAge: 0, MinHits: 2},
		{IoUThreshold: 0.3, MaxAge: 3, MinHits: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestSingleObjectSingleTrack(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// One object drifting right for 20 frames.
	for f := int64(0); f < 20; f++ {
		b := geom.Rect(100+float64(f)*4, 50, 60, 80)
		if err := tr.Observe(f, []track.Detection{det(f, "car", b)}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 1 {
		t.Fatalf("got %d tracks, want 1", len(tracks))
	}
	got := tracks[0]
	if got.Start != 0 || got.End != 19 || got.Hits != 20 || got.Class != "car" {
		t.Fatalf("track = %+v", got)
	}
}

func TestTwoSeparatedObjects(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 15; f++ {
		dets := []track.Detection{
			det(f, "car", geom.Rect(0+float64(f)*2, 0, 50, 50)),
			det(f, "car", geom.Rect(500, 500, 50, 50)),
		}
		if err := tr.Observe(f, dets); err != nil {
			t.Fatal(err)
		}
	}
	if tracks := tr.Flush(); len(tracks) != 2 {
		t.Fatalf("got %d tracks, want 2", len(tracks))
	}
}

func TestClassSeparation(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Same box, alternating class labels: must become two tracks, not one.
	for f := int64(0); f < 10; f++ {
		dets := []track.Detection{
			det(f, "car", geom.Rect(100, 100, 50, 50)),
			det(f, "bus", geom.Rect(100, 100, 50, 50)),
		}
		if err := tr.Observe(f, dets); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks, want 2 (one per class)", len(tracks))
	}
}

func TestOcclusionGapWithinMaxAge(t *testing.T) {
	tr, err := New(Config{IoUThreshold: 0.3, MaxAge: 5, MinHits: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Frames 0-9 visible, 10-12 occluded, 13-19 visible again: one track.
	for f := int64(0); f < 20; f++ {
		var dets []track.Detection
		if f < 10 || f >= 13 {
			dets = []track.Detection{det(f, "car", geom.Rect(200, 200, 60, 60))}
		}
		if err := tr.Observe(f, dets); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 1 {
		t.Fatalf("got %d tracks across a short occlusion, want 1", len(tracks))
	}
	if tracks[0].End != 19 {
		t.Fatalf("track end = %d", tracks[0].End)
	}
}

func TestLongGapSplitsTrack(t *testing.T) {
	tr, err := New(Config{IoUThreshold: 0.3, MaxAge: 3, MinHits: 2})
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 30; f++ {
		var dets []track.Detection
		if f < 10 || f >= 20 {
			dets = []track.Detection{det(f, "car", geom.Rect(200, 200, 60, 60))}
		}
		if err := tr.Observe(f, dets); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks across a 10-frame gap with MaxAge=3, want 2", len(tracks))
	}
}

func TestMinHitsSuppressesOneFrameFalsePositives(t *testing.T) {
	tr, err := New(Config{IoUThreshold: 0.3, MaxAge: 3, MinHits: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A single spurious detection among empty frames.
	tr.Observe(0, []track.Detection{det(0, "car", geom.Rect(900, 900, 30, 30))})
	for f := int64(1); f < 10; f++ {
		tr.Observe(f, nil)
	}
	if tracks := tr.Flush(); len(tracks) != 0 {
		t.Fatalf("one-frame FP produced %d tracks", len(tracks))
	}
}

func TestCrossingObjectsKeepIdentity(t *testing.T) {
	// Two objects pass each other moving in opposite directions; with
	// Kalman velocity the tracker should keep two tracks (not fragment).
	tr, err := New(Config{IoUThreshold: 0.2, MaxAge: 3, MinHits: 2})
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 40; f++ {
		a := geom.Rect(float64(f)*10, 100, 40, 40)     // left -> right
		b := geom.Rect(400-float64(f)*10, 100, 40, 40) // right -> left
		if err := tr.Observe(f, []track.Detection{det(f, "car", a), det(f, "car", b)}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 2 {
		t.Fatalf("crossing objects produced %d tracks, want 2", len(tracks))
	}
	for _, tk := range tracks {
		if tk.Duration() < 35 {
			t.Fatalf("track fragmented: %+v", tk)
		}
	}
}

func TestObserveOutOfOrder(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe(5, nil)
	if err := tr.Observe(5, nil); err == nil {
		t.Error("same frame twice accepted")
	}
	if err := tr.Observe(3, nil); err == nil {
		t.Error("earlier frame accepted")
	}
}

func TestGroundTruthPipelineRecoversPopulation(t *testing.T) {
	// Generate truth, run the §V-A pipeline (perfect detector, stride 1),
	// and check the recovered population matches.
	const numFrames = 40_000
	instances, err := synth.Generate(synth.GridSpec{
		NumInstances: 60,
		NumFrames:    numFrames,
		MeanDuration: 400,
		SkewFraction: 0.5,
		Class:        "car",
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := track.NewIndex(instances, numFrames, 0)
	if err != nil {
		t.Fatal(err)
	}
	detector, err := detect.Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildGroundTruth(detector, numFrames, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesScanned != numFrames {
		t.Fatalf("scanned %d frames", res.FramesScanned)
	}
	cmp := CompareToTruth(res.Instances, instances)["car"]
	if cmp.CountRatio < 0.9 || cmp.CountRatio > 1.15 {
		t.Fatalf("recovered %d of %d instances (ratio %v)", cmp.RecoveredCount, cmp.TrueCount, cmp.CountRatio)
	}
}

func TestGroundTruthPipelineWithNoiseAndStride(t *testing.T) {
	// Noisy detector + stride 5: recovery degrades gracefully, not
	// catastrophically (the paper's fine-tuning discussion).
	const numFrames = 40_000
	instances, err := synth.Generate(synth.GridSpec{
		NumInstances: 60,
		NumFrames:    numFrames,
		MeanDuration: 400,
		Class:        "car",
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := track.NewIndex(instances, numFrames, 0)
	if err != nil {
		t.Fatal(err)
	}
	detector, err := detect.NewSim(idx, 9, detect.WithNoise(detect.NoiseModel{
		MissProb: 0.1, JitterFrac: 0.02, FalsePositiveRate: 0.01,
		MinScore: 0.5, MaxScore: 0.9,
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildGroundTruth(detector, numFrames, 5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesScanned != numFrames/5 {
		t.Fatalf("scanned %d frames", res.FramesScanned)
	}
	cmp := CompareToTruth(res.Instances, instances)["car"]
	if cmp.CountRatio < 0.6 || cmp.CountRatio > 2.0 {
		t.Fatalf("recovered ratio %v (got %d of %d)", cmp.CountRatio, cmp.RecoveredCount, cmp.TrueCount)
	}
}

func TestBuildGroundTruthValidation(t *testing.T) {
	if _, err := BuildGroundTruth(nil, 10, 1, Config{}); err == nil {
		t.Error("nil detector accepted")
	}
	idx, _ := track.NewIndex(nil, 10, 0)
	d, _ := detect.Perfect(idx)
	if _, err := BuildGroundTruth(d, 0, 1, Config{}); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestCompareToTruthUnknownClass(t *testing.T) {
	rec := []track.Instance{{ID: 0, Class: "ghost", Start: 0, End: 1,
		StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)}}
	cmp := CompareToTruth(rec, nil)
	if cmp["ghost"].RecoveredCount != 1 || cmp["ghost"].TrueCount != 0 {
		t.Fatalf("cmp = %+v", cmp)
	}
}
