package sorttrack

import (
	"testing"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

// TestAssociationGoldenTrace freezes the tracker's exact association
// behavior on a fixed two-object scene: object A drifts right at 6 px/frame,
// object B drifts left at the same rate in a separate lane and misses frame
// 3 (the filter must carry it across the gap), and frame 5 contains a
// one-frame false positive that MinHits suppresses. The expected tracks —
// IDs, endpoints, hit counts and full per-frame paths — are exact values;
// any change to the cost matrix, the Hungarian solve, the gating or the
// lifecycle shows up here.
func TestAssociationGoldenTrace(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	det := func(f int64, x, y float64) track.Detection {
		return track.Detection{Frame: f, Class: "car", Box: geom.Rect(x, y, 40, 30), Score: 0.9, TruthID: -1}
	}
	for f := int64(0); f < 8; f++ {
		var dets []track.Detection
		dets = append(dets, det(f, 100+6*float64(f), 50))
		if f != 3 {
			dets = append(dets, det(f, 400-6*float64(f), 200))
		}
		if f == 5 {
			dets = append(dets, det(f, 700, 400))
		}
		if err := tr.Observe(f, dets); err != nil {
			t.Fatalf("Observe(%d): %v", f, err)
		}
	}
	got := tr.Flush()
	if len(got) != 2 {
		t.Fatalf("got %d tracks, want 2 (false positive must be suppressed): %+v", len(got), got)
	}

	wantA := Track{
		ID: 0, Class: "car", Start: 0, End: 7, Hits: 8,
		StartBox: geom.Rect(100, 50, 40, 30),
		EndBox:   geom.Rect(142, 50, 40, 30),
	}
	wantB := Track{
		ID: 1, Class: "car", Start: 0, End: 7, Hits: 7,
		StartBox: geom.Rect(400, 200, 40, 30),
		EndBox:   geom.Rect(358, 200, 40, 30),
	}
	checkTrack(t, got[0], wantA)
	checkTrack(t, got[1], wantB)

	// Full golden paths: A hits every frame, B skips frame 3.
	wantFramesA := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	wantFramesB := []int64{0, 1, 2, 4, 5, 6, 7}
	checkPath(t, "A", got[0].Path, wantFramesA, func(f int64) geom.Box { return geom.Rect(100+6*float64(f), 50, 40, 30) })
	checkPath(t, "B", got[1].Path, wantFramesB, func(f int64) geom.Box { return geom.Rect(400-6*float64(f), 200, 40, 30) })
}

func checkTrack(t *testing.T, got, want Track) {
	t.Helper()
	if got.ID != want.ID || got.Class != want.Class || got.Start != want.Start ||
		got.End != want.End || got.Hits != want.Hits ||
		got.StartBox != want.StartBox || got.EndBox != want.EndBox {
		t.Errorf("track %d: got %+v, want %+v", want.ID, got, want)
	}
}

func checkPath(t *testing.T, name string, path []PathPoint, frames []int64, boxAt func(int64) geom.Box) {
	t.Helper()
	if len(path) != len(frames) {
		t.Fatalf("track %s: path has %d points, want %d", name, len(path), len(frames))
	}
	for i, f := range frames {
		if path[i].Frame != f {
			t.Errorf("track %s point %d: frame %d, want %d", name, i, path[i].Frame, f)
		}
		if path[i].Box != boxAt(f) {
			t.Errorf("track %s point %d: box %+v, want %+v", name, i, path[i].Box, boxAt(f))
		}
	}
}

// TestAssociationCrossingLanes pins the identity-preservation behavior when
// two same-class objects pass close by: the IoU gate plus Kalman prediction
// must keep each track on its own object rather than swapping.
func TestAssociationCrossingLanes(t *testing.T) {
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Two objects on parallel lanes 50 px apart moving opposite ways; boxes
	// are 40 px tall so the lanes never overlap and IoU gating keeps them
	// separate for the whole pass.
	for f := int64(0); f < 10; f++ {
		dets := []track.Detection{
			{Frame: f, Class: "car", Box: geom.Rect(100+10*float64(f), 100, 40, 40), Score: 0.9, TruthID: -1},
			{Frame: f, Class: "car", Box: geom.Rect(200-10*float64(f), 150, 40, 40), Score: 0.9, TruthID: -1},
		}
		if err := tr.Observe(f, dets); err != nil {
			t.Fatalf("Observe(%d): %v", f, err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks, want 2: %+v", len(tracks), tracks)
	}
	if tracks[0].Hits != 10 || tracks[1].Hits != 10 {
		t.Errorf("tracks fragmented: hits %d and %d, want 10 and 10", tracks[0].Hits, tracks[1].Hits)
	}
	if y := tracks[0].EndBox.Y1; y != 100 {
		t.Errorf("track 0 ended on lane y=%v, want 100 (identity swap?)", y)
	}
	if y := tracks[1].EndBox.Y1; y != 150 {
		t.Errorf("track 1 ended on lane y=%v, want 150 (identity swap?)", y)
	}
}
