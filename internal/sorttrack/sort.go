// Package sorttrack implements a SORT-style multi-object tracker (Bewley et
// al., the paper's reference [15]): per-frame association of detections to
// Kalman-predicted track positions by IoU via the Hungarian algorithm, with
// the usual track lifecycle (tentative until minHits, dropped after maxAge
// frames without a match).
//
// The paper uses exactly this machinery twice: to build ground truth by
// scanning every frame with a reference detector and matching boxes across
// adjacent frames (§V-A), and as the model for the query-time discriminator
// (§II-B). The ground-truth builder in this package reproduces the former
// end to end.
package sorttrack

import (
	"fmt"

	"github.com/exsample/exsample/internal/assign"
	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/kalman"
	"github.com/exsample/exsample/internal/track"
)

// Config tunes the tracker.
type Config struct {
	// IoUThreshold is the minimum overlap for a detection to match a track
	// prediction (SORT default 0.3).
	IoUThreshold float64
	// MaxAge is how many frames a track survives without a matched
	// detection before being finalized.
	MaxAge int64
	// MinHits is how many matched detections a track needs before it is
	// emitted at all (suppresses one-frame false positives).
	MinHits int
}

// DefaultConfig returns SORT's usual operating point.
func DefaultConfig() Config {
	return Config{IoUThreshold: 0.3, MaxAge: 3, MinHits: 2}
}

// Validate reports an error for out-of-range parameters.
func (c Config) Validate() error {
	if c.IoUThreshold <= 0 || c.IoUThreshold > 1 {
		return fmt.Errorf("sorttrack: IoUThreshold %v outside (0,1]", c.IoUThreshold)
	}
	if c.MaxAge < 1 {
		return fmt.Errorf("sorttrack: MaxAge %d < 1", c.MaxAge)
	}
	if c.MinHits < 1 {
		return fmt.Errorf("sorttrack: MinHits %d < 1", c.MinHits)
	}
	return nil
}

// PathPoint is one matched observation along a track.
type PathPoint struct {
	Frame int64
	Box   geom.Box
}

// Track is one finished object track.
type Track struct {
	ID    int
	Class string
	// Start and End are the first and last frames with matched detections.
	Start, End int64
	// StartBox and EndBox are the boxes at those frames.
	StartBox, EndBox geom.Box
	// Hits is the number of matched detections.
	Hits int
	// Path lists every matched observation in frame order (raw detection
	// boxes, not Kalman estimates). Consumers that need a denoised
	// trajectory — the track-predicate evaluator does — smooth it with
	// kalman.Smooth.
	Path []PathPoint
}

// Duration returns the track's length in frames.
func (t Track) Duration() int64 { return t.End - t.Start + 1 }

// liveTrack is the tracker's internal per-object state.
type liveTrack struct {
	id        int
	class     string
	filter    *kalman.BoxFilter
	start     int64
	lastHit   int64
	startBox  geom.Box
	lastBox   geom.Box
	hits      int
	predicted geom.Box
	path      []PathPoint
}

// Tracker ingests detections frame by frame and emits finished tracks.
// Frames must be fed in strictly ascending order; frames with no detections
// may be skipped (tracks age by the frame gap).
type Tracker struct {
	cfg       Config
	lastFrame int64
	nextID    int
	live      []*liveTrack
	finished  []Track
}

// New creates a tracker. A zero Config selects DefaultConfig.
func New(cfg Config) (*Tracker, error) {
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, lastFrame: -1}, nil
}

// Observe feeds one frame's detections. Detections of different classes
// never match the same track.
func (t *Tracker) Observe(frame int64, dets []track.Detection) error {
	if frame <= t.lastFrame {
		return fmt.Errorf("sorttrack: frame %d not after %d", frame, t.lastFrame)
	}
	dt := float64(frame - t.lastFrame)
	if t.lastFrame < 0 {
		dt = 1
	}
	t.lastFrame = frame

	// Predict all live tracks forward.
	for _, lt := range t.live {
		lt.predicted = lt.filter.Predict(dt)
	}

	// Build the association cost matrix: rows = detections, cols = live
	// tracks; cost = 1 - IoU, infeasible below the gate or across classes.
	matchedDet := make([]bool, len(dets))
	if len(dets) > 0 && len(t.live) > 0 {
		cost := make([][]float64, len(dets))
		for i, det := range dets {
			cost[i] = make([]float64, len(t.live))
			for j, lt := range t.live {
				iou := geom.IoU(det.Box, lt.predicted)
				if det.Class != lt.class || iou < t.cfg.IoUThreshold {
					cost[i][j] = assign.Infeasible
				} else {
					cost[i][j] = 1 - iou
				}
			}
		}
		rowTo, _, err := assign.Solve(cost)
		if err != nil {
			return err
		}
		for i, j := range rowTo {
			if j < 0 {
				continue
			}
			lt := t.live[j]
			lt.filter.Update(dets[i].Box)
			lt.lastHit = frame
			lt.lastBox = dets[i].Box
			lt.hits++
			lt.path = append(lt.path, PathPoint{Frame: frame, Box: dets[i].Box})
			matchedDet[i] = true
		}
	}

	// Unmatched detections start new tracks.
	for i, det := range dets {
		if matchedDet[i] {
			continue
		}
		bf, err := kalman.NewBoxFilter(det.Box, 0, 0)
		if err != nil {
			return err
		}
		t.live = append(t.live, &liveTrack{
			id:       t.nextID,
			class:    det.Class,
			filter:   bf,
			start:    frame,
			lastHit:  frame,
			startBox: det.Box,
			lastBox:  det.Box,
			hits:     1,
			path:     []PathPoint{{Frame: frame, Box: det.Box}},
		})
		t.nextID++
	}

	// Retire tracks that exceeded max age.
	kept := t.live[:0]
	for _, lt := range t.live {
		if frame-lt.lastHit > t.cfg.MaxAge {
			t.finalize(lt)
			continue
		}
		kept = append(kept, lt)
	}
	t.live = kept
	return nil
}

func (t *Tracker) finalize(lt *liveTrack) {
	if lt.hits < t.cfg.MinHits {
		return // suppressed (likely a false positive)
	}
	t.finished = append(t.finished, Track{
		ID:       lt.id,
		Class:    lt.class,
		Start:    lt.start,
		End:      lt.lastHit,
		StartBox: lt.startBox,
		EndBox:   lt.lastBox,
		Hits:     lt.hits,
		Path:     lt.path,
	})
}

// Flush finalizes all live tracks (call after the last frame) and returns
// every finished track in creation order.
func (t *Tracker) Flush() []Track {
	for _, lt := range t.live {
		t.finalize(lt)
	}
	t.live = nil
	return t.finished
}

// Finished returns the tracks finalized so far without flushing live ones.
func (t *Tracker) Finished() []Track { return t.finished }
