package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func box(vals ...float64) Box { return Box{vals[0], vals[1], vals[2], vals[3]} }

func TestRect(t *testing.T) {
	b := Rect(10, 20, 30, 40)
	if b.X1 != 10 || b.Y1 != 20 || b.X2 != 40 || b.Y2 != 60 {
		t.Fatalf("Rect = %+v", b)
	}
	if b.Width() != 30 || b.Height() != 40 {
		t.Fatalf("dims = %v x %v", b.Width(), b.Height())
	}
}

func TestAreaAndValidity(t *testing.T) {
	if a := box(0, 0, 2, 3).Area(); a != 6 {
		t.Errorf("area = %v", a)
	}
	if box(2, 0, 0, 3).Valid() {
		t.Error("inverted box reported valid")
	}
	if a := box(2, 0, 0, 3).Area(); a != 0 {
		t.Errorf("invalid box area = %v", a)
	}
	if (Box{math.NaN(), 0, 1, 1}).Valid() {
		t.Error("NaN box reported valid")
	}
}

func TestIoUIdentical(t *testing.T) {
	b := box(5, 5, 15, 25)
	if got := IoU(b, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("IoU(b,b) = %v", got)
	}
}

func TestIoUDisjoint(t *testing.T) {
	if got := IoU(box(0, 0, 1, 1), box(2, 2, 3, 3)); got != 0 {
		t.Fatalf("disjoint IoU = %v", got)
	}
	// Touching edges share zero area.
	if got := IoU(box(0, 0, 1, 1), box(1, 0, 2, 1)); got != 0 {
		t.Fatalf("edge-touching IoU = %v", got)
	}
}

func TestIoUHalfOverlap(t *testing.T) {
	// Two unit-height boxes overlapping half their width: inter=0.5, union=1.5.
	got := IoU(box(0, 0, 1, 1), box(0.5, 0, 1.5, 1))
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("IoU = %v, want 1/3", got)
	}
}

func TestIoUZeroAreaBoxes(t *testing.T) {
	if got := IoU(box(1, 1, 1, 1), box(1, 1, 1, 1)); got != 0 {
		t.Fatalf("degenerate IoU = %v", got)
	}
}

func genBox(v [4]float64) Box {
	// Map arbitrary floats into a bounded, valid box.
	norm := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(math.Abs(x), 1000)
	}
	x1, y1 := norm(v[0]), norm(v[1])
	w, h := norm(v[2])+0.001, norm(v[3])+0.001
	return Box{x1, y1, x1 + w, y1 + h}
}

func TestIoUProperties(t *testing.T) {
	// Symmetry and range, for arbitrary valid boxes.
	f := func(a, b [4]float64) bool {
		ba, bb := genBox(a), genBox(b)
		ab := IoU(ba, bb)
		ba2 := IoU(bb, ba)
		if math.Abs(ab-ba2) > 1e-12 {
			return false
		}
		return ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionContainedInUnion(t *testing.T) {
	f := func(a, b [4]float64) bool {
		ba, bb := genBox(a), genBox(b)
		inter := ba.Intersect(bb)
		union := ba.Union(bb)
		if inter.Valid() && inter.Area() > 0 {
			// Intersection fits inside both, union contains both.
			if inter.Area() > ba.Area()+1e-9 || inter.Area() > bb.Area()+1e-9 {
				return false
			}
		}
		return union.Area() >= ba.Area()-1e-9 && union.Area() >= bb.Area()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpointsAndMidpoint(t *testing.T) {
	a := box(0, 0, 10, 10)
	b := box(100, 50, 120, 80)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %+v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %+v", got)
	}
	mid := Lerp(a, b, 0.5)
	want := box(50, 25, 65, 45)
	if mid != want {
		t.Errorf("Lerp t=0.5 = %+v, want %+v", mid, want)
	}
}

func TestLerpPreservesValidity(t *testing.T) {
	f := func(a, b [4]float64, traw uint8) bool {
		tt := float64(traw) / 255.0
		return Lerp(genBox(a), genBox(b), tt).Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestTranslate(t *testing.T) {
	b := box(1, 2, 3, 4).Translate(10, -1)
	if b != box(11, 1, 13, 3) {
		t.Fatalf("Translate = %+v", b)
	}
}

func TestScale(t *testing.T) {
	b := box(0, 0, 10, 10).Scale(2)
	if b != box(-5, -5, 15, 15) {
		t.Fatalf("Scale(2) = %+v", b)
	}
	if got := box(0, 0, 10, 10).Scale(1); got != box(0, 0, 10, 10) {
		t.Fatalf("Scale(1) changed box: %+v", got)
	}
	// Scaling preserves the center.
	s := box(3, 7, 13, 27).Scale(0.3)
	cx, cy := s.Center()
	if math.Abs(cx-8) > 1e-9 || math.Abs(cy-17) > 1e-9 {
		t.Fatalf("center moved: %v,%v", cx, cy)
	}
}

func TestClip(t *testing.T) {
	b := box(-5, -5, 2000, 500).Clip(1920, 1080)
	if b != box(0, 0, 1920, 500) {
		t.Fatalf("Clip = %+v", b)
	}
	if !b.Valid() {
		t.Fatal("clipped box invalid")
	}
}

func TestCenter(t *testing.T) {
	cx, cy := box(0, 0, 4, 10).Center()
	if cx != 2 || cy != 5 {
		t.Fatalf("Center = %v,%v", cx, cy)
	}
}
