package geom

import "testing"

func TestPolygonContains(t *testing.T) {
	// A concave "L" shape: the notch at the top right is outside.
	l := Polygon{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}
	cases := []struct {
		x, y float64
		want bool
	}{
		{1, 1, true},    // interior, lower block
		{3, 1, true},    // interior, right arm
		{1, 3, true},    // interior, upper arm
		{3, 3, false},   // inside the notch
		{5, 1, false},   // right of everything
		{-1, 2, false},  // left of everything
		{0, 0, true},    // vertex
		{2, 0, true},    // on bottom edge
		{4, 1, true},    // on right edge
		{2, 3, true},    // on the notch's inner edge
		{3, 2, true},    // on the notch's lower edge
		{4.5, 0, false}, // collinear with the bottom edge but past it
	}
	for _, c := range cases {
		if got := l.Contains(c.x, c.y); got != c.want {
			t.Errorf("Contains(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestPolygonContainsWindingInvariant(t *testing.T) {
	cw := Polygon{{0, 0}, {0, 3}, {3, 3}, {3, 0}}
	ccw := Polygon{{0, 0}, {3, 0}, {3, 3}, {0, 3}}
	for x := -1.0; x <= 4; x += 0.5 {
		for y := -1.0; y <= 4; y += 0.5 {
			if cw.Contains(x, y) != ccw.Contains(x, y) {
				t.Fatalf("winding changed Contains(%v,%v)", x, y)
			}
		}
	}
}

func TestPolygonValid(t *testing.T) {
	if (Polygon{{0, 0}, {1, 1}}).Valid() {
		t.Error("2-vertex polygon reported valid")
	}
	if (Polygon{{0, 0}, {1, 1}, {2, 2}}).Valid() {
		t.Error("collinear (zero-area) polygon reported valid")
	}
	if !(Polygon{{0, 0}, {1, 0}, {0, 1}}).Valid() {
		t.Error("triangle reported invalid")
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, o Segment
		want bool
	}{
		// Proper crossing.
		{Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, true},
		// Parallel, disjoint.
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{0, 1}, Point{2, 1}}, false},
		// Shared endpoint.
		{Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1, 1}, Point{2, 0}}, true},
		// T-junction: endpoint on interior.
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{1, 1}}, true},
		// Collinear, overlapping.
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{3, 0}}, true},
		// Collinear, disjoint.
		{Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, false},
		// Near miss.
		{Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{2, 0}, Point{3, 1}}, false},
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.o); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.o.Intersects(c.s); got != c.want {
			t.Errorf("case %d: reversed Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestBoxPolygonRoundTrip(t *testing.T) {
	b := Box{X1: 1, Y1: 2, X2: 5, Y2: 7}
	poly := BoxPolygon(b)
	for x := 0.0; x <= 6; x += 0.5 {
		for y := 1.0; y <= 8; y += 0.5 {
			inBox := x >= b.X1 && x <= b.X2 && y >= b.Y1 && y <= b.Y2
			if got := poly.Contains(x, y); got != inBox {
				t.Fatalf("BoxPolygon.Contains(%v,%v) = %v, box test = %v", x, y, got, inBox)
			}
		}
	}
}
