// Package geom provides the 2-D bounding-box primitives used by the
// simulated object detector and the SORT-style IoU discriminator: boxes,
// intersection-over-union, interpolation, and jitter.
package geom

import "math"

// Box is an axis-aligned bounding box in pixel coordinates. X1,Y1 is the
// top-left corner and X2,Y2 the bottom-right; a valid box has X1 <= X2 and
// Y1 <= Y2.
type Box struct {
	X1, Y1, X2, Y2 float64
}

// Rect constructs a box from a corner plus width and height.
func Rect(x, y, w, h float64) Box {
	return Box{X1: x, Y1: y, X2: x + w, Y2: y + h}
}

// Valid reports whether the box is well-formed (non-negative extent and no
// NaN coordinates).
func (b Box) Valid() bool {
	if math.IsNaN(b.X1) || math.IsNaN(b.Y1) || math.IsNaN(b.X2) || math.IsNaN(b.Y2) {
		return false
	}
	return b.X1 <= b.X2 && b.Y1 <= b.Y2
}

// Width returns the horizontal extent of the box.
func (b Box) Width() float64 { return b.X2 - b.X1 }

// Height returns the vertical extent of the box.
func (b Box) Height() float64 { return b.Y2 - b.Y1 }

// Area returns the area of the box; it is zero for degenerate boxes.
func (b Box) Area() float64 {
	if !b.Valid() {
		return 0
	}
	return b.Width() * b.Height()
}

// Center returns the box's center point.
func (b Box) Center() (x, y float64) {
	return (b.X1 + b.X2) / 2, (b.Y1 + b.Y2) / 2
}

// Intersect returns the intersection of two boxes. If the boxes do not
// overlap the result has zero area (and may be invalid).
func (b Box) Intersect(o Box) Box {
	return Box{
		X1: math.Max(b.X1, o.X1),
		Y1: math.Max(b.Y1, o.Y1),
		X2: math.Min(b.X2, o.X2),
		Y2: math.Min(b.Y2, o.Y2),
	}
}

// Union returns the smallest box containing both boxes.
func (b Box) Union(o Box) Box {
	return Box{
		X1: math.Min(b.X1, o.X1),
		Y1: math.Min(b.Y1, o.Y1),
		X2: math.Max(b.X2, o.X2),
		Y2: math.Max(b.Y2, o.Y2),
	}
}

// IoU returns the intersection-over-union of two boxes, in [0, 1]. Two
// degenerate (zero-area) boxes have IoU 0.
func IoU(a, b Box) float64 {
	inter := a.Intersect(b)
	if !inter.Valid() {
		return 0
	}
	ia := inter.Area()
	if ia == 0 {
		return 0
	}
	union := a.Area() + b.Area() - ia
	if union <= 0 {
		return 0
	}
	return ia / union
}

// Lerp linearly interpolates between boxes a and b; t=0 gives a, t=1 gives
// b. Used by the track model to place an object's box in frames between its
// endpoints.
func Lerp(a, b Box, t float64) Box {
	return Box{
		X1: a.X1 + (b.X1-a.X1)*t,
		Y1: a.Y1 + (b.Y1-a.Y1)*t,
		X2: a.X2 + (b.X2-a.X2)*t,
		Y2: a.Y2 + (b.Y2-a.Y2)*t,
	}
}

// Translate returns the box shifted by (dx, dy).
func (b Box) Translate(dx, dy float64) Box {
	return Box{X1: b.X1 + dx, Y1: b.Y1 + dy, X2: b.X2 + dx, Y2: b.Y2 + dy}
}

// Scale returns the box scaled about its center by factor s (> 0).
func (b Box) Scale(s float64) Box {
	cx, cy := b.Center()
	hw := b.Width() / 2 * s
	hh := b.Height() / 2 * s
	return Box{X1: cx - hw, Y1: cy - hh, X2: cx + hw, Y2: cy + hh}
}

// Clip returns the box clipped to the frame [0,w]x[0,h].
func (b Box) Clip(w, h float64) Box {
	c := Box{
		X1: math.Max(0, math.Min(b.X1, w)),
		Y1: math.Max(0, math.Min(b.Y1, h)),
		X2: math.Max(0, math.Min(b.X2, w)),
		Y2: math.Max(0, math.Min(b.Y2, h)),
	}
	return c
}
