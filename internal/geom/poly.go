package geom

import "math"

// Point is a 2-D point in pixel coordinates.
type Point struct {
	X, Y float64
}

// Valid reports whether the point has finite, non-NaN coordinates.
func (p Point) Valid() bool {
	return !math.IsNaN(p.X) && !math.IsNaN(p.Y) &&
		!math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
}

// Sub returns the vector p - o.
func (p Point) Sub(o Point) Point { return Point{X: p.X - o.X, Y: p.Y - o.Y} }

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Valid reports whether both endpoints are finite and the segment has
// nonzero length.
func (s Segment) Valid() bool {
	return s.A.Valid() && s.B.Valid() && (s.A.X != s.B.X || s.A.Y != s.B.Y)
}

// Translate returns the segment shifted by (dx, dy).
func (s Segment) Translate(dx, dy float64) Segment {
	return Segment{
		A: Point{X: s.A.X + dx, Y: s.A.Y + dy},
		B: Point{X: s.B.X + dx, Y: s.B.Y + dy},
	}
}

// cross returns the z-component of (b-a) x (c-a): positive when c lies to
// the left of the directed line a->b, negative to the right, zero when
// collinear.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether collinear point c lies within the bounding box
// of segment ab (the standard collinear-overlap test).
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// Intersects reports whether two segments share at least one point,
// touching endpoints and collinear overlap included. The predicate is
// symmetric and invariant under swapping either segment's endpoints.
func (s Segment) Intersects(o Segment) bool {
	d1 := cross(s.A, s.B, o.A)
	d2 := cross(s.A, s.B, o.B)
	d3 := cross(o.A, o.B, s.A)
	d4 := cross(o.A, o.B, s.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	if d1 == 0 && onSegment(s.A, s.B, o.A) {
		return true
	}
	if d2 == 0 && onSegment(s.A, s.B, o.B) {
		return true
	}
	if d3 == 0 && onSegment(o.A, o.B, s.A) {
		return true
	}
	if d4 == 0 && onSegment(o.A, o.B, s.B) {
		return true
	}
	return false
}

// Polygon is a simple polygon given as a vertex loop (the closing edge from
// the last vertex back to the first is implicit). Vertices may wind either
// way.
type Polygon []Point

// Valid reports whether the polygon has at least three finite vertices and
// nonzero area (a degenerate, collinear loop encloses nothing and is
// rejected by predicate validation).
func (p Polygon) Valid() bool {
	if len(p) < 3 {
		return false
	}
	for _, v := range p {
		if !v.Valid() {
			return false
		}
	}
	return p.Area() != 0
}

// Area returns the absolute shoelace area of the polygon.
func (p Polygon) Area() float64 {
	var sum float64
	for i, v := range p {
		w := p[(i+1)%len(p)]
		sum += v.X*w.Y - w.X*v.Y
	}
	return math.Abs(sum) / 2
}

// Bounds returns the polygon's axis-aligned bounding box.
func (p Polygon) Bounds() Box {
	if len(p) == 0 {
		return Box{}
	}
	b := Box{X1: p[0].X, Y1: p[0].Y, X2: p[0].X, Y2: p[0].Y}
	for _, v := range p[1:] {
		b.X1 = math.Min(b.X1, v.X)
		b.Y1 = math.Min(b.Y1, v.Y)
		b.X2 = math.Max(b.X2, v.X)
		b.Y2 = math.Max(b.Y2, v.Y)
	}
	return b
}

// Translate returns the polygon shifted by (dx, dy).
func (p Polygon) Translate(dx, dy float64) Polygon {
	out := make(Polygon, len(p))
	for i, v := range p {
		out[i] = Point{X: v.X + dx, Y: v.Y + dy}
	}
	return out
}

// Contains reports whether the point lies inside the polygon, boundary
// included. It is the even-odd ray-crossing test with an explicit
// on-boundary check, so points exactly on an edge or vertex count as
// inside regardless of winding or ray direction.
func (p Polygon) Contains(x, y float64) bool {
	if len(p) < 3 {
		return false
	}
	pt := Point{X: x, Y: y}
	inside := false
	for i, a := range p {
		b := p[(i+1)%len(p)]
		if cross(a, b, pt) == 0 && onSegment(a, b, pt) {
			return true
		}
		// Half-open vertical rule ([min(ay,by), max) per edge) counts each
		// crossing exactly once even when the ray passes through a vertex.
		if (a.Y > y) != (b.Y > y) {
			xAt := a.X + (y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if x < xAt {
				inside = !inside
			}
		}
	}
	return inside
}

// BoxPolygon returns the box's outline as a 4-vertex polygon (clockwise in
// screen coordinates). It is the round-trip bridge between the two
// containment representations: BoxPolygon(b).Contains(x, y) must agree with
// the box's own interval test for every valid box.
func BoxPolygon(b Box) Polygon {
	return Polygon{
		{X: b.X1, Y: b.Y1},
		{X: b.X2, Y: b.Y1},
		{X: b.X2, Y: b.Y2},
		{X: b.X1, Y: b.Y2},
	}
}
