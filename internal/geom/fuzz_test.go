package geom

import "testing"

// fuzzCoord decodes one byte into a small integer coordinate in [-16, 15].
// Small integers keep every intersection and containment computation exact
// in float64, so the invariants below are strict equalities, not
// tolerances.
func fuzzCoord(b byte) float64 { return float64(int(b%32) - 16) }

func fuzzPoint(a, b byte) Point { return Point{X: fuzzCoord(a), Y: fuzzCoord(b)} }

// FuzzGeomRoundTrip checks the polygon-containment and segment-intersection
// invariants the track-predicate evaluator leans on:
//
//   - Box -> BoxPolygon round trip: the polygon ray-crossing test must agree
//     with the box's own interval test at every probe point.
//   - Containment and intersection are translation-invariant.
//   - Segment intersection is symmetric and invariant under reversing either
//     segment's direction; segments sharing an endpoint always intersect;
//     intersecting segments have overlapping bounding boxes.
//
// The input decodes into a box, two segments, a probe point and an integer
// translation, all on a small integer grid so float64 arithmetic is exact.
func FuzzGeomRoundTrip(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x0a, 0x0b, 0x02, 0x02, 0x08, 0x08, 0x02, 0x08, 0x08, 0x02, 0x05, 0x05, 0x03, 0x07})
	f.Add([]byte{0x10, 0x10, 0x1f, 0x1f, 0x10, 0x18, 0x1f, 0x18, 0x14, 0x10, 0x14, 0x1f, 0x18, 0x18, 0x00, 0x00})
	f.Add([]byte{0x05, 0x05, 0x05, 0x05, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x09, 0x09, 0x05, 0x05, 0x1f, 0x01})
	f.Add([]byte{0x00, 0x1f, 0x1f, 0x00, 0x00, 0x00, 0x1f, 0x1f, 0x0f, 0x00, 0x0f, 0x1f, 0x0c, 0x0c, 0x02, 0x1d})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 16 {
			t.Skip("need 16 bytes")
		}
		p1 := fuzzPoint(data[0], data[1])
		p2 := fuzzPoint(data[2], data[3])
		box := Box{
			X1: min(p1.X, p2.X), Y1: min(p1.Y, p2.Y),
			X2: max(p1.X, p2.X), Y2: max(p1.Y, p2.Y),
		}
		s := Segment{A: fuzzPoint(data[4], data[5]), B: fuzzPoint(data[6], data[7])}
		o := Segment{A: fuzzPoint(data[8], data[9]), B: fuzzPoint(data[10], data[11])}
		probe := fuzzPoint(data[12], data[13])
		dx, dy := fuzzCoord(data[14]), fuzzCoord(data[15])

		// Box <-> polygon containment round trip, at the probe and at every
		// box corner (boundary points are the adversarial cases).
		poly := BoxPolygon(box)
		checks := []Point{probe, {box.X1, box.Y1}, {box.X2, box.Y2}, {box.X1, box.Y2}, {box.X2, box.Y1},
			{(box.X1 + box.X2) / 2, box.Y1}, {box.X1, (box.Y1 + box.Y2) / 2}}
		for _, pt := range checks {
			inBox := pt.X >= box.X1 && pt.X <= box.X2 && pt.Y >= box.Y1 && pt.Y <= box.Y2
			if got := poly.Contains(pt.X, pt.Y); got != inBox {
				t.Fatalf("BoxPolygon(%+v).Contains(%v,%v) = %v, interval test = %v", box, pt.X, pt.Y, got, inBox)
			}
			if moved := poly.Translate(dx, dy).Contains(pt.X+dx, pt.Y+dy); moved != inBox {
				t.Fatalf("translation changed containment at (%v,%v) by (%v,%v)", pt.X, pt.Y, dx, dy)
			}
		}

		// Segment intersection: symmetric, direction-invariant,
		// translation-invariant.
		got := s.Intersects(o)
		if o.Intersects(s) != got {
			t.Fatalf("Intersects asymmetric for %+v vs %+v", s, o)
		}
		rs := Segment{A: s.B, B: s.A}
		ro := Segment{A: o.B, B: o.A}
		if rs.Intersects(o) != got || s.Intersects(ro) != got || rs.Intersects(ro) != got {
			t.Fatalf("Intersects changed under endpoint reversal for %+v vs %+v", s, o)
		}
		if s.Translate(dx, dy).Intersects(o.Translate(dx, dy)) != got {
			t.Fatalf("Intersects changed under translation for %+v vs %+v", s, o)
		}

		// Segments sharing an endpoint must intersect.
		shared := Segment{A: s.A, B: o.B}
		if !s.Intersects(shared) {
			t.Fatalf("segments sharing endpoint %+v do not intersect", s.A)
		}

		// Intersecting segments must have overlapping bounding boxes.
		if got {
			sb := Box{X1: min(s.A.X, s.B.X), Y1: min(s.A.Y, s.B.Y), X2: max(s.A.X, s.B.X), Y2: max(s.A.Y, s.B.Y)}
			ob := Box{X1: min(o.A.X, o.B.X), Y1: min(o.A.Y, o.B.Y), X2: max(o.A.X, o.B.X), Y2: max(o.A.Y, o.B.Y)}
			if sb.X2 < ob.X1 || ob.X2 < sb.X1 || sb.Y2 < ob.Y1 || ob.Y2 < sb.Y1 {
				t.Fatalf("intersecting segments %+v and %+v have disjoint bounds", s, o)
			}
		}
	})
}
