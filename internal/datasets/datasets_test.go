package datasets

import (
	"testing"

	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/video"
)

func TestProfilesComplete(t *testing.T) {
	profiles := Profiles()
	if len(profiles) != 6 {
		t.Fatalf("got %d profiles, want 6", len(profiles))
	}
	// Total query count matches Table I (43 rows).
	total := 0
	names := map[string]bool{}
	for _, p := range profiles {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.NumFrames <= 0 || p.FPS <= 0 {
			t.Fatalf("profile %q has bad size/fps", p.Name)
		}
		if !p.ChunkPerFile && p.ChunkFrames <= 0 {
			t.Fatalf("profile %q has no chunk policy", p.Name)
		}
		if p.ChunkPerFile && p.ClipFrames <= 0 {
			t.Fatalf("profile %q per-file chunks without clip length", p.Name)
		}
		classes := map[string]bool{}
		for _, q := range p.Queries {
			if classes[q.Class] {
				t.Fatalf("%s: duplicate class %q", p.Name, q.Class)
			}
			classes[q.Class] = true
			if q.NumInstances <= 0 || q.MeanDuration <= 0 {
				t.Fatalf("%s/%s: bad population", p.Name, q.Class)
			}
		}
		total += len(p.Queries)
	}
	if total != 43 {
		t.Fatalf("total queries = %d, want 43 (Table I)", total)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("dashcam")
	if err != nil || p.Name != "dashcam" {
		t.Fatalf("ProfileByName(dashcam) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestQueryLookup(t *testing.T) {
	p, err := ProfileByName("amsterdam")
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.Query("boat")
	if err != nil || q.Class != "boat" {
		t.Fatalf("Query(boat) = %+v, %v", q, err)
	}
	if _, err := p.Query("spaceship"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestBuildSmallScale(t *testing.T) {
	p, err := ProfileByName("dashcam")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Build(p, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Repo.NumFrames() != ds.Index.NumFrames() {
		t.Fatalf("repo %d frames, index %d", ds.Repo.NumFrames(), ds.Index.NumFrames())
	}
	if err := video.ValidateChunks(ds.Chunks, ds.Repo.NumFrames()); err != nil {
		t.Fatal(err)
	}
	// Every query class is populated.
	for _, q := range p.Queries {
		if ds.CountByClass[q.Class] == 0 {
			t.Errorf("class %q empty", q.Class)
		}
	}
	// Instance ids globally unique.
	seen := map[int]bool{}
	for _, in := range ds.Instances {
		if seen[in.ID] {
			t.Fatalf("duplicate instance id %d", in.ID)
		}
		seen[in.ID] = true
	}
}

func TestBuildPerFileChunks(t *testing.T) {
	p, err := ProfileByName("bdd1k")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Build(p, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Chunks) != ds.Repo.NumFiles() {
		t.Fatalf("%d chunks for %d files", len(ds.Chunks), ds.Repo.NumFiles())
	}
	// Roughly 100 clips at scale 0.1.
	if len(ds.Chunks) < 80 || len(ds.Chunks) > 120 {
		t.Fatalf("chunk count = %d", len(ds.Chunks))
	}
}

func TestBuildValidation(t *testing.T) {
	p, _ := ProfileByName("dashcam")
	for _, scale := range []float64{0, -1, 1.5, 1e-6} {
		if _, err := Build(p, scale, 1); err == nil {
			t.Errorf("scale %v accepted", scale)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	p, _ := ProfileByName("bddmot")
	a, err := Build(p, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) != len(b.Instances) {
		t.Fatal("instance counts differ between builds")
	}
	for i := range a.Instances {
		if a.Instances[i] != b.Instances[i] {
			t.Fatalf("instance %d differs", i)
		}
	}
}

// Figure 6 anchors: the skew metric ordering must hold — dashcam/bicycle and
// bdd1k/motor are highly skewed, archie/car and amsterdam/boat nearly
// uniform.
func TestFigure6SkewOrdering(t *testing.T) {
	skewOf := func(profile, class string) float64 {
		t.Helper()
		p, err := ProfileByName(profile)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := Build(p, 0.25, 11)
		if err != nil {
			t.Fatal(err)
		}
		h := metrics.ChunkHistogram(ds.ClassInstances(class), ds.Chunks)
		s, err := metrics.SkewMetric(h)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	bike := skewOf("dashcam", "bicycle")
	motor := skewOf("bdd1k", "motor")
	person := skewOf("night-street", "person")
	car := skewOf("archie", "car")
	boat := skewOf("amsterdam", "boat")
	t.Logf("S: dashcam/bicycle=%.1f bdd1k/motor=%.1f night-street/person=%.1f archie/car=%.1f amsterdam/boat=%.1f",
		bike, motor, person, car, boat)
	if bike < 4 {
		t.Errorf("dashcam/bicycle S=%v, want strongly skewed", bike)
	}
	if motor < 4 {
		t.Errorf("bdd1k/motor S=%v, want strongly skewed", motor)
	}
	if person < 2 {
		t.Errorf("night-street/person S=%v, want moderately skewed", person)
	}
	if car > 2.5 {
		t.Errorf("archie/car S=%v, want near-uniform", car)
	}
	if boat > 3 {
		t.Errorf("amsterdam/boat S=%v, want low skew", boat)
	}
	if bike < person || motor < person {
		t.Error("high-skew anchors below moderate-skew anchor")
	}
	if person < car {
		t.Error("moderate-skew anchor below uniform anchor")
	}
}

func TestClassInstances(t *testing.T) {
	p, _ := ProfileByName("night-street")
	ds, err := Build(p, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	dogs := ds.ClassInstances("dog")
	if len(dogs) != ds.CountByClass["dog"] {
		t.Fatalf("ClassInstances(dog) = %d, CountByClass = %d", len(dogs), ds.CountByClass["dog"])
	}
	for _, in := range dogs {
		if in.Class != "dog" {
			t.Fatal("wrong class returned")
		}
	}
}
