// Package datasets defines synthetic equivalents of the paper's six
// evaluation datasets (§V-A): dashcam, BDD-1k, BDD MOT, amsterdam, archie
// and night-street.
//
// Real video and labels are unavailable here; what the sampler actually
// interacts with is the joint distribution of (a) how many distinct
// instances of each class exist, (b) how long each stays visible, and
// (c) how instances cluster across chunks (skew). Each profile pins those
// three per query. Where the paper reports a concrete statistic we match it:
// chunk structure (20-minute chunks for long video, one chunk per clip for
// BDD), repository sizes consistent with Table I's scan times at 100 fps,
// and the Figure 6 anchor queries (dashcam/bicycle N=249 S≈14, bdd1k/motor
// N=509 S≈19, night-street/person N=2078 S≈4.5, archie/car high-N S≈1.1,
// amsterdam/boat N=588 S≈1.6). Remaining queries get plausible populations
// consistent with their Table I time ordering.
package datasets

import (
	"fmt"
	"math"

	"github.com/exsample/exsample/internal/synth"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
)

// QuerySpec describes one object-class query on a dataset profile.
type QuerySpec struct {
	// Class is the object class searched for.
	Class string
	// NumInstances is the distinct ground-truth population N.
	NumInstances int
	// MeanDuration is the mean visibility in frames.
	MeanDuration float64
	// SkewFraction concentrates 95% of the class inside this fraction of
	// the repository (0 = uniform).
	SkewFraction float64
	// Center offsets the class's concentration region (fraction of the
	// repository; 0 = midpoint).
	Center float64
}

// Profile describes one synthetic dataset.
type Profile struct {
	// Name matches the paper's dataset name.
	Name string
	// NumFrames is the repository size at scale 1.
	NumFrames int64
	// FPS is the recording rate.
	FPS float64
	// ChunkFrames is the fixed chunk length (0 when ChunkPerFile).
	ChunkFrames int64
	// ChunkPerFile selects one chunk per clip (the BDD constraint, §V-A).
	ChunkPerFile bool
	// ClipFrames is the per-file length used when ChunkPerFile is set.
	ClipFrames int64
	// Queries lists the object classes evaluated on this dataset.
	Queries []QuerySpec
}

// Profiles returns all six dataset profiles with their Table I query lists.
func Profiles() []Profile {
	return []Profile{
		{
			// 10 hours of drive video, ~1.04M frames (2h54m scan at 100fps),
			// 20-minute chunks -> ~29 chunks.
			Name: "dashcam", NumFrames: 1_044_000, FPS: 30, ChunkFrames: 36_000,
			Queries: []QuerySpec{
				{Class: "bicycle", NumInstances: 249, MeanDuration: 60, SkewFraction: 1.0 / 16, Center: 0.30},
				{Class: "bus", NumInstances: 120, MeanDuration: 90, SkewFraction: 1.0 / 8, Center: 0.62},
				{Class: "fire hydrant", NumInstances: 300, MeanDuration: 40, SkewFraction: 1.0 / 6, Center: 0.45},
				{Class: "person", NumInstances: 2200, MeanDuration: 80, SkewFraction: 1.0 / 5, Center: 0.38},
				{Class: "stop sign", NumInstances: 350, MeanDuration: 45, SkewFraction: 1.0 / 4, Center: 0.55},
				{Class: "traffic light", NumInstances: 1400, MeanDuration: 120, SkewFraction: 1.0 / 4, Center: 0.42},
				{Class: "truck", NumInstances: 500, MeanDuration: 70, SkewFraction: 1.0 / 3, Center: 0.58},
			},
		},
		{
			// 1000 sub-minute clips, one chunk each (54m scan).
			Name: "bdd1k", NumFrames: 324_000, FPS: 30, ChunkPerFile: true, ClipFrames: 324,
			Queries: []QuerySpec{
				{Class: "bike", NumInstances: 380, MeanDuration: 45, SkewFraction: 1.0 / 10, Center: 0.35},
				{Class: "bus", NumInstances: 300, MeanDuration: 55, SkewFraction: 1.0 / 8, Center: 0.6},
				{Class: "motor", NumInstances: 509, MeanDuration: 40, SkewFraction: 1.0 / 13, Center: 0.28},
				{Class: "person", NumInstances: 3200, MeanDuration: 60, SkewFraction: 1.0 / 4, Center: 0.5},
				{Class: "rider", NumInstances: 420, MeanDuration: 45, SkewFraction: 1.0 / 9, Center: 0.33},
				{Class: "traffic light", NumInstances: 2600, MeanDuration: 70, SkewFraction: 1.0 / 3, Center: 0.5},
				{Class: "traffic sign", NumInstances: 3400, MeanDuration: 55, SkewFraction: 1.0 / 3, Center: 0.52},
				{Class: "truck", NumInstances: 900, MeanDuration: 60, SkewFraction: 1.0 / 6, Center: 0.57},
			},
		},
		{
			// 1600 clips of ~200 frames (53m scan).
			Name: "bddmot", NumFrames: 320_000, FPS: 30, ChunkPerFile: true, ClipFrames: 200,
			Queries: []QuerySpec{
				{Class: "bicycle", NumInstances: 290, MeanDuration: 50, SkewFraction: 1.0 / 9, Center: 0.4},
				{Class: "bus", NumInstances: 420, MeanDuration: 60, SkewFraction: 1.0 / 6, Center: 0.55},
				{Class: "car", NumInstances: 9000, MeanDuration: 70, SkewFraction: 1.0 / 2, Center: 0.5},
				{Class: "motorcycle", NumInstances: 210, MeanDuration: 45, SkewFraction: 1.0 / 10, Center: 0.3},
				{Class: "pedestrian", NumInstances: 3800, MeanDuration: 65, SkewFraction: 1.0 / 4, Center: 0.45},
				{Class: "rider", NumInstances: 330, MeanDuration: 50, SkewFraction: 1.0 / 8, Center: 0.36},
				{Class: "trailer", NumInstances: 90, MeanDuration: 60, SkewFraction: 1.0 / 7, Center: 0.63},
				{Class: "train", NumInstances: 40, MeanDuration: 80, SkewFraction: 1.0 / 12, Center: 0.7},
				{Class: "truck", NumInstances: 1300, MeanDuration: 60, SkewFraction: 1.0 / 4, Center: 0.55},
			},
		},
		{
			// 20 hours of canal-side static camera (~9h50m scan).
			Name: "amsterdam", NumFrames: 3_540_000, FPS: 50, ChunkFrames: 60_000,
			Queries: []QuerySpec{
				{Class: "bicycle", NumInstances: 4200, MeanDuration: 300, SkewFraction: 1.0 / 3, Center: 0.45},
				{Class: "boat", NumInstances: 588, MeanDuration: 9000, SkewFraction: 0.85, Center: 0.5},
				{Class: "car", NumInstances: 5200, MeanDuration: 450, SkewFraction: 1.0 / 3, Center: 0.5},
				{Class: "dog", NumInstances: 180, MeanDuration: 250, SkewFraction: 1.0 / 6, Center: 0.4},
				{Class: "motorcycle", NumInstances: 95, MeanDuration: 200, SkewFraction: 1.0 / 8, Center: 0.35},
				{Class: "person", NumInstances: 16000, MeanDuration: 500, SkewFraction: 1.0 / 2.5, Center: 0.5},
				{Class: "truck", NumInstances: 800, MeanDuration: 400, SkewFraction: 1.0 / 4, Center: 0.55},
			},
		},
		{
			// 20 hours of urban intersection static camera (~9h49m scan).
			Name: "archie", NumFrames: 3_534_000, FPS: 50, ChunkFrames: 60_000,
			Queries: []QuerySpec{
				{Class: "bicycle", NumInstances: 2600, MeanDuration: 280, SkewFraction: 1.0 / 3, Center: 0.48},
				{Class: "bus", NumInstances: 900, MeanDuration: 350, SkewFraction: 1.0 / 4, Center: 0.5},
				{Class: "car", NumInstances: 33546, MeanDuration: 600, SkewFraction: 0, Center: 0.5},
				{Class: "motorcycle", NumInstances: 140, MeanDuration: 220, SkewFraction: 1.0 / 7, Center: 0.42},
				{Class: "person", NumInstances: 9500, MeanDuration: 450, SkewFraction: 1.0 / 2.5, Center: 0.5},
				{Class: "truck", NumInstances: 1400, MeanDuration: 380, SkewFraction: 1.0 / 4, Center: 0.53},
			},
		},
		{
			// 20 hours of night street static camera (8h scan).
			Name: "night-street", NumFrames: 2_880_000, FPS: 40, ChunkFrames: 48_000,
			Queries: []QuerySpec{
				{Class: "bus", NumInstances: 700, MeanDuration: 300, SkewFraction: 1.0 / 4, Center: 0.45},
				{Class: "car", NumInstances: 18000, MeanDuration: 500, SkewFraction: 1.0 / 2, Center: 0.5},
				{Class: "dog", NumInstances: 110, MeanDuration: 200, SkewFraction: 1.0 / 8, Center: 0.35},
				{Class: "motorcycle", NumInstances: 45, MeanDuration: 180, SkewFraction: 1.0 / 10, Center: 0.3},
				{Class: "person", NumInstances: 2078, MeanDuration: 350, SkewFraction: 1.0 / 3.2, Center: 0.4},
				{Class: "truck", NumInstances: 950, MeanDuration: 320, SkewFraction: 1.0 / 4, Center: 0.55},
			},
		},
	}
}

// ProfileByName looks up a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("datasets: unknown profile %q", name)
}

// Query looks up a class on a profile.
func (p Profile) Query(class string) (QuerySpec, error) {
	for _, q := range p.Queries {
		if q.Class == class {
			return q, nil
		}
	}
	return QuerySpec{}, fmt.Errorf("datasets: profile %q has no class %q", p.Name, class)
}

// Dataset is a fully generated synthetic repository: frame layout, chunking,
// and ground-truth instances for every query class.
type Dataset struct {
	Profile   Profile
	Scale     float64
	Repo      *video.Repository
	Chunks    []video.Chunk
	Instances []track.Instance
	Index     *track.Index
	// CountByClass caches the distinct population per class.
	CountByClass map[string]int
}

// Build generates a dataset at the given scale (1 = paper size; smaller
// scales shrink frames and populations proportionally, preserving density
// and skew so savings ratios survive). seed controls generation.
func Build(p Profile, scale float64, seed uint64) (*Dataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datasets: scale %v outside (0,1]", scale)
	}
	numFrames := int64(float64(p.NumFrames) * scale)
	if numFrames < 1000 {
		return nil, fmt.Errorf("datasets: scale %v leaves only %d frames", scale, numFrames)
	}

	// File layout and chunks.
	var repo *video.Repository
	var chunks []video.Chunk
	var err error
	if p.ChunkPerFile {
		clip := p.ClipFrames
		numClips := int(numFrames / clip)
		if numClips < 2 {
			return nil, fmt.Errorf("datasets: scale %v leaves %d clips", scale, numClips)
		}
		counts := make([]int64, numClips)
		for i := range counts {
			counts[i] = clip
		}
		repo, err = video.NewRepository(p.FPS, counts...)
		if err != nil {
			return nil, err
		}
		chunks = repo.ChunkPerFile()
		numFrames = repo.NumFrames()
	} else {
		repo, err = video.NewRepository(p.FPS, numFrames)
		if err != nil {
			return nil, err
		}
		chunkFrames := int64(float64(p.ChunkFrames) * scale)
		if chunkFrames < 100 {
			chunkFrames = 100
		}
		chunks, err = repo.ChunkByDuration(chunkFrames)
		if err != nil {
			return nil, err
		}
	}

	// Ground truth per query class, ids offset so they are globally unique.
	var all []track.Instance
	counts := make(map[string]int, len(p.Queries))
	idBase := 0
	for qi, q := range p.Queries {
		n := int(math.Round(float64(q.NumInstances) * scale))
		if n < 5 {
			n = 5
		}
		meanDur := q.MeanDuration
		if meanDur >= float64(numFrames)/4 {
			meanDur = float64(numFrames) / 4
		}
		instances, err := synth.Generate(synth.GridSpec{
			NumInstances: n,
			NumFrames:    numFrames,
			SkewFraction: q.SkewFraction,
			Center:       q.Center,
			MeanDuration: meanDur,
			Class:        q.Class,
			Seed:         seed + uint64(qi)*1_000_003,
		})
		if err != nil {
			return nil, fmt.Errorf("datasets: %s/%s: %w", p.Name, q.Class, err)
		}
		for i := range instances {
			instances[i].ID = idBase + i
		}
		idBase += len(instances)
		counts[q.Class] = len(instances)
		all = append(all, instances...)
	}
	idx, err := track.NewIndex(all, numFrames, 0)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Profile:      p,
		Scale:        scale,
		Repo:         repo,
		Chunks:       chunks,
		Instances:    all,
		Index:        idx,
		CountByClass: counts,
	}, nil
}

// ClassInstances returns the ground-truth instances of one class.
func (d *Dataset) ClassInstances(class string) []track.Instance {
	return track.FilterClass(d.Instances, class)
}
