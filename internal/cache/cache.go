// Package cache memoizes detector outputs across queries.
//
// The simulated (and any stateless real) detector is deterministic per
// (source, class, frame), so when overlapping queries sample the same frame
// the second inference is pure waste — the paper's cost model charges it
// all the same. This package provides a bounded, sharded LRU keyed by
// exactly that triple: concurrent queries Get before running the detector
// and Put after, and a hit is charged decode-only cost by the caller.
//
// The cache holds detector output verbatim. Cached slices are shared
// between queries and MUST be treated as immutable by callers; the
// discriminator consumes detections by value, so the query pipeline
// satisfies this naturally.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/exsample/exsample/internal/track"
)

// Key identifies one detector invocation. Source disambiguates repositories
// (every open source gets a unique id), Class the per-query detector head.
type Key struct {
	Source uint64
	Class  string
	Frame  int64
}

// numShards is the lock-striping factor. 16 keeps contention negligible for
// worker pools an order of magnitude larger while wasting at most 15 spare
// entries of capacity.
const numShards = 16

// Cache is a bounded, sharded LRU. All methods are safe for concurrent use.
type Cache struct {
	shards    [numShards]lruShard
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// presence tracks, per (source, class), how many resident entries fall
	// into each fixed-width frame bucket — the cache-aware sampler's
	// per-chunk cached-count signal (see CountRange). It is maintained on
	// the Put/eviction path only, so the allocation-free Get hit path is
	// untouched.
	presMu   sync.RWMutex
	presence map[presenceKey][]int32
}

// presenceBucketShift fixes the presence-index granularity at 1024 frames
// per bucket: coarse enough that the whole index for an hours-long source
// is a few kilobytes, fine enough that chunk-level cached fractions are
// meaningful (chunks are typically thousands of frames).
const presenceBucketShift = 10

type presenceKey struct {
	source uint64
	class  string
}

type lruShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	idx map[Key]*list.Element
}

type entry struct {
	key  Key
	dets []track.Detection
}

// New creates a cache bounding the total entry count to roughly capacity
// (capacity is split evenly across the lock shards, rounding up).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	per := (capacity + numShards - 1) / numShards
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].ll = list.New()
		c.shards[i].idx = make(map[Key]*list.Element)
	}
	return c
}

// shard picks the lock shard for a key by hashing all three components.
func (c *Cache) shard(k Key) *lruShard {
	h := k.Source*0x9e3779b97f4a7c15 ^ uint64(k.Frame)*0xbf58476d1ce4e5b9
	for i := 0; i < len(k.Class); i++ {
		h = (h ^ uint64(k.Class[i])) * 0x100000001b3
	}
	h ^= h >> 29
	return &c.shards[h%numShards]
}

// Get returns the memoized detections for a key. The returned slice is
// shared — callers must not mutate it. A nil slice with ok true is a valid
// memoized "no detections" result.
func (c *Cache) Get(k Key) (dets []track.Detection, ok bool) {
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.idx[k]
	if ok {
		s.ll.MoveToFront(el)
		dets = el.Value.(*entry).dets
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return dets, ok
}

// Put memoizes detections for a key, evicting the least recently used entry
// of the key's shard when full. Re-putting an existing key refreshes its
// recency (the value is identical by construction — detectors are
// deterministic).
func (c *Cache) Put(k Key, dets []track.Detection) {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.idx[k]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*entry).dets = dets
		s.mu.Unlock()
		return
	}
	evicted := false
	var evictedKey Key
	if s.ll.Len() >= s.cap {
		back := s.ll.Back()
		if back != nil {
			evictedKey = back.Value.(*entry).key
			delete(s.idx, evictedKey)
			s.ll.Remove(back)
			evicted = true
		}
	}
	s.idx[k] = s.ll.PushFront(&entry{key: k, dets: dets})
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
		c.presAdd(evictedKey, -1)
	}
	c.presAdd(k, 1)
}

// presAdd adjusts the presence bucket covering a key's frame. Called
// outside the shard lock (insert and eviction only — never on the hit
// path), so the presence mutex never nests inside a shard mutex.
func (c *Cache) presAdd(k Key, delta int32) {
	b := int(k.Frame >> presenceBucketShift)
	if b < 0 {
		return
	}
	pk := presenceKey{source: k.Source, class: k.Class}
	c.presMu.Lock()
	if c.presence == nil {
		c.presence = make(map[presenceKey][]int32)
	}
	buckets := c.presence[pk]
	for len(buckets) <= b {
		buckets = append(buckets, 0)
	}
	buckets[b] += delta
	c.presence[pk] = buckets
	c.presMu.Unlock()
}

// CountRange reports approximately how many entries for (source, class) are
// resident with frames in [start, end): the sum of every presence bucket the
// range overlaps. Partial buckets at the edges are counted whole — the
// value is a sampling signal (which chunk is warmer), not an exact census.
func (c *Cache) CountRange(source uint64, class string, start, end int64) int {
	if end <= start || start < 0 {
		return 0
	}
	lo := int(start >> presenceBucketShift)
	hi := int((end - 1) >> presenceBucketShift)
	c.presMu.RLock()
	defer c.presMu.RUnlock()
	buckets := c.presence[presenceKey{source: source, class: class}]
	if len(buckets) == 0 {
		return 0
	}
	if hi >= len(buckets) {
		hi = len(buckets) - 1
	}
	n := 0
	for b := lo; b <= hi && b < len(buckets); b++ {
		n += int(buckets[b])
	}
	return n
}

// Stats is a snapshot of the cache's aggregate counters.
type Stats struct {
	// Hits and Misses count Get outcomes since construction.
	Hits, Misses int64
	// Evictions counts entries displaced by capacity pressure.
	Evictions int64
	// Entries is the current resident entry count.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.idx)
		s.mu.Unlock()
	}
	return st
}
