package cache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/exsample/exsample/internal/track"
)

func det(frame int64, score float64) []track.Detection {
	return []track.Detection{{Frame: frame, Class: "car", Score: score}}
}

func TestCacheGetPut(t *testing.T) {
	c := New(64)
	k := Key{Source: 1, Class: "car", Frame: 42}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put(k, det(42, 0.9))
	got, ok := c.Get(k)
	if !ok || len(got) != 1 || got[0].Frame != 42 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	// Nil detections are a valid memoized result.
	empty := Key{Source: 1, Class: "car", Frame: 43}
	c.Put(empty, nil)
	if got, ok := c.Get(empty); !ok || got != nil {
		t.Fatalf("memoized empty result = %v, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheKeysAreDistinct(t *testing.T) {
	c := New(64)
	base := Key{Source: 1, Class: "car", Frame: 7}
	c.Put(base, det(7, 0.5))
	for _, k := range []Key{
		{Source: 2, Class: "car", Frame: 7},
		{Source: 1, Class: "bus", Frame: 7},
		{Source: 1, Class: "car", Frame: 8},
	} {
		if _, ok := c.Get(k); ok {
			t.Errorf("key %+v aliased %+v", k, base)
		}
	}
}

func TestCacheBoundedWithLRUEviction(t *testing.T) {
	// One entry per shard's capacity: total capacity 16 over 16 shards is
	// one entry each, so hammering one class/source overflows shards fast.
	c := New(16)
	for f := int64(0); f < 1000; f++ {
		c.Put(Key{Source: 1, Class: "car", Frame: f}, det(f, 0.5))
	}
	st := c.Stats()
	if st.Entries > 16 {
		t.Fatalf("cache holds %d entries, capacity 16", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
	// Recency: re-touch a key, overflow its shard, and expect the touched
	// key to survive over the untouched one. Find two keys in one shard.
	c2 := New(numShards) // one slot per shard
	var same []Key
	want := c2.shard(Key{Source: 1, Class: "car", Frame: 0})
	for f := int64(0); len(same) < 2 && f < 10000; f++ {
		k := Key{Source: 1, Class: "car", Frame: f}
		if c2.shard(k) == want {
			same = append(same, k)
		}
	}
	if len(same) < 2 {
		t.Skip("could not find two keys sharing a shard")
	}
	c2.Put(same[0], det(same[0].Frame, 0.1))
	c2.Put(same[1], det(same[1].Frame, 0.2)) // evicts same[0] (cap 1)
	if _, ok := c2.Get(same[0]); ok {
		t.Fatal("evicted key still resident")
	}
	if _, ok := c2.Get(same[1]); !ok {
		t.Fatal("most recent key evicted")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := New(4096) // comfortably holds the 1000-key working set
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				f := int64(i % 500)
				k := Key{Source: uint64(g % 2), Class: "car", Frame: f}
				if dets, ok := c.Get(k); ok {
					if len(dets) != 1 || dets[0].Frame != f {
						panic(fmt.Sprintf("corrupt cached value for frame %d: %v", f, dets))
					}
					continue
				}
				c.Put(k, det(f, 0.5))
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Fatalf("hit rate %v out of range", st.HitRate())
	}
}
