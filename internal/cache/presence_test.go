package cache

import "testing"

// Tests for the presence index behind CountRange — the cache-aware
// sampler's per-chunk warmth signal.

func TestCountRangeTracksPuts(t *testing.T) {
	c := New(1 << 12)
	// 3 entries in bucket 0 ([0, 1024)), 2 in bucket 4 ([4096, 5120)).
	for _, f := range []int64{0, 100, 1023, 4096, 5000} {
		c.Put(Key{Source: 1, Class: "car", Frame: f}, det(f, 0.5))
	}
	cases := []struct {
		start, end int64
		want       int
	}{
		{0, 1024, 3},
		{0, 5120, 5},
		{4096, 5120, 2},
		{1024, 4096, 0},  // middle buckets are empty
		{100, 200, 3},    // partial buckets count whole (approximate by design)
		{5120, 10000, 0}, // past every entry
		{-5, 100, 0},     // negative start is rejected
		{50, 50, 0},      // empty range
	}
	for _, tc := range cases {
		if got := c.CountRange(1, "car", tc.start, tc.end); got != tc.want {
			t.Errorf("CountRange(%d, %d) = %d, want %d", tc.start, tc.end, got, tc.want)
		}
	}
	// Other sources and classes are invisible.
	if got := c.CountRange(2, "car", 0, 5120); got != 0 {
		t.Errorf("wrong source counted %d", got)
	}
	if got := c.CountRange(1, "bus", 0, 5120); got != 0 {
		t.Errorf("wrong class counted %d", got)
	}
}

func TestCountRangeIdempotentOverwrite(t *testing.T) {
	// Re-putting a resident key must not double-count its bucket.
	c := New(1 << 12)
	k := Key{Source: 1, Class: "car", Frame: 10}
	c.Put(k, det(10, 0.5))
	c.Put(k, det(10, 0.9))
	if got := c.CountRange(1, "car", 0, 1024); got != 1 {
		t.Fatalf("overwritten key counted %d times, want 1", got)
	}
}

func TestCountRangeDecrementsOnEviction(t *testing.T) {
	// The presence index follows evictions: a bucket whose entries were
	// displaced stops reporting them, so cache-aware sampling never chases
	// chunks whose warmth has rotted away.
	c := New(numShards) // one slot per shard: every colliding put evicts
	var total int64 = 20000
	for f := int64(0); f < total; f++ {
		c.Put(Key{Source: 1, Class: "car", Frame: f}, det(f, 0.5))
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions at capacity 1 per shard")
	}
	if got := c.CountRange(1, "car", 0, total); got != st.Entries {
		t.Fatalf("presence index reports %d entries, cache holds %d", got, st.Entries)
	}
}
