package shard

import (
	"testing"

	"github.com/exsample/exsample/internal/video"
)

// refPart is the fuzz harness's reference model of one attached shard: the
// inputs New/Extend were given, kept so every address translation can be
// checked against first principles after each mutation.
type refPart struct {
	frames int64
	chunks []video.Chunk
	bound  int
}

// buildPart derives one shard description from two fuzz bytes: a frame
// count in [1, 256], a chunk split in [1, 8] pieces and a truth-id bound in
// [0, 15]. Every byte pair yields a valid part, so the fuzzer explores
// sequences rather than fighting validation.
func buildPart(a, b byte) refPart {
	frames := int64(a) + 1
	splits := int(b&0x07) + 1
	if int64(splits) > frames {
		splits = int(frames)
	}
	chunks, err := video.SplitRange(0, frames, splits)
	if err != nil {
		panic(err)
	}
	return refPart{frames: frames, chunks: chunks, bound: int(b >> 4)}
}

func (p refPart) part() Part {
	return Part{NumFrames: p.frames, Chunks: p.chunks, TruthIDBound: p.bound}
}

// FuzzMapRoundTrip drives Extend-then-evict sequences decoded from the fuzz
// input and checks, after every mutation, that the frame, chunk and
// truth-id remappings stay a loss-free round-trip bijection and that the
// snapshot's active/fenced view is consistent with the per-shard statuses.
// Evictions are status transitions (Draining/Gated), exactly as the stream
// ring performs them — the address space itself is append-only.
func FuzzMapRoundTrip(f *testing.F) {
	f.Add([]byte{0x10, 0x21})
	f.Add([]byte{0xff, 0x73, 0x00, 0x00, 0x40, 0x12})
	f.Add([]byte{0x05, 0x31, 0x80, 0x02, 0x81, 0x00, 0x82, 0x01, 0x07, 0xf2})
	f.Add([]byte{0x2a, 0x17, 0x83, 0x00, 0x84, 0x01, 0x85, 0x02, 0x13, 0x55, 0x86, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip("need at least one part")
		}
		// First pair always builds the initial map.
		parts := []refPart{buildPart(data[0], data[1])}
		m, err := New([]Part{parts[0].part()})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		status := []Status{Active}
		gen := uint64(1)
		checkMap(t, m, parts)
		checkSnapshot(t, &Snapshot{Gen: gen, Map: m, Status: status}, parts)

		for i := 2; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			if op&0x80 != 0 && len(parts) > 0 {
				// Evict: fence the addressed shard without touching the map.
				// The high bit of arg picks the fence flavor; re-fencing an
				// already fenced shard is a no-op by design.
				idx := int(op&0x7f) % len(parts)
				if arg&0x80 != 0 {
					status[idx] = Gated
				} else {
					status[idx] = Draining
				}
			} else {
				prev := m
				prevFrames := prev.NumFrames()
				prevChunks := len(prev.Chunks())
				p := buildPart(op, arg)
				m, err = m.Extend(p.part())
				if err != nil {
					t.Fatalf("Extend part %d: %v", len(parts), err)
				}
				parts = append(parts, p)
				status = append(status, Active)
				// Extend must not mutate the receiver: the old map is a
				// published snapshot other queries still read through.
				if prev.NumFrames() != prevFrames || len(prev.Chunks()) != prevChunks {
					t.Fatalf("Extend mutated its receiver: frames %d->%d chunks %d->%d",
						prevFrames, prev.NumFrames(), prevChunks, len(prev.Chunks()))
				}
			}
			gen++
			checkMap(t, m, parts)
			checkSnapshot(t, &Snapshot{Gen: gen, Map: m, Status: status}, parts)
		}
	})
}

// checkMap verifies the address translations against the reference parts.
func checkMap(t *testing.T, m *Map, parts []refPart) {
	t.Helper()
	if m.NumShards() != len(parts) {
		t.Fatalf("NumShards = %d, want %d", m.NumShards(), len(parts))
	}
	var total int64
	for _, p := range parts {
		total += p.frames
	}
	if m.NumFrames() != total {
		t.Fatalf("NumFrames = %d, want %d", m.NumFrames(), total)
	}

	// Frame space: Global and Locate must be mutual inverses on every
	// shard's boundary and midpoint frames, and offsets must be the exact
	// prefix sums.
	var off int64
	for i, p := range parts {
		if got := m.Offset(i); got != off {
			t.Fatalf("Offset(%d) = %d, want %d", i, got, off)
		}
		if got := m.ShardFrames(i); got != p.frames {
			t.Fatalf("ShardFrames(%d) = %d, want %d", i, got, p.frames)
		}
		for _, local := range []int64{0, p.frames / 2, p.frames - 1} {
			g := m.Global(i, local)
			if g != off+local {
				t.Fatalf("Global(%d, %d) = %d, want %d", i, local, g, off+local)
			}
			sh, back := m.Locate(g)
			if sh != i || back != local {
				t.Fatalf("Locate(%d) = (%d, %d), want (%d, %d)", g, sh, back, i, local)
			}
		}
		off += p.frames
	}

	// Chunk space: global ids are sequential in shard order and each global
	// chunk is its local chunk translated by the owning shard's offset.
	chunks := m.Chunks()
	j := 0
	off = 0
	for i, p := range parts {
		for _, lc := range p.chunks {
			if j >= len(chunks) {
				t.Fatalf("chunk space too small: %d chunks, need more for shard %d", len(chunks), i)
			}
			gc := chunks[j]
			if gc.ID != j {
				t.Fatalf("chunk %d has ID %d", j, gc.ID)
			}
			if m.ChunkShard(j) != i {
				t.Fatalf("ChunkShard(%d) = %d, want %d", j, m.ChunkShard(j), i)
			}
			if gc.Start != lc.Start+off || gc.End != lc.End+off {
				t.Fatalf("chunk %d = [%d, %d), want [%d, %d)", j, gc.Start, gc.End, lc.Start+off, lc.End+off)
			}
			j++
		}
		off += p.frames
	}
	if j != len(chunks) {
		t.Fatalf("chunk space has %d chunks, reference has %d", len(chunks), j)
	}

	// Truth-id space: per-shard round-trips, disjoint global ranges in
	// shard order, and negative (false-positive) ids passing through
	// untouched.
	prevMax := -1
	for i, p := range parts {
		if p.bound == 0 {
			continue
		}
		for _, local := range []int{0, p.bound - 1} {
			g := m.GlobalTruthID(i, local)
			if back := m.LocalTruthID(i, g); back != local {
				t.Fatalf("truth round-trip shard %d: local %d -> global %d -> %d", i, local, g, back)
			}
		}
		lo, hi := m.GlobalTruthID(i, 0), m.GlobalTruthID(i, p.bound-1)
		if lo <= prevMax {
			t.Fatalf("shard %d truth range [%d, %d] overlaps previous max %d", i, lo, hi, prevMax)
		}
		prevMax = hi
	}
	for i := range parts {
		if got := m.GlobalTruthID(i, -7); got != -7 {
			t.Fatalf("GlobalTruthID(%d, -7) = %d, want passthrough", i, got)
		}
		if got := m.LocalTruthID(i, -7); got != -7 {
			t.Fatalf("LocalTruthID(%d, -7) = %d, want passthrough", i, got)
		}
	}
}

// checkSnapshot verifies the fence view: every chunk and frame is pickable
// iff its owning shard is Active.
func checkSnapshot(t *testing.T, snap *Snapshot, parts []refPart) {
	t.Helper()
	wantActive := 0
	for i := range parts {
		if snap.Status[i] == Active {
			wantActive++
		}
		if got := snap.ShardActive(i); got != (snap.Status[i] == Active) {
			t.Fatalf("ShardActive(%d) = %v with status %v", i, got, snap.Status[i])
		}
	}
	if snap.NumActive() != wantActive {
		t.Fatalf("NumActive = %d, want %d", snap.NumActive(), wantActive)
	}
	for j := range snap.Map.Chunks() {
		sh := snap.Map.ChunkShard(j)
		if got := snap.ChunkActive(j); got != snap.ShardActive(sh) {
			t.Fatalf("ChunkActive(%d) = %v, owning shard %d is %v", j, got, sh, snap.Status[sh])
		}
	}
	for i, p := range parts {
		for _, local := range []int64{0, p.frames - 1} {
			g := snap.Map.Global(i, local)
			if got := snap.FrameActive(g); got != snap.ShardActive(i) {
				t.Fatalf("FrameActive(%d) = %v, owning shard %d is %v", g, got, i, snap.Status[i])
			}
		}
	}
}
