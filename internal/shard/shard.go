// Package shard remaps the frame, chunk and ground-truth id spaces of N
// independent datasets into one global address space, so a single sampler
// can treat a fleet of shards as one repository.
//
// The remapping is purely arithmetic and loss-free: shard i's frames
// [0, n_i) occupy the global range [offset_i, offset_i+n_i), its chunks are
// translated by the same offset and renumbered globally in shard order, and
// its ground-truth instance ids are lifted by a per-shard base so instances
// from different shards never collide. This is the property that makes a
// shard "just another source of Propose/Detect work": the Thompson sampler
// and the discriminator operate on global coordinates and never learn that
// the repository is distributed, while detector calls route back to the
// owning shard's local coordinates.
package shard

import (
	"fmt"
	"sort"

	"github.com/exsample/exsample/internal/video"
)

// Part describes one shard's local spaces.
type Part struct {
	// NumFrames is the shard's repository size.
	NumFrames int64
	// Chunks is the shard's native chunk layout in local coordinates.
	Chunks []video.Chunk
	// TruthIDBound is an exclusive upper bound on the shard's ground-truth
	// instance ids (0 when the shard has none). Negative detector ids
	// (false positives) are outside every bound and survive remapping
	// unchanged.
	TruthIDBound int
}

// Map is the computed remapping for a fixed list of shards.
type Map struct {
	offsets   []int64 // offsets[i] = first global frame of shard i
	sizes     []int64
	total     int64
	chunks    []video.Chunk // concatenated global chunk layout
	chunkOf   []int         // global chunk id -> owning shard
	truthBase []int
}

// New builds a Map over the given parts, in order.
func New(parts []Part) (*Map, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no parts")
	}
	m := &Map{}
	var frameOff int64
	truthOff := 0
	for i, p := range parts {
		if p.NumFrames <= 0 {
			return nil, fmt.Errorf("shard: part %d has %d frames", i, p.NumFrames)
		}
		if p.TruthIDBound < 0 {
			return nil, fmt.Errorf("shard: part %d has negative TruthIDBound %d", i, p.TruthIDBound)
		}
		m.offsets = append(m.offsets, frameOff)
		m.sizes = append(m.sizes, p.NumFrames)
		m.truthBase = append(m.truthBase, truthOff)
		for _, c := range p.Chunks {
			if c.Start < 0 || c.End > p.NumFrames || c.Len() <= 0 {
				return nil, fmt.Errorf("shard: part %d chunk [%d, %d) outside [0, %d)",
					i, c.Start, c.End, p.NumFrames)
			}
			m.chunks = append(m.chunks, video.Chunk{
				ID:    len(m.chunks),
				Start: c.Start + frameOff,
				End:   c.End + frameOff,
			})
			m.chunkOf = append(m.chunkOf, i)
		}
		frameOff += p.NumFrames
		truthOff += p.TruthIDBound
	}
	m.total = frameOff
	return m, nil
}

// NumShards returns the number of composed shards.
func (m *Map) NumShards() int { return len(m.offsets) }

// NumFrames returns the total global frame count.
func (m *Map) NumFrames() int64 { return m.total }

// ShardFrames returns shard i's local frame count.
func (m *Map) ShardFrames(i int) int64 { return m.sizes[i] }

// Offset returns shard i's first global frame.
func (m *Map) Offset(i int) int64 { return m.offsets[i] }

// Chunks returns the concatenated global chunk layout (shared slice; do not
// mutate).
func (m *Map) Chunks() []video.Chunk { return m.chunks }

// ChunkShard returns the shard owning a global chunk id.
func (m *Map) ChunkShard(chunk int) int { return m.chunkOf[chunk] }

// Locate maps a global frame to its owning shard and local frame.
func (m *Map) Locate(global int64) (shard int, local int64) {
	// First shard whose end exceeds the frame.
	i := sort.Search(len(m.offsets), func(i int) bool {
		return m.offsets[i]+m.sizes[i] > global
	})
	if i == len(m.offsets) || global < 0 {
		// Out of range; clamp to the last shard so callers fail on the
		// shard's own bounds checks rather than panicking here.
		i = len(m.offsets) - 1
	}
	return i, global - m.offsets[i]
}

// Global maps a shard-local frame to its global index.
func (m *Map) Global(shard int, local int64) int64 { return m.offsets[shard] + local }

// GlobalTruthID lifts a shard-local ground-truth id into the global id
// space. Negative ids (false positives) pass through unchanged.
func (m *Map) GlobalTruthID(shard, local int) int {
	if local < 0 {
		return local
	}
	return m.truthBase[shard] + local
}

// LocalTruthID is the inverse of GlobalTruthID for ids belonging to the
// given shard. Negative ids pass through unchanged.
func (m *Map) LocalTruthID(shard, global int) int {
	if global < 0 {
		return global
	}
	return global - m.truthBase[shard]
}
