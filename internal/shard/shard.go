// Package shard remaps the frame, chunk and ground-truth id spaces of N
// independent datasets into one global address space, so a single sampler
// can treat a fleet of shards as one repository.
//
// The remapping is purely arithmetic and loss-free: shard i's frames
// [0, n_i) occupy the global range [offset_i, offset_i+n_i), its chunks are
// translated by the same offset and renumbered globally in shard order, and
// its ground-truth instance ids are lifted by a per-shard base so instances
// from different shards never collide. This is the property that makes a
// shard "just another source of Propose/Detect work": the Thompson sampler
// and the discriminator operate on global coordinates and never learn that
// the repository is distributed, while detector calls route back to the
// owning shard's local coordinates.
package shard

import (
	"fmt"
	"sort"

	"github.com/exsample/exsample/internal/video"
)

// Part describes one shard's local spaces.
type Part struct {
	// NumFrames is the shard's repository size.
	NumFrames int64
	// Chunks is the shard's native chunk layout in local coordinates.
	Chunks []video.Chunk
	// TruthIDBound is an exclusive upper bound on the shard's ground-truth
	// instance ids (0 when the shard has none). Negative detector ids
	// (false positives) are outside every bound and survive remapping
	// unchanged.
	TruthIDBound int
}

// Map is the computed remapping for a fixed list of shards.
type Map struct {
	offsets   []int64 // offsets[i] = first global frame of shard i
	sizes     []int64
	total     int64
	chunks    []video.Chunk // concatenated global chunk layout
	chunkOf   []int         // global chunk id -> owning shard
	truthBase []int
	// lastTruthBound is the final part's TruthIDBound, kept so Extend can
	// place the next shard's truth-id base past every existing id.
	lastTruthBound int
}

// New builds a Map over the given parts, in order.
func New(parts []Part) (*Map, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no parts")
	}
	m := &Map{}
	var frameOff int64
	truthOff := 0
	for i, p := range parts {
		if p.NumFrames <= 0 {
			return nil, fmt.Errorf("shard: part %d has %d frames", i, p.NumFrames)
		}
		if p.TruthIDBound < 0 {
			return nil, fmt.Errorf("shard: part %d has negative TruthIDBound %d", i, p.TruthIDBound)
		}
		m.offsets = append(m.offsets, frameOff)
		m.sizes = append(m.sizes, p.NumFrames)
		m.truthBase = append(m.truthBase, truthOff)
		for _, c := range p.Chunks {
			if c.Start < 0 || c.End > p.NumFrames || c.Len() <= 0 {
				return nil, fmt.Errorf("shard: part %d chunk [%d, %d) outside [0, %d)",
					i, c.Start, c.End, p.NumFrames)
			}
			m.chunks = append(m.chunks, video.Chunk{
				ID:    len(m.chunks),
				Start: c.Start + frameOff,
				End:   c.End + frameOff,
			})
			m.chunkOf = append(m.chunkOf, i)
		}
		frameOff += p.NumFrames
		truthOff += p.TruthIDBound
		m.lastTruthBound = p.TruthIDBound
	}
	m.total = frameOff
	return m, nil
}

// Extend returns a new Map with one more part appended after the existing
// shards. The receiver is not modified and stays valid: the global frame,
// chunk and truth-id spaces are append-only, so every address that was
// valid under the old map means the same thing under the new one — which
// is what lets a running query's sampler state, memo-cache keys and
// already-applied detections survive a shard attach unchanged.
func (m *Map) Extend(p Part) (*Map, error) {
	if p.NumFrames <= 0 {
		return nil, fmt.Errorf("shard: appended part has %d frames", p.NumFrames)
	}
	if p.TruthIDBound < 0 {
		return nil, fmt.Errorf("shard: appended part has negative TruthIDBound %d", p.TruthIDBound)
	}
	n := len(m.offsets)
	out := &Map{
		offsets:        append(append(make([]int64, 0, n+1), m.offsets...), m.total),
		sizes:          append(append(make([]int64, 0, n+1), m.sizes...), p.NumFrames),
		total:          m.total + p.NumFrames,
		chunks:         append(make([]video.Chunk, 0, len(m.chunks)+len(p.Chunks)), m.chunks...),
		chunkOf:        append(make([]int, 0, len(m.chunkOf)+len(p.Chunks)), m.chunkOf...),
		truthBase:      append(append(make([]int, 0, n+1), m.truthBase...), m.truthBase[n-1]+m.lastTruthBound),
		lastTruthBound: p.TruthIDBound,
	}
	for _, c := range p.Chunks {
		if c.Start < 0 || c.End > p.NumFrames || c.Len() <= 0 {
			return nil, fmt.Errorf("shard: appended chunk [%d, %d) outside [0, %d)",
				c.Start, c.End, p.NumFrames)
		}
		out.chunks = append(out.chunks, video.Chunk{
			ID:    len(out.chunks),
			Start: c.Start + m.total,
			End:   c.End + m.total,
		})
		out.chunkOf = append(out.chunkOf, n)
	}
	return out, nil
}

// NumShards returns the number of composed shards.
func (m *Map) NumShards() int { return len(m.offsets) }

// NumFrames returns the total global frame count.
func (m *Map) NumFrames() int64 { return m.total }

// ShardFrames returns shard i's local frame count.
func (m *Map) ShardFrames(i int) int64 { return m.sizes[i] }

// Offset returns shard i's first global frame.
func (m *Map) Offset(i int) int64 { return m.offsets[i] }

// Chunks returns the concatenated global chunk layout (shared slice; do not
// mutate).
func (m *Map) Chunks() []video.Chunk { return m.chunks }

// ChunkShard returns the shard owning a global chunk id.
func (m *Map) ChunkShard(chunk int) int { return m.chunkOf[chunk] }

// Locate maps a global frame to its owning shard and local frame.
func (m *Map) Locate(global int64) (shard int, local int64) {
	// First shard whose end exceeds the frame.
	i := sort.Search(len(m.offsets), func(i int) bool {
		return m.offsets[i]+m.sizes[i] > global
	})
	if i == len(m.offsets) || global < 0 {
		// Out of range; clamp to the last shard so callers fail on the
		// shard's own bounds checks rather than panicking here.
		i = len(m.offsets) - 1
	}
	return i, global - m.offsets[i]
}

// Global maps a shard-local frame to its global index.
func (m *Map) Global(shard int, local int64) int64 { return m.offsets[shard] + local }

// GlobalTruthID lifts a shard-local ground-truth id into the global id
// space. Negative ids (false positives) pass through unchanged.
func (m *Map) GlobalTruthID(shard, local int) int {
	if local < 0 {
		return local
	}
	return m.truthBase[shard] + local
}

// LocalTruthID is the inverse of GlobalTruthID for ids belonging to the
// given shard. Negative ids pass through unchanged.
func (m *Map) LocalTruthID(shard, global int) int {
	if global < 0 {
		return global
	}
	return global - m.truthBase[shard]
}

// Status is a shard's lifecycle state inside an elastic topology.
type Status int

const (
	// Active shards receive new picks.
	Active Status = iota
	// Draining shards finish work already in flight — their frames remain
	// addressable for applies, extends and decode-cost lookups — but
	// receive no new picks: their chunks are fenced out of every sampler.
	Draining
	// Gated shards are fenced exactly like Draining ones — addressable but
	// never picked — for a different reason: a cheap pre-filter (the stream
	// motion gate) judged their content dead, so spending detector budget
	// on them would be waste. Unlike Draining, the state is reversible: a
	// gated shard can be readmitted to Active, at which point its chunks
	// rejoin every running sampler with their belief state intact.
	Gated
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Gated:
		return "gated"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Snapshot is one immutable, generation-counted view of an elastic shard
// topology: the address map plus each shard's lifecycle status. Topology
// mutations (attach, drain) publish a fresh Snapshot with a higher Gen;
// queries compare Gen at every round boundary and re-fence their samplers
// when it moves, so belief state carries across the change instead of
// restarting. Because Map is append-only, any Snapshot's addresses remain
// valid under every later Snapshot.
type Snapshot struct {
	// Gen is the topology generation, starting at 1 and incremented by
	// every mutation.
	Gen uint64
	// Map is the global address map covering every shard ever attached,
	// draining ones included.
	Map *Map
	// Status has one entry per shard in Map.
	Status []Status
}

// NumActive returns how many shards currently accept new picks.
func (s *Snapshot) NumActive() int {
	n := 0
	for _, st := range s.Status {
		if st == Active {
			n++
		}
	}
	return n
}

// ShardActive reports whether shard i accepts new picks.
func (s *Snapshot) ShardActive(i int) bool { return s.Status[i] == Active }

// ChunkActive reports whether a global chunk id belongs to an active shard.
func (s *Snapshot) ChunkActive(chunk int) bool {
	return s.Status[s.Map.ChunkShard(chunk)] == Active
}

// FrameActive reports whether a global frame belongs to an active shard.
func (s *Snapshot) FrameActive(frame int64) bool {
	sh, _ := s.Map.Locate(frame)
	return s.Status[sh] == Active
}
