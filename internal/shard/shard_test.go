package shard

import (
	"testing"

	"github.com/exsample/exsample/internal/video"
)

func testMap(t *testing.T) *Map {
	t.Helper()
	m, err := New([]Part{
		{NumFrames: 100, Chunks: []video.Chunk{{ID: 0, Start: 0, End: 50}, {ID: 1, Start: 50, End: 100}}, TruthIDBound: 10},
		{NumFrames: 40, Chunks: []video.Chunk{{ID: 0, Start: 0, End: 40}}, TruthIDBound: 3},
		{NumFrames: 200, Chunks: []video.Chunk{{ID: 0, Start: 0, End: 200}}, TruthIDBound: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapFrameRoundTrip(t *testing.T) {
	m := testMap(t)
	if m.NumShards() != 3 || m.NumFrames() != 340 {
		t.Fatalf("got %d shards, %d frames", m.NumShards(), m.NumFrames())
	}
	for global := int64(0); global < m.NumFrames(); global++ {
		sh, local := m.Locate(global)
		if local < 0 || local >= m.ShardFrames(sh) {
			t.Fatalf("frame %d located at shard %d local %d, outside [0, %d)",
				global, sh, local, m.ShardFrames(sh))
		}
		if back := m.Global(sh, local); back != global {
			t.Fatalf("frame %d round-tripped to %d", global, back)
		}
	}
	// Boundary spot checks.
	if sh, local := m.Locate(99); sh != 0 || local != 99 {
		t.Fatalf("Locate(99) = (%d, %d)", sh, local)
	}
	if sh, local := m.Locate(100); sh != 1 || local != 0 {
		t.Fatalf("Locate(100) = (%d, %d)", sh, local)
	}
	if sh, local := m.Locate(140); sh != 2 || local != 0 {
		t.Fatalf("Locate(140) = (%d, %d)", sh, local)
	}
}

func TestMapChunkRemap(t *testing.T) {
	m := testMap(t)
	chunks := m.Chunks()
	if len(chunks) != 4 {
		t.Fatalf("got %d global chunks", len(chunks))
	}
	wantShard := []int{0, 0, 1, 2}
	var prevEnd int64
	for i, c := range chunks {
		if c.ID != i {
			t.Errorf("chunk %d has ID %d", i, c.ID)
		}
		if c.Start != prevEnd {
			t.Errorf("chunk %d starts at %d, want %d (contiguous layout)", i, c.Start, prevEnd)
		}
		prevEnd = c.End
		if m.ChunkShard(i) != wantShard[i] {
			t.Errorf("chunk %d owned by shard %d, want %d", i, m.ChunkShard(i), wantShard[i])
		}
	}
	if prevEnd != m.NumFrames() {
		t.Errorf("chunks cover [0, %d), want [0, %d)", prevEnd, m.NumFrames())
	}
}

func TestMapTruthIDRemap(t *testing.T) {
	m := testMap(t)
	seen := map[int]bool{}
	for sh, bound := range []int{10, 3, 0} {
		for local := 0; local < bound; local++ {
			g := m.GlobalTruthID(sh, local)
			if seen[g] {
				t.Fatalf("global truth id %d assigned twice", g)
			}
			seen[g] = true
			if back := m.LocalTruthID(sh, g); back != local {
				t.Fatalf("truth id (%d, %d) round-tripped to %d", sh, local, back)
			}
		}
	}
	if len(seen) != 13 {
		t.Fatalf("expected 13 distinct global ids, got %d", len(seen))
	}
	// False positives pass through on both directions.
	if m.GlobalTruthID(1, -1) != -1 || m.LocalTruthID(1, -1) != -1 {
		t.Fatal("negative ids must pass through unchanged")
	}
}

func TestMapSingleShardIsIdentity(t *testing.T) {
	chunks := []video.Chunk{{ID: 0, Start: 0, End: 30}, {ID: 1, Start: 30, End: 64}}
	m, err := New([]Part{{NumFrames: 64, Chunks: chunks, TruthIDBound: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 64; f++ {
		if sh, local := m.Locate(f); sh != 0 || local != f {
			t.Fatalf("Locate(%d) = (%d, %d), want identity", f, sh, local)
		}
	}
	for i, c := range m.Chunks() {
		if c != chunks[i] {
			t.Fatalf("chunk %d changed: %+v vs %+v", i, c, chunks[i])
		}
	}
	if m.GlobalTruthID(0, 3) != 3 {
		t.Fatal("single-shard truth ids must be identity")
	}
}

func TestMapValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty part list accepted")
	}
	if _, err := New([]Part{{NumFrames: 0}}); err == nil {
		t.Error("empty shard accepted")
	}
	if _, err := New([]Part{{NumFrames: 10, TruthIDBound: -1}}); err == nil {
		t.Error("negative truth bound accepted")
	}
	if _, err := New([]Part{{NumFrames: 10, Chunks: []video.Chunk{{Start: 5, End: 15}}}}); err == nil {
		t.Error("chunk outside the shard accepted")
	}
}

func TestMapExtendAppendOnly(t *testing.T) {
	m := testMap(t)
	before := struct {
		frames int64
		chunks int
	}{m.NumFrames(), len(m.Chunks())}
	m2, err := m.Extend(Part{
		NumFrames:    60,
		Chunks:       []video.Chunk{{ID: 0, Start: 0, End: 60}},
		TruthIDBound: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The old map is untouched.
	if m.NumFrames() != before.frames || len(m.Chunks()) != before.chunks || m.NumShards() != 3 {
		t.Fatal("Extend mutated the receiver")
	}
	if m2.NumShards() != 4 || m2.NumFrames() != 400 {
		t.Fatalf("extended map has %d shards, %d frames", m2.NumShards(), m2.NumFrames())
	}
	// Every old address means the same thing under the new map.
	for global := int64(0); global < m.NumFrames(); global++ {
		s1, l1 := m.Locate(global)
		s2, l2 := m2.Locate(global)
		if s1 != s2 || l1 != l2 {
			t.Fatalf("frame %d moved: (%d, %d) -> (%d, %d)", global, s1, l1, s2, l2)
		}
	}
	for i, c := range m.Chunks() {
		if m2.Chunks()[i] != c || m2.ChunkShard(i) != m.ChunkShard(i) {
			t.Fatalf("chunk %d changed across Extend", i)
		}
	}
	// The new shard's addresses append past the old space.
	if sh, local := m2.Locate(340); sh != 3 || local != 0 {
		t.Fatalf("Locate(340) = (%d, %d), want (3, 0)", sh, local)
	}
	nc := m2.Chunks()[len(m2.Chunks())-1]
	if nc.Start != 340 || nc.End != 400 || nc.ID != 4 {
		t.Fatalf("appended chunk = %+v", nc)
	}
	// Truth ids continue past every existing bound (10 + 3 + 0 = 13).
	if got := m2.GlobalTruthID(3, 0); got != 13 {
		t.Fatalf("appended shard truth base = %d, want 13", got)
	}
	if back := m2.LocalTruthID(3, 15); back != 2 {
		t.Fatalf("LocalTruthID(3, 15) = %d, want 2", back)
	}
	// A second extension stacks on the first.
	m3, err := m2.Extend(Part{NumFrames: 10, TruthIDBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := m3.GlobalTruthID(4, 0); got != 17 {
		t.Fatalf("second appended shard truth base = %d, want 17", got)
	}

	if _, err := m.Extend(Part{NumFrames: 0}); err == nil {
		t.Error("empty appended part accepted")
	}
	if _, err := m.Extend(Part{NumFrames: 10, TruthIDBound: -1}); err == nil {
		t.Error("negative appended truth bound accepted")
	}
	if _, err := m.Extend(Part{NumFrames: 10, Chunks: []video.Chunk{{Start: 5, End: 15}}}); err == nil {
		t.Error("appended chunk outside the shard accepted")
	}
}

func TestSnapshotStatus(t *testing.T) {
	m := testMap(t)
	snap := &Snapshot{Gen: 1, Map: m, Status: []Status{Active, Draining, Active}}
	if got := snap.NumActive(); got != 2 {
		t.Fatalf("NumActive = %d, want 2", got)
	}
	if !snap.ShardActive(0) || snap.ShardActive(1) || !snap.ShardActive(2) {
		t.Fatal("ShardActive disagrees with Status")
	}
	// Chunks 0, 1 belong to shard 0 (active); chunk 2 to shard 1 (draining).
	if !snap.ChunkActive(0) || !snap.ChunkActive(1) || snap.ChunkActive(2) || !snap.ChunkActive(3) {
		t.Fatal("ChunkActive disagrees with chunk ownership")
	}
	if !snap.FrameActive(0) || snap.FrameActive(120) || !snap.FrameActive(339) {
		t.Fatal("FrameActive disagrees with frame ownership")
	}
	if Active.String() != "active" || Draining.String() != "draining" {
		t.Fatal("Status.String names")
	}
}
