package video

import "testing"

func TestScoredOrderDescending(t *testing.T) {
	// Score = frame index: order must be strictly descending.
	o, err := NewScoredOrder(10, 20, func(f int64) float64 { return float64(f) })
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(1 << 62)
	count := 0
	for {
		f, ok := o.Next()
		if !ok {
			break
		}
		if f >= prev {
			t.Fatalf("not descending: %d after %d", f, prev)
		}
		prev = f
		count++
	}
	if count != 10 {
		t.Fatalf("emitted %d frames", count)
	}
}

func TestScoredOrderTieBreaksAscending(t *testing.T) {
	o, err := NewScoredOrder(0, 5, func(int64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); want < 5; want++ {
		f, ok := o.Next()
		if !ok || f != want {
			t.Fatalf("tie order: got %d want %d", f, want)
		}
	}
}

func TestScoredOrderIsPermutation(t *testing.T) {
	o, err := NewScoredOrder(100, 400, func(f int64) float64 { return float64((f * 7919) % 101) })
	if err != nil {
		t.Fatal(err)
	}
	drainOrder(t, o, 100, 400)
}

func TestScoredOrderValidation(t *testing.T) {
	if _, err := NewScoredOrder(5, 5, func(int64) float64 { return 0 }); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewScoredOrder(0, 5, nil); err == nil {
		t.Error("nil scorer accepted")
	}
}

func TestScoredOrderRemaining(t *testing.T) {
	o, err := NewScoredOrder(0, 4, func(f int64) float64 { return float64(f) })
	if err != nil {
		t.Fatal(err)
	}
	if o.Remaining() != 4 {
		t.Fatalf("Remaining = %d", o.Remaining())
	}
	o.Next()
	if o.Remaining() != 3 {
		t.Fatalf("Remaining after draw = %d", o.Remaining())
	}
}
