package video

import (
	"fmt"
	"sort"
)

// ScoredOrder emits the frames of a range in descending score order. It
// implements the paper's §VII observation that the ExSample estimates
// (Eq. III.1) remain valid when sampling within a chunk is non-uniform but
// score-based: the chunk-level statistics N1/n do not care how frames are
// picked inside the chunk, so a cheap proxy can order frames *within* the
// chunks ExSample chooses — paying the scoring cost per chunk actually
// visited instead of the full-dataset scan that makes standalone
// proxy systems slow on limit queries.
type ScoredOrder struct {
	frames []int64
	pos    int
}

// NewScoredOrder scores every frame in [start, end) with score and prepares
// the descending order. Ties break toward earlier frames so the order is
// deterministic.
func NewScoredOrder(start, end int64, score func(frame int64) float64) (*ScoredOrder, error) {
	if end <= start {
		return nil, fmt.Errorf("video: empty range [%d, %d)", start, end)
	}
	if score == nil {
		return nil, fmt.Errorf("video: nil score function")
	}
	n := end - start
	type scored struct {
		frame int64
		s     float64
	}
	all := make([]scored, n)
	for i := int64(0); i < n; i++ {
		f := start + i
		all[i] = scored{frame: f, s: score(f)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].frame < all[j].frame
	})
	frames := make([]int64, n)
	for i, sc := range all {
		frames[i] = sc.frame
	}
	return &ScoredOrder{frames: frames}, nil
}

// Next returns the next frame in descending-score order.
func (s *ScoredOrder) Next() (int64, bool) {
	if s.pos >= len(s.frames) {
		return 0, false
	}
	f := s.frames[s.pos]
	s.pos++
	return f, true
}

// Remaining returns the number of frames not yet emitted.
func (s *ScoredOrder) Remaining() int64 { return int64(len(s.frames) - s.pos) }
