// Package video models the video repository that ExSample samples from.
//
// Real video never enters the picture: the paper treats the repository as an
// addressable collection of frames, read one at a time through a costly
// random-access decode (the authors use the Hwang library with keyframes
// every 20 frames, §V-A). This package reproduces exactly that interface —
// frames are indices, files carry frame ranges, and a decode-cost model
// charges for keyframe seek plus sequential decode — along with the two
// chunking policies the paper uses (fixed-duration chunks split at file
// boundaries, and one chunk per file for BDD's sub-minute clips).
package video

import (
	"fmt"
	"sort"
)

// File is one video file in the repository, occupying the frame range
// [Start, Start+NumFrames) in global repository coordinates.
type File struct {
	Name      string
	Start     int64
	NumFrames int64
	FPS       float64
}

// End returns the exclusive end frame of the file.
func (f File) End() int64 { return f.Start + f.NumFrames }

// Repository is an ordered collection of video files addressed by global
// frame index.
type Repository struct {
	files     []File
	numFrames int64
}

// NewRepository builds a repository from file lengths. Each file is assigned
// a contiguous global frame range in order. fps applies to all files.
func NewRepository(fps float64, frameCounts ...int64) (*Repository, error) {
	if fps <= 0 {
		return nil, fmt.Errorf("video: fps must be positive, got %v", fps)
	}
	if len(frameCounts) == 0 {
		return nil, fmt.Errorf("video: repository needs at least one file")
	}
	r := &Repository{}
	var start int64
	for i, n := range frameCounts {
		if n <= 0 {
			return nil, fmt.Errorf("video: file %d has %d frames", i, n)
		}
		r.files = append(r.files, File{
			Name:      fmt.Sprintf("file-%04d", i),
			Start:     start,
			NumFrames: n,
			FPS:       fps,
		})
		start += n
	}
	r.numFrames = start
	return r, nil
}

// NumFrames returns the total frame count across all files.
func (r *Repository) NumFrames() int64 { return r.numFrames }

// NumFiles returns the number of files.
func (r *Repository) NumFiles() int { return len(r.files) }

// Files returns the file list (shared slice; do not mutate).
func (r *Repository) Files() []File { return r.files }

// FileAt returns the file containing the given global frame.
func (r *Repository) FileAt(frame int64) (File, error) {
	if frame < 0 || frame >= r.numFrames {
		return File{}, fmt.Errorf("video: frame %d out of range [0, %d)", frame, r.numFrames)
	}
	i := sort.Search(len(r.files), func(i int) bool { return r.files[i].End() > frame })
	return r.files[i], nil
}

// Hours returns the repository length in hours of video.
func (r *Repository) Hours() float64 {
	var h float64
	for _, f := range r.files {
		h += float64(f.NumFrames) / f.FPS / 3600
	}
	return h
}

// Chunk is a contiguous frame range [Start, End) that ExSample treats as one
// sampling arm. Chunks never span file boundaries.
type Chunk struct {
	ID    int
	Start int64
	End   int64
}

// Len returns the number of frames in the chunk.
func (c Chunk) Len() int64 { return c.End - c.Start }

// Contains reports whether the chunk contains the given frame.
func (c Chunk) Contains(frame int64) bool { return frame >= c.Start && frame < c.End }

// ChunkByDuration splits the repository into chunks of at most
// framesPerChunk frames, never crossing file boundaries. This is the paper's
// default policy (20-minute chunks; drives longer than 20 minutes are
// split). A file shorter than framesPerChunk becomes a single chunk.
func (r *Repository) ChunkByDuration(framesPerChunk int64) ([]Chunk, error) {
	if framesPerChunk <= 0 {
		return nil, fmt.Errorf("video: framesPerChunk must be positive, got %d", framesPerChunk)
	}
	var chunks []Chunk
	for _, f := range r.files {
		for start := f.Start; start < f.End(); start += framesPerChunk {
			end := start + framesPerChunk
			if end > f.End() {
				end = f.End()
			}
			chunks = append(chunks, Chunk{ID: len(chunks), Start: start, End: end})
		}
	}
	return chunks, nil
}

// ChunkPerFile returns one chunk per file, the policy forced on the BDD
// dataset by its sub-minute clip lengths (§V-A).
func (r *Repository) ChunkPerFile() []Chunk {
	chunks := make([]Chunk, 0, len(r.files))
	for _, f := range r.files {
		chunks = append(chunks, Chunk{ID: len(chunks), Start: f.Start, End: f.End()})
	}
	return chunks
}

// ChunkEvenly splits the whole repository into exactly m equal-size chunks,
// ignoring file boundaries. This is the policy used in the paper's §IV
// simulations (e.g. 128 chunks over 16M frames).
func (r *Repository) ChunkEvenly(m int) ([]Chunk, error) {
	return SplitRange(0, r.numFrames, m)
}

// SplitRange splits the half-open frame range [start, end) into m chunks of
// near-equal size (within one frame of each other).
func SplitRange(start, end int64, m int) ([]Chunk, error) {
	n := end - start
	if n <= 0 {
		return nil, fmt.Errorf("video: empty range [%d, %d)", start, end)
	}
	if m <= 0 {
		return nil, fmt.Errorf("video: chunk count must be positive, got %d", m)
	}
	if int64(m) > n {
		return nil, fmt.Errorf("video: cannot split %d frames into %d chunks", n, m)
	}
	chunks := make([]Chunk, 0, m)
	for i := 0; i < m; i++ {
		lo := start + n*int64(i)/int64(m)
		hi := start + n*int64(i+1)/int64(m)
		chunks = append(chunks, Chunk{ID: i, Start: lo, End: hi})
	}
	return chunks, nil
}

// ValidateChunks checks that chunks are non-empty, sorted, non-overlapping
// and exactly cover [0, numFrames).
func ValidateChunks(chunks []Chunk, numFrames int64) error {
	if len(chunks) == 0 {
		return fmt.Errorf("video: no chunks")
	}
	var pos int64
	for i, c := range chunks {
		if c.Start != pos {
			return fmt.Errorf("video: chunk %d starts at %d, want %d", i, c.Start, pos)
		}
		if c.Len() <= 0 {
			return fmt.Errorf("video: chunk %d is empty", i)
		}
		pos = c.End
	}
	if pos != numFrames {
		return fmt.Errorf("video: chunks cover [0, %d), want [0, %d)", pos, numFrames)
	}
	return nil
}

// DecodeCostModel charges for reading and decoding one frame by random
// access: a fixed per-read overhead (container seek, io) plus sequential
// decode from the preceding keyframe. The paper re-encodes video with
// keyframes every 20 frames to make this cheap (§V-A).
type DecodeCostModel struct {
	// KeyframeInterval is the distance between keyframes in frames.
	KeyframeInterval int64
	// SeekCost is the fixed cost per random read, in seconds.
	SeekCost float64
	// PerFrameDecode is the cost of decoding one frame, in seconds.
	PerFrameDecode float64
}

// DefaultDecodeCost matches the paper's setup: keyframes every 20 frames and
// io+decode throughput around 100 fps for sequential scoring.
func DefaultDecodeCost() DecodeCostModel {
	return DecodeCostModel{KeyframeInterval: 20, SeekCost: 0.004, PerFrameDecode: 0.001}
}

// Cost returns the time in seconds to randomly read and decode the frame.
func (m DecodeCostModel) Cost(frame int64) float64 {
	if m.KeyframeInterval <= 0 {
		return m.SeekCost + m.PerFrameDecode
	}
	sinceKey := frame % m.KeyframeInterval
	return m.SeekCost + float64(sinceKey+1)*m.PerFrameDecode
}

// SequentialCost returns the time in seconds to decode n consecutive frames
// (no per-frame seek, every frame decoded once).
func (m DecodeCostModel) SequentialCost(n int64) float64 {
	return m.SeekCost + float64(n)*m.PerFrameDecode
}
