package video

import (
	"testing"
	"testing/quick"
)

func mustRepo(t *testing.T, fps float64, counts ...int64) *Repository {
	t.Helper()
	r, err := NewRepository(fps, counts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRepository(t *testing.T) {
	r := mustRepo(t, 30, 100, 200, 300)
	if r.NumFrames() != 600 {
		t.Fatalf("NumFrames = %d", r.NumFrames())
	}
	if r.NumFiles() != 3 {
		t.Fatalf("NumFiles = %d", r.NumFiles())
	}
	files := r.Files()
	if files[1].Start != 100 || files[1].End() != 300 {
		t.Fatalf("file[1] = %+v", files[1])
	}
}

func TestNewRepositoryErrors(t *testing.T) {
	if _, err := NewRepository(30); err == nil {
		t.Error("empty repository accepted")
	}
	if _, err := NewRepository(0, 100); err == nil {
		t.Error("zero fps accepted")
	}
	if _, err := NewRepository(30, 100, 0); err == nil {
		t.Error("zero-length file accepted")
	}
}

func TestFileAt(t *testing.T) {
	r := mustRepo(t, 30, 100, 200, 300)
	for _, c := range []struct {
		frame int64
		want  string
	}{{0, "file-0000"}, {99, "file-0000"}, {100, "file-0001"}, {299, "file-0001"}, {300, "file-0002"}, {599, "file-0002"}} {
		f, err := r.FileAt(c.frame)
		if err != nil {
			t.Fatalf("FileAt(%d): %v", c.frame, err)
		}
		if f.Name != c.want {
			t.Errorf("FileAt(%d) = %s, want %s", c.frame, f.Name, c.want)
		}
	}
	if _, err := r.FileAt(-1); err == nil {
		t.Error("FileAt(-1) accepted")
	}
	if _, err := r.FileAt(600); err == nil {
		t.Error("FileAt(end) accepted")
	}
}

func TestHours(t *testing.T) {
	r := mustRepo(t, 30, 30*3600) // one hour at 30 fps
	if h := r.Hours(); h < 0.999 || h > 1.001 {
		t.Fatalf("Hours = %v", h)
	}
}

func TestChunkByDurationRespectsFileBoundaries(t *testing.T) {
	r := mustRepo(t, 30, 250, 100)
	chunks, err := r.ChunkByDuration(100)
	if err != nil {
		t.Fatal(err)
	}
	// file 0: [0,100) [100,200) [200,250); file 1: [250,350)
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks: %+v", len(chunks), chunks)
	}
	if chunks[2].Start != 200 || chunks[2].End != 250 {
		t.Fatalf("chunk 2 = %+v", chunks[2])
	}
	if chunks[3].Start != 250 || chunks[3].End != 350 {
		t.Fatalf("chunk 3 = %+v", chunks[3])
	}
	if err := ValidateChunks(chunks, r.NumFrames()); err != nil {
		t.Fatal(err)
	}
}

func TestChunkPerFile(t *testing.T) {
	r := mustRepo(t, 30, 50, 60, 70)
	chunks := r.ChunkPerFile()
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	if err := ValidateChunks(chunks, r.NumFrames()); err != nil {
		t.Fatal(err)
	}
}

func TestChunkEvenly(t *testing.T) {
	r := mustRepo(t, 30, 1000)
	chunks, err := r.ChunkEvenly(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 7 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	if err := ValidateChunks(chunks, 1000); err != nil {
		t.Fatal(err)
	}
	// Sizes differ by at most one frame.
	min, max := chunks[0].Len(), chunks[0].Len()
	for _, c := range chunks {
		if c.Len() < min {
			min = c.Len()
		}
		if c.Len() > max {
			max = c.Len()
		}
	}
	if max-min > 1 {
		t.Fatalf("uneven chunks: min %d max %d", min, max)
	}
}

func TestSplitRangeErrors(t *testing.T) {
	if _, err := SplitRange(0, 0, 1); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := SplitRange(0, 10, 0); err == nil {
		t.Error("zero chunks accepted")
	}
	if _, err := SplitRange(0, 10, 11); err == nil {
		t.Error("more chunks than frames accepted")
	}
}

func TestSplitRangeProperty(t *testing.T) {
	f := func(rawN uint16, rawM uint8) bool {
		n := int64(rawN%5000) + 1
		m := int(rawM)%64 + 1
		if int64(m) > n {
			m = int(n)
		}
		chunks, err := SplitRange(0, n, m)
		if err != nil {
			return false
		}
		return ValidateChunks(chunks, n) == nil && len(chunks) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValidateChunksRejectsGapsAndOverlaps(t *testing.T) {
	bad := [][]Chunk{
		{},
		{{Start: 0, End: 5}, {Start: 6, End: 10}}, // gap
		{{Start: 0, End: 5}, {Start: 4, End: 10}}, // overlap
		{{Start: 0, End: 5}, {Start: 5, End: 5}},  // empty chunk
		{{Start: 0, End: 5}, {Start: 5, End: 9}},  // doesn't reach end
		{{Start: 1, End: 10}},                     // doesn't start at 0
	}
	for i, chunks := range bad {
		if err := ValidateChunks(chunks, 10); err == nil {
			t.Errorf("case %d accepted: %+v", i, chunks)
		}
	}
}

func TestDecodeCost(t *testing.T) {
	m := DecodeCostModel{KeyframeInterval: 20, SeekCost: 0.004, PerFrameDecode: 0.001}
	// Frame 0 is a keyframe: decode 1 frame.
	if got := m.Cost(0); got != 0.005 {
		t.Errorf("Cost(0) = %v", got)
	}
	// Frame 19 is the farthest from its keyframe: decode 20 frames.
	if got := m.Cost(19); got != 0.024 {
		t.Errorf("Cost(19) = %v", got)
	}
	// Frame 20 is a keyframe again.
	if got := m.Cost(20); got != 0.005 {
		t.Errorf("Cost(20) = %v", got)
	}
}

func TestDecodeCostNoKeyframes(t *testing.T) {
	m := DecodeCostModel{KeyframeInterval: 0, SeekCost: 0.01, PerFrameDecode: 0.002}
	if got := m.Cost(12345); got != 0.012 {
		t.Errorf("Cost = %v", got)
	}
}

func TestSequentialCost(t *testing.T) {
	m := DefaultDecodeCost()
	if got := m.SequentialCost(1000); got != m.SeekCost+1000*m.PerFrameDecode {
		t.Errorf("SequentialCost = %v", got)
	}
}
