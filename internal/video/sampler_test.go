package video

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/exsample/exsample/internal/xrand"
)

// drainOrder pulls every frame from an order and verifies the
// without-replacement permutation property over [start, end).
func drainOrder(t *testing.T, o FrameOrder, start, end int64) []int64 {
	t.Helper()
	n := end - start
	seen := make(map[int64]bool, n)
	var frames []int64
	for {
		f, ok := o.Next()
		if !ok {
			break
		}
		if f < start || f >= end {
			t.Fatalf("frame %d outside [%d, %d)", f, start, end)
		}
		if seen[f] {
			t.Fatalf("frame %d emitted twice", f)
		}
		seen[f] = true
		frames = append(frames, f)
	}
	if int64(len(frames)) != n {
		t.Fatalf("emitted %d frames, want %d", len(frames), n)
	}
	if o.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", o.Remaining())
	}
	return frames
}

func TestUniformOrderIsPermutation(t *testing.T) {
	o, err := NewUniformOrder(100, 612, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	drainOrder(t, o, 100, 612)
}

func TestUniformOrderEmptyRange(t *testing.T) {
	if _, err := NewUniformOrder(5, 5, xrand.New(1)); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestUniformOrderUniformity(t *testing.T) {
	// The first draw should be uniform over the range.
	const n = 10
	counts := make([]int, n)
	for trial := 0; trial < 20000; trial++ {
		o, err := NewUniformOrder(0, n, xrand.NewFrom(9, uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		f, _ := o.Next()
		counts[f]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-2000) > 5*math.Sqrt(2000) {
			t.Errorf("frame %d drawn %d times, want ~2000", i, c)
		}
	}
}

func TestUniformOrderRemaining(t *testing.T) {
	o, _ := NewUniformOrder(0, 5, xrand.New(2))
	if o.Remaining() != 5 {
		t.Fatalf("Remaining = %d", o.Remaining())
	}
	o.Next()
	if o.Remaining() != 4 {
		t.Fatalf("Remaining after one draw = %d", o.Remaining())
	}
}

func TestRandomPlusIsPermutation(t *testing.T) {
	f := func(rawN uint16, rawSeg uint16, seed uint64) bool {
		n := int64(rawN%2000) + 1
		seg := int64(rawSeg%300) + 1
		o, err := NewRandomPlusOrder(10, 10+n, seg, xrand.New(seed))
		if err != nil {
			return false
		}
		seen := make(map[int64]bool, n)
		count := int64(0)
		for {
			fr, ok := o.Next()
			if !ok {
				break
			}
			if fr < 10 || fr >= 10+n || seen[fr] {
				return false
			}
			seen[fr] = true
			count++
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRandomPlusStratification(t *testing.T) {
	// With initial segments of 100 frames over 1000 frames, the first 10
	// draws must land in 10 distinct segments.
	o, err := NewRandomPlusOrder(0, 1000, 100, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	segs := make(map[int64]bool)
	for i := 0; i < 10; i++ {
		f, ok := o.Next()
		if !ok {
			t.Fatal("order exhausted early")
		}
		seg := f / 100
		if segs[seg] {
			t.Fatalf("segment %d sampled twice within first level", seg)
		}
		segs[seg] = true
	}
	// The order keeps producing at deeper levels.
	for i := 0; i < 10; i++ {
		if _, ok := o.Next(); !ok {
			t.Fatal("order exhausted early at level 2")
		}
	}
}

func TestRandomPlusHalfSegmentProperty(t *testing.T) {
	// After 2k draws over k initial segments, every half-segment holds at
	// least one sample (this is the motivating property from §III-F: avoid
	// sampling temporally close frames early).
	const n, seg = 1024, 128 // 8 segments
	o, err := NewRandomPlusOrder(0, n, seg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	sampled := make([]bool, n)
	for i := 0; i < 16; i++ { // 8 full segments + 8 half segments
		f, ok := o.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		sampled[f] = true
	}
	for half := int64(0); half < n/(seg/2); half++ {
		lo, hi := half*seg/2, (half+1)*seg/2
		found := false
		for i := lo; i < hi; i++ {
			if sampled[i] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("half-segment [%d,%d) has no sample after 2 levels", lo, hi)
		}
	}
}

func TestRandomPlusWholeRangeDefault(t *testing.T) {
	// initialSegment <= 0 uses the whole range: first draw uniform.
	o, err := NewRandomPlusOrder(0, 100, 0, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	drainOrder(t, o, 0, 100)
}

func TestRandomPlusSingleFrame(t *testing.T) {
	o, err := NewRandomPlusOrder(7, 8, 1, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	f, ok := o.Next()
	if !ok || f != 7 {
		t.Fatalf("Next = %d, %v", f, ok)
	}
	if _, ok := o.Next(); ok {
		t.Fatal("second Next succeeded on single-frame range")
	}
}

func TestSequentialOrderStride(t *testing.T) {
	o, err := NewSequentialOrder(0, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 3, 6, 9, 1, 4, 7, 2, 5, 8}
	for i, w := range want {
		f, ok := o.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if f != w {
			t.Fatalf("draw %d = %d, want %d", i, f, w)
		}
	}
	if _, ok := o.Next(); ok {
		t.Fatal("order continued past range")
	}
}

func TestSequentialOrderIsPermutation(t *testing.T) {
	f := func(rawN uint16, rawStride uint8) bool {
		n := int64(rawN%500) + 1
		stride := int64(rawStride%30) + 1
		o, err := NewSequentialOrder(20, 20+n, stride)
		if err != nil {
			return false
		}
		seen := make(map[int64]bool)
		for {
			fr, ok := o.Next()
			if !ok {
				break
			}
			if seen[fr] || fr < 20 || fr >= 20+n {
				return false
			}
			seen[fr] = true
		}
		return int64(len(seen)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSequentialOrderDefaultStride(t *testing.T) {
	o, err := NewSequentialOrder(0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		f, ok := o.Next()
		if !ok || f != i {
			t.Fatalf("draw %d = %d, %v", i, f, ok)
		}
	}
}

// TestRandomPlusInitMatchesNew pins the in-place constructor to the
// allocated one: same (seed, stream) pair, same emission sequence. The
// sampler's lazy chunk opens rely on this equivalence for determinism.
func TestRandomPlusInitMatchesNew(t *testing.T) {
	for _, tc := range []struct{ start, end, seg int64 }{
		{0, 100, 0},
		{10, 138, 16},
		{0, 1000, 100}, // bitset larger than the inline storage
	} {
		ref, err := NewRandomPlusOrder(tc.start, tc.end, tc.seg, xrand.NewFrom(5, 9))
		if err != nil {
			t.Fatal(err)
		}
		var got RandomPlusOrder
		if err := got.Init(tc.start, tc.end, tc.seg, 5, 9); err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			rf, rok := ref.Next()
			gf, gok := got.Next()
			if rf != gf || rok != gok {
				t.Fatalf("range [%d,%d) seg %d draw %d: Init order = (%d, %v), New order = (%d, %v)",
					tc.start, tc.end, tc.seg, i, gf, gok, rf, rok)
			}
			if !rok {
				break
			}
		}
	}
}

// TestRandomPlusInitReuse verifies a struct can be re-initialized and
// behaves like a fresh order (state from the previous use fully cleared).
func TestRandomPlusInitReuse(t *testing.T) {
	var o RandomPlusOrder
	for round := 0; round < 3; round++ {
		if err := o.Init(0, 200, 0, 7, uint64(round)); err != nil {
			t.Fatal(err)
		}
		ref, err := NewRandomPlusOrder(0, 200, 0, xrand.NewFrom(7, uint64(round)))
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool)
		for {
			gf, gok := o.Next()
			rf, rok := ref.Next()
			if gf != rf || gok != rok {
				t.Fatalf("round %d: reused order diverged: (%d, %v) vs (%d, %v)", round, gf, gok, rf, rok)
			}
			if !gok {
				break
			}
			if seen[gf] {
				t.Fatalf("round %d: frame %d emitted twice", round, gf)
			}
			seen[gf] = true
		}
		if len(seen) != 200 {
			t.Fatalf("round %d: emitted %d frames, want 200", round, len(seen))
		}
	}
}
