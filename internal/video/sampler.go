package video

import (
	"fmt"
	"math/bits"

	"github.com/exsample/exsample/internal/xrand"
)

// FrameOrder produces frames from a range without replacement. Next returns
// the next frame to process and false once the range is exhausted.
type FrameOrder interface {
	Next() (frame int64, ok bool)
	// Remaining returns how many frames have not been emitted yet.
	Remaining() int64
}

// UniformOrder emits the frames of [start, end) in uniform random order
// without replacement, using a lazy Fisher–Yates shuffle so memory grows
// with the number of frames actually drawn, not the range size. This is the
// paper's "random" baseline (§II-B).
type UniformOrder struct {
	start, n int64
	drawn    int64
	swaps    map[int64]int64
	rng      *xrand.RNG
}

// NewUniformOrder creates a uniform without-replacement order over
// [start, end).
func NewUniformOrder(start, end int64, rng *xrand.RNG) (*UniformOrder, error) {
	if end <= start {
		return nil, fmt.Errorf("video: empty range [%d, %d)", start, end)
	}
	return &UniformOrder{start: start, n: end - start, swaps: make(map[int64]int64), rng: rng}, nil
}

// Next returns the next frame in the shuffled order.
func (u *UniformOrder) Next() (int64, bool) {
	if u.drawn >= u.n {
		return 0, false
	}
	i := u.drawn
	j := i + u.rng.Int64N(u.n-i)
	vj, ok := u.swaps[j]
	if !ok {
		vj = j
	}
	vi, ok := u.swaps[i]
	if !ok {
		vi = i
	}
	u.swaps[j] = vi
	delete(u.swaps, i) // index i is never revisited
	u.drawn++
	return u.start + vj, true
}

// Remaining returns the number of frames not yet emitted.
func (u *UniformOrder) Remaining() int64 { return u.n - u.drawn }

// RandomPlusOrder implements the paper's random+ strategy (§III-F): sample
// one random frame from each segment at a coarse granularity, then one frame
// from each not-yet-sampled half-segment, and so on, halving until every
// frame has been emitted. This avoids the early temporal clustering of pure
// random sampling while remaining unbiased within segments.
type RandomPlusOrder struct {
	start, n int64
	rng      *xrand.RNG
	ownRNG   xrand.RNG // backing generator when built via Init

	sampled  []uint64 // bitset over [0, n)
	emitted  int64
	segSize  int64   // current level's segment size
	pending  []int64 // frames queued for emission at the current level
	pendIdx  int
	finished bool

	// Inline backing storage for small chunks: a sampler lazily opening
	// one order per visited chunk is the engine's cold-start hot path, and
	// with ranges of <= 256 frames neither the bitset nor the first levels'
	// pending queue needs a heap allocation. An order must not be copied
	// once initialized.
	sampledInline [4]uint64
	pendInline    [4]int64
}

// NewRandomPlusOrder creates a random+ order over [start, end).
// initialSegment is the segment size of the first level (e.g. one hour of
// frames); values <= 0 or larger than the range select the whole range,
// making the first draw uniform.
func NewRandomPlusOrder(start, end, initialSegment int64, rng *xrand.RNG) (*RandomPlusOrder, error) {
	r := &RandomPlusOrder{}
	if err := r.init(start, end, initialSegment, rng); err != nil {
		return nil, err
	}
	return r, nil
}

// Init (re)initializes r in place over [start, end), seeding an order-owned
// generator to the exact stream NewRandomPlusOrder draws when handed
// xrand.NewFrom(seed, stream). It exists so callers that open many orders
// lazily — one per chunk of a many-armed sampler — can slab-allocate the
// structs and keep cold chunk opens allocation-free.
func (r *RandomPlusOrder) Init(start, end, initialSegment int64, seed, stream uint64) error {
	r.ownRNG.SeedFrom(seed, stream)
	return r.init(start, end, initialSegment, &r.ownRNG)
}

func (r *RandomPlusOrder) init(start, end, initialSegment int64, rng *xrand.RNG) error {
	if end <= start {
		return fmt.Errorf("video: empty range [%d, %d)", start, end)
	}
	n := end - start
	if initialSegment <= 0 || initialSegment > n {
		initialSegment = n
	}
	r.start, r.n = start, n
	r.rng = rng
	words := (n + 63) / 64
	if words <= int64(len(r.sampledInline)) {
		r.sampledInline = [4]uint64{}
		r.sampled = r.sampledInline[:words]
	} else {
		r.sampled = make([]uint64, words)
	}
	r.emitted = 0
	r.segSize = initialSegment
	if r.pending == nil {
		r.pending = r.pendInline[:0]
	} else {
		r.pending = r.pending[:0]
	}
	r.pendIdx = 0
	r.finished = false
	r.fillLevel()
	return nil
}

func (r *RandomPlusOrder) isSampled(i int64) bool {
	return r.sampled[i/64]&(1<<(uint(i)%64)) != 0
}

func (r *RandomPlusOrder) markSampled(i int64) {
	r.sampled[i/64] |= 1 << (uint(i) % 64)
}

// segmentHasSample reports whether any frame in [a, b) has been emitted,
// using word-level scans of the bitset.
func (r *RandomPlusOrder) segmentHasSample(a, b int64) bool {
	for a < b {
		w := a / 64
		bitLo := uint(a % 64)
		// End of this word or of the segment, whichever first.
		wordEnd := (w + 1) * 64
		hi := b
		if wordEnd < hi {
			hi = wordEnd
		}
		bitHi := uint(hi - w*64) // exclusive bit index within word, 1..64
		mask := ^uint64(0) << bitLo
		if bitHi < 64 {
			mask &= (uint64(1) << bitHi) - 1
		}
		if r.sampled[w]&mask != 0 {
			return true
		}
		a = hi
	}
	return false
}

// countSampled returns the number of sampled frames in [a, b).
func (r *RandomPlusOrder) countSampled(a, b int64) int64 {
	var total int64
	for a < b {
		w := a / 64
		bitLo := uint(a % 64)
		wordEnd := (w + 1) * 64
		hi := b
		if wordEnd < hi {
			hi = wordEnd
		}
		bitHi := uint(hi - w*64)
		mask := ^uint64(0) << bitLo
		if bitHi < 64 {
			mask &= (uint64(1) << bitHi) - 1
		}
		total += int64(bits.OnesCount64(r.sampled[w] & mask))
		a = hi
	}
	return total
}

// fillLevel builds the emission queue for the current segment size: one
// uniformly chosen frame from every segment that does not yet contain a
// sample, in shuffled segment order. If a level yields nothing the segment
// size is halved until either a level yields frames or everything is
// emitted.
func (r *RandomPlusOrder) fillLevel() {
	for {
		if r.emitted >= r.n {
			r.finished = true
			return
		}
		r.pending = r.pending[:0]
		r.pendIdx = 0
		for a := int64(0); a < r.n; a += r.segSize {
			b := a + r.segSize
			if b > r.n {
				b = r.n
			}
			if r.segSize == 1 {
				if !r.isSampled(a) {
					r.pending = append(r.pending, a)
				}
				continue
			}
			if r.segmentHasSample(a, b) {
				continue
			}
			r.pending = append(r.pending, a+r.rng.Int64N(b-a))
		}
		r.rng.Shuffle(len(r.pending), func(i, j int) {
			r.pending[i], r.pending[j] = r.pending[j], r.pending[i]
		})
		if len(r.pending) > 0 {
			return
		}
		if r.segSize == 1 {
			r.finished = true
			return
		}
		r.segSize /= 2
		if r.segSize < 1 {
			r.segSize = 1
		}
	}
}

// Next returns the next frame in random+ order.
func (r *RandomPlusOrder) Next() (int64, bool) {
	for {
		if r.finished {
			return 0, false
		}
		if r.pendIdx < len(r.pending) {
			f := r.pending[r.pendIdx]
			r.pendIdx++
			if r.isSampled(f) {
				// A same-level earlier emission cannot collide (one pick per
				// disjoint segment), but stay defensive.
				continue
			}
			r.markSampled(f)
			r.emitted++
			return r.start + f, true
		}
		// Level exhausted: halve and refill.
		if r.segSize > 1 {
			r.segSize /= 2
		} else if r.emitted >= r.n {
			r.finished = true
			return 0, false
		}
		r.fillLevel()
	}
}

// Remaining returns the number of frames not yet emitted.
func (r *RandomPlusOrder) Remaining() int64 { return r.n - r.emitted }

// SequentialOrder emits frames in ascending order with an optional stride
// (the paper's naive 1-out-of-n baseline). After one pass at stride s it
// revisits skipped frames in subsequent passes with offset rotation so the
// full range is eventually covered.
type SequentialOrder struct {
	start, n int64
	stride   int64
	pass     int64
	pos      int64
	emitted  int64
}

// NewSequentialOrder creates a sequential order over [start, end) visiting
// every stride-th frame per pass. stride <= 0 selects 1.
func NewSequentialOrder(start, end, stride int64) (*SequentialOrder, error) {
	if end <= start {
		return nil, fmt.Errorf("video: empty range [%d, %d)", start, end)
	}
	if stride <= 0 {
		stride = 1
	}
	return &SequentialOrder{start: start, n: end - start, stride: stride}, nil
}

// Next returns the next frame in sequential (strided) order.
func (s *SequentialOrder) Next() (int64, bool) {
	if s.emitted >= s.n {
		return 0, false
	}
	for {
		if s.pos >= s.n {
			s.pass++
			if s.pass >= s.stride {
				return 0, false
			}
			s.pos = s.pass
			continue
		}
		f := s.pos
		s.pos += s.stride
		s.emitted++
		return s.start + f, true
	}
}

// Remaining returns the number of frames not yet emitted.
func (s *SequentialOrder) Remaining() int64 { return s.n - s.emitted }
